// Benchmarks reproducing the paper's evaluation (Section 4). Each benchmark
// corresponds to a table or figure; EXPERIMENTS.md maps the results back to
// the paper. The venues used here are the small-scale presets so that
// `go test -bench=.` completes in minutes; cmd/experiments reproduces the
// full-scale sweep.
package viptree_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"viptree"
	"viptree/internal/bench"
	"viptree/internal/iptree"
	"viptree/internal/model"
)

// benchVenueSpecs lists the venues used by the benchmarks: the paper's MC and
// Men venues at small scale and the campus CL at tiny scale (the replicated
// -2 variants and the full-scale venues are exercised by cmd/experiments).
var benchVenueSpecs = []struct {
	name  string
	build func() *viptree.Venue
}{
	{"MC", func() *viptree.Venue { return viptree.MelbourneCentral(viptree.ScaleSmall) }},
	{"Men", func() *viptree.Venue { return viptree.Menzies(viptree.ScaleSmall) }},
	{"CL", func() *viptree.Venue { return viptree.Clayton(viptree.ScaleTiny) }},
}

var (
	venueCache   = map[string]*viptree.Venue{}
	venueCacheMu sync.Mutex
)

func benchVenue(name string) *viptree.Venue {
	venueCacheMu.Lock()
	defer venueCacheMu.Unlock()
	if v, ok := venueCache[name]; ok {
		return v
	}
	for _, spec := range benchVenueSpecs {
		if spec.name == name {
			v := spec.build()
			venueCache[name] = v
			return v
		}
	}
	panic("unknown bench venue " + name)
}

// competitors builds the distance-query competitors over a venue, cached per
// venue so that repeated benchmarks do not rebuild the indexes.
type builtIndexes struct {
	ip     *viptree.IPTree
	vip    *viptree.VIPTree
	distAw *viptree.DistAware
	distMx *viptree.DistanceMatrix
	gtree  *viptree.GTree
	road   *viptree.Road
}

var (
	indexCache   = map[string]*builtIndexes{}
	indexCacheMu sync.Mutex
)

func benchIndexes(name string) *builtIndexes {
	indexCacheMu.Lock()
	defer indexCacheMu.Unlock()
	if b, ok := indexCache[name]; ok {
		return b
	}
	v := benchVenue(name)
	ip := viptree.MustBuildIPTree(v)
	b := &builtIndexes{
		ip:     ip,
		vip:    iptree.NewVIPTree(ip),
		distAw: viptree.NewDistAware(v),
		distMx: viptree.BuildDistanceMatrix(v),
		gtree:  viptree.BuildGTree(v, viptree.GTreeOptions{}),
		road:   viptree.BuildRoad(v, viptree.RoadOptions{}),
	}
	indexCache[name] = b
	return b
}

type distCompetitor struct {
	name string
	dist func(s, t viptree.Location) float64
	path func(s, t viptree.Location) (float64, []viptree.DoorID)
}

func distCompetitors(b *builtIndexes) []distCompetitor {
	return []distCompetitor{
		{"VIP-Tree", b.vip.Distance, b.vip.Path},
		{"IP-Tree", b.ip.Distance, b.ip.Path},
		{"DistMx", b.distMx.Distance, b.distMx.Path},
		{"DistAw", b.distAw.Distance, b.distAw.Path},
		{"G-tree", b.gtree.Distance, b.gtree.Path},
		{"ROAD", b.road.Distance, b.road.Path},
	}
}

// crossLeafPairs filters random query pairs down to those whose endpoints
// lie in different leaves of the tree: the indexed hot path (same-partition
// and same-leaf queries fall back to direct computation or a D2D expansion).
func crossLeafPairs(v *viptree.Venue, tree *viptree.IPTree, n int, seed int64) []bench.QueryPair {
	var out []bench.QueryPair
	for attempt := int64(0); len(out) < n && attempt < 64; attempt++ {
		for _, p := range bench.Pairs(toModelVenue(v), n, seed+attempt) {
			if tree.Leaf(p.S.Partition) != tree.Leaf(p.T.Partition) {
				out = append(out, p)
				if len(out) == n {
					break
				}
			}
		}
	}
	return out
}

// BenchmarkDistance measures the warm shortest-distance hot path of every
// index on cross-leaf pairs, with allocation statistics: the VIP-Tree and
// IP-Tree rows must report 0 allocs/op (their scratch is pooled dense
// slices; see internal/iptree/scratch.go and the regression test
// TestVIPDistanceZeroAlloc).
func BenchmarkDistance(b *testing.B) {
	v := benchVenue("Men")
	idx := benchIndexes("Men")
	pairs := crossLeafPairs(v, idx.ip, 512, 42)
	if len(pairs) == 0 {
		b.Skip("no cross-leaf pairs")
	}
	for _, comp := range distCompetitors(idx) {
		b.Run(comp.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := pairs[i%len(pairs)]
				comp.dist(p.S, p.T)
			}
		})
	}
}

// BenchmarkPath measures the warm shortest-path hot path of every index on
// cross-leaf pairs, with allocation statistics: the VIP-Tree and IP-Tree
// rows must report 1 alloc/op — the returned door slice — with the partial
// path, via-chain unwind and Algorithm-4 expansion all running on pooled
// scratch (see internal/iptree/path.go and the regression tests
// TestIPPathAllocsResultSliceOnly / TestVIPPathAllocsResultSliceOnly).
func BenchmarkPath(b *testing.B) {
	v := benchVenue("Men")
	idx := benchIndexes("Men")
	pairs := crossLeafPairs(v, idx.ip, 512, 42)
	if len(pairs) == 0 {
		b.Skip("no cross-leaf pairs")
	}
	for _, comp := range distCompetitors(idx) {
		b.Run(comp.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := pairs[i%len(pairs)]
				comp.path(p.S, p.T)
			}
		})
	}
}

// BenchmarkEngineThroughput measures aggregate engine throughput (QPS) for
// the single-threaded execution path and the parallel paths (RunParallel
// per-call fan-in and the batch worker pool). On a multi-core machine the
// parallel rows report higher qps than the sequential row, since the warm
// query path allocates nothing and the indexes are contention-free.
func BenchmarkEngineThroughput(b *testing.B) {
	v := benchVenue("Men")
	idx := benchIndexes("Men")
	pairs := bench.Pairs(toModelVenue(v), 4096, 21)
	queries := make([]viptree.Query, len(pairs))
	for i, p := range pairs {
		queries[i] = viptree.Query{Kind: viptree.QueryDistance, S: p.S, T: p.T}
	}
	eng := viptree.NewEngine(idx.vip, viptree.EngineOptions{})
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng.Execute(queries[i%len(queries)])
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
	})
	b.Run(fmt.Sprintf("parallel-%d", runtime.GOMAXPROCS(0)), func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				eng.Execute(queries[i%len(queries)])
				i++
			}
		})
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		done := 0
		for i := 0; i < b.N; i++ {
			eng.ExecuteBatch(queries)
			done += len(queries)
		}
		b.ReportMetric(float64(done)/b.Elapsed().Seconds(), "qps")
	})
}

// batchedBenchWorkloads returns the two workloads of the batched-distance
// benchmarks: clustered sources (few distinct sources, many targets — the
// workload the shared-fold planner amortises) and uniform pairs (every
// endpoint distinct — the planner's worst case, where only the folded
// pairing sweep and duplicate-endpoint elimination help). Both are filtered
// to cross-leaf pairs, the indexed hot path, exactly like BenchmarkDistance:
// same-partition and same-leaf queries fall back to direct computation or a
// D2D expansion whether batched or not, and would only add identical noise
// to both sides of the comparison.
func batchedBenchWorkloads(v *viptree.Venue, tree *viptree.IPTree) []struct {
	name  string
	pairs []viptree.LocationPair
} {
	const n = 1024
	crossLeaf := func(qp []bench.QueryPair) []viptree.LocationPair {
		out := make([]viptree.LocationPair, 0, n)
		for _, p := range qp {
			if tree.Leaf(p.S.Partition) != tree.Leaf(p.T.Partition) {
				out = append(out, viptree.LocationPair{S: p.S, T: p.T})
				if len(out) == n {
					break
				}
			}
		}
		return out
	}
	return []struct {
		name  string
		pairs []viptree.LocationPair
	}{
		{"clustered", crossLeaf(bench.ClusteredPairs(toModelVenue(v), 8*n, 8, 33))},
		{"uniform", crossLeaf(bench.Pairs(toModelVenue(v), 8*n, 34))},
	}
}

// BenchmarkBatchedDistance measures the index-level batched distance path
// (DistanceBatch) against the per-pair Distance loop on both trees, for
// clustered-source and uniform workloads. One op is one full batch; the qps
// metric is pairs answered per second. On the clustered workload the batch
// rows must beat the loop rows — the batch climbs once per distinct
// endpoint instead of once per pair — and allocs/op must stay flat (the
// batch scratch is pooled).
func BenchmarkBatchedDistance(b *testing.B) {
	idx := benchIndexes("Men")
	v := benchVenue("Men")
	workers := runtime.GOMAXPROCS(0)
	batchers := []struct {
		name string
		ix   viptree.DistanceBatcher
	}{
		{"VIP", idx.vip},
		{"IP", idx.ip},
	}
	for _, bt := range batchers {
		for _, w := range batchedBenchWorkloads(v, idx.ip) {
			b.Run(bt.name+"/"+w.name+"/batch", func(b *testing.B) {
				out := make([]float64, len(w.pairs))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					bt.ix.DistanceBatch(w.pairs, out, workers)
				}
				b.ReportMetric(float64(b.N*len(w.pairs))/b.Elapsed().Seconds(), "qps")
			})
			b.Run(bt.name+"/"+w.name+"/loop", func(b *testing.B) {
				out := make([]float64, len(w.pairs))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for k, p := range w.pairs {
						out[k] = bt.ix.Distance(p.S, p.T)
					}
				}
				b.ReportMetric(float64(b.N*len(w.pairs))/b.Elapsed().Seconds(), "qps")
			})
		}
	}
}

// BenchmarkExecuteBatch measures end-to-end engine batch throughput with the
// batched query planner on (default) and off (EngineOptions.DisablePlanner),
// at the same worker count, on clustered-source and uniform distance
// batches. One op is one full ExecuteBatch; the qps metric is queries
// answered per second. The planned/clustered row is the headline number: the
// acceptance bar is ≥1.5× the unplanned/clustered row.
func BenchmarkExecuteBatch(b *testing.B) {
	idx := benchIndexes("Men")
	v := benchVenue("Men")
	engines := []struct {
		name string
		eng  *viptree.Engine
	}{
		{"planned", viptree.NewEngine(idx.vip, viptree.EngineOptions{})},
		{"unplanned", viptree.NewEngine(idx.vip, viptree.EngineOptions{DisablePlanner: true})},
	}
	for _, e := range engines {
		for _, w := range batchedBenchWorkloads(v, idx.ip) {
			queries := make([]viptree.Query, len(w.pairs))
			for i, p := range w.pairs {
				queries[i] = viptree.Query{Kind: viptree.QueryDistance, S: p.S, T: p.T}
			}
			b.Run(e.name+"/"+w.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					e.eng.ExecuteBatch(queries)
				}
				b.ReportMetric(float64(b.N*len(queries))/b.Elapsed().Seconds(), "qps")
			})
		}
	}
}

// Full-scale Menzies fixture shared by the batched object-query benchmarks:
// built once (outside benchVenueSpecs so the venue-sweeping benchmarks never
// construct full-scale baselines) and reused across BenchmarkBatchedKNN and
// BenchmarkBatchedRange.
var (
	menFullOnce sync.Once
	menFullVip  *viptree.VIPTree
	menFullOI   *viptree.ObjectIndex
	menFullWork []struct {
		name   string
		points []viptree.Location
	}
)

func menFullObjects() (*viptree.VIPTree, *viptree.ObjectIndex) {
	menFullOnce.Do(func() {
		v := viptree.Menzies(viptree.ScaleFull)
		menFullVip = viptree.MustBuildVIPTree(v)
		menFullOI = menFullVip.IndexObjects(bench.Objects(toModelVenue(v), 1000, 7))
		const n = 1024
		hot := bench.Points(toModelVenue(v), 8, 22)
		clustered := make([]viptree.Location, n)
		for i := range clustered {
			clustered[i] = hot[i%len(hot)]
		}
		menFullWork = []struct {
			name   string
			points []viptree.Location
		}{
			{"clustered", clustered},
			{"uniform", bench.Points(toModelVenue(v), n, 21)},
		}
	})
	return menFullVip, menFullOI
}

// BenchmarkBatchedKNN measures the index-level batched kNN path (KNNBatch)
// against the per-query KNN loop on the full-scale Menzies venue, for
// clustered sources (8 distinct points tiled to 1024 — the hot-lobby
// workload the shared climbs and the climb cache amortise) and uniform
// sources (1024 distinct points — the worst case, where only intra-batch
// sharing helps). One op is one full batch; the qps metric is queries
// answered per second. The acceptance bar is the clustered batch row at
// ≥2× the clustered loop row; cache=off isolates what the tree-lifetime
// climb cache adds on top of intra-batch climb sharing.
func BenchmarkBatchedKNN(b *testing.B) {
	tree, oi := menFullObjects()
	workers := runtime.GOMAXPROCS(0)
	for _, w := range menFullWork {
		queries := make([]viptree.KNNQuery, len(w.points))
		for i, p := range w.points {
			queries[i] = viptree.KNNQuery{Q: p, K: 5}
		}
		out := make([][]viptree.ObjectResult, len(queries))
		for _, cache := range []string{"on", "off"} {
			b.Run(w.name+"/batch/cache="+cache, func(b *testing.B) {
				if cache == "off" {
					tree.SetClimbCacheCapacity(0)
					defer tree.SetClimbCacheCapacity(-1) // back to the default
				} else {
					tree.SetClimbCacheCapacity(-1) // drop entries left by other runs
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					oi.KNNBatch(queries, out, workers)
				}
				b.ReportMetric(float64(b.N*len(queries))/b.Elapsed().Seconds(), "qps")
			})
		}
		b.Run(w.name+"/loop", func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, q := range queries {
					out[0] = oi.KNN(q.Q, q.K)
				}
			}
			b.ReportMetric(float64(b.N*len(queries))/b.Elapsed().Seconds(), "qps")
		})
	}
}

// BenchmarkBatchedRange is the range counterpart of BenchmarkBatchedKNN:
// RangeBatch against the per-query Range loop on the same full-scale
// fixture and workloads, sharing the climb cache with the kNN benchmark.
func BenchmarkBatchedRange(b *testing.B) {
	tree, oi := menFullObjects()
	workers := runtime.GOMAXPROCS(0)
	for _, w := range menFullWork {
		queries := make([]viptree.RangeQuery, len(w.points))
		for i, p := range w.points {
			queries[i] = viptree.RangeQuery{Q: p, R: 100}
		}
		out := make([][]viptree.ObjectResult, len(queries))
		for _, cache := range []string{"on", "off"} {
			b.Run(w.name+"/batch/cache="+cache, func(b *testing.B) {
				if cache == "off" {
					tree.SetClimbCacheCapacity(0)
					defer tree.SetClimbCacheCapacity(-1)
				} else {
					tree.SetClimbCacheCapacity(-1)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					oi.RangeBatch(queries, out, workers)
				}
				b.ReportMetric(float64(b.N*len(queries))/b.Elapsed().Seconds(), "qps")
			})
		}
		b.Run(w.name+"/loop", func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, q := range queries {
					out[0] = oi.Range(q.Q, q.R)
				}
			}
			b.ReportMetric(float64(b.N*len(queries))/b.Elapsed().Seconds(), "qps")
		})
	}
}

// BenchmarkKNN measures the warm kNN hot path (Algorithm 5) on the VIP-Tree
// with allocation statistics: the warm path must report 1 alloc/op — the
// returned result slice — with all traversal state in pooled epoch-stamped
// dense scratch (see internal/iptree/scratch.go and the regression test
// TestKNNAllocsResultSliceOnly).
func BenchmarkKNN(b *testing.B) {
	v := benchVenue("Men")
	idx := benchIndexes("Men")
	points := bench.Points(toModelVenue(v), 128, 17)
	objs := bench.Objects(toModelVenue(v), 50, 18)
	oi := idx.vip.IndexObjects(objs)
	for _, q := range points {
		oi.KNN(q, 5) // warm the scratch pool
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oi.KNN(points[i%len(points)], 5)
	}
}

// BenchmarkKNNUnderChurn measures warm kNN latency while a background
// goroutine saturates the single-writer update log with moves: the
// lock-free epoch read path should keep query cost close to the quiescent
// BenchmarkKNN number, because readers only pay one atomic pointer load to
// pin an epoch regardless of write traffic. Caveats when reading the
// output: the reported allocs/op include the writer goroutine's
// copy-on-write allocations (Go benchmarks attribute all allocation during
// the timed window), and on a single-CPU machine ns/op roughly doubles
// from timesharing with the saturating writer — neither is read-path
// contention.
func BenchmarkKNNUnderChurn(b *testing.B) {
	v := benchVenue("Men")
	idx := benchIndexes("Men")
	points := bench.Points(toModelVenue(v), 128, 17)
	objs := bench.Objects(toModelVenue(v), 50, 18)
	locs := bench.Points(toModelVenue(v), 1024, 19)
	oi := idx.vip.IndexObjects(objs)
	for _, q := range points {
		oi.KNN(q, 5) // warm the scratch pool
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := oi.Move(i%len(objs), locs[i%len(locs)]); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oi.KNN(points[i%len(points)], 5)
	}
	b.StopTimer()
	close(stop)
	<-done
}

// BenchmarkObjectUpdate measures the object-update path of the mutable
// object layer on the full-scale Menzies venue: "move" relocates one object
// on a built index (touching only the source and target leaves), "rebuild"
// re-embeds the entire object set the way an immutable index would have to
// after any fleet movement. The ns/op ratio between the two rows is the
// paper's update-locality advantage; the acceptance bar is move being more
// than an order of magnitude faster than rebuild. A sequential move pays
// the full epoch publish (two O(nodes) spine copies) on every op — the
// worst case for the single-writer log, which amortises the publish across
// a batch when updaters run concurrently.
func BenchmarkObjectUpdate(b *testing.B) {
	// The paper-scale venue is built here, not via benchVenueSpecs, so the
	// venue-sweeping benchmarks do not start constructing full-scale
	// baseline indexes.
	v := viptree.Menzies(viptree.ScaleFull)
	tree := viptree.MustBuildVIPTree(v)
	objs := bench.Objects(toModelVenue(v), 1000, 7)
	locs := bench.Points(toModelVenue(v), 4096, 8)
	b.Run("Men-full/move", func(b *testing.B) {
		oi := tree.IndexObjects(objs)
		// Warm up: let the per-leaf backing arrays reach steady-state
		// capacity so the measurement reflects the allocation-free path.
		for i := 0; i < 512; i++ {
			if err := oi.Move(i%len(objs), locs[(i*7)%len(locs)]); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := oi.Move(i%len(objs), locs[i%len(locs)]); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "moves/s")
	})
	b.Run("Men-full/rebuild", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tree.IndexObjects(objs)
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rebuilds/s")
	})
}

// BenchmarkEngineMixed measures engine throughput on an HTAP-style mixed
// workload: 90% kNN reads, 10% object moves, executed sequentially and over
// the batch worker pool. Moves funnel through the single-writer update log
// while reads serve lock-free from the published epoch, so the qps/ups
// split shows how little the write stream taxes the read path.
func BenchmarkEngineMixed(b *testing.B) {
	v := benchVenue("Men")
	idx := benchIndexes("Men")
	objs := bench.Objects(toModelVenue(v), 100, 9)
	points := bench.Points(toModelVenue(v), 4096, 10)
	rng := rand.New(rand.NewSource(11))
	ops := make([]viptree.Query, 4096)
	for i := range ops {
		if rng.Float64() < 0.10 {
			ops[i] = viptree.Query{Kind: viptree.QueryMove, ObjectID: rng.Intn(len(objs)), S: points[i]}
		} else {
			ops[i] = viptree.Query{Kind: viptree.QueryKNN, S: points[i], K: 5}
		}
	}
	reportMix := func(b *testing.B, eng *viptree.Engine) {
		s := eng.Stats()
		b.ReportMetric(float64(s.Reads())/b.Elapsed().Seconds(), "qps")
		b.ReportMetric(float64(s.Updates())/b.Elapsed().Seconds(), "ups")
	}
	b.Run("90-10/sequential", func(b *testing.B) {
		eng := viptree.NewEngine(idx.vip, viptree.EngineOptions{Objects: idx.vip.IndexObjects(objs)})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if r := eng.Execute(ops[i%len(ops)]); r.Err != nil {
				b.Fatal(r.Err)
			}
		}
		reportMix(b, eng)
	})
	b.Run("90-10/batch", func(b *testing.B) {
		eng := viptree.NewEngine(idx.vip, viptree.EngineOptions{Objects: idx.vip.IndexObjects(objs)})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, r := range eng.ExecuteBatch(ops) {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		}
		reportMix(b, eng)
	})
}

// BenchmarkTreeBuild measures full VIP-Tree construction from scratch: the
// cold-start cost a serving process pays when it does NOT load a snapshot.
// Compare against BenchmarkSnapshotLoad, which restores the identical index
// from its serialized form.
func BenchmarkTreeBuild(b *testing.B) {
	v := benchVenue("Men")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		viptree.MustBuildVIPTree(v)
	}
}

// BenchmarkTreeBuildParallelism measures VIP-Tree construction at explicit
// worker counts. The per-node/per-door build work is embarrassingly parallel
// (the determinism property test pins that results are bit-identical), so on
// a multi-core machine the higher-worker rows build proportionally faster;
// on a single-core CI container they only measure the worker-pool overhead.
func BenchmarkTreeBuildParallelism(b *testing.B) {
	v := benchVenue("Men")
	counts := []int{1, 2, 4}
	if procs := runtime.GOMAXPROCS(0); procs != 1 && procs != 2 && procs != 4 {
		counts = append(counts, procs)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, err := viptree.BuildVIPTreeWithOptions(v, viptree.TreeOptions{Parallelism: workers})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSnapshotLoad measures restoring the same VIP-Tree from an
// in-memory snapshot (header validation, checksum, venue reconstruction and
// index restore — everything queryrunner -load does except the file read).
// The ratio to BenchmarkTreeBuild is the cold-start win of the build-once /
// serve-many pipeline; README records the measured numbers.
func BenchmarkSnapshotLoad(b *testing.B) {
	v := benchVenue("Men")
	vip := viptree.MustBuildVIPTree(v)
	var buf bytes.Buffer
	if err := viptree.WriteSnapshot(&buf, v, vip, nil); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := viptree.ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if s.VIP == nil {
			b.Fatal("no VIP-Tree in snapshot")
		}
	}
}

// BenchmarkTable1Stats measures IP-Tree construction plus the structural
// statistics (ρ, f, M) reported in Table 1.
func BenchmarkTable1Stats(b *testing.B) {
	v := benchVenue("Men")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := viptree.MustBuildIPTree(v)
		s := t.TreeStats()
		if s.Leaves == 0 {
			b.Fatal("no leaves")
		}
	}
}

// BenchmarkTable2VenueGeneration measures synthetic venue generation and the
// Table 2 statistics computation.
func BenchmarkTable2VenueGeneration(b *testing.B) {
	for _, spec := range benchVenueSpecs {
		b.Run(spec.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				v := spec.build()
				if v.ComputeStats().Doors == 0 {
					b.Fatal("empty venue")
				}
			}
		})
	}
}

// BenchmarkFig7MinDegree measures VIP-Tree construction for the minimum
// degrees evaluated in Fig 7a.
func BenchmarkFig7MinDegree(b *testing.B) {
	v := benchVenue("CL")
	for _, t := range []int{2, 10, 20, 60, 100} {
		b.Run(fmt.Sprintf("t=%d", t), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				viptree.MustBuildVIPTreeWithDegree(v, t)
			}
		})
	}
}

// BenchmarkFig7QueryVsMinDegree measures shortest-distance and kNN query time
// for varying minimum degree (Fig 7b).
func BenchmarkFig7QueryVsMinDegree(b *testing.B) {
	v := benchVenue("CL")
	pairs := bench.Pairs(toModelVenue(v), 256, 1)
	points := bench.Points(toModelVenue(v), 64, 2)
	objs := bench.Objects(toModelVenue(v), 50, 3)
	for _, t := range []int{2, 20, 100} {
		vip := viptree.MustBuildVIPTreeWithDegree(v, t)
		oi := vip.IndexObjects(objs)
		b.Run(fmt.Sprintf("distance/t=%d", t), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := pairs[i%len(pairs)]
				vip.Distance(p.S, p.T)
			}
		})
		b.Run(fmt.Sprintf("knn/t=%d", t), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				oi.KNN(points[i%len(points)], 5)
			}
		})
	}
}

// BenchmarkFig8Construction measures index construction time for every index
// (Fig 8a); allocation statistics stand in for the index sizes of Fig 8b
// (exact sizes are reported by cmd/experiments -exp fig8).
func BenchmarkFig8Construction(b *testing.B) {
	v := benchVenue("MC")
	b.Run("IP-Tree", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			viptree.MustBuildIPTree(v)
		}
	})
	b.Run("VIP-Tree", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			viptree.MustBuildVIPTree(v)
		}
	})
	b.Run("DistMx", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			viptree.BuildDistanceMatrix(v)
		}
	})
	b.Run("G-tree", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			viptree.BuildGTree(v, viptree.GTreeOptions{})
		}
	})
	b.Run("ROAD", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			viptree.BuildRoad(v, viptree.RoadOptions{})
		}
	})
}

// BenchmarkFig9aPairs measures the DistMx query with and without the
// no-through-door optimisation (Fig 9a compares the pairs considered).
func BenchmarkFig9aPairs(b *testing.B) {
	v := benchVenue("Men")
	pairs := bench.Pairs(toModelVenue(v), 512, 4)
	withOpt := viptree.BuildDistanceMatrix(v)
	noOpt := viptree.BuildDistanceMatrixNoOpt(v)
	b.Run("DistMx", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			withOpt.Distance(p.S, p.T)
		}
	})
	b.Run("DistMx--", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			noOpt.Distance(p.S, p.T)
		}
	})
}

// BenchmarkFig9bShortestDistance measures shortest-distance query time for
// every algorithm and venue (Fig 9b).
func BenchmarkFig9bShortestDistance(b *testing.B) {
	for _, spec := range benchVenueSpecs {
		idx := benchIndexes(spec.name)
		pairs := bench.Pairs(toModelVenue(benchVenue(spec.name)), 512, 5)
		for _, comp := range distCompetitors(idx) {
			b.Run(spec.name+"/"+comp.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					p := pairs[i%len(pairs)]
					comp.dist(p.S, p.T)
				}
			})
		}
	}
}

// BenchmarkFig10aShortestPath measures shortest-path query time for every
// algorithm and venue (Fig 10a).
func BenchmarkFig10aShortestPath(b *testing.B) {
	for _, spec := range benchVenueSpecs {
		idx := benchIndexes(spec.name)
		pairs := bench.Pairs(toModelVenue(benchVenue(spec.name)), 512, 6)
		for _, comp := range distCompetitors(idx) {
			b.Run(spec.name+"/"+comp.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					p := pairs[i%len(pairs)]
					comp.path(p.S, p.T)
				}
			})
		}
	}
}

// BenchmarkFig10bDistanceEffect measures shortest-path query time per
// source-target distance bucket Q1..Q5 (Fig 10b) for VIP-Tree, IP-Tree and
// the expansion baseline.
func BenchmarkFig10bDistanceEffect(b *testing.B) {
	idx := benchIndexes("Men")
	buckets := bench.BucketedPairs(toModelVenue(benchVenue("Men")), 5, 64, 7)
	comps := []distCompetitor{
		{"VIP-Tree", idx.vip.Distance, idx.vip.Path},
		{"IP-Tree", idx.ip.Distance, idx.ip.Path},
		{"DistAw", idx.distAw.Distance, idx.distAw.Path},
	}
	for bi, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		for _, comp := range comps {
			b.Run(fmt.Sprintf("Q%d/%s", bi+1, comp.name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					p := bucket[i%len(bucket)]
					comp.path(p.S, p.T)
				}
			})
		}
	}
}

// objectCompetitors builds kNN/range query functions per index.
func objectCompetitors(name string, objs []model.Location) []struct {
	name string
	knn  func(q viptree.Location, k int) int
	rng  func(q viptree.Location, r float64) int
} {
	idx := benchIndexes(name)
	ipOI := idx.ip.IndexObjects(objs)
	vipOI := idx.vip.IndexObjects(objs)
	daOI := viptree.NewDistAware(benchVenue(name)).IndexObjects(objs)
	dmOI := idx.distMx.IndexObjects(objs)
	gtOI := idx.gtree.IndexObjects(objs)
	rdOI := idx.road.IndexObjects(objs)
	return []struct {
		name string
		knn  func(q viptree.Location, k int) int
		rng  func(q viptree.Location, r float64) int
	}{
		{"VIP-Tree", func(q viptree.Location, k int) int { return len(vipOI.KNN(q, k)) }, func(q viptree.Location, r float64) int { return len(vipOI.Range(q, r)) }},
		{"IP-Tree", func(q viptree.Location, k int) int { return len(ipOI.KNN(q, k)) }, func(q viptree.Location, r float64) int { return len(ipOI.Range(q, r)) }},
		{"DistAw", func(q viptree.Location, k int) int { return len(daOI.KNN(q, k)) }, func(q viptree.Location, r float64) int { return len(daOI.Range(q, r)) }},
		{"DistAw++", func(q viptree.Location, k int) int { return len(dmOI.KNN(q, k)) }, func(q viptree.Location, r float64) int { return len(dmOI.Range(q, r)) }},
		{"G-tree", func(q viptree.Location, k int) int { return len(gtOI.KNN(q, k)) }, func(q viptree.Location, r float64) int { return len(gtOI.Range(q, r)) }},
		{"ROAD", func(q viptree.Location, k int) int { return len(rdOI.KNN(q, k)) }, func(q viptree.Location, r float64) int { return len(rdOI.Range(q, r)) }},
	}
}

// BenchmarkFig11akNN measures kNN query time for k in {1, 5, 10} (Fig 11a).
func BenchmarkFig11akNN(b *testing.B) {
	v := benchVenue("Men")
	points := bench.Points(toModelVenue(v), 128, 8)
	objs := bench.Objects(toModelVenue(v), 50, 9)
	comps := objectCompetitors("Men", objs)
	for _, k := range []int{1, 5, 10} {
		for _, comp := range comps {
			b.Run(fmt.Sprintf("k=%d/%s", k, comp.name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					comp.knn(points[i%len(points)], k)
				}
			})
		}
	}
}

// BenchmarkFig11bObjects measures kNN query time for object sets of 10 to 500
// objects (Fig 11b), for the tree indexes and the expansion baseline.
func BenchmarkFig11bObjects(b *testing.B) {
	v := benchVenue("Men")
	points := bench.Points(toModelVenue(v), 128, 10)
	for _, n := range []int{10, 50, 100, 500} {
		objs := bench.Objects(toModelVenue(v), n, int64(100+n))
		idx := benchIndexes("Men")
		vipOI := idx.vip.IndexObjects(objs)
		daOI := viptree.NewDistAware(v).IndexObjects(objs)
		b.Run(fmt.Sprintf("n=%d/VIP-Tree", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				vipOI.KNN(points[i%len(points)], 5)
			}
		})
		b.Run(fmt.Sprintf("n=%d/DistAw", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				daOI.KNN(points[i%len(points)], 5)
			}
		})
	}
}

// BenchmarkFig11cVenues measures kNN query time across venues (Fig 11c).
func BenchmarkFig11cVenues(b *testing.B) {
	for _, spec := range benchVenueSpecs {
		v := benchVenue(spec.name)
		points := bench.Points(toModelVenue(v), 128, 11)
		objs := bench.Objects(toModelVenue(v), 50, 12)
		for _, comp := range objectCompetitors(spec.name, objs) {
			b.Run(spec.name+"/"+comp.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					comp.knn(points[i%len(points)], 5)
				}
			})
		}
	}
}

// BenchmarkFig11dRange measures range query time across venues (Fig 11d).
func BenchmarkFig11dRange(b *testing.B) {
	for _, spec := range benchVenueSpecs {
		v := benchVenue(spec.name)
		points := bench.Points(toModelVenue(v), 128, 13)
		objs := bench.Objects(toModelVenue(v), 50, 14)
		for _, comp := range objectCompetitors(spec.name, objs) {
			b.Run(spec.name+"/"+comp.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					comp.rng(points[i%len(points)], 100)
				}
			})
		}
	}
}

// BenchmarkAblationSuperiorDoors compares shortest-distance queries with and
// without the superior-door restriction of Definition 2.
func BenchmarkAblationSuperiorDoors(b *testing.B) {
	v := benchVenue("Men")
	pairs := bench.Pairs(toModelVenue(v), 512, 15)
	full := viptree.MustBuildVIPTree(v)
	noSup, err := viptree.BuildVIPTreeWithOptions(v, viptree.TreeOptions{DisableSuperiorDoors: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("superior-doors", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			full.Distance(p.S, p.T)
		}
	})
	b.Run("all-doors", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			noSup.Distance(p.S, p.T)
		}
	})
}

// BenchmarkAblationMergeHeuristic compares the access-door-minimising merge
// of Algorithm 1 against a naive merge, both at construction and query time.
func BenchmarkAblationMergeHeuristic(b *testing.B) {
	v := benchVenue("Men")
	pairs := bench.Pairs(toModelVenue(v), 512, 16)
	smart := viptree.MustBuildVIPTree(v)
	naive, err := viptree.BuildVIPTreeWithOptions(v, viptree.TreeOptions{NaiveMerge: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("algorithm1-merge/query", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			smart.Distance(p.S, p.T)
		}
	})
	b.Run("naive-merge/query", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			naive.Distance(p.S, p.T)
		}
	})
}

// toModelVenue converts the public alias back to the internal type expected
// by the bench package (they are the same type; the helper only documents
// the intent).
func toModelVenue(v *viptree.Venue) *model.Venue { return v }

// BenchmarkWALAppend measures the durable update path end to end — update
// log apply plus write-ahead-log append — under each fsync policy. The gap
// between the always row and the others is the price of per-batch fsync;
// Close is inside the timed region so the interval/rotate rows pay their
// deferred fsync backlog instead of hiding it.
func BenchmarkWALAppend(b *testing.B) {
	v := viptree.MelbourneCentral(viptree.ScaleTiny)
	tree := viptree.MustBuildVIPTree(v)
	objs := bench.Objects(toModelVenue(v), 50, 7)
	locs := bench.Points(toModelVenue(v), 1024, 8)
	policies := []struct {
		name string
		sync viptree.WALSyncPolicy
	}{
		{"always", viptree.SyncAlways()},
		{"interval10ms", viptree.SyncInterval(10 * time.Millisecond)},
		{"rotate", viptree.SyncOnRotate()},
	}
	for _, pol := range policies {
		b.Run(pol.name, func(b *testing.B) {
			eng, _, err := viptree.OpenEngine(tree, viptree.EngineOptions{
				Objects:    tree.IndexObjects(objs),
				WALDir:     b.TempDir(),
				WALOptions: viptree.WALOptions{Sync: pol.sync},
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := eng.Move(i%len(objs), locs[i%len(locs)]); err != nil {
					b.Fatal(err)
				}
			}
			if err := eng.Close(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "updates/s")
		})
	}
}

// BenchmarkRecovery measures crash-recovery startup: scanning a WAL of n
// records and replaying it onto a freshly restored object index. The
// records/s metric bounds how much log a deployment can afford between
// snapshot compactions for a given startup budget.
func BenchmarkRecovery(b *testing.B) {
	v := viptree.MelbourneCentral(viptree.ScaleTiny)
	tree := viptree.MustBuildVIPTree(v)
	objs := bench.Objects(toModelVenue(v), 50, 7)
	locs := bench.Points(toModelVenue(v), 1024, 8)
	for _, n := range []int{1_000, 10_000} {
		b.Run(fmt.Sprintf("records-%d", n), func(b *testing.B) {
			dir := b.TempDir()
			eng, _, err := viptree.OpenEngine(tree, viptree.EngineOptions{
				Objects:    tree.IndexObjects(objs),
				WALDir:     dir,
				WALOptions: viptree.WALOptions{Sync: viptree.SyncOnRotate()},
			})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < n; i++ {
				if err := eng.Move(i%len(objs), locs[i%len(locs)]); err != nil {
					b.Fatal(err)
				}
			}
			if err := eng.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng2, rep, err := viptree.OpenEngine(tree, viptree.EngineOptions{
					Objects:    tree.IndexObjects(objs),
					WALDir:     dir,
					WALOptions: viptree.WALOptions{Sync: viptree.SyncOnRotate()},
				})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Replayed != n {
					b.Fatalf("replayed %d records, want %d", rep.Replayed, n)
				}
				if err := eng2.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
}
