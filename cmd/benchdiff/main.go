// Command benchdiff compares two benchjson artifacts (BENCH_build.json /
// BENCH_query.json) and fails when any benchmark's ns/op regressed past a
// tolerance. CI runs it against the artifact of the previous run on the same
// branch so performance regressions surface in the run that introduced them
// rather than drifting in silently.
//
// Usage:
//
//	benchdiff -baseline old/BENCH_query.json -current BENCH_query.json
//
// Semantics chosen for CI friendliness:
//
//   - A missing or unreadable baseline is NOT an error: the first run on a
//     branch has nothing to compare against, so benchdiff prints a note and
//     exits 0.
//   - Benchmarks present only on one side are reported but never fail the
//     run; renames and new benchmarks should not break CI.
//   - Only a regression (current slower than baseline by more than
//     -tolerance, default 25%) exits non-zero. Improvements are reported
//     and always pass.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

// result mirrors the benchjson output schema (cmd/benchjson).
type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

func load(path string) ([]result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rs []result
	if err := json.Unmarshal(data, &rs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rs, nil
}

// runDiff performs the whole comparison and returns the process exit code:
// 0 on pass (including the missing/corrupt-baseline skip), 1 when at least
// one benchmark regressed past the tolerance, 2 on an unusable -current.
// Split out of main so the exit semantics are testable.
func runDiff(baselinePath, currentPath string, tolerance float64, stdout, stderr io.Writer) int {
	if currentPath == "" {
		fmt.Fprintln(stderr, "benchdiff: -current is required")
		return 2
	}

	cur, err := load(currentPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}

	base, err := load(baselinePath)
	if err != nil {
		// First run on a branch, expired artifact, or corrupt file: nothing
		// to compare against, so pass. The current artifact becomes the
		// baseline of the next run.
		fmt.Fprintf(stdout, "benchdiff: no usable baseline (%v); skipping comparison\n", err)
		return 0
	}

	baseByName := make(map[string]result, len(base))
	for _, r := range base {
		baseByName[r.Name] = r
	}

	failed := 0
	seen := make(map[string]bool, len(cur))
	for _, c := range cur {
		seen[c.Name] = true
		b, ok := baseByName[c.Name]
		if !ok {
			fmt.Fprintf(stdout, "  new      %-60s %12.1f ns/op\n", c.Name, c.NsPerOp)
			continue
		}
		if b.NsPerOp <= 0 || c.NsPerOp <= 0 {
			continue
		}
		delta := c.NsPerOp/b.NsPerOp - 1
		status := "ok"
		if delta > tolerance {
			status = "REGRESS"
			failed++
		}
		fmt.Fprintf(stdout, "  %-8s %-60s %12.1f -> %12.1f ns/op (%+.1f%%)\n",
			status, c.Name, b.NsPerOp, c.NsPerOp, delta*100)
	}
	for _, b := range base {
		if !seen[b.Name] {
			fmt.Fprintf(stdout, "  removed  %-60s %12.1f ns/op\n", b.Name, b.NsPerOp)
		}
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "benchdiff: %d benchmark(s) regressed more than %.0f%% ns/op\n", failed, tolerance*100)
		return 1
	}
	fmt.Fprintf(stdout, "benchdiff: %d benchmark(s) within %.0f%% tolerance\n", len(cur), tolerance*100)
	return 0
}

func main() {
	baseline := flag.String("baseline", "", "benchjson file from the previous run (missing file is not an error)")
	current := flag.String("current", "", "benchjson file from this run")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional ns/op regression before failing (0.25 = 25%)")
	flag.Parse()
	os.Exit(runDiff(*baseline, *current, *tolerance, os.Stdout, os.Stderr))
}
