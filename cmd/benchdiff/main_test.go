package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeBench writes a benchjson artifact with the given name→ns/op pairs.
func writeBench(t *testing.T, dir, name string, nsPerOp map[string]float64) string {
	t.Helper()
	rs := make([]result, 0, len(nsPerOp))
	for n, ns := range nsPerOp {
		rs = append(rs, result{Name: n, Iterations: 100, NsPerOp: ns})
	}
	data, err := json.Marshal(rs)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// diff runs the comparison and returns (exit code, stdout, stderr).
func diff(t *testing.T, baseline, current string, tol float64) (int, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := runDiff(baseline, current, tol, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestRegressionAtToleranceBoundary(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", map[string]float64{"BenchmarkKNN": 1000})

	// Exactly at the tolerance: 25% slower on a 25% tolerance must PASS —
	// the contract is "more than", not "at least".
	cur := writeBench(t, dir, "at.json", map[string]float64{"BenchmarkKNN": 1250})
	if code, out, _ := diff(t, base, cur, 0.25); code != 0 {
		t.Fatalf("exactly-at-tolerance regression failed with code %d:\n%s", code, out)
	}

	// Just above the tolerance must fail with exit 1 and a REGRESS line.
	cur = writeBench(t, dir, "above.json", map[string]float64{"BenchmarkKNN": 1251})
	code, out, errOut := diff(t, base, cur, 0.25)
	if code != 1 {
		t.Fatalf("above-tolerance regression exited %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESS") {
		t.Errorf("stdout missing REGRESS marker:\n%s", out)
	}
	if !strings.Contains(errOut, "1 benchmark(s) regressed") {
		t.Errorf("stderr missing regression summary: %q", errOut)
	}

	// An improvement always passes.
	cur = writeBench(t, dir, "faster.json", map[string]float64{"BenchmarkKNN": 400})
	if code, out, _ := diff(t, base, cur, 0.25); code != 0 {
		t.Fatalf("improvement failed with code %d:\n%s", code, out)
	}
}

func TestMissingOrCorruptBaselineSkips(t *testing.T) {
	dir := t.TempDir()
	cur := writeBench(t, dir, "cur.json", map[string]float64{"BenchmarkKNN": 1000})

	// Missing baseline: first run on a branch, must pass with a note.
	code, out, _ := diff(t, filepath.Join(dir, "nope.json"), cur, 0.25)
	if code != 0 {
		t.Fatalf("missing baseline exited %d, want 0:\n%s", code, out)
	}
	if !strings.Contains(out, "skipping comparison") {
		t.Errorf("missing baseline did not print the skip note:\n%s", out)
	}

	// Corrupt baseline: same skip semantics.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ = diff(t, bad, cur, 0.25)
	if code != 0 {
		t.Fatalf("corrupt baseline exited %d, want 0:\n%s", code, out)
	}
	if !strings.Contains(out, "skipping comparison") {
		t.Errorf("corrupt baseline did not print the skip note:\n%s", out)
	}
}

func TestUnusableCurrentIsAnError(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", map[string]float64{"BenchmarkKNN": 1000})

	// Missing -current is a usage error, not a skip.
	if code, _, errOut := diff(t, base, "", 0.25); code != 2 {
		t.Fatalf("empty -current exited %d, want 2 (%q)", code, errOut)
	}
	if code, _, _ := diff(t, base, filepath.Join(dir, "nope.json"), 0.25); code != 2 {
		t.Fatal("missing -current file must exit 2")
	}

	// Malformed BENCH JSON for -current is an error too: silently passing
	// would hide a broken benchmark step.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("[{\"name\": 42}]"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := diff(t, base, bad, 0.25)
	if code != 2 {
		t.Fatalf("malformed -current exited %d, want 2", code)
	}
	if !strings.Contains(errOut, bad) {
		t.Errorf("error does not name the offending file: %q", errOut)
	}
}

func TestNewAndRemovedBenchmarksNeverFail(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", map[string]float64{
		"BenchmarkOld":    1000,
		"BenchmarkShared": 500,
	})
	cur := writeBench(t, dir, "cur.json", map[string]float64{
		"BenchmarkShared": 510,
		"BenchmarkNew":    9999,
	})
	code, out, _ := diff(t, base, cur, 0.25)
	if code != 0 {
		t.Fatalf("rename/new benchmarks failed the run with code %d:\n%s", code, out)
	}
	if !strings.Contains(out, "new      BenchmarkNew") {
		t.Errorf("new benchmark not reported:\n%s", out)
	}
	if !strings.Contains(out, "removed  BenchmarkOld") {
		t.Errorf("removed benchmark not reported:\n%s", out)
	}
}

func TestZeroNsPerOpIsIgnored(t *testing.T) {
	dir := t.TempDir()
	// A zero or negative ns/op (malformed metric line) must not divide by
	// zero or produce a spurious regression.
	base := writeBench(t, dir, "base.json", map[string]float64{"BenchmarkKNN": 0})
	cur := writeBench(t, dir, "cur.json", map[string]float64{"BenchmarkKNN": 1e12})
	if code, out, _ := diff(t, base, cur, 0.25); code != 0 {
		t.Fatalf("zero-baseline benchmark failed the run with code %d:\n%s", code, out)
	}
}
