// Command benchjson converts `go test -bench` output read from stdin into a
// JSON array of benchmark results, one object per benchmark line. It backs
// the CI benchmark smoke step, which records build and kNN timings as a
// machine-readable artifact (BENCH_build.json) so the performance trajectory
// of the index can be tracked across commits.
//
// Usage:
//
//	go test -bench 'TreeBuild|KNN' -benchtime=1x -run '^$' . | benchjson > BENCH_build.json
//
// Recognised per-line metrics are the standard testing.B columns (ns/op,
// B/op, allocs/op, MB/s) plus any custom b.ReportMetric units, which land in
// the metrics map verbatim.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	// Name is the benchmark name including sub-benchmark path and the
	// GOMAXPROCS suffix as printed by the testing package.
	Name string `json:"name"`
	// Iterations is the b.N the reported averages were measured over.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the ns/op column, the headline latency of the benchmark.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every other reported column keyed by its unit
	// (e.g. "B/op", "allocs/op", "qps").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	var results []result
	for in.Scan() {
		line := in.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// A benchmark line is: name, iterations, then (value, unit) pairs.
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			if fields[i+1] == "ns/op" {
				r.NsPerOp = v
			} else {
				r.Metrics[fields[i+1]] = v
			}
		}
		if len(r.Metrics) == 0 {
			r.Metrics = nil
		}
		results = append(results, r)
	}
	if err := in.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
