// Command experiments reproduces the tables and figures of the paper's
// evaluation (Section 4). Each experiment prints a text table whose rows
// mirror the series plotted in the paper.
//
// Usage:
//
//	experiments -exp fig9b -scale small
//	experiments -exp all -scale tiny
//	experiments -list
//
// Scales: tiny (unit-test sized venues), small (default; hundreds of rooms),
// full (Table 2 sized venues; the DistMx and G-tree baselines take a long
// time to build at this scale, mirroring the paper's observations — use
// -skip-distmx / -skip-slow to exclude them).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"viptree/internal/bench"
	"viptree/internal/venuegen"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment to run (table1, table2, fig7, fig8, fig9a, fig9b, fig10a, fig10b, fig11a, fig11b, fig11c, fig11d, ablations, all)")
		scale      = flag.String("scale", "small", "venue scale: tiny, small or full")
		pairs      = flag.Int("pairs", 0, "override the number of distance/path queries per data point")
		points     = flag.Int("points", 0, "override the number of kNN/range query points per data point")
		venues     = flag.String("venues", "", "comma-separated venue subset (MC, MC-2, Men, Men-2, CL, CL-2)")
		skipDistMx = flag.Bool("skip-distmx", false, "skip the DistMx baseline (O(D^2) construction)")
		skipSlow   = flag.Bool("skip-slow", false, "skip the G-tree and ROAD baselines")
		list       = flag.Bool("list", false, "list available experiments and exit")
		seed       = flag.Int64("seed", 1, "workload random seed")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"experiments reproduces the tables and figures of the paper's evaluation\n"+
				"(Section 4) as text tables. Run one experiment (-exp fig9b) or the whole\n"+
				"sweep (-exp all); -list prints the available experiment names.\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	all := bench.All()
	if *list {
		names := make([]string, 0, len(all))
		for n := range all {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Println(strings.Join(names, "\n"))
		return
	}

	var sc venuegen.Scale
	switch *scale {
	case "tiny":
		sc = venuegen.ScaleTiny
	case "small":
		sc = venuegen.ScaleSmall
	case "full":
		sc = venuegen.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want tiny, small or full)\n", *scale)
		os.Exit(2)
	}
	cfg := bench.DefaultConfig(sc)
	cfg.Seed = *seed
	cfg.SkipDistMx = *skipDistMx
	cfg.SkipSlow = *skipSlow
	if *pairs > 0 {
		cfg.Pairs = *pairs
	}
	if *points > 0 {
		cfg.Points = *points
	}
	if *venues != "" {
		cfg.VenueNames = strings.Split(*venues, ",")
	}
	if sc == venuegen.ScaleFull && !*skipDistMx {
		fmt.Fprintln(os.Stderr, "warning: DistMx at full scale materialises D^2 distances; pass -skip-distmx to exclude it")
	}

	run := func(name string) {
		fn, ok := all[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", name)
			os.Exit(2)
		}
		fmt.Println(fn(cfg).String())
	}
	if *exp == "all" {
		names := make([]string, 0, len(all))
		for n := range all {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			run(n)
		}
		return
	}
	for _, name := range strings.Split(*exp, ",") {
		run(strings.TrimSpace(name))
	}
}
