// Command indexbuild builds a chosen index over a chosen venue and reports
// its construction time, memory footprint and structural statistics — the
// quantities compared in Fig 8 of the paper.
//
// Usage:
//
//	indexbuild -venue Men-2 -index vip -scale small
//	indexbuild -venue CL -index gtree -scale small
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"viptree/internal/baseline/distaware"
	"viptree/internal/baseline/distmatrix"
	"viptree/internal/baseline/gtree"
	"viptree/internal/baseline/road"
	"viptree/internal/bench"
	"viptree/internal/iptree"
	"viptree/internal/venuegen"
)

func main() {
	var (
		venue     = flag.String("venue", "Men", "venue: MC, MC-2, Men, Men-2, CL or CL-2")
		indexName = flag.String("index", "vip", "index: ip, vip, distmx, distaw, gtree or road")
		scale     = flag.String("scale", "small", "venue scale: tiny, small or full")
		minDegree = flag.Int("t", 2, "minimum degree t for IP-Tree/VIP-Tree")
	)
	flag.Parse()

	var sc venuegen.Scale
	switch *scale {
	case "tiny":
		sc = venuegen.ScaleTiny
	case "small":
		sc = venuegen.ScaleSmall
	case "full":
		sc = venuegen.ScaleFull
	default:
		fmt.Fprintln(os.Stderr, "unknown scale; want tiny, small or full")
		os.Exit(2)
	}
	cfg := bench.DefaultConfig(sc)
	cfg.VenueNames = []string{*venue}
	nv := cfg.Venues()[0]
	vs := nv.Venue.ComputeStats()
	fmt.Printf("venue %s: %d doors, %d partitions, %d D2D edges, %d floors\n",
		nv.Name, vs.Doors, vs.Partitions, vs.D2DEdges, vs.Floors)

	start := time.Now()
	var memory int64
	switch *indexName {
	case "ip":
		t := iptree.MustBuildIPTree(nv.Venue, iptree.Options{MinDegree: *minDegree})
		memory = t.MemoryBytes()
		printTreeStats(t.TreeStats())
	case "vip":
		t := iptree.MustBuildVIPTree(nv.Venue, iptree.Options{MinDegree: *minDegree})
		memory = t.MemoryBytes()
		printTreeStats(t.TreeStats())
	case "distmx":
		m := distmatrix.Build(nv.Venue, true)
		memory = m.MemoryBytes()
	case "distaw":
		memory = distaware.New(nv.Venue).MemoryBytes()
	case "gtree":
		memory = gtree.Build(nv.Venue, gtree.Options{}).MemoryBytes()
	case "road":
		memory = road.Build(nv.Venue, road.Options{}).MemoryBytes()
	default:
		fmt.Fprintf(os.Stderr, "unknown index %q\n", *indexName)
		os.Exit(2)
	}
	fmt.Printf("index %s: construction %v, memory %.2f MB\n",
		*indexName, time.Since(start).Round(time.Millisecond), float64(memory)/(1<<20))
}

func printTreeStats(s iptree.Stats) {
	fmt.Printf("tree: %d nodes, %d leaves, height %d, rho %.2f (max %d), fanout %.2f, superior doors %.2f (max %d)\n",
		s.Nodes, s.Leaves, s.Height, s.AvgAccessDoors, s.MaxAccessDoors, s.AvgFanout, s.AvgSuperiorDoors, s.MaxSuperiorDoors)
}
