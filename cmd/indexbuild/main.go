// Command indexbuild builds a chosen index over a chosen venue and reports
// its construction time, memory footprint and structural statistics — the
// quantities compared in Fig 8 of the paper.
//
// With -out it additionally writes a versioned binary snapshot of the built
// index (IP-Tree and VIP-Tree only), so that a serving process — for example
// `queryrunner -load` — starts in milliseconds instead of re-paying the
// construction cost. The command prints build-vs-serialize timings so the
// trade-off is visible.
//
// Usage:
//
//	indexbuild -venue Men-2 -index vip -scale small
//	indexbuild -venue CL -index gtree -scale small
//	indexbuild -venue Men -index vip -out men-vip.snap -objects 100
//	indexbuild -compact men-vip.snap -wal /var/lib/vip/wal -out men-vip2.snap
//
// With -compact SNAP -wal DIR the command runs WAL compaction instead of a
// build: it loads the snapshot, replays the write-ahead log records past the
// snapshot's sequence stamp onto its object index, writes a freshly stamped
// snapshot to -out, and reclaims the WAL segments the new snapshot covers.
// Run it periodically to bound both recovery time and log size.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"viptree/internal/baseline/distaware"
	"viptree/internal/baseline/distmatrix"
	"viptree/internal/baseline/gtree"
	"viptree/internal/baseline/road"
	"viptree/internal/bench"
	"viptree/internal/engine"
	"viptree/internal/index"
	"viptree/internal/iptree"
	"viptree/internal/model"
	"viptree/internal/snapshot"
	"viptree/internal/venuegen"
)

func main() {
	var (
		venue       = flag.String("venue", "Men", "venue to build over: MC, MC-2, Men, Men-2, CL or CL-2")
		indexName   = flag.String("index", "vip", "index to build: ip, vip, distmx, distaw, gtree or road")
		scale       = flag.String("scale", "small", "venue scale: tiny, small or full")
		minDegree   = flag.Int("t", 2, "minimum degree t for IP-Tree/VIP-Tree construction (Algorithm 1)")
		parallelism = flag.Int("parallelism", 0, "construction worker count for ip/vip (0 = GOMAXPROCS); the built index is bit-identical at any value")
		out         = flag.String("out", "", "write a binary snapshot of the built index to this file (ip and vip only)")
		objects     = flag.Int("objects", 0, "embed an object index over this many random objects into the snapshot (0 = none)")
		objSeed     = flag.Int64("objseed", 1, "random seed for the embedded object set")
		compactFrom = flag.String("compact", "", "compaction mode: load this snapshot, replay the -wal onto its object index, write a freshly stamped snapshot to -out, and reclaim covered WAL segments")
		walDir      = flag.String("wal", "", "write-ahead log directory to replay in -compact mode")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"indexbuild builds an index over a synthetic venue, reports construction\n"+
				"time, memory and structural statistics, and optionally persists the built\n"+
				"index as a snapshot (-out) for instant loading by queryrunner -load.\n\n"+
				"For the ip and vip indexes the construction pipeline fans out over\n"+
				"-parallelism workers and a per-phase timing breakdown is printed\n"+
				"(leaves / hierarchy / leaf matrices / non-leaf matrices / VIP\n"+
				"materialisation), so speedups are attributable to a phase.\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *compactFrom != "" {
		if *walDir == "" || *out == "" {
			fmt.Fprintln(os.Stderr, "-compact requires both -wal (the log to replay) and -out (the new snapshot)")
			os.Exit(2)
		}
		compact(*compactFrom, *walDir, *out)
		return
	}

	var sc venuegen.Scale
	switch *scale {
	case "tiny":
		sc = venuegen.ScaleTiny
	case "small":
		sc = venuegen.ScaleSmall
	case "full":
		sc = venuegen.ScaleFull
	default:
		fmt.Fprintln(os.Stderr, "unknown scale; want tiny, small or full")
		os.Exit(2)
	}
	cfg := bench.DefaultConfig(sc)
	cfg.VenueNames = []string{*venue}
	nv := cfg.Venues()[0]
	vs := nv.Venue.ComputeStats()
	fmt.Printf("venue %s: %d doors, %d partitions, %d D2D edges, %d floors\n",
		nv.Name, vs.Doors, vs.Partitions, vs.D2DEdges, vs.Floors)

	start := time.Now()
	var memory int64
	var snapshotter index.Snapshotter
	// objIndexer builds the embedded object index; the VIP tree's own method
	// must be used so the persisted index reports the right name.
	var objIndexer interface {
		IndexObjects([]model.Location) *iptree.ObjectIndex
	}
	treeOpts := iptree.Options{MinDegree: *minDegree, Parallelism: *parallelism}
	switch *indexName {
	case "ip":
		t := iptree.MustBuildIPTree(nv.Venue, treeOpts)
		memory = t.MemoryBytes()
		printTreeStats(t.TreeStats())
		printBuildTimings(t.BuildTimings())
		snapshotter, objIndexer = t, t
	case "vip":
		t := iptree.MustBuildVIPTree(nv.Venue, treeOpts)
		memory = t.MemoryBytes()
		printTreeStats(t.TreeStats())
		printBuildTimings(t.BuildTimings())
		snapshotter, objIndexer = t, t
	case "distmx":
		m := distmatrix.Build(nv.Venue, true)
		memory = m.MemoryBytes()
	case "distaw":
		memory = distaware.New(nv.Venue).MemoryBytes()
	case "gtree":
		memory = gtree.Build(nv.Venue, gtree.Options{}).MemoryBytes()
	case "road":
		memory = road.Build(nv.Venue, road.Options{}).MemoryBytes()
	default:
		fmt.Fprintf(os.Stderr, "unknown index %q\n", *indexName)
		os.Exit(2)
	}
	buildTime := time.Since(start)
	fmt.Printf("index %s: construction %v, memory %.2f MB\n",
		*indexName, buildTime.Round(time.Millisecond), float64(memory)/(1<<20))

	if *out == "" {
		return
	}
	if snapshotter == nil {
		fmt.Fprintf(os.Stderr, "-out is only supported for the ip and vip indexes (%q does not implement snapshot persistence)\n", *indexName)
		os.Exit(2)
	}
	var oi *iptree.ObjectIndex
	if *objects > 0 {
		oi = objIndexer.IndexObjects(bench.Objects(nv.Venue, *objects, *objSeed))
	}
	serStart := time.Now()
	if err := snapshot.Save(*out, nv.Venue, snapshotter, oi); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	serTime := time.Since(serStart)
	info, err := os.Stat(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("snapshot %s: %.2f MB, serialized in %v (construction took %v)\n",
		*out, float64(info.Size())/(1<<20), serTime.Round(time.Millisecond),
		buildTime.Round(time.Millisecond))
	if serTime > 0 && buildTime > serTime {
		fmt.Printf("snapshot: serializing was %.1fx faster than building — load with `queryrunner -load %s`\n",
			float64(buildTime)/float64(serTime), *out)
	}
}

// compact folds the write-ahead log into a fresh snapshot: replay everything
// past the old snapshot's stamp, save the result (stamped at the new head),
// and reclaim the WAL segments the new snapshot now covers. The WAL keeps
// only what the new snapshot cannot reconstruct, so recovery after a crash
// replays a short suffix instead of the whole history.
func compact(from, walDir, out string) {
	snap, err := snapshot.Load(from)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if snap.Objects == nil {
		fmt.Fprintf(os.Stderr, "%s embeds no object index; there is nothing to replay a WAL onto (rebuild with -objects)\n", from)
		os.Exit(2)
	}
	snapshotter, ok := snap.Index().(index.Snapshotter)
	if !ok {
		fmt.Fprintf(os.Stderr, "%s index kind %s cannot be persisted\n", from, snap.Kind())
		os.Exit(2)
	}
	eng, rep, err := engine.Open(snap.Index(), engine.Options{
		Objects: snap.Objects,
		WALDir:  walDir,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	torn := ""
	if rep.TornTail {
		torn = fmt.Sprintf(", torn tail truncated (%d bytes)", rep.DroppedBytes)
	}
	fmt.Printf("wal: %d segments, %d records scanned in %v%s; %d replayed onto snapshot seq %d in %v, head %d\n",
		rep.Segments, rep.Scanned, rep.ScanElapsed.Round(time.Microsecond), torn,
		rep.Replayed, rep.SnapshotSeq, rep.ReplayElapsed.Round(time.Microsecond), rep.Head)

	if err := snapshot.Save(out, snap.Venue, snapshotter, snap.Objects); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	info, err := os.Stat(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("snapshot %s: %.2f MB, stamped at seq %d\n",
		out, float64(info.Size())/(1<<20), rep.Head)

	reclaimed, err := eng.WAL().Checkpoint(rep.Head)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := eng.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wal: reclaimed %d of %d segments covered by the new snapshot\n", reclaimed, rep.Segments)
}

func printTreeStats(s iptree.Stats) {
	fmt.Printf("tree: %d nodes, %d leaves, height %d, rho %.2f (max %d), fanout %.2f, superior doors %.2f (max %d)\n",
		s.Nodes, s.Leaves, s.Height, s.AvgAccessDoors, s.MaxAccessDoors, s.AvgFanout, s.AvgSuperiorDoors, s.MaxSuperiorDoors)
}

func printBuildTimings(bt iptree.BuildTimings) {
	fmt.Printf("phases: leaves %v, hierarchy %v, leaf matrices %v, non-leaf matrices %v",
		bt.Leaves.Round(time.Microsecond), bt.Hierarchy.Round(time.Microsecond),
		bt.LeafMatrices.Round(time.Microsecond), bt.NonLeafMatrices.Round(time.Microsecond))
	if bt.VIPMaterialise > 0 {
		fmt.Printf(", VIP materialisation %v", bt.VIPMaterialise.Round(time.Microsecond))
	}
	fmt.Println()
}
