// Command queryrunner runs a query workload (shortest distance, shortest
// path, kNN or range) against a chosen index on a chosen venue through the
// concurrent query engine, and reports per-query latency and aggregate
// throughput — a command-line counterpart to the Go benchmarks in
// bench_test.go.
//
// With -load it serves from an index snapshot written by `indexbuild -out`
// instead of building one: the process starts in milliseconds because no
// tree construction runs at all, and the loaded index answers bit-identical
// queries to a freshly built one. With -verify every distance/path result is
// cross-checked against the exact D2D ground truth and kNN/range results
// against a brute-force scan, which is how CI guards the on-disk format.
//
// With -update-ratio the workload becomes a mixed read/write stream: the
// given fraction of operations are object updates (moves of random objects
// to random locations) interleaved with the chosen read query, served
// concurrently by the engine against the live object index — the
// moving-objects scenario the IP-Tree/VIP-Tree object layer is built for.
// Throughput is then reported separately as QPS (reads) and UPS (updates).
// Updates flow through the index's single-writer update log while reads
// serve lock-free from published epochs; the report includes the final log
// head and the maximum applied-epoch lag (how far the published epoch
// trailed the log tip) observed during the run.
//
// Usage:
//
//	queryrunner -venue Men-2 -index vip -query distance -n 10000
//	queryrunner -venue CL -index distaw -query knn -k 5 -objects 50
//	queryrunner -venue Men -index vip -query distance -n 100000 -parallel 8
//	queryrunner -load men-vip.snap -query distance -n 10000 -verify
//	queryrunner -venue Men -index vip -query knn -n 50000 -update-ratio 0.1 -parallel 4
//	queryrunner -venue Men -index vip -query distance -n 100000 -batch 1024
//	queryrunner -venue Men -index vip -query knn -update-ratio 0.2 -wal /tmp/men.wal
//
// With -wal DIR every object update is appended to a durable write-ahead
// log before the process exits: on startup the runner recovers whatever a
// previous run left in DIR (replaying the log over the loaded index and
// reporting the recovery time), and on SIGINT/SIGTERM it drains the
// in-flight batch, flushes the log to disk and exits 0 — no durably
// acknowledged update is ever lost, even across a kill -9 (the torn tail is
// truncated on the next start). -wal-sync picks the fsync policy: always
// (every batch, the default), interval=50ms, or rotate (only at segment
// boundaries).
//
// With -batch N the workload is submitted in batches of N queries, which is
// how a real serving frontend hands work to the engine: each batch flows
// through the batched query planner (shared-climb execution over grouped
// leaf pairs for distance, shared source climbs and the climb cache for
// kNN/range), and the report adds the per-batch latency next to the
// per-query quantiles. -no-planner keeps the same batching but disables the
// planner (engine.Options.DisablePlanner), which is the honest baseline when
// measuring what the planner buys.
//
// With -workload zipf the query points are Zipf-skewed over per-partition
// hot spots instead of uniform: a few hot sources dominate, so batched
// kNN/range execution hits the climb cache on almost every query. The
// report then includes the cache hit rate next to the throughput:
//
//	queryrunner -venue Men -index vip -query knn -n 50000 -batch 256 -workload zipf
package main

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"syscall"
	"time"

	"viptree/internal/baseline/distaware"
	"viptree/internal/baseline/distmatrix"
	"viptree/internal/baseline/gtree"
	"viptree/internal/baseline/road"
	"viptree/internal/bench"
	"viptree/internal/engine"
	"viptree/internal/index"
	"viptree/internal/iptree"
	"viptree/internal/model"
	"viptree/internal/snapshot"
	"viptree/internal/venuegen"
	"viptree/internal/wal"
)

func main() {
	var (
		venue       = flag.String("venue", "Men", "venue to query: MC, MC-2, Men, Men-2, CL or CL-2 (ignored with -load)")
		indexName   = flag.String("index", "vip", "index to build: ip, vip, distmx, distaw, gtree or road (ignored with -load)")
		scale       = flag.String("scale", "small", "venue scale: tiny, small or full (ignored with -load)")
		query       = flag.String("query", "distance", "query type: distance, path, knn or range")
		n           = flag.Int("n", 1000, "number of queries to run")
		k           = flag.Int("k", 5, "k for kNN queries")
		objects     = flag.Int("objects", 50, "number of indexed objects for kNN/range queries (ignored when the snapshot embeds an object index)")
		radius      = flag.Float64("r", 100, "radius in metres for range queries")
		seed        = flag.Int64("seed", 1, "workload seed")
		workload    = flag.String("workload", "uniform", "query point distribution: uniform, or zipf (Zipf-skewed over per-partition hot spots — repeated sources exercise the planner's climb cache)")
		parallel    = flag.Int("parallel", 1, "engine worker count (0 = GOMAXPROCS)")
		load        = flag.String("load", "", "serve from this index snapshot (written by indexbuild -out) instead of building")
		verify      = flag.Bool("verify", false, "cross-check every result against the exact D2D ground truth")
		updateRatio = flag.Float64("update-ratio", 0, "fraction of operations that are object updates (moves) in [0,1); requires a mutable object index (ip/vip)")
		batch       = flag.Int("batch", 0, "submit the workload in batches of this many queries (0 = one batch for the whole workload); each batch runs through the batched query planner")
		noPlanner   = flag.Bool("no-planner", false, "disable the batched query planner (engine falls back to per-query execution inside ExecuteBatch)")
		walDir      = flag.String("wal", "", "durable write-ahead log directory: recover any state a previous run left there, then log every object update (requires a mutable object index: ip, vip or a tree snapshot)")
		walSync     = flag.String("wal-sync", "always", "wal fsync policy: always, rotate, or interval=<duration> (e.g. interval=50ms)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"queryrunner drives a query workload through the concurrent engine and\n"+
				"reports latency and throughput. It either builds an index (-venue/-index)\n"+
				"or serves instantly from a snapshot (-load). -verify cross-checks every\n"+
				"answer against the exact ground truth. -update-ratio mixes object moves\n"+
				"into the stream and reports QPS (reads) and UPS (updates) separately.\n"+
				"-batch N submits the workload in batches of N queries through the\n"+
				"batched query planner and reports batched throughput; -no-planner\n"+
				"disables the planner for an apples-to-apples baseline. -wal DIR makes\n"+
				"updates durable: the runner recovers DIR on startup and flushes it on\n"+
				"shutdown (SIGINT/SIGTERM drain cleanly and exit 0).\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *updateRatio < 0 || *updateRatio >= 1 {
		fmt.Fprintln(os.Stderr, "-update-ratio must be in [0,1)")
		os.Exit(2)
	}
	if *batch < 0 {
		fmt.Fprintln(os.Stderr, "-batch must be >= 0")
		os.Exit(2)
	}
	if *workload != "uniform" && *workload != "zipf" {
		fmt.Fprintln(os.Stderr, "-workload must be uniform or zipf")
		os.Exit(2)
	}

	var (
		v    *model.Venue
		ix   index.ObjectIndexer
		oq   index.ObjectQuerier
		objs []model.Location
	)
	if *load != "" {
		loadStart := time.Now()
		snap, err := snapshot.Load(*load)
		if err != nil {
			// The typed failure kind (missing, truncated, checksum, …) tells an
			// operator — or a supervisor parsing stderr — whether to fix the
			// path, re-copy the file, or rebuild the index.
			fmt.Fprintf(os.Stderr, "queryrunner: cannot serve from %s: %v [%s]\n", *load, err, snapshot.Classify(err))
			os.Exit(1)
		}
		v = snap.Venue
		ix = snap.Index()
		fmt.Printf("loaded %s (%s) in %v — no tree construction\n",
			*load, snap.Kind(), time.Since(loadStart).Round(time.Microsecond))
		if snap.Objects != nil {
			oq = snap.Objects
			objs = snap.Objects.Objects()
		}
	} else {
		var sc venuegen.Scale
		switch *scale {
		case "tiny":
			sc = venuegen.ScaleTiny
		case "small":
			sc = venuegen.ScaleSmall
		case "full":
			sc = venuegen.ScaleFull
		default:
			fmt.Fprintln(os.Stderr, "unknown scale; want tiny, small or full")
			os.Exit(2)
		}
		cfg := bench.DefaultConfig(sc)
		cfg.VenueNames = []string{*venue}
		v = cfg.Venues()[0].Venue
		ix = buildIndex(v, *indexName)
	}
	if oq == nil {
		objs = bench.Objects(v, *objects, *seed+7)
		oq = ix.NewObjectQuerier(objs)
	}

	// Latency sampling is a fixed ring of atomic slots: recording is one
	// clock read plus one slot write per operation, so the hot loop stays
	// allocation-free even with percentiles enabled.
	engOpts := engine.Options{Workers: *parallel, Objects: oq, LatencySampleSize: 1 << 14, DisablePlanner: *noPlanner}
	var eng *engine.Engine
	if *walDir != "" {
		sync, err := parseSyncPolicy(*walSync)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		engOpts.WALDir = *walDir
		engOpts.WALOptions = wal.Options{Sync: sync}
		var rep *engine.WALRecovery
		eng, rep, err = engine.Open(ix, engOpts)
		if err != nil {
			kind := "wal-io"
			if errors.Is(err, wal.ErrCorrupt) {
				kind = "wal-corrupt"
			}
			fmt.Fprintf(os.Stderr, "queryrunner: cannot recover %s: %v [%s]\n", *walDir, err, kind)
			os.Exit(1)
		}
		printRecovery(rep, sync)
	} else {
		eng = engine.New(ix, engOpts)
	}

	// Live object IDs and locations: WAL replay may have inserted, moved or
	// deleted objects, and a snapshot saved from a mutated index may contain
	// deleted slots — dead slots must be neither move targets nor part of
	// the verification ground truth.
	liveIDs := make([]int, 0, len(objs))
	if mi, ok := oq.(*iptree.ObjectIndex); ok {
		objs = mi.Objects()
		live := make([]model.Location, 0, len(objs))
		for id := range objs {
			if loc, alive := mi.Location(id); alive {
				liveIDs = append(liveIDs, id)
				live = append(live, loc)
			}
		}
		objs = live
	} else {
		for id := range objs {
			liveIDs = append(liveIDs, id)
		}
	}
	if *updateRatio > 0 {
		if eng.Mutable() == nil {
			fmt.Fprintf(os.Stderr, "index %s does not support live object updates; use -index ip or vip (or a tree snapshot)\n", ix.Name())
			os.Exit(2)
		}
		if *verify && (*query == "knn" || *query == "range") {
			fmt.Fprintln(os.Stderr, "-verify cannot check knn/range results while objects move; drop -verify or -update-ratio")
			os.Exit(2)
		}
		if len(objs) == 0 {
			fmt.Fprintln(os.Stderr, "-update-ratio needs at least one object (-objects)")
			os.Exit(2)
		}
	}

	var queries []engine.Query
	switch *query {
	case "distance", "path":
		kind := engine.KindDistance
		if *query == "path" {
			kind = engine.KindPath
		}
		// With -workload zipf the sources are skewed, the targets uniform:
		// the hot-source pattern a venue sees at rush hour.
		var srcs []model.Location
		if *workload == "zipf" {
			srcs = zipfPoints(v, *n, *seed)
		}
		for i, p := range bench.Pairs(v, *n, *seed) {
			s := p.S
			if srcs != nil {
				s = srcs[i]
			}
			queries = append(queries, engine.Query{Kind: kind, S: s, T: p.T})
		}
	case "knn":
		for _, p := range queryPoints(v, *n, *seed, *workload) {
			queries = append(queries, engine.Query{Kind: engine.KindKNN, S: p, K: *k})
		}
	case "range":
		for _, p := range queryPoints(v, *n, *seed, *workload) {
			queries = append(queries, engine.Query{Kind: engine.KindRange, S: p, Radius: *radius})
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown query type %q\n", *query)
		os.Exit(2)
	}

	if len(queries) == 0 {
		fmt.Fprintln(os.Stderr, "no queries to run (-n 0)")
		os.Exit(2)
	}

	// Mix object updates into the stream: each selected slot becomes a move
	// of a random object to a random location, exercising the mutable object
	// layer concurrently with the reads around it.
	reads, updates := len(queries), 0
	if *updateRatio > 0 {
		rng := rand.New(rand.NewSource(*seed + 99))
		for i := range queries {
			if rng.Float64() < *updateRatio {
				queries[i] = engine.Query{
					Kind:     engine.KindMove,
					ObjectID: liveIDs[rng.Intn(len(liveIDs))],
					S:        v.RandomLocation(rng),
				}
				updates++
			}
		}
		reads = len(queries) - updates
	}

	// Warm the pooled scratch so the measurement reflects steady state, and
	// drop the warm-up samples from the latency ring.
	warm := queries
	if len(warm) > 64 {
		warm = warm[:64]
	}
	eng.ExecuteBatch(warm)
	eng.ResetLatencies()

	// While updates flow through the single-writer log, sample the
	// applied-epoch lag (head seq minus published seq): it measures how far
	// the epoch readers serve behind the log tip, and is transiently
	// non-zero only inside a combining batch.
	var lagStop chan struct{}
	var lagDone chan struct{}
	var maxLag uint64
	if updates > 0 {
		if clog := eng.ChangeLog(); clog != nil {
			lagStop, lagDone = make(chan struct{}), make(chan struct{})
			go func() {
				defer close(lagDone)
				tick := time.NewTicker(200 * time.Microsecond)
				defer tick.Stop()
				for {
					select {
					case <-lagStop:
						return
					case <-tick.C:
						head, pub := clog.HeadSeq(), clog.PublishedSeq()
						if head > pub && head-pub > maxLag {
							maxLag = head - pub
						}
					}
				}
			}()
		}
	}

	// Graceful shutdown: SIGINT/SIGTERM stops the run between batches — the
	// in-flight batch drains, the WAL flushes to disk, and the process exits
	// 0 having durably acknowledged everything it applied. (With -batch 0
	// the whole workload is one batch, so the signal takes effect at the end.)
	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigC)

	// -batch N submits the workload the way a serving frontend would: in
	// fixed-size batches, each one planned and executed as a unit. With
	// -batch 0 the whole workload is one batch (the historical behaviour).
	pre := eng.Stats() // baseline for the climb-cache hit rate of the measured run
	start := time.Now()
	var results []engine.Result
	nBatches := 1
	interrupted := false
	if *batch > 0 && *batch < len(queries) {
		results = make([]engine.Result, 0, len(queries))
		nBatches = 0
		for off := 0; off < len(queries) && !interrupted; off += *batch {
			end := min(off+*batch, len(queries))
			results = append(results, eng.ExecuteBatch(queries[off:end])...)
			nBatches++
			select {
			case sig := <-sigC:
				fmt.Printf("caught %v: draining and flushing the wal\n", sig)
				interrupted = true
			default:
			}
		}
	} else {
		results = eng.ExecuteBatch(queries)
	}
	total := time.Since(start)
	if lagStop != nil {
		close(lagStop)
		<-lagDone
	}

	if interrupted {
		closeWAL(eng)
		fmt.Printf("interrupted: drained %d/%d operations cleanly\n", len(results), len(queries))
		return
	}

	failed := 0
	var firstErr error
	for i := range results {
		if results[i].Err != nil {
			if firstErr == nil {
				firstErr = results[i].Err
			}
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d queries failed: %v\n", failed, firstErr)
		os.Exit(1)
	}

	if *verify {
		if err := verifyResults(v, queries, results, objs); err != nil {
			fmt.Fprintln(os.Stderr, "verification failed:", err)
			os.Exit(1)
		}
		fmt.Printf("verified %d results against the D2D ground truth\n", len(results))
	}

	closeWAL(eng)

	workers := eng.Workers()
	perQuery := float64(total.Microseconds()) / float64(len(queries))
	latencies := formatQuantiles(eng)
	mode := ""
	if *batch > 0 {
		perBatch := total / time.Duration(nBatches)
		mode = fmt.Sprintf(", batch=%d (%d batches, %v/batch)", *batch, nBatches, perBatch.Round(time.Microsecond))
	}
	if *noPlanner {
		mode += ", planner off"
	}
	// Climb-cache hit rate of the measured run: only batched kNN/range
	// execution touches the cache, so the line appears exactly when the
	// planner routed object queries through the batch path.
	if st := eng.Stats(); st.ClimbCacheHits+st.ClimbCacheMisses > pre.ClimbCacheHits+pre.ClimbCacheMisses {
		hits := st.ClimbCacheHits - pre.ClimbCacheHits
		lookups := hits + st.ClimbCacheMisses - pre.ClimbCacheMisses
		mode += fmt.Sprintf(", climb cache %.1f%% hits (%d/%d)", 100*float64(hits)/float64(lookups), hits, lookups)
	}
	if updates > 0 {
		if clog := eng.ChangeLog(); clog != nil {
			head, pub := clog.HeadSeq(), clog.PublishedSeq()
			if head != pub {
				fmt.Fprintf(os.Stderr, "update log not quiescent after the run: head %d != published %d\n", head, pub)
				os.Exit(1)
			}
			mode += fmt.Sprintf(", log head %d, max epoch lag %d", head, maxLag)
		}
		qps := float64(reads) / total.Seconds()
		ups := float64(updates) / total.Seconds()
		fmt.Printf("%s %s %s+moves: %d ops (%d reads / %d updates), %d workers (%d cores)%s, %.2f us/op, %.0f qps, %.0f ups, %s (total %v)\n",
			v.Name, ix.Name(), *query, len(queries), reads, updates, workers, runtime.NumCPU(), mode, perQuery, qps, ups, latencies, total)
		return
	}
	qps := float64(len(queries)) / total.Seconds()
	fmt.Printf("%s %s %s: %d queries, %d workers (%d cores)%s, %.2f us/query, %.0f qps, %s (total %v)\n",
		v.Name, ix.Name(), *query, len(queries), workers, runtime.NumCPU(), mode, perQuery, qps, latencies, total)
}

// queryPoints draws the kNN/range query points for the chosen workload.
func queryPoints(v *model.Venue, n int, seed int64, workload string) []model.Location {
	if workload == "zipf" {
		return zipfPoints(v, n, seed)
	}
	return bench.Points(v, n, seed)
}

// zipfPoints returns n query points Zipf-skewed over the venue's partitions:
// every partition gets one fixed hot spot, the partitions are ranked by a
// seeded shuffle, and points are drawn rank-skewed — a handful of hot
// sources (lobbies, entrances at rush hour) dominate the stream. Because
// each hot spot is one exact location, repeated draws share their Algorithm-2
// climb through the planner's climb cache; the same seed always yields the
// same stream.
func zipfPoints(v *model.Venue, n int, seed int64) []model.Location {
	rng := rand.New(rand.NewSource(seed))
	hot := make([]model.Location, v.NumPartitions())
	for pid := range hot {
		hot[pid] = v.RandomLocationIn(model.PartitionID(pid), rng)
	}
	rng.Shuffle(len(hot), func(i, j int) { hot[i], hot[j] = hot[j], hot[i] })
	z := rand.NewZipf(rng, 1.3, 1, uint64(len(hot)-1))
	out := make([]model.Location, n)
	for i := range out {
		out[i] = hot[z.Uint64()]
	}
	return out
}

// parseSyncPolicy maps the -wal-sync flag to a wal.SyncPolicy.
func parseSyncPolicy(s string) (wal.SyncPolicy, error) {
	switch {
	case s == "always":
		return wal.SyncAlways(), nil
	case s == "rotate":
		return wal.SyncOnRotate(), nil
	case strings.HasPrefix(s, "interval="):
		d, err := time.ParseDuration(strings.TrimPrefix(s, "interval="))
		if err != nil || d <= 0 {
			return wal.SyncPolicy{}, fmt.Errorf("-wal-sync interval: want a positive duration, got %q", s)
		}
		return wal.SyncInterval(d), nil
	}
	return wal.SyncPolicy{}, fmt.Errorf("-wal-sync: want always, rotate or interval=<duration>, got %q", s)
}

// printRecovery reports what engine.Open reconstructed from the WAL and how
// long each recovery phase took — the startup cost of durability.
func printRecovery(rep *engine.WALRecovery, sync wal.SyncPolicy) {
	torn := ""
	if rep.TornTail {
		torn = fmt.Sprintf(", torn tail truncated (%d bytes)", rep.DroppedBytes)
	}
	fmt.Printf("wal: %d segments, %d records scanned in %v%s; %d replayed onto snapshot seq %d in %v, head %d, fsync %v\n",
		rep.Segments, rep.Scanned, rep.ScanElapsed.Round(time.Microsecond), torn,
		rep.Replayed, rep.SnapshotSeq, rep.ReplayElapsed.Round(time.Microsecond), rep.Head, sync)
}

// closeWAL flushes the write-ahead log and reports the durable watermark:
// every sequence up to it survives a crash after this point. A no-op for
// non-durable runs.
func closeWAL(eng *engine.Engine) {
	if eng.WAL() == nil {
		return
	}
	if err := eng.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "wal close:", err)
		os.Exit(1)
	}
	fmt.Printf("wal: flushed, durable seq %d\n", eng.WAL().DurableSeq())
}

// formatQuantiles renders the p50/p95/p99 per-operation latencies sampled by
// the engine's ring buffer during the measured batch.
func formatQuantiles(eng *engine.Engine) string {
	qs := eng.LatencyQuantiles(0.50, 0.95, 0.99)
	if qs == nil {
		return "latency n/a"
	}
	return fmt.Sprintf("p50 %s / p95 %s / p99 %s",
		qs[0].Round(100*time.Nanosecond), qs[1].Round(100*time.Nanosecond), qs[2].Round(100*time.Nanosecond))
}

// verifyResults cross-checks every engine result against the exact D2D
// ground truth: distances and path lengths must match the Dijkstra answer,
// and kNN/range distances must match a brute-force scan over the object set.
func verifyResults(v *model.Venue, queries []engine.Query, results []engine.Result, objs []model.Location) error {
	const tol = 1e-6
	approx := func(a, b float64) bool {
		if a == b {
			return true
		}
		return math.Abs(a-b) <= tol*(1+math.Abs(b))
	}
	for i, q := range queries {
		r := results[i]
		switch q.Kind {
		case engine.KindDistance, engine.KindPath:
			want := v.D2D().LocationDist(q.S, q.T)
			if !approx(r.Dist, want) {
				return fmt.Errorf("query %d: distance(%v, %v) = %v, ground truth %v", i, q.S, q.T, r.Dist, want)
			}
		case engine.KindKNN, engine.KindRange:
			// Brute-force distances to every object, ascending.
			dists := make([]float64, len(objs))
			for j, o := range objs {
				dists[j] = v.D2D().LocationDist(q.S, o)
			}
			sort.Float64s(dists)
			if q.Kind == engine.KindKNN {
				// Venues are validated connected, so every object is
				// reachable and the result count is exact — a truncated (or
				// empty) result set is a verification failure, not a pass.
				if want := min(q.K, len(objs)); len(r.Objects) != want {
					return fmt.Errorf("query %d: kNN returned %d objects, ground truth %d", i, len(r.Objects), want)
				}
				for j, res := range r.Objects {
					if !approx(res.Dist, dists[j]) {
						return fmt.Errorf("query %d: kNN rank %d distance %v, ground truth %v", i, j, res.Dist, dists[j])
					}
				}
			} else {
				// Index distances equal the ground truth only up to float
				// rounding, so objects within a whisker of the radius may
				// legitimately fall on either side: bracket the count.
				margin := tol * (1 + q.Radius)
				lower, upper := 0, 0
				for _, d := range dists {
					if d <= q.Radius-margin {
						lower++
					}
					if d <= q.Radius+margin {
						upper++
					}
				}
				if len(r.Objects) < lower || len(r.Objects) > upper {
					return fmt.Errorf("query %d: range returned %d objects, ground truth between %d and %d", i, len(r.Objects), lower, upper)
				}
			}
		}
	}
	return nil
}

// buildIndex constructs the requested index; every index satisfies the
// uniform capability interface, so the rest of the program is index-agnostic.
func buildIndex(v *model.Venue, name string) index.ObjectIndexer {
	switch name {
	case "ip":
		return iptree.MustBuildIPTree(v, iptree.Options{})
	case "vip":
		return iptree.MustBuildVIPTree(v, iptree.Options{})
	case "distmx":
		return distmatrix.Build(v, true)
	case "distaw":
		return distaware.New(v)
	case "gtree":
		return gtree.Build(v, gtree.Options{})
	case "road":
		return road.Build(v, road.Options{})
	default:
		fmt.Fprintf(os.Stderr, "unknown index %q\n", name)
		os.Exit(2)
		return nil
	}
}
