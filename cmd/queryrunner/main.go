// Command queryrunner runs a query workload (shortest distance, shortest
// path, kNN or range) against a chosen index on a chosen venue and reports
// the average per-query latency — a command-line counterpart to the Go
// benchmarks in bench_test.go.
//
// Usage:
//
//	queryrunner -venue Men-2 -index vip -query distance -n 10000
//	queryrunner -venue CL -index distaw -query knn -k 5 -objects 50
package main

import (
	"flag"
	"fmt"
	"os"

	"viptree/internal/baseline/distaware"
	"viptree/internal/baseline/distmatrix"
	"viptree/internal/baseline/gtree"
	"viptree/internal/baseline/road"
	"viptree/internal/bench"
	"viptree/internal/iptree"
	"viptree/internal/model"
	"viptree/internal/venuegen"
)

func main() {
	var (
		venue     = flag.String("venue", "Men", "venue: MC, MC-2, Men, Men-2, CL or CL-2")
		indexName = flag.String("index", "vip", "index: ip, vip, distmx, distaw, gtree or road")
		scale     = flag.String("scale", "small", "venue scale: tiny, small or full")
		query     = flag.String("query", "distance", "query type: distance, path, knn or range")
		n         = flag.Int("n", 1000, "number of queries")
		k         = flag.Int("k", 5, "k for kNN queries")
		objects   = flag.Int("objects", 50, "number of indexed objects for kNN/range queries")
		radius    = flag.Float64("r", 100, "radius in metres for range queries")
		seed      = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	var sc venuegen.Scale
	switch *scale {
	case "tiny":
		sc = venuegen.ScaleTiny
	case "small":
		sc = venuegen.ScaleSmall
	case "full":
		sc = venuegen.ScaleFull
	default:
		fmt.Fprintln(os.Stderr, "unknown scale; want tiny, small or full")
		os.Exit(2)
	}
	cfg := bench.DefaultConfig(sc)
	cfg.VenueNames = []string{*venue}
	v := cfg.Venues()[0].Venue

	type queriers struct {
		distance func(s, t model.Location) float64
		path     func(s, t model.Location) (float64, []model.DoorID)
		knn      func(q model.Location, k int) int
		rangeQ   func(q model.Location, r float64) int
	}
	objs := bench.Objects(v, *objects, *seed+7)
	var q queriers
	switch *indexName {
	case "ip":
		t := iptree.MustBuildIPTree(v, iptree.Options{})
		oi := t.IndexObjects(objs)
		q = queriers{t.Distance, t.Path,
			func(p model.Location, k int) int { return len(oi.KNN(p, k)) },
			func(p model.Location, r float64) int { return len(oi.Range(p, r)) }}
	case "vip":
		t := iptree.MustBuildVIPTree(v, iptree.Options{})
		oi := t.IndexObjects(objs)
		q = queriers{t.Distance, t.Path,
			func(p model.Location, k int) int { return len(oi.KNN(p, k)) },
			func(p model.Location, r float64) int { return len(oi.Range(p, r)) }}
	case "distmx":
		m := distmatrix.Build(v, true)
		oi := m.IndexObjects(objs)
		q = queriers{m.Distance, m.Path,
			func(p model.Location, k int) int { return len(oi.KNN(p, k)) },
			func(p model.Location, r float64) int { return len(oi.Range(p, r)) }}
	case "distaw":
		ix := distaware.New(v).IndexObjects(objs)
		q = queriers{ix.Distance, ix.Path,
			func(p model.Location, k int) int { return len(ix.KNN(p, k)) },
			func(p model.Location, r float64) int { return len(ix.Range(p, r)) }}
	case "gtree":
		t := gtree.Build(v, gtree.Options{})
		oi := t.IndexObjects(objs)
		q = queriers{t.Distance, t.Path,
			func(p model.Location, k int) int { return len(oi.KNN(p, k)) },
			func(p model.Location, r float64) int { return len(oi.Range(p, r)) }}
	case "road":
		ix := road.Build(v, road.Options{}).IndexObjects(objs)
		q = queriers{ix.Distance, ix.Path,
			func(p model.Location, k int) int { return len(ix.KNN(p, k)) },
			func(p model.Location, r float64) int { return len(ix.Range(p, r)) }}
	default:
		fmt.Fprintf(os.Stderr, "unknown index %q\n", *indexName)
		os.Exit(2)
	}

	var m bench.Measurement
	switch *query {
	case "distance":
		pairs := bench.Pairs(v, *n, *seed)
		m = bench.MeasureDistance(distanceAdapter(q.distance), pairs)
	case "path":
		pairs := bench.Pairs(v, *n, *seed)
		m = bench.MeasurePath(pathAdapter(q.path), pairs)
	case "knn":
		points := bench.Points(v, *n, *seed)
		m = bench.MeasureKNN(q.knn, points, *k)
	case "range":
		points := bench.Points(v, *n, *seed)
		m = bench.MeasureRange(q.rangeQ, points, *radius)
	default:
		fmt.Fprintf(os.Stderr, "unknown query type %q\n", *query)
		os.Exit(2)
	}
	fmt.Printf("%s %s %s: %d queries, %.2f us/query (total %v)\n",
		*venue, *indexName, *query, m.Queries, m.PerQueryMicros(), m.Total)
}

type distanceAdapter func(s, t model.Location) float64

func (f distanceAdapter) Distance(s, t model.Location) float64 { return f(s, t) }

type pathAdapter func(s, t model.Location) (float64, []model.DoorID)

func (f pathAdapter) Path(s, t model.Location) (float64, []model.DoorID) { return f(s, t) }
