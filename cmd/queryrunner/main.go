// Command queryrunner runs a query workload (shortest distance, shortest
// path, kNN or range) against a chosen index on a chosen venue through the
// concurrent query engine, and reports per-query latency and aggregate
// throughput — a command-line counterpart to the Go benchmarks in
// bench_test.go.
//
// Usage:
//
//	queryrunner -venue Men-2 -index vip -query distance -n 10000
//	queryrunner -venue CL -index distaw -query knn -k 5 -objects 50
//	queryrunner -venue Men -index vip -query distance -n 100000 -parallel 8
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"viptree/internal/baseline/distaware"
	"viptree/internal/baseline/distmatrix"
	"viptree/internal/baseline/gtree"
	"viptree/internal/baseline/road"
	"viptree/internal/bench"
	"viptree/internal/engine"
	"viptree/internal/index"
	"viptree/internal/iptree"
	"viptree/internal/model"
	"viptree/internal/venuegen"
)

func main() {
	var (
		venue     = flag.String("venue", "Men", "venue: MC, MC-2, Men, Men-2, CL or CL-2")
		indexName = flag.String("index", "vip", "index: ip, vip, distmx, distaw, gtree or road")
		scale     = flag.String("scale", "small", "venue scale: tiny, small or full")
		query     = flag.String("query", "distance", "query type: distance, path, knn or range")
		n         = flag.Int("n", 1000, "number of queries")
		k         = flag.Int("k", 5, "k for kNN queries")
		objects   = flag.Int("objects", 50, "number of indexed objects for kNN/range queries")
		radius    = flag.Float64("r", 100, "radius in metres for range queries")
		seed      = flag.Int64("seed", 1, "workload seed")
		parallel  = flag.Int("parallel", 1, "engine worker count (0 = GOMAXPROCS)")
	)
	flag.Parse()

	var sc venuegen.Scale
	switch *scale {
	case "tiny":
		sc = venuegen.ScaleTiny
	case "small":
		sc = venuegen.ScaleSmall
	case "full":
		sc = venuegen.ScaleFull
	default:
		fmt.Fprintln(os.Stderr, "unknown scale; want tiny, small or full")
		os.Exit(2)
	}
	cfg := bench.DefaultConfig(sc)
	cfg.VenueNames = []string{*venue}
	v := cfg.Venues()[0].Venue

	objs := bench.Objects(v, *objects, *seed+7)
	ix := buildIndex(v, *indexName)

	eng := engine.New(ix, engine.Options{
		Workers: *parallel,
		Objects: ix.NewObjectQuerier(objs),
	})

	var queries []engine.Query
	switch *query {
	case "distance", "path":
		kind := engine.KindDistance
		if *query == "path" {
			kind = engine.KindPath
		}
		for _, p := range bench.Pairs(v, *n, *seed) {
			queries = append(queries, engine.Query{Kind: kind, S: p.S, T: p.T})
		}
	case "knn":
		for _, p := range bench.Points(v, *n, *seed) {
			queries = append(queries, engine.Query{Kind: engine.KindKNN, S: p, K: *k})
		}
	case "range":
		for _, p := range bench.Points(v, *n, *seed) {
			queries = append(queries, engine.Query{Kind: engine.KindRange, S: p, Radius: *radius})
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown query type %q\n", *query)
		os.Exit(2)
	}

	if len(queries) == 0 {
		fmt.Fprintln(os.Stderr, "no queries to run (-n 0)")
		os.Exit(2)
	}

	// Warm the pooled scratch so the measurement reflects steady state.
	warm := queries
	if len(warm) > 64 {
		warm = warm[:64]
	}
	eng.ExecuteBatch(warm)

	start := time.Now()
	results := eng.ExecuteBatch(queries)
	total := time.Since(start)

	failed := 0
	var firstErr error
	for i := range results {
		if results[i].Err != nil {
			if firstErr == nil {
				firstErr = results[i].Err
			}
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d queries failed: %v\n", failed, firstErr)
		os.Exit(1)
	}

	workers := eng.Workers()
	perQuery := float64(total.Microseconds()) / float64(len(queries))
	qps := float64(len(queries)) / total.Seconds()
	fmt.Printf("%s %s %s: %d queries, %d workers (%d cores), %.2f us/query, %.0f qps (total %v)\n",
		*venue, *indexName, *query, len(queries), workers, runtime.NumCPU(), perQuery, qps, total)
}

// buildIndex constructs the requested index; every index satisfies the
// uniform capability interface, so the rest of the program is index-agnostic.
func buildIndex(v *model.Venue, name string) index.ObjectIndexer {
	switch name {
	case "ip":
		return iptree.MustBuildIPTree(v, iptree.Options{})
	case "vip":
		return iptree.MustBuildVIPTree(v, iptree.Options{})
	case "distmx":
		return distmatrix.Build(v, true)
	case "distaw":
		return distaware.New(v)
	case "gtree":
		return gtree.Build(v, gtree.Options{})
	case "road":
		return road.Build(v, road.Options{})
	default:
		fmt.Fprintf(os.Stderr, "unknown index %q\n", name)
		os.Exit(2)
		return nil
	}
}
