package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"syscall"
	"testing"
	"time"

	"viptree/internal/bench"
	"viptree/internal/engine"
	"viptree/internal/venuegen"
	"viptree/internal/wal"
)

// buildRunner compiles the real queryrunner binary. The shutdown tests must
// signal an actual process: `go run` would put a go wrapper between us and
// the runner, and SIGKILL on the wrapper orphans the child.
func buildRunner(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "queryrunner")
	out, err := exec.Command("go", "build", "-o", bin, "viptree/cmd/queryrunner").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// runnerArgs is the fixed churn workload both shutdown tests run. The flags
// must stay in sync with recoverState, which rebuilds the identical base
// index to replay the WAL onto.
func runnerArgs(walDir string) []string {
	return []string{
		"-venue", "MC", "-scale", "tiny", "-index", "vip",
		"-query", "knn", "-n", "2000000", "-update-ratio", "0.3",
		"-batch", "64", "-objects", "50", "-seed", "1",
		"-wal", walDir,
	}
}

// recoverState rebuilds the exact base state the runner started from (same
// venue, index and object seed) and recovers the WAL onto it.
func recoverState(t *testing.T, walDir string) *engine.WALRecovery {
	t.Helper()
	cfg := bench.DefaultConfig(venuegen.ScaleTiny)
	cfg.VenueNames = []string{"MC"}
	v := cfg.Venues()[0].Venue
	ix := buildIndex(v, "vip")
	objs := bench.Objects(v, 50, 1+7)
	eng, rep, err := engine.Open(ix, engine.Options{
		Objects:    ix.NewObjectQuerier(objs),
		WALDir:     walDir,
		WALOptions: wal.Options{Sync: wal.SyncAlways()},
	})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("close recovered engine: %v", err)
	}
	return rep
}

// waitForChurn blocks until the runner has durably appended something, i.e.
// the update storm is in flight.
func waitForChurn(t *testing.T, walDir string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		entries, err := os.ReadDir(walDir)
		if err == nil {
			for _, e := range entries {
				if info, err := e.Info(); err == nil && info.Size() > 1024 {
					return
				}
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("runner never started appending to the wal")
}

// TestGracefulShutdownLosesNothing interrupts the runner mid-churn and
// verifies the contract printed on its way out: exit code 0, and a recovery
// over the WAL finds exactly the durable sequence it reported — zero
// acknowledged updates lost.
func TestGracefulShutdownLosesNothing(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and signals a real binary")
	}
	bin := buildRunner(t)
	walDir := filepath.Join(t.TempDir(), "wal")

	cmd := exec.Command(bin, runnerArgs(walDir)...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	waitForChurn(t, walDir)
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("runner exited non-zero after SIGINT: %v\n%s", err, out.Bytes())
		}
	case <-time.After(60 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("runner did not exit within 60s of SIGINT\n%s", out.Bytes())
	}

	m := regexp.MustCompile(`wal: flushed, durable seq (\d+)`).FindSubmatch(out.Bytes())
	if m == nil {
		t.Fatalf("runner output has no durable-seq line:\n%s", out.Bytes())
	}
	durable, _ := strconv.ParseUint(string(m[1]), 10, 64)
	if durable == 0 {
		t.Fatalf("runner flushed nothing before exiting:\n%s", out.Bytes())
	}
	if !bytes.Contains(out.Bytes(), []byte("interrupted: drained")) {
		t.Fatalf("runner output missing the drain report:\n%s", out.Bytes())
	}

	rep := recoverState(t, walDir)
	if rep.Head != durable {
		t.Fatalf("runner acknowledged durable seq %d but recovery found head %d", durable, rep.Head)
	}
	if rep.TornTail {
		t.Fatal("graceful shutdown left a torn tail")
	}
	if rep.Replayed != int(rep.Head) {
		t.Fatalf("recovery replayed %d of %d records", rep.Replayed, rep.Head)
	}
}

// TestKillRecover SIGKILLs the runner mid-churn — no drain, no flush — and
// verifies the next start recovers: the scan truncates any torn tail and
// replays the surviving prefix without error.
func TestKillRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real binary")
	}
	bin := buildRunner(t)
	walDir := filepath.Join(t.TempDir(), "wal")

	cmd := exec.Command(bin, runnerArgs(walDir)...)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	waitForChurn(t, walDir)
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err == nil {
		t.Fatal("runner survived SIGKILL")
	}

	rep := recoverState(t, walDir)
	if rep.Head == 0 {
		t.Fatal("nothing recovered after SIGKILL despite observed appends")
	}
	if rep.Replayed != int(rep.Head) {
		t.Fatalf("recovery replayed %d of %d records", rep.Replayed, rep.Head)
	}
	// Recovery repaired the log in place: a second scan must be clean.
	rep2 := recoverState(t, walDir)
	if rep2.TornTail || rep2.Head != rep.Head {
		t.Fatalf("recovery not idempotent: first head %d, second %+v", rep.Head, rep2)
	}
}
