package main

import (
	"bytes"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"syscall"
	"testing"
	"time"

	"viptree/internal/bench"
	"viptree/internal/engine"
	"viptree/internal/index"
	"viptree/internal/snapshot"
	"viptree/internal/venuegen"
	"viptree/internal/wal"
)

// buildRunner compiles the real queryrunner binary. The shutdown tests must
// signal an actual process: `go run` would put a go wrapper between us and
// the runner, and SIGKILL on the wrapper orphans the child.
func buildRunner(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "queryrunner")
	out, err := exec.Command("go", "build", "-o", bin, "viptree/cmd/queryrunner").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// runnerArgs is the fixed churn workload both shutdown tests run. The flags
// must stay in sync with recoverState, which rebuilds the identical base
// index to replay the WAL onto.
func runnerArgs(walDir string) []string {
	return []string{
		"-venue", "MC", "-scale", "tiny", "-index", "vip",
		"-query", "knn", "-n", "2000000", "-update-ratio", "0.3",
		"-batch", "64", "-objects", "50", "-seed", "1",
		"-wal", walDir,
	}
}

// recoverState rebuilds the exact base state the runner started from (same
// venue, index and object seed) and recovers the WAL onto it.
func recoverState(t *testing.T, walDir string) *engine.WALRecovery {
	t.Helper()
	cfg := bench.DefaultConfig(venuegen.ScaleTiny)
	cfg.VenueNames = []string{"MC"}
	v := cfg.Venues()[0].Venue
	ix := buildIndex(v, "vip")
	objs := bench.Objects(v, 50, 1+7)
	eng, rep, err := engine.Open(ix, engine.Options{
		Objects:    ix.NewObjectQuerier(objs),
		WALDir:     walDir,
		WALOptions: wal.Options{Sync: wal.SyncAlways()},
	})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("close recovered engine: %v", err)
	}
	return rep
}

// waitForChurn blocks until the runner has durably appended something, i.e.
// the update storm is in flight.
func waitForChurn(t *testing.T, walDir string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		entries, err := os.ReadDir(walDir)
		if err == nil {
			for _, e := range entries {
				if info, err := e.Info(); err == nil && info.Size() > 1024 {
					return
				}
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("runner never started appending to the wal")
}

// TestLoadErrorsAreTyped runs the real binary against missing, garbage and
// torn -load snapshots: each must exit non-zero with the typed failure kind
// on stderr, so a supervisor can tell "fix the path" from "re-copy the file".
func TestLoadErrorsAreTyped(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a real binary")
	}
	bin := buildRunner(t)
	dir := t.TempDir()

	valid := filepath.Join(dir, "valid.snap")
	cfg := bench.DefaultConfig(venuegen.ScaleTiny)
	cfg.VenueNames = []string{"MC"}
	v := cfg.Venues()[0].Venue
	ix := buildIndex(v, "vip")
	if err := snapshot.Save(valid, v, ix.(index.Snapshotter), nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(valid)
	if err != nil {
		t.Fatal(err)
	}
	garbage := filepath.Join(dir, "garbage.snap")
	os.WriteFile(garbage, bytes.Repeat([]byte("definitely not a snapshot "), 8), 0o644)
	torn := filepath.Join(dir, "torn.snap")
	os.WriteFile(torn, data[:len(data)/2], 0o644)

	cases := []struct {
		name, load, kind string
	}{
		{"missing", filepath.Join(dir, "no-such.snap"), "[missing]"},
		{"garbage", garbage, "[not-snapshot]"},
		{"torn", torn, "[truncated]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := exec.Command(bin, "-load", tc.load, "-n", "1").CombinedOutput()
			if err == nil {
				t.Fatalf("runner exited 0 on a bad snapshot:\n%s", out)
			}
			var xerr *exec.ExitError
			if !errors.As(err, &xerr) || xerr.ExitCode() == 0 {
				t.Fatalf("want a non-zero exit, got %v", err)
			}
			if !bytes.Contains(out, []byte(tc.kind)) {
				t.Fatalf("stderr missing the typed kind %s:\n%s", tc.kind, out)
			}
		})
	}

	// The happy path still serves: the same binary, the same snapshot, valid.
	out, err := exec.Command(bin, "-load", valid, "-n", "10", "-verify").CombinedOutput()
	if err != nil {
		t.Fatalf("runner failed on the valid snapshot: %v\n%s", err, out)
	}
}

// TestGracefulShutdownLosesNothing interrupts the runner mid-churn and
// verifies the contract printed on its way out: exit code 0, and a recovery
// over the WAL finds exactly the durable sequence it reported — zero
// acknowledged updates lost.
func TestGracefulShutdownLosesNothing(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and signals a real binary")
	}
	bin := buildRunner(t)
	walDir := filepath.Join(t.TempDir(), "wal")

	cmd := exec.Command(bin, runnerArgs(walDir)...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	waitForChurn(t, walDir)
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("runner exited non-zero after SIGINT: %v\n%s", err, out.Bytes())
		}
	case <-time.After(60 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("runner did not exit within 60s of SIGINT\n%s", out.Bytes())
	}

	m := regexp.MustCompile(`wal: flushed, durable seq (\d+)`).FindSubmatch(out.Bytes())
	if m == nil {
		t.Fatalf("runner output has no durable-seq line:\n%s", out.Bytes())
	}
	durable, _ := strconv.ParseUint(string(m[1]), 10, 64)
	if durable == 0 {
		t.Fatalf("runner flushed nothing before exiting:\n%s", out.Bytes())
	}
	if !bytes.Contains(out.Bytes(), []byte("interrupted: drained")) {
		t.Fatalf("runner output missing the drain report:\n%s", out.Bytes())
	}

	rep := recoverState(t, walDir)
	if rep.Head != durable {
		t.Fatalf("runner acknowledged durable seq %d but recovery found head %d", durable, rep.Head)
	}
	if rep.TornTail {
		t.Fatal("graceful shutdown left a torn tail")
	}
	if rep.Replayed != int(rep.Head) {
		t.Fatalf("recovery replayed %d of %d records", rep.Replayed, rep.Head)
	}
}

// TestKillRecover SIGKILLs the runner mid-churn — no drain, no flush — and
// verifies the next start recovers: the scan truncates any torn tail and
// replays the surviving prefix without error.
func TestKillRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real binary")
	}
	bin := buildRunner(t)
	walDir := filepath.Join(t.TempDir(), "wal")

	cmd := exec.Command(bin, runnerArgs(walDir)...)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	waitForChurn(t, walDir)
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err == nil {
		t.Fatal("runner survived SIGKILL")
	}

	rep := recoverState(t, walDir)
	if rep.Head == 0 {
		t.Fatal("nothing recovered after SIGKILL despite observed appends")
	}
	if rep.Replayed != int(rep.Head) {
		t.Fatalf("recovery replayed %d of %d records", rep.Replayed, rep.Head)
	}
	// Recovery repaired the log in place: a second scan must be clean.
	rep2 := recoverState(t, walDir)
	if rep2.TornTail || rep2.Head != rep.Head {
		t.Fatalf("recovery not idempotent: first head %d, second %+v", rep.Head, rep2)
	}
}
