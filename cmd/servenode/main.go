// Command servenode runs the multi-venue serving node: a long-running HTTP
// front-end that hosts one query engine per venue from a directory of
// snapshot files and keeps serving through bad snapshots, disk trouble,
// overload and shutdown.
//
// The snapshot directory is flat: <venue>@<label>.snap serves venue
// <venue> at version <label>, labels ordering lexically (0001, 0002, …). A
// build box publishes a new index version by copying a new file into the
// directory — the node detects it, loads and verifies it off the serving
// path, and atomically swaps it in; in-flight queries finish on the old
// index. A file that fails its checksum, decode or verification is
// quarantined with a typed reason and retried with exponential backoff
// while the previous version keeps serving.
//
// Endpoints: POST /query/{venue} (batch of JSON queries), GET /healthz,
// GET /healthz/{venue}, GET /readyz, GET /statsz. Admission control sheds
// load with 429 above -max-inflight concurrent requests; every request
// runs under -timeout.
//
// With -wal ROOT object updates are durable: each venue version logs to a
// write-ahead log under ROOT/<venue>/<label>, recovered on restart. On
// SIGTERM/SIGINT the node drains: readiness flips, in-flight requests
// finish, WALs flush, a summary line prints, and the process exits 0.
//
// Usage:
//
//	servenode -snapshots /srv/snapshots -listen :8080
//	servenode -snapshots /srv/snapshots -wal /srv/wal -max-inflight 512
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"viptree/internal/server"
	"viptree/internal/wal"
)

func main() {
	var (
		snapshots   = flag.String("snapshots", "", "snapshot directory to serve (required; files named <venue>@<label>.snap)")
		walRoot     = flag.String("wal", "", "write-ahead log root for durable object updates (empty: non-durable)")
		listen      = flag.String("listen", ":8080", "HTTP listen address")
		poll        = flag.Duration("poll", 500*time.Millisecond, "snapshot directory poll interval")
		maxInflight = flag.Int("max-inflight", 256, "max concurrently admitted query requests (excess gets 429)")
		timeout     = flag.Duration("timeout", 5*time.Second, "per-request deadline")
		workers     = flag.Int("workers", 0, "per-engine batch workers (0: GOMAXPROCS)")
		retryBase   = flag.Duration("retry-base", time.Second, "quarantine retry backoff base")
		retryMax    = flag.Duration("retry-max", time.Minute, "quarantine retry backoff cap")
		drainWait   = flag.Duration("drain-timeout", 30*time.Second, "max time to finish in-flight requests on shutdown")
	)
	flag.Parse()
	if *snapshots == "" {
		fmt.Fprintln(os.Stderr, "servenode: -snapshots is required")
		flag.Usage()
		os.Exit(2)
	}

	node, err := server.New(server.Options{
		SnapshotDir:    *snapshots,
		WALRoot:        *walRoot,
		PollInterval:   *poll,
		MaxInflight:    *maxInflight,
		RequestTimeout: *timeout,
		Workers:        *workers,
		RetryBase:      *retryBase,
		RetryMax:       *retryMax,
		WALOptions:     wal.Options{Sync: wal.SyncAlways()},
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "servenode: %v\n", err)
		os.Exit(1)
	}

	srv := &http.Server{Addr: *listen, Handler: node.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "servenode: listening on %s, serving %s\n", *listen, *snapshots)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "servenode: %v: draining\n", sig)
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "servenode: serve: %v\n", err)
		node.Close()
		os.Exit(1)
	}

	// Graceful drain: stop accepting (readiness flips first so balancers
	// stop routing here), finish in-flight requests, then flush the WALs.
	node.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "servenode: shutdown: %v\n", err)
	}
	code := 0
	if err := node.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "servenode: close: %v\n", err)
		code = 1
	}
	fmt.Fprintf(os.Stderr, "servenode: drained: %s\n", node.Summary())
	os.Exit(code)
}
