// Command venuegen generates the synthetic indoor venues used throughout the
// evaluation and prints their Table-2-style statistics.
//
// Usage:
//
//	venuegen -all -scale full        # every paper venue
//	venuegen -venue Men -scale small
//	venuegen -floors 10 -rooms 60    # a custom office building
package main

import (
	"flag"
	"fmt"
	"os"

	"viptree/internal/bench"
	"viptree/internal/model"
	"viptree/internal/venuegen"
)

func main() {
	var (
		all       = flag.Bool("all", false, "generate all six paper venues (MC, MC-2, Men, Men-2, CL, CL-2)")
		venue     = flag.String("venue", "", "generate one paper venue: MC, MC-2, Men, Men-2, CL or CL-2")
		scale     = flag.String("scale", "small", "venue scale for the paper venues: tiny, small or full")
		floors    = flag.Int("floors", 0, "custom building: number of floors")
		rooms     = flag.Int("rooms", 0, "custom building: rooms per hallway")
		hallways  = flag.Int("hallways", 1, "custom building: hallways per floor")
		buildings = flag.Int("buildings", 0, "custom campus: number of buildings (implies a campus)")
		seed      = flag.Int64("seed", 1, "random seed for custom building/campus generation")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"venuegen generates the synthetic indoor venues used by the evaluation and\n"+
				"prints their Table-2-style statistics. Pick the paper venues (-all or\n"+
				"-venue, sized by -scale) or describe a custom building (-floors/-rooms/\n"+
				"-hallways) or campus (-buildings).\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	var sc venuegen.Scale
	switch *scale {
	case "tiny":
		sc = venuegen.ScaleTiny
	case "small":
		sc = venuegen.ScaleSmall
	case "full":
		sc = venuegen.ScaleFull
	default:
		fmt.Fprintln(os.Stderr, "unknown scale; want tiny, small or full")
		os.Exit(2)
	}

	report := func(v *model.Venue) { fmt.Println(v.ComputeStats().String()) }

	switch {
	case *all:
		cfg := bench.DefaultConfig(sc)
		for _, nv := range cfg.Venues() {
			s := nv.Venue.ComputeStats()
			s.Name = nv.Name
			fmt.Println(s.String())
		}
	case *venue != "":
		cfg := bench.DefaultConfig(sc)
		cfg.VenueNames = []string{*venue}
		for _, nv := range cfg.Venues() {
			s := nv.Venue.ComputeStats()
			s.Name = nv.Name
			fmt.Println(s.String())
		}
	case *buildings > 0:
		v := venuegen.MustCampus(venuegen.CampusConfig{
			Name:      "custom-campus",
			Buildings: *buildings,
			Building: venuegen.BuildingConfig{
				Floors:           max(*floors, 1),
				RoomsPerHallway:  max(*rooms, 10),
				HallwaysPerFloor: *hallways,
			},
			Jitter: true,
			Seed:   *seed,
		})
		report(v)
	case *floors > 0 || *rooms > 0:
		v := venuegen.MustBuilding(venuegen.BuildingConfig{
			Name:             "custom-building",
			Floors:           max(*floors, 1),
			RoomsPerHallway:  max(*rooms, 10),
			HallwaysPerFloor: *hallways,
			Seed:             *seed,
		})
		report(v)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
