// Campus facility finder: on a multi-building university campus, students
// look for the nearest photocopier (the paper's motivating example) and
// compare how the VIP-Tree answers against the expansion-based baseline —
// demonstrating that both agree on the result while the index answers far
// faster.
//
// Run with:
//
//	go run ./examples/campuskiosk
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"viptree"
)

func main() {
	campus := viptree.Clayton(viptree.ScaleSmall)
	fmt.Println("venue:", campus.ComputeStats())

	start := time.Now()
	tree, err := viptree.BuildVIPTree(campus)
	if err != nil {
		log.Fatalf("building VIP-Tree: %v", err)
	}
	fmt.Printf("VIP-Tree built in %v\n", time.Since(start).Round(time.Millisecond))
	stats := tree.TreeStats()
	fmt.Printf("tree: %d leaves, height %d, avg access doors %.1f\n",
		stats.Leaves, stats.Height, stats.AvgAccessDoors)

	// Photocopiers: one per building-ish, placed at random rooms.
	rng := rand.New(rand.NewSource(99))
	var copiers []viptree.Location
	for i := 0; i < 10; i++ {
		copiers = append(copiers, campus.RandomLocation(rng))
	}
	copierIndex := tree.IndexObjects(copiers)

	// The expansion-based baseline (distance-aware model) for comparison.
	baseline := viptree.NewDistAware(campus).IndexObjects(copiers)

	student := campus.RandomLocation(rng)
	fmt.Printf("student at %s\n", campus.Partition(student.Partition).Name)

	t0 := time.Now()
	fast := copierIndex.KNN(student, 3)
	fastDur := time.Since(t0)
	t0 = time.Now()
	slow := baseline.KNN(student, 3)
	slowDur := time.Since(t0)

	fmt.Println("3 nearest photocopiers (VIP-Tree):")
	for _, r := range fast {
		fmt.Printf("  copier #%d at %.0f m\n", r.ObjectID, r.Dist)
	}
	agree := len(fast) == len(slow)
	for i := range fast {
		if !agree || fast[i].ObjectID != slow[i].ObjectID {
			agree = false
			break
		}
	}
	fmt.Printf("baseline agrees: %v (VIP-Tree %v vs expansion %v)\n", agree, fastDur, slowDur)

	// Walking directions to the winner.
	best := copiers[fast[0].ObjectID]
	dist, doors := tree.Path(student, best)
	fmt.Printf("route to the nearest copier: %.0f m, %d doors\n", dist, len(doors))
}
