// Emergency evacuation: in a large office building, guide every occupant to
// their nearest exit door (the paper's motivating example of indoor
// location-based services guiding people to nearby exits during an
// emergency).
//
// The example generates a Menzies-like office tower, places exit objects at
// the ground-floor entrances, and uses VIP-Tree kNN queries to compute, for a
// sample of occupants, the nearest exit and the evacuation route.
//
// Run with:
//
//	go run ./examples/emergency
package main

import (
	"fmt"
	"log"
	"math/rand"

	"viptree"
)

func main() {
	venue := viptree.Menzies(viptree.ScaleSmall)
	fmt.Println("venue:", venue.ComputeStats())

	tree, err := viptree.BuildVIPTree(venue)
	if err != nil {
		log.Fatalf("building VIP-Tree: %v", err)
	}

	// Exits are the partitions adjacent to exterior doors (building
	// entrances double as emergency exits).
	var exits []viptree.Location
	for i := range venue.Doors {
		d := &venue.Doors[i]
		if len(d.Partitions) == 1 { // exterior door
			exits = append(exits, viptree.Location{Partition: d.Partitions[0], Point: d.Loc})
		}
	}
	if len(exits) == 0 {
		log.Fatal("the venue has no exterior doors")
	}
	fmt.Printf("%d exits registered\n", len(exits))
	exitIndex := tree.IndexObjects(exits)

	// Simulate occupants scattered across the building and route each to
	// the nearest exit.
	rng := rand.New(rand.NewSource(7))
	var worst float64
	for i := 0; i < 10; i++ {
		occupant := venue.RandomLocation(rng)
		nearest := exitIndex.KNN(occupant, 1)
		if len(nearest) == 0 {
			log.Fatalf("no exit reachable from %v", occupant)
		}
		exit := exits[nearest[0].ObjectID]
		dist, doors := tree.Path(occupant, exit)
		if dist > worst {
			worst = dist
		}
		fmt.Printf("occupant %2d in %-24s -> exit %.0f m away, %d doors on the route\n",
			i, venue.Partition(occupant.Partition).Name, dist, len(doors))
	}
	fmt.Printf("longest evacuation distance in the sample: %.0f m\n", worst)
}
