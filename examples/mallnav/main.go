// Shopping-centre navigation: a visitor at a shopping centre asks for the
// walking route to a specific shop and for all amenities within a given
// walking range — the paper's in-store navigation and "accessible toilets
// within 100 metres" scenarios. The second half demonstrates the mutable
// object layer: service carts are moved (and one retired, one deployed)
// between queries, with each update touching only the leaf containing the
// cart — no re-indexing.
//
// Run with:
//
//	go run ./examples/mallnav
package main

import (
	"fmt"
	"log"
	"math/rand"

	"viptree"
)

func main() {
	mall := viptree.MelbourneCentral(viptree.ScaleSmall)
	fmt.Println("venue:", mall.ComputeStats())

	tree, err := viptree.BuildVIPTree(mall)
	if err != nil {
		log.Fatalf("building VIP-Tree: %v", err)
	}

	// The visitor stands near the ground-floor entrance.
	entrance := viptree.Location{Partition: 0, Point: mall.Partition(0).Bounds.Center()}

	// A shop on an upper floor: pick the partition with the highest floor.
	var shop viptree.Location
	bestFloor := -1
	for i := range mall.Partitions {
		p := &mall.Partitions[i]
		if p.Class == viptree.Room && p.Bounds.Floor > bestFloor {
			bestFloor = p.Bounds.Floor
			shop = viptree.Location{Partition: p.ID, Point: p.Bounds.Center()}
		}
	}
	dist, doors := tree.Path(entrance, shop)
	fmt.Printf("route to %s (floor %d): %.0f m, %d doors\n",
		mall.Partition(shop.Partition).Name, bestFloor, dist, len(doors))
	crossFloor := 0
	for _, d := range doors {
		for _, pid := range mall.Door(d).Partitions {
			if c := mall.Partition(pid).Class; c == viptree.Staircase || c == viptree.Lift {
				crossFloor++
				break
			}
		}
	}
	fmt.Printf("the route uses %d staircase/lift doors\n", crossFloor)

	// Amenities (washrooms, ATMs, charging kiosks) are scattered over the
	// centre; list everything within 100 m of the visitor.
	rng := rand.New(rand.NewSource(21))
	var amenities []viptree.Location
	for i := 0; i < 25; i++ {
		amenities = append(amenities, mall.RandomLocation(rng))
	}
	amenityIndex := tree.IndexObjects(amenities)
	const walkingRange = 100.0
	within := amenityIndex.Range(entrance, walkingRange)
	fmt.Printf("%d of %d amenities are within %.0f m of the entrance:\n", len(within), len(amenities), walkingRange)
	for _, res := range within {
		loc := amenities[res.ObjectID]
		fmt.Printf("  amenity #%d in %-20s at %.0f m\n", res.ObjectID, mall.Partition(loc.Partition).Name, res.Dist)
	}

	// The 3 nearest amenities, regardless of range.
	for _, res := range amenityIndex.KNN(entrance, 3) {
		fmt.Printf("top-3 nearest amenity: #%d at %.0f m\n", res.ObjectID, res.Dist)
	}

	// Some amenities are mobile: the cleaning crew relocates a few charging
	// kiosks overnight. The object index is mutable, so each relocation
	// updates just the leaf (or two) containing the kiosk — the queries
	// keep serving throughout, no re-indexing.
	fmt.Println("\nrelocating the 3 nearest amenities to random spots...")
	for _, res := range amenityIndex.KNN(entrance, 3) {
		if err := amenityIndex.Move(res.ObjectID, mall.RandomLocation(rng)); err != nil {
			log.Fatalf("moving amenity #%d: %v", res.ObjectID, err)
		}
	}
	// One kiosk is retired and a fresh one deployed right at the entrance;
	// the retired slot's ID is recycled for the newcomer.
	if err := amenityIndex.Delete(0); err != nil {
		log.Fatalf("retiring amenity #0: %v", err)
	}
	newID, err := amenityIndex.Insert(entrance)
	if err != nil {
		log.Fatalf("deploying entrance kiosk: %v", err)
	}
	fmt.Printf("retired amenity #0, deployed a kiosk at the entrance as #%d (%d objects, update epoch %d)\n",
		newID, amenityIndex.NumObjects(), amenityIndex.Epoch())

	// The same queries now reflect the moved fleet.
	for _, res := range amenityIndex.KNN(entrance, 3) {
		loc, _ := amenityIndex.Location(res.ObjectID)
		fmt.Printf("top-3 nearest amenity now: #%d in %-20s at %.0f m\n",
			res.ObjectID, mall.Partition(loc.Partition).Name, res.Dist)
	}
	within = amenityIndex.Range(entrance, walkingRange)
	fmt.Printf("%d amenities are within %.0f m of the entrance after the moves\n", len(within), walkingRange)
}
