// Quickstart: build a small indoor venue by hand, index it with a VIP-Tree
// and answer a shortest-distance, shortest-path and nearest-neighbour query.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"viptree"
)

func main() {
	// A one-floor office: a hallway with four rooms and an exit door.
	//
	//	+------+------+------+------+
	//	| R0   | R1   | R2   | R3   |
	//	+--d0--+--d1--+--d2--+--d3--+
	//	|          hallway          |--exit
	//	+---------------------------+
	b := viptree.NewVenueBuilder("quickstart-office")
	hall := b.AddPartition("hallway", viptree.Hallway, viptree.Rect{MinX: 0, MinY: 0, MaxX: 40, MaxY: 4}, 0)
	for i := 0; i < 4; i++ {
		x0 := float64(i) * 10
		room := b.AddPartition(fmt.Sprintf("room %d", i), viptree.Room,
			viptree.Rect{MinX: x0, MinY: 4, MaxX: x0 + 10, MaxY: 12}, 0)
		b.AddDoor(fmt.Sprintf("d%d", i), viptree.Point{X: x0 + 5, Y: 4}, room, hall)
	}
	exit := b.AddDoor("exit", viptree.Point{X: 40, Y: 2}, hall, viptree.NoPartition)
	venue, err := b.Build()
	if err != nil {
		log.Fatalf("building venue: %v", err)
	}
	fmt.Println(venue.ComputeStats())

	tree, err := viptree.BuildVIPTree(venue)
	if err != nil {
		log.Fatalf("building VIP-Tree: %v", err)
	}

	// A visitor standing in room 0 wants to reach a meeting in room 3.
	visitor := viptree.Location{Partition: 1, Point: viptree.Point{X: 2, Y: 10}}
	meeting := viptree.Location{Partition: 4, Point: viptree.Point{X: 38, Y: 10}}
	dist, doors := tree.Path(visitor, meeting)
	fmt.Printf("room 0 -> room 3: %.1f m through %d doors\n", dist, len(doors))
	for _, d := range doors {
		fmt.Printf("  via %s\n", venue.Door(d).Name)
	}

	// How far is the exit?
	exitLoc := viptree.Location{Partition: hall, Point: venue.Door(exit).Loc}
	fmt.Printf("distance to the exit: %.1f m\n", tree.Distance(visitor, exitLoc))

	// Nearest printer: printers sit in rooms 1 and 3.
	printers := []viptree.Location{
		{Partition: 2, Point: viptree.Point{X: 15, Y: 8}},
		{Partition: 4, Point: viptree.Point{X: 35, Y: 8}},
	}
	objects := tree.IndexObjects(printers)
	for _, res := range objects.KNN(visitor, 1) {
		fmt.Printf("nearest printer: #%d at %.1f m\n", res.ObjectID, res.Dist)
	}
}
