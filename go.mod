module viptree

go 1.24
