// Package distaware implements the distance-aware model baseline (DistAw in
// the paper): spatial queries are answered by Dijkstra-like expansion over
// the door-to-door graph, without materialised distances (Section 1.2.2 and
// the experimental competitor of Section 4.1).
//
// Shortest distance and path queries expand the D2D graph from the source
// until the target partition's doors are settled. kNN and range queries use
// incremental network expansion: the search grows outward from the query
// point and objects are discovered as the partitions holding them are
// reached.
package distaware

import (
	"sort"
	"unsafe"

	"viptree/internal/index"
	"viptree/internal/model"
)

// Index is the distance-aware model over a venue. It holds no materialised
// distances: only the venue's D2D graph and, when objects are indexed, a
// per-partition object list.
type Index struct {
	venue *model.Venue
	// objectsInPartition maps a partition to the IDs of objects inside it.
	objectsInPartition map[model.PartitionID][]int
	objects            []model.Location
}

// New returns a DistAw index over the venue.
func New(v *model.Venue) *Index {
	return &Index{venue: v}
}

// Name implements index.DistanceQuerier.
func (ix *Index) Name() string { return "DistAw" }

// Distance expands the D2D graph from s until t's partition doors are
// settled and returns the shortest indoor distance.
func (ix *Index) Distance(s, t model.Location) float64 {
	return ix.venue.D2D().LocationDist(s, t)
}

// Path returns the shortest distance and the door sequence of the shortest
// path, recovered from the Dijkstra expansion.
func (ix *Index) Path(s, t model.Location) (float64, []model.DoorID) {
	return ix.venue.D2D().LocationPath(s, t)
}

// MemoryBytes reports the memory of the auxiliary structures (the D2D graph
// is shared with the venue; DistAw itself stores almost nothing).
func (ix *Index) MemoryBytes() int64 {
	total := int64(unsafe.Sizeof(*ix))
	for _, ids := range ix.objectsInPartition {
		total += int64(len(ids))*int64(unsafe.Sizeof(int(0))) + mapEntryBytes(unsafe.Sizeof(model.PartitionID(0)), unsafe.Sizeof([]int(nil)))
	}
	total += int64(len(ix.objects)) * int64(unsafe.Sizeof(model.Location{}))
	return total
}

// mapEntryBytes estimates the resident size of one Go map entry with the
// given key and value sizes: payload plus the runtime's per-entry bucket
// bookkeeping (tophash byte and amortised overflow/load-factor overhead,
// ~16 bytes). Shared convention across the baseline estimators.
func mapEntryBytes(key, value uintptr) int64 {
	return int64(key) + int64(value) + 16
}

// IndexObjects registers the object set for kNN and range queries and
// returns the index itself (DistAw keeps objects per partition).
func (ix *Index) IndexObjects(objects []model.Location) *Index {
	ix.objects = objects
	ix.objectsInPartition = make(map[model.PartitionID][]int)
	for id, o := range objects {
		ix.objectsInPartition[o.Partition] = append(ix.objectsInPartition[o.Partition], id)
	}
	return ix
}

// KNN answers a k-nearest-neighbour query by incremental network expansion.
func (ix *Index) KNN(q model.Location, k int) []index.ObjectResult {
	if k <= 0 || len(ix.objects) == 0 {
		return nil
	}
	results := ix.expand(q, func(found []index.ObjectResult, settledDist float64) bool {
		if len(found) < k {
			return false
		}
		// Stop once the k-th best found so far cannot be improved by any
		// object discovered at a greater expansion distance.
		return settledDist > found[k-1].Dist
	})
	if k < len(results) {
		results = results[:k]
	}
	return results
}

// Range answers a range query by expanding the network up to distance r.
func (ix *Index) Range(q model.Location, r float64) []index.ObjectResult {
	if len(ix.objects) == 0 {
		return nil
	}
	results := ix.expand(q, func(_ []index.ObjectResult, settledDist float64) bool {
		return settledDist > r
	})
	out := results[:0:0]
	for _, res := range results {
		if res.Dist <= r {
			out = append(out, res)
		}
	}
	return out
}

// expand runs an incremental network expansion from q. Whenever a door is
// settled, the objects of the partitions adjacent to that door are evaluated.
// stop is consulted with the currently sorted results and the distance of
// the door just settled.
func (ix *Index) expand(q model.Location, stop func([]index.ObjectResult, float64) bool) []index.ObjectResult {
	v := ix.venue
	g := v.D2D().Graph

	best := make(map[int]float64, len(ix.objects))
	// Objects co-located with the query partition are reachable directly.
	for _, id := range ix.objectsInPartition[q.Partition] {
		o := ix.objects[id]
		var d float64
		p := v.Partition(q.Partition)
		if p.TraversalCost > 0 {
			d = p.TraversalCost
		} else {
			d = q.Point.PlanarDist(o.Point)
		}
		if cur, ok := best[id]; !ok || d < cur {
			best[id] = d
		}
	}

	// Multi-source Dijkstra seeded with the doors of the query partition.
	type item struct {
		door int
		dist float64
	}
	heap := []item{}
	push := func(it item) {
		heap = append(heap, it)
		for i := len(heap) - 1; i > 0; {
			p := (i - 1) / 2
			if heap[p].dist <= heap[i].dist {
				break
			}
			heap[p], heap[i] = heap[i], heap[p]
			i = p
		}
	}
	pop := func() item {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		for i := 0; ; {
			l := 2*i + 1
			if l >= len(heap) {
				break
			}
			small := l
			if r := l + 1; r < len(heap) && heap[r].dist < heap[l].dist {
				small = r
			}
			if heap[i].dist <= heap[small].dist {
				break
			}
			heap[i], heap[small] = heap[small], heap[i]
			i = small
		}
		return top
	}
	settled := make(map[int]bool)
	for _, d := range v.Partition(q.Partition).Doors {
		push(item{door: int(d), dist: v.DistToDoor(q, d)})
	}
	snapshot := func() []index.ObjectResult {
		out := make([]index.ObjectResult, 0, len(best))
		for id, d := range best {
			out = append(out, index.ObjectResult{ObjectID: id, Dist: d})
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].Dist != out[j].Dist {
				return out[i].Dist < out[j].Dist
			}
			return out[i].ObjectID < out[j].ObjectID
		})
		return out
	}
	for len(heap) > 0 {
		it := pop()
		if settled[it.door] {
			continue
		}
		settled[it.door] = true
		// Evaluate objects in the partitions adjacent to the settled door.
		door := v.Door(model.DoorID(it.door))
		for _, pid := range door.Partitions {
			for _, id := range ix.objectsInPartition[pid] {
				o := ix.objects[id]
				d := it.dist + v.DistToDoor(o, model.DoorID(it.door))
				if cur, ok := best[id]; !ok || d < cur {
					best[id] = d
				}
			}
		}
		if stop(snapshot(), it.dist) {
			break
		}
		for _, e := range g.Neighbors(it.door) {
			if !settled[e.To] {
				push(item{door: e.To, dist: it.dist + e.Weight})
			}
		}
	}
	return snapshot()
}

// Compile-time conformance with the capability interfaces of
// viptree/internal/index.
var (
	_ index.Index         = (*Index)(nil)
	_ index.ObjectIndexer = (*Index)(nil)
	_ index.ObjectQuerier = (*Index)(nil)
)

// Stats implements index.Index.
func (ix *Index) Stats() index.Stats {
	return index.Stats{
		Name:        ix.Name(),
		MemoryBytes: ix.MemoryBytes(),
		Details: map[string]float64{
			"doors":   float64(ix.venue.NumDoors()),
			"objects": float64(len(ix.objects)),
		},
	}
}

// NewObjectQuerier implements index.ObjectIndexer. DistAw stores the object
// set on the index itself, so the returned querier is the index.
func (ix *Index) NewObjectQuerier(objects []model.Location) index.ObjectQuerier {
	return ix.IndexObjects(objects)
}
