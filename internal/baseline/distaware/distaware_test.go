package distaware

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"viptree/internal/model"
	"viptree/internal/venuegen"
)

func approx(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6 || math.Abs(a-b) <= 1e-6*math.Max(math.Abs(a), math.Abs(b))
}

func TestDistanceAndPathMatchGroundTruth(t *testing.T) {
	v := venuegen.Menzies(venuegen.ScaleTiny)
	ix := New(v)
	if ix.Name() != "DistAw" {
		t.Errorf("name = %q", ix.Name())
	}
	d2d := v.D2D()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 80; i++ {
		s := v.RandomLocation(rng)
		d := v.RandomLocation(rng)
		want := d2d.LocationDist(s, d)
		if got := ix.Distance(s, d); !approx(got, want) {
			t.Fatalf("Distance = %v, want %v", got, want)
		}
		if got, _ := ix.Path(s, d); !approx(got, want) {
			t.Fatalf("Path distance = %v, want %v", got, want)
		}
	}
	if ix.MemoryBytes() <= 0 {
		t.Error("MemoryBytes should be positive")
	}
}

func bruteForce(v *model.Venue, objs []model.Location, q model.Location) []float64 {
	d2d := v.D2D()
	out := make([]float64, len(objs))
	for i, o := range objs {
		out[i] = d2d.LocationDist(q, o)
	}
	sort.Float64s(out)
	return out
}

func TestKNNMatchesBruteForce(t *testing.T) {
	venues := []*model.Venue{
		venuegen.PaperExample(),
		venuegen.MelbourneCentral(venuegen.ScaleTiny),
		venuegen.Clayton(venuegen.ScaleTiny),
	}
	for _, v := range venues {
		rng := rand.New(rand.NewSource(5))
		objs := make([]model.Location, 12)
		for i := range objs {
			objs[i] = v.RandomLocation(rng)
		}
		ix := New(v).IndexObjects(objs)
		for i := 0; i < 30; i++ {
			q := v.RandomLocation(rng)
			want := bruteForce(v, objs, q)
			for _, k := range []int{1, 4} {
				got := ix.KNN(q, k)
				if len(got) != k {
					t.Fatalf("KNN(%d) returned %d results", k, len(got))
				}
				for j := 0; j < k; j++ {
					if !approx(got[j].Dist, want[j]) {
						t.Fatalf("KNN(%d)[%d] = %v, want %v", k, j, got[j].Dist, want[j])
					}
				}
			}
		}
	}
}

func TestRangeMatchesBruteForce(t *testing.T) {
	v := venuegen.Menzies(venuegen.ScaleTiny)
	rng := rand.New(rand.NewSource(7))
	objs := make([]model.Location, 15)
	for i := range objs {
		objs[i] = v.RandomLocation(rng)
	}
	ix := New(v).IndexObjects(objs)
	for i := 0; i < 30; i++ {
		q := v.RandomLocation(rng)
		all := bruteForce(v, objs, q)
		for _, r := range []float64{20, 80, 300} {
			wantCount := 0
			for _, d := range all {
				if d <= r {
					wantCount++
				}
			}
			got := ix.Range(q, r)
			if len(got) != wantCount {
				t.Fatalf("Range(%v) = %d results, want %d", r, len(got), wantCount)
			}
		}
	}
}

func TestKNNEdgeCases(t *testing.T) {
	v := venuegen.PaperExample()
	ix := New(v).IndexObjects(nil)
	rng := rand.New(rand.NewSource(9))
	q := v.RandomLocation(rng)
	if got := ix.KNN(q, 3); len(got) != 0 {
		t.Errorf("KNN over empty set = %v", got)
	}
	objs := []model.Location{q}
	ix = New(v).IndexObjects(objs)
	got := ix.KNN(q, 5)
	if len(got) != 1 || !approx(got[0].Dist, 0) {
		t.Errorf("KNN colocated = %v", got)
	}
	if got := ix.KNN(q, 0); len(got) != 0 {
		t.Errorf("KNN k=0 = %v", got)
	}
}
