// Package distmatrix implements the Distance Matrix baseline (DistMx in the
// paper): the distances and next-hop doors between all pairs of doors are
// fully materialised, giving O(1) door-to-door lookups at the cost of O(D²)
// storage and a very expensive pre-computation (Section 1.2.2 and the
// DistMx/DistMx-- comparison of Fig 9a).
//
// The package also provides the DistAw++ object queries: kNN and range
// queries answered by brute-force evaluation over the object set using the
// matrix for the door-to-door legs.
package distmatrix

import (
	"sort"
	"sync/atomic"
	"unsafe"

	"viptree/internal/graph"
	"viptree/internal/index"
	"viptree/internal/model"
)

// Compile-time conformance with the capability interfaces of
// viptree/internal/index.
var (
	_ index.Index         = (*Matrix)(nil)
	_ index.ObjectIndexer = (*Matrix)(nil)
	_ index.ObjectQuerier = (*ObjectIndex)(nil)
)

// Matrix is the fully materialised door-to-door distance matrix of a venue.
type Matrix struct {
	venue *model.Venue
	n     int
	dist  []float64
	// next[u*n+v] is the first door after u on the shortest path from u to
	// v, or -1 when the path has no intermediate door (or v is
	// unreachable).
	next []int32
	// skipNoThrough enables the optimisation of Section 4.3.1: doors that
	// only lead to no-through partitions are ignored when enumerating the
	// candidate door pairs of a query, because no shortest path between two
	// other partitions can pass through them.
	skipNoThrough bool
	// pairsConsidered accumulates the number of door pairs examined by
	// Distance/Path calls; Fig 9a reports its per-query average. The
	// counters are atomic so that concurrent queries (e.g. through the
	// engine's worker pool) remain race-free.
	pairsConsidered atomic.Int64
	// queries counts Distance/Path invocations.
	queries atomic.Int64
}

// Build materialises the distance matrix by running one full Dijkstra per
// door. withOptimisation selects the DistMx variant (true) or DistMx--
// (false) of Fig 9a.
func Build(v *model.Venue, withOptimisation bool) *Matrix {
	n := v.NumDoors()
	m := &Matrix{
		venue:         v,
		n:             n,
		dist:          make([]float64, n*n),
		next:          make([]int32, n*n),
		skipNoThrough: withOptimisation,
	}
	g := v.D2D().Graph
	for u := 0; u < n; u++ {
		dist, prev := g.FromSource(u)
		for w := 0; w < n; w++ {
			m.dist[u*n+w] = dist[w]
			m.next[u*n+w] = -1
		}
		// next hop from u towards w is the second vertex on the path; we
		// derive it by walking each vertex's predecessor chain towards u.
		for w := 0; w < n; w++ {
			if w == u || dist[w] == graph.Infinity {
				continue
			}
			// Find the neighbour of u on the path to w: follow prev from w
			// until the predecessor is u.
			cur := w
			for prev[cur] != u && prev[cur] != -1 {
				cur = prev[cur]
			}
			if prev[cur] == u {
				if cur != w {
					m.next[u*n+w] = int32(cur)
				}
				// cur == w means the edge u-w is direct: no intermediate door.
			}
		}
	}
	return m
}

// candidateDoors returns the doors of partition p worth considering for a
// query whose other endpoint lies in partition other. With the optimisation
// enabled, doors that only lead into a no-through partition are skipped —
// unless that partition is the other query endpoint itself.
func (m *Matrix) candidateDoors(p, other model.PartitionID) []model.DoorID {
	v := m.venue
	doors := v.Partition(p).Doors
	if !m.skipNoThrough {
		return doors
	}
	useful := make([]model.DoorID, 0, len(doors))
	for _, d := range doors {
		op := v.Door(d).OtherPartition(p)
		if op != model.NoPartition && op != other && v.Kind(op) == model.KindNoThrough {
			continue // the door only leads into a dead-end partition
		}
		useful = append(useful, d)
	}
	if len(useful) == 0 {
		useful = doors
	}
	return useful
}

// Name implements index.DistanceQuerier.
func (m *Matrix) Name() string {
	if m.skipNoThrough {
		return "DistMx"
	}
	return "DistMx--"
}

// DoorDist returns the pre-computed shortest distance between two doors.
func (m *Matrix) DoorDist(a, b model.DoorID) float64 { return m.dist[int(a)*m.n+int(b)] }

// Distance returns the shortest indoor distance between two locations by
// enumerating the candidate door pairs of the two partitions and combining
// them with O(1) matrix lookups.
func (m *Matrix) Distance(s, t model.Location) float64 {
	d, _, _ := m.distanceInternal(s, t)
	return d
}

func (m *Matrix) distanceInternal(s, t model.Location) (float64, model.DoorID, model.DoorID) {
	m.queries.Add(1)
	v := m.venue
	if s.Partition == t.Partition {
		p := v.Partition(s.Partition)
		if p.TraversalCost > 0 {
			return p.TraversalCost, -1, -1
		}
		return s.Point.PlanarDist(t.Point), -1, -1
	}
	best := graph.Infinity
	bestS, bestT := model.DoorID(-1), model.DoorID(-1)
	sDoors := m.candidateDoors(s.Partition, t.Partition)
	tDoors := m.candidateDoors(t.Partition, s.Partition)
	for _, ds := range sDoors {
		for _, dt := range tDoors {
			total := v.DistToDoor(s, ds) + m.DoorDist(ds, dt) + v.DistToDoor(t, dt)
			if total < best {
				best = total
				bestS, bestT = ds, dt
			}
		}
	}
	m.pairsConsidered.Add(int64(len(sDoors)) * int64(len(tDoors)))
	return best, bestS, bestT
}

// Path returns the shortest distance and the door sequence of the shortest
// path, recovered by following the materialised next-hop doors.
func (m *Matrix) Path(s, t model.Location) (float64, []model.DoorID) {
	d, ds, dt := m.distanceInternal(s, t)
	if ds < 0 {
		return d, nil
	}
	doors := []model.DoorID{ds}
	cur := ds
	for cur != dt {
		nxt := m.next[int(cur)*m.n+int(dt)]
		if nxt < 0 {
			break
		}
		doors = append(doors, model.DoorID(nxt))
		cur = model.DoorID(nxt)
	}
	if cur != dt {
		doors = append(doors, dt)
	}
	return d, doors
}

// AvgPairsPerQuery returns the average number of door pairs considered per
// Distance/Path query since construction (Fig 9a).
func (m *Matrix) AvgPairsPerQuery() float64 {
	q := m.queries.Load()
	if q == 0 {
		return 0
	}
	return float64(m.pairsConsidered.Load()) / float64(q)
}

// ResetCounters clears the pair/query counters.
func (m *Matrix) ResetCounters() {
	m.pairsConsidered.Store(0)
	m.queries.Store(0)
}

// Stats implements index.Index.
func (m *Matrix) Stats() index.Stats {
	return index.Stats{
		Name:        m.Name(),
		MemoryBytes: m.MemoryBytes(),
		Details: map[string]float64{
			"doors":               float64(m.n),
			"avg_pairs_per_query": m.AvgPairsPerQuery(),
		},
	}
}

// NewObjectQuerier implements index.ObjectIndexer.
func (m *Matrix) NewObjectQuerier(objects []model.Location) index.ObjectQuerier {
	return m.IndexObjects(objects)
}

// MemoryBytes reports the O(D²) storage of the matrix.
func (m *Matrix) MemoryBytes() int64 {
	cell := int64(unsafe.Sizeof(float64(0)) + unsafe.Sizeof(int32(0)))
	return int64(m.n)*int64(m.n)*cell + int64(unsafe.Sizeof(*m))
}

// ObjectIndex answers kNN and range queries with the distance matrix: this is
// the DistAw++ configuration of the paper (the distance-aware model
// accelerated by DistMx).
type ObjectIndex struct {
	matrix  *Matrix
	objects []model.Location
}

// IndexObjects returns an object index over the matrix.
func (m *Matrix) IndexObjects(objects []model.Location) *ObjectIndex {
	return &ObjectIndex{matrix: m, objects: objects}
}

// Name implements index.ObjectQuerier.
func (oi *ObjectIndex) Name() string { return "DistAw++" }

// KNN returns the k nearest objects by evaluating every object with matrix
// lookups.
func (oi *ObjectIndex) KNN(q model.Location, k int) []index.ObjectResult {
	all := oi.allDistances(q)
	if k < 0 {
		k = 0
	}
	if k < len(all) {
		all = all[:k]
	}
	return all
}

// Range returns all objects within distance r of q.
func (oi *ObjectIndex) Range(q model.Location, r float64) []index.ObjectResult {
	all := oi.allDistances(q)
	out := all[:0:0]
	for _, a := range all {
		if a.Dist <= r {
			out = append(out, a)
		}
	}
	return out
}

func (oi *ObjectIndex) allDistances(q model.Location) []index.ObjectResult {
	out := make([]index.ObjectResult, 0, len(oi.objects))
	for id, o := range oi.objects {
		out = append(out, index.ObjectResult{ObjectID: id, Dist: oi.matrix.Distance(q, o)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ObjectID < out[j].ObjectID
	})
	return out
}
