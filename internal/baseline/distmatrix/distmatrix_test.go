package distmatrix

import (
	"math"
	"math/rand"
	"testing"

	"viptree/internal/model"
	"viptree/internal/venuegen"
)

func approx(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6 || math.Abs(a-b) <= 1e-6*math.Max(math.Abs(a), math.Abs(b))
}

func TestDoorDistMatchesDijkstra(t *testing.T) {
	v := venuegen.PaperExample()
	m := Build(v, true)
	d2d := v.D2D()
	for a := 0; a < v.NumDoors(); a++ {
		for b := 0; b < v.NumDoors(); b++ {
			got := m.DoorDist(model.DoorID(a), model.DoorID(b))
			want := d2d.Dist(model.DoorID(a), model.DoorID(b))
			if !approx(got, want) {
				t.Fatalf("DoorDist(%d,%d) = %v, want %v", a, b, got, want)
			}
		}
	}
}

func TestLocationDistanceMatchesGroundTruth(t *testing.T) {
	for _, withOpt := range []bool{true, false} {
		v := venuegen.Menzies(venuegen.ScaleTiny)
		m := Build(v, withOpt)
		d2d := v.D2D()
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 100; i++ {
			s := v.RandomLocation(rng)
			d := v.RandomLocation(rng)
			got := m.Distance(s, d)
			want := d2d.LocationDist(s, d)
			if !approx(got, want) {
				t.Fatalf("opt=%v query %d: Distance = %v, want %v (s=%v d=%v)", withOpt, i, got, want, s, d)
			}
		}
	}
}

func TestOptimisationReducesPairs(t *testing.T) {
	v := venuegen.Menzies(venuegen.ScaleTiny)
	opt := Build(v, true)
	noOpt := Build(v, false)
	rng := rand.New(rand.NewSource(13))
	queries := make([][2]model.Location, 200)
	for i := range queries {
		queries[i] = [2]model.Location{v.RandomLocation(rng), v.RandomLocation(rng)}
	}
	for _, q := range queries {
		opt.Distance(q[0], q[1])
		noOpt.Distance(q[0], q[1])
	}
	if opt.AvgPairsPerQuery() >= noOpt.AvgPairsPerQuery() {
		t.Errorf("optimisation should reduce door pairs: %v vs %v", opt.AvgPairsPerQuery(), noOpt.AvgPairsPerQuery())
	}
	if opt.Name() != "DistMx" || noOpt.Name() != "DistMx--" {
		t.Errorf("unexpected names %q %q", opt.Name(), noOpt.Name())
	}
	opt.ResetCounters()
	if opt.AvgPairsPerQuery() != 0 {
		t.Error("ResetCounters should clear the averages")
	}
}

func TestPathIsWalkable(t *testing.T) {
	v := venuegen.PaperExample()
	m := Build(v, true)
	g := v.D2D().Graph
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 60; i++ {
		s := v.RandomLocation(rng)
		d := v.RandomLocation(rng)
		dist, doors := m.Path(s, d)
		want := v.D2D().LocationDist(s, d)
		if !approx(dist, want) {
			t.Fatalf("Path distance = %v, want %v", dist, want)
		}
		if s.Partition == d.Partition {
			continue
		}
		total := v.DistToDoor(s, doors[0])
		for j := 1; j < len(doors); j++ {
			w, ok := g.EdgeWeight(int(doors[j-1]), int(doors[j]))
			if !ok {
				t.Fatalf("non-adjacent doors %d -> %d in path %v", doors[j-1], doors[j], doors)
			}
			total += w
		}
		total += v.DistToDoor(d, doors[len(doors)-1])
		if !approx(total, dist) {
			t.Fatalf("path legs %v != distance %v", total, dist)
		}
	}
}

func TestKNNAndRange(t *testing.T) {
	v := venuegen.MelbourneCentral(venuegen.ScaleTiny)
	m := Build(v, true)
	rng := rand.New(rand.NewSource(23))
	objs := make([]model.Location, 10)
	for i := range objs {
		objs[i] = v.RandomLocation(rng)
	}
	oi := m.IndexObjects(objs)
	if oi.Name() != "DistAw++" {
		t.Errorf("object index name = %q", oi.Name())
	}
	d2d := v.D2D()
	for i := 0; i < 30; i++ {
		q := v.RandomLocation(rng)
		got := oi.KNN(q, 3)
		if len(got) != 3 {
			t.Fatalf("KNN returned %d results", len(got))
		}
		// Compare distances with brute force.
		bestDist := math.MaxFloat64
		for _, o := range objs {
			if d := d2d.LocationDist(q, o); d < bestDist {
				bestDist = d
			}
		}
		if !approx(got[0].Dist, bestDist) {
			t.Fatalf("nearest = %v, want %v", got[0].Dist, bestDist)
		}
		r := got[2].Dist
		within := oi.Range(q, r)
		if len(within) < 3 {
			t.Fatalf("Range(%v) returned %d results, want >= 3", r, len(within))
		}
		for _, res := range within {
			if res.Dist > r+1e-9 {
				t.Fatalf("range result %v beyond radius %v", res, r)
			}
		}
	}
}

func TestMemoryBytesQuadratic(t *testing.T) {
	v := venuegen.PaperExample()
	m := Build(v, true)
	want := int64(v.NumDoors()) * int64(v.NumDoors()) * 12
	if m.MemoryBytes() < want {
		t.Errorf("MemoryBytes = %d, want >= %d", m.MemoryBytes(), want)
	}
}
