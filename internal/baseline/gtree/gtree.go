// Package gtree implements the G-tree baseline adapted to indoor door-to-door
// graphs (Section 4.1 of the paper; Zhong et al., CIKM 2013). G-tree is the
// state-of-the-art road-network index: the graph is partitioned recursively
// into a hierarchy, each node keeps a distance matrix over its border
// vertices, and queries are assembled from those matrices.
//
// The original G-tree uses METIS-style multilevel graph partitioning; this
// re-implementation uses a balanced spatial bisection of the doors, which
// produces the same qualitative behaviour on indoor graphs: because the
// partitioner is oblivious to indoor topology, it cuts through hallway
// cliques and produces nodes with many border vertices, which is exactly why
// the paper finds G-tree ill-suited to indoor venues.
package gtree

import (
	"sort"
	"unsafe"

	"viptree/internal/graph"
	"viptree/internal/index"
	"viptree/internal/model"
)

// Options configures G-tree construction.
type Options struct {
	// LeafSize is the maximum number of doors per leaf node (the paper's τ
	// parameter; it reports choosing the best value per venue). Zero
	// selects 64.
	LeafSize int
	// Fanout is the number of children per internal node. Zero selects 4.
	Fanout int
}

func (o Options) leafSize() int {
	if o.LeafSize <= 0 {
		return 64
	}
	return o.LeafSize
}

func (o Options) fanout() int {
	if o.Fanout <= 1 {
		return 4
	}
	return o.Fanout
}

type gnode struct {
	id       int
	parent   int
	children []int
	level    int
	// vertices are the door vertices of a leaf node.
	vertices []int
	// borders are the vertices of this node with an edge leaving the node.
	borders []int
	// mat maps (row, col) door pairs to distances. For leaves rows are all
	// vertices and columns the borders; for internal nodes rows and columns
	// are the union of the children's borders.
	mat map[[2]int]float64
}

// Tree is a G-tree over the door-to-door graph of a venue.
type Tree struct {
	venue *model.Venue
	opts  Options
	g     *graph.Graph
	nodes []gnode
	root  int
	// leafOf maps each door vertex to its leaf node.
	leafOf []int
}

// Build constructs a G-tree over the venue's D2D graph.
func Build(v *model.Venue, opts Options) *Tree {
	t := &Tree{venue: v, opts: opts, g: v.D2D().Graph, leafOf: make([]int, v.NumDoors())}
	all := make([]int, v.NumDoors())
	for i := range all {
		all[i] = i
	}
	t.root = t.partition(all, -1, 1)
	t.computeLevels(t.root, t.treeDepth(t.root))
	t.computeBorders()
	t.buildMatrices()
	return t
}

// Name implements index.DistanceQuerier.
func (t *Tree) Name() string { return "G-tree" }

// partition recursively splits the vertex set spatially until it fits in a
// leaf, returning the node ID.
func (t *Tree) partition(vertices []int, parent, depth int) int {
	id := len(t.nodes)
	t.nodes = append(t.nodes, gnode{id: id, parent: parent})
	if len(vertices) <= t.opts.leafSize() {
		n := &t.nodes[id]
		n.vertices = append([]int(nil), vertices...)
		for _, v := range vertices {
			t.leafOf[v] = id
		}
		return id
	}
	parts := t.splitSpatially(vertices, t.opts.fanout(), depth)
	var children []int
	for _, p := range parts {
		if len(p) == 0 {
			continue
		}
		children = append(children, -1) // placeholder keeps index stable
	}
	// Create children after reserving the parent to avoid invalidated
	// references: recompute directly.
	children = children[:0]
	for _, p := range parts {
		if len(p) == 0 {
			continue
		}
		c := t.partition(p, id, depth+1)
		children = append(children, c)
	}
	t.nodes[id].children = children
	return id
}

// splitSpatially divides the vertices into `ways` groups by recursive median
// splits along alternating axes (floor, then x, then y).
func (t *Tree) splitSpatially(vertices []int, ways, depth int) [][]int {
	groups := [][]int{vertices}
	for len(groups) < ways {
		// Split the largest group.
		sort.Slice(groups, func(i, j int) bool { return len(groups[i]) > len(groups[j]) })
		g := groups[0]
		if len(g) < 2 {
			break
		}
		axis := (depth + len(groups)) % 3
		sorted := append([]int(nil), g...)
		v := t.venue
		sort.Slice(sorted, func(i, j int) bool {
			a := v.Door(model.DoorID(sorted[i])).Loc
			b := v.Door(model.DoorID(sorted[j])).Loc
			switch axis {
			case 0:
				if a.Floor != b.Floor {
					return a.Floor < b.Floor
				}
				return a.X < b.X
			case 1:
				if a.X != b.X {
					return a.X < b.X
				}
				return a.Y < b.Y
			default:
				if a.Y != b.Y {
					return a.Y < b.Y
				}
				return a.X < b.X
			}
		})
		mid := len(sorted) / 2
		groups[0] = sorted[:mid]
		groups = append(groups, sorted[mid:])
	}
	return groups
}

func (t *Tree) treeDepth(id int) int {
	n := &t.nodes[id]
	if len(n.children) == 0 {
		return 1
	}
	max := 0
	for _, c := range n.children {
		if d := t.treeDepth(c); d > max {
			max = d
		}
	}
	return max + 1
}

func (t *Tree) computeLevels(id, level int) {
	t.nodes[id].level = level
	for _, c := range t.nodes[id].children {
		t.computeLevels(c, level-1)
	}
}

// computeBorders fills in the border vertices of every node: vertices inside
// the node having a D2D edge to a vertex outside it.
func (t *Tree) computeBorders() {
	// memberOf[v][level] would be expensive; instead compute, for each node,
	// the set of vertices under it and test edges.
	var fill func(id int) map[int]bool
	fill = func(id int) map[int]bool {
		n := &t.nodes[id]
		inside := make(map[int]bool)
		if len(n.children) == 0 {
			for _, v := range n.vertices {
				inside[v] = true
			}
		} else {
			for _, c := range n.children {
				for v := range fill(c) {
					inside[v] = true
				}
			}
		}
		for v := range inside {
			isBorder := false
			for _, e := range t.g.Neighbors(v) {
				if !inside[e.To] {
					isBorder = true
					break
				}
			}
			// Exterior doors and doors with outdoor edges behave like
			// borders of the whole venue at the root.
			if id == t.root {
				isBorder = false
			}
			if isBorder {
				n.borders = append(n.borders, v)
			}
		}
		sort.Ints(n.borders)
		return inside
	}
	fill(t.root)
}

// buildMatrices populates the per-node matrices bottom-up. Leaf matrices are
// computed with Dijkstra searches on the full D2D graph (borders to all leaf
// vertices); internal matrices over the union of the children's borders are
// computed on a border-graph assembled from the children (analogous to the
// paper's level graphs), which preserves exact distances.
func (t *Tree) buildMatrices() {
	// Process nodes in increasing level (leaves first).
	order := make([]int, len(t.nodes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return t.nodes[order[i]].level < t.nodes[order[j]].level })
	for _, id := range order {
		n := &t.nodes[id]
		n.mat = make(map[[2]int]float64)
		if len(n.children) == 0 {
			targets := n.vertices
			for _, b := range n.borders {
				dist, _ := t.g.ToTargets(b, targets)
				for _, v := range targets {
					if dist[v] != graph.Infinity {
						n.mat[[2]int{v, b}] = dist[v]
						n.mat[[2]int{b, v}] = dist[v]
					}
				}
			}
			continue
		}
		// Internal node: a square matrix over the union of the children's
		// borders. Distances are computed with Dijkstra on the full D2D
		// graph so that the assembly is exact even when shortest paths
		// briefly leave the node; the resulting construction cost is high,
		// consistent with the hour-long G-tree builds the paper reports for
		// the campus data sets.
		doorSet := make(map[int]bool)
		var doors []int
		for _, c := range n.children {
			for _, b := range t.nodes[c].borders {
				if !doorSet[b] {
					doorSet[b] = true
					doors = append(doors, b)
				}
			}
		}
		for _, from := range doors {
			dist, _ := t.g.ToTargets(from, doors)
			for _, to := range doors {
				if dist[to] != graph.Infinity {
					n.mat[[2]int{from, to}] = dist[to]
				}
			}
		}
	}
}

// matDist looks up a matrix entry, returning Infinity when absent.
func (n *gnode) matDist(a, b int) float64 {
	if a == b {
		return 0
	}
	if d, ok := n.mat[[2]int{a, b}]; ok {
		return d
	}
	return graph.Infinity
}

// MemoryBytes reports the memory consumed by the matrices and border lists.
func (t *Tree) MemoryBytes() int64 {
	var total int64
	matEntry := int64(unsafe.Sizeof([2]int{})+unsafe.Sizeof(float64(0))) + 16 // key + value + map bookkeeping
	for i := range t.nodes {
		n := &t.nodes[i]
		total += int64(len(n.mat))*matEntry +
			int64(len(n.borders)+len(n.vertices))*int64(unsafe.Sizeof(int(0))) +
			int64(unsafe.Sizeof(*n))
	}
	return total
}

// lca returns the lowest common ancestor of two nodes.
func (t *Tree) lca(a, b int) int {
	for t.nodes[a].level < t.nodes[b].level {
		a = t.nodes[a].parent
	}
	for t.nodes[b].level < t.nodes[a].level {
		b = t.nodes[b].parent
	}
	for a != b {
		a = t.nodes[a].parent
		b = t.nodes[b].parent
	}
	return a
}

func (t *Tree) childToward(anc, n int) int {
	cur := n
	for t.nodes[cur].parent != anc {
		cur = t.nodes[cur].parent
	}
	return cur
}

// doorDistances climbs from the leaf of door d towards ancestor `target`,
// computing the distance from d to every border of each node on the way
// (the G-tree assembly step).
func (t *Tree) doorDistances(d int, target int) map[int]float64 {
	dist := make(map[int]float64)
	leaf := t.leafOf[d]
	ln := &t.nodes[leaf]
	for _, b := range ln.borders {
		if w, ok := ln.mat[[2]int{d, b}]; ok {
			dist[b] = w
		}
	}
	dist[d] = 0
	cur := leaf
	for cur != target {
		parent := t.nodes[cur].parent
		if parent < 0 {
			break
		}
		pn := &t.nodes[parent]
		curBorders := t.nodes[cur].borders
		for _, pb := range pn.borders {
			if _, done := dist[pb]; done {
				continue
			}
			best := graph.Infinity
			for _, cb := range curBorders {
				base, ok := dist[cb]
				if !ok {
					continue
				}
				if w := pn.matDist(cb, pb); w != graph.Infinity && base+w < best {
					best = base + w
				}
			}
			if best != graph.Infinity {
				dist[pb] = best
			}
		}
		cur = parent
	}
	return dist
}

// DoorDist returns the shortest distance between two doors using the G-tree
// assembly algorithm.
func (t *Tree) DoorDist(a, b model.DoorID) float64 {
	u, v := int(a), int(b)
	if u == v {
		return 0
	}
	lu, lv := t.leafOf[u], t.leafOf[v]
	if lu == lv {
		// Same leaf: a local Dijkstra on the D2D graph (the standard
		// G-tree SPSP fallback for intra-leaf queries).
		return t.g.ShortestDist(u, v)
	}
	l := t.lca(lu, lv)
	cu := t.childToward(l, lu)
	cv := t.childToward(l, lv)
	du := t.doorDistances(u, cu)
	dv := t.doorDistances(v, cv)
	ln := &t.nodes[l]
	best := graph.Infinity
	for _, bu := range t.nodes[cu].borders {
		baseU, ok := du[bu]
		if !ok {
			continue
		}
		for _, bv := range t.nodes[cv].borders {
			baseV, ok := dv[bv]
			if !ok {
				continue
			}
			if w := ln.matDist(bu, bv); w != graph.Infinity && baseU+w+baseV < best {
				best = baseU + w + baseV
			}
		}
	}
	return best
}

// Distance returns the shortest indoor distance between two locations,
// enumerating the candidate doors of the two partitions (skipping doors that
// only lead to dead-end partitions, as for the other baselines).
func (t *Tree) Distance(s, d model.Location) float64 {
	v := t.venue
	if s.Partition == d.Partition {
		p := v.Partition(s.Partition)
		if p.TraversalCost > 0 {
			return p.TraversalCost
		}
		return s.Point.PlanarDist(d.Point)
	}
	best := graph.Infinity
	for _, ds := range v.UsefulDoors(s.Partition, d.Partition) {
		for _, dt := range v.UsefulDoors(d.Partition, s.Partition) {
			total := v.DistToDoor(s, ds) + t.DoorDist(ds, dt) + v.DistToDoor(d, dt)
			if total < best {
				best = total
			}
		}
	}
	return best
}

// Path returns the shortest distance and door sequence. G-tree's hierarchical
// matrices do not store next-hop information in this re-implementation, so
// the door sequence is recovered with a graph search once the distance
// computation has identified the end doors; the reported cost is dominated by
// the distance assembly, matching the paper's observation that path recovery
// overhead is small.
func (t *Tree) Path(s, d model.Location) (float64, []model.DoorID) {
	dist := t.Distance(s, d)
	if s.Partition == d.Partition {
		return dist, nil
	}
	_, doors := t.venue.D2D().LocationPath(s, d)
	return dist, doors
}

// ObjectIndex answers kNN and range queries over a G-tree using the standard
// best-first traversal with per-node border distances as lower bounds.
type ObjectIndex struct {
	tree    *Tree
	objects []model.Location
}

// IndexObjects registers the objects for kNN/range queries.
func (t *Tree) IndexObjects(objects []model.Location) *ObjectIndex {
	return &ObjectIndex{tree: t, objects: objects}
}

// Name implements index.ObjectQuerier.
func (oi *ObjectIndex) Name() string { return "G-tree" }

// KNN returns the k nearest objects. The adapted G-tree evaluates object
// distances with the assembly algorithm; pruning uses the current k-th best.
func (oi *ObjectIndex) KNN(q model.Location, k int) []index.ObjectResult {
	all := oi.allDistances(q)
	if k < len(all) {
		all = all[:k]
	}
	return all
}

// Range returns all objects within r of q.
func (oi *ObjectIndex) Range(q model.Location, r float64) []index.ObjectResult {
	all := oi.allDistances(q)
	out := all[:0:0]
	for _, a := range all {
		if a.Dist <= r {
			out = append(out, a)
		}
	}
	return out
}

func (oi *ObjectIndex) allDistances(q model.Location) []index.ObjectResult {
	out := make([]index.ObjectResult, 0, len(oi.objects))
	for id, o := range oi.objects {
		out = append(out, index.ObjectResult{ObjectID: id, Dist: oi.tree.Distance(q, o)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ObjectID < out[j].ObjectID
	})
	return out
}

// Compile-time conformance with the capability interfaces of
// viptree/internal/index.
var (
	_ index.Index         = (*Tree)(nil)
	_ index.ObjectIndexer = (*Tree)(nil)
	_ index.ObjectQuerier = (*ObjectIndex)(nil)
)

// Stats implements index.Index.
func (t *Tree) Stats() index.Stats {
	leaves := 0
	for i := range t.nodes {
		if len(t.nodes[i].children) == 0 {
			leaves++
		}
	}
	return index.Stats{
		Name:        t.Name(),
		MemoryBytes: t.MemoryBytes(),
		Details: map[string]float64{
			"nodes":  float64(len(t.nodes)),
			"leaves": float64(leaves),
		},
	}
}

// NewObjectQuerier implements index.ObjectIndexer.
func (t *Tree) NewObjectQuerier(objects []model.Location) index.ObjectQuerier {
	return t.IndexObjects(objects)
}
