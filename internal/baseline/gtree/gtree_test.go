package gtree

import (
	"math"
	"math/rand"
	"testing"

	"viptree/internal/model"
	"viptree/internal/venuegen"
)

func approx(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6 || math.Abs(a-b) <= 1e-6*math.Max(math.Abs(a), math.Abs(b))
}

func TestDoorDistMatchesDijkstra(t *testing.T) {
	venues := []*model.Venue{
		venuegen.PaperExample(),
		venuegen.Menzies(venuegen.ScaleTiny),
	}
	for _, v := range venues {
		g := Build(v, Options{LeafSize: 8})
		d2d := v.D2D()
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 300; i++ {
			a := model.DoorID(rng.Intn(v.NumDoors()))
			b := model.DoorID(rng.Intn(v.NumDoors()))
			got := g.DoorDist(a, b)
			want := d2d.Dist(a, b)
			if !approx(got, want) {
				t.Fatalf("%s: DoorDist(%d,%d) = %v, want %v", v.Name, a, b, got, want)
			}
		}
	}
}

func TestLocationDistanceMatchesGroundTruth(t *testing.T) {
	v := venuegen.MelbourneCentral(venuegen.ScaleTiny)
	g := Build(v, Options{LeafSize: 16})
	if g.Name() != "G-tree" {
		t.Errorf("name = %q", g.Name())
	}
	d2d := v.D2D()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 80; i++ {
		s := v.RandomLocation(rng)
		d := v.RandomLocation(rng)
		got := g.Distance(s, d)
		want := d2d.LocationDist(s, d)
		if !approx(got, want) {
			t.Fatalf("Distance = %v, want %v (s=%v d=%v)", got, want, s, d)
		}
		pd, _ := g.Path(s, d)
		if !approx(pd, want) {
			t.Fatalf("Path distance = %v, want %v", pd, want)
		}
	}
	if g.MemoryBytes() <= 0 {
		t.Error("MemoryBytes should be positive")
	}
}

func TestLeafSizeVariants(t *testing.T) {
	v := venuegen.PaperExample()
	d2d := v.D2D()
	for _, leaf := range []int{2, 4, 100} {
		g := Build(v, Options{LeafSize: leaf})
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 60; i++ {
			s := v.RandomLocation(rng)
			d := v.RandomLocation(rng)
			got := g.Distance(s, d)
			want := d2d.LocationDist(s, d)
			if !approx(got, want) {
				t.Fatalf("leaf=%d: Distance = %v, want %v", leaf, got, want)
			}
		}
	}
}

func TestKNNAndRange(t *testing.T) {
	v := venuegen.PaperExample()
	g := Build(v, Options{LeafSize: 8})
	rng := rand.New(rand.NewSource(4))
	objs := make([]model.Location, 8)
	for i := range objs {
		objs[i] = v.RandomLocation(rng)
	}
	oi := g.IndexObjects(objs)
	if oi.Name() != "G-tree" {
		t.Errorf("object index name = %q", oi.Name())
	}
	d2d := v.D2D()
	for i := 0; i < 20; i++ {
		q := v.RandomLocation(rng)
		got := oi.KNN(q, 3)
		if len(got) != 3 {
			t.Fatalf("KNN returned %d results", len(got))
		}
		best := math.MaxFloat64
		for _, o := range objs {
			if dd := d2d.LocationDist(q, o); dd < best {
				best = dd
			}
		}
		if !approx(got[0].Dist, best) {
			t.Fatalf("nearest = %v, want %v", got[0].Dist, best)
		}
		for _, res := range oi.Range(q, 50) {
			if res.Dist > 50+1e-9 {
				t.Fatalf("range result beyond radius: %v", res)
			}
		}
	}
}
