// Package road implements the ROAD baseline adapted to indoor door-to-door
// graphs (Section 4.1 of the paper; Lee et al., TKDE 2012). ROAD organises
// the network into a hierarchy of regional sub-networks (Rnets) and attaches
// border-to-border shortcuts to each Rnet, so that a query-time search can
// skip over Rnets that contain neither endpoint.
//
// This re-implementation keeps the essential mechanism — Rnet partitioning,
// exact border shortcuts and search-time Rnet skipping — while using a
// spatial partitioner (the original uses a generic graph partitioner). As
// the paper observes, the high out-degree of indoor D2D graphs produces Rnets
// with very many borders, which is why ROAD trails the indoor-aware indexes
// by orders of magnitude.
package road

import (
	"sort"
	"unsafe"

	"viptree/internal/graph"
	"viptree/internal/index"
	"viptree/internal/model"
)

// Options configures ROAD construction.
type Options struct {
	// RnetSize is the target number of doors per Rnet. Zero selects 128.
	RnetSize int
}

func (o Options) rnetSize() int {
	if o.RnetSize <= 0 {
		return 128
	}
	return o.RnetSize
}

// rnet is one regional sub-network: a set of doors, its border doors and the
// exact border-to-border shortcut distances.
type rnet struct {
	id       int
	vertices []int
	borders  []int
	// member marks the doors inside this Rnet.
	member map[int]bool
	// shortcut[b1*n+b2] indexes into the borders slice.
	shortcut map[[2]int]float64
}

// Index is a ROAD route overlay over a venue's D2D graph.
type Index struct {
	venue   *model.Venue
	g       *graph.Graph
	rnets   []rnet
	rnetOf  []int
	objects []model.Location
}

// Build constructs the ROAD route overlay.
func Build(v *model.Venue, opts Options) *Index {
	ix := &Index{venue: v, g: v.D2D().Graph, rnetOf: make([]int, v.NumDoors())}
	// Partition doors spatially into Rnets of roughly RnetSize doors.
	doors := make([]int, v.NumDoors())
	for i := range doors {
		doors[i] = i
	}
	sort.Slice(doors, func(i, j int) bool {
		a := v.Door(model.DoorID(doors[i])).Loc
		b := v.Door(model.DoorID(doors[j])).Loc
		if a.Floor != b.Floor {
			return a.Floor < b.Floor
		}
		if a.X != b.X {
			return a.X < b.X
		}
		return a.Y < b.Y
	})
	size := opts.rnetSize()
	for start := 0; start < len(doors); start += size {
		end := start + size
		if end > len(doors) {
			end = len(doors)
		}
		id := len(ix.rnets)
		rn := rnet{id: id, vertices: append([]int(nil), doors[start:end]...), member: make(map[int]bool), shortcut: make(map[[2]int]float64)}
		for _, d := range rn.vertices {
			rn.member[d] = true
			ix.rnetOf[d] = id
		}
		ix.rnets = append(ix.rnets, rn)
	}
	// Borders and shortcuts.
	for i := range ix.rnets {
		rn := &ix.rnets[i]
		for _, d := range rn.vertices {
			for _, e := range ix.g.Neighbors(d) {
				if !rn.member[e.To] {
					rn.borders = append(rn.borders, d)
					break
				}
			}
		}
		sort.Ints(rn.borders)
		for _, b := range rn.borders {
			dist, _ := ix.g.ToTargets(b, rn.borders)
			for _, b2 := range rn.borders {
				if dist[b2] != graph.Infinity {
					rn.shortcut[[2]int{b, b2}] = dist[b2]
				}
			}
		}
	}
	return ix
}

// Name implements index.DistanceQuerier.
func (ix *Index) Name() string { return "ROAD" }

// MemoryBytes reports the memory consumed by the route overlay.
func (ix *Index) MemoryBytes() int64 {
	var total int64
	shortcutEntry := int64(unsafe.Sizeof([2]int{})+unsafe.Sizeof(float64(0))) + 16 // key + value + map bookkeeping
	memberEntry := int64(unsafe.Sizeof(int(0))+unsafe.Sizeof(false)) + 16
	for i := range ix.rnets {
		rn := &ix.rnets[i]
		total += int64(len(rn.shortcut))*shortcutEntry +
			int64(len(rn.member))*memberEntry +
			int64(len(rn.vertices)+len(rn.borders))*int64(unsafe.Sizeof(int(0))) +
			int64(unsafe.Sizeof(*rn))
	}
	total += int64(len(ix.rnetOf)) * int64(unsafe.Sizeof(int(0)))
	return total
}

// Distance performs the ROAD search: a Dijkstra expansion that traverses
// Rnets containing neither endpoint only through their border shortcuts.
func (ix *Index) Distance(s, t model.Location) float64 {
	d, _ := ix.search(s, t)
	return d
}

// Path returns the shortest distance and the door sequence of the shortest
// path. ROAD's shortcuts collapse whole Rnets into single hops, so the door
// sequence is re-expanded with a plain graph search after the overlay search
// determines the distance.
func (ix *Index) Path(s, t model.Location) (float64, []model.DoorID) {
	d, _ := ix.search(s, t)
	if s.Partition == t.Partition {
		return d, nil
	}
	_, doors := ix.venue.D2D().LocationPath(s, t)
	return d, doors
}

// search runs the overlay Dijkstra from the doors of s's partition to the
// doors of t's partition.
func (ix *Index) search(s, t model.Location) (float64, []int) {
	v := ix.venue
	if s.Partition == t.Partition {
		p := v.Partition(s.Partition)
		if p.TraversalCost > 0 {
			return p.TraversalCost, nil
		}
		return s.Point.PlanarDist(t.Point), nil
	}
	// Rnets containing an endpoint are traversed edge by edge; all other
	// Rnets are traversed via shortcuts only.
	open := make(map[int]bool)
	for _, d := range v.Partition(s.Partition).Doors {
		open[ix.rnetOf[int(d)]] = true
	}
	for _, d := range v.Partition(t.Partition).Doors {
		open[ix.rnetOf[int(d)]] = true
	}
	targetDist := make(map[int]float64)
	for _, d := range v.Partition(t.Partition).Doors {
		targetDist[int(d)] = v.DistToDoor(t, d)
	}

	type item struct {
		door int
		dist float64
	}
	heap := []item{}
	push := func(it item) {
		heap = append(heap, it)
		for i := len(heap) - 1; i > 0; {
			p := (i - 1) / 2
			if heap[p].dist <= heap[i].dist {
				break
			}
			heap[p], heap[i] = heap[i], heap[p]
			i = p
		}
	}
	pop := func() item {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		for i := 0; ; {
			l := 2*i + 1
			if l >= len(heap) {
				break
			}
			small := l
			if r := l + 1; r < len(heap) && heap[r].dist < heap[l].dist {
				small = r
			}
			if heap[i].dist <= heap[small].dist {
				break
			}
			heap[i], heap[small] = heap[small], heap[i]
			i = small
		}
		return top
	}
	settled := make(map[int]bool)
	for _, d := range v.Partition(s.Partition).Doors {
		push(item{door: int(d), dist: v.DistToDoor(s, d)})
	}
	best := graph.Infinity
	remaining := len(targetDist)
	for len(heap) > 0 && remaining > 0 {
		it := pop()
		if settled[it.door] {
			continue
		}
		settled[it.door] = true
		if leg, ok := targetDist[it.door]; ok {
			if it.dist+leg < best {
				best = it.dist + leg
			}
			remaining--
		}
		rnID := ix.rnetOf[it.door]
		rn := &ix.rnets[rnID]
		if open[rnID] {
			// Endpoint Rnet: expand original edges.
			for _, e := range ix.g.Neighbors(it.door) {
				if !settled[e.To] {
					push(item{door: e.To, dist: it.dist + e.Weight})
				}
			}
			continue
		}
		// Transit Rnet: jump to its other borders via shortcuts, and cross
		// into neighbouring Rnets via original edges that leave the Rnet.
		for _, b := range rn.borders {
			if b == it.door || settled[b] {
				continue
			}
			if w, ok := rn.shortcut[[2]int{it.door, b}]; ok {
				push(item{door: b, dist: it.dist + w})
			}
		}
		for _, e := range ix.g.Neighbors(it.door) {
			if !rn.member[e.To] && !settled[e.To] {
				push(item{door: e.To, dist: it.dist + e.Weight})
			}
		}
	}
	return best, nil
}

// IndexObjects registers objects for kNN/range queries.
func (ix *Index) IndexObjects(objects []model.Location) *Index {
	ix.objects = objects
	return ix
}

// KNN returns the k nearest objects, evaluating each object with the overlay
// search (the adapted ROAD has no object-aware pruning on indoor graphs).
func (ix *Index) KNN(q model.Location, k int) []index.ObjectResult {
	all := ix.allDistances(q)
	if k < len(all) {
		all = all[:k]
	}
	return all
}

// Range returns all objects within r of q.
func (ix *Index) Range(q model.Location, r float64) []index.ObjectResult {
	all := ix.allDistances(q)
	out := all[:0:0]
	for _, a := range all {
		if a.Dist <= r {
			out = append(out, a)
		}
	}
	return out
}

func (ix *Index) allDistances(q model.Location) []index.ObjectResult {
	out := make([]index.ObjectResult, 0, len(ix.objects))
	for id, o := range ix.objects {
		out = append(out, index.ObjectResult{ObjectID: id, Dist: ix.Distance(q, o)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ObjectID < out[j].ObjectID
	})
	return out
}

// Compile-time conformance with the capability interfaces of
// viptree/internal/index.
var (
	_ index.Index         = (*Index)(nil)
	_ index.ObjectIndexer = (*Index)(nil)
	_ index.ObjectQuerier = (*Index)(nil)
)

// Stats implements index.Index.
func (ix *Index) Stats() index.Stats {
	borders := 0
	for i := range ix.rnets {
		borders += len(ix.rnets[i].borders)
	}
	return index.Stats{
		Name:        ix.Name(),
		MemoryBytes: ix.MemoryBytes(),
		Details: map[string]float64{
			"rnets":   float64(len(ix.rnets)),
			"borders": float64(borders),
		},
	}
}

// NewObjectQuerier implements index.ObjectIndexer. ROAD stores the object
// set on the index itself, so the returned querier is the index.
func (ix *Index) NewObjectQuerier(objects []model.Location) index.ObjectQuerier {
	return ix.IndexObjects(objects)
}
