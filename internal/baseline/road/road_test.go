package road

import (
	"math"
	"math/rand"
	"testing"

	"viptree/internal/model"
	"viptree/internal/venuegen"
)

func approx(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6 || math.Abs(a-b) <= 1e-6*math.Max(math.Abs(a), math.Abs(b))
}

func TestDistanceMatchesGroundTruth(t *testing.T) {
	venues := []*model.Venue{
		venuegen.PaperExample(),
		venuegen.MelbourneCentral(venuegen.ScaleTiny),
		venuegen.Menzies(venuegen.ScaleTiny),
	}
	for _, v := range venues {
		for _, rnet := range []int{4, 16, 1000} {
			ix := Build(v, Options{RnetSize: rnet})
			d2d := v.D2D()
			rng := rand.New(rand.NewSource(int64(rnet)))
			for i := 0; i < 60; i++ {
				s := v.RandomLocation(rng)
				d := v.RandomLocation(rng)
				got := ix.Distance(s, d)
				want := d2d.LocationDist(s, d)
				if !approx(got, want) {
					t.Fatalf("%s rnet=%d: Distance = %v, want %v (s=%v d=%v)", v.Name, rnet, got, want, s, d)
				}
			}
		}
	}
}

func TestPathDistanceConsistent(t *testing.T) {
	v := venuegen.PaperExample()
	ix := Build(v, Options{RnetSize: 8})
	if ix.Name() != "ROAD" {
		t.Errorf("name = %q", ix.Name())
	}
	if ix.MemoryBytes() <= 0 {
		t.Error("MemoryBytes should be positive")
	}
	d2d := v.D2D()
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 40; i++ {
		s := v.RandomLocation(rng)
		d := v.RandomLocation(rng)
		got, doors := ix.Path(s, d)
		want := d2d.LocationDist(s, d)
		if !approx(got, want) {
			t.Fatalf("Path distance = %v, want %v", got, want)
		}
		if s.Partition != d.Partition && len(doors) == 0 {
			t.Fatal("expected a door sequence for a cross-partition path")
		}
	}
}

func TestKNNAndRange(t *testing.T) {
	v := venuegen.MelbourneCentral(venuegen.ScaleTiny)
	ix := Build(v, Options{RnetSize: 16})
	rng := rand.New(rand.NewSource(8))
	objs := make([]model.Location, 10)
	for i := range objs {
		objs[i] = v.RandomLocation(rng)
	}
	ix.IndexObjects(objs)
	d2d := v.D2D()
	for i := 0; i < 20; i++ {
		q := v.RandomLocation(rng)
		got := ix.KNN(q, 3)
		if len(got) != 3 {
			t.Fatalf("KNN returned %d results", len(got))
		}
		best := math.MaxFloat64
		for _, o := range objs {
			if dd := d2d.LocationDist(q, o); dd < best {
				best = dd
			}
		}
		if !approx(got[0].Dist, best) {
			t.Fatalf("nearest = %v, want %v", got[0].Dist, best)
		}
		for _, res := range ix.Range(q, 60) {
			if res.Dist > 60+1e-9 {
				t.Fatalf("range result beyond radius: %v", res)
			}
		}
	}
}
