package bench

import (
	"strings"
	"testing"

	"viptree/internal/venuegen"
)

func tinyConfig() Config {
	c := DefaultConfig(venuegen.ScaleTiny)
	c.Pairs = 20
	c.Points = 5
	c.Objects = 8
	c.VenueNames = []string{"MC"}
	return c
}

func TestWorkloadGenerators(t *testing.T) {
	v := venuegen.PaperExample()
	pairs := Pairs(v, 25, 1)
	if len(pairs) != 25 {
		t.Fatalf("Pairs returned %d", len(pairs))
	}
	points := Points(v, 10, 2)
	if len(points) != 10 {
		t.Fatalf("Points returned %d", len(points))
	}
	for _, p := range points {
		if int(p.Partition) >= v.NumPartitions() {
			t.Fatal("point outside venue")
		}
	}
	buckets := BucketedPairs(v, 5, 4, 3)
	if len(buckets) != 5 {
		t.Fatalf("BucketedPairs returned %d buckets", len(buckets))
	}
	nonEmpty := 0
	for _, b := range buckets {
		if len(b) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		t.Errorf("expected at least 2 non-empty distance buckets, got %d", nonEmpty)
	}
	if len(SortedDistances(v, points, points[0])) != len(points) {
		t.Error("SortedDistances length mismatch")
	}
}

func TestMeasurementHelpers(t *testing.T) {
	m := Measurement{Queries: 4, Total: 8000}
	if m.PerQueryMicros() <= 0 {
		t.Error("PerQueryMicros should be positive")
	}
	if (Measurement{}).PerQueryMicros() != 0 {
		t.Error("empty measurement should report 0")
	}
}

func TestVenueSetAndTableRendering(t *testing.T) {
	c := tinyConfig()
	venues := c.Venues()
	if len(venues) != 1 || venues[0].Name != "MC" {
		t.Fatalf("unexpected venue set %v", venues)
	}
	tab := Table2(c)
	out := tab.String()
	if !strings.Contains(out, "MC") || !strings.Contains(out, "#doors") {
		t.Errorf("table rendering missing content:\n%s", out)
	}
	// Default venue list covers the paper's six data sets.
	full := Config{Scale: venuegen.ScaleTiny, Pairs: 1, Points: 1, Objects: 1, K: 1, RangeMeters: 10, Seed: 1}
	if got := len(full.Venues()); got != 6 {
		t.Errorf("default venue set has %d entries, want 6", got)
	}
}

func TestExperimentsProduceRows(t *testing.T) {
	c := tinyConfig()
	for name, fn := range All() {
		if name == "fig7" || name == "fig10b" || name == "fig11b" {
			continue // exercised separately below with even smaller workloads
		}
		tab := fn(c)
		if len(tab.Rows) == 0 {
			t.Errorf("experiment %s produced no rows", name)
		}
		if tab.String() == "" {
			t.Errorf("experiment %s renders empty", name)
		}
	}
}

func TestHeavierExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping heavier experiment smoke test in -short mode")
	}
	c := tinyConfig()
	c.Pairs = 10
	c.Points = 3
	for _, name := range []string{"fig7", "fig10b", "fig11b"} {
		tab := All()[name](c)
		if len(tab.Rows) == 0 {
			t.Errorf("experiment %s produced no rows", name)
		}
	}
}

func TestUnknownVenuePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unknown venue name")
		}
	}()
	c := tinyConfig()
	c.VenueNames = []string{"nope"}
	c.Venues()
}
