package bench

import (
	"fmt"
	"strings"
	"time"

	"viptree/internal/baseline/distaware"
	"viptree/internal/baseline/distmatrix"
	"viptree/internal/baseline/gtree"
	"viptree/internal/baseline/road"
	"viptree/internal/iptree"
	"viptree/internal/model"
	"viptree/internal/venuegen"
)

// This file drives the reproduction of every table and figure of the paper's
// evaluation (Section 4). Each ExperimentX function returns a Table whose
// rows mirror the series the paper plots; cmd/experiments prints them and
// EXPERIMENTS.md records the paper-vs-measured comparison.

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table as aligned text.
func (t Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			} else {
				b.WriteString(c + "  ")
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Config controls how heavy an experiment run is.
type Config struct {
	// Scale selects the preset venue sizes (tiny / small / full).
	Scale venuegen.Scale
	// Pairs is the number of shortest-distance/path queries per data point
	// (the paper uses 10,000).
	Pairs int
	// Points is the number of kNN/range query points per data point.
	Points int
	// Objects is the default object-set size (the paper's default is 50).
	Objects int
	// K is the default k for kNN queries (the paper's default is 5).
	K int
	// RangeMeters is the default range radius (the paper's default is 100).
	RangeMeters float64
	// SkipDistMx skips the distance-matrix baseline (its O(D²)
	// construction is infeasible for the large venues, as in the paper).
	SkipDistMx bool
	// SkipSlow skips the G-tree and ROAD baselines (useful at full scale
	// where their construction dominates the run time).
	SkipSlow bool
	// VenueNames restricts the venue set; nil selects the paper's six
	// venues MC, MC-2, Men, Men-2, CL, CL-2.
	VenueNames []string
	// Seed drives workload generation.
	Seed int64
}

// DefaultConfig returns a configuration sized for the given scale.
func DefaultConfig(scale venuegen.Scale) Config {
	cfg := Config{
		Scale:       scale,
		Pairs:       200,
		Points:      50,
		Objects:     50,
		K:           5,
		RangeMeters: 100,
		Seed:        1,
	}
	if scale == venuegen.ScaleFull {
		cfg.Pairs = 1000
		cfg.Points = 100
	}
	return cfg
}

// NamedVenue is a venue of the evaluation with its paper name.
type NamedVenue struct {
	Name  string
	Venue *model.Venue
}

// Venues builds the evaluation venues for the configuration. The names match
// Table 2: MC, MC-2, Men, Men-2, CL, CL-2.
func (c Config) Venues() []NamedVenue {
	names := c.VenueNames
	if len(names) == 0 {
		names = []string{"MC", "MC-2", "Men", "Men-2", "CL", "CL-2"}
	}
	var out []NamedVenue
	for _, n := range names {
		out = append(out, NamedVenue{Name: n, Venue: buildVenue(n, c.Scale)})
	}
	return out
}

func buildVenue(name string, scale venuegen.Scale) *model.Venue {
	switch name {
	case "MC":
		return venuegen.MelbourneCentral(scale)
	case "MC-2":
		return venuegen.MustReplicate(venuegen.MelbourneCentral(scale), 2, 0)
	case "Men":
		return venuegen.Menzies(scale)
	case "Men-2":
		return venuegen.MustReplicate(venuegen.Menzies(scale), 2, 0)
	case "CL":
		return venuegen.Clayton(scale)
	case "CL-2":
		return venuegen.MustReplicate(venuegen.Clayton(scale), 2, 0)
	default:
		panic(fmt.Sprintf("bench: unknown venue %q", name))
	}
}

// competitor bundles one index with its query functions.
type competitor struct {
	name     string
	distance func(s, t model.Location) float64
	path     func(s, t model.Location) (float64, []model.DoorID)
	knn      func(objects []model.Location) KNNFunc
	rangeQ   func(objects []model.Location) RangeFunc
	buildDur time.Duration
	memory   int64
}

// buildCompetitors constructs every index of the evaluation on a venue.
func buildCompetitors(v *model.Venue, c Config) []competitor {
	var out []competitor

	start := time.Now()
	ip := iptree.MustBuildIPTree(v, iptree.Options{})
	ipDur := time.Since(start)
	out = append(out, competitor{
		name:     ip.Name(),
		distance: ip.Distance,
		path:     ip.Path,
		knn: func(objs []model.Location) KNNFunc {
			oi := ip.IndexObjects(objs)
			return func(q model.Location, k int) int { return len(oi.KNN(q, k)) }
		},
		rangeQ: func(objs []model.Location) RangeFunc {
			oi := ip.IndexObjects(objs)
			return func(q model.Location, r float64) int { return len(oi.Range(q, r)) }
		},
		buildDur: ipDur,
		memory:   ip.MemoryBytes(),
	})

	start = time.Now()
	vip := iptree.NewVIPTree(ip)
	vipDur := ipDur + time.Since(start)
	out = append(out, competitor{
		name:     vip.Name(),
		distance: vip.Distance,
		path:     vip.Path,
		knn: func(objs []model.Location) KNNFunc {
			oi := vip.IndexObjects(objs)
			return func(q model.Location, k int) int { return len(oi.KNN(q, k)) }
		},
		rangeQ: func(objs []model.Location) RangeFunc {
			oi := vip.IndexObjects(objs)
			return func(q model.Location, r float64) int { return len(oi.Range(q, r)) }
		},
		buildDur: vipDur,
		memory:   vip.MemoryBytes(),
	})

	da := distaware.New(v)
	out = append(out, competitor{
		name:     da.Name(),
		distance: da.Distance,
		path:     da.Path,
		knn: func(objs []model.Location) KNNFunc {
			ix := distaware.New(v).IndexObjects(objs)
			return func(q model.Location, k int) int { return len(ix.KNN(q, k)) }
		},
		rangeQ: func(objs []model.Location) RangeFunc {
			ix := distaware.New(v).IndexObjects(objs)
			return func(q model.Location, r float64) int { return len(ix.Range(q, r)) }
		},
		buildDur: 0,
		memory:   da.MemoryBytes(),
	})

	if !c.SkipSlow {
		start = time.Now()
		gt := gtree.Build(v, gtree.Options{})
		gtDur := time.Since(start)
		out = append(out, competitor{
			name:     gt.Name(),
			distance: gt.Distance,
			path:     gt.Path,
			knn: func(objs []model.Location) KNNFunc {
				oi := gt.IndexObjects(objs)
				return func(q model.Location, k int) int { return len(oi.KNN(q, k)) }
			},
			rangeQ: func(objs []model.Location) RangeFunc {
				oi := gt.IndexObjects(objs)
				return func(q model.Location, r float64) int { return len(oi.Range(q, r)) }
			},
			buildDur: gtDur,
			memory:   gt.MemoryBytes(),
		})

		start = time.Now()
		rd := road.Build(v, road.Options{})
		rdDur := time.Since(start)
		out = append(out, competitor{
			name:     rd.Name(),
			distance: rd.Distance,
			path:     rd.Path,
			knn: func(objs []model.Location) KNNFunc {
				ix := road.Build(v, road.Options{}).IndexObjects(objs)
				return func(q model.Location, k int) int { return len(ix.KNN(q, k)) }
			},
			rangeQ: func(objs []model.Location) RangeFunc {
				ix := road.Build(v, road.Options{}).IndexObjects(objs)
				return func(q model.Location, r float64) int { return len(ix.Range(q, r)) }
			},
			buildDur: rdDur,
			memory:   rd.MemoryBytes(),
		})
	}

	if !c.SkipDistMx {
		start = time.Now()
		dm := distmatrix.Build(v, true)
		dmDur := time.Since(start)
		out = append(out, competitor{
			name:     dm.Name(),
			distance: dm.Distance,
			path:     dm.Path,
			knn: func(objs []model.Location) KNNFunc {
				oi := dm.IndexObjects(objs)
				return func(q model.Location, k int) int { return len(oi.KNN(q, k)) }
			},
			rangeQ: func(objs []model.Location) RangeFunc {
				oi := dm.IndexObjects(objs)
				return func(q model.Location, r float64) int { return len(oi.Range(q, r)) }
			},
			buildDur: dmDur,
			memory:   dm.MemoryBytes(),
		})
	}
	return out
}

func fmtMicros(us float64) string { return fmt.Sprintf("%.2f", us) }
func fmtMB(bytes int64) string    { return fmt.Sprintf("%.2f", float64(bytes)/(1<<20)) }

// Table1 reports the structural quantities of Table 1's complexity analysis
// (ρ, f, M, D, α, height) measured on the generated venues.
func Table1(c Config) Table {
	t := Table{
		Title:  "Table 1 — structural parameters of the complexity analysis",
		Header: []string{"venue", "doors D", "leaves M", "height", "avg access doors (rho)", "max", "avg fanout f", "avg superior doors", "max"},
	}
	for _, nv := range c.Venues() {
		tree := iptree.MustBuildIPTree(nv.Venue, iptree.Options{})
		s := tree.TreeStats()
		t.Rows = append(t.Rows, []string{
			nv.Name,
			fmt.Sprintf("%d", nv.Venue.NumDoors()),
			fmt.Sprintf("%d", s.Leaves),
			fmt.Sprintf("%d", s.Height),
			fmt.Sprintf("%.2f", s.AvgAccessDoors),
			fmt.Sprintf("%d", s.MaxAccessDoors),
			fmt.Sprintf("%.2f", s.AvgFanout),
			fmt.Sprintf("%.2f", s.AvgSuperiorDoors),
			fmt.Sprintf("%d", s.MaxSuperiorDoors),
		})
	}
	t.Notes = append(t.Notes, "paper: rho and f below 4 on average, superior doors at most ~8")
	return t
}

// Table2 reports the venue statistics of Table 2.
func Table2(c Config) Table {
	t := Table{
		Title:  "Table 2 — indoor venues used in experiments",
		Header: []string{"venue", "#doors", "#rooms", "#edges", "#floors", "max out-degree"},
	}
	for _, nv := range c.Venues() {
		s := nv.Venue.ComputeStats()
		t.Rows = append(t.Rows, []string{
			nv.Name,
			fmt.Sprintf("%d", s.Doors),
			fmt.Sprintf("%d", s.Partitions),
			fmt.Sprintf("%d", s.D2DEdges),
			fmt.Sprintf("%d", s.Floors),
			fmt.Sprintf("%d", s.MaxOutDegree),
		})
	}
	return t
}

// Fig7 reports the effect of the minimum degree t on VIP-Tree construction
// cost and query time (Fig 7a and 7b) on the campus venue.
func Fig7(c Config) Table {
	t := Table{
		Title:  "Fig 7 — effect of minimum degree t on VIP-Tree (campus venue)",
		Header: []string{"t", "memory (MB)", "indexing time (ms)", "shortest distance (us)", "kNN (us)"},
	}
	v := buildVenue("CL", c.Scale)
	pairs := Pairs(v, c.Pairs, c.Seed)
	points := Points(v, c.Points, c.Seed+1)
	objs := Objects(v, c.Objects, c.Seed+2)
	for _, deg := range []int{2, 10, 20, 60, 100} {
		start := time.Now()
		vip := iptree.MustBuildVIPTree(v, iptree.Options{MinDegree: deg})
		buildDur := time.Since(start)
		distM := MeasureDistance(vip, pairs)
		oi := vip.IndexObjects(objs)
		knnM := MeasureKNN(func(q model.Location, k int) int { return len(oi.KNN(q, k)) }, points, c.K)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", deg),
			fmtMB(vip.MemoryBytes()),
			fmt.Sprintf("%d", buildDur.Milliseconds()),
			fmtMicros(distM.PerQueryMicros()),
			fmtMicros(knnM.PerQueryMicros()),
		})
	}
	t.Notes = append(t.Notes, "paper: construction cost grows with t; shortest-distance time flat; kNN time grows with t")
	return t
}

// Fig8 reports index construction time (Fig 8a) and index size (Fig 8b).
func Fig8(c Config) Table {
	t := Table{
		Title:  "Fig 8 — indexing cost (construction time ms / index size MB)",
		Header: []string{"venue", "index", "construction (ms)", "size (MB)"},
	}
	for _, nv := range c.Venues() {
		for _, comp := range buildCompetitors(nv.Venue, c) {
			t.Rows = append(t.Rows, []string{
				nv.Name, comp.name,
				fmt.Sprintf("%d", comp.buildDur.Milliseconds()),
				fmtMB(comp.memory),
			})
		}
	}
	t.Notes = append(t.Notes, "paper: DistMx slowest/largest by orders of magnitude; IP/VIP build in <2 minutes even for CL-2")
	return t
}

// Fig9a reports the number of door pairs considered per query by DistMx with
// and without the no-through optimisation, and the superior-door pairs
// considered by VIP-Tree.
func Fig9a(c Config) Table {
	t := Table{
		Title:  "Fig 9a — door pairs considered per shortest-distance query",
		Header: []string{"venue", "DistMx--", "DistMx", "VIP-Tree (superior pairs)"},
	}
	for _, nv := range c.Venues() {
		if c.SkipDistMx {
			break
		}
		v := nv.Venue
		pairs := Pairs(v, c.Pairs, c.Seed)
		noOpt := distmatrix.Build(v, false)
		opt := distmatrix.Build(v, true)
		for _, p := range pairs {
			noOpt.Distance(p.S, p.T)
			opt.Distance(p.S, p.T)
		}
		// VIP-Tree considers |SUP(P(s))| x |SUP(P(t))| pairs.
		tree := iptree.MustBuildIPTree(v, iptree.Options{})
		var supPairs float64
		for _, p := range pairs {
			supPairs += float64(len(tree.SuperiorDoors(p.S.Partition)) * len(tree.SuperiorDoors(p.T.Partition)))
		}
		supPairs /= float64(len(pairs))
		t.Rows = append(t.Rows, []string{
			nv.Name,
			fmt.Sprintf("%.2f", noOpt.AvgPairsPerQuery()),
			fmt.Sprintf("%.2f", opt.AvgPairsPerQuery()),
			fmt.Sprintf("%.2f", supPairs),
		})
	}
	t.Notes = append(t.Notes, "paper: optimisation cuts pairs from ~50-65 to ~9-12; VIP considers slightly fewer pairs")
	return t
}

// Fig9b reports shortest-distance query time for every algorithm and venue.
func Fig9b(c Config) Table {
	return queryTimeTable(c, "Fig 9b — shortest distance query time (us)", func(comp competitor, pairs []QueryPair) float64 {
		return MeasureDistance(struct {
			distanceFn
		}{comp.distance}, pairs).PerQueryMicros()
	})
}

// Fig10a reports shortest-path query time for every algorithm and venue.
func Fig10a(c Config) Table {
	return queryTimeTable(c, "Fig 10a — shortest path query time (us)", func(comp competitor, pairs []QueryPair) float64 {
		return MeasurePath(struct {
			pathFn
		}{comp.path}, pairs).PerQueryMicros()
	})
}

// distanceFn and pathFn adapt bare functions to the Measure interfaces.
type distanceFn func(s, t model.Location) float64

func (f distanceFn) Distance(s, t model.Location) float64 { return f(s, t) }

type pathFn func(s, t model.Location) (float64, []model.DoorID)

func (f pathFn) Path(s, t model.Location) (float64, []model.DoorID) { return f(s, t) }

func queryTimeTable(c Config, title string, measure func(competitor, []QueryPair) float64) Table {
	t := Table{Title: title, Header: []string{"venue", "index", "per-query (us)"}}
	for _, nv := range c.Venues() {
		pairs := Pairs(nv.Venue, c.Pairs, c.Seed)
		for _, comp := range buildCompetitors(nv.Venue, c) {
			us := measure(comp, pairs)
			t.Rows = append(t.Rows, []string{nv.Name, comp.name, fmtMicros(us)})
		}
	}
	t.Notes = append(t.Notes, "paper: VIP-Tree within ~2x of DistMx; IP-Tree next; DistAw/G-tree/ROAD orders of magnitude slower")
	return t
}

// Fig10b reports shortest-path query time per distance bucket Q1..Q5 on the
// Men-2 venue (the largest venue for which DistMx is feasible).
func Fig10b(c Config) Table {
	t := Table{
		Title:  "Fig 10b — effect of distance between s and t (Men-2, us per query)",
		Header: []string{"bucket", "index", "per-query (us)"},
	}
	v := buildVenue("Men-2", c.Scale)
	buckets := BucketedPairs(v, 5, c.Pairs/5+1, c.Seed)
	comps := buildCompetitors(v, c)
	for bi, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		for _, comp := range comps {
			m := MeasurePath(struct{ pathFn }{comp.path}, bucket)
			t.Rows = append(t.Rows, []string{fmt.Sprintf("Q%d", bi+1), comp.name, fmtMicros(m.PerQueryMicros())})
		}
	}
	t.Notes = append(t.Notes, "paper: DistAw degrades ~100x from Q1 to Q5; IP-Tree grows slightly up to Q3; VIP-Tree and DistMx flat")
	return t
}

// Fig11a reports kNN query time versus k on the Men-2 venue.
func Fig11a(c Config) Table {
	t := Table{
		Title:  "Fig 11a — kNN query time vs k (us per query)",
		Header: []string{"k", "index", "per-query (us)"},
	}
	v := buildVenue("Men-2", c.Scale)
	points := Points(v, c.Points, c.Seed)
	objs := Objects(v, c.Objects, c.Seed+1)
	comps := buildCompetitors(v, c)
	for _, k := range []int{1, 5, 10} {
		for _, comp := range comps {
			knn := comp.knn(objs)
			m := MeasureKNN(knn, points, k)
			t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", k), comp.name, fmtMicros(m.PerQueryMicros())})
		}
	}
	t.Notes = append(t.Notes, "paper: cost grows mildly with k for all algorithms; IP/VIP orders of magnitude faster")
	return t
}

// Fig11b reports kNN query time versus the number of objects.
func Fig11b(c Config) Table {
	t := Table{
		Title:  "Fig 11b — kNN query time vs number of objects (us per query)",
		Header: []string{"#objects", "index", "per-query (us)"},
	}
	v := buildVenue("Men-2", c.Scale)
	points := Points(v, c.Points, c.Seed)
	comps := buildCompetitors(v, c)
	for _, n := range []int{10, 50, 100, 500} {
		objs := Objects(v, n, c.Seed+int64(n))
		for _, comp := range comps {
			knn := comp.knn(objs)
			m := MeasureKNN(knn, points, c.K)
			t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", n), comp.name, fmtMicros(m.PerQueryMicros())})
		}
	}
	t.Notes = append(t.Notes, "paper: cost decreases for all algorithms as the object set grows")
	return t
}

// Fig11c reports kNN query time across venues.
func Fig11c(c Config) Table {
	t := Table{
		Title:  "Fig 11c — kNN query time across venues (us per query)",
		Header: []string{"venue", "index", "per-query (us)"},
	}
	for _, nv := range c.Venues() {
		points := Points(nv.Venue, c.Points, c.Seed)
		objs := Objects(nv.Venue, c.Objects, c.Seed+1)
		for _, comp := range buildCompetitors(nv.Venue, c) {
			knn := comp.knn(objs)
			m := MeasureKNN(knn, points, c.K)
			t.Rows = append(t.Rows, []string{nv.Name, comp.name, fmtMicros(m.PerQueryMicros())})
		}
	}
	return t
}

// Fig11d reports range query time across venues.
func Fig11d(c Config) Table {
	t := Table{
		Title:  "Fig 11d — range query time across venues (us per query)",
		Header: []string{"venue", "index", "per-query (us)"},
	}
	for _, nv := range c.Venues() {
		points := Points(nv.Venue, c.Points, c.Seed)
		objs := Objects(nv.Venue, c.Objects, c.Seed+1)
		for _, comp := range buildCompetitors(nv.Venue, c) {
			rq := comp.rangeQ(objs)
			m := MeasureRange(rq, points, c.RangeMeters)
			t.Rows = append(t.Rows, []string{nv.Name, comp.name, fmtMicros(m.PerQueryMicros())})
		}
	}
	return t
}

// Ablations compares the paper's design choices against naive variants:
// superior doors vs all doors (Definition 2) and the access-door-minimising
// merge of Algorithm 1 vs an arbitrary merge.
func Ablations(c Config) Table {
	t := Table{
		Title:  "Ablations — design choices of the IP-Tree/VIP-Tree",
		Header: []string{"venue", "variant", "shortest distance (us)", "avg access doors (rho)"},
	}
	for _, nv := range c.Venues() {
		pairs := Pairs(nv.Venue, c.Pairs, c.Seed)
		variants := []struct {
			name string
			opts iptree.Options
		}{
			{"full design", iptree.Options{}},
			{"no superior doors", iptree.Options{DisableSuperiorDoors: true}},
			{"naive merge", iptree.Options{NaiveMerge: true}},
		}
		for _, variant := range variants {
			vip := iptree.MustBuildVIPTree(nv.Venue, variant.opts)
			m := MeasureDistance(vip, pairs)
			s := vip.TreeStats()
			t.Rows = append(t.Rows, []string{nv.Name, variant.name, fmtMicros(m.PerQueryMicros()), fmt.Sprintf("%.2f", s.AvgAccessDoors)})
		}
	}
	return t
}

// All returns every experiment keyed by its identifier.
func All() map[string]func(Config) Table {
	return map[string]func(Config) Table{
		"table1":    Table1,
		"table2":    Table2,
		"fig7":      Fig7,
		"fig8":      Fig8,
		"fig9a":     Fig9a,
		"fig9b":     Fig9b,
		"fig10a":    Fig10a,
		"fig10b":    Fig10b,
		"fig11a":    Fig11a,
		"fig11b":    Fig11b,
		"fig11c":    Fig11c,
		"fig11d":    Fig11d,
		"ablations": Ablations,
	}
}
