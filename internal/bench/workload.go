// Package bench provides the workload generators, measurement helpers and
// experiment drivers that regenerate the tables and figures of the paper's
// evaluation (Section 4). It is shared by the root-level Go benchmarks and
// by cmd/experiments.
package bench

import (
	"math/rand"
	"sort"
	"time"

	"viptree/internal/model"
)

// QueryPair is one shortest-distance / shortest-path query.
type QueryPair struct {
	S, T model.Location
}

// Pairs generates n uniformly random source/target pairs (the paper uses
// 10,000 random pairs; benchmarks use fewer per iteration).
func Pairs(v *model.Venue, n int, seed int64) []QueryPair {
	rng := rand.New(rand.NewSource(seed))
	out := make([]QueryPair, n)
	for i := range out {
		out[i] = QueryPair{S: v.RandomLocation(rng), T: v.RandomLocation(rng)}
	}
	return out
}

// ClusteredPairs generates n pairs whose sources are drawn round-robin from
// k distinct locations and whose targets are uniform — the clustered-source
// workload (k fleet dispatchers, many destinations) that the batched
// distance path amortises: every batch group climbs once per distinct
// source instead of once per query.
func ClusteredPairs(v *model.Venue, n, k int, seed int64) []QueryPair {
	rng := rand.New(rand.NewSource(seed))
	if k < 1 {
		k = 1
	}
	srcs := make([]model.Location, k)
	for i := range srcs {
		srcs[i] = v.RandomLocation(rng)
	}
	out := make([]QueryPair, n)
	for i := range out {
		out[i] = QueryPair{S: srcs[i%k], T: v.RandomLocation(rng)}
	}
	return out
}

// Points generates n uniformly random query points for kNN/range workloads.
func Points(v *model.Venue, n int, seed int64) []model.Location {
	rng := rand.New(rand.NewSource(seed))
	out := make([]model.Location, n)
	for i := range out {
		out[i] = v.RandomLocation(rng)
	}
	return out
}

// Objects generates n uniformly random objects (the paper places washrooms
// and synthetic object sets of 10–500 objects).
func Objects(v *model.Venue, n int, seed int64) []model.Location {
	return Points(v, n, seed)
}

// BucketedPairs generates query pairs grouped into `buckets` distance
// quintiles Q1..Qb (Fig 10b): pairs are drawn at random, their exact distance
// is computed with the D2D graph, and each pair is assigned to the bucket
// covering its distance. Generation stops when every bucket has perBucket
// pairs or the attempt budget is exhausted.
func BucketedPairs(v *model.Venue, buckets, perBucket int, seed int64) [][]QueryPair {
	rng := rand.New(rand.NewSource(seed))
	// Estimate dmax by sampling random pairs.
	dmax := 0.0
	for i := 0; i < 200; i++ {
		s, t := v.RandomLocation(rng), v.RandomLocation(rng)
		if d := v.D2D().LocationDist(s, t); d < 1e17 && d > dmax {
			dmax = d
		}
	}
	if dmax == 0 {
		dmax = 1
	}
	out := make([][]QueryPair, buckets)
	attempts := buckets * perBucket * 50
	for i := 0; i < attempts; i++ {
		full := true
		for _, b := range out {
			if len(b) < perBucket {
				full = false
				break
			}
		}
		if full {
			break
		}
		s, t := v.RandomLocation(rng), v.RandomLocation(rng)
		d := v.D2D().LocationDist(s, t)
		if d >= 1e17 {
			continue
		}
		b := int(float64(buckets) * d / (dmax * 1.0001))
		if b >= buckets {
			b = buckets - 1
		}
		if len(out[b]) < perBucket {
			out[b] = append(out[b], QueryPair{S: s, T: t})
		}
	}
	return out
}

// Measurement is the timing result of running a query workload.
type Measurement struct {
	Queries int
	Total   time.Duration
}

// PerQueryMicros returns the average query latency in microseconds, the unit
// the paper's figures use.
func (m Measurement) PerQueryMicros() float64 {
	if m.Queries == 0 {
		return 0
	}
	return float64(m.Total.Microseconds()) / float64(m.Queries)
}

// MeasureDistance times shortest-distance queries over the pairs.
func MeasureDistance(q interface {
	Distance(s, t model.Location) float64
}, pairs []QueryPair) Measurement {
	start := time.Now()
	for _, p := range pairs {
		q.Distance(p.S, p.T)
	}
	return Measurement{Queries: len(pairs), Total: time.Since(start)}
}

// MeasurePath times shortest-path queries over the pairs.
func MeasurePath(q interface {
	Path(s, t model.Location) (float64, []model.DoorID)
}, pairs []QueryPair) Measurement {
	start := time.Now()
	for _, p := range pairs {
		q.Path(p.S, p.T)
	}
	return Measurement{Queries: len(pairs), Total: time.Since(start)}
}

// KNNFunc is a kNN query function.
type KNNFunc func(q model.Location, k int) int

// MeasureKNN times kNN queries over the query points.
func MeasureKNN(knn KNNFunc, points []model.Location, k int) Measurement {
	start := time.Now()
	for _, p := range points {
		knn(p, k)
	}
	return Measurement{Queries: len(points), Total: time.Since(start)}
}

// RangeFunc is a range query function.
type RangeFunc func(q model.Location, r float64) int

// MeasureRange times range queries over the query points.
func MeasureRange(rangeQ RangeFunc, points []model.Location, r float64) Measurement {
	start := time.Now()
	for _, p := range points {
		rangeQ(p, r)
	}
	return Measurement{Queries: len(points), Total: time.Since(start)}
}

// SortedDistances is a test helper: it returns the exact distances from q to
// every object, ascending, computed on the D2D graph.
func SortedDistances(v *model.Venue, objects []model.Location, q model.Location) []float64 {
	out := make([]float64, len(objects))
	for i, o := range objects {
		out[i] = v.D2D().LocationDist(q, o)
	}
	sort.Float64s(out)
	return out
}
