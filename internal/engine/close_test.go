package engine_test

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"viptree/internal/engine"
	"viptree/internal/iptree"
	"viptree/internal/model"
	"viptree/internal/wal"
)

// openDurable builds a durable engine over a fresh VIP-Tree with a WAL on a
// FaultFS (no faults armed unless the test arms them).
func openDurable(t *testing.T, objects int) (*engine.Engine, *model.Venue) {
	t.Helper()
	v := testVenue(t)
	tree := iptree.MustBuildVIPTree(v, iptree.Options{})
	eng, _, err := engine.Open(tree, engine.Options{
		Workers:    4,
		Objects:    tree.IndexObjects(baseObjects(v, objects, 1)),
		WALDir:     "wal",
		WALOptions: fastWALOptions(wal.NewFaultFS()),
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, v
}

// TestCloseIdempotent pins the shutdown contract: Close flushes and returns
// nil, every further Close is a no-op returning the same nil, and a
// non-durable engine tolerates any number of Closes.
func TestCloseIdempotent(t *testing.T) {
	eng, v := openDurable(t, 10)
	rng := rand.New(rand.NewSource(41))
	if _, err := eng.Insert(v.RandomLocation(rng)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := eng.Close(); err != nil {
			t.Fatalf("Close #%d: %v", i+1, err)
		}
	}
	// Updates after Close are rejected (the WAL is gone), reads keep serving.
	if _, err := eng.Insert(v.RandomLocation(rng)); err == nil {
		t.Fatal("insert accepted after Close")
	}
	if r := eng.ExecuteBatch(probeQueries(v, 2)); r[0].Err != nil {
		t.Fatalf("read after Close: %v", r[0].Err)
	}

	nd := engine.New(iptree.MustBuildVIPTree(testVenue(t), iptree.Options{}), engine.Options{})
	for i := 0; i < 3; i++ {
		if err := nd.Close(); err != nil {
			t.Fatalf("non-durable Close #%d: %v", i+1, err)
		}
	}
}

// TestCloseConcurrentWithExecuteBatch races Close against serving batches:
// reads must keep answering correctly throughout (Close only detaches the
// WAL), updates must either apply durably before the close or be rejected
// with a typed error, and no goroutine may panic or deadlock. Run under
// -race this also pins the memory-safety of the shutdown path.
func TestCloseConcurrentWithExecuteBatch(t *testing.T) {
	eng, v := openDurable(t, 20)

	const callers = 4
	var wg sync.WaitGroup
	start := make(chan struct{})
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			<-start
			for round := 0; round < 20; round++ {
				qs := probeQueries(v, 4)
				// One update rides along so the batch crosses the WAL.
				qs = append(qs, engine.Query{Kind: engine.KindInsert, S: v.RandomLocation(rng)})
				for i, r := range eng.ExecuteBatchContext(context.Background(), qs) {
					if r.Err == nil {
						continue
					}
					if qs[i].Kind.IsUpdate() &&
						(errors.Is(r.Err, wal.ErrDegradedReadOnly) || errors.Is(r.Err, wal.ErrClosed)) {
						continue // rejected by the closing WAL: allowed
					}
					t.Errorf("caller %d round %d query %d (%v): %v", c, round, i, qs[i].Kind, r.Err)
					return
				}
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		if err := eng.Close(); err != nil {
			t.Errorf("concurrent Close: %v", err)
		}
	}()
	close(start)
	wg.Wait()
	if err := eng.Close(); err != nil {
		t.Fatalf("final Close: %v", err)
	}
}
