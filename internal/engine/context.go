package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
)

// This file is the serving-node entry point into batch execution:
// ExecuteBatchContext adds the two robustness properties a long-running
// front-end needs on top of ExecuteBatch — cooperative cancellation
// (per-request deadlines propagate into the batch, so an abandoned request
// stops consuming index time) and panic isolation (a query that trips a bug
// in the index becomes that query's error result instead of killing the
// process). Both are threaded through the batched query planner via execCtx,
// so planned execution keeps its shared-climb performance under a deadline.

// ErrCanceled reports a query that was not executed because its batch's
// context was canceled before the engine reached it. The Result.Err of such
// a query also matches the context error (errors.Is against
// context.Canceled or context.DeadlineExceeded tells which).
var ErrCanceled = errors.New("engine: query not executed (batch context canceled)")

// PanicError is the Result.Err of a query whose execution panicked inside a
// batch run with panic isolation (ExecuteBatchContext). The engine recovered
// the panic on the query's behalf: the process and the other queries of the
// batch are unaffected, and the captured value and stack identify the bug.
//
// A recovered panic in a read leaves the index intact (the read paths only
// write pooled per-query scratch). A recovered panic in an object update may
// leave the single-writer update log poisoned — reads keep serving either
// way, which is the degradation a serving node wants.
type PanicError struct {
	// Value is the value the query panicked with.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

// Error implements error.
func (p *PanicError) Error() string {
	return fmt.Sprintf("engine: query panicked: %v", p.Value)
}

// execCtx is the execution context threaded through one batch: an optional
// cancellation context and whether panics are isolated per query. The zero
// value (ExecuteBatch) checks nothing and lets panics propagate.
type execCtx struct {
	ctx  context.Context // nil: never canceled
	safe bool            // recover panics into *PanicError results
}

// canceled reports whether the batch's context is done. It is called from
// pooled worker goroutines; context.Context is safe for concurrent use.
func (ec *execCtx) canceled() bool {
	if ec.ctx == nil {
		return false
	}
	select {
	case <-ec.ctx.Done():
		return true
	default:
		return false
	}
}

// cancelErr builds the Result.Err for a query skipped by cancellation.
func (ec *execCtx) cancelErr() error {
	return errors.Join(ErrCanceled, ec.ctx.Err())
}

// guard runs fn, recovering a panic into a *PanicError in safe mode. In
// unsafe mode the panic propagates to the caller unchanged.
func (ec *execCtx) guard(fn func()) (perr *PanicError) {
	if !ec.safe {
		fn()
		return nil
	}
	defer func() {
		if v := recover(); v != nil {
			perr = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	fn()
	return nil
}

// ExecuteBatchContext runs the batch like ExecuteBatch, under the context's
// deadline and with per-query panic isolation — the entry point a serving
// front-end uses. Cancellation is cooperative at query granularity (and at
// segment granularity inside the batched planner): queries the engine has
// not reached when the context fires are returned unexecuted with a
// Result.Err matching both ErrCanceled and the context error, while queries
// already executing run to completion. A panicking query yields a
// *PanicError result instead of crashing the process; see PanicError for
// what state it can poison. Results are positionally identical to
// ExecuteBatch for every query that executes.
func (e *Engine) ExecuteBatchContext(ctx context.Context, queries []Query) []Result {
	return e.executeBatch(execCtx{ctx: ctx, safe: true}, queries, e.workers)
}

// executeOne runs one query of a batch under the batch's execution context.
func (e *Engine) executeOne(ec *execCtx, q Query) (r Result) {
	if ec.canceled() {
		return Result{Err: ec.cancelErr()}
	}
	if perr := ec.guard(func() { r = e.Execute(q) }); perr != nil {
		return Result{Err: perr}
	}
	return r
}
