package engine_test

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"viptree/internal/engine"
	"viptree/internal/geom"
	"viptree/internal/index"
	"viptree/internal/iptree"
	"viptree/internal/model"
)

// poisonX marks a query location that makes stubIndex panic: the stand-in
// for an index bug tripped by one particular query.
const poisonX = -1e9

// stubIndex is a deterministic fake distance index: Distance is the L1 gap
// between the points, and any endpoint at poisonX panics. It deliberately
// does not implement index.DistanceBatcher, so batches fan out per query.
type stubIndex struct{}

func (stubIndex) Name() string { return "stub" }
func (stubIndex) Distance(s, t model.Location) float64 {
	if s.Point.X == poisonX || t.Point.X == poisonX {
		panic("stub index bug")
	}
	dx := s.Point.X - t.Point.X
	if dx < 0 {
		dx = -dx
	}
	return dx
}
func (s stubIndex) Path(a, b model.Location) (float64, []model.DoorID) {
	return s.Distance(a, b), nil
}
func (stubIndex) MemoryBytes() int64 { return 0 }
func (stubIndex) Stats() index.Stats { return index.Stats{Name: "stub"} }

// panicBatchIndex is a stubIndex whose batched distance entry point always
// panics — the stand-in for a bug in the shared-climb batch path.
type panicBatchIndex struct{ stubIndex }

func (panicBatchIndex) DistanceBatch(pairs []index.LocationPair, out []float64, workers int) {
	panic("batched index bug")
}

func at(x float64) model.Location {
	return model.Location{Partition: 0, Point: geom.Point{X: x}}
}

// TestExecuteBatchContextMatchesBatch pins the equivalence contract: under a
// live context, ExecuteBatchContext returns exactly what ExecuteBatch does,
// for a real index with the planner engaged.
func TestExecuteBatchContextMatchesBatch(t *testing.T) {
	v := testVenue(t)
	vip := iptree.MustBuildVIPTree(v, iptree.Options{})
	rng := rand.New(rand.NewSource(17))
	objects := make([]model.Location, 30)
	for i := range objects {
		objects[i] = v.RandomLocation(rng)
	}
	eng := engine.New(vip, engine.Options{Workers: 4, Objects: vip.NewObjectQuerier(objects)})
	queries := mixedWorkload(v, 300, 23)
	plain := eng.ExecuteBatch(queries)
	ctxed := eng.ExecuteBatchContext(context.Background(), queries)
	for i := range plain {
		if !resultsEqual(plain[i], ctxed[i]) {
			t.Fatalf("query %d (%v): ExecuteBatch %+v != ExecuteBatchContext %+v",
				i, queries[i].Kind, plain[i], ctxed[i])
		}
	}
}

// TestExecuteBatchContextCanceled submits a batch under an already-fired
// context: every query must come back unexecuted with an error matching both
// ErrCanceled and the specific context error, and the executed-query
// counters must not move.
func TestExecuteBatchContextCanceled(t *testing.T) {
	eng := engine.New(stubIndex{}, engine.Options{Workers: 4})
	queries := make([]engine.Query, 64)
	for i := range queries {
		queries[i] = engine.Query{Kind: engine.KindDistance, S: at(float64(i)), T: at(0)}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i, r := range eng.ExecuteBatchContext(ctx, queries) {
		if !errors.Is(r.Err, engine.ErrCanceled) || !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("query %d: want ErrCanceled+context.Canceled, got %v", i, r.Err)
		}
	}

	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	for i, r := range eng.ExecuteBatchContext(dctx, queries) {
		if !errors.Is(r.Err, engine.ErrCanceled) || !errors.Is(r.Err, context.DeadlineExceeded) {
			t.Fatalf("query %d: want ErrCanceled+DeadlineExceeded, got %v", i, r.Err)
		}
	}

	if got := eng.Stats().Distance; got != 0 {
		t.Fatalf("canceled queries counted as executed: %d", got)
	}
}

// TestPanicIsolationPerQuery mixes healthy queries with ones that trip the
// stub index's bug: the poisoned queries must come back as *PanicError with
// a captured stack, the healthy ones must answer normally, and the process
// must survive — across pooled workers.
func TestPanicIsolationPerQuery(t *testing.T) {
	eng := engine.New(stubIndex{}, engine.Options{Workers: 4})
	queries := make([]engine.Query, 100)
	for i := range queries {
		x := float64(i)
		if i%7 == 3 {
			x = poisonX
		}
		queries[i] = engine.Query{Kind: engine.KindDistance, S: at(x), T: at(0)}
	}
	for i, r := range eng.ExecuteBatchContext(context.Background(), queries) {
		if i%7 == 3 {
			var perr *engine.PanicError
			if !errors.As(r.Err, &perr) {
				t.Fatalf("query %d: want *PanicError, got %v", i, r.Err)
			}
			if perr.Value != "stub index bug" {
				t.Fatalf("query %d: panic value %v", i, perr.Value)
			}
			if !bytes.Contains(perr.Stack, []byte("goroutine")) {
				t.Fatalf("query %d: no stack captured", i)
			}
		} else if r.Err != nil || r.Dist != float64(i) {
			t.Fatalf("query %d: want dist %d, got %+v", i, i, r)
		}
	}
}

// TestPanicIsolationBatchedSegment routes a batch through a panicking
// batched distance path: exactly the segment's queries become *PanicError
// results, the path queries sharing the batch still answer, and the
// unguarded ExecuteBatch re-raises the same panic to its caller instead of
// dying on a worker goroutine.
func TestPanicIsolationBatchedSegment(t *testing.T) {
	eng := engine.New(panicBatchIndex{}, engine.Options{Workers: 4})
	queries := make([]engine.Query, 40)
	for i := range queries {
		k := engine.KindDistance
		if i%5 == 0 {
			k = engine.KindPath
		}
		queries[i] = engine.Query{Kind: k, S: at(float64(i)), T: at(0)}
	}
	for i, r := range eng.ExecuteBatchContext(context.Background(), queries) {
		if i%5 == 0 {
			if r.Err != nil || r.Dist != float64(i) {
				t.Fatalf("path query %d caught in segment panic: %+v", i, r)
			}
			continue
		}
		var perr *engine.PanicError
		if !errors.As(r.Err, &perr) {
			t.Fatalf("distance query %d: want *PanicError, got %v", i, r.Err)
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatal("ExecuteBatch swallowed the index panic")
		}
	}()
	eng.ExecuteBatch(queries)
}

// TestExecuteBatchPanicPropagates pins the unguarded contract on the pooled
// per-query path: a worker panic drains the pool and re-raises on the
// calling goroutine.
func TestExecuteBatchPanicPropagates(t *testing.T) {
	eng := engine.New(stubIndex{}, engine.Options{Workers: 4})
	queries := make([]engine.Query, 50)
	for i := range queries {
		queries[i] = engine.Query{Kind: engine.KindDistance, S: at(float64(i)), T: at(0)}
	}
	queries[37].S = at(poisonX)
	defer func() {
		if v := recover(); v != "stub index bug" {
			t.Fatalf("want re-raised panic, got %v", v)
		}
	}()
	eng.ExecuteBatch(queries)
}
