// Package engine provides the concurrent query-execution layer that sits on
// top of the index layer (viptree/internal/index): typed query and result
// structs, single-query execution, and a batch API driven by a worker-pool
// executor.
//
// The engine is the substrate a query service builds on. It holds an index
// (any of the six implementations — IP-Tree, VIP-Tree, DistMx, DistAw,
// G-tree, ROAD) plus an optional object querier for kNN and range queries,
// and is safe for use by many goroutines at once: the distance indexes are
// read-only after construction and the hot paths draw their scratch from
// sync.Pool, so parallel callers neither race nor contend on allocations.
//
// When the object querier is mutable (index.MutableObjectIndexer — the
// IP-Tree/VIP-Tree object index), the engine additionally executes object
// updates (KindInsert, KindDelete, KindMove), concurrently with reads and
// freely mixed within one batch — the HTAP-style read/write mix a live
// tracking service needs. Against an immutable querier, update kinds
// return ErrImmutableObjects. When the querier routes its mutations
// through a single-writer update log (index.ChangeLogger), update kinds
// are funneled through that writer and reads resolve against the current
// published epoch with zero lock operations; Engine.ChangeLog exposes the
// log so callers can tail the change feed.
//
//	eng := engine.New(vipTree, engine.Options{Objects: objectIndex})
//	results := eng.ExecuteBatch(queries) // fans out over a worker pool
//
// The engine does not care how its index came to exist: one built in
// process and one restored from a snapshot (viptree/internal/snapshot)
// behave identically, so a serving process can skip construction entirely
// and be answering queries milliseconds after start.
package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"viptree/internal/index"
	"viptree/internal/model"
	"viptree/internal/updatelog"
	"viptree/internal/wal"
)

// Kind selects the query type executed by the engine.
type Kind uint8

// The query kinds supported by the engine. KindInsert, KindDelete and
// KindMove are object updates: they mutate the attached object querier and
// can be mixed freely with read kinds in one ExecuteBatch.
const (
	// KindDistance is a shortest-distance query between S and T.
	KindDistance Kind = iota
	// KindPath is a shortest-path query between S and T.
	KindPath
	// KindKNN is a k-nearest-neighbour query around S with parameter K.
	KindKNN
	// KindRange is a range query around S with parameter Radius.
	KindRange
	// KindInsert inserts an object at S; the allocated ID is returned in
	// Result.ObjectID.
	KindInsert
	// KindDelete deletes the object identified by ObjectID.
	KindDelete
	// KindMove relocates the object identified by ObjectID to S.
	KindMove
	numKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindDistance:
		return "distance"
	case KindPath:
		return "path"
	case KindKNN:
		return "knn"
	case KindRange:
		return "range"
	case KindInsert:
		return "insert"
	case KindDelete:
		return "delete"
	case KindMove:
		return "move"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// IsUpdate reports whether the kind mutates the object set.
func (k Kind) IsUpdate() bool {
	return k == KindInsert || k == KindDelete || k == KindMove
}

// Query is one typed query submitted to the engine.
type Query struct {
	Kind Kind
	// S is the query source (distance/path), the query point (kNN/range),
	// or the object location (insert/move).
	S model.Location
	// T is the query target; only used by distance and path queries.
	T model.Location
	// K is the result count of a kNN query.
	K int
	// Radius is the distance bound of a range query, in metres.
	Radius float64
	// ObjectID addresses the object of a delete or move.
	ObjectID int
}

// Result is the outcome of one query.
type Result struct {
	// Dist is the shortest distance (distance and path queries).
	Dist float64
	// Doors is the door sequence of the shortest path (path queries).
	Doors []model.DoorID
	// Objects are the kNN or range results, ascending by distance.
	Objects []index.ObjectResult
	// ObjectID is the ID allocated by an insert, or the ID addressed by a
	// delete or move.
	ObjectID int
	// Err reports queries the engine could not execute (e.g. an object
	// query without an attached object querier, or an update against an
	// immutable one).
	Err error
}

// Errors returned in Result.Err.
var (
	// ErrNoObjectIndex is returned for kNN/range queries when the engine
	// was built without an object querier.
	ErrNoObjectIndex = errors.New("engine: no object querier attached (set Options.Objects)")
	// ErrImmutableObjects is returned for insert/delete/move queries when
	// the attached object querier does not implement
	// index.MutableObjectIndexer.
	ErrImmutableObjects = errors.New("engine: object querier does not support updates")
	// ErrUnknownKind is returned for queries with an invalid Kind.
	ErrUnknownKind = errors.New("engine: unknown query kind")
)

// Options configures an Engine.
type Options struct {
	// Workers is the number of goroutines used by ExecuteBatch. Zero
	// selects GOMAXPROCS; one yields sequential execution.
	Workers int
	// Objects answers kNN and range queries; leave nil for a distance-only
	// engine.
	Objects index.ObjectQuerier
	// LatencySampleSize enables per-operation latency sampling: the engine
	// records the duration of every Execute into a fixed ring of this many
	// slots (rounded up to a power of two), overwriting the oldest samples.
	// Recording is one clock read and one atomic slot write — no allocation,
	// no locking — so it is safe to leave on in serving processes; zero
	// disables sampling entirely.
	LatencySampleSize int
	// DisablePlanner turns off the batched query planner: ExecuteBatch then
	// always fans queries out individually, even when the index supports
	// batched distance execution (index.DistanceBatcher). Results are
	// identical either way; the switch exists for A/B measurement and as an
	// escape hatch.
	DisablePlanner bool
	// WALDir enables the durable write-ahead log: every object update is
	// persisted to segment files under this directory and recovered on the
	// next start. Engines with a WAL must be built with Open (which runs
	// recovery); New refuses the option rather than silently serving
	// non-durably.
	WALDir string
	// WALOptions tunes the write-ahead log (fsync policy, segment size,
	// retry/backoff/probe behaviour). The Dir field is ignored — WALDir
	// wins. Only meaningful together with WALDir.
	WALOptions wal.Options
}

// Engine executes queries against one index. Its configuration is immutable
// after New and it is safe for concurrent use; when the attached object
// querier is mutable (index.MutableObjectIndexer), object updates may run
// concurrently with reads — including mixed within one batch.
type Engine struct {
	idx          index.Index
	objects      index.ObjectQuerier
	mutable      index.MutableObjectIndexer // nil when objects is immutable
	logged       index.ChangeLogger         // nil when the querier has no update log
	batcher      index.DistanceBatcher      // nil when the index has no batched path, or the planner is disabled
	knnBatcher   index.KNNBatcher           // nil when the querier has no batched kNN path, or the planner is disabled
	rangeBatcher index.RangeBatcher         // nil when the querier has no batched range path, or the planner is disabled
	cacheRep     index.ClimbCacheReporter   // nil when the querier reports no climb cache
	workers      int
	wal          *wal.WAL // nil for non-durable engines; set by Open
	counts       [numKinds]atomic.Int64
	batched      [numKinds]atomic.Int64 // queries answered through batched index entry points
	lat          *latencyRing           // nil when sampling is disabled
}

// New returns an engine over the index. For a durable engine (a write-ahead
// log under Options.WALDir) use Open instead — New panics on the option,
// because accepting it without running recovery would silently drop the
// durability the caller asked for.
func New(idx index.Index, opts Options) *Engine {
	if opts.WALDir != "" {
		panic("engine: Options.WALDir requires engine.Open (New would silently skip WAL recovery)")
	}
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	mut, _ := opts.Objects.(index.MutableObjectIndexer)
	logged, _ := opts.Objects.(index.ChangeLogger)
	e := &Engine{idx: idx, objects: opts.Objects, mutable: mut, logged: logged, workers: w}
	if !opts.DisablePlanner {
		e.batcher, _ = idx.(index.DistanceBatcher)
		e.knnBatcher, _ = opts.Objects.(index.KNNBatcher)
		e.rangeBatcher, _ = opts.Objects.(index.RangeBatcher)
	}
	e.cacheRep, _ = opts.Objects.(index.ClimbCacheReporter)
	if opts.LatencySampleSize > 0 {
		e.lat = newLatencyRing(opts.LatencySampleSize)
	}
	return e
}

// Index returns the underlying index.
func (e *Engine) Index() index.Index { return e.idx }

// Objects returns the attached object querier, or nil for a distance-only
// engine. Serving layers use it for introspection (object counts, epochs);
// queries should go through the typed entry points.
func (e *Engine) Objects() index.ObjectQuerier { return e.objects }

// Workers returns the batch parallelism of the engine.
func (e *Engine) Workers() int { return e.workers }

// Distance answers a shortest-distance query.
func (e *Engine) Distance(s, t model.Location) float64 {
	e.counts[KindDistance].Add(1)
	return e.idx.Distance(s, t)
}

// Path answers a shortest-path query.
func (e *Engine) Path(s, t model.Location) (float64, []model.DoorID) {
	e.counts[KindPath].Add(1)
	return e.idx.Path(s, t)
}

// KNN answers a k-nearest-neighbour query.
func (e *Engine) KNN(q model.Location, k int) ([]index.ObjectResult, error) {
	if e.objects == nil {
		return nil, ErrNoObjectIndex
	}
	e.counts[KindKNN].Add(1)
	return e.objects.KNN(q, k), nil
}

// Range answers a range query.
func (e *Engine) Range(q model.Location, r float64) ([]index.ObjectResult, error) {
	if e.objects == nil {
		return nil, ErrNoObjectIndex
	}
	e.counts[KindRange].Add(1)
	return e.objects.Range(q, r), nil
}

// Mutable returns the attached object querier's update capability, or nil
// when the engine has no object querier or an immutable one.
func (e *Engine) Mutable() index.MutableObjectIndexer { return e.mutable }

// ChangeLog returns the update log of the attached object querier, or nil
// when the querier does not route its mutations through one
// (index.ChangeLogger). Through it callers tail the ordered change feed
// (Subscribe) and observe the applied-epoch lag (HeadSeq/PublishedSeq) —
// the engine's update kinds are applied via this log, so the feed records
// exactly the updates the engine executed.
func (e *Engine) ChangeLog() *updatelog.Log {
	if e.logged == nil {
		return nil
	}
	return e.logged.ChangeLog()
}

// updatable reports whether object updates can be executed. A durable
// engine whose WAL is degraded rejects updates (they could not be made
// durable) while reads keep flowing.
func (e *Engine) updatable() error {
	if e.objects == nil {
		return ErrNoObjectIndex
	}
	if e.mutable == nil {
		return ErrImmutableObjects
	}
	if e.wal != nil && !e.wal.Healthy() {
		return wal.ErrDegradedReadOnly
	}
	return nil
}

// Insert adds an object to the attached object index and returns its ID.
func (e *Engine) Insert(loc model.Location) (int, error) {
	if err := e.updatable(); err != nil {
		return 0, err
	}
	e.counts[KindInsert].Add(1)
	return e.mutable.Insert(loc)
}

// Delete removes an object from the attached object index.
func (e *Engine) Delete(id int) error {
	if err := e.updatable(); err != nil {
		return err
	}
	e.counts[KindDelete].Add(1)
	return e.mutable.Delete(id)
}

// Move relocates an object of the attached object index.
func (e *Engine) Move(id int, loc model.Location) error {
	if err := e.updatable(); err != nil {
		return err
	}
	e.counts[KindMove].Add(1)
	return e.mutable.Move(id, loc)
}

// Execute runs a single query. With latency sampling enabled (see
// Options.LatencySampleSize) the operation's duration is recorded into the
// engine's sample ring.
func (e *Engine) Execute(q Query) Result {
	if e.lat != nil {
		start := time.Now()
		r := e.execute(q)
		e.lat.record(time.Since(start))
		return r
	}
	return e.execute(q)
}

func (e *Engine) execute(q Query) Result {
	switch q.Kind {
	case KindDistance:
		return Result{Dist: e.Distance(q.S, q.T)}
	case KindPath:
		d, doors := e.Path(q.S, q.T)
		return Result{Dist: d, Doors: doors}
	case KindKNN:
		objs, err := e.KNN(q.S, q.K)
		return Result{Objects: objs, Err: err}
	case KindRange:
		objs, err := e.Range(q.S, q.Radius)
		return Result{Objects: objs, Err: err}
	case KindInsert:
		id, err := e.Insert(q.S)
		return Result{ObjectID: id, Err: err}
	case KindDelete:
		return Result{ObjectID: q.ObjectID, Err: e.Delete(q.ObjectID)}
	case KindMove:
		return Result{ObjectID: q.ObjectID, Err: e.Move(q.ObjectID, q.S)}
	default:
		return Result{Err: ErrUnknownKind}
	}
}

// ExecuteBatch runs every query and returns the results in query order,
// fanning the work out over the engine's worker pool. Batches on a
// batch-capable index (index.DistanceBatcher for distance queries,
// index.KNNBatcher/RangeBatcher for object queries) are routed through the
// batched query planner (planner.go), which shares climbs between queries;
// updates mixed into a batch split it into maximal read runs that are still
// planned around them. Engines built with Options.DisablePlanner execute
// every query individually. Results are identical either way. It is safe to
// call from multiple goroutines at once; each call uses its own pool.
//
// ExecuteBatch neither checks deadlines nor isolates panics — a serving
// front-end should use ExecuteBatchContext, which does both.
func (e *Engine) ExecuteBatch(queries []Query) []Result {
	return e.executeBatch(execCtx{}, queries, e.workers)
}

// ExecuteBatchWorkers is ExecuteBatch with an explicit worker count
// (1 executes the batch sequentially on the calling goroutine).
func (e *Engine) ExecuteBatchWorkers(queries []Query, workers int) []Result {
	return e.executeBatch(execCtx{}, queries, workers)
}

// executeBatch is the shared batch executor behind ExecuteBatch,
// ExecuteBatchWorkers and ExecuteBatchContext.
func (e *Engine) executeBatch(ec execCtx, queries []Query, workers int) []Result {
	out := make([]Result, len(queries))
	if len(queries) == 0 {
		return out
	}
	if workers <= 0 {
		workers = e.workers
	}
	if workers > len(queries) {
		// Never run a pool wider than the batch: the excess goroutines would
		// be spawned only to find the cursor exhausted.
		workers = len(queries)
	}
	if e.planBatch(&ec, queries, out, workers) {
		return out
	}
	// Work-stealing by atomic cursor: queries are cheap and uniform enough
	// that a shared counter beats pre-chunking when latencies vary. The
	// calling goroutine participates as a worker (runPooled), so workers==1
	// is a plain sequential loop.
	runPooled(len(queries), workers, func(i int) {
		out[i] = e.executeOne(&ec, queries[i])
	})
	return out
}

// Stats reports the number of operations executed per kind since New: the
// four read kinds plus the three object-update kinds, the share of reads
// the planner routed through batched index entry points, and the climb
// cache counters of the attached object querier (when it reports one).
type Stats struct {
	Distance, Path, KNN, Range int64
	Insert, Delete, Move       int64
	// BatchedDistance/KNN/Range count the queries answered through the
	// index-level batched entry points (DistanceBatch/KNNBatch/RangeBatch)
	// by the planner; each is a subset of the matching kind counter above.
	BatchedDistance, BatchedKNN, BatchedRange int64
	// ClimbCacheHits/Misses/Bytes mirror the object querier's climb cache
	// (index.ClimbCacheReporter); zero when the querier reports none.
	ClimbCacheHits, ClimbCacheMisses uint64
	ClimbCacheBytes                  int64
}

// Total returns the total number of executed operations (reads and updates).
func (s Stats) Total() int64 { return s.Reads() + s.Updates() }

// Reads returns the number of executed read queries.
func (s Stats) Reads() int64 { return s.Distance + s.Path + s.KNN + s.Range }

// Updates returns the number of executed object updates.
func (s Stats) Updates() int64 { return s.Insert + s.Delete + s.Move }

// Stats returns a snapshot of the engine's query counters.
func (e *Engine) Stats() Stats {
	s := Stats{
		Distance:        e.counts[KindDistance].Load(),
		Path:            e.counts[KindPath].Load(),
		KNN:             e.counts[KindKNN].Load(),
		Range:           e.counts[KindRange].Load(),
		Insert:          e.counts[KindInsert].Load(),
		Delete:          e.counts[KindDelete].Load(),
		Move:            e.counts[KindMove].Load(),
		BatchedDistance: e.batched[KindDistance].Load(),
		BatchedKNN:      e.batched[KindKNN].Load(),
		BatchedRange:    e.batched[KindRange].Load(),
	}
	if e.cacheRep != nil {
		cc := e.cacheRep.ClimbCacheStats()
		s.ClimbCacheHits = cc.Hits
		s.ClimbCacheMisses = cc.Misses
		s.ClimbCacheBytes = cc.Bytes
	}
	return s
}
