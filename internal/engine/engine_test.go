package engine_test

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"viptree/internal/baseline/distaware"
	"viptree/internal/baseline/distmatrix"
	"viptree/internal/baseline/gtree"
	"viptree/internal/baseline/road"
	"viptree/internal/engine"
	"viptree/internal/index"
	"viptree/internal/iptree"
	"viptree/internal/model"
	"viptree/internal/venuegen"
)

func testVenue(t testing.TB) *model.Venue {
	t.Helper()
	v, err := venuegen.Building(venuegen.BuildingConfig{
		Name: "engine-test", Floors: 3, RoomsPerHallway: 12, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func mixedWorkload(v *model.Venue, n int, seed int64) []engine.Query {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]engine.Query, n)
	for i := range qs {
		switch i % 4 {
		case 0:
			qs[i] = engine.Query{Kind: engine.KindDistance, S: v.RandomLocation(rng), T: v.RandomLocation(rng)}
		case 1:
			qs[i] = engine.Query{Kind: engine.KindPath, S: v.RandomLocation(rng), T: v.RandomLocation(rng)}
		case 2:
			qs[i] = engine.Query{Kind: engine.KindKNN, S: v.RandomLocation(rng), K: 1 + rng.Intn(5)}
		default:
			qs[i] = engine.Query{Kind: engine.KindRange, S: v.RandomLocation(rng), Radius: 40 + 80*rng.Float64()}
		}
	}
	return qs
}

// engines builds one engine per index implementation, each with an attached
// object querier, exercising the uniform capability interface end to end.
func engines(t testing.TB, v *model.Venue, objects []model.Location) map[string]*engine.Engine {
	t.Helper()
	ip, err := iptree.BuildIPTree(v, iptree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	vip := iptree.NewVIPTree(iptree.MustBuildIPTree(v, iptree.Options{}))
	indexers := []index.ObjectIndexer{
		ip,
		vip,
		distmatrix.Build(v, true),
		distaware.New(v),
		gtree.Build(v, gtree.Options{}),
		road.Build(v, road.Options{}),
	}
	out := make(map[string]*engine.Engine, len(indexers))
	for _, ix := range indexers {
		out[ix.Name()] = engine.New(ix, engine.Options{
			Workers: 4,
			Objects: ix.NewObjectQuerier(objects),
		})
	}
	return out
}

// TestParallelBatchMatchesSequential is the concurrent-correctness test: for
// every index, executing a mixed batch over the worker pool must produce
// exactly the results of sequential execution.
func TestParallelBatchMatchesSequential(t *testing.T) {
	v := testVenue(t)
	rng := rand.New(rand.NewSource(3))
	objects := make([]model.Location, 40)
	for i := range objects {
		objects[i] = v.RandomLocation(rng)
	}
	queries := mixedWorkload(v, 200, 11)
	for name, eng := range engines(t, v, objects) {
		t.Run(name, func(t *testing.T) {
			sequential := eng.ExecuteBatchWorkers(queries, 1)
			parallel := eng.ExecuteBatch(queries)
			if len(sequential) != len(parallel) {
				t.Fatalf("result count mismatch: %d vs %d", len(sequential), len(parallel))
			}
			for i := range sequential {
				if !resultsEqual(sequential[i], parallel[i]) {
					t.Fatalf("query %d (%v): sequential %+v != parallel %+v",
						i, queries[i].Kind, sequential[i], parallel[i])
				}
			}
		})
	}
}

// TestConcurrentCallers hammers one engine from many goroutines at once; the
// race detector (go test -race) verifies the pooled scratch is safe.
func TestConcurrentCallers(t *testing.T) {
	v := testVenue(t)
	vip := iptree.MustBuildVIPTree(v, iptree.Options{})
	rng := rand.New(rand.NewSource(5))
	objects := make([]model.Location, 25)
	for i := range objects {
		objects[i] = v.RandomLocation(rng)
	}
	eng := engine.New(vip, engine.Options{Objects: vip.IndexObjects(objects)})
	queries := mixedWorkload(v, 64, 17)
	want := eng.ExecuteBatchWorkers(queries, 1)
	var wg sync.WaitGroup
	const callers = 8
	errs := make(chan string, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := eng.ExecuteBatch(queries)
			for i := range want {
				if !resultsEqual(want[i], got[i]) {
					errs <- "concurrent caller diverged from sequential results"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

func TestEngineStats(t *testing.T) {
	v := testVenue(t)
	vip := iptree.MustBuildVIPTree(v, iptree.Options{})
	rng := rand.New(rand.NewSource(9))
	objects := []model.Location{v.RandomLocation(rng), v.RandomLocation(rng)}
	eng := engine.New(vip, engine.Options{Objects: vip.IndexObjects(objects)})
	eng.ExecuteBatch(mixedWorkload(v, 40, 23))
	s := eng.Stats()
	if s.Distance != 10 || s.Path != 10 || s.KNN != 10 || s.Range != 10 {
		t.Errorf("unexpected per-kind counts: %+v", s)
	}
	if s.Total() != 40 {
		t.Errorf("Total() = %d, want 40", s.Total())
	}
}

func TestObjectQueriesWithoutObjectIndex(t *testing.T) {
	v := testVenue(t)
	vip := iptree.MustBuildVIPTree(v, iptree.Options{})
	eng := engine.New(vip, engine.Options{})
	rng := rand.New(rand.NewSource(2))
	res := eng.Execute(engine.Query{Kind: engine.KindKNN, S: v.RandomLocation(rng), K: 3})
	if res.Err != engine.ErrNoObjectIndex {
		t.Errorf("KNN without objects: err = %v, want ErrNoObjectIndex", res.Err)
	}
	res = eng.Execute(engine.Query{Kind: engine.KindRange, S: v.RandomLocation(rng), Radius: 10})
	if res.Err != engine.ErrNoObjectIndex {
		t.Errorf("Range without objects: err = %v, want ErrNoObjectIndex", res.Err)
	}
	res = eng.Execute(engine.Query{Kind: engine.Kind(250)})
	if res.Err != engine.ErrUnknownKind {
		t.Errorf("unknown kind: err = %v, want ErrUnknownKind", res.Err)
	}
}

func resultsEqual(a, b engine.Result) bool {
	if !floatEqual(a.Dist, b.Dist) || !reflect.DeepEqual(a.Doors, b.Doors) || a.Err != b.Err {
		return false
	}
	if len(a.Objects) != len(b.Objects) {
		return false
	}
	for i := range a.Objects {
		if a.Objects[i].ObjectID != b.Objects[i].ObjectID || !floatEqual(a.Objects[i].Dist, b.Objects[i].Dist) {
			return false
		}
	}
	return true
}

func floatEqual(a, b float64) bool {
	if math.IsInf(a, 1) || a == b {
		return true
	}
	return math.Abs(a-b) < 1e-9
}

// TestUpdateKinds drives the three object-update kinds through Execute and
// verifies their effect is visible to subsequent queries.
func TestUpdateKinds(t *testing.T) {
	v := testVenue(t)
	vip := iptree.MustBuildVIPTree(v, iptree.Options{})
	rng := rand.New(rand.NewSource(31))
	objects := make([]model.Location, 5)
	for i := range objects {
		objects[i] = v.RandomLocation(rng)
	}
	eng := engine.New(vip, engine.Options{Objects: vip.IndexObjects(objects)})
	if eng.Mutable() == nil {
		t.Fatal("tree object index not reported as mutable")
	}
	q := v.RandomLocation(rng)

	res := eng.Execute(engine.Query{Kind: engine.KindInsert, S: q})
	if res.Err != nil {
		t.Fatalf("insert: %v", res.Err)
	}
	id := res.ObjectID
	if knn, err := eng.KNN(q, 1); err != nil || len(knn) != 1 || knn[0].ObjectID != id {
		t.Fatalf("1-NN after insert = %v (%v), want object %d", knn, err, id)
	}
	res = eng.Execute(engine.Query{Kind: engine.KindMove, ObjectID: id, S: v.RandomLocation(rng)})
	if res.Err != nil || res.ObjectID != id {
		t.Fatalf("move: %+v", res)
	}
	res = eng.Execute(engine.Query{Kind: engine.KindDelete, ObjectID: id})
	if res.Err != nil {
		t.Fatalf("delete: %v", res.Err)
	}
	res = eng.Execute(engine.Query{Kind: engine.KindDelete, ObjectID: id})
	if res.Err == nil {
		t.Fatal("double delete succeeded")
	}
	s := eng.Stats()
	if s.Insert != 1 || s.Move != 1 || s.Delete != 2 {
		t.Errorf("update stats = %+v", s)
	}
	if s.Updates() != 4 || s.Reads() != 1 || s.Total() != 5 {
		t.Errorf("aggregate stats = %+v (updates %d, reads %d)", s, s.Updates(), s.Reads())
	}
	for _, k := range []engine.Kind{engine.KindInsert, engine.KindDelete, engine.KindMove} {
		if !k.IsUpdate() {
			t.Errorf("%v.IsUpdate() = false", k)
		}
	}
	if engine.KindKNN.IsUpdate() {
		t.Error("KindKNN.IsUpdate() = true")
	}
}

// TestUpdatesAgainstImmutableQuerier verifies update kinds fail cleanly when
// the attached object querier (here: a baseline's) cannot be mutated, and
// when no querier is attached at all.
func TestUpdatesAgainstImmutableQuerier(t *testing.T) {
	v := testVenue(t)
	rng := rand.New(rand.NewSource(37))
	objects := []model.Location{v.RandomLocation(rng)}
	gt := gtree.Build(v, gtree.Options{})
	eng := engine.New(gt, engine.Options{Objects: gt.NewObjectQuerier(objects)})
	if eng.Mutable() != nil {
		t.Fatal("baseline object querier reported as mutable")
	}
	res := eng.Execute(engine.Query{Kind: engine.KindInsert, S: v.RandomLocation(rng)})
	if res.Err != engine.ErrImmutableObjects {
		t.Errorf("insert on baseline: err = %v, want ErrImmutableObjects", res.Err)
	}
	if err := eng.Move(0, v.RandomLocation(rng)); err != engine.ErrImmutableObjects {
		t.Errorf("move on baseline: err = %v, want ErrImmutableObjects", err)
	}
	none := engine.New(gt, engine.Options{})
	if err := none.Delete(0); err != engine.ErrNoObjectIndex {
		t.Errorf("delete without querier: err = %v, want ErrNoObjectIndex", err)
	}
}

// TestMixedBatchUnderRace executes batches mixing reads with object updates
// over the worker pool, from several goroutines at once — the HTAP-style
// workload the mutable object layer exists for. Run under -race in CI, it
// proves the engine's update path is data-race free; here it additionally
// checks every operation succeeded and the object count balances.
func TestMixedBatchUnderRace(t *testing.T) {
	v := testVenue(t)
	vip := iptree.MustBuildVIPTree(v, iptree.Options{})
	rng := rand.New(rand.NewSource(41))
	objects := make([]model.Location, 30)
	for i := range objects {
		objects[i] = v.RandomLocation(rng)
	}
	oi := vip.IndexObjects(objects)
	eng := engine.New(vip, engine.Options{Workers: 4, Objects: oi})

	const callers = 4
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + c)))
			qs := make([]engine.Query, 120)
			for i := range qs {
				switch {
				case i%10 == 0:
					// Each caller moves only its own object, so every
					// update must succeed.
					qs[i] = engine.Query{Kind: engine.KindMove, ObjectID: c, S: v.RandomLocation(rng)}
				case i%3 == 0:
					qs[i] = engine.Query{Kind: engine.KindKNN, S: v.RandomLocation(rng), K: 5}
				case i%3 == 1:
					qs[i] = engine.Query{Kind: engine.KindRange, S: v.RandomLocation(rng), Radius: 80}
				default:
					qs[i] = engine.Query{Kind: engine.KindDistance, S: v.RandomLocation(rng), T: v.RandomLocation(rng)}
				}
			}
			for _, r := range eng.ExecuteBatch(qs) {
				if r.Err != nil {
					errs <- r.Err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("mixed batch error: %v", err)
	}
	if n := oi.NumObjects(); n != len(objects) {
		t.Errorf("NumObjects() after move-only workload = %d, want %d", n, len(objects))
	}
	if got := eng.Stats().Updates(); got != callers*12 {
		t.Errorf("Stats().Updates() = %d, want %d", got, callers*12)
	}
}

// TestLatencySampling exercises the latency ring: quantiles are nil without
// sampling, monotone with it, reset drops the warm-up samples, and recording
// under the parallel batch path is race-free (the -race CI run covers this
// test too).
func TestLatencySampling(t *testing.T) {
	v := testVenue(t)
	vip := iptree.MustBuildVIPTree(v, iptree.Options{})

	off := engine.New(vip, engine.Options{})
	off.Execute(mixedWorkload(v, 1, 3)[0])
	if qs := off.LatencyQuantiles(0.5); qs != nil {
		t.Fatalf("quantiles without sampling = %v, want nil", qs)
	}

	eng := engine.New(vip, engine.Options{Workers: 4, LatencySampleSize: 256})
	if qs := eng.LatencyQuantiles(0.5); qs != nil {
		t.Fatalf("quantiles before any operation = %v, want nil", qs)
	}
	eng.ExecuteBatch(mixedWorkload(v, 64, 5))
	eng.ResetLatencies()
	if qs := eng.LatencyQuantiles(0.5); qs != nil {
		t.Fatalf("quantiles after reset = %v, want nil", qs)
	}
	eng.ExecuteBatch(mixedWorkload(v, 500, 6)) // more samples than ring slots
	qs := eng.LatencyQuantiles(0.50, 0.95, 0.99)
	if len(qs) != 3 {
		t.Fatalf("got %d quantiles, want 3", len(qs))
	}
	if qs[0] <= 0 || qs[0] > qs[1] || qs[1] > qs[2] {
		t.Fatalf("quantiles not positive and monotone: %v", qs)
	}
}
