package engine

import (
	"sort"
	"sync/atomic"
	"time"
)

// latencyRing is a fixed-size, allocation-free sample ring of per-operation
// latencies. Writers claim a slot with one atomic increment and store the
// duration with one atomic write, so the hot loop neither locks nor
// allocates; once the ring is full the oldest samples are overwritten. Reads
// (quantile computation) copy the ring, which is cheap and off the hot path.
type latencyRing struct {
	slots []atomic.Int64 // nanoseconds; len is a power of two
	mask  uint64
	next  atomic.Uint64 // total samples ever recorded
}

// newLatencyRing returns a ring of at least size slots (rounded up to a
// power of two so slot claiming is a mask instead of a modulo).
func newLatencyRing(size int) *latencyRing {
	n := 1
	for n < size {
		n <<= 1
	}
	return &latencyRing{slots: make([]atomic.Int64, n), mask: uint64(n - 1)}
}

// record stores one sample.
func (r *latencyRing) record(d time.Duration) {
	i := r.next.Add(1) - 1
	r.slots[i&r.mask].Store(int64(d))
}

// snapshot copies the recorded samples into buf (grown as needed) and
// returns them, unordered.
func (r *latencyRing) snapshot(buf []time.Duration) []time.Duration {
	n := r.next.Load()
	if n > uint64(len(r.slots)) {
		n = uint64(len(r.slots))
	}
	buf = buf[:0]
	for i := uint64(0); i < n; i++ {
		buf = append(buf, time.Duration(r.slots[i].Load()))
	}
	return buf
}

// reset forgets all recorded samples (e.g. after a warm-up batch).
func (r *latencyRing) reset() { r.next.Store(0) }

// ResetLatencies discards all recorded latency samples, so measurement can
// start after a warm-up phase. It is a no-op when sampling is disabled.
func (e *Engine) ResetLatencies() {
	if e.lat != nil {
		e.lat.reset()
	}
}

// LatencyQuantiles returns the nearest-rank latency quantiles for the given
// fractions in [0, 1] (e.g. 0.5, 0.95, 0.99) over the engine's sample ring,
// aligned with qs. It returns nil when sampling is disabled or no samples
// have been recorded. Samples racing with in-flight operations may be
// skewed by at most one overwritten slot each — fine for the percentile
// reporting this exists for.
func (e *Engine) LatencyQuantiles(qs ...float64) []time.Duration {
	if e.lat == nil {
		return nil
	}
	samples := e.lat.snapshot(nil)
	if len(samples) == 0 {
		return nil
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	out := make([]time.Duration, len(qs))
	for i, q := range qs {
		rank := int(q*float64(len(samples))+0.5) - 1
		if rank < 0 {
			rank = 0
		}
		if rank >= len(samples) {
			rank = len(samples) - 1
		}
		out[i] = samples[rank]
	}
	return out
}
