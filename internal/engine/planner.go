package engine

import (
	"sync"
	"sync/atomic"
	"time"

	"viptree/internal/index"
)

// This file implements the batched query planner. When the engine's index
// supports batched queries (index.DistanceBatcher for distance queries —
// the IP-Tree and VIP-Tree, which share leaf-to-LCA climbs across a batch —
// and index.KNNBatcher/RangeBatcher for object queries, which share the
// Algorithm-2 source climbs and the climb cache), ExecuteBatch routes the
// batchable queries through the index-level batch calls instead of per-query
// calls, and fans only the remaining reads over the worker pool. Results are
// positionally identical to the unplanned path: the batch calls are
// bit-identical to their per-query counterparts, and the other queries still
// run through Execute.
//
// Batches containing object updates are split into maximal read runs: the
// reads between two updates still plan, the updates execute with the legacy
// interleaving (pooled within their own run). A read observes the object
// state after every update of an earlier run and before every update of a
// later one — at least as strong as the unplanned path, which interleaves
// the whole batch arbitrarily.

// planBatch attempts the planned execution of a batch, writing results into
// out. It returns false — having written nothing — when the batch does not
// qualify: no batch-capable index, an unknown kind in the batch, or no run
// with at least two batchable queries of one kind to amortise. The execution
// context is honoured at segment granularity: a canceled context marks the
// remaining segments' queries with the cancellation error, and in safe mode
// a panicking segment yields *PanicError results for exactly its queries.
func (e *Engine) planBatch(ec *execCtx, queries []Query, out []Result, workers int) bool {
	if e.batcher == nil && e.knnBatcher == nil && e.rangeBatcher == nil {
		return false
	}
	// One qualification pass: count batchable queries per read run, bailing
	// on unknown kinds (the unplanned path reports ErrUnknownKind per
	// query). A run qualifies when one kind has >= 2 queries to amortise
	// and the index grants the capability.
	plan := false
	nDist, nKNN, nRange := 0, 0, 0
	flush := func() {
		if (e.batcher != nil && nDist >= 2) ||
			(e.knnBatcher != nil && nKNN >= 2) ||
			(e.rangeBatcher != nil && nRange >= 2) {
			plan = true
		}
		nDist, nKNN, nRange = 0, 0, 0
	}
	for i := range queries {
		switch queries[i].Kind {
		case KindDistance:
			nDist++
		case KindKNN:
			nKNN++
		case KindRange:
			nRange++
		case KindPath:
		case KindInsert, KindDelete, KindMove:
			flush()
		default:
			return false
		}
	}
	flush()
	if !plan {
		return false
	}
	// Execute the runs in order: planned read runs, pooled update runs.
	lo := 0
	for i := 0; i <= len(queries); i++ {
		if i < len(queries) && queries[i].Kind.IsUpdate() == queries[lo].Kind.IsUpdate() {
			continue
		}
		if queries[lo].Kind.IsUpdate() {
			runPooled(i-lo, workers, func(k int) {
				out[lo+k] = e.executeOne(ec, queries[lo+k])
			})
		} else {
			e.planReadRun(ec, queries[lo:i], out[lo:i], workers)
		}
		lo = i
	}
	return true
}

// planReadRun executes one all-read run: the batchable segments (>= 2
// queries of a kind with the matching capability) go through the index-level
// batch calls, everything else through the pooled per-query path. With
// latency sampling enabled, each batched segment records the amortised
// per-query share of its duration — kNN and range exactly like distance.
func (e *Engine) planReadRun(ec *execCtx, queries []Query, out []Result, workers int) {
	nDist, nKNN, nRange := 0, 0, 0
	for i := range queries {
		switch queries[i].Kind {
		case KindDistance:
			nDist++
		case KindKNN:
			nKNN++
		case KindRange:
			nRange++
		}
	}
	batchDist := e.batcher != nil && nDist >= 2
	batchKNN := e.knnBatcher != nil && nKNN >= 2
	batchRange := e.rangeBatcher != nil && nRange >= 2
	var (
		pairs    []index.LocationPair
		distPos  []int32
		knns     []index.KNNQuery
		knnPos   []int32
		ranges   []index.RangeQuery
		rangePos []int32
		rest     []int32
	)
	for i := range queries {
		q := &queries[i]
		switch {
		case q.Kind == KindDistance && batchDist:
			pairs = append(pairs, index.LocationPair{S: q.S, T: q.T})
			distPos = append(distPos, int32(i))
		case q.Kind == KindKNN && batchKNN:
			knns = append(knns, index.KNNQuery{Q: q.S, K: q.K})
			knnPos = append(knnPos, int32(i))
		case q.Kind == KindRange && batchRange:
			ranges = append(ranges, index.RangeQuery{Q: q.S, R: q.Radius})
			rangePos = append(rangePos, int32(i))
		default:
			rest = append(rest, int32(i))
		}
	}
	if batchDist {
		start := e.latStart()
		if ec.canceled() {
			markAll(out, distPos, ec.cancelErr())
		} else {
			dists := make([]float64, len(pairs))
			if perr := ec.guard(func() { e.batcher.DistanceBatch(pairs, dists, workers) }); perr != nil {
				markAll(out, distPos, perr)
			} else {
				for k, i := range distPos {
					out[i] = Result{Dist: dists[k]}
				}
				e.counts[KindDistance].Add(int64(len(pairs)))
				e.batched[KindDistance].Add(int64(len(pairs)))
				e.recordAmortised(start, len(pairs))
			}
		}
	}
	if batchKNN {
		start := e.latStart()
		if ec.canceled() {
			markAll(out, knnPos, ec.cancelErr())
		} else {
			objs := make([][]index.ObjectResult, len(knns))
			if perr := ec.guard(func() { e.knnBatcher.KNNBatch(knns, objs, workers) }); perr != nil {
				markAll(out, knnPos, perr)
			} else {
				for k, i := range knnPos {
					out[i] = Result{Objects: objs[k]}
				}
				e.counts[KindKNN].Add(int64(len(knns)))
				e.batched[KindKNN].Add(int64(len(knns)))
				e.recordAmortised(start, len(knns))
			}
		}
	}
	if batchRange {
		start := e.latStart()
		if ec.canceled() {
			markAll(out, rangePos, ec.cancelErr())
		} else {
			objs := make([][]index.ObjectResult, len(ranges))
			if perr := ec.guard(func() { e.rangeBatcher.RangeBatch(ranges, objs, workers) }); perr != nil {
				markAll(out, rangePos, perr)
			} else {
				for k, i := range rangePos {
					out[i] = Result{Objects: objs[k]}
				}
				e.counts[KindRange].Add(int64(len(ranges)))
				e.batched[KindRange].Add(int64(len(ranges)))
				e.recordAmortised(start, len(ranges))
			}
		}
	}
	runPooled(len(rest), workers, func(k int) {
		i := rest[k]
		out[i] = e.executeOne(ec, queries[i])
	})
}

// markAll writes err into every result addressed by pos — the per-segment
// outcome of a canceled or panicked batched index call. The per-kind
// counters are deliberately not advanced: they count executed queries.
func markAll(out []Result, pos []int32, err error) {
	for _, i := range pos {
		out[i] = Result{Err: err}
	}
}

// latStart returns the segment start time when latency sampling is on.
func (e *Engine) latStart() time.Time {
	if e.lat == nil {
		return time.Time{}
	}
	return time.Now()
}

// recordAmortised records n latency samples of the amortised per-query share
// of the batched segment that started at start. The batch shares work across
// queries, so the amortised share — not the full segment duration — is the
// per-query cost the ring should reflect.
func (e *Engine) recordAmortised(start time.Time, n int) {
	if e.lat == nil || n == 0 {
		return
	}
	per := time.Since(start) / time.Duration(n)
	for i := 0; i < n; i++ {
		e.lat.record(per)
	}
}

// runPooled executes fn(i) for every i in [0, n) over a pool of the given
// width. The calling goroutine participates as one worker, so a pool of
// width w spawns w-1 goroutines — and a width of one (or a single item)
// runs entirely on the caller with no goroutines at all. Items are handed
// out through an atomic cursor; fn must write only item-owned state.
//
// A panic in fn is captured (first one wins), the pool drains, and the
// panic value is re-raised on the calling goroutine — so a recover around
// runPooled observes worker panics exactly like caller panics. Note fn is
// usually executeOne, which already recovers per query in safe mode; the
// re-raise matters for the unguarded ExecuteBatch path and for panics in
// the pool plumbing itself.
func runPooled(n, workers int, fn func(i int)) {
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		panicked atomic.Bool
		panicVal any
	)
	work := func() {
		defer func() {
			if v := recover(); v != nil && panicked.CompareAndSwap(false, true) {
				panicVal = v
			}
		}()
		for {
			i := int(next.Add(1)) - 1
			if i >= n || panicked.Load() {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 0; w < workers-1; w++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
	if panicked.Load() {
		panic(panicVal)
	}
}
