package engine

import (
	"sync"
	"sync/atomic"
	"time"

	"viptree/internal/index"
)

// This file implements the batched query planner. When the engine's index
// supports batched distance queries (index.DistanceBatcher — the IP-Tree and
// VIP-Tree, which share leaf-to-LCA climbs across a batch), ExecuteBatch
// routes the distance queries of an all-read batch through one DistanceBatch
// call instead of per-query Distance calls, and fans only the remaining
// reads over the worker pool. Results are positionally identical to the
// unplanned path: DistanceBatch is bit-identical to per-pair Distance, and
// the other queries still run through Execute. Batches containing object
// updates fall back to the unplanned path — updates may observe or modify
// state mid-batch, and the legacy interleaving is the documented behaviour.

// planBatch attempts the planned execution of a batch, writing results into
// out. It returns false — having written nothing — when the batch does not
// qualify: no batch-capable index, an update or unknown kind in the batch,
// or fewer than two distance queries to amortise.
func (e *Engine) planBatch(queries []Query, out []Result, workers int) bool {
	if e.batcher == nil {
		return false
	}
	nDist := 0
	for i := range queries {
		switch queries[i].Kind {
		case KindDistance:
			nDist++
		case KindPath, KindKNN, KindRange:
		default:
			return false
		}
	}
	if nDist < 2 {
		return false
	}
	var start time.Time
	if e.lat != nil {
		start = time.Now()
	}
	pairs := make([]index.LocationPair, 0, nDist)
	pos := make([]int32, 0, nDist)
	rest := make([]int32, 0, len(queries)-nDist)
	for i := range queries {
		if queries[i].Kind == KindDistance {
			pairs = append(pairs, index.LocationPair{S: queries[i].S, T: queries[i].T})
			pos = append(pos, int32(i))
		} else {
			rest = append(rest, int32(i))
		}
	}
	dists := make([]float64, len(pairs))
	e.batcher.DistanceBatch(pairs, dists, workers)
	for k, i := range pos {
		out[i] = Result{Dist: dists[k]}
	}
	e.counts[KindDistance].Add(int64(len(pairs)))
	if e.lat != nil {
		// The batch shares work across queries, so per-query latency is the
		// amortised share of the batched segment.
		per := time.Since(start) / time.Duration(len(pairs))
		for range pairs {
			e.lat.record(per)
		}
	}
	runPooled(len(rest), workers, func(k int) {
		i := rest[k]
		out[i] = e.Execute(queries[i])
	})
	return true
}

// runPooled executes fn(i) for every i in [0, n) over a pool of the given
// width. The calling goroutine participates as one worker, so a pool of
// width w spawns w-1 goroutines — and a width of one (or a single item)
// runs entirely on the caller with no goroutines at all. Items are handed
// out through an atomic cursor; fn must write only item-owned state.
func runPooled(n, workers int, fn func(i int)) {
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 0; w < workers-1; w++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
}
