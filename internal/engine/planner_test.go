package engine_test

import (
	"math/rand"
	"sync"
	"testing"

	"viptree/internal/engine"
	"viptree/internal/iptree"
	"viptree/internal/model"
	"viptree/internal/venuegen"
)

// readWorkload draws an all-read batch the planner qualifies for: distance
// queries dominate (many sharing a handful of clustered sources, so batch
// groups actually form), with Path/kNN/Range queries mixed in as the
// "rest" the planner fans over the pool.
func readWorkload(v *model.Venue, n int, seed int64) []engine.Query {
	rng := rand.New(rand.NewSource(seed))
	clusters := make([]model.Location, 3)
	for i := range clusters {
		clusters[i] = v.RandomLocation(rng)
	}
	qs := make([]engine.Query, n)
	for i := range qs {
		switch i % 6 {
		case 0, 1:
			qs[i] = engine.Query{Kind: engine.KindDistance, S: clusters[rng.Intn(len(clusters))], T: v.RandomLocation(rng)}
		case 2:
			qs[i] = engine.Query{Kind: engine.KindDistance, S: v.RandomLocation(rng), T: v.RandomLocation(rng)}
		case 3:
			qs[i] = engine.Query{Kind: engine.KindPath, S: v.RandomLocation(rng), T: v.RandomLocation(rng)}
		case 4:
			qs[i] = engine.Query{Kind: engine.KindKNN, S: v.RandomLocation(rng), K: 1 + rng.Intn(5)}
		default:
			qs[i] = engine.Query{Kind: engine.KindRange, S: v.RandomLocation(rng), Radius: 40 + 80*rng.Float64()}
		}
	}
	return qs
}

// plannerEngines returns the batch-capable engines (IP-Tree and VIP-Tree)
// with the planner enabled, each with an attached object querier.
func plannerEngines(t testing.TB, v *model.Venue, objects []model.Location) map[string]*engine.Engine {
	t.Helper()
	ip := iptree.MustBuildIPTree(v, iptree.Options{})
	vip := iptree.MustBuildVIPTree(v, iptree.Options{})
	return map[string]*engine.Engine{
		ip.Name():  engine.New(ip, engine.Options{Workers: 4, Objects: ip.NewObjectQuerier(objects)}),
		vip.Name(): engine.New(vip, engine.Options{Workers: 4, Objects: vip.NewObjectQuerier(objects)}),
	}
}

// TestPlannedBatchMatchesExecute is the planner's central property: on the
// batch-capable indexes, ExecuteBatch results are element-wise identical to
// per-query Execute — for every worker count, and identical again to an
// engine built with DisablePlanner. Runs on both a single building and a
// multi-building campus (deep LCAs, many distinct leaves).
func TestPlannedBatchMatchesExecute(t *testing.T) {
	venues := map[string]*model.Venue{
		"building": testVenue(t),
		"campus":   venuegen.MustCampus(venuegen.CampusConfig{Name: "planner-campus", Buildings: 3, Seed: 19}),
	}
	for vname, v := range venues {
		rng := rand.New(rand.NewSource(5))
		objects := make([]model.Location, 30)
		for i := range objects {
			objects[i] = v.RandomLocation(rng)
		}
		queries := readWorkload(v, 180, 23)
		for name, eng := range plannerEngines(t, v, objects) {
			t.Run(vname+"/"+name, func(t *testing.T) {
				want := make([]engine.Result, len(queries))
				for i := range queries {
					want[i] = eng.Execute(queries[i])
				}
				for _, workers := range []int{1, 3, 16} {
					got := eng.ExecuteBatchWorkers(queries, workers)
					for i := range want {
						if !resultsEqual(want[i], got[i]) {
							t.Fatalf("workers=%d query %d (%v): planned %+v != Execute %+v",
								workers, i, queries[i].Kind, got[i], want[i])
						}
					}
				}
			})
		}
	}
}

// TestPlannerDisabledMatches pins the escape hatch: an engine built with
// DisablePlanner produces results identical to the planned engine over the
// same index.
func TestPlannerDisabledMatches(t *testing.T) {
	v := testVenue(t)
	vip := iptree.MustBuildVIPTree(v, iptree.Options{})
	on := engine.New(vip, engine.Options{Workers: 4})
	off := engine.New(vip, engine.Options{Workers: 4, DisablePlanner: true})
	queries := readWorkload(v, 150, 29)
	a := on.ExecuteBatch(queries)
	b := off.ExecuteBatch(queries)
	for i := range a {
		if !resultsEqual(a[i], b[i]) {
			t.Fatalf("query %d (%v): planner %+v != DisablePlanner %+v", i, queries[i].Kind, a[i], b[i])
		}
	}
}

// TestPlannerFallbackOnUpdates checks that a batch containing an object
// update stays safe AND planned: the update splits the batch into two read
// runs that each still batch their distance queries, the distance results
// match per-query Execute (an insert cannot affect distances), the update
// itself takes effect, and the operation counters balance — including the
// batched-query counters, which must cover every distance query in both runs.
func TestPlannerFallbackOnUpdates(t *testing.T) {
	v := testVenue(t)
	vip := iptree.MustBuildVIPTree(v, iptree.Options{})
	rng := rand.New(rand.NewSource(43))
	objects := make([]model.Location, 10)
	for i := range objects {
		objects[i] = v.RandomLocation(rng)
	}
	oi := vip.IndexObjects(objects)
	eng := engine.New(vip, engine.Options{Workers: 4, Objects: oi})

	queries := make([]engine.Query, 41)
	for i := range queries {
		queries[i] = engine.Query{Kind: engine.KindDistance, S: v.RandomLocation(rng), T: v.RandomLocation(rng)}
	}
	queries[20] = engine.Query{Kind: engine.KindInsert, S: v.RandomLocation(rng)}

	want := make([]float64, len(queries))
	for i, q := range queries {
		if q.Kind == engine.KindDistance {
			want[i] = eng.Index().Distance(q.S, q.T)
		}
	}
	got := eng.ExecuteBatch(queries)
	for i, q := range queries {
		if q.Kind != engine.KindDistance {
			continue
		}
		if got[i].Dist != want[i] {
			t.Fatalf("query %d: mixed batch Dist = %v, want %v", i, got[i].Dist, want[i])
		}
	}
	if got[20].Err != nil || got[20].ObjectID < 0 {
		t.Fatalf("insert in mixed batch: %+v", got[20])
	}
	if n := oi.NumObjects(); n != len(objects)+1 {
		t.Fatalf("NumObjects() after insert = %d, want %d", n, len(objects)+1)
	}
	st := eng.Stats()
	if st.Distance != int64(len(queries)-1) || st.Insert != 1 {
		t.Fatalf("Stats() = %+v, want %d distance and 1 insert", st, len(queries)-1)
	}
	// Both read runs around the insert plan: all 40 distance queries batch.
	if st.BatchedDistance != int64(len(queries)-1) {
		t.Fatalf("Stats().BatchedDistance = %d, want %d (read runs around the update must still plan)",
			st.BatchedDistance, len(queries)-1)
	}
}

// TestPlannerReadRunSplitting is the regression test for the read-run
// splitter: a batch mixing distance, kNN and range queries around a Move
// must produce exactly the results of sequential per-query execution (reads
// before the update see the old object state, reads after see the new one),
// and the batched counters must account for every read in both runs.
func TestPlannerReadRunSplitting(t *testing.T) {
	v := testVenue(t)
	vip := iptree.MustBuildVIPTree(v, iptree.Options{})
	rng := rand.New(rand.NewSource(83))
	objects := make([]model.Location, 12)
	for i := range objects {
		objects[i] = v.RandomLocation(rng)
	}
	eng := engine.New(vip, engine.Options{Workers: 4, Objects: vip.IndexObjects(objects)})
	// Twin engine over the same tree and object set, executed strictly
	// per-query: the reference for run-order semantics.
	twin := engine.New(vip, engine.Options{Workers: 1, Objects: vip.IndexObjects(objects)})

	var queries []engine.Query
	half := func(seed int64) {
		hr := rand.New(rand.NewSource(seed))
		for i := 0; i < 6; i++ {
			queries = append(queries,
				engine.Query{Kind: engine.KindDistance, S: v.RandomLocation(hr), T: v.RandomLocation(hr)},
				engine.Query{Kind: engine.KindKNN, S: v.RandomLocation(hr), K: 3},
				engine.Query{Kind: engine.KindRange, S: v.RandomLocation(hr), Radius: 120},
			)
		}
	}
	half(7)
	// The move relocates object 0 far enough to change nearby kNN answers.
	queries = append(queries, engine.Query{Kind: engine.KindMove, ObjectID: 0, S: v.RandomLocation(rng)})
	half(11)

	want := make([]engine.Result, len(queries))
	for i, q := range queries {
		want[i] = twin.Execute(q)
	}
	got := eng.ExecuteBatch(queries)
	for i := range want {
		if !resultsEqual(got[i], want[i]) {
			t.Fatalf("query %d (%v): planned %+v != sequential %+v", i, queries[i].Kind, got[i], want[i])
		}
	}

	st := eng.Stats()
	if st.BatchedDistance != 12 || st.BatchedKNN != 12 || st.BatchedRange != 12 {
		t.Fatalf("batched counters = %d/%d/%d (distance/kNN/range), want 12 each: %+v",
			st.BatchedDistance, st.BatchedKNN, st.BatchedRange, st)
	}
	if st.Move != 1 {
		t.Fatalf("Stats().Move = %d, want 1", st.Move)
	}
	// The batched kNN/range runs exercised the climb cache.
	if st.ClimbCacheHits+st.ClimbCacheMisses == 0 {
		t.Fatalf("climb cache untouched by batched object queries: %+v", st)
	}
}

// TestPlannerSmallAndUnknownBatches pins the remaining fallback conditions:
// a batch with fewer than two distance queries runs unplanned (but still
// correctly), and an unknown kind surfaces ErrUnknownKind instead of
// derailing the batch.
func TestPlannerSmallAndUnknownBatches(t *testing.T) {
	v := testVenue(t)
	vip := iptree.MustBuildVIPTree(v, iptree.Options{})
	eng := engine.New(vip, engine.Options{Workers: 4})
	rng := rand.New(rand.NewSource(47))

	one := []engine.Query{{Kind: engine.KindDistance, S: v.RandomLocation(rng), T: v.RandomLocation(rng)}}
	if got := eng.ExecuteBatch(one); got[0].Dist != eng.Distance(one[0].S, one[0].T) {
		t.Fatalf("single-distance batch Dist = %v", got[0].Dist)
	}

	bad := append(readWorkload(v, 10, 3), engine.Query{Kind: engine.Kind(99)})
	got := eng.ExecuteBatch(bad)
	if got[len(got)-1].Err == nil {
		t.Fatal("unknown kind in batch: Err = nil, want error")
	}
	for i := range bad[:len(bad)-1] {
		if bad[i].Kind == engine.KindDistance && got[i].Dist != eng.Distance(bad[i].S, bad[i].T) {
			t.Fatalf("query %d alongside unknown kind: Dist = %v", i, got[i].Dist)
		}
	}
}

// TestPlannerStatsAndLatency verifies the planned path keeps the engine's
// observability intact: every batched distance query is counted, and
// latency sampling records an amortised per-query share.
func TestPlannerStatsAndLatency(t *testing.T) {
	v := testVenue(t)
	vip := iptree.MustBuildVIPTree(v, iptree.Options{})
	rng := rand.New(rand.NewSource(71))
	objects := make([]model.Location, 15)
	for i := range objects {
		objects[i] = v.RandomLocation(rng)
	}
	eng := engine.New(vip, engine.Options{
		Workers: 4, LatencySampleSize: 256, Objects: vip.IndexObjects(objects),
	})
	queries := readWorkload(v, 120, 31)
	nDist := 0
	for _, q := range queries {
		if q.Kind == engine.KindDistance {
			nDist++
		}
	}
	eng.ExecuteBatch(queries)
	st := eng.Stats()
	if st.Distance != int64(nDist) {
		t.Fatalf("Stats().Distance = %d, want %d", st.Distance, nDist)
	}
	if st.Reads() != int64(len(queries)) {
		t.Fatalf("Stats().Reads() = %d, want %d", st.Reads(), len(queries))
	}
	qs := eng.LatencyQuantiles(0.5, 0.99)
	if qs == nil {
		t.Fatal("LatencyQuantiles after planned batch = nil, want samples")
	}
	if qs[0] > qs[1] {
		t.Fatalf("quantiles not monotone: %v", qs)
	}
}

// TestExecuteBatchWorkersEdgeCases is the regression test for the batch
// entry point itself: empty batches short-circuit, worker counts wider than
// the batch are capped, and non-positive counts fall back to the engine
// default — all returning correct results.
func TestExecuteBatchWorkersEdgeCases(t *testing.T) {
	v := testVenue(t)
	vip := iptree.MustBuildVIPTree(v, iptree.Options{})
	eng := engine.New(vip, engine.Options{Workers: 4})

	if got := eng.ExecuteBatch(nil); got == nil || len(got) != 0 {
		t.Fatalf("ExecuteBatch(nil) = %v, want empty non-nil", got)
	}
	if got := eng.ExecuteBatchWorkers([]engine.Query{}, 100); got == nil || len(got) != 0 {
		t.Fatalf("ExecuteBatchWorkers(empty, 100) = %v, want empty non-nil", got)
	}

	queries := readWorkload(v, 3, 59)
	want := make([]engine.Result, len(queries))
	for i := range queries {
		want[i] = eng.Execute(queries[i])
	}
	for _, workers := range []int{-5, 0, 1, 2, 100} {
		got := eng.ExecuteBatchWorkers(queries, workers)
		if len(got) != len(queries) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(queries))
		}
		for i := range want {
			if !resultsEqual(want[i], got[i]) {
				t.Fatalf("workers=%d query %d: %+v != %+v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestPlannerWithConcurrentMovers races planned all-read batches against
// continuous object movement through the same engine. Distance results are
// object-independent and must stay exact; kNN/range results vary with the
// moving objects but must never error. Run with -race in CI.
func TestPlannerWithConcurrentMovers(t *testing.T) {
	v := testVenue(t)
	vip := iptree.MustBuildVIPTree(v, iptree.Options{})
	rng := rand.New(rand.NewSource(61))
	objects := make([]model.Location, 20)
	for i := range objects {
		objects[i] = v.RandomLocation(rng)
	}
	eng := engine.New(vip, engine.Options{Workers: 4, Objects: vip.IndexObjects(objects)})

	queries := readWorkload(v, 160, 67)
	wantDist := make([]float64, len(queries))
	for i, q := range queries {
		if q.Kind == engine.KindDistance {
			wantDist[i] = eng.Index().Distance(q.S, q.T)
		}
	}

	stop := make(chan struct{})
	var movers sync.WaitGroup
	for m := 0; m < 2; m++ {
		movers.Add(1)
		go func(m int) {
			defer movers.Done()
			rng := rand.New(rand.NewSource(int64(70 + m)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Each mover owns half the IDs, so every move succeeds.
				id := 2*rng.Intn(len(objects)/2) + m
				if err := eng.Move(id, v.RandomLocation(rng)); err != nil {
					t.Errorf("mover %d: %v", m, err)
					return
				}
			}
		}(m)
	}

	var readers sync.WaitGroup
	for c := 0; c < 4; c++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for round := 0; round < 20; round++ {
				for i, r := range eng.ExecuteBatch(queries) {
					if r.Err != nil {
						t.Errorf("read under movers: %v", r.Err)
						return
					}
					if queries[i].Kind == engine.KindDistance && r.Dist != wantDist[i] {
						t.Errorf("query %d: Dist = %v under movers, want %v", i, r.Dist, wantDist[i])
						return
					}
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	movers.Wait()
}
