package engine

import (
	"fmt"
	"time"

	"viptree/internal/index"
	"viptree/internal/updatelog"
	"viptree/internal/wal"
)

// WALRecovery reports what Open reconstructed from the write-ahead log.
type WALRecovery struct {
	// SnapshotSeq is the update-log sequence the restored index already
	// covered (the snapshot stamp; 0 for a fresh or unstamped index).
	SnapshotSeq uint64
	// Head is the last sequence number in the WAL after recovery.
	Head uint64
	// Segments is the number of on-disk segment files scanned.
	Segments int
	// Scanned is the number of intact records found in the log.
	Scanned int
	// Replayed is the number of records applied on top of the snapshot
	// (those with seq in (SnapshotSeq, Head]).
	Replayed int
	// TornTail reports that the scan truncated a torn tail — the expected
	// signature of a crash mid-append. DroppedBytes is how much was cut.
	TornTail     bool
	DroppedBytes int64
	// ScanElapsed and ReplayElapsed split the recovery wall-clock time
	// into the segment scan and the index replay.
	ScanElapsed   time.Duration
	ReplayElapsed time.Duration
}

// Open builds an engine whose object updates are durably logged to a
// write-ahead log under opts.WALDir, recovering state left by a previous
// run first: it scans the WAL, replays every record past the restored
// index's sequence stamp onto the index, then attaches the WAL to the
// index's update log so all further updates are persisted per the
// configured sync policy. The returned WALRecovery reports what was
// recovered and how long it took.
//
// The object querier must route its mutations through an update log
// (index.ChangeLogger) — that feed is what the WAL persists. Mid-log
// corruption, a gap between the snapshot stamp and the WAL's first
// retained record, or a replay mismatch fail the open rather than serve
// silently incomplete state.
//
// While the WAL is degraded (persistent append/fsync failures), update
// kinds return wal.ErrDegradedReadOnly and reads keep serving; see
// Engine.Health. Close the engine to flush and release the WAL.
func Open(idx index.Index, opts Options) (*Engine, *WALRecovery, error) {
	if opts.WALDir == "" {
		return nil, nil, fmt.Errorf("engine: Open requires Options.WALDir (use New for a non-durable engine)")
	}
	logged, _ := opts.Objects.(index.ChangeLogger)
	mutable, _ := opts.Objects.(index.MutableObjectIndexer)
	if logged == nil || mutable == nil {
		return nil, nil, fmt.Errorf("engine: Options.WALDir requires a mutable object querier with an update log (index.ChangeLogger)")
	}
	log := logged.ChangeLog()
	snapSeq := log.HeadSeq()

	wopts := opts.WALOptions
	wopts.Dir = opts.WALDir
	w, err := wal.Open(wopts)
	if err != nil {
		return nil, nil, err
	}
	rec := w.Recovery()
	report := &WALRecovery{
		SnapshotSeq:  snapSeq,
		Head:         rec.Head,
		Segments:     rec.Segments,
		Scanned:      len(rec.Records),
		TornTail:     rec.TornTail,
		DroppedBytes: rec.DroppedBytes,
		ScanElapsed:  rec.Elapsed,
	}
	if rec.Head > snapSeq {
		if rec.Base > snapSeq {
			w.Close()
			return nil, nil, fmt.Errorf("engine: wal retains seqs (%d,%d] but the index only covers %d: the checkpointed prefix is gone and no snapshot bridges the gap",
				rec.Base, rec.Head, snapSeq)
		}
		start := time.Now()
		for _, r := range rec.Records[snapSeq-rec.Base:] {
			if err := replayRecord(mutable, r); err != nil {
				w.Close()
				return nil, nil, fmt.Errorf("engine: wal replay at seq %d: %w", r.Seq, err)
			}
			if got := log.HeadSeq(); got != r.Seq {
				w.Close()
				return nil, nil, fmt.Errorf("engine: wal replay diverged: index at seq %d after applying record %d", got, r.Seq)
			}
			report.Replayed++
		}
		report.ReplayElapsed = time.Since(start)
	}
	if err := w.Follow(log); err != nil {
		w.Close()
		return nil, nil, err
	}
	if head := log.HeadSeq(); head > report.Head {
		// Snapshot newer than the WAL: Follow restarted the log there.
		report.Head = head
	}

	scrubbed := opts
	scrubbed.WALDir = ""
	scrubbed.WALOptions = wal.Options{}
	e := New(idx, scrubbed)
	e.wal = w
	return e, report, nil
}

// replayRecord applies one recovered record through the mutable indexer.
// The update log reassigns sequence numbers and insert IDs during replay;
// both are deterministic (gap-free seqs, lowest-free-slot IDs), so they
// must reproduce the logged values exactly — a mismatch means the WAL does
// not belong to this index state.
func replayRecord(m index.MutableObjectIndexer, r updatelog.Record) error {
	switch r.Op {
	case updatelog.OpInsert:
		id, err := m.Insert(r.Loc)
		if err != nil {
			return err
		}
		if id != r.ID {
			return fmt.Errorf("insert reassigned id %d, logged id %d", id, r.ID)
		}
		return nil
	case updatelog.OpDelete:
		return m.Delete(r.ID)
	case updatelog.OpMove:
		return m.Move(r.ID, r.Loc)
	default:
		return fmt.Errorf("unknown op %v", r.Op)
	}
}

// Health is the engine's durability health.
type Health struct {
	// Durable reports whether a write-ahead log is attached (engines from
	// Open). Non-durable engines are always Healthy.
	Durable bool
	// WAL is the attached WAL's state; meaningful only when Durable.
	WAL wal.Health
}

// Healthy reports whether the engine accepts updates: always for a
// non-durable engine, and exactly while the WAL is healthy for a durable
// one.
func (h Health) Healthy() bool {
	return !h.Durable || h.WAL.State == wal.StateHealthy
}

// Health returns the engine's durability health. While the WAL is degraded
// (h.Healthy() false), update kinds return wal.ErrDegradedReadOnly and
// reads continue to serve; the WAL probes the disk and the engine resumes
// accepting updates automatically once a probe succeeds.
func (e *Engine) Health() Health {
	if e.wal == nil {
		return Health{}
	}
	return Health{Durable: true, WAL: e.wal.Health()}
}

// WAL returns the attached write-ahead log, or nil for a non-durable
// engine. Through it callers observe the durable watermark (DurableSeq),
// force an fsync (Flush), and reclaim segments covered by a snapshot
// (Checkpoint).
func (e *Engine) WAL() *wal.WAL { return e.wal }

// Close flushes and detaches the write-ahead log: everything the update
// log has applied is made durable before Close returns nil. A degraded WAL
// cannot flush — Close then reports the degradation error, and exactly the
// never-acknowledged suffix is at risk. Closing a non-durable engine is a
// no-op. The engine must not execute further updates after Close.
func (e *Engine) Close() error {
	if e.wal == nil {
		return nil
	}
	return e.wal.Close()
}
