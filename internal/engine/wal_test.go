package engine_test

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"viptree/internal/engine"
	"viptree/internal/iptree"
	"viptree/internal/model"
	"viptree/internal/updatelog"
	"viptree/internal/wal"
)

// walOp records one acknowledged update so a mirror index can replay the
// identical stream (ops are applied serially, so op i carries seq i+1).
type walOp struct {
	op  updatelog.Op
	id  int
	loc model.Location
}

func fastWALOptions(fs *wal.FaultFS) wal.Options {
	return wal.Options{
		FS:            fs,
		Sync:          wal.SyncAlways(),
		MaxRetries:    2,
		RetryBackoff:  200 * time.Microsecond,
		ProbeInterval: 500 * time.Microsecond,
	}
}

// churn applies n random updates through the engine, returning the ops that
// were acknowledged (applied in-memory). Updates rejected because the WAL
// degraded mid-storm are not recorded — they were never applied.
func churn(t *testing.T, eng *engine.Engine, v *model.Venue, n int, seed int64) []walOp {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var ops []walOp
	var live []int
	for i := 0; i < n; i++ {
		switch {
		case len(live) == 0 || rng.Intn(3) == 0:
			loc := v.RandomLocation(rng)
			id, err := eng.Insert(loc)
			if err != nil {
				if errors.Is(err, wal.ErrDegradedReadOnly) {
					continue
				}
				t.Fatalf("insert %d: %v", i, err)
			}
			ops = append(ops, walOp{updatelog.OpInsert, id, loc})
			live = append(live, id)
		case rng.Intn(2) == 0:
			j := rng.Intn(len(live))
			loc := v.RandomLocation(rng)
			if err := eng.Move(live[j], loc); err != nil {
				if errors.Is(err, wal.ErrDegradedReadOnly) {
					continue
				}
				t.Fatalf("move %d: %v", i, err)
			}
			ops = append(ops, walOp{updatelog.OpMove, live[j], loc})
		default:
			j := rng.Intn(len(live))
			if err := eng.Delete(live[j]); err != nil {
				if errors.Is(err, wal.ErrDegradedReadOnly) {
					continue
				}
				t.Fatalf("delete %d: %v", i, err)
			}
			ops = append(ops, walOp{updatelog.OpDelete, live[j], model.Location{}})
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	return ops
}

// mirrorEngine replays a recorded op stream onto a fresh index and wraps it
// in a non-durable engine: the ground truth a recovered engine must match.
func mirrorEngine(t *testing.T, tree *iptree.Tree, base []model.Location, ops []walOp) *engine.Engine {
	t.Helper()
	oi := tree.IndexObjects(base)
	for i, op := range ops {
		var err error
		switch op.op {
		case updatelog.OpInsert:
			var id int
			id, err = oi.Insert(op.loc)
			if err == nil && id != op.id {
				t.Fatalf("mirror replay %d: insert got id %d, recorded %d", i, id, op.id)
			}
		case updatelog.OpMove:
			err = oi.Move(op.id, op.loc)
		case updatelog.OpDelete:
			err = oi.Delete(op.id)
		}
		if err != nil {
			t.Fatalf("mirror replay %d (%v): %v", i, op.op, err)
		}
	}
	return engine.New(tree, engine.Options{Objects: oi})
}

func probeQueries(v *model.Venue, n int) []engine.Query {
	rng := rand.New(rand.NewSource(99))
	qs := make([]engine.Query, 0, 2*n)
	for i := 0; i < n; i++ {
		qs = append(qs,
			engine.Query{Kind: engine.KindKNN, S: v.RandomLocation(rng), K: 1 + rng.Intn(5)},
			engine.Query{Kind: engine.KindRange, S: v.RandomLocation(rng), Radius: 40 + 80*rng.Float64()},
		)
	}
	return qs
}

// requireEquivalent runs the same probe batch on both engines and requires
// identical results — the recovered index must be indistinguishable from a
// fresh build over the same update stream.
func requireEquivalent(t *testing.T, v *model.Venue, got, want *engine.Engine) {
	t.Helper()
	qs := probeQueries(v, 12)
	gr := got.ExecuteBatchWorkers(qs, 1)
	wr := want.ExecuteBatchWorkers(qs, 1)
	for i := range qs {
		if !reflect.DeepEqual(gr[i], wr[i]) {
			t.Fatalf("probe %d (%v) diverged:\nrecovered: %+v\nfresh:     %+v", i, qs[i].Kind, gr[i], wr[i])
		}
	}
	if g, w := got.Mutable().(*iptree.ObjectIndex).NumObjects(), want.Mutable().(*iptree.ObjectIndex).NumObjects(); g != w {
		t.Fatalf("recovered index has %d objects, fresh build %d", g, w)
	}
}

func baseObjects(v *model.Venue, n int, seed int64) []model.Location {
	rng := rand.New(rand.NewSource(seed))
	objs := make([]model.Location, n)
	for i := range objs {
		objs[i] = v.RandomLocation(rng)
	}
	return objs
}

// TestOpenRecoverRoundTrip is the end-to-end durability path: open a durable
// engine on an empty directory, churn updates, close cleanly, reopen over a
// fresh snapshot-equivalent index, and require the recovered engine to answer
// queries exactly like a fresh build over the same update stream.
func TestOpenRecoverRoundTrip(t *testing.T) {
	v := testVenue(t)
	tree := iptree.MustBuildIPTree(v, iptree.Options{})
	base := baseObjects(v, 30, 1)
	fs := wal.NewFaultFS()

	eng, rep, err := engine.Open(tree, engine.Options{
		Objects:    tree.IndexObjects(base),
		WALDir:     "wal",
		WALOptions: fastWALOptions(fs),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replayed != 0 || rep.Head != 0 || rep.TornTail {
		t.Fatalf("fresh open reported recovery work: %+v", rep)
	}
	if h := eng.Health(); !h.Durable || !h.Healthy() {
		t.Fatalf("durable engine unhealthy at open: %+v", h)
	}
	ops := churn(t, eng, v, 120, 2)
	if err := eng.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got := eng.WAL().DurableSeq(); got != uint64(len(ops)) {
		t.Fatalf("close left durable seq %d, want %d", got, len(ops))
	}

	eng2, rep2, err := engine.Open(tree, engine.Options{
		Objects:    tree.IndexObjects(base),
		WALDir:     "wal",
		WALOptions: fastWALOptions(fs),
	})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer eng2.Close()
	if rep2.Replayed != len(ops) || rep2.Head != uint64(len(ops)) {
		t.Fatalf("reopen replayed %d (head %d), want %d", rep2.Replayed, rep2.Head, len(ops))
	}
	if rep2.TornTail {
		t.Fatal("clean close left a torn tail")
	}
	requireEquivalent(t, v, eng2, mirrorEngine(t, tree, base, ops))

	// The recovered engine keeps accepting updates with contiguous seqs.
	if _, err := eng2.Insert(v.RandomLocation(rand.New(rand.NewSource(3)))); err != nil {
		t.Fatalf("insert after recovery: %v", err)
	}
	if got := eng2.ChangeLog().HeadSeq(); got != uint64(len(ops))+1 {
		t.Fatalf("post-recovery insert got seq %d, want %d", got, len(ops)+1)
	}
}

// TestOpenCrashRecoveryProperty crashes the filesystem at random byte
// offsets during an update storm and requires, for every crash point, that
// the recovered engine equals a fresh build over the surviving log prefix
// and that no durably acknowledged update is lost.
func TestOpenCrashRecoveryProperty(t *testing.T) {
	v := testVenue(t)
	tree := iptree.MustBuildIPTree(v, iptree.Options{})
	base := baseObjects(v, 20, 1)
	rng := rand.New(rand.NewSource(0xE16))

	for trial := 0; trial < 12; trial++ {
		fs := wal.NewFaultFS()
		opts := fastWALOptions(fs)
		opts.MaxRetries = 1
		opts.SegmentBytes = int64(512 + rng.Intn(2048))
		eng, _, err := engine.Open(tree, engine.Options{
			Objects:    tree.IndexObjects(base),
			WALDir:     "wal",
			WALOptions: opts,
		})
		if err != nil {
			t.Fatalf("trial %d open: %v", trial, err)
		}
		fs.CrashAfter(int64(1 + rng.Intn(4000)))
		ops := churn(t, eng, v, 80, int64(100+trial))
		durable := eng.WAL().DurableSeq()
		eng.Close() // expected to fail when the crash hit mid-storm

		fs.Revive()
		eng2, rep, err := engine.Open(tree, engine.Options{
			Objects:    tree.IndexObjects(base),
			WALDir:     "wal",
			WALOptions: fastWALOptions(fs),
		})
		if err != nil {
			t.Fatalf("trial %d recovery: %v", trial, err)
		}
		if rep.Head < durable {
			t.Fatalf("trial %d lost acknowledged updates: durable %d, recovered head %d", trial, durable, rep.Head)
		}
		if rep.Head > uint64(len(ops)) {
			t.Fatalf("trial %d recovered %d records but only %d were applied", trial, rep.Head, len(ops))
		}
		requireEquivalent(t, v, eng2, mirrorEngine(t, tree, base, ops[:rep.Head]))
		eng2.Close()
	}
}

// TestEngineDegradedReadOnly injects a persistent fsync failure: updates
// must start returning wal.ErrDegradedReadOnly after the bounded retries,
// reads must keep serving throughout, and clearing the fault must let the
// engine resume accepting updates on its own.
func TestEngineDegradedReadOnly(t *testing.T) {
	v := testVenue(t)
	tree := iptree.MustBuildIPTree(v, iptree.Options{})
	base := baseObjects(v, 25, 1)
	fs := wal.NewFaultFS()

	eng, _, err := engine.Open(tree, engine.Options{
		Objects:    tree.IndexObjects(base),
		WALDir:     "wal",
		WALOptions: fastWALOptions(fs),
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	if _, err := eng.Insert(v.RandomLocation(rng)); err != nil {
		t.Fatalf("healthy insert: %v", err)
	}

	fs.FailSync()
	deadline := time.Now().Add(5 * time.Second)
	degraded := false
	for time.Now().Before(deadline) {
		_, err := eng.Insert(v.RandomLocation(rng))
		if errors.Is(err, wal.ErrDegradedReadOnly) {
			degraded = true
			break
		}
		if err != nil {
			t.Fatalf("unexpected insert error: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	if !degraded {
		t.Fatal("engine never entered degraded read-only mode under persistent fsync failure")
	}
	h := eng.Health()
	if !h.Durable || h.Healthy() {
		t.Fatalf("degraded engine reports health %+v", h)
	}
	if h.WAL.DegradedSince.IsZero() {
		t.Fatal("degraded health missing DegradedSince")
	}

	// Reads are unharmed while updates are rejected.
	if _, err := eng.KNN(v.RandomLocation(rng), 3); err != nil {
		t.Fatalf("kNN while degraded: %v", err)
	}
	if d := eng.Distance(v.RandomLocation(rng), v.RandomLocation(rng)); d < 0 {
		t.Fatalf("distance while degraded: %v", d)
	}
	if _, err := eng.Range(v.RandomLocation(rng), 60); err != nil {
		t.Fatalf("range while degraded: %v", err)
	}

	fs.ClearFaults()
	recovered := false
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := eng.Insert(v.RandomLocation(rng)); err == nil {
			recovered = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !recovered {
		t.Fatal("engine did not resume accepting updates after the fault cleared")
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("close after recovery: %v", err)
	}
	// Every update the engine acknowledged before and after degradation —
	// including those buffered while the disk was failing — survived.
	head := eng.ChangeLog().HeadSeq()
	if got := eng.WAL().DurableSeq(); got != head {
		t.Fatalf("close left durable %d, head %d", got, head)
	}
}

// TestSnapshotStampedRecovery exports a stamped snapshot mid-stream and
// verifies Open replays only the records past the stamp.
func TestSnapshotStampedRecovery(t *testing.T) {
	v := testVenue(t)
	tree := iptree.MustBuildIPTree(v, iptree.Options{})
	base := baseObjects(v, 20, 1)
	fs := wal.NewFaultFS()

	oi := tree.IndexObjects(base)
	eng, _, err := engine.Open(tree, engine.Options{
		Objects:    oi,
		WALDir:     "wal",
		WALOptions: fastWALOptions(fs),
	})
	if err != nil {
		t.Fatal(err)
	}
	pre := churn(t, eng, v, 40, 5)
	st := oi.ExportState()
	if st.Seq != uint64(len(pre)) {
		t.Fatalf("snapshot stamped %d, want %d", st.Seq, len(pre))
	}
	post := churn(t, eng, v, 40, 6)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	restored, err := iptree.RestoreObjectIndex(tree, st)
	if err != nil {
		t.Fatal(err)
	}
	eng2, rep, err := engine.Open(tree, engine.Options{
		Objects:    restored,
		WALDir:     "wal",
		WALOptions: fastWALOptions(fs),
	})
	if err != nil {
		t.Fatalf("open from snapshot: %v", err)
	}
	defer eng2.Close()
	if rep.SnapshotSeq != st.Seq {
		t.Fatalf("reported snapshot seq %d, want %d", rep.SnapshotSeq, st.Seq)
	}
	if rep.Replayed != len(post) {
		t.Fatalf("replayed %d records on top of the snapshot, want %d", rep.Replayed, len(post))
	}
	all := append(append([]walOp(nil), pre...), post...)
	requireEquivalent(t, v, eng2, mirrorEngine(t, tree, base, all))
}

// TestCheckpointGapRejected reclaims WAL segments behind a snapshot, then
// tries to recover with an unstamped (fresh) index: the checkpointed prefix
// is gone, so Open must refuse rather than serve silently incomplete state.
func TestCheckpointGapRejected(t *testing.T) {
	v := testVenue(t)
	tree := iptree.MustBuildIPTree(v, iptree.Options{})
	base := baseObjects(v, 10, 1)
	fs := wal.NewFaultFS()

	oi := tree.IndexObjects(base)
	opts := fastWALOptions(fs)
	opts.SegmentBytes = 1 // rotate on every append so each record seals a segment
	eng, _, err := engine.Open(tree, engine.Options{
		Objects:    oi,
		WALDir:     "wal",
		WALOptions: opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	churn(t, eng, v, 12, 9)
	st := oi.ExportState()
	if err := eng.WAL().Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.WAL().Checkpoint(st.Seq); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh, unstamped index cannot bridge the reclaimed prefix.
	_, _, err = engine.Open(tree, engine.Options{
		Objects:    tree.IndexObjects(base),
		WALDir:     "wal",
		WALOptions: fastWALOptions(fs),
	})
	if err == nil {
		t.Fatal("open over a checkpointed WAL with an unstamped index succeeded")
	}

	// The stamped snapshot still bridges it.
	restored, err := iptree.RestoreObjectIndex(tree, st)
	if err != nil {
		t.Fatal(err)
	}
	eng2, rep, err := engine.Open(tree, engine.Options{
		Objects:    restored,
		WALDir:     "wal",
		WALOptions: fastWALOptions(fs),
	})
	if err != nil {
		t.Fatalf("open from snapshot after checkpoint: %v", err)
	}
	defer eng2.Close()
	if rep.SnapshotSeq != st.Seq {
		t.Fatalf("snapshot seq %d, want %d", rep.SnapshotSeq, st.Seq)
	}
}

// TestNewPanicsOnWALDir: New silently ignoring a WAL request would skip
// recovery — that misuse must be loud.
func TestNewPanicsOnWALDir(t *testing.T) {
	v := testVenue(t)
	tree := iptree.MustBuildIPTree(v, iptree.Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("New with Options.WALDir did not panic")
		}
	}()
	engine.New(tree, engine.Options{WALDir: "wal", Objects: tree.IndexObjects(nil)})
}

// TestOpenRequiresMutableLoggedObjects: a durable engine needs an object
// querier whose mutations flow through an update log.
func TestOpenRequiresMutableLoggedObjects(t *testing.T) {
	v := testVenue(t)
	tree := iptree.MustBuildIPTree(v, iptree.Options{})
	_, _, err := engine.Open(tree, engine.Options{WALDir: "wal", WALOptions: wal.Options{FS: wal.NewFaultFS()}})
	if err == nil {
		t.Fatal("Open without a mutable logged object querier succeeded")
	}
}
