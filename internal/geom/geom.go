// Package geom provides the small geometric vocabulary used by the indoor
// data model: three-dimensional points (x, y, floor), Euclidean distances and
// axis-aligned rectangles describing indoor partitions.
//
// The paper models an indoor venue with a three dimensional coordinate system
// where the first two coordinates are the planar position of an entity and the
// third is the floor number (Section 4.1). Distances inside a partition are
// planar Euclidean distances; vertical movement only happens through special
// partitions (stairs, lifts, escalators) whose traversal cost is an edge
// weight in the door-to-door graph, not a geometric distance.
package geom

import (
	"fmt"
	"math"
)

// Point is a location inside an indoor venue. X and Y are planar coordinates
// in metres; Floor is the floor number the point lies on (0 = ground floor,
// negative floors are basements).
type Point struct {
	X, Y  float64
	Floor int
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.2f, %.2f, F%d)", p.X, p.Y, p.Floor)
}

// PlanarDist returns the Euclidean distance between p and q ignoring the
// floor component. It is the indoor walking distance between two locations
// inside the same convex partition.
func (p Point) PlanarDist(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// SameFloor reports whether p and q lie on the same floor.
func (p Point) SameFloor(q Point) bool { return p.Floor == q.Floor }

// Midpoint returns the planar midpoint of p and q on p's floor.
func (p Point) Midpoint(q Point) Point {
	return Point{X: (p.X + q.X) / 2, Y: (p.Y + q.Y) / 2, Floor: p.Floor}
}

// Rect is an axis-aligned rectangle on a single floor. It describes the
// footprint of an indoor partition (room, hallway, staircase landing).
type Rect struct {
	MinX, MinY float64
	MaxX, MaxY float64
	Floor      int
}

// NewRect returns the rectangle with the given corners, normalising the
// coordinate order so that Min <= Max on both axes.
func NewRect(x1, y1, x2, y2 float64, floor int) Rect {
	if x2 < x1 {
		x1, x2 = x2, x1
	}
	if y2 < y1 {
		y1, y2 = y2, y1
	}
	return Rect{MinX: x1, MinY: y1, MaxX: x2, MaxY: y2, Floor: floor}
}

// Width returns the extent of r along the x axis.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the extent of r along the y axis.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the planar area of r in square metres.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the planar centre of r.
func (r Rect) Center() Point {
	return Point{X: (r.MinX + r.MaxX) / 2, Y: (r.MinY + r.MaxY) / 2, Floor: r.Floor}
}

// Contains reports whether p lies inside r (inclusive of the boundary) and on
// the same floor.
func (r Rect) Contains(p Point) bool {
	return p.Floor == r.Floor &&
		p.X >= r.MinX && p.X <= r.MaxX &&
		p.Y >= r.MinY && p.Y <= r.MaxY
}

// Intersects reports whether r and s overlap on the same floor. Rectangles
// that merely touch along an edge are considered intersecting, which is the
// relationship between a room and the hallway it opens onto.
func (r Rect) Intersects(s Rect) bool {
	if r.Floor != s.Floor {
		return false
	}
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX &&
		r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Translate returns a copy of r shifted by (dx, dy) and df floors.
func (r Rect) Translate(dx, dy float64, df int) Rect {
	return Rect{
		MinX: r.MinX + dx, MinY: r.MinY + dy,
		MaxX: r.MaxX + dx, MaxY: r.MaxY + dy,
		Floor: r.Floor + df,
	}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%.1f,%.1f]x[%.1f,%.1f]@F%d", r.MinX, r.MaxX, r.MinY, r.MaxY, r.Floor)
}
