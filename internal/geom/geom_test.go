package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPlanarDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Point{1, 2, 0}, Point{1, 2, 0}, 0},
		{"unit x", Point{0, 0, 0}, Point{1, 0, 0}, 1},
		{"unit y", Point{0, 0, 0}, Point{0, 1, 0}, 1},
		{"3-4-5", Point{0, 0, 0}, Point{3, 4, 0}, 5},
		{"floors ignored", Point{0, 0, 0}, Point{3, 4, 7}, 5},
		{"negative coords", Point{-3, -4, 0}, Point{0, 0, 0}, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.PlanarDist(tt.q); math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("PlanarDist(%v, %v) = %v, want %v", tt.p, tt.q, got, tt.want)
			}
		})
	}
}

func TestPlanarDistSymmetric(t *testing.T) {
	clamp := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return math.Mod(v, 1e6)
	}
	f := func(ax, ay, bx, by float64) bool {
		p := Point{X: clamp(ax), Y: clamp(ay)}
		q := Point{X: clamp(bx), Y: clamp(by)}
		return math.Abs(p.PlanarDist(q)-q.PlanarDist(p)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPlanarDistTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		// Constrain magnitudes to avoid float overflow noise from quick's
		// extreme values.
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1e6)
		}
		a := Point{X: clamp(ax), Y: clamp(ay)}
		b := Point{X: clamp(bx), Y: clamp(by)}
		c := Point{X: clamp(cx), Y: clamp(cy)}
		return a.PlanarDist(c) <= a.PlanarDist(b)+b.PlanarDist(c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSameFloor(t *testing.T) {
	if !(Point{Floor: 3}).SameFloor(Point{Floor: 3}) {
		t.Error("points on floor 3 should be on the same floor")
	}
	if (Point{Floor: 3}).SameFloor(Point{Floor: 4}) {
		t.Error("points on floors 3 and 4 should not be on the same floor")
	}
}

func TestMidpoint(t *testing.T) {
	p := Point{0, 0, 2}
	q := Point{10, 4, 2}
	m := p.Midpoint(q)
	if m.X != 5 || m.Y != 2 || m.Floor != 2 {
		t.Errorf("Midpoint = %v, want (5, 2, F2)", m)
	}
}

func TestNewRectNormalises(t *testing.T) {
	r := NewRect(5, 9, 1, 3, 0)
	if r.MinX != 1 || r.MaxX != 5 || r.MinY != 3 || r.MaxY != 9 {
		t.Errorf("NewRect did not normalise corners: %+v", r)
	}
}

func TestRectDimensions(t *testing.T) {
	r := NewRect(0, 0, 4, 3, 1)
	if r.Width() != 4 {
		t.Errorf("Width = %v, want 4", r.Width())
	}
	if r.Height() != 3 {
		t.Errorf("Height = %v, want 3", r.Height())
	}
	if r.Area() != 12 {
		t.Errorf("Area = %v, want 12", r.Area())
	}
	c := r.Center()
	if c.X != 2 || c.Y != 1.5 || c.Floor != 1 {
		t.Errorf("Center = %v, want (2, 1.5, F1)", c)
	}
}

func TestRectContains(t *testing.T) {
	r := NewRect(0, 0, 10, 10, 0)
	tests := []struct {
		p    Point
		want bool
	}{
		{Point{5, 5, 0}, true},
		{Point{0, 0, 0}, true},   // boundary corner
		{Point{10, 10, 0}, true}, // boundary corner
		{Point{5, 5, 1}, false},  // wrong floor
		{Point{11, 5, 0}, false},
		{Point{5, -0.1, 0}, false},
	}
	for _, tt := range tests {
		if got := r.Contains(tt.p); got != tt.want {
			t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestRectIntersects(t *testing.T) {
	a := NewRect(0, 0, 10, 10, 0)
	tests := []struct {
		name string
		b    Rect
		want bool
	}{
		{"overlapping", NewRect(5, 5, 15, 15, 0), true},
		{"touching edge", NewRect(10, 0, 20, 10, 0), true},
		{"touching corner", NewRect(10, 10, 20, 20, 0), true},
		{"disjoint", NewRect(11, 11, 20, 20, 0), false},
		{"contained", NewRect(2, 2, 3, 3, 0), true},
		{"different floor", NewRect(5, 5, 15, 15, 1), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := a.Intersects(tt.b); got != tt.want {
				t.Errorf("Intersects = %v, want %v", got, tt.want)
			}
			// Intersection is symmetric.
			if got := tt.b.Intersects(a); got != tt.want {
				t.Errorf("reverse Intersects = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestRectTranslate(t *testing.T) {
	r := NewRect(0, 0, 4, 3, 1)
	got := r.Translate(10, -2, 3)
	want := Rect{MinX: 10, MinY: -2, MaxX: 14, MaxY: 1, Floor: 4}
	if got != want {
		t.Errorf("Translate = %+v, want %+v", got, want)
	}
}

func TestStringers(t *testing.T) {
	if s := (Point{1, 2, 3}).String(); s == "" {
		t.Error("Point.String returned empty string")
	}
	if s := NewRect(0, 0, 1, 1, 0).String(); s == "" {
		t.Error("Rect.String returned empty string")
	}
}
