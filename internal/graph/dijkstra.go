package graph

// This file implements the Dijkstra variants used across the repository:
//
//   - ShortestDist / ShortestPath: point-to-point with early termination,
//     used as ground truth in tests and by the DistAw baseline.
//   - FromSource: single-source all-distances, used to build the full
//     distance matrix (DistMx baseline).
//   - ToTargets: single-source terminated once a given target set is
//     settled, used to build IP-Tree leaf and non-leaf distance matrices
//     ("issue a Dijkstra's search until all doors in the node N are
//     reached", Section 2.1.2).
//   - Bounded: single-source limited to a distance radius, used by range
//     queries in expansion-based baselines.

// searchState holds the reusable arrays of a Dijkstra run.
type searchState struct {
	dist    []float64
	prev    []int
	settled []bool
}

func newSearchState(n int) *searchState {
	s := &searchState{
		dist:    make([]float64, n),
		prev:    make([]int, n),
		settled: make([]bool, n),
	}
	for i := range s.dist {
		s.dist[i] = Infinity
		s.prev[i] = -1
	}
	return s
}

// ShortestDist returns the length of the shortest path from s to t, or
// Infinity if t is unreachable. The search terminates as soon as t is
// settled.
func (g *Graph) ShortestDist(s, t int) float64 {
	d, _ := g.shortestPathInternal(s, t, false)
	return d
}

// ShortestPath returns the length of the shortest path from s to t and the
// sequence of vertices on it (starting with s and ending with t). If t is
// unreachable it returns Infinity and a nil path.
func (g *Graph) ShortestPath(s, t int) (float64, []int) {
	return g.shortestPathInternal(s, t, true)
}

func (g *Graph) shortestPathInternal(s, t int, wantPath bool) (float64, []int) {
	n := len(g.adj)
	if s < 0 || s >= n || t < 0 || t >= n {
		return Infinity, nil
	}
	if s == t {
		if wantPath {
			return 0, []int{s}
		}
		return 0, nil
	}
	st := newSearchState(n)
	st.dist[s] = 0
	h := newMinHeap(64)
	h.Push(s, 0)
	for h.Len() > 0 {
		u, d := h.PopMin()
		if st.settled[u] {
			continue
		}
		st.settled[u] = true
		if u == t {
			break
		}
		for _, e := range g.adj[u] {
			if nd := d + e.Weight; nd < st.dist[e.To] {
				st.dist[e.To] = nd
				st.prev[e.To] = u
				h.Push(e.To, nd)
			}
		}
	}
	if st.dist[t] == Infinity {
		return Infinity, nil
	}
	if !wantPath {
		return st.dist[t], nil
	}
	return st.dist[t], reconstruct(st.prev, s, t)
}

func reconstruct(prev []int, s, t int) []int {
	var rev []int
	for v := t; v != -1; v = prev[v] {
		rev = append(rev, v)
		if v == s {
			break
		}
	}
	// Reverse in place.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// FromSource runs a full single-source Dijkstra from s and returns the
// distance to every vertex (Infinity for unreachable vertices) and the
// predecessor array for path reconstruction (-1 for s and unreachable
// vertices).
func (g *Graph) FromSource(s int) (dist []float64, prev []int) {
	n := len(g.adj)
	st := newSearchState(n)
	if s < 0 || s >= n {
		return st.dist, st.prev
	}
	st.dist[s] = 0
	h := newMinHeap(64)
	h.Push(s, 0)
	for h.Len() > 0 {
		u, d := h.PopMin()
		if st.settled[u] {
			continue
		}
		st.settled[u] = true
		for _, e := range g.adj[u] {
			if nd := d + e.Weight; nd < st.dist[e.To] {
				st.dist[e.To] = nd
				st.prev[e.To] = u
				h.Push(e.To, nd)
			}
		}
	}
	return st.dist, st.prev
}

// ToTargets runs Dijkstra from s and stops as soon as every vertex in
// targets has been settled (or the graph is exhausted). It returns the
// distances and predecessors restricted to what was explored: vertices that
// were not reached have distance Infinity.
//
// This is the primitive used to build IP-Tree distance matrices: the doors of
// a node are close to each other, so the expansion settles quickly without
// touching the rest of the graph.
func (g *Graph) ToTargets(s int, targets []int) (dist []float64, prev []int) {
	return g.ToTargetsInto(s, targets, &SearchScratch{})
}

// SearchScratch holds the reusable buffers of repeated Dijkstra runs over the
// same graph: the dense distance/predecessor/settled arrays, the priority
// queue and the target bookkeeping. Resetting between runs touches only the
// vertices modified by the previous run, so a sequence of localised searches
// (one per access door of every tree node) costs O(vertices explored) rather
// than O(graph) per run. A scratch is owned by one goroutine at a time; the
// graph itself is only read, so concurrent searches with distinct scratches
// are safe.
type SearchScratch struct {
	dist    []float64
	prev    []int
	settled []bool
	touched []int
	heap    minHeap
	// targetStamp marks the pending targets of the current run; a stamp is
	// current when it equals targetEpoch, so resetting the target set is O(1).
	targetStamp []uint32
	targetEpoch uint32
}

// reset prepares the scratch for a graph with n vertices, clearing only the
// entries touched by the previous run.
func (sc *SearchScratch) reset(n int) {
	if len(sc.dist) < n {
		sc.dist = make([]float64, n)
		sc.prev = make([]int, n)
		sc.settled = make([]bool, n)
		sc.targetStamp = make([]uint32, n)
		for i := range sc.dist {
			sc.dist[i] = Infinity
			sc.prev[i] = -1
		}
		sc.touched = sc.touched[:0]
		return
	}
	for _, v := range sc.touched {
		sc.dist[v] = Infinity
		sc.prev[v] = -1
		sc.settled[v] = false
	}
	sc.touched = sc.touched[:0]
}

// ToTargetsInto is ToTargets with caller-provided scratch: the returned dist
// and prev slices alias the scratch and are valid only until its next use.
// Recycling the scratch across runs makes repeated matrix-building searches
// allocation-free after the first call.
func (g *Graph) ToTargetsInto(s int, targets []int, sc *SearchScratch) (dist []float64, prev []int) {
	n := len(g.adj)
	sc.reset(n)
	if s < 0 || s >= n {
		return sc.dist, sc.prev
	}
	sc.targetEpoch++
	if sc.targetEpoch == 0 { // epoch wrapped: clear the stamps and restart
		for i := range sc.targetStamp {
			sc.targetStamp[i] = 0
		}
		sc.targetEpoch = 1
	}
	pending := 0
	for _, t := range targets {
		if t >= 0 && t < n && sc.targetStamp[t] != sc.targetEpoch {
			sc.targetStamp[t] = sc.targetEpoch
			pending++
		}
	}
	sc.dist[s] = 0
	sc.touched = append(sc.touched, s)
	h := &sc.heap
	h.items = h.items[:0]
	h.Push(s, 0)
	for h.Len() > 0 && pending > 0 {
		u, d := h.PopMin()
		if sc.settled[u] {
			continue
		}
		sc.settled[u] = true
		if sc.targetStamp[u] == sc.targetEpoch {
			sc.targetStamp[u] = 0
			pending--
		}
		for _, e := range g.adj[u] {
			if nd := d + e.Weight; nd < sc.dist[e.To] {
				if sc.dist[e.To] == Infinity {
					sc.touched = append(sc.touched, e.To)
				}
				sc.dist[e.To] = nd
				sc.prev[e.To] = u
				h.Push(e.To, nd)
			}
		}
	}
	return sc.dist, sc.prev
}

// Bounded runs Dijkstra from s and settles only vertices whose distance is
// at most radius. It returns a map from settled vertex to its distance.
func (g *Graph) Bounded(s int, radius float64) map[int]float64 {
	n := len(g.adj)
	result := make(map[int]float64)
	if s < 0 || s >= n {
		return result
	}
	dist := make(map[int]float64, 64)
	dist[s] = 0
	h := newMinHeap(64)
	h.Push(s, 0)
	for h.Len() > 0 {
		u, d := h.PopMin()
		if _, done := result[u]; done {
			continue
		}
		if d > radius {
			break
		}
		result[u] = d
		for _, e := range g.adj[u] {
			nd := d + e.Weight
			if nd > radius {
				continue
			}
			if old, ok := dist[e.To]; !ok || nd < old {
				dist[e.To] = nd
				h.Push(e.To, nd)
			}
		}
	}
	return result
}

// PathOnPrev reconstructs the path from s to t given a predecessor array
// produced by FromSource or ToTargets. It returns nil if t was not reached.
func PathOnPrev(prev []int, s, t int) []int {
	if t < 0 || t >= len(prev) {
		return nil
	}
	if s == t {
		return []int{s}
	}
	if prev[t] == -1 {
		return nil
	}
	return reconstruct(prev, s, t)
}
