// Package graph provides the weighted-graph machinery shared by every index
// in this repository: a compact adjacency-list graph over dense integer
// vertex identifiers, a binary-heap priority queue and several Dijkstra
// variants (full, early-termination, multi-target, bounded).
//
// The door-to-door (D2D) graph, the accessibility base (AB) graph and the
// level-l graphs used to build IP-Tree distance matrices (Section 2.1.2 of
// the paper) are all instances of this package's Graph type.
package graph

import (
	"fmt"
	"math"
	"sort"
)

// Infinity is the distance reported for unreachable vertices.
const Infinity = math.MaxFloat64

// Edge is a weighted, directed half-edge stored in an adjacency list.
type Edge struct {
	To     int
	Weight float64
}

// Graph is a weighted graph over vertices 0..N-1 stored as adjacency lists.
// Edges added with AddEdge are undirected (two half-edges); AddArc adds a
// single directed half-edge. The zero value is an empty graph with no
// vertices; use New to pre-size it.
type Graph struct {
	adj [][]Edge
}

// New returns a graph with n vertices and no edges.
func New(n int) *Graph {
	return &Graph{adj: make([][]Edge, n)}
}

// NumVertices returns the number of vertices in g.
func (g *Graph) NumVertices() int { return len(g.adj) }

// NumEdges returns the number of undirected edges in g, counting each pair of
// half-edges once. Directed arcs added with AddArc count as half an edge and
// are rounded down.
func (g *Graph) NumEdges() int {
	total := 0
	for _, es := range g.adj {
		total += len(es)
	}
	return total / 2
}

// NumArcs returns the number of directed half-edges in g.
func (g *Graph) NumArcs() int {
	total := 0
	for _, es := range g.adj {
		total += len(es)
	}
	return total
}

// EnsureVertex grows the graph so that vertex v exists.
func (g *Graph) EnsureVertex(v int) {
	for len(g.adj) <= v {
		g.adj = append(g.adj, nil)
	}
}

// AddArc adds a directed edge from u to v with weight w. It panics if the
// weight is negative: Dijkstra's algorithm requires non-negative weights and
// indoor distances are never negative.
func (g *Graph) AddArc(u, v int, w float64) {
	if w < 0 {
		panic(fmt.Sprintf("graph: negative edge weight %v on arc %d->%d", w, u, v))
	}
	g.EnsureVertex(u)
	g.EnsureVertex(v)
	g.adj[u] = append(g.adj[u], Edge{To: v, Weight: w})
}

// AddEdge adds an undirected edge between u and v with weight w.
func (g *Graph) AddEdge(u, v int, w float64) {
	g.AddArc(u, v, w)
	g.AddArc(v, u, w)
}

// Neighbors returns the adjacency list of vertex u. The returned slice is
// owned by the graph and must not be modified.
func (g *Graph) Neighbors(u int) []Edge {
	if u < 0 || u >= len(g.adj) {
		return nil
	}
	return g.adj[u]
}

// OutDegree returns the number of outgoing half-edges of u.
func (g *Graph) OutDegree(u int) int { return len(g.Neighbors(u)) }

// MaxOutDegree returns the largest out-degree over all vertices, and 0 for an
// empty graph. The paper highlights that indoor D2D graphs have out-degrees
// of up to 400 compared with 2–4 for road networks.
func (g *Graph) MaxOutDegree() int {
	maxDeg := 0
	for _, es := range g.adj {
		if len(es) > maxDeg {
			maxDeg = len(es)
		}
	}
	return maxDeg
}

// AvgOutDegree returns the average out-degree.
func (g *Graph) AvgOutDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	return float64(g.NumArcs()) / float64(len(g.adj))
}

// EdgeWeight returns the weight of the minimum-weight arc from u to v and
// whether such an arc exists.
func (g *Graph) EdgeWeight(u, v int) (float64, bool) {
	best := Infinity
	found := false
	for _, e := range g.Neighbors(u) {
		if e.To == v && e.Weight < best {
			best = e.Weight
			found = true
		}
	}
	return best, found
}

// Connected reports whether every vertex in the graph is reachable from
// vertex 0 (trivially true for graphs with at most one vertex).
func (g *Graph) Connected() bool {
	n := len(g.adj)
	if n <= 1 {
		return true
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[u] {
			if !seen[e.To] {
				seen[e.To] = true
				count++
				stack = append(stack, e.To)
			}
		}
	}
	return count == n
}

// Components returns the connected components of g (treating arcs as
// undirected for reachability), each sorted ascending, largest first.
func (g *Graph) Components() [][]int {
	n := len(g.adj)
	seen := make([]bool, n)
	var comps [][]int
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		var comp []int
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, e := range g.adj[u] {
				if !seen[e.To] {
					seen[e.To] = true
					stack = append(stack, e.To)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool { return len(comps[i]) > len(comps[j]) })
	return comps
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{adj: make([][]Edge, len(g.adj))}
	for i, es := range g.adj {
		c.adj[i] = append([]Edge(nil), es...)
	}
	return c
}

// MemoryBytes returns an estimate of the memory consumed by the adjacency
// lists, used when reporting index sizes (Fig 8b).
func (g *Graph) MemoryBytes() int64 {
	const edgeBytes = 16 // int + float64
	const sliceHeader = 24
	total := int64(len(g.adj)) * sliceHeader
	for _, es := range g.adj {
		total += int64(cap(es)) * edgeBytes
	}
	return total
}
