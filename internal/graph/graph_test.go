package graph

import (
	"math"
	"math/rand"
	"testing"
)

func buildDiamond() *Graph {
	// 0 --1-- 1 --1-- 3
	//  \             /
	//   --2-- 2 --1--
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(0, 2, 2)
	g.AddEdge(2, 3, 1)
	return g
}

func TestGraphBasics(t *testing.T) {
	g := buildDiamond()
	if got := g.NumVertices(); got != 4 {
		t.Errorf("NumVertices = %d, want 4", got)
	}
	if got := g.NumEdges(); got != 4 {
		t.Errorf("NumEdges = %d, want 4", got)
	}
	if got := g.NumArcs(); got != 8 {
		t.Errorf("NumArcs = %d, want 8", got)
	}
	if got := g.OutDegree(0); got != 2 {
		t.Errorf("OutDegree(0) = %d, want 2", got)
	}
	if got := g.MaxOutDegree(); got != 2 {
		t.Errorf("MaxOutDegree = %d, want 2", got)
	}
	if got := g.AvgOutDegree(); got != 2 {
		t.Errorf("AvgOutDegree = %v, want 2", got)
	}
	if w, ok := g.EdgeWeight(0, 2); !ok || w != 2 {
		t.Errorf("EdgeWeight(0,2) = %v,%v want 2,true", w, ok)
	}
	if _, ok := g.EdgeWeight(1, 2); ok {
		t.Error("EdgeWeight(1,2) should not exist")
	}
}

func TestAddArcPanicsOnNegativeWeight(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AddArc with negative weight should panic")
		}
	}()
	g := New(2)
	g.AddArc(0, 1, -1)
}

func TestEnsureVertexGrowsGraph(t *testing.T) {
	g := New(0)
	g.AddEdge(5, 7, 1.5)
	if g.NumVertices() != 8 {
		t.Errorf("NumVertices = %d, want 8", g.NumVertices())
	}
	if w, ok := g.EdgeWeight(5, 7); !ok || w != 1.5 {
		t.Errorf("EdgeWeight(5,7) = %v,%v", w, ok)
	}
}

func TestConnected(t *testing.T) {
	g := buildDiamond()
	if !g.Connected() {
		t.Error("diamond graph should be connected")
	}
	g.EnsureVertex(10)
	if g.Connected() {
		t.Error("graph with isolated vertex should not be connected")
	}
	if New(0).Connected() != true {
		t.Error("empty graph is trivially connected")
	}
	if New(1).Connected() != true {
		t.Error("single-vertex graph is trivially connected")
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(3, 4, 1)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("Components count = %d, want 3", len(comps))
	}
	if len(comps[0]) != 3 {
		t.Errorf("largest component size = %d, want 3", len(comps[0]))
	}
	if comps[0][0] != 0 || comps[0][1] != 1 || comps[0][2] != 2 {
		t.Errorf("largest component = %v, want [0 1 2]", comps[0])
	}
}

func TestClone(t *testing.T) {
	g := buildDiamond()
	c := g.Clone()
	c.AddEdge(0, 3, 0.1)
	if d := g.ShortestDist(0, 3); math.Abs(d-2) > 1e-9 {
		t.Errorf("original graph modified by clone edit: dist = %v", d)
	}
	if d := c.ShortestDist(0, 3); math.Abs(d-0.1) > 1e-9 {
		t.Errorf("clone dist = %v, want 0.1", d)
	}
}

func TestShortestDistAndPath(t *testing.T) {
	g := buildDiamond()
	if d := g.ShortestDist(0, 3); d != 2 {
		t.Errorf("ShortestDist(0,3) = %v, want 2", d)
	}
	d, path := g.ShortestPath(0, 3)
	if d != 2 {
		t.Errorf("ShortestPath dist = %v, want 2", d)
	}
	want := []int{0, 1, 3}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestShortestPathSameVertex(t *testing.T) {
	g := buildDiamond()
	d, path := g.ShortestPath(2, 2)
	if d != 0 || len(path) != 1 || path[0] != 2 {
		t.Errorf("ShortestPath(2,2) = %v, %v", d, path)
	}
	if d := g.ShortestDist(2, 2); d != 0 {
		t.Errorf("ShortestDist(2,2) = %v", d)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := buildDiamond()
	g.EnsureVertex(9)
	if d := g.ShortestDist(0, 9); d != Infinity {
		t.Errorf("unreachable dist = %v, want Infinity", d)
	}
	d, path := g.ShortestPath(0, 9)
	if d != Infinity || path != nil {
		t.Errorf("unreachable path = %v, %v", d, path)
	}
	if d := g.ShortestDist(-1, 2); d != Infinity {
		t.Errorf("invalid source dist = %v", d)
	}
}

func TestFromSource(t *testing.T) {
	g := buildDiamond()
	dist, prev := g.FromSource(0)
	wantDist := []float64{0, 1, 2, 2}
	for v, want := range wantDist {
		if dist[v] != want {
			t.Errorf("dist[%d] = %v, want %v", v, dist[v], want)
		}
	}
	if p := PathOnPrev(prev, 0, 3); len(p) != 3 || p[0] != 0 || p[2] != 3 {
		t.Errorf("PathOnPrev = %v", p)
	}
	if p := PathOnPrev(prev, 0, 0); len(p) != 1 || p[0] != 0 {
		t.Errorf("PathOnPrev to source = %v", p)
	}
}

func TestToTargets(t *testing.T) {
	// A path graph 0-1-2-3-4-5; asking only for targets {1,2} must not
	// require settling 5.
	g := New(6)
	for i := 0; i < 5; i++ {
		g.AddEdge(i, i+1, 1)
	}
	dist, _ := g.ToTargets(0, []int{1, 2})
	if dist[1] != 1 || dist[2] != 2 {
		t.Errorf("target dists = %v, %v", dist[1], dist[2])
	}
	// The search stops once targets are settled, so far vertices stay at
	// Infinity.
	if dist[5] != Infinity {
		t.Errorf("dist[5] = %v, expected Infinity (not explored)", dist[5])
	}
	// Out-of-range targets are ignored.
	dist, _ = g.ToTargets(0, []int{99, 3})
	if dist[3] != 3 {
		t.Errorf("dist[3] = %v, want 3", dist[3])
	}
}

func TestBounded(t *testing.T) {
	g := New(6)
	for i := 0; i < 5; i++ {
		g.AddEdge(i, i+1, 1)
	}
	got := g.Bounded(0, 2.5)
	if len(got) != 3 {
		t.Fatalf("Bounded settled %d vertices, want 3: %v", len(got), got)
	}
	for v, want := range map[int]float64{0: 0, 1: 1, 2: 2} {
		if got[v] != want {
			t.Errorf("Bounded[%d] = %v, want %v", v, got[v], want)
		}
	}
	if len(g.Bounded(-1, 10)) != 0 {
		t.Error("Bounded with invalid source should return empty map")
	}
}

func TestDijkstraAgainstFloydWarshallRandom(t *testing.T) {
	// Property test: on random graphs Dijkstra's point-to-point distance
	// must equal the Floyd–Warshall all-pairs answer.
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 20; iter++ {
		n := 2 + rng.Intn(30)
		g := New(n)
		// random connected-ish graph: spanning chain plus random extras
		for i := 1; i < n; i++ {
			g.AddEdge(i-1, i, 1+rng.Float64()*10)
		}
		extra := rng.Intn(3 * n)
		for i := 0; i < extra; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v, 1+rng.Float64()*10)
			}
		}
		// Floyd–Warshall
		fw := make([][]float64, n)
		for i := range fw {
			fw[i] = make([]float64, n)
			for j := range fw[i] {
				if i == j {
					fw[i][j] = 0
				} else {
					fw[i][j] = Infinity
				}
			}
		}
		for u := 0; u < n; u++ {
			for _, e := range g.Neighbors(u) {
				if e.Weight < fw[u][e.To] {
					fw[u][e.To] = e.Weight
				}
			}
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if fw[i][k]+fw[k][j] < fw[i][j] {
						fw[i][j] = fw[i][k] + fw[k][j]
					}
				}
			}
		}
		for trial := 0; trial < 10; trial++ {
			s, d := rng.Intn(n), rng.Intn(n)
			got := g.ShortestDist(s, d)
			if math.Abs(got-fw[s][d]) > 1e-6 {
				t.Fatalf("iter %d: dist(%d,%d) = %v, Floyd–Warshall = %v", iter, s, d, got, fw[s][d])
			}
			// Path length must equal the distance.
			gd, path := g.ShortestPath(s, d)
			if gd == Infinity {
				continue
			}
			var sum float64
			for i := 1; i < len(path); i++ {
				w, ok := g.EdgeWeight(path[i-1], path[i])
				if !ok {
					t.Fatalf("path %v contains non-edge %d-%d", path, path[i-1], path[i])
				}
				sum += w
			}
			if math.Abs(sum-gd) > 1e-6 {
				t.Fatalf("path weight %v != dist %v", sum, gd)
			}
		}
	}
}

func TestMinHeapOrdering(t *testing.T) {
	h := newMinHeap(4)
	values := []float64{5, 3, 8, 1, 9, 2, 7}
	for i, v := range values {
		h.Push(i, v)
	}
	prev := -1.0
	for h.Len() > 0 {
		_, d := h.PopMin()
		if d < prev {
			t.Fatalf("heap returned %v after %v", d, prev)
		}
		prev = d
	}
}

func TestMemoryBytesPositive(t *testing.T) {
	g := buildDiamond()
	if g.MemoryBytes() <= 0 {
		t.Error("MemoryBytes should be positive for a non-empty graph")
	}
}

// TestToTargetsIntoMatchesToTargets is the property test for the recycled-
// scratch Dijkstra: a single SearchScratch reused across many runs on random
// graphs must reproduce the fresh-state ToTargets answers exactly, including
// predecessor arrays. This is what makes scratch reuse safe for the matrix
// builder, which runs thousands of localised searches per tree.
func TestToTargetsIntoMatchesToTargets(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var sc SearchScratch
	for iter := 0; iter < 30; iter++ {
		n := 2 + rng.Intn(40)
		g := New(n)
		for i := 1; i < n; i++ {
			g.AddEdge(i-1, i, 1+rng.Float64()*10)
		}
		for i := 0; i < rng.Intn(3*n); i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v, 1+rng.Float64()*10)
			}
		}
		for run := 0; run < 5; run++ {
			src := rng.Intn(n)
			targets := make([]int, 1+rng.Intn(n))
			for i := range targets {
				targets[i] = rng.Intn(n)
			}
			wantDist, wantPrev := g.ToTargets(src, targets)
			gotDist, gotPrev := g.ToTargetsInto(src, targets, &sc)
			for _, v := range targets {
				if gotDist[v] != wantDist[v] {
					t.Fatalf("iter %d run %d: dist[%d] = %v, want %v", iter, run, v, gotDist[v], wantDist[v])
				}
				// The predecessor chain must reach src with the same hops.
				for cur := v; cur != src && wantPrev[cur] != -1; cur = wantPrev[cur] {
					if gotPrev[cur] != wantPrev[cur] {
						t.Fatalf("iter %d run %d: prev[%d] = %d, want %d", iter, run, cur, gotPrev[cur], wantPrev[cur])
					}
				}
			}
		}
	}
}

// TestToTargetsIntoAllocFree checks that warm reuse of a SearchScratch does
// not allocate: after the first run sized the buffers, repeated searches
// reuse them (heap included).
func TestToTargetsIntoAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 64
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(i-1, i, 1+rng.Float64()*10)
	}
	for i := 0; i < 2*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v, 1+rng.Float64()*10)
		}
	}
	targets := []int{0, n / 2, n - 1}
	var sc SearchScratch
	g.ToTargetsInto(0, targets, &sc) // size the buffers
	src := 0
	allocs := testing.AllocsPerRun(100, func() {
		g.ToTargetsInto(src%n, targets, &sc)
		src++
	})
	if allocs != 0 {
		t.Errorf("warm ToTargetsInto allocates %.1f allocs/op, want 0", allocs)
	}
}
