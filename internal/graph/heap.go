package graph

// heapItem is an entry in the distance priority queue.
type heapItem struct {
	vertex int
	dist   float64
}

// minHeap is a binary min-heap of (vertex, distance) pairs ordered by
// distance. It is intentionally simpler than container/heap: Dijkstra only
// needs Push and PopMin and we use lazy deletion for decrease-key, so a
// specialised implementation avoids the interface overhead on the hot path.
type minHeap struct {
	items []heapItem
}

// newMinHeap returns a heap with capacity for n items.
func newMinHeap(n int) *minHeap {
	return &minHeap{items: make([]heapItem, 0, n)}
}

// Len returns the number of items currently in the heap.
func (h *minHeap) Len() int { return len(h.items) }

// Push adds a (vertex, dist) entry.
func (h *minHeap) Push(vertex int, dist float64) {
	h.items = append(h.items, heapItem{vertex: vertex, dist: dist})
	h.up(len(h.items) - 1)
}

// PopMin removes and returns the entry with the smallest distance. It panics
// if the heap is empty.
func (h *minHeap) PopMin() (int, float64) {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	return top.vertex, top.dist
}

func (h *minHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].dist <= h.items[i].dist {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *minHeap) down(i int) {
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && h.items[right].dist < h.items[left].dist {
			smallest = right
		}
		if h.items[i].dist <= h.items[smallest].dist {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}
