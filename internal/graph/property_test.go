package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomConnectedGraph builds a random connected graph from a uint64 seed.
func randomConnectedGraph(seed uint64) *Graph {
	rng := rand.New(rand.NewSource(int64(seed)))
	n := 2 + rng.Intn(40)
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(rng.Intn(i), i, 0.5+rng.Float64()*9.5)
	}
	for i := 0; i < n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v, 0.5+rng.Float64()*9.5)
		}
	}
	return g
}

// TestQuickShortestDistSymmetric: on undirected graphs dist(u,v) == dist(v,u).
func TestQuickShortestDistSymmetric(t *testing.T) {
	f := func(seed uint64, a, b uint8) bool {
		g := randomConnectedGraph(seed)
		n := g.NumVertices()
		u, v := int(a)%n, int(b)%n
		d1 := g.ShortestDist(u, v)
		d2 := g.ShortestDist(v, u)
		return math.Abs(d1-d2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickTriangleInequality: dist(u,w) <= dist(u,v) + dist(v,w).
func TestQuickTriangleInequality(t *testing.T) {
	f := func(seed uint64, a, b, c uint8) bool {
		g := randomConnectedGraph(seed)
		n := g.NumVertices()
		u, v, w := int(a)%n, int(b)%n, int(c)%n
		return g.ShortestDist(u, w) <= g.ShortestDist(u, v)+g.ShortestDist(v, w)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickPathMatchesDistance: the reconstructed path's edge weights sum to
// the reported distance and every hop is a real edge.
func TestQuickPathMatchesDistance(t *testing.T) {
	f := func(seed uint64, a, b uint8) bool {
		g := randomConnectedGraph(seed)
		n := g.NumVertices()
		u, v := int(a)%n, int(b)%n
		d, path := g.ShortestPath(u, v)
		if d == Infinity {
			return path == nil
		}
		if len(path) == 0 || path[0] != u || path[len(path)-1] != v {
			return false
		}
		var sum float64
		for i := 1; i < len(path); i++ {
			w, ok := g.EdgeWeight(path[i-1], path[i])
			if !ok {
				return false
			}
			sum += w
		}
		return math.Abs(sum-d) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickBoundedIsPrefixOfFromSource: every vertex settled by Bounded has
// the same distance as the full single-source run, and nothing beyond the
// radius is reported.
func TestQuickBoundedIsPrefixOfFromSource(t *testing.T) {
	f := func(seed uint64, a uint8, radius float64) bool {
		g := randomConnectedGraph(seed)
		n := g.NumVertices()
		s := int(a) % n
		r := math.Mod(math.Abs(radius), 50)
		full, _ := g.FromSource(s)
		bounded := g.Bounded(s, r)
		for v, d := range bounded {
			if d > r+1e-9 {
				return false
			}
			if math.Abs(full[v]-d) > 1e-9 {
				return false
			}
		}
		// Every vertex within the radius must be present.
		for v, d := range full {
			if d <= r && d != Infinity {
				if _, ok := bounded[v]; !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickToTargetsMatchesFromSource: distances reported for requested
// targets match the full single-source distances.
func TestQuickToTargetsMatchesFromSource(t *testing.T) {
	f := func(seed uint64, a, b, c uint8) bool {
		g := randomConnectedGraph(seed)
		n := g.NumVertices()
		s := int(a) % n
		targets := []int{int(b) % n, int(c) % n}
		full, _ := g.FromSource(s)
		partial, _ := g.ToTargets(s, targets)
		for _, t := range targets {
			if math.Abs(full[t]-partial[t]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
