// Interface-conformance tests: every index in the repository must implement
// the full capability surface of package index uniformly — Distance, Path,
// KNN, Range, MemoryBytes and Stats — and agree with the D2D ground truth.
package index_test

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"viptree/internal/baseline/distaware"
	"viptree/internal/baseline/distmatrix"
	"viptree/internal/baseline/gtree"
	"viptree/internal/baseline/road"
	"viptree/internal/index"
	"viptree/internal/iptree"
	"viptree/internal/model"
	"viptree/internal/venuegen"
)

// Compile-time conformance assertions for all six indexes.
var (
	_ index.ObjectIndexer = (*iptree.Tree)(nil)
	_ index.ObjectIndexer = (*iptree.VIPTree)(nil)
	_ index.ObjectIndexer = (*distmatrix.Matrix)(nil)
	_ index.ObjectIndexer = (*distaware.Index)(nil)
	_ index.ObjectIndexer = (*gtree.Tree)(nil)
	_ index.ObjectIndexer = (*road.Index)(nil)
)

// Compile-time assertions for the snapshot capability: the two tree indexes
// persist their built state (viptree/internal/snapshot), the baselines do
// not.
var (
	_ index.Snapshotter = (*iptree.Tree)(nil)
	_ index.Snapshotter = (*iptree.VIPTree)(nil)
)

// Compile-time assertion for the mutable-object capability: the shared
// IP-Tree/VIP-Tree object index supports live Insert/Delete/Move.
var _ index.MutableObjectIndexer = (*iptree.ObjectIndex)(nil)

// Compile-time assertion for the change-log capability: the shared object
// index funnels its updates through a single-writer log with a change feed.
var _ index.ChangeLogger = (*iptree.ObjectIndex)(nil)

// Compile-time assertions for the batched-distance capability: the two tree
// indexes share climbs across a batch; the baselines answer per query.
var (
	_ index.DistanceBatcher = (*iptree.Tree)(nil)
	_ index.DistanceBatcher = (*iptree.VIPTree)(nil)
)

// Compile-time assertions for the batched-object capability: the shared
// IP-Tree/VIP-Tree object index answers kNN and range batches with shared
// source climbs and reports its climb cache counters.
var (
	_ index.KNNBatcher         = (*iptree.ObjectIndex)(nil)
	_ index.RangeBatcher       = (*iptree.ObjectIndex)(nil)
	_ index.ClimbCacheReporter = (*iptree.ObjectIndex)(nil)
)

func allIndexers(t *testing.T, v *model.Venue) []index.ObjectIndexer {
	t.Helper()
	ip, err := iptree.BuildIPTree(v, iptree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return []index.ObjectIndexer{
		ip,
		iptree.NewVIPTree(iptree.MustBuildIPTree(v, iptree.Options{})),
		distmatrix.Build(v, true),
		distaware.New(v),
		gtree.Build(v, gtree.Options{}),
		road.Build(v, road.Options{}),
	}
}

// TestFullCapabilityConformance drives the entire interface of every index
// through the Full combination and checks the answers against the exact D2D
// ground truth.
func TestFullCapabilityConformance(t *testing.T) {
	v := venuegen.MustBuilding(venuegen.BuildingConfig{
		Name: "conformance", Floors: 2, RoomsPerHallway: 10, Seed: 3,
	})
	rng := rand.New(rand.NewSource(1))
	objects := make([]model.Location, 20)
	for i := range objects {
		objects[i] = v.RandomLocation(rng)
	}
	type pair struct{ s, d model.Location }
	pairs := make([]pair, 25)
	for i := range pairs {
		pairs[i] = pair{v.RandomLocation(rng), v.RandomLocation(rng)}
	}
	points := make([]model.Location, 10)
	for i := range points {
		points[i] = v.RandomLocation(rng)
	}

	for _, ixr := range allIndexers(t, v) {
		full := index.WithObjects(ixr, objects)
		t.Run(full.Name(), func(t *testing.T) {
			if full.Name() == "" {
				t.Error("empty Name()")
			}
			if full.MemoryBytes() <= 0 {
				t.Errorf("MemoryBytes() = %d, want > 0", full.MemoryBytes())
			}
			st := full.Stats()
			if st.Name != full.Name() {
				t.Errorf("Stats().Name = %q, want %q", st.Name, full.Name())
			}
			if st.MemoryBytes != full.MemoryBytes() {
				t.Errorf("Stats().MemoryBytes = %d, want %d", st.MemoryBytes, full.MemoryBytes())
			}
			for _, p := range pairs {
				want := v.D2D().LocationDist(p.s, p.d)
				if got := full.Distance(p.s, p.d); !approxEqual(got, want) {
					t.Fatalf("Distance(%v, %v) = %v, want %v", p.s, p.d, got, want)
				}
				pd, _ := full.Path(p.s, p.d)
				if !approxEqual(pd, want) {
					t.Fatalf("Path(%v, %v) dist = %v, want %v", p.s, p.d, pd, want)
				}
			}
			for _, q := range points {
				knn := full.KNN(q, 5)
				if len(knn) == 0 {
					t.Fatalf("KNN(%v, 5) returned no results", q)
				}
				for i := 1; i < len(knn); i++ {
					if knn[i].Dist < knn[i-1].Dist {
						t.Fatalf("KNN results not ascending: %v", knn)
					}
				}
				within := full.Range(q, 60)
				for _, r := range within {
					if r.Dist > 60+1e-6 {
						t.Fatalf("Range(%v, 60) returned object at distance %v", q, r.Dist)
					}
				}
			}
		})
	}
}

// TestSnapshotterConformance pins down which indexes implement the snapshot
// capability: exactly the IP-Tree and VIP-Tree. Adding the capability to a
// baseline (or losing it on a tree) must be a deliberate change to this
// table, because the snapshot container dispatches on it. For implementers,
// the kind string must be non-empty and the encoded payload non-trivial.
func TestSnapshotterConformance(t *testing.T) {
	v := venuegen.MustBuilding(venuegen.BuildingConfig{
		Name: "snapshotter", Floors: 2, RoomsPerHallway: 8, Seed: 4,
	})
	wantSnapshotter := map[string]bool{
		"IP-Tree":  true,
		"VIP-Tree": true,
		"DistMx":   false,
		"DistAw":   false,
		"G-tree":   false,
		"ROAD":     false,
	}
	seen := map[string]bool{}
	for _, ixr := range allIndexers(t, v) {
		name := ixr.Name()
		seen[name] = true
		want, known := wantSnapshotter[name]
		if !known {
			t.Errorf("index %q missing from the snapshotter conformance table", name)
			continue
		}
		snap, got := ixr.(index.Snapshotter)
		if got != want {
			t.Errorf("index %q: implements Snapshotter = %v, want %v", name, got, want)
			continue
		}
		if !got {
			continue
		}
		if snap.SnapshotKind() == "" {
			t.Errorf("index %q: empty SnapshotKind()", name)
		}
		var buf bytes.Buffer
		if err := snap.EncodeSnapshot(&buf); err != nil {
			t.Errorf("index %q: EncodeSnapshot: %v", name, err)
		} else if buf.Len() == 0 {
			t.Errorf("index %q: EncodeSnapshot wrote no payload", name)
		}
	}
	for name := range wantSnapshotter {
		if !seen[name] {
			t.Errorf("conformance table lists %q but no index reported that name", name)
		}
	}
}

// TestMutableObjectIndexerConformance pins down which object queriers
// implement the live-update capability: exactly those of the IP-Tree and
// VIP-Tree. The table mirrors the paper's claim — object updates on the
// proposed index touch only the affected leaf, while the baselines would
// need a rebuild — so adding or losing the capability must be a deliberate
// change here. For implementers, the three updates must take effect and be
// visible to subsequent queries.
func TestMutableObjectIndexerConformance(t *testing.T) {
	v := venuegen.MustBuilding(venuegen.BuildingConfig{
		Name: "mutable", Floors: 2, RoomsPerHallway: 8, Seed: 5,
	})
	wantMutable := map[string]bool{
		"IP-Tree":  true,
		"VIP-Tree": true,
		"DistMx":   false,
		"DistAw":   false,
		"G-tree":   false,
		"ROAD":     false,
	}
	rng := rand.New(rand.NewSource(2))
	objects := make([]model.Location, 10)
	for i := range objects {
		objects[i] = v.RandomLocation(rng)
	}
	seen := map[string]bool{}
	for _, ixr := range allIndexers(t, v) {
		name := ixr.Name()
		seen[name] = true
		want, known := wantMutable[name]
		if !known {
			t.Errorf("index %q missing from the mutable conformance table", name)
			continue
		}
		oq := ixr.NewObjectQuerier(objects)
		mut, got := oq.(index.MutableObjectIndexer)
		if got != want {
			t.Errorf("index %q: object querier implements MutableObjectIndexer = %v, want %v", name, got, want)
			continue
		}
		if !got {
			continue
		}
		if n := mut.NumObjects(); n != len(objects) {
			t.Errorf("index %q: NumObjects() = %d, want %d", name, n, len(objects))
		}
		// Insert an object at a query point: it must become the 1-NN.
		q := v.RandomLocation(rng)
		id, err := mut.Insert(q)
		if err != nil {
			t.Errorf("index %q: Insert: %v", name, err)
			continue
		}
		if knn := mut.KNN(q, 1); len(knn) != 1 || knn[0].ObjectID != id {
			t.Errorf("index %q: 1-NN after Insert = %v, want object %d", name, knn, id)
		}
		// Move it far away and back: queries must track the location.
		if err := mut.Move(id, v.RandomLocation(rng)); err != nil {
			t.Errorf("index %q: Move: %v", name, err)
		}
		if err := mut.Move(id, q); err != nil {
			t.Errorf("index %q: Move back: %v", name, err)
		}
		if knn := mut.KNN(q, 1); len(knn) != 1 || knn[0].ObjectID != id {
			t.Errorf("index %q: 1-NN after Move = %v, want object %d", name, knn, id)
		}
		// Delete it: it must disappear from results.
		if err := mut.Delete(id); err != nil {
			t.Errorf("index %q: Delete: %v", name, err)
		}
		for _, r := range mut.KNN(q, len(objects)+1) {
			if r.ObjectID == id {
				t.Errorf("index %q: deleted object %d still in kNN results", name, id)
			}
		}
		if n := mut.NumObjects(); n != len(objects) {
			t.Errorf("index %q: NumObjects() after insert+delete = %d, want %d", name, n, len(objects))
		}
	}
	for name := range wantMutable {
		if !seen[name] {
			t.Errorf("mutable conformance table lists %q but no index reported that name", name)
		}
	}
}

// TestChangeLoggerConformance pins down which object queriers route their
// mutations through an update log with a change feed: exactly those of the
// IP-Tree and VIP-Tree (the same set that is mutable at all — a mutable
// querier without a log would silently lose feed consumers, so the
// capability must track MutableObjectIndexer deliberately). For
// implementers, applied updates must advance the log head and be
// observable through the feed.
func TestChangeLoggerConformance(t *testing.T) {
	v := venuegen.MustBuilding(venuegen.BuildingConfig{
		Name: "changelog", Floors: 2, RoomsPerHallway: 8, Seed: 6,
	})
	wantLogged := map[string]bool{
		"IP-Tree":  true,
		"VIP-Tree": true,
		"DistMx":   false,
		"DistAw":   false,
		"G-tree":   false,
		"ROAD":     false,
	}
	rng := rand.New(rand.NewSource(7))
	objects := make([]model.Location, 6)
	for i := range objects {
		objects[i] = v.RandomLocation(rng)
	}
	seen := map[string]bool{}
	for _, ixr := range allIndexers(t, v) {
		name := ixr.Name()
		seen[name] = true
		want, known := wantLogged[name]
		if !known {
			t.Errorf("index %q missing from the change-log conformance table", name)
			continue
		}
		oq := ixr.NewObjectQuerier(objects)
		logged, got := oq.(index.ChangeLogger)
		if got != want {
			t.Errorf("index %q: object querier implements ChangeLogger = %v, want %v", name, got, want)
			continue
		}
		if !got {
			continue
		}
		log := logged.ChangeLog()
		if log == nil {
			t.Errorf("index %q: ChangeLog() returned nil", name)
			continue
		}
		if head := log.HeadSeq(); head != 0 {
			t.Errorf("index %q: fresh log head = %d, want 0", name, head)
		}
		id, err := logged.Insert(v.RandomLocation(rng))
		if err != nil {
			t.Errorf("index %q: Insert: %v", name, err)
			continue
		}
		if err := logged.Delete(id); err != nil {
			t.Errorf("index %q: Delete: %v", name, err)
		}
		if head := log.HeadSeq(); head != 2 {
			t.Errorf("index %q: log head after 2 updates = %d, want 2", name, head)
		}
		if pub := log.PublishedSeq(); pub != log.HeadSeq() {
			t.Errorf("index %q: published seq %d lags head %d at quiescence", name, pub, log.HeadSeq())
		}
		recs, err := log.Records(0, 0)
		if err != nil {
			t.Errorf("index %q: Records: %v", name, err)
		} else if len(recs) != 2 {
			t.Errorf("index %q: log records = %d, want 2", name, len(recs))
		}
	}
	for name := range wantLogged {
		if !seen[name] {
			t.Errorf("change-log conformance table lists %q but no index reported that name", name)
		}
	}
}

// TestObjectBatcherConformance pins down which object queriers implement
// the batched kNN/range capability: exactly those of the IP-Tree and
// VIP-Tree (the indexes whose per-source climbs a batch can share). For
// implementers, the batched answers must match the per-query ones exactly,
// and the capability — together with the climb cache counters — must
// survive the Combine wrapper, because the engine may probe through the
// Full interface.
func TestObjectBatcherConformance(t *testing.T) {
	v := venuegen.MustBuilding(venuegen.BuildingConfig{
		Name: "objbatch", Floors: 2, RoomsPerHallway: 8, Seed: 8,
	})
	wantBatcher := map[string]bool{
		"IP-Tree":  true,
		"VIP-Tree": true,
		"DistMx":   false,
		"DistAw":   false,
		"G-tree":   false,
		"ROAD":     false,
	}
	rng := rand.New(rand.NewSource(9))
	objects := make([]model.Location, 15)
	for i := range objects {
		objects[i] = v.RandomLocation(rng)
	}
	points := make([]model.Location, 8)
	for i := range points {
		points[i] = v.RandomLocation(rng)
	}
	seen := map[string]bool{}
	for _, ixr := range allIndexers(t, v) {
		name := ixr.Name()
		seen[name] = true
		want, known := wantBatcher[name]
		if !known {
			t.Errorf("index %q missing from the object-batcher conformance table", name)
			continue
		}
		oq := ixr.NewObjectQuerier(objects)
		kb, gotKNN := oq.(index.KNNBatcher)
		rb, gotRange := oq.(index.RangeBatcher)
		if gotKNN != want || gotRange != want {
			t.Errorf("index %q: implements KNNBatcher/RangeBatcher = %v/%v, want %v", name, gotKNN, gotRange, want)
			continue
		}
		if !want {
			continue
		}
		knns := make([]index.KNNQuery, len(points))
		ranges := make([]index.RangeQuery, len(points))
		for i, p := range points {
			knns[i] = index.KNNQuery{Q: p, K: 4}
			ranges[i] = index.RangeQuery{Q: p, R: 80}
		}
		knnOut := make([][]index.ObjectResult, len(points))
		rangeOut := make([][]index.ObjectResult, len(points))
		kb.KNNBatch(knns, knnOut, 2)
		rb.RangeBatch(ranges, rangeOut, 2)
		for i, p := range points {
			if got, want := knnOut[i], oq.KNN(p, 4); !objectResultsEqual(got, want) {
				t.Errorf("index %q: KNNBatch[%d] = %v, want %v", name, i, got, want)
			}
			if got, want := rangeOut[i], oq.Range(p, 80); !objectResultsEqual(got, want) {
				t.Errorf("index %q: RangeBatch[%d] = %v, want %v", name, i, got, want)
			}
		}
		// The capability and the climb cache counters must survive Combine.
		full := index.Combine(ixr, oq)
		if _, ok := full.(index.KNNBatcher); !ok {
			t.Errorf("index %q: Combine dropped the KNNBatcher capability", name)
		}
		if _, ok := full.(index.RangeBatcher); !ok {
			t.Errorf("index %q: Combine dropped the RangeBatcher capability", name)
		}
		rep, ok := full.(index.ClimbCacheReporter)
		if !ok {
			t.Errorf("index %q: Combine dropped the ClimbCacheReporter capability", name)
		} else if cc := rep.ClimbCacheStats(); cc.Hits+cc.Misses == 0 {
			t.Errorf("index %q: climb cache counted no lookups after two batches: %+v", name, cc)
		}
		if _, ok := full.(index.DistanceBatcher); !ok {
			t.Errorf("index %q: Combine dropped the DistanceBatcher capability alongside the object batchers", name)
		}
	}
	for name := range wantBatcher {
		if !seen[name] {
			t.Errorf("object-batcher conformance table lists %q but no index reported that name", name)
		}
	}
}

func objectResultsEqual(a, b []index.ObjectResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func approxEqual(a, b float64) bool {
	if a == b {
		return true
	}
	if math.IsInf(a, 1) != math.IsInf(b, 1) {
		return false
	}
	return math.Abs(a-b) <= 1e-6*(1+math.Abs(b))
}
