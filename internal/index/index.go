// Package index defines the query interfaces implemented by every indoor
// index in this repository (IP-Tree, VIP-Tree, the distance matrix, the
// distance-aware model, G-tree and ROAD), so that the benchmark harness and
// the experiment driver can treat them uniformly.
package index

import "viptree/internal/model"

// DistanceQuerier answers shortest-distance and shortest-path queries
// between two indoor locations.
type DistanceQuerier interface {
	// Name identifies the index in benchmark output (e.g. "VIP-Tree").
	Name() string
	// Distance returns the length of the shortest indoor path from s to t.
	Distance(s, t model.Location) float64
	// Path returns the length of the shortest indoor path from s to t and
	// the sequence of doors it passes through (possibly empty when s and t
	// are in the same partition).
	Path(s, t model.Location) (float64, []model.DoorID)
}

// ObjectResult is one object returned by a kNN or range query.
type ObjectResult struct {
	// ObjectID is the position of the object in the object set passed to
	// the index.
	ObjectID int
	// Dist is the indoor distance from the query point to the object.
	Dist float64
}

// ObjectQuerier answers k-nearest-neighbour and range queries over a set of
// indexed objects.
type ObjectQuerier interface {
	// Name identifies the index in benchmark output.
	Name() string
	// KNN returns the k objects nearest to q in ascending distance order.
	KNN(q model.Location, k int) []ObjectResult
	// Range returns every object within distance r of q in ascending
	// distance order.
	Range(q model.Location, r float64) []ObjectResult
}

// Index is the full set of capabilities: construction metadata plus distance
// and object queries.
type Index interface {
	DistanceQuerier
	// MemoryBytes estimates the memory footprint of the index structures
	// (used for the Fig 8b index-size comparison).
	MemoryBytes() int64
}
