// Package index defines the query interfaces implemented by every indoor
// index in this repository (IP-Tree, VIP-Tree, the distance matrix, the
// distance-aware model, G-tree and ROAD).
//
// The interfaces split the capability surface in two halves. The distance
// half (Index) answers point-to-point queries and exposes introspection;
// the object half (ObjectQuerier) answers kNN and range queries over a set
// of objects embedded into the index. Every index implements both halves:
// it satisfies Index directly and yields an ObjectQuerier from
// NewObjectQuerier (the ObjectIndexer interface). Combine glues the two
// halves into the Full interface consumed by the query engine
// (viptree/internal/engine), the benchmark harness and the experiment
// driver.
//
// Indexes may additionally implement two optional capabilities, both pinned
// by conformance_test.go. Snapshotter exports the fully built state so
// viptree/internal/snapshot can persist it and restore it later without
// re-running construction; the IP-Tree and VIP-Tree implement it.
// MutableObjectIndexer marks object queriers whose object set can be
// mutated (Insert/Delete/Move) while queries are served; the IP-Tree and
// VIP-Tree object indexes implement it.
//
// The distance half of every implementation is immutable after construction
// and safe for concurrent queries from multiple goroutines; object queriers
// are likewise safe for concurrent queries, and the mutable ones also for
// queries concurrent with updates.
package index

import (
	"io"

	"viptree/internal/model"
	"viptree/internal/updatelog"
)

// DistanceQuerier answers shortest-distance and shortest-path queries
// between two indoor locations.
type DistanceQuerier interface {
	// Name identifies the index in benchmark output (e.g. "VIP-Tree").
	Name() string
	// Distance returns the length of the shortest indoor path from s to t.
	Distance(s, t model.Location) float64
	// Path returns the length of the shortest indoor path from s to t and
	// the sequence of doors it passes through (possibly empty when s and t
	// are in the same partition).
	Path(s, t model.Location) (float64, []model.DoorID)
}

// Stats is the uniform construction metadata reported by every index:
// the memory footprint plus index-specific structural details (for the
// tree indexes: ρ, fanout, node counts, …).
type Stats struct {
	// Name identifies the index the statistics describe.
	Name string
	// MemoryBytes estimates the memory footprint of the index structures.
	MemoryBytes int64
	// Details holds index-specific structural metrics keyed by a short
	// stable name (e.g. "nodes", "height", "avg_access_doors").
	Details map[string]float64
}

// Index is the distance half of the full capability surface: distance and
// path queries plus introspection. All six indexes implement it.
type Index interface {
	DistanceQuerier
	// MemoryBytes estimates the memory footprint of the index structures
	// (used for the Fig 8b index-size comparison).
	MemoryBytes() int64
	// Stats reports uniform construction metadata.
	Stats() Stats
}

// Snapshotter is an Index whose fully built state can be exported as a
// binary payload and later restored without re-running construction — the
// build-once / serve-many capability. The IP-Tree and VIP-Tree implement it
// (their construction cost is the paper's central trade-off); the expansion
// and matrix baselines do not, either because they have no built state worth
// persisting (DistAw) or because rebuilding is what the paper measures them
// on. Payloads are framed, checksummed and versioned by
// viptree/internal/snapshot; conformance_test.go pins down which indexes
// implement the capability.
type Snapshotter interface {
	Index
	// SnapshotKind returns the stable identifier of the payload schema
	// (e.g. "viptree/v1"), recorded in the snapshot container so that the
	// loader can dispatch — and reject — payloads it does not understand.
	SnapshotKind() string
	// EncodeSnapshot writes the index's built state to w as a
	// self-contained payload decodable by the matching restore function.
	EncodeSnapshot(w io.Writer) error
}

// LocationPair is one (source, target) input of a batched distance query.
type LocationPair struct {
	S, T model.Location
}

// DistanceBatcher is an Index that can answer many shortest-distance
// queries as one batch, amortising work shared between queries (for the
// tree indexes: the leaf-to-LCA climbs of queries whose endpoints share
// leaves). The IP-Tree and VIP-Tree implement the capability;
// conformance_test.go pins down the set.
type DistanceBatcher interface {
	Index
	// DistanceBatch computes Distance(p.S, p.T) for every pair p, writing
	// the results into out, which must be at least len(pairs) long.
	// Results are bit-identical to per-pair Distance calls and do not
	// depend on workers (<= 1 executes on the calling goroutine).
	DistanceBatch(pairs []LocationPair, out []float64, workers int)
}

// KNNQuery is one query of a batched kNN call: the query point and the
// result count.
type KNNQuery struct {
	Q model.Location
	K int
}

// RangeQuery is one query of a batched range call: the query point and the
// distance bound in metres.
type RangeQuery struct {
	Q model.Location
	R float64
}

// ObjectResult is one object returned by a kNN or range query.
type ObjectResult struct {
	// ObjectID is the position of the object in the object set passed to
	// the index.
	ObjectID int
	// Dist is the indoor distance from the query point to the object.
	Dist float64
}

// ObjectQuerier answers k-nearest-neighbour and range queries over a set of
// indexed objects.
type ObjectQuerier interface {
	// Name identifies the index in benchmark output.
	Name() string
	// KNN returns the k objects nearest to q in ascending distance order.
	KNN(q model.Location, k int) []ObjectResult
	// Range returns every object within distance r of q in ascending
	// distance order.
	Range(q model.Location, r float64) []ObjectResult
}

// KNNBatcher is an ObjectQuerier that can answer many kNN queries as one
// batch, amortising work shared between queries (for the tree indexes: the
// Algorithm-2 leaf-to-root climb of queries issued from the same source
// location, computed once per distinct source and reused across the batch).
// The IP-Tree and VIP-Tree object indexes implement the capability;
// conformance_test.go pins down the set.
type KNNBatcher interface {
	ObjectQuerier
	// KNNBatch computes KNN(q.Q, q.K) for every query q, writing each
	// result into the matching slot of out, which must be at least
	// len(queries) long. Results are bit-identical to per-query KNN calls
	// against one consistent state: the whole batch answers from a single
	// pinned epoch, and results do not depend on workers (<= 1 executes on
	// the calling goroutine).
	KNNBatch(queries []KNNQuery, out [][]ObjectResult, workers int)
}

// RangeBatcher is an ObjectQuerier that can answer many range queries as one
// batch; the sharing and consistency contract is that of KNNBatcher. The
// IP-Tree and VIP-Tree object indexes implement the capability;
// conformance_test.go pins down the set.
type RangeBatcher interface {
	ObjectQuerier
	// RangeBatch computes Range(q.Q, q.R) for every query q into out, which
	// must be at least len(queries) long, with the same bit-identity,
	// single-epoch and worker-independence guarantees as KNNBatch.
	RangeBatch(queries []RangeQuery, out [][]ObjectResult, workers int)
}

// ClimbCacheStats is a snapshot of the counters of a climb cache: the
// tree-lifetime cache of per-source climb tables consulted by the batched
// kNN/range path (see KNNBatcher).
type ClimbCacheStats struct {
	// Hits and Misses count cache lookups by batched queries.
	Hits, Misses uint64
	// Evictions counts entries displaced by the clock hand to admit new ones.
	Evictions uint64
	// Entries and Bytes describe the cache's current residency.
	Entries int
	Bytes   int64
	// Sweeps counts the leaf-to-root matrix sweep levels executed by batched
	// climb-table fills — cache hits execute none, which the instrumented
	// tests pin.
	Sweeps uint64
}

// ClimbCacheReporter is implemented by object queriers that maintain a climb
// cache and can report its counters (surfaced through engine.Stats and
// queryrunner output).
type ClimbCacheReporter interface {
	ClimbCacheStats() ClimbCacheStats
}

// ObjectIndexer is an Index that can embed a set of objects, yielding the
// object half of the capability surface. All six indexes implement it.
type ObjectIndexer interface {
	Index
	// NewObjectQuerier embeds the object set into the index and returns
	// the querier answering kNN and range queries over it. Object IDs are
	// the slice positions.
	NewObjectQuerier(objects []model.Location) ObjectQuerier
}

// MutableObjectIndexer is an ObjectQuerier whose embedded object set can be
// mutated in place while queries are being served: objects are inserted,
// deleted and moved with cost bounded by the affected part of the index
// (for the tree indexes: the leaf, or pair of leaves, containing the
// object) instead of a full rebuild. Implementations are safe for
// concurrent use — updates may run while kNN/Range queries are in flight.
//
// The IP-Tree and VIP-Tree object indexes implement the capability (their
// update locality is the paper's central advantage over G-tree-style
// indexes); the baselines do not, and a fleet movement on them forces a
// rebuild through NewObjectQuerier. conformance_test.go pins down the set.
type MutableObjectIndexer interface {
	ObjectQuerier
	// Insert adds an object at the location and returns its ID. IDs of
	// deleted objects may be reused.
	Insert(loc model.Location) (int, error)
	// Delete removes the object with the given ID.
	Delete(id int) error
	// Move relocates the object with the given ID.
	Move(id int, loc model.Location) error
	// NumObjects returns the number of live objects.
	NumObjects() int
}

// ChangeLogger is a MutableObjectIndexer whose mutations are funneled
// through a single-writer update log with an exportable change feed: every
// applied update gets a monotonic, gap-free sequence number, queries serve
// from immutable published epochs (lock-free reads), and external systems
// can tail the ordered record of updates via the log's Subscribe. The
// IP-Tree and VIP-Tree object indexes implement the capability; the
// baselines do not (their object sets are rebuilt, not mutated).
// conformance_test.go pins down the set.
type ChangeLogger interface {
	MutableObjectIndexer
	// ChangeLog returns the update log behind the index.
	ChangeLog() *updatelog.Log
}

// Full is the complete capability surface: Distance, Path, KNN, Range,
// MemoryBytes and Stats. Obtain one with Combine, or by combining an
// ObjectIndexer with its own object querier via WithObjects.
type Full interface {
	Index
	ObjectQuerier
}

// combined glues an Index and an ObjectQuerier into a Full index.
type combined struct {
	Index
	objects ObjectQuerier
}

func (c combined) KNN(q model.Location, k int) []ObjectResult { return c.objects.KNN(q, k) }
func (c combined) Range(q model.Location, r float64) []ObjectResult {
	return c.objects.Range(q, r)
}

// combinedBatcher additionally forwards the batched-distance capability of
// the wrapped index, so capability probing through the Full interface still
// discovers it.
type combinedBatcher struct {
	combined
	batcher DistanceBatcher
}

func (c combinedBatcher) DistanceBatch(pairs []LocationPair, out []float64, workers int) {
	c.batcher.DistanceBatch(pairs, out, workers)
}

// objectBatcher is the batched half of the object capability surface: the
// IP-Tree/VIP-Tree object index implements both batch kinds (and the climb
// cache counters) together, so Combine forwards them as one bundle.
type objectBatcher interface {
	KNNBatcher
	RangeBatcher
	ClimbCacheReporter
}

// combinedObjBatcher forwards the batched kNN/range capability (and the
// climb-cache counters) of the wrapped object querier.
type combinedObjBatcher struct {
	combined
	ob objectBatcher
}

func (c combinedObjBatcher) KNNBatch(queries []KNNQuery, out [][]ObjectResult, workers int) {
	c.ob.KNNBatch(queries, out, workers)
}

func (c combinedObjBatcher) RangeBatch(queries []RangeQuery, out [][]ObjectResult, workers int) {
	c.ob.RangeBatch(queries, out, workers)
}

func (c combinedObjBatcher) ClimbCacheStats() ClimbCacheStats { return c.ob.ClimbCacheStats() }

// combinedFullBatcher forwards both the batched-distance capability of the
// wrapped index and the batched-object capability of the wrapped querier.
type combinedFullBatcher struct {
	combinedObjBatcher
	batcher DistanceBatcher
}

func (c combinedFullBatcher) DistanceBatch(pairs []LocationPair, out []float64, workers int) {
	c.batcher.DistanceBatch(pairs, out, workers)
}

// Combine glues a distance index and an object querier (usually built from
// the same underlying structure) into the Full capability interface. The
// combined index reports the distance index's name and statistics, and
// preserves the wrapped index's DistanceBatcher capability and the wrapped
// querier's KNNBatcher/RangeBatcher capability when present.
func Combine(ix Index, objects ObjectQuerier) Full {
	c := combined{Index: ix, objects: objects}
	b, _ := ix.(DistanceBatcher)
	ob, _ := objects.(objectBatcher)
	switch {
	case b != nil && ob != nil:
		return combinedFullBatcher{combinedObjBatcher: combinedObjBatcher{combined: c, ob: ob}, batcher: b}
	case ob != nil:
		return combinedObjBatcher{combined: c, ob: ob}
	case b != nil:
		return combinedBatcher{combined: c, batcher: b}
	}
	return c
}

// WithObjects embeds the objects into the indexer and returns the Full
// capability interface over the pair.
func WithObjects(ix ObjectIndexer, objects []model.Location) Full {
	return Combine(ix, ix.NewObjectQuerier(objects))
}
