package iptree

import (
	"math/rand"
	"testing"

	"viptree/internal/model"
	"viptree/internal/venuegen"
)

// crossLeafPairs returns query pairs whose endpoints lie in different leaves
// of the tree — the indexed hot path of Algorithm 3 / Section 3.1.2 (same-
// partition and same-leaf queries fall back to direct computation or a D2D
// expansion instead).
func crossLeafPairs(t *Tree, v *model.Venue, n int, seed int64) [][2]model.Location {
	rng := rand.New(rand.NewSource(seed))
	var out [][2]model.Location
	for attempts := 0; len(out) < n && attempts < 10000; attempts++ {
		s, d := v.RandomLocation(rng), v.RandomLocation(rng)
		if t.Leaf(s.Partition) != t.Leaf(d.Partition) {
			out = append(out, [2]model.Location{s, d})
		}
	}
	return out
}

// TestVIPDistanceZeroAlloc is the allocation-regression test for the warm
// VIP-Tree Distance path: once the scratch pool is warm, cross-leaf distance
// queries must not allocate at all.
func TestVIPDistanceZeroAlloc(t *testing.T) {
	v := venuegen.MustBuilding(venuegen.BuildingConfig{
		Name: "alloc", Floors: 4, RoomsPerHallway: 16, Seed: 1,
	})
	skipUnderRace(t)
	vt := MustBuildVIPTree(v, Options{})
	pairs := crossLeafPairs(vt.Tree, v, 32, 2)
	if len(pairs) == 0 {
		t.Skip("no cross-leaf pairs in this venue")
	}
	// Warm the scratch pool across all pairs before measuring.
	for _, p := range pairs {
		vt.Distance(p[0], p[1])
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		p := pairs[i%len(pairs)]
		i++
		vt.Distance(p[0], p[1])
	})
	if allocs != 0 {
		t.Errorf("warm VIP-Tree Distance allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestVIPDistanceZeroAllocAnyPair extends the zero-alloc guarantee to
// arbitrary location pairs: the same-partition and same-leaf fallbacks (a
// direct computation and a pooled D2D expansion) must not allocate either.
func TestVIPDistanceZeroAllocAnyPair(t *testing.T) {
	v := venuegen.MustBuilding(venuegen.BuildingConfig{
		Name: "alloc-any", Floors: 4, RoomsPerHallway: 16, Seed: 1,
	})
	skipUnderRace(t)
	vt := MustBuildVIPTree(v, Options{})
	rng := rand.New(rand.NewSource(4))
	pairs := make([][2]model.Location, 64)
	for i := range pairs {
		pairs[i] = [2]model.Location{v.RandomLocation(rng), v.RandomLocation(rng)}
	}
	for _, p := range pairs {
		vt.Distance(p[0], p[1])
	}
	i := 0
	allocs := testing.AllocsPerRun(300, func() {
		p := pairs[i%len(pairs)]
		i++
		vt.Distance(p[0], p[1])
	})
	if allocs != 0 {
		t.Errorf("warm VIP-Tree Distance (mixed pairs) allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestIPDistanceZeroAlloc asserts the same property for the plain IP-Tree
// Distance path, which shares the pooled dense scratch.
func TestIPDistanceZeroAlloc(t *testing.T) {
	v := venuegen.MustBuilding(venuegen.BuildingConfig{
		Name: "alloc-ip", Floors: 4, RoomsPerHallway: 16, Seed: 1,
	})
	skipUnderRace(t)
	tree := MustBuildIPTree(v, Options{})
	pairs := crossLeafPairs(tree, v, 32, 2)
	if len(pairs) == 0 {
		t.Skip("no cross-leaf pairs in this venue")
	}
	for _, p := range pairs {
		tree.Distance(p[0], p[1])
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		p := pairs[i%len(pairs)]
		i++
		tree.Distance(p[0], p[1])
	})
	if allocs != 0 {
		t.Errorf("warm IP-Tree Distance allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestIPPathAllocsResultSliceOnly is the allocation-regression test for the
// warm IP-Tree Path hot path: the via-chain unwind, the partial path and
// the iterative Algorithm-4 expansion all run on pooled scratch buffers
// (pathScratch), so the only allocation of a warm cross-leaf query is the
// returned door slice.
func TestIPPathAllocsResultSliceOnly(t *testing.T) {
	v := venuegen.MustBuilding(venuegen.BuildingConfig{
		Name: "alloc-path", Floors: 4, RoomsPerHallway: 16, Seed: 1,
	})
	skipUnderRace(t)
	tree := MustBuildIPTree(v, Options{})
	pairs := crossLeafPairs(tree, v, 32, 2)
	if len(pairs) == 0 {
		t.Skip("no cross-leaf pairs in this venue")
	}
	for _, p := range pairs {
		if _, doors := tree.Path(p[0], p[1]); len(doors) == 0 {
			t.Fatal("cross-leaf Path returned no doors; venue unsuitable for the alloc test")
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		p := pairs[i%len(pairs)]
		i++
		tree.Path(p[0], p[1])
	})
	if allocs > 1 {
		t.Errorf("warm IP-Tree Path allocates %.1f allocs/op, want <= 1 (the result slice)", allocs)
	}
}

// TestVIPPathAllocsResultSliceOnly asserts the same property for the
// VIP-Tree Path, whose per-door next-hop expansion shares the pooled
// buffers.
func TestVIPPathAllocsResultSliceOnly(t *testing.T) {
	v := venuegen.MustBuilding(venuegen.BuildingConfig{
		Name: "alloc-path-vip", Floors: 4, RoomsPerHallway: 16, Seed: 1,
	})
	skipUnderRace(t)
	vt := MustBuildVIPTree(v, Options{})
	pairs := crossLeafPairs(vt.Tree, v, 32, 2)
	if len(pairs) == 0 {
		t.Skip("no cross-leaf pairs in this venue")
	}
	for _, p := range pairs {
		if _, doors := vt.Path(p[0], p[1]); len(doors) == 0 {
			t.Fatal("cross-leaf Path returned no doors; venue unsuitable for the alloc test")
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		p := pairs[i%len(pairs)]
		i++
		vt.Path(p[0], p[1])
	})
	if allocs > 1 {
		t.Errorf("warm VIP-Tree Path allocates %.1f allocs/op, want <= 1 (the result slice)", allocs)
	}
}

// TestKNNAllocsResultSliceOnly is the allocation-regression test for the
// warm kNN path (Algorithm 5): once the scratch pools are warm, the only
// allocation of a query is the returned result slice — the traversal's
// node-distance cache, priority queue, per-object marks and result
// accumulator all live in pooled epoch-stamped dense scratch.
func TestKNNAllocsResultSliceOnly(t *testing.T) {
	v := venuegen.MustBuilding(venuegen.BuildingConfig{
		Name: "alloc-knn", Floors: 4, RoomsPerHallway: 16, Seed: 1,
	})
	skipUnderRace(t)
	vt := MustBuildVIPTree(v, Options{})
	rng := rand.New(rand.NewSource(3))
	objs := make([]model.Location, 60)
	for i := range objs {
		objs[i] = v.RandomLocation(rng)
	}
	oi := vt.IndexObjects(objs)
	points := make([]model.Location, 64)
	for i := range points {
		points[i] = v.RandomLocation(rng)
	}
	for _, q := range points {
		if len(oi.KNN(q, 5)) == 0 {
			t.Fatal("kNN returned no results; venue/objects unsuitable for the alloc test")
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		q := points[i%len(points)]
		i++
		oi.KNN(q, 5)
	})
	if allocs > 1 {
		t.Errorf("warm KNN allocates %.1f allocs/op, want <= 1 (the result slice)", allocs)
	}
}

// TestRangeAllocsResultSliceOnly asserts the same property for range
// queries, which share the branch-and-bound traversal.
func TestRangeAllocsResultSliceOnly(t *testing.T) {
	v := venuegen.MustBuilding(venuegen.BuildingConfig{
		Name: "alloc-range", Floors: 4, RoomsPerHallway: 16, Seed: 1,
	})
	skipUnderRace(t)
	vt := MustBuildVIPTree(v, Options{})
	rng := rand.New(rand.NewSource(5))
	objs := make([]model.Location, 60)
	for i := range objs {
		objs[i] = v.RandomLocation(rng)
	}
	oi := vt.IndexObjects(objs)
	points := make([]model.Location, 64)
	for i := range points {
		points[i] = v.RandomLocation(rng)
	}
	for _, q := range points {
		oi.Range(q, 200)
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		q := points[i%len(points)]
		i++
		oi.Range(q, 200)
	})
	if allocs > 1 {
		t.Errorf("warm Range allocates %.1f allocs/op, want <= 1 (the result slice)", allocs)
	}
}

// skipUnderRace skips allocation-count assertions when the race detector is
// active: sync.Pool drops items under the race detector, so pooled scratch
// appears to allocate.
func skipUnderRace(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
}
