package iptree

import (
	"slices"

	"viptree/internal/model"
)

// This file implements the arena-packed serving layout. A freshly built (or
// snapshot-restored) tree stores every node's distance matrix in its own
// heap allocations; pack() freezes that state into a handful of per-tree
// contiguous slabs — one []float64 for all matrix distances, one []int32 for
// all positional next-hops, one []model.DoorID for every sorted door set —
// and repoints the per-node structures at views into them. Queries then walk
// a few large arrays instead of hundreds of scattered allocations, which is
// where the warm Distance/Path/kNN paths spend their memory traffic.
//
// pack() additionally precomputes the positional lookup tables the climb
// loops of Algorithms 2/3/5 need, so the warm query paths perform no
// doorIndex binary searches at all:
//
//   - adPosInOwn[n][i]: position of node n's i-th access door in n's own
//     matrix (column position for leaves, row==column position for the
//     square non-leaf matrices);
//   - adPosInParent[n][i]: position of node n's i-th access door among the
//     rows (== columns) of the parent's matrix;
//   - supRowInLeaf[p][i]: row position of partition p's i-th superior door
//     in the matrix of the leaf containing p.
//
// Packing never changes query results: every table is derived from the same
// door sets the binary searches would consult (pack_test.go pins the
// equivalence on random venues), and the snapshot payload is computed by
// expanding the arenas back into the per-node form, byte-identical to what
// an unpacked tree exports.

// packed holds the frozen arenas and positional tables of a packed tree.
type packed struct {
	// dist is the distance slab: every matrix's cells, row-major, in node
	// order. Each Matrix.dist is a view into it.
	dist []float64
	// next is the next-hop slab, parallel to dist, in the positional int32
	// encoding of Matrix (row ordinal, -1 for NoDoor, -2-id escape).
	next []int32
	// doors is the door-set slab: access doors, matrix row/column sets, leaf
	// door sets and superior doors, deduplicated where the builder aliases
	// them (a leaf matrix's columns are the node's access doors, a non-leaf
	// matrix's rows are its columns).
	doors []model.DoorID
	// pos is the positional-table slab backing the three views below.
	pos []int32

	adPosInOwn    [][]int32
	adPosInParent [][]int32

	// supDoorOff and supPosOff delimit partition p's superior doors within
	// the doors slab and their leaf-matrix row positions within the pos
	// slab: two (P+1)-length offset arrays instead of P slice headers each
	// (partitions vastly outnumber nodes, so per-partition headers would
	// dominate the whole report on venues with many small rooms).
	supDoorOff []int32
	supPosOff  []int32

	// leavesOfDoor and accessNodesOfDoor are the per-door node lists in
	// compressed (CSR) form: two int32 slabs replace a slice header and an
	// 8-byte element array per door. Path decomposition consults both on
	// every edge, so besides the memory halving they keep the candidate
	// walk on two cache-friendly slabs.
	leavesOfDoor      doorCSR
	accessNodesOfDoor doorCSR
}

// doorCSR is a compressed per-door node-list table: door d's nodes are
// data[off[d]:off[d+1]], stored as int32 node IDs.
type doorCSR struct {
	off  []int32
	data []int32
}

// of returns door d's node list.
func (c *doorCSR) of(d model.DoorID) []int32 { return c.data[c.off[d]:c.off[d+1]] }

// empty reports whether door d has no nodes.
func (c *doorCSR) empty(d model.DoorID) bool { return c.off[d] == c.off[d+1] }

// bytes is the exact slab size.
func (c *doorCSR) bytes() int64 { return int64(len(c.off)+len(c.data)) * 4 }

// packDoorCSR compresses a per-door slice-of-slices table.
func packDoorCSR(lists [][]NodeID) doorCSR {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	c := doorCSR{off: make([]int32, len(lists)+1), data: make([]int32, 0, total)}
	for d, l := range lists {
		c.off[d] = int32(len(c.data))
		for _, n := range l {
			c.data = append(c.data, int32(n))
		}
	}
	c.off[len(lists)] = int32(len(c.data))
	return c
}

// packSpan records where a door set landed in the doors slab; alias spans
// (negative off) share another span instead of occupying slab space.
type packSpan struct {
	off int32
	n   int32
}

const (
	spanAliasAccess = -2 // span aliases the node's packed access doors
	spanAliasRows   = -3 // span aliases the node's packed matrix rows
)

// pack freezes the tree into the arena layout. It is called once, at the end
// of construction and of snapshot restore; the tree must not be mutated
// afterwards (object updates live outside the tree and are unaffected).
func (t *Tree) pack() {
	numNodes := len(t.nodes)

	// Pass 1: append every door set to the slab, recording spans. Appending
	// first and slicing views after the slab is final avoids any aliasing
	// hazard from slab growth.
	var doors []model.DoorID
	push := func(ds []model.DoorID) packSpan {
		off := len(doors)
		doors = append(doors, ds...)
		return packSpan{off: int32(off), n: int32(len(ds))}
	}
	adSpan := make([]packSpan, numNodes)
	rowSpan := make([]packSpan, numNodes)
	colSpan := make([]packSpan, numNodes)
	leafSpan := make([]packSpan, numNodes)
	cells := 0
	for i := range t.nodes {
		n := &t.nodes[i]
		adSpan[i] = push(n.AccessDoors)
		m := n.Matrix
		if m == nil {
			continue
		}
		cells += len(m.dist)
		rowSpan[i] = push(m.rows)
		switch {
		case slices.Equal(m.cols, n.AccessDoors):
			colSpan[i] = packSpan{off: spanAliasAccess, n: int32(len(m.cols))}
		case slices.Equal(m.cols, m.rows):
			colSpan[i] = packSpan{off: spanAliasRows, n: int32(len(m.cols))}
		default:
			colSpan[i] = push(m.cols)
		}
		if n.IsLeaf() {
			if slices.Equal(t.doorsOfLeaf[i], m.rows) {
				leafSpan[i] = packSpan{off: spanAliasRows, n: int32(len(m.rows))}
			} else {
				leafSpan[i] = push(t.doorsOfLeaf[i])
			}
		}
	}
	// Superior doors are pushed consecutively per partition, so a single
	// offset array delimits them within the doors slab.
	supDoorOff := make([]int32, len(t.superiorDoors)+1)
	for p := range t.superiorDoors {
		supDoorOff[p] = int32(len(doors))
		doors = append(doors, t.superiorDoors[p]...)
	}
	supDoorOff[len(t.superiorDoors)] = int32(len(doors))

	pk := &packed{
		dist:       make([]float64, 0, cells),
		next:       make([]int32, 0, cells),
		doors:      doors,
		supDoorOff: supDoorOff,
	}
	view := func(s packSpan, access, rows []model.DoorID) []model.DoorID {
		switch s.off {
		case spanAliasAccess:
			return access
		case spanAliasRows:
			return rows
		default:
			return pk.doors[s.off : int(s.off)+int(s.n) : int(s.off)+int(s.n)]
		}
	}

	// Pass 2: repoint the per-node structures at slab views and copy the
	// matrix cells into the dist/next slabs.
	for i := range t.nodes {
		n := &t.nodes[i]
		n.AccessDoors = view(adSpan[i], nil, nil)
		m := n.Matrix
		if m == nil {
			continue
		}
		rows := view(rowSpan[i], nil, nil)
		m.rows = rows
		m.cols = view(colSpan[i], n.AccessDoors, rows)
		m.rowIdx = newDoorIndex(m.rows)
		m.colIdx = newDoorIndex(m.cols)
		off := len(pk.dist)
		pk.dist = append(pk.dist, m.dist...)
		pk.next = append(pk.next, m.next...)
		m.dist = pk.dist[off:len(pk.dist):len(pk.dist)]
		m.next = pk.next[off:len(pk.next):len(pk.next)]
		if n.IsLeaf() {
			t.doorsOfLeaf[i] = view(leafSpan[i], nil, rows)
		}
	}
	// The views handed out above stay valid only if the slabs never grew
	// past their pre-counted capacities; a drift between the counting and
	// filling passes would silently orphan every repointed view.
	if len(pk.dist) != cells || len(pk.next) != cells {
		panic("iptree: pack: matrix slab count drifted from pass 1")
	}

	pk.leavesOfDoor = packDoorCSR(t.leavesOfDoor)
	pk.accessNodesOfDoor = packDoorCSR(t.accessNodesOfDoor)
	t.leavesOfDoor = nil
	t.accessNodesOfDoor = nil

	t.pk = pk
	t.packPositions()
	// The superior-door lists now live in the doors slab (supDoorOff); the
	// per-partition slices are dropped, and SuperiorDoors serves subslices
	// of the slab.
	t.superiorDoors = nil
}

// packPositions fills the positional lookup tables, one contiguous int32
// slab with per-node/per-partition views.
func (t *Tree) packPositions() {
	pk := t.pk
	total := 0
	for i := range t.nodes {
		total += 2 * len(t.nodes[i].AccessDoors)
	}
	for p := range t.superiorDoors {
		total += len(t.superiorDoors[p])
	}
	pk.pos = make([]int32, 0, total)
	pk.adPosInOwn = make([][]int32, len(t.nodes))
	pk.adPosInParent = make([][]int32, len(t.nodes))
	pk.supPosOff = make([]int32, len(t.superiorDoors)+1)

	fill := func(doors []model.DoorID, find func(model.DoorID) (int, bool)) []int32 {
		off := len(pk.pos)
		for _, d := range doors {
			p := int32(-1)
			if find != nil {
				if i, ok := find(d); ok {
					p = int32(i)
				}
			}
			pk.pos = append(pk.pos, p)
		}
		return pk.pos[off:len(pk.pos):len(pk.pos)]
	}
	for i := range t.nodes {
		n := &t.nodes[i]
		var own func(model.DoorID) (int, bool)
		if n.Matrix != nil {
			if n.IsLeaf() {
				own = n.Matrix.colIndexOf
			} else {
				own = n.Matrix.rowIndexOf
			}
		}
		pk.adPosInOwn[i] = fill(n.AccessDoors, own)
		var inParent func(model.DoorID) (int, bool)
		if n.Parent != invalidNode && t.nodes[n.Parent].Matrix != nil {
			inParent = t.nodes[n.Parent].Matrix.rowIndexOf
		}
		pk.adPosInParent[i] = fill(n.AccessDoors, inParent)
	}
	for p := range t.superiorDoors {
		leaf := t.leafOfPartition[p]
		var find func(model.DoorID) (int, bool)
		if leaf != invalidNode && t.nodes[leaf].Matrix != nil {
			find = t.nodes[leaf].Matrix.rowIndexOf
		}
		pk.supPosOff[p] = int32(len(pk.pos))
		fill(t.superiorDoors[p], find)
	}
	pk.supPosOff[len(t.superiorDoors)] = int32(len(pk.pos))
	// Same guard as pack(): growth past the pre-count would orphan the
	// position views taken during the fill.
	if len(pk.pos) != total {
		panic("iptree: pack: position slab count drifted from pre-count")
	}
}

// superiorDoorsOf returns partition p's superior doors as a view of the
// doors slab.
func (pk *packed) superiorDoorsOf(p model.PartitionID) []model.DoorID {
	return pk.doors[pk.supDoorOff[p]:pk.supDoorOff[p+1]]
}

// supRowsOf returns the leaf-matrix row positions of partition p's superior
// doors as a view of the pos slab (parallel to superiorDoorsOf).
func (pk *packed) supRowsOf(p model.PartitionID) []int32 {
	return pk.pos[pk.supPosOff[p]:pk.supPosOff[p+1]]
}

// vipPacked holds the arena form of the VIP-Tree's per-door materialised
// ancestor tables: the node lists of all doors concatenated into one int32
// slab, and the (distance, first-door) entries split into a float64 slab and
// an int32 slab (the distance slab is the one the Distance hot path scans,
// so splitting doubles its cache density). Entries of door d start at
// entryOff[d] and follow the node list order, one block of
// len(AccessDoors(node)) entries per node.
type vipPacked struct {
	nodes    []int32   // concatenated ancestor node lists, door order
	nodesOff []int32   // len numDoors+1: door d's nodes are nodes[nodesOff[d]:nodesOff[d+1]]
	dist     []float64 // concatenated entry distances
	next     []int32   // parallel first-door IDs (-1 = NoDoor)
	entryOff []int32   // len numDoors+1: door d's entries start at entryOff[d]
}

// packVIP freezes the transient per-door entry structs produced by
// materialisation (or snapshot restore) into the VIP arena and drops them.
func (vt *VIPTree) packVIP(entries []doorEntries) {
	numNodes, numEntries := 0, 0
	for d := range entries {
		numNodes += len(entries[d].nodes)
		for _, es := range entries[d].perNode {
			numEntries += len(es)
		}
	}
	pk := &vipPacked{
		nodes:    make([]int32, 0, numNodes),
		nodesOff: make([]int32, len(entries)+1),
		dist:     make([]float64, 0, numEntries),
		next:     make([]int32, 0, numEntries),
		entryOff: make([]int32, len(entries)+1),
	}
	for d := range entries {
		de := &entries[d]
		pk.nodesOff[d] = int32(len(pk.nodes))
		pk.entryOff[d] = int32(len(pk.dist))
		for i, n := range de.nodes {
			pk.nodes = append(pk.nodes, int32(n))
			for _, e := range de.perNode[i] {
				pk.dist = append(pk.dist, e.dist)
				pk.next = append(pk.next, int32(e.next))
			}
		}
	}
	pk.nodesOff[len(entries)] = int32(len(pk.nodes))
	pk.entryOff[len(entries)] = int32(len(pk.dist))
	vt.vpk = pk
}

// arenaBytes returns the exact size of the packed VIP slabs.
func (pk *vipPacked) arenaBytes() int64 {
	return int64(len(pk.nodes))*4 + int64(len(pk.nodesOff))*4 +
		int64(len(pk.dist))*8 + int64(len(pk.next))*4 + int64(len(pk.entryOff))*4
}

// arenaBytes returns the exact size of the packed slabs plus the headers of
// the per-node views they replace.
func (pk *packed) arenaBytes() int64 {
	total := int64(len(pk.dist))*8 + int64(len(pk.next))*4 +
		int64(len(pk.doors))*sizeofDoorID + int64(len(pk.pos))*4
	total += pk.leavesOfDoor.bytes() + pk.accessNodesOfDoor.bytes()
	total += int64(len(pk.supDoorOff)+len(pk.supPosOff)) * 4
	views := int64(len(pk.adPosInOwn) + len(pk.adPosInParent))
	total += views * sizeofSliceHeader
	return total
}
