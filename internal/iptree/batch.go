package iptree

import (
	"slices"
	"sort"

	"viptree/internal/index"
	"viptree/internal/model"
)

// This file implements the batched shortest-distance path
// (index.DistanceBatcher) of the IP-Tree and VIP-Tree. The batch is resolved
// in two parallel phases over shared read-only state:
//
//  1. Endpoint tables. The batch's distinct source and target locations are
//     identified, and for each one an Algorithm-2 table (distances to the
//     access doors of an ancestor) is computed once per *ancestor level the
//     batch actually needs* — a clustered workload with k distinct sources
//     pays for k climbs instead of one per query. On the IP-Tree the levels
//     of one endpoint share a single climb (each level extends the one
//     below); on the VIP-Tree each needed level is one sweep over the
//     materialised per-door entries.
//
//  2. Folded pairing sweeps. Queries are grouped by their pair of LCA
//     children (ns, nt) — all (source leaf, target leaf) combinations under
//     the same pair share it — and the cross-LCA pairing of Algorithm 3,
//     min over (a, b) of (ds[a] + M[a][b]) + dt[b], is factored as
//     min over b of u[b] + dt[b] with u[b] = min over a of ds[a] + M[a][b].
//     The fold u is computed once per distinct source per group and every
//     query then reduces to one branch-light O(ρ) sweep instead of the
//     O(ρ²) double loop. The factoring is exact, not approximate: for fixed
//     b, x -> x + dt[b] is monotone (no NaNs can arise from non-negative
//     and Infinite operands), so adding dt[b] to the minimum over a yields
//     bit-for-bit the minimum of the original sums, with the same
//     left-to-right association.
//
// Results are bit-identical to per-pair Distance calls: every combine visits
// the same candidate sums in an order-independent min reduction (only the
// distance value is needed, not the realising pair), and a candidate routed
// through an unreachable entry can never win the strict < because Infinite
// is math.MaxFloat64 — adding a finite distance to it rounds back to
// MaxFloat64 (and MaxFloat64+MaxFloat64 overflows to +Inf), neither of which
// beats a best that starts at Infinite. Both phases write disjoint state per
// work item (each endpoint owns its arena block, each query its out slot),
// so results do not depend on the worker count.

// trivialChunk is the number of same-leaf (D2D fallback) queries handed to a
// worker as one work item.
const trivialChunk = 64

// climbSteps is the carry-over structure of a climb path: per climbed level,
// the mapping from each parent access door to its position in the child's
// access-door list (-1 when absent).
type climbSteps struct {
	off   []int32 // len(levels climbed)+1 offsets into carry
	carry []int32
}

// leafClimb caches the ancestor chain of one distinct (source or target)
// leaf of the batch: levels[0] is the leaf itself, levels[k] its k-th
// ancestor, off the prefix sums of the ancestors' access-door counts (so a
// level-k table occupies [off[k], off[k+1]) of an endpoint's arena block),
// and steps the carry-over mappings of the climb. The chain is extended
// lazily to the deepest level any group needs.
type leafClimb struct {
	levels []NodeID
	off    []int32 // len(levels)+1
	steps  climbSteps
}

// ensureLevels extends lc's ancestor chain until it covers level m.
func (t *Tree) ensureLevels(lc *leafClimb, m int32) {
	for int32(len(lc.levels))-1 < m {
		child := lc.levels[len(lc.levels)-1]
		parent := t.nodes[child].Parent
		childAD := t.nodes[child].AccessDoors
		for _, d := range t.nodes[parent].AccessDoors {
			k := int32(-1)
			for ki, cd := range childAD {
				if cd == d {
					k = int32(ki)
					break
				}
			}
			lc.steps.carry = append(lc.steps.carry, k)
		}
		lc.steps.off = append(lc.steps.off, int32(len(lc.steps.carry)))
		lc.levels = append(lc.levels, parent)
		lc.off = append(lc.off, lc.off[len(lc.off)-1]+int32(len(t.nodes[parent].AccessDoors)))
	}
}

// endpointSide holds the distinct endpoints of one side (all sources or all
// targets) of a batch and their computed tables.
type endpointSide struct {
	// id maps each batch index to its distinct-endpoint index (set only for
	// cross-leaf queries).
	id     []int32
	locs   []model.Location
	leafOf []int32 // distinct endpoint -> index into batchState.leaves
	// need is the bitmask of ancestor levels some group requires of this
	// endpoint; maxLvl its highest set bit. When maxLvl does not fit the
	// mask (never in practice: it would need a tree of height > 63), every
	// level up to maxLvl is computed.
	need   []uint64
	maxLvl []int32
	// base[e] is the arena offset of endpoint e's block; the level-k table
	// lives at base[e] + leafClimb.off[k].
	base  []int32
	arena []float64
	// Partition-indexed dedup: equal locations share a partition, so each
	// partition chains its distinct locations (head[p] -> link[e] -> ...).
	// stamp/epoch make the reset O(1) per batch instead of O(partitions) —
	// head[p] is only valid when stamp[p] equals the current epoch.
	head  []int32
	stamp []uint32
	link  []int32
	epoch uint32
}

func (s *endpointSide) reset(n, numPartitions int) {
	if cap(s.id) < n {
		s.id = make([]int32, n)
	}
	s.id = s.id[:n]
	s.locs = s.locs[:0]
	s.leafOf = s.leafOf[:0]
	s.need = s.need[:0]
	s.maxLvl = s.maxLvl[:0]
	s.base = s.base[:0]
	s.link = s.link[:0]
	if len(s.head) < numPartitions {
		s.head = make([]int32, numPartitions)
		s.stamp = make([]uint32, numPartitions)
		s.epoch = 0
	}
	s.epoch++
	if s.epoch == 0 { // wraparound: invalidate all stamps once
		clear(s.stamp)
		s.epoch = 1
	}
}

// endpoint returns the distinct-endpoint index of loc, registering it on
// first sight.
func (s *endpointSide) endpoint(loc model.Location, leafIdx int32) int32 {
	p := loc.Partition
	fresh := s.stamp[p] != s.epoch
	if !fresh {
		for e := s.head[p]; e >= 0; e = s.link[e] {
			if s.locs[e] == loc {
				return e
			}
		}
	}
	e := int32(len(s.locs))
	s.locs = append(s.locs, loc)
	s.leafOf = append(s.leafOf, leafIdx)
	s.need = append(s.need, 0)
	s.maxLvl = append(s.maxLvl, 0)
	if fresh {
		s.link = append(s.link, -1)
		s.stamp[p] = s.epoch
	} else {
		s.link = append(s.link, s.head[p])
	}
	s.head[p] = e
	return e
}

// mark records that level lvl of endpoint e is needed.
func (s *endpointSide) mark(e, lvl int32) {
	if lvl < 64 {
		s.need[e] |= 1 << uint(lvl)
	}
	if lvl > s.maxLvl[e] {
		s.maxLvl[e] = lvl
	}
}

// batchState is the shared plan of one batch: the classified and grouped
// queries, the per-group tree nodes, the distinct endpoints of both sides
// and the leaf ancestor chains. It is built single-threaded, read-only
// during the parallel phases, and recycled through Tree.batchPool.
type batchState struct {
	order   []int32 // cross-leaf query indices, group by group
	groups  []int32 // start offset of every group in order, plus sentinel
	trivial []int32 // same-leaf queries answered by the D2D fallback

	// Per group: the LCA, the LCA children on both sides, the climb level
	// of each child above its leaf, and the leafClimb of each side.
	gLCA, gNS, gNT []NodeID
	gLvlS, gLvlD   []int32
	gLeafS, gLeafD []int32

	// Supergroups: runs of groups sharing the same (ns, nt) pair — and
	// therefore the same LCA matrix positions and source folds. sgOrder
	// lists group indices sorted by (ns, nt); sgStarts holds the start of
	// every run, plus a final sentinel.
	sgOrder  []int32
	sgStarts []int32

	leaves  []leafClimb
	leafIdx map[NodeID]int32

	src, tgt endpointSide

	leafS, leafD []NodeID // per batch index (cross-leaf queries only)
	keys         []uint64 // packed (leafS, leafD, index) sort keys

	// srcShared reports whether the batch repeats source locations often
	// enough for the folded pairing sweep to pay for itself; otherwise the
	// sweeps pair directly.
	srcShared bool
}

func (t *Tree) getBatchState() *batchState {
	st, _ := t.batchPool.Get().(*batchState)
	if st == nil {
		st = &batchState{leafIdx: make(map[NodeID]int32)}
	}
	return st
}

func (t *Tree) putBatchState(st *batchState) { t.batchPool.Put(st) }

// leafFor returns the leafClimb index of leaf, registering it on first
// sight.
func (st *batchState) leafFor(t *Tree, leaf NodeID) int32 {
	if li, ok := st.leafIdx[leaf]; ok {
		return li
	}
	li := int32(len(st.leaves))
	st.leafIdx[leaf] = li
	if cap(st.leaves) > len(st.leaves) {
		st.leaves = st.leaves[:li+1]
	} else {
		st.leaves = append(st.leaves, leafClimb{})
	}
	lc := &st.leaves[li]
	lc.levels = append(lc.levels[:0], leaf)
	lc.off = append(lc.off[:0], 0, int32(len(t.nodes[leaf].AccessDoors)))
	lc.steps.off = append(lc.steps.off[:0], 0)
	lc.steps.carry = lc.steps.carry[:0]
	return li
}

// planBatch classifies every query, groups the cross-leaf ones by their
// (source leaf, target leaf) pair, resolves the shared tree nodes of each
// group and registers the distinct endpoints with the levels they need.
// Same-partition queries are answered directly into out (they are a single
// geometric computation).
func (t *Tree) planBatch(pairs []index.LocationPair, out []float64) *batchState {
	st := t.getBatchState()
	st.order = st.order[:0]
	st.groups = st.groups[:0]
	st.trivial = st.trivial[:0]
	st.gLCA, st.gNS, st.gNT = st.gLCA[:0], st.gNS[:0], st.gNT[:0]
	st.gLvlS, st.gLvlD = st.gLvlS[:0], st.gLvlD[:0]
	st.gLeafS, st.gLeafD = st.gLeafS[:0], st.gLeafD[:0]
	st.leaves = st.leaves[:0]
	clear(st.leafIdx)
	numPartitions := len(t.leafOfPartition)
	st.src.reset(len(pairs), numPartitions)
	st.tgt.reset(len(pairs), numPartitions)
	if cap(st.leafS) < len(pairs) {
		st.leafS = make([]NodeID, len(pairs))
		st.leafD = make([]NodeID, len(pairs))
	}
	leafS := st.leafS[:len(pairs)]
	leafD := st.leafD[:len(pairs)]

	// Sorting 1.5M closure comparisons is the planner's enemy: when the
	// node and batch sizes fit, the (leafS, leafD, index) triple is packed
	// into one machine word and sorted branch-cheaply; the index in the low
	// bits keeps equal-leaf runs in batch order.
	packed := len(t.nodes) < 1<<21 && len(pairs) < 1<<22
	st.keys = st.keys[:0]
	for i, q := range pairs {
		if q.S.Partition == q.T.Partition {
			out[i] = directIntraPartition(t.venue, q.S, q.T)
			continue
		}
		ls := t.Leaf(q.S.Partition)
		ld := t.Leaf(q.T.Partition)
		if ls == ld {
			st.trivial = append(st.trivial, int32(i))
			continue
		}
		leafS[i], leafD[i] = ls, ld
		st.order = append(st.order, int32(i))
		if packed {
			st.keys = append(st.keys, uint64(ls)<<43|uint64(ld)<<22|uint64(i))
		}
	}
	if packed {
		slices.Sort(st.keys)
		for i, k := range st.keys {
			st.order[i] = int32(k & (1<<22 - 1))
			if i > 0 && k>>22 == st.keys[i-1]>>22 {
				continue
			}
			st.groups = append(st.groups, int32(i))
		}
	} else {
		sort.Slice(st.order, func(a, b int) bool {
			qa, qb := st.order[a], st.order[b]
			if leafS[qa] != leafS[qb] {
				return leafS[qa] < leafS[qb]
			}
			return leafD[qa] < leafD[qb]
		})
		for i, qi := range st.order {
			if i > 0 && leafS[qi] == leafS[st.order[i-1]] && leafD[qi] == leafD[st.order[i-1]] {
				continue
			}
			st.groups = append(st.groups, int32(i))
		}
	}
	st.groups = append(st.groups, int32(len(st.order)))

	// Resolve the shared nodes of every group and mark the endpoint levels
	// it needs. climbLevel counts the steps from the leaf up to the LCA
	// child (0 when the leaf itself is the child).
	climbLevel := func(leaf, top NodeID) int32 {
		lvl := int32(0)
		for n := leaf; n != top; n = t.nodes[n].Parent {
			lvl++
		}
		return lvl
	}
	for g := 0; g+1 < len(st.groups); g++ {
		qs := st.order[st.groups[g]:st.groups[g+1]]
		ls, ld := leafS[qs[0]], leafD[qs[0]]
		lca := t.LCA(ls, ld)
		ns := t.ChildToward(lca, ls)
		nt := t.ChildToward(lca, ld)
		lvlS := climbLevel(ls, ns)
		lvlD := climbLevel(ld, nt)
		liS := st.leafFor(t, ls)
		liD := st.leafFor(t, ld)
		t.ensureLevels(&st.leaves[liS], lvlS)
		t.ensureLevels(&st.leaves[liD], lvlD)
		st.gLCA = append(st.gLCA, lca)
		st.gNS = append(st.gNS, ns)
		st.gNT = append(st.gNT, nt)
		st.gLvlS = append(st.gLvlS, lvlS)
		st.gLvlD = append(st.gLvlD, lvlD)
		st.gLeafS = append(st.gLeafS, liS)
		st.gLeafD = append(st.gLeafD, liD)
		for _, qi := range qs {
			se := st.src.endpoint(pairs[qi].S, liS)
			te := st.tgt.endpoint(pairs[qi].T, liD)
			st.src.id[qi] = se
			st.tgt.id[qi] = te
			st.src.mark(se, lvlS)
			st.tgt.mark(te, lvlD)
		}
	}

	// The folded sweep pays one O(ρ²) fold per distinct source per
	// supergroup to make every query O(ρ); with (nearly) all-distinct
	// sources the folds outnumber the queries and direct O(ρ²) pairing per
	// query is cheaper.
	st.srcShared = len(st.src.locs)*4 <= len(st.order)*3

	// Supergroup the groups by (ns, nt): queries under the same pair of LCA
	// children share matrix positions and source folds no matter which
	// leaves they start from.
	numGroups := len(st.groups) - 1
	st.sgOrder = st.sgOrder[:0]
	for g := 0; g < numGroups; g++ {
		st.sgOrder = append(st.sgOrder, int32(g))
	}
	sort.Slice(st.sgOrder, func(a, b int) bool {
		ga, gb := st.sgOrder[a], st.sgOrder[b]
		if st.gNS[ga] != st.gNS[gb] {
			return st.gNS[ga] < st.gNS[gb]
		}
		return st.gNT[ga] < st.gNT[gb]
	})
	st.sgStarts = st.sgStarts[:0]
	for i, g := range st.sgOrder {
		if i > 0 {
			prev := st.sgOrder[i-1]
			if st.gNS[g] == st.gNS[prev] && st.gNT[g] == st.gNT[prev] {
				continue
			}
		}
		st.sgStarts = append(st.sgStarts, int32(i))
	}
	st.sgStarts = append(st.sgStarts, int32(len(st.sgOrder)))

	// Lay out the arena: each endpoint owns one block covering its levels
	// 0..maxLvl.
	layout := func(s *endpointSide) {
		s.base = append(s.base[:0], 0)
		for e := range s.locs {
			lc := &st.leaves[s.leafOf[e]]
			s.base = append(s.base, s.base[e]+lc.off[s.maxLvl[e]+1])
		}
		s.arena = resizeF64(s.arena, int(s.base[len(s.base)-1]))
	}
	layout(&st.src)
	layout(&st.tgt)
	return st
}

// batchScratch is the per-worker scratch of the batched distance path,
// recycled through Tree.scratchPoolB.
type batchScratch struct {
	cb combineScratch
	// Compact pairing positions of a supergroup's LCA matrix (valid rows of
	// the source-side child, valid columns of the target-side child).
	rowPos, rowIdx []int32
	colPos, colIdx []int32
	// fold holds the supergroup's source folds, one adT-wide vector per
	// distinct source encountered. foldOf[sid] points at a source's vector,
	// valid only when foldStamp[sid] equals foldEpoch (bumped once per
	// supergroup — an O(1) reset).
	fold      []float64
	foldOf    []int32
	foldStamp []uint32
	foldEpoch uint32
}

func (t *Tree) getBatchScratch() *batchScratch {
	sc, _ := t.scratchPoolB.Get().(*batchScratch)
	if sc == nil {
		sc = &batchScratch{}
	}
	return sc
}

func (t *Tree) putBatchScratch(sc *batchScratch) { t.scratchPoolB.Put(sc) }

// resizeF64 returns buf resized to n, reallocating only on growth.
func resizeF64(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// DistanceBatch implements index.DistanceBatcher: Distance for every pair,
// with endpoint tables shared across all queries touching the same
// locations. out must be at least len(pairs) long. Results are bit-identical
// to per-pair Distance calls at any worker count; workers <= 1 runs on the
// calling goroutine.
func (t *Tree) DistanceBatch(pairs []index.LocationPair, out []float64, workers int) {
	if t.pk == nil {
		// Unpacked intermediate state (pack_test.go only): no positional
		// tables to share, answer per query.
		runParallel(len(pairs), workers, func(_, i int) {
			out[i] = t.Distance(pairs[i].S, pairs[i].T)
		})
		return
	}
	t.distanceBatch(pairs, out, workers, t.ipEndpointTables)
}

// DistanceBatch implements index.DistanceBatcher for the VIP-Tree: planning
// and pairing are shared with the IP-Tree path, but each endpoint table
// comes from the materialised per-door entries (one sideDistsOnly sweep per
// needed level) instead of a climb.
func (vt *VIPTree) DistanceBatch(pairs []index.LocationPair, out []float64, workers int) {
	if vt.pk == nil {
		runParallel(len(pairs), workers, func(_, i int) {
			out[i] = vt.Distance(pairs[i].S, pairs[i].T)
		})
		return
	}
	vt.Tree.distanceBatch(pairs, out, workers, vt.vipEndpointTables)
}

// distanceBatch plans the batch, computes the endpoint tables (phase 1) and
// fans the group sweeps and D2D-fallback chunks over the worker pool
// (phase 2).
func (t *Tree) distanceBatch(pairs []index.LocationPair, out []float64, workers int, tables func(*batchState, *endpointSide, int, *batchScratch)) {
	if len(pairs) == 0 {
		return
	}
	_ = out[len(pairs)-1] // fail fast when out is too short
	st := t.planBatch(pairs, out)
	defer t.putBatchState(st)
	nSrc, nTgt := len(st.src.locs), len(st.tgt.locs)
	numSuper := len(st.sgStarts) - 1
	chunks := (len(st.trivial) + trivialChunk - 1) / trivialChunk
	if nSrc+nTgt+numSuper+chunks == 0 {
		return
	}
	if workers <= 0 {
		workers = 1
	}
	if m := max(nSrc+nTgt, numSuper+chunks); workers > m {
		workers = m
	}
	scratches := make([]*batchScratch, workers)
	for i := range scratches {
		scratches[i] = t.getBatchScratch()
	}
	runParallel(nSrc+nTgt, workers, func(w, i int) {
		if i < nSrc {
			tables(st, &st.src, i, scratches[w])
		} else {
			tables(st, &st.tgt, i-nSrc, scratches[w])
		}
	})
	d2d := t.venue.D2D()
	runParallel(numSuper+chunks, workers, func(w, i int) {
		if i < numSuper {
			t.superSweep(pairs, out, st, i, scratches[w])
			return
		}
		j := (i - numSuper) * trivialChunk
		end := min(j+trivialChunk, len(st.trivial))
		for _, qi := range st.trivial[j:end] {
			out[qi] = d2d.LocationDist(pairs[qi].S, pairs[qi].T)
		}
	})
	for _, sc := range scratches {
		t.putBatchScratch(sc)
	}
}

// ipEndpointTables runs Algorithm 2 for one endpoint over its leaf's shared
// climb path, writing the aligned distance table of every level up to the
// endpoint's deepest needed one into its arena block (each level extends the
// one below, so all levels cost one climb). The aligned-array form is
// equivalent to the door table of the single-query climb: a parent access
// door that already has a value from below must be an access door of the
// immediate child (its inside face lies in the child's region, its outside
// face outside the parent's), so the carry-over mapping reproduces exactly
// the doors the single-query loop skips as already known, and all remaining
// doors combine over the same candidates.
func (t *Tree) ipEndpointTables(st *batchState, side *endpointSide, e int, sc *batchScratch) {
	lc := &st.leaves[side.leafOf[e]]
	block := side.arena[side.base[e]:side.base[e+1]]
	cur := block[:lc.off[1]]
	for i := range cur {
		cur[i] = Infinite
	}
	cb := &sc.cb
	t.seedLeafCompact(side.locs[e], lc.levels[0], cb)
	for j, bi := range cb.dstIdx {
		cur[bi] = cb.best[j]
	}
	child := lc.levels[0]
	for k := int32(1); k <= side.maxLvl[e]; k++ {
		parent := lc.levels[k]
		parentAD := t.nodes[parent].AccessDoors
		carry := lc.steps.carry[lc.steps.off[k-1]:lc.steps.off[k]]
		childRows := t.pk.adPosInParent[child]
		parentPos := t.pk.adPosInOwn[parent]
		mat := t.nodes[parent].Matrix
		stride := len(mat.cols)
		slab := mat.dist
		nxt := block[lc.off[k]:lc.off[k+1]]
		gathered := false
		var cmB []float64
		var cmR []int32
		for pi := range parentAD {
			if ki := carry[pi]; ki >= 0 && cur[ki] < Infinite {
				nxt[pi] = cur[ki]
				continue
			}
			ci := parentPos[pi]
			if ci < 0 {
				nxt[pi] = Infinite
				continue
			}
			if !gathered {
				gathered = true
				cmB, cmR = cb.base[:0], cb.rows[:0]
				for ki := range cur {
					if cur[ki] < Infinite && childRows[ki] >= 0 {
						cmB = append(cmB, cur[ki])
						cmR = append(cmR, childRows[ki])
					}
				}
				cb.base, cb.rows = cmB, cmR
			}
			best := Infinite
			for k2, b := range cmB {
				if c := b + slab[int(cmR[k2])*stride+int(ci)]; c < best {
					best = c
				}
			}
			nxt[pi] = best
		}
		cur = nxt
		child = parent
	}
}

// vipEndpointTables fills one endpoint's arena block from the materialised
// per-door entries: one sideDistsOnly sweep per level some group needs
// (levels are independent lookups on the VIP-Tree, so unneeded ones are
// skipped).
func (vt *VIPTree) vipEndpointTables(st *batchState, side *endpointSide, e int, _ *batchScratch) {
	lc := &st.leaves[side.leafOf[e]]
	block := side.arena[side.base[e]:side.base[e+1]]
	all := side.maxLvl[e] >= 64
	for k := int32(0); k <= side.maxLvl[e]; k++ {
		if !all && side.need[e]&(1<<uint(k)) == 0 {
			continue
		}
		vt.sideDistsOnly(side.locs[e], lc.levels[k], block[lc.off[k]:lc.off[k+1]])
	}
}

// superSweep resolves every query of one supergroup — all groups sharing
// one (ns, nt) pair of LCA children. The valid matrix positions of both
// children's access doors are gathered once; for each distinct source the
// pairing's inner dimension is folded once into u[b] = min over a of
// ds[a] + M[a][b] (Infinite at doors without a matrix column — those
// candidates never existed and can never win the strict <, see the file
// comment); and every query then runs one branch-light O(adT) min sweep of
// u[b] + dt[b].
func (t *Tree) superSweep(pairs []index.LocationPair, out []float64, st *batchState, sg int, sc *batchScratch) {
	gs := st.sgOrder[st.sgStarts[sg]:st.sgStarts[sg+1]]
	g0 := gs[0]
	ns, nt := st.gNS[g0], st.gNT[g0]
	adT := len(t.nodes[nt].AccessDoors)
	mat := t.nodes[st.gLCA[g0]].Matrix
	rowPos := t.pk.adPosInParent[ns]
	colPos := t.pk.adPosInParent[nt]
	rp, ri := sc.rowPos[:0], sc.rowIdx[:0]
	for i := range rowPos {
		if rowPos[i] >= 0 {
			rp = append(rp, rowPos[i])
			ri = append(ri, int32(i))
		}
	}
	sc.rowPos, sc.rowIdx = rp, ri
	cp, cj := sc.colPos[:0], sc.colIdx[:0]
	for j := 0; j < adT; j++ {
		if colPos[j] >= 0 {
			cp = append(cp, colPos[j])
			cj = append(cj, int32(j))
		}
	}
	sc.colPos, sc.colIdx = cp, cj
	stride := len(mat.cols)
	slab := mat.dist

	if !st.srcShared {
		// Mostly-distinct sources: a fold per source would cost more than
		// it saves, so pair each query directly (same candidates, same
		// association, same minimum).
		for _, g := range gs {
			qs := st.order[st.groups[g]:st.groups[g+1]]
			offS := st.leaves[st.gLeafS[g]].off[st.gLvlS[g]]
			offD := st.leaves[st.gLeafD[g]].off[st.gLvlD[g]]
			for _, qi := range qs {
				srow := st.src.arena[st.src.base[st.src.id[qi]]+offS:]
				trow := st.tgt.arena[st.tgt.base[st.tgt.id[qi]]+offD:]
				best := Infinite
				for a, rpos := range rp {
					ds := srow[ri[a]]
					row := slab[int(rpos)*stride:]
					for b, cpos := range cp {
						if tot := ds + row[cpos] + trow[cj[b]]; tot < best {
							best = tot
						}
					}
				}
				out[qi] = best
			}
		}
		return
	}

	if len(sc.foldOf) < len(st.src.locs) {
		sc.foldOf = make([]int32, len(st.src.locs))
		sc.foldStamp = make([]uint32, len(st.src.locs))
		sc.foldEpoch = 0
	}
	sc.foldEpoch++
	if sc.foldEpoch == 0 {
		clear(sc.foldStamp)
		sc.foldEpoch = 1
	}
	sc.fold = sc.fold[:0]
	for _, g := range gs {
		qs := st.order[st.groups[g]:st.groups[g+1]]
		offS := st.leaves[st.gLeafS[g]].off[st.gLvlS[g]]
		offD := st.leaves[st.gLeafD[g]].off[st.gLvlD[g]]
		for _, qi := range qs {
			sid := st.src.id[qi]
			var fi int32
			if sc.foldStamp[sid] == sc.foldEpoch {
				fi = sc.foldOf[sid]
			} else {
				fi = int32(len(sc.fold))
				sc.foldStamp[sid] = sc.foldEpoch
				sc.foldOf[sid] = fi
				srow := st.src.arena[st.src.base[sid]+offS:]
				for b := 0; b < adT; b++ {
					sc.fold = append(sc.fold, Infinite)
				}
				u := sc.fold[fi:]
				for a, rpos := range rp {
					ds := srow[ri[a]]
					row := slab[int(rpos)*stride:]
					for b, cpos := range cp {
						if c := ds + row[cpos]; c < u[cj[b]] {
							u[cj[b]] = c
						}
					}
				}
			}
			u := sc.fold[fi:]
			trow := st.tgt.arena[st.tgt.base[st.tgt.id[qi]]+offD:]
			best := Infinite
			for b := 0; b < adT; b++ {
				if tot := u[b] + trow[b]; tot < best {
					best = tot
				}
			}
			out[qi] = best
		}
	}
}
