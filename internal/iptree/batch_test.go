package iptree

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"viptree/internal/index"
	"viptree/internal/model"
	"viptree/internal/venuegen"
)

// batchWorkload draws a mixed batch exercising every classification of the
// planner: clustered sources (shared climbs), uniform pairs, same-partition
// pairs and duplicated pairs.
func batchWorkload(v *model.Venue, n int, seed int64) []index.LocationPair {
	rng := rand.New(rand.NewSource(seed))
	clusters := make([]model.Location, 1+rng.Intn(4))
	for i := range clusters {
		clusters[i] = v.RandomLocation(rng)
	}
	out := make([]index.LocationPair, n)
	for i := range out {
		switch rng.Intn(5) {
		case 0: // clustered source
			out[i] = index.LocationPair{S: clusters[rng.Intn(len(clusters))], T: v.RandomLocation(rng)}
		case 1: // same partition
			l := v.RandomLocation(rng)
			out[i] = index.LocationPair{S: l, T: model.Location{Partition: l.Partition, Point: l.Point}}
		case 2: // duplicate of an earlier pair
			if i > 0 {
				out[i] = out[rng.Intn(i)]
				continue
			}
			fallthrough
		default: // uniform
			out[i] = index.LocationPair{S: v.RandomLocation(rng), T: v.RandomLocation(rng)}
		}
	}
	return out
}

// checkBatchMatches runs DistanceBatch at several worker counts and requires
// every result to be bit-identical to the per-pair Distance call.
func checkBatchMatches(t *testing.T, b index.DistanceBatcher, pairs []index.LocationPair) {
	t.Helper()
	want := make([]float64, len(pairs))
	for i, p := range pairs {
		want[i] = b.Distance(p.S, p.T)
	}
	for _, workers := range []int{1, 2, 7} {
		got := make([]float64, len(pairs))
		b.DistanceBatch(pairs, got, workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: DistanceBatch(workers=%d)[%d] = %v, want %v (pair %v -> %v)",
					b.Name(), workers, i, got[i], want[i], pairs[i].S, pairs[i].T)
			}
		}
	}
}

// TestQuickDistanceBatchMatchesDistance is the central property of the
// batched path: over random venues and mixed batches, DistanceBatch is
// element-wise bit-identical to per-pair Distance at any worker count, for
// both trees.
func TestQuickDistanceBatchMatchesDistance(t *testing.T) {
	f := func(seed uint64, qseed uint16) bool {
		v := randomVenue(seed % 1000)
		tree := MustBuildIPTree(v, Options{})
		vt := NewVIPTree(tree)
		pairs := batchWorkload(v, 40, int64(qseed))
		for _, b := range []index.DistanceBatcher{tree, vt} {
			want := make([]float64, len(pairs))
			for i, p := range pairs {
				want[i] = b.Distance(p.S, p.T)
			}
			for _, workers := range []int{1, 3} {
				got := make([]float64, len(pairs))
				b.DistanceBatch(pairs, got, workers)
				for i := range want {
					if got[i] != want[i] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestDistanceBatchCampus pins the property on a multi-building campus venue
// (distinct leaves per building, deep LCAs) with a larger batch.
func TestDistanceBatchCampus(t *testing.T) {
	v := venuegen.MustCampus(venuegen.CampusConfig{Name: "batch-campus", Buildings: 4, Seed: 11})
	tree := MustBuildIPTree(v, Options{})
	vt := NewVIPTree(tree)
	pairs := batchWorkload(v, 300, 7)
	checkBatchMatches(t, tree, pairs)
	checkBatchMatches(t, vt, pairs)
}

// TestDistanceBatchClustered exercises the shared-climb fast path directly:
// few distinct sources, many targets.
func TestDistanceBatchClustered(t *testing.T) {
	v := venuegen.Menzies(venuegen.ScaleSmall)
	tree := MustBuildIPTree(v, Options{})
	vt := NewVIPTree(tree)
	rng := rand.New(rand.NewSource(9))
	srcs := make([]model.Location, 4)
	for i := range srcs {
		srcs[i] = v.RandomLocation(rng)
	}
	pairs := make([]index.LocationPair, 256)
	for i := range pairs {
		pairs[i] = index.LocationPair{S: srcs[i%len(srcs)], T: v.RandomLocation(rng)}
	}
	checkBatchMatches(t, tree, pairs)
	checkBatchMatches(t, vt, pairs)
}

// TestDistanceBatchEdgeCases covers the degenerate inputs: empty batch,
// single pair, more workers than queries, zero and negative worker counts,
// and an output slice longer than the batch.
func TestDistanceBatchEdgeCases(t *testing.T) {
	v := randomVenue(5)
	tree := MustBuildIPTree(v, Options{})
	vt := NewVIPTree(tree)
	rng := rand.New(rand.NewSource(1))
	one := []index.LocationPair{{S: v.RandomLocation(rng), T: v.RandomLocation(rng)}}
	for _, b := range []index.DistanceBatcher{tree, vt} {
		// Empty batch: no panic, no writes.
		b.DistanceBatch(nil, nil, 4)
		b.DistanceBatch([]index.LocationPair{}, []float64{}, 0)
		want := b.Distance(one[0].S, one[0].T)
		for _, workers := range []int{-3, 0, 1, 64} {
			out := []float64{-1, -7}
			b.DistanceBatch(one, out, workers)
			if out[0] != want {
				t.Fatalf("%s: workers=%d got %v, want %v", b.Name(), workers, out[0], want)
			}
			if out[1] != -7 {
				t.Fatalf("%s: workers=%d wrote past the batch: out[1]=%v", b.Name(), workers, out[1])
			}
		}
	}
}

// TestDistanceBatchConcurrent checks that concurrent DistanceBatch calls on
// one shared tree are safe (the scratch pool must not leak state between
// callers). Run with -race in CI.
func TestDistanceBatchConcurrent(t *testing.T) {
	v := randomVenue(21)
	tree := MustBuildIPTree(v, Options{})
	vt := NewVIPTree(tree)
	pairs := batchWorkload(v, 120, 3)
	want := make([]float64, len(pairs))
	for i, p := range pairs {
		want[i] = vt.Distance(p.S, p.T)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]float64, len(pairs))
			vt.DistanceBatch(pairs, out, 1+g%3)
			for i := range want {
				if out[i] != want[i] {
					errs <- "concurrent DistanceBatch mismatch"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestDistanceBatchUnpacked pins the fallback on the unpacked intermediate
// state (no positional tables): still bit-identical to Distance.
func TestDistanceBatchUnpacked(t *testing.T) {
	v := randomVenue(33)
	tree, err := buildIPTreeUnpacked(v, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pairs := batchWorkload(v, 50, 13)
	checkBatchMatches(t, tree, pairs)
}
