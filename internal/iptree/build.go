package iptree

import (
	"sort"

	"viptree/internal/graph"
	"viptree/internal/model"
)

// This file implements tree construction (Section 2.1.2):
//
//  1. buildLeaves groups adjacent indoor partitions into leaf nodes, keeping
//     every hallway partition in a distinct leaf (rules i and ii).
//  2. buildHierarchy merges nodes level by level with Algorithm 1, choosing
//     merges that maximise the number of shared access doors, and computes
//     the access doors of every node bottom-up.
//  3. buildLeafMatrices runs a Dijkstra search on the D2D graph from every
//     access door of every leaf to populate the leaf distance matrices
//     (distance plus next-hop door), and derives the superior doors of each
//     partition (Definition 2).
//  4. buildNonLeafMatrices builds the level-l graphs G_l and populates the
//     distance matrices of non-leaf nodes bottom-up.

// buildLeaves implements step 1: creating leaf nodes.
func (t *Tree) buildLeaves() {
	v := t.venue
	numParts := v.NumPartitions()
	groupOf := make([]int, numParts)
	for i := range groupOf {
		groupOf[i] = -1
	}
	var groups [][]model.PartitionID

	// Every hallway partition seeds its own group (rule ii keeps hallways in
	// distinct leaves).
	for p := 0; p < numParts; p++ {
		pid := model.PartitionID(p)
		if v.Kind(pid) == model.KindHallway {
			groupOf[p] = len(groups)
			groups = append(groups, []model.PartitionID{pid})
		}
	}

	// Iteratively attach the remaining partitions to adjacent groups. A
	// partition joins the adjacent group with which it shares the most
	// doors (rule i), preferring groups whose hallway lies on the same
	// floor. Merging a non-hallway partition never creates a second hallway
	// in a group, so rule ii holds by construction.
	hallwayFloor := make([]int, len(groups))
	for gi, g := range groups {
		hallwayFloor[gi] = v.Partition(g[0]).Bounds.Floor
	}
	for changed := true; changed; {
		changed = false
		for p := 0; p < numParts; p++ {
			if groupOf[p] != -1 {
				continue
			}
			pid := model.PartitionID(p)
			bestGroup, bestScore, bestSameFloor := -1, -1, false
			for _, adj := range v.AdjacentPartitions(pid) {
				g := groupOf[adj]
				if g == -1 {
					continue
				}
				score := len(v.CommonDoors(pid, adj))
				sameFloor := g < len(hallwayFloor) && hallwayFloor[g] == v.Partition(pid).Bounds.Floor
				if score > bestScore || (score == bestScore && sameFloor && !bestSameFloor) {
					bestGroup, bestScore, bestSameFloor = g, score, sameFloor
				}
			}
			if bestGroup >= 0 {
				groupOf[p] = bestGroup
				groups[bestGroup] = append(groups[bestGroup], pid)
				changed = true
			}
		}
	}

	// Any partitions still unassigned belong to connected components with no
	// hallway (or disconnected from every hallway); each such component
	// becomes its own leaf, which matches the paper's termination rule
	// (merging continues as long as it does not create a two-hallway leaf).
	for p := 0; p < numParts; p++ {
		if groupOf[p] != -1 {
			continue
		}
		gi := len(groups)
		groups = append(groups, nil)
		stack := []model.PartitionID{model.PartitionID(p)}
		groupOf[p] = gi
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			groups[gi] = append(groups[gi], cur)
			for _, adj := range v.AdjacentPartitions(cur) {
				if groupOf[adj] == -1 {
					groupOf[adj] = gi
					stack = append(stack, adj)
				}
			}
		}
	}

	// Materialise the leaf nodes. Leaves are created first, so leaf IDs are
	// 0..len(groups)-1 and doorsOfLeaf is a dense slice over them.
	t.leafOfPartition = make([]NodeID, numParts)
	t.doorsOfLeaf = make([][]model.DoorID, len(groups))
	for _, parts := range groups {
		id := NodeID(len(t.nodes))
		sort.Slice(parts, func(i, j int) bool { return parts[i] < parts[j] })
		t.nodes = append(t.nodes, Node{ID: id, Parent: invalidNode, Level: 1, Partitions: parts})
		doorSet := make(map[model.DoorID]bool)
		for _, pid := range parts {
			t.leafOfPartition[pid] = id
			for _, d := range v.Partition(pid).Doors {
				doorSet[d] = true
			}
		}
		doors := make([]model.DoorID, 0, len(doorSet))
		for d := range doorSet {
			doors = append(doors, d)
		}
		sort.Slice(doors, func(i, j int) bool { return doors[i] < doors[j] })
		t.doorsOfLeaf[id] = doors
	}

	// Per-door bookkeeping: the leaves containing each door. Leaves are
	// visited in ascending ID order, so the per-door lists are born sorted.
	t.leavesOfDoor = make([][]NodeID, v.NumDoors())
	for leaf, doors := range t.doorsOfLeaf {
		for _, d := range doors {
			t.leavesOfDoor[d] = append(t.leavesOfDoor[d], NodeID(leaf))
		}
	}
}

// accessDoorsOfLeaf computes AD(N) for a leaf: the doors connecting it to
// partitions outside the leaf, to the exterior of the venue, or to other
// buildings via outdoor edges.
func (t *Tree) accessDoorsOfLeaf(leaf NodeID) []model.DoorID {
	inLeaf := make(map[model.PartitionID]bool)
	for _, p := range t.nodes[leaf].Partitions {
		inLeaf[p] = true
	}
	var out []model.DoorID
	for _, d := range t.doorsOfLeaf[leaf] {
		if t.doorLeadsOutside(d, func(p model.PartitionID) bool { return inLeaf[p] }) {
			out = append(out, d)
		}
	}
	return out
}

// doorLeadsOutside reports whether door d connects to the space outside the
// region described by inside (a predicate over partitions): it is an
// exterior door, connects to a partition outside the region, or has an
// outdoor edge to a door attached to a partition outside the region.
func (t *Tree) doorLeadsOutside(d model.DoorID, inside func(model.PartitionID) bool) bool {
	v := t.venue
	door := v.Door(d)
	if len(door.Partitions) < 2 {
		return true // exterior door
	}
	for _, p := range door.Partitions {
		if !inside(p) {
			return true
		}
	}
	for _, e := range v.OutdoorEdges {
		var other model.DoorID
		switch d {
		case e.From:
			other = e.To
		case e.To:
			other = e.From
		default:
			continue
		}
		for _, p := range v.Door(other).Partitions {
			if !inside(p) {
				return true
			}
		}
		if len(v.Door(other).Partitions) < 2 {
			return true
		}
	}
	return false
}

// buildHierarchy implements step 2 (Algorithm 1): merging nodes level by
// level until a single root remains, computing access doors bottom-up.
func (t *Tree) buildHierarchy() {
	minDegree := t.opts.minDegree()

	// curNodeOf maps each partition to its current-level node.
	curNodeOf := make([]NodeID, t.venue.NumPartitions())
	current := make([]NodeID, 0, len(t.nodes))
	for i := range t.nodes {
		leaf := &t.nodes[i]
		leaf.AccessDoors = t.accessDoorsOfLeaf(leaf.ID)
		current = append(current, leaf.ID)
		for _, p := range leaf.Partitions {
			curNodeOf[p] = leaf.ID
		}
	}

	level := 1
	for len(current) > minDegree {
		next := t.createNextLevel(current, minDegree, level+1, curNodeOf)
		if len(next) >= len(current) {
			break // no merging possible; avoid an infinite loop
		}
		t.updateCurrentNodes(next, curNodeOf)
		current = next
		level++
	}
	// Merge whatever remains into the root.
	if len(current) == 1 {
		t.root = current[0]
	} else {
		t.root = t.newInternalNode(current, level+1, curNodeOf)
		t.updateCurrentNodes([]NodeID{t.root}, curNodeOf)
	}

	// Per-door access bookkeeping used by path decomposition and VIP
	// materialisation.
	t.isLeafAccessDoor = make([]bool, t.venue.NumDoors())
	t.accessNodesOfDoor = make([][]NodeID, t.venue.NumDoors())
	for i := range t.nodes {
		n := &t.nodes[i]
		for _, d := range n.AccessDoors {
			if n.IsLeaf() {
				t.isLeafAccessDoor[d] = true
			}
			t.accessNodesOfDoor[d] = append(t.accessNodesOfDoor[d], n.ID)
		}
	}
}

// createNextLevel is Algorithm 1: merge the nodes of the current level so
// that every new node contains at least minDegree current-level nodes,
// preferring merges that maximise the number of shared access doors.
func (t *Tree) createNextLevel(current []NodeID, minDegree, newLevel int, curNodeOf []NodeID) []NodeID {
	type entry struct {
		node     NodeID
		degree   int
		children []NodeID
	}
	entries := make(map[NodeID]*entry, len(current))
	for _, id := range current {
		entries[id] = &entry{node: id, degree: 1, children: []NodeID{id}}
	}
	adjacentCount := func(id NodeID) int {
		count := 0
		for other := range entries {
			if other != id && t.commonAccessDoors(entries[id].children, entries[other].children) > 0 {
				count++
			}
		}
		return count
	}
	// A simple ordered scan stands in for the min-heap of Algorithm 1: at
	// every step pick the unmerged entry with the smallest degree (ties
	// broken by fewest adjacent entries, then by ID for determinism).
	pickMin := func() *entry {
		var best *entry
		bestAdj := 0
		for _, e := range entries {
			if best == nil || e.degree < best.degree ||
				(e.degree == best.degree && adjacentCount(e.node) < bestAdj) ||
				(e.degree == best.degree && adjacentCount(e.node) == bestAdj && e.node < best.node) {
				best = e
				bestAdj = adjacentCount(e.node)
			}
		}
		return best
	}
	for {
		minEntry := pickMin()
		if minEntry == nil || minEntry.degree >= minDegree || len(entries) <= 1 {
			break
		}
		// Find the partner with the largest number of common access doors;
		// fall back to any entry whose doors are connected to ours in the
		// D2D graph (covers buildings linked only by outdoor edges), then
		// to an arbitrary entry.
		var best *entry
		bestScore := -1
		for _, e := range entries {
			if e.node == minEntry.node {
				continue
			}
			score := 2 * t.commonAccessDoors(minEntry.children, e.children)
			if score == 0 && t.connectedViaD2D(minEntry.children, e.children) {
				score = 1 // connected (e.g. via an outdoor path) but sharing no door
			}
			if t.opts.NaiveMerge {
				// Ablation: ignore the access-door heuristic; any connected
				// neighbour is as good as any other.
				if score > 0 {
					score = 1
				}
			}
			if score > bestScore || (score == bestScore && (best == nil || e.node < best.node)) {
				best, bestScore = e, score
			}
		}
		if best == nil {
			break
		}
		delete(entries, minEntry.node)
		delete(entries, best.node)
		merged := &entry{
			node:     minEntry.node, // temporary key; the real node is created below
			degree:   minEntry.degree + best.degree,
			children: append(append([]NodeID(nil), minEntry.children...), best.children...),
		}
		entries[merged.node] = merged
	}
	// Materialise the next-level nodes.
	keys := make([]NodeID, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var next []NodeID
	for _, k := range keys {
		e := entries[k]
		if len(e.children) == 1 {
			// Unmerged node: it is promoted to the next level unchanged and
			// keeps participating in later merges.
			next = append(next, e.children[0])
			continue
		}
		next = append(next, t.newInternalNode(e.children, newLevel, curNodeOf))
	}
	return next
}

// newInternalNode creates a non-leaf node with the given children and
// computes its access doors.
func (t *Tree) newInternalNode(children []NodeID, level int, curNodeOf []NodeID) NodeID {
	id := NodeID(len(t.nodes))
	childSet := make(map[NodeID]bool, len(children))
	for _, c := range children {
		childSet[c] = true
	}
	inside := func(p model.PartitionID) bool { return childSet[curNodeOf[p]] }
	doorSeen := make(map[model.DoorID]bool)
	var access []model.DoorID
	for _, c := range children {
		for _, d := range t.nodes[c].AccessDoors {
			if doorSeen[d] {
				continue
			}
			doorSeen[d] = true
			if t.doorLeadsOutside(d, inside) {
				access = append(access, d)
			}
		}
	}
	sort.Slice(access, func(i, j int) bool { return access[i] < access[j] })
	t.nodes = append(t.nodes, Node{ID: id, Parent: invalidNode, Children: children, Level: level, AccessDoors: access})
	for _, c := range children {
		t.nodes[c].Parent = id
		// Promoted nodes may sit at a lower level than their siblings; the
		// level recorded at creation time is kept (levels only need to be
		// monotone along root paths for LCA computation).
	}
	return id
}

// updateCurrentNodes repoints curNodeOf at the nodes of the new level.
func (t *Tree) updateCurrentNodes(level []NodeID, curNodeOf []NodeID) {
	for _, id := range level {
		t.forEachLeafUnder(id, func(leaf NodeID) {
			for _, p := range t.nodes[leaf].Partitions {
				curNodeOf[p] = id
			}
		})
	}
}

// forEachLeafUnder visits every leaf in the subtree rooted at id.
func (t *Tree) forEachLeafUnder(id NodeID, fn func(NodeID)) {
	if t.nodes[id].IsLeaf() {
		fn(id)
		return
	}
	for _, c := range t.nodes[id].Children {
		t.forEachLeafUnder(c, fn)
	}
}

// commonAccessDoors counts the access doors shared between the unions of two
// groups of nodes.
func (t *Tree) commonAccessDoors(a, b []NodeID) int {
	doors := make(map[model.DoorID]bool)
	for _, n := range a {
		for _, d := range t.nodes[n].AccessDoors {
			doors[d] = true
		}
	}
	count := 0
	seen := make(map[model.DoorID]bool)
	for _, n := range b {
		for _, d := range t.nodes[n].AccessDoors {
			if doors[d] && !seen[d] {
				seen[d] = true
				count++
			}
		}
	}
	return count
}

// connectedViaD2D reports whether any access door of group a has a direct
// D2D edge to an access door of group b (this is how buildings linked only
// by outdoor paths become mergeable).
func (t *Tree) connectedViaD2D(a, b []NodeID) bool {
	bDoors := make(map[int]bool)
	for _, n := range b {
		for _, d := range t.nodes[n].AccessDoors {
			bDoors[int(d)] = true
		}
	}
	g := t.venue.D2D().Graph
	for _, n := range a {
		for _, d := range t.nodes[n].AccessDoors {
			for _, e := range g.Neighbors(int(d)) {
				if bDoors[e.To] {
					return true
				}
			}
		}
	}
	return false
}

// buildLeafMatrices implements step 3: for each access door of each leaf,
// run a Dijkstra search on the D2D graph until every door of the leaf is
// settled, then populate distances, next-hop doors and superior doors.
//
// Each leaf only reads shared immutable state (the venue, the D2D graph, the
// access-door bookkeeping of buildHierarchy) and writes leaf-owned state (its
// matrix and the superior doors of its partitions, each partition belonging
// to exactly one leaf), so the per-leaf loop fans out over a worker pool and
// produces bit-identical results at any parallelism.
func (t *Tree) buildLeafMatrices() {
	t.superiorDoors = make([][]model.DoorID, t.venue.NumPartitions())
	leaves := make([]NodeID, 0, len(t.nodes))
	for i := range t.nodes {
		if t.nodes[i].IsLeaf() {
			leaves = append(leaves, t.nodes[i].ID)
		}
	}
	workers := min(t.opts.workers(), len(leaves))
	scratches := make([]leafScratch, max(workers, 1))
	runParallel(len(leaves), workers, func(w, i int) {
		t.buildOneLeafMatrix(leaves[i], &scratches[w])
	})
}

// buildOneLeafMatrix populates the distance matrix and superior doors of a
// single leaf, reusing the worker's scratch across leaves: door-membership
// sets reset by epoch, Dijkstra buffers reset per touched vertex, and flat
// superior-door marks — no per-leaf maps or per-entry allocations.
func (t *Tree) buildOneLeafMatrix(id NodeID, sc *leafScratch) {
	v := t.venue
	d2d := v.D2D().Graph
	leaf := &t.nodes[id]
	doors := t.doorsOfLeaf[id]
	leaf.Matrix = newMatrix(doors, leaf.AccessDoors)

	sc.inLeaf.reset(v.NumDoors())
	sc.access.reset(v.NumDoors())
	sc.targets = sc.targets[:0]
	for _, d := range doors {
		sc.inLeaf.mark(int(d))
		sc.targets = append(sc.targets, int(d))
	}
	for _, a := range leaf.AccessDoors {
		sc.access.mark(int(a))
	}
	// Flat superior-door marks: one slot per (partition of the leaf, door of
	// that partition), cleared per leaf.
	sc.supOffset = sc.supOffset[:0]
	total := 0
	for _, pid := range leaf.Partitions {
		sc.supOffset = append(sc.supOffset, total)
		total += len(v.Partition(pid).Doors)
	}
	if cap(sc.supMark) < total {
		sc.supMark = make([]bool, total)
	} else {
		sc.supMark = sc.supMark[:total]
		for i := range sc.supMark {
			sc.supMark[i] = false
		}
	}

	for ai, a := range leaf.AccessDoors {
		dist, prev := d2d.ToTargetsInto(int(a), sc.targets, &sc.search)
		for di, d := range doors {
			if dist[int(d)] == graph.Infinity {
				continue
			}
			next := t.leafNextHop(d, a, prev, &sc.inLeaf)
			leaf.Matrix.setAt(di, ai, dist[int(d)], next)
		}
		if !t.opts.DisableSuperiorDoors {
			t.markSuperiorDoors(leaf, a, prev, sc)
		}
	}
	t.assembleSuperiorDoors(leaf, sc)
}

// leafNextHop determines the next-hop door stored in a leaf matrix for the
// entry (from row door d towards access door a), given the predecessor array
// of the Dijkstra search rooted at a. If the shortest path stays inside the
// leaf the next hop is the first door on it; if it leaves the leaf, the next
// hop is the first door on the path that is an access door of at least one
// leaf (Section 2.1.1 and Example 6); if there is no intermediate door the
// entry is NULL.
func (t *Tree) leafNextHop(d, a model.DoorID, prev []int, inLeaf *epochStamps) model.DoorID {
	if d == a {
		return NoDoor
	}
	// Walk the path d -> ... -> a using the predecessor array rooted at a:
	// prev[x] is the next door after x on the path from x to a. One pass
	// records everything the three cases below need, so no chain slice is
	// materialised.
	first := NoDoor       // first intermediate door on the path
	firstAccess := NoDoor // first intermediate that is a leaf access door
	staysInside := true
	for cur := prev[int(d)]; cur != -1 && model.DoorID(cur) != a; cur = prev[cur] {
		c := model.DoorID(cur)
		if first == NoDoor {
			first = c
		}
		if !inLeaf.has(int(c)) {
			staysInside = false
		}
		if firstAccess == NoDoor && t.isLeafAccessDoor[c] {
			firstAccess = c
		}
	}
	if first == NoDoor {
		return NoDoor
	}
	if staysInside {
		return first
	}
	if firstAccess != NoDoor {
		return firstAccess
	}
	return first
}

// markSuperiorDoors records which doors of the leaf's partitions are proven
// superior (Definition 2) by access door a: the shortest path from the door
// to a passes through no other door of the partition. It is called once per
// access door, while that door's Dijkstra predecessor array is live; the
// marks accumulate across access doors (a door is superior when any access
// door proves it, so the OR over access doors is order-independent).
func (t *Tree) markSuperiorDoors(leaf *Node, a model.DoorID, prev []int, sc *leafScratch) {
	v := t.venue
	for pi, pid := range leaf.Partitions {
		if doorInPartition(v, a, pid) {
			continue // local access door, not a global one
		}
		part := v.Partition(pid)
		off := sc.supOffset[pi]
		for di, d := range part.Doors {
			if sc.supMark[off+di] || sc.access.has(int(d)) {
				continue // already proven, or a local access door
			}
			if prev[int(d)] == -1 && d != a {
				continue // a does not reach d
			}
			clean := true
			for cur := prev[int(d)]; cur != -1 && model.DoorID(cur) != a; cur = prev[cur] {
				if doorInPartition(v, model.DoorID(cur), pid) {
					clean = false
					break
				}
			}
			if clean {
				sc.supMark[off+di] = true
			}
		}
	}
}

// doorInPartition reports whether door d is one of partition pid's doors,
// using the door's (at most two) partition references instead of a set.
func doorInPartition(v *model.Venue, d model.DoorID, pid model.PartitionID) bool {
	for _, p := range v.Door(d).Partitions {
		if p == pid {
			return true
		}
	}
	return false
}

// assembleSuperiorDoors turns the accumulated marks into the superior-door
// lists of the leaf's partitions: the local access doors plus every marked
// door, in partition-door order.
func (t *Tree) assembleSuperiorDoors(leaf *Node, sc *leafScratch) {
	v := t.venue
	for pi, pid := range leaf.Partitions {
		part := v.Partition(pid)
		if t.opts.DisableSuperiorDoors {
			t.superiorDoors[pid] = append([]model.DoorID(nil), part.Doors...)
			continue
		}
		off := sc.supOffset[pi]
		var sup []model.DoorID
		for di, d := range part.Doors {
			if sc.access.has(int(d)) {
				sup = append(sup, d) // local access door
				continue
			}
			if sc.supMark[off+di] {
				sup = append(sup, d)
			}
		}
		// Every partition needs at least one superior door for Eq. (1) to
		// have candidates; degenerate cases (no access doors at all) keep
		// all doors.
		if len(sup) == 0 {
			sup = append(sup, part.Doors...)
		}
		t.superiorDoors[pid] = sup
	}
}

// buildNonLeafMatrices implements step 4: distance matrices of non-leaf
// nodes computed bottom-up on the level-l graphs. Each level graph is built
// once (sequentially — it reads the matrices of the levels below) and then
// shared read-only by the per-node matrix builds of that level, which fan
// out over a worker pool: every node's matrix depends only on the level
// graph, so parallel builds are bit-identical to sequential ones.
func (t *Tree) buildNonLeafMatrices() {
	// Group nodes by level.
	maxLevel := 0
	for i := range t.nodes {
		if t.nodes[i].Level > maxLevel {
			maxLevel = t.nodes[i].Level
		}
	}
	byLevel := make([][]NodeID, maxLevel+1)
	for i := range t.nodes {
		byLevel[t.nodes[i].Level] = append(byLevel[t.nodes[i].Level], t.nodes[i].ID)
	}

	var ls levelScratch
	workers := t.opts.workers()
	scratches := make([]nodeScratch, max(workers, 1))
	for level := 2; level <= maxLevel; level++ {
		nodesAt := byLevel[level]
		if len(nodesAt) == 0 {
			continue
		}
		gl := t.buildLevelGraph(level, &ls)
		runParallel(len(nodesAt), min(workers, len(nodesAt)), func(w, i int) {
			n := &t.nodes[nodesAt[i]]
			if n.IsLeaf() {
				return
			}
			t.buildNodeMatrix(n, gl, &ls, &scratches[w])
		})
	}
}

// buildLevelGraph constructs G_l: the vertices are the access doors of every
// node whose parent sits at a level >= l (i.e. the nodes visible just below
// level l), and an edge connects two doors when they are access doors of the
// same such node, weighted by that node's matrix distance. The door-to-vertex
// numbering lives in ls, a dense door-indexed table reset by epoch and reused
// across levels.
func (t *Tree) buildLevelGraph(level int, ls *levelScratch) *graph.Graph {
	ls.reset(t.venue.NumDoors())
	g := graph.New(0)
	for i := range t.nodes {
		n := &t.nodes[i]
		// A node contributes its access doors to G_l when it is the child
		// of a node at level >= `level` (or promoted: its own level is
		// below `level` but its parent's is at or above it). Nodes at or
		// above `level` never contribute.
		if n.Level >= level {
			continue
		}
		parent := n.Parent
		if parent == invalidNode || t.nodes[parent].Level < level {
			continue
		}
		if n.Matrix == nil {
			continue
		}
		for i1 := 0; i1 < len(n.AccessDoors); i1++ {
			for i2 := i1 + 1; i2 < len(n.AccessDoors); i2++ {
				a, b := n.AccessDoors[i1], n.AccessDoors[i2]
				w := n.Matrix.Dist(a, b)
				if w == Infinite {
					continue
				}
				g.AddEdge(ls.vertexOf(a), ls.vertexOf(b), w)
			}
		}
	}
	// Outdoor edges between access doors (e.g. building entrances) must be
	// present in every level graph, otherwise separate buildings would be
	// unreachable from one another above the leaf level.
	for _, e := range t.venue.OutdoorEdges {
		from, ok := ls.lookup(e.From)
		if !ok {
			continue
		}
		to, ok := ls.lookup(e.To)
		if !ok {
			continue
		}
		g.AddEdge(from, to, e.Weight)
	}
	// Make sure every vertex exists in the graph even if isolated.
	g.EnsureVertex(len(ls.vertexDoor) - 1)
	return g
}

// buildNodeMatrix populates the distance matrix of a non-leaf node from the
// level graph: rows and columns are the union of its children's access
// doors, and the next-hop entry is the first door of that union on the
// shortest path (Fig 3, node N7). It only reads ls (the level's vertex
// numbering) and gl, so concurrent calls with distinct node scratches are
// safe.
func (t *Tree) buildNodeMatrix(n *Node, gl *graph.Graph, ls *levelScratch, sc *nodeScratch) {
	sc.inNode.reset(t.venue.NumDoors())
	var doors []model.DoorID
	for _, c := range n.Children {
		for _, d := range t.nodes[c].AccessDoors {
			if !sc.inNode.has(int(d)) {
				sc.inNode.mark(int(d))
				doors = append(doors, d)
			}
		}
	}
	sort.Slice(doors, func(i, j int) bool { return doors[i] < doors[j] })
	n.Matrix = newMatrix(doors, doors)

	sc.targets = sc.targets[:0]
	for _, d := range doors {
		if v, ok := ls.lookup(d); ok {
			sc.targets = append(sc.targets, v)
		}
	}
	for fi, from := range doors {
		src, ok := ls.lookup(from)
		if !ok {
			continue
		}
		dist, prev := gl.ToTargetsInto(src, sc.targets, &sc.search)
		for ti, to := range doors {
			if to == from {
				n.Matrix.setAt(fi, fi, 0, NoDoor)
				continue
			}
			tv, ok := ls.lookup(to)
			if !ok || dist[tv] == graph.Infinity {
				continue
			}
			n.Matrix.setAt(fi, ti, dist[tv], t.levelNextHop(prev, src, tv, ls, &sc.inNode))
		}
	}
}

// levelNextHop picks the next-hop entry for a non-leaf matrix cell: the first
// intermediate door on the shortest path from src to tv that belongs to the
// node's matrix doors. The predecessor array is rooted at src, so the walk
// runs backwards from tv; the last matching door seen is the one closest to
// src, i.e. the first on the forward path — no path slice is materialised.
func (t *Tree) levelNextHop(prev []int, src, tv int, ls *levelScratch, inNode *epochStamps) model.DoorID {
	next := NoDoor
	firstAfterSrc := -1
	for cur := prev[tv]; cur != -1 && cur != src; cur = prev[cur] {
		d := ls.vertexDoor[cur]
		if inNode.has(int(d)) {
			next = d
		}
		firstAfterSrc = cur
	}
	// If intermediate vertices exist but none belongs to this node's
	// children, keep the first one anyway so that path decomposition never
	// silently drops doors; the decomposition routine falls back to a graph
	// search for such edges.
	if next == NoDoor && firstAfterSrc != -1 {
		next = ls.vertexDoor[firstAfterSrc]
	}
	return next
}
