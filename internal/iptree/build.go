package iptree

import (
	"sort"

	"viptree/internal/graph"
	"viptree/internal/model"
)

// This file implements tree construction (Section 2.1.2):
//
//  1. buildLeaves groups adjacent indoor partitions into leaf nodes, keeping
//     every hallway partition in a distinct leaf (rules i and ii).
//  2. buildHierarchy merges nodes level by level with Algorithm 1, choosing
//     merges that maximise the number of shared access doors, and computes
//     the access doors of every node bottom-up.
//  3. buildLeafMatrices runs a Dijkstra search on the D2D graph from every
//     access door of every leaf to populate the leaf distance matrices
//     (distance plus next-hop door), and derives the superior doors of each
//     partition (Definition 2).
//  4. buildNonLeafMatrices builds the level-l graphs G_l and populates the
//     distance matrices of non-leaf nodes bottom-up.

// buildLeaves implements step 1: creating leaf nodes.
func (t *Tree) buildLeaves() {
	v := t.venue
	numParts := v.NumPartitions()
	groupOf := make([]int, numParts)
	for i := range groupOf {
		groupOf[i] = -1
	}
	var groups [][]model.PartitionID

	// Every hallway partition seeds its own group (rule ii keeps hallways in
	// distinct leaves).
	for p := 0; p < numParts; p++ {
		pid := model.PartitionID(p)
		if v.Kind(pid) == model.KindHallway {
			groupOf[p] = len(groups)
			groups = append(groups, []model.PartitionID{pid})
		}
	}

	// Iteratively attach the remaining partitions to adjacent groups. A
	// partition joins the adjacent group with which it shares the most
	// doors (rule i), preferring groups whose hallway lies on the same
	// floor. Merging a non-hallway partition never creates a second hallway
	// in a group, so rule ii holds by construction.
	hallwayFloor := make([]int, len(groups))
	for gi, g := range groups {
		hallwayFloor[gi] = v.Partition(g[0]).Bounds.Floor
	}
	for changed := true; changed; {
		changed = false
		for p := 0; p < numParts; p++ {
			if groupOf[p] != -1 {
				continue
			}
			pid := model.PartitionID(p)
			bestGroup, bestScore, bestSameFloor := -1, -1, false
			for _, adj := range v.AdjacentPartitions(pid) {
				g := groupOf[adj]
				if g == -1 {
					continue
				}
				score := len(v.CommonDoors(pid, adj))
				sameFloor := g < len(hallwayFloor) && hallwayFloor[g] == v.Partition(pid).Bounds.Floor
				if score > bestScore || (score == bestScore && sameFloor && !bestSameFloor) {
					bestGroup, bestScore, bestSameFloor = g, score, sameFloor
				}
			}
			if bestGroup >= 0 {
				groupOf[p] = bestGroup
				groups[bestGroup] = append(groups[bestGroup], pid)
				changed = true
			}
		}
	}

	// Any partitions still unassigned belong to connected components with no
	// hallway (or disconnected from every hallway); each such component
	// becomes its own leaf, which matches the paper's termination rule
	// (merging continues as long as it does not create a two-hallway leaf).
	for p := 0; p < numParts; p++ {
		if groupOf[p] != -1 {
			continue
		}
		gi := len(groups)
		groups = append(groups, nil)
		stack := []model.PartitionID{model.PartitionID(p)}
		groupOf[p] = gi
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			groups[gi] = append(groups[gi], cur)
			for _, adj := range v.AdjacentPartitions(cur) {
				if groupOf[adj] == -1 {
					groupOf[adj] = gi
					stack = append(stack, adj)
				}
			}
		}
	}

	// Materialise the leaf nodes.
	t.leafOfPartition = make([]NodeID, numParts)
	t.doorsOfLeaf = make(map[NodeID][]model.DoorID, len(groups))
	for _, parts := range groups {
		id := NodeID(len(t.nodes))
		sort.Slice(parts, func(i, j int) bool { return parts[i] < parts[j] })
		t.nodes = append(t.nodes, Node{ID: id, Parent: invalidNode, Level: 1, Partitions: parts})
		doorSet := make(map[model.DoorID]bool)
		for _, pid := range parts {
			t.leafOfPartition[pid] = id
			for _, d := range v.Partition(pid).Doors {
				doorSet[d] = true
			}
		}
		doors := make([]model.DoorID, 0, len(doorSet))
		for d := range doorSet {
			doors = append(doors, d)
		}
		sort.Slice(doors, func(i, j int) bool { return doors[i] < doors[j] })
		t.doorsOfLeaf[id] = doors
	}

	// Per-door bookkeeping: the leaves containing each door.
	t.leavesOfDoor = make([][]NodeID, v.NumDoors())
	for leaf, doors := range t.doorsOfLeaf {
		for _, d := range doors {
			t.leavesOfDoor[d] = append(t.leavesOfDoor[d], leaf)
		}
	}
	for d := range t.leavesOfDoor {
		sort.Slice(t.leavesOfDoor[d], func(i, j int) bool { return t.leavesOfDoor[d][i] < t.leavesOfDoor[d][j] })
	}
}

// accessDoorsOfLeaf computes AD(N) for a leaf: the doors connecting it to
// partitions outside the leaf, to the exterior of the venue, or to other
// buildings via outdoor edges.
func (t *Tree) accessDoorsOfLeaf(leaf NodeID) []model.DoorID {
	inLeaf := make(map[model.PartitionID]bool)
	for _, p := range t.nodes[leaf].Partitions {
		inLeaf[p] = true
	}
	var out []model.DoorID
	for _, d := range t.doorsOfLeaf[leaf] {
		if t.doorLeadsOutside(d, func(p model.PartitionID) bool { return inLeaf[p] }) {
			out = append(out, d)
		}
	}
	return out
}

// doorLeadsOutside reports whether door d connects to the space outside the
// region described by inside (a predicate over partitions): it is an
// exterior door, connects to a partition outside the region, or has an
// outdoor edge to a door attached to a partition outside the region.
func (t *Tree) doorLeadsOutside(d model.DoorID, inside func(model.PartitionID) bool) bool {
	v := t.venue
	door := v.Door(d)
	if len(door.Partitions) < 2 {
		return true // exterior door
	}
	for _, p := range door.Partitions {
		if !inside(p) {
			return true
		}
	}
	for _, e := range v.OutdoorEdges {
		var other model.DoorID
		switch d {
		case e.From:
			other = e.To
		case e.To:
			other = e.From
		default:
			continue
		}
		for _, p := range v.Door(other).Partitions {
			if !inside(p) {
				return true
			}
		}
		if len(v.Door(other).Partitions) < 2 {
			return true
		}
	}
	return false
}

// buildHierarchy implements step 2 (Algorithm 1): merging nodes level by
// level until a single root remains, computing access doors bottom-up.
func (t *Tree) buildHierarchy() {
	minDegree := t.opts.minDegree()

	// curNodeOf maps each partition to its current-level node.
	curNodeOf := make([]NodeID, t.venue.NumPartitions())
	current := make([]NodeID, 0, len(t.nodes))
	for i := range t.nodes {
		leaf := &t.nodes[i]
		leaf.AccessDoors = t.accessDoorsOfLeaf(leaf.ID)
		current = append(current, leaf.ID)
		for _, p := range leaf.Partitions {
			curNodeOf[p] = leaf.ID
		}
	}

	level := 1
	for len(current) > minDegree {
		next := t.createNextLevel(current, minDegree, level+1, curNodeOf)
		if len(next) >= len(current) {
			break // no merging possible; avoid an infinite loop
		}
		t.updateCurrentNodes(next, curNodeOf)
		current = next
		level++
	}
	// Merge whatever remains into the root.
	if len(current) == 1 {
		t.root = current[0]
	} else {
		t.root = t.newInternalNode(current, level+1, curNodeOf)
		t.updateCurrentNodes([]NodeID{t.root}, curNodeOf)
	}

	// Per-door access bookkeeping used by path decomposition and VIP
	// materialisation.
	t.isLeafAccessDoor = make([]bool, t.venue.NumDoors())
	t.accessNodesOfDoor = make([][]NodeID, t.venue.NumDoors())
	for i := range t.nodes {
		n := &t.nodes[i]
		for _, d := range n.AccessDoors {
			if n.IsLeaf() {
				t.isLeafAccessDoor[d] = true
			}
			t.accessNodesOfDoor[d] = append(t.accessNodesOfDoor[d], n.ID)
		}
	}
}

// createNextLevel is Algorithm 1: merge the nodes of the current level so
// that every new node contains at least minDegree current-level nodes,
// preferring merges that maximise the number of shared access doors.
func (t *Tree) createNextLevel(current []NodeID, minDegree, newLevel int, curNodeOf []NodeID) []NodeID {
	type entry struct {
		node     NodeID
		degree   int
		children []NodeID
	}
	entries := make(map[NodeID]*entry, len(current))
	for _, id := range current {
		entries[id] = &entry{node: id, degree: 1, children: []NodeID{id}}
	}
	adjacentCount := func(id NodeID) int {
		count := 0
		for other := range entries {
			if other != id && t.commonAccessDoors(entries[id].children, entries[other].children) > 0 {
				count++
			}
		}
		return count
	}
	// A simple ordered scan stands in for the min-heap of Algorithm 1: at
	// every step pick the unmerged entry with the smallest degree (ties
	// broken by fewest adjacent entries, then by ID for determinism).
	pickMin := func() *entry {
		var best *entry
		bestAdj := 0
		for _, e := range entries {
			if best == nil || e.degree < best.degree ||
				(e.degree == best.degree && adjacentCount(e.node) < bestAdj) ||
				(e.degree == best.degree && adjacentCount(e.node) == bestAdj && e.node < best.node) {
				best = e
				bestAdj = adjacentCount(e.node)
			}
		}
		return best
	}
	for {
		minEntry := pickMin()
		if minEntry == nil || minEntry.degree >= minDegree || len(entries) <= 1 {
			break
		}
		// Find the partner with the largest number of common access doors;
		// fall back to any entry whose doors are connected to ours in the
		// D2D graph (covers buildings linked only by outdoor edges), then
		// to an arbitrary entry.
		var best *entry
		bestScore := -1
		for _, e := range entries {
			if e.node == minEntry.node {
				continue
			}
			score := 2 * t.commonAccessDoors(minEntry.children, e.children)
			if score == 0 && t.connectedViaD2D(minEntry.children, e.children) {
				score = 1 // connected (e.g. via an outdoor path) but sharing no door
			}
			if t.opts.NaiveMerge {
				// Ablation: ignore the access-door heuristic; any connected
				// neighbour is as good as any other.
				if score > 0 {
					score = 1
				}
			}
			if score > bestScore || (score == bestScore && (best == nil || e.node < best.node)) {
				best, bestScore = e, score
			}
		}
		if best == nil {
			break
		}
		delete(entries, minEntry.node)
		delete(entries, best.node)
		merged := &entry{
			node:     minEntry.node, // temporary key; the real node is created below
			degree:   minEntry.degree + best.degree,
			children: append(append([]NodeID(nil), minEntry.children...), best.children...),
		}
		entries[merged.node] = merged
	}
	// Materialise the next-level nodes.
	keys := make([]NodeID, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var next []NodeID
	for _, k := range keys {
		e := entries[k]
		if len(e.children) == 1 {
			// Unmerged node: it is promoted to the next level unchanged and
			// keeps participating in later merges.
			next = append(next, e.children[0])
			continue
		}
		next = append(next, t.newInternalNode(e.children, newLevel, curNodeOf))
	}
	return next
}

// newInternalNode creates a non-leaf node with the given children and
// computes its access doors.
func (t *Tree) newInternalNode(children []NodeID, level int, curNodeOf []NodeID) NodeID {
	id := NodeID(len(t.nodes))
	childSet := make(map[NodeID]bool, len(children))
	for _, c := range children {
		childSet[c] = true
	}
	inside := func(p model.PartitionID) bool { return childSet[curNodeOf[p]] }
	doorSeen := make(map[model.DoorID]bool)
	var access []model.DoorID
	for _, c := range children {
		for _, d := range t.nodes[c].AccessDoors {
			if doorSeen[d] {
				continue
			}
			doorSeen[d] = true
			if t.doorLeadsOutside(d, inside) {
				access = append(access, d)
			}
		}
	}
	sort.Slice(access, func(i, j int) bool { return access[i] < access[j] })
	t.nodes = append(t.nodes, Node{ID: id, Parent: invalidNode, Children: children, Level: level, AccessDoors: access})
	for _, c := range children {
		t.nodes[c].Parent = id
		// Promoted nodes may sit at a lower level than their siblings; the
		// level recorded at creation time is kept (levels only need to be
		// monotone along root paths for LCA computation).
	}
	return id
}

// updateCurrentNodes repoints curNodeOf at the nodes of the new level.
func (t *Tree) updateCurrentNodes(level []NodeID, curNodeOf []NodeID) {
	for _, id := range level {
		t.forEachLeafUnder(id, func(leaf NodeID) {
			for _, p := range t.nodes[leaf].Partitions {
				curNodeOf[p] = id
			}
		})
	}
}

// forEachLeafUnder visits every leaf in the subtree rooted at id.
func (t *Tree) forEachLeafUnder(id NodeID, fn func(NodeID)) {
	if t.nodes[id].IsLeaf() {
		fn(id)
		return
	}
	for _, c := range t.nodes[id].Children {
		t.forEachLeafUnder(c, fn)
	}
}

// commonAccessDoors counts the access doors shared between the unions of two
// groups of nodes.
func (t *Tree) commonAccessDoors(a, b []NodeID) int {
	doors := make(map[model.DoorID]bool)
	for _, n := range a {
		for _, d := range t.nodes[n].AccessDoors {
			doors[d] = true
		}
	}
	count := 0
	seen := make(map[model.DoorID]bool)
	for _, n := range b {
		for _, d := range t.nodes[n].AccessDoors {
			if doors[d] && !seen[d] {
				seen[d] = true
				count++
			}
		}
	}
	return count
}

// connectedViaD2D reports whether any access door of group a has a direct
// D2D edge to an access door of group b (this is how buildings linked only
// by outdoor paths become mergeable).
func (t *Tree) connectedViaD2D(a, b []NodeID) bool {
	bDoors := make(map[int]bool)
	for _, n := range b {
		for _, d := range t.nodes[n].AccessDoors {
			bDoors[int(d)] = true
		}
	}
	g := t.venue.D2D().Graph
	for _, n := range a {
		for _, d := range t.nodes[n].AccessDoors {
			for _, e := range g.Neighbors(int(d)) {
				if bDoors[e.To] {
					return true
				}
			}
		}
	}
	return false
}

// buildLeafMatrices implements step 3: for each access door of each leaf,
// run a Dijkstra search on the D2D graph until every door of the leaf is
// settled, then populate distances, next-hop doors and superior doors.
func (t *Tree) buildLeafMatrices() {
	v := t.venue
	d2d := v.D2D().Graph
	t.superiorDoors = make([][]model.DoorID, v.NumPartitions())

	for i := range t.nodes {
		leaf := &t.nodes[i]
		if !leaf.IsLeaf() {
			continue
		}
		doors := t.doorsOfLeaf[leaf.ID]
		leaf.Matrix = newMatrix(doors, leaf.AccessDoors)
		inLeaf := make(map[model.DoorID]bool, len(doors))
		for _, d := range doors {
			inLeaf[d] = true
		}
		// prevOf[access door] is the Dijkstra predecessor array rooted at
		// that access door; it doubles as the path source for next-hop and
		// superior-door computation.
		prevOf := make(map[model.DoorID][]int, len(leaf.AccessDoors))
		targets := make([]int, len(doors))
		for j, d := range doors {
			targets[j] = int(d)
		}
		for _, a := range leaf.AccessDoors {
			dist, prev := d2d.ToTargets(int(a), targets)
			prevOf[a] = prev
			for _, d := range doors {
				if dist[int(d)] == graph.Infinity {
					continue
				}
				next := t.leafNextHop(d, a, prev, inLeaf)
				leaf.Matrix.set(d, a, dist[int(d)], next)
			}
		}
		t.computeSuperiorDoorsOfLeaf(leaf, inLeaf, prevOf)
	}
}

// leafNextHop determines the next-hop door stored in a leaf matrix for the
// entry (from row door d towards access door a), given the predecessor array
// of the Dijkstra search rooted at a. If the shortest path stays inside the
// leaf the next hop is the first door on it; if it leaves the leaf, the next
// hop is the first door on the path that is an access door of at least one
// leaf (Section 2.1.1 and Example 6); if there is no intermediate door the
// entry is NULL.
func (t *Tree) leafNextHop(d, a model.DoorID, prev []int, inLeaf map[model.DoorID]bool) model.DoorID {
	if d == a {
		return NoDoor
	}
	// Walk the path d -> ... -> a using the predecessor array rooted at a:
	// prev[x] is the next door after x on the path from x to a.
	var chain []model.DoorID
	for cur := prev[int(d)]; cur != -1 && model.DoorID(cur) != a; cur = prev[cur] {
		chain = append(chain, model.DoorID(cur))
	}
	if len(chain) == 0 {
		return NoDoor
	}
	staysInside := true
	for _, c := range chain {
		if !inLeaf[c] {
			staysInside = false
			break
		}
	}
	if staysInside {
		return chain[0]
	}
	for _, c := range chain {
		if t.isLeafAccessDoor[c] {
			return c
		}
	}
	return chain[0]
}

// computeSuperiorDoorsOfLeaf derives the superior doors (Definition 2) of
// every partition in the leaf: the local access doors plus every door whose
// shortest path to some global access door avoids all other doors of the
// partition.
func (t *Tree) computeSuperiorDoorsOfLeaf(leaf *Node, inLeaf map[model.DoorID]bool, prevOf map[model.DoorID][]int) {
	v := t.venue
	accessSet := make(map[model.DoorID]bool, len(leaf.AccessDoors))
	for _, a := range leaf.AccessDoors {
		accessSet[a] = true
	}
	for _, pid := range leaf.Partitions {
		part := v.Partition(pid)
		if t.opts.DisableSuperiorDoors {
			t.superiorDoors[pid] = append([]model.DoorID(nil), part.Doors...)
			continue
		}
		partDoors := make(map[model.DoorID]bool, len(part.Doors))
		for _, d := range part.Doors {
			partDoors[d] = true
		}
		var sup []model.DoorID
		for _, d := range part.Doors {
			if accessSet[d] {
				sup = append(sup, d) // local access door
				continue
			}
			if t.isSuperior(d, pid, leaf, partDoors, prevOf) {
				sup = append(sup, d)
			}
		}
		// Every partition needs at least one superior door for Eq. (1) to
		// have candidates; degenerate cases (no access doors at all) keep
		// all doors.
		if len(sup) == 0 {
			sup = append(sup, part.Doors...)
		}
		t.superiorDoors[pid] = sup
	}
}

// isSuperior reports whether door d of partition pid is a superior door:
// there exists a global access door a of the leaf such that the shortest
// path from d to a passes through no other door of the partition.
func (t *Tree) isSuperior(d model.DoorID, pid model.PartitionID, leaf *Node, partDoors map[model.DoorID]bool, prevOf map[model.DoorID][]int) bool {
	for _, a := range leaf.AccessDoors {
		if partDoors[a] {
			continue // local access door, not a global one
		}
		prev := prevOf[a]
		if prev == nil || prev[int(d)] == -1 && d != a {
			continue
		}
		clean := true
		for cur := prev[int(d)]; cur != -1 && model.DoorID(cur) != a; cur = prev[cur] {
			if partDoors[model.DoorID(cur)] {
				clean = false
				break
			}
		}
		if clean {
			return true
		}
	}
	return false
}

// buildNonLeafMatrices implements step 4: distance matrices of non-leaf
// nodes computed bottom-up on the level-l graphs.
func (t *Tree) buildNonLeafMatrices() {
	// Group nodes by level.
	maxLevel := 0
	for i := range t.nodes {
		if t.nodes[i].Level > maxLevel {
			maxLevel = t.nodes[i].Level
		}
	}
	byLevel := make([][]NodeID, maxLevel+1)
	for i := range t.nodes {
		byLevel[t.nodes[i].Level] = append(byLevel[t.nodes[i].Level], t.nodes[i].ID)
	}

	for level := 2; level <= maxLevel; level++ {
		nodesAt := byLevel[level]
		if len(nodesAt) == 0 {
			continue
		}
		gl, doorVertex, vertexDoor := t.buildLevelGraph(level)
		for _, id := range nodesAt {
			n := &t.nodes[id]
			if n.IsLeaf() {
				continue
			}
			t.buildNodeMatrix(n, gl, doorVertex, vertexDoor)
		}
	}
}

// buildLevelGraph constructs G_l: the vertices are the access doors of every
// node whose parent sits at a level >= l (i.e. the nodes visible just below
// level l), and an edge connects two doors when they are access doors of the
// same such node, weighted by that node's matrix distance.
func (t *Tree) buildLevelGraph(level int) (*graph.Graph, map[model.DoorID]int, []model.DoorID) {
	doorVertex := make(map[model.DoorID]int)
	var vertexDoor []model.DoorID
	vertexOf := func(d model.DoorID) int {
		if v, ok := doorVertex[d]; ok {
			return v
		}
		v := len(vertexDoor)
		doorVertex[d] = v
		vertexDoor = append(vertexDoor, d)
		return v
	}
	g := graph.New(0)
	for i := range t.nodes {
		n := &t.nodes[i]
		// A node contributes its access doors to G_l when it is the child
		// of a node at level >= `level` (or promoted: its own level is
		// below `level` but its parent's is at or above it). Nodes at or
		// above `level` never contribute.
		if n.Level >= level {
			continue
		}
		parent := n.Parent
		if parent == invalidNode || t.nodes[parent].Level < level {
			continue
		}
		if n.Matrix == nil {
			continue
		}
		for i1 := 0; i1 < len(n.AccessDoors); i1++ {
			for i2 := i1 + 1; i2 < len(n.AccessDoors); i2++ {
				a, b := n.AccessDoors[i1], n.AccessDoors[i2]
				w := n.Matrix.Dist(a, b)
				if w == Infinite {
					continue
				}
				g.AddEdge(vertexOf(a), vertexOf(b), w)
			}
		}
	}
	// Outdoor edges between access doors (e.g. building entrances) must be
	// present in every level graph, otherwise separate buildings would be
	// unreachable from one another above the leaf level.
	for _, e := range t.venue.OutdoorEdges {
		if _, ok := doorVertex[e.From]; !ok {
			continue
		}
		if _, ok := doorVertex[e.To]; !ok {
			continue
		}
		g.AddEdge(doorVertex[e.From], doorVertex[e.To], e.Weight)
	}
	// Make sure every vertex exists in the graph even if isolated.
	g.EnsureVertex(len(vertexDoor) - 1)
	return g, doorVertex, vertexDoor
}

// buildNodeMatrix populates the distance matrix of a non-leaf node from the
// level graph: rows and columns are the union of its children's access
// doors, and the next-hop entry is the first door of that union on the
// shortest path (Fig 3, node N7).
func (t *Tree) buildNodeMatrix(n *Node, gl *graph.Graph, doorVertex map[model.DoorID]int, vertexDoor []model.DoorID) {
	doorSet := make(map[model.DoorID]bool)
	var doors []model.DoorID
	for _, c := range n.Children {
		for _, d := range t.nodes[c].AccessDoors {
			if !doorSet[d] {
				doorSet[d] = true
				doors = append(doors, d)
			}
		}
	}
	sort.Slice(doors, func(i, j int) bool { return doors[i] < doors[j] })
	n.Matrix = newMatrix(doors, doors)

	targets := make([]int, 0, len(doors))
	for _, d := range doors {
		if v, ok := doorVertex[d]; ok {
			targets = append(targets, v)
		}
	}
	for _, from := range doors {
		src, ok := doorVertex[from]
		if !ok {
			continue
		}
		dist, prev := gl.ToTargets(src, targets)
		for _, to := range doors {
			if to == from {
				n.Matrix.set(from, from, 0, NoDoor)
				continue
			}
			tv, ok := doorVertex[to]
			if !ok || dist[tv] == graph.Infinity {
				continue
			}
			// Reconstruct the path from `from` to `to` and pick the first
			// intermediate door that belongs to the children's access
			// doors.
			path := graph.PathOnPrev(prev, src, tv)
			next := NoDoor
			for _, pv := range path[1 : len(path)-1] {
				d := vertexDoor[pv]
				if doorSet[d] {
					next = d
					break
				}
			}
			// If intermediate vertices exist but none belongs to this
			// node's children, keep the first one anyway so that path
			// decomposition never silently drops doors; the decomposition
			// routine falls back to a graph search for such edges.
			if next == NoDoor && len(path) > 2 {
				next = vertexDoor[path[1]]
			}
			n.Matrix.set(from, to, dist[tv], next)
		}
	}
}
