package iptree

import (
	"runtime"
	"sync"
	"sync/atomic"

	"viptree/internal/graph"
	"viptree/internal/model"
)

// This file implements the reusable scratch state of tree construction. The
// build loops of Section 2.1.2 are hot: every leaf runs one Dijkstra search
// per access door and every non-leaf node one per matrix row. The per-node
// working sets (door membership, superior-door marks, level-graph vertex
// numbering) therefore live in epoch-stamped dense tables recycled across
// nodes — and, because each node's matrix only depends on read-only inputs
// (the venue, the D2D graph, the level graph and the matrices of lower
// levels), across goroutines: every worker owns one scratch and the per-node
// loops fan out over a worker pool (Options.Parallelism).

// workers resolves the construction worker count: Options.Parallelism, or
// GOMAXPROCS when unset.
func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// runParallel executes fn(worker, i) for every i in [0, n) over the given
// number of workers. Items are handed out through an atomic counter, so the
// assignment of items to workers is non-deterministic — callers must ensure
// fn writes only item-owned state (disjoint per i), which is what makes
// parallel builds bit-identical to sequential ones. With one worker it
// degenerates to a plain loop on the calling goroutine.
//
// A panic in fn is captured (first one wins), the pool drains, and the
// panic value is re-raised on the calling goroutine, so a recover around
// runParallel — the engine's per-query panic isolation reaches index calls
// through exactly that — observes worker panics instead of the process
// dying on an unrecovered goroutine.
func runParallel(n, workers int, fn func(worker, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var (
		next     atomic.Int64
		panicked atomic.Bool
		panicVal any
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil && panicked.CompareAndSwap(false, true) {
					panicVal = v
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || panicked.Load() {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
	if panicked.Load() {
		panic(panicVal)
	}
}

// epochStamps is a dense stamped membership set over integer IDs (doors,
// nodes, objects) with O(1) reset: an ID is a member only when its stamp
// equals the current epoch, so clearing the set is one increment. Every
// transient working set of the build and query pipelines shares this one
// implementation of the reset/wrap rule.
type epochStamps struct {
	stamp []uint32
	epoch uint32
}

// reset prepares the set for IDs in [0, n), clearing it. It allocates only
// on first use (or if n grew).
func (es *epochStamps) reset(n int) {
	if len(es.stamp) < n {
		es.stamp = make([]uint32, n)
		es.epoch = 1
		return
	}
	es.epoch++
	if es.epoch == 0 { // epoch wrapped: clear the stamps and restart
		for i := range es.stamp {
			es.stamp[i] = 0
		}
		es.epoch = 1
	}
}

func (es *epochStamps) mark(i int) { es.stamp[i] = es.epoch }
func (es *epochStamps) has(i int) bool {
	return es.stamp[i] == es.epoch
}

// leafScratch is the per-worker working set of buildLeafMatrices: the
// Dijkstra buffers, the door-membership sets of the current leaf and the
// superior-door marks of its partitions.
type leafScratch struct {
	search graph.SearchScratch
	// inLeaf marks the doors of the current leaf.
	inLeaf epochStamps
	// access marks the access doors of the current leaf.
	access epochStamps
	// targets is the reusable Dijkstra target list (the leaf's doors).
	targets []int
	// supMark[supOffset[pi]+di] records that door di of the leaf's pi-th
	// partition has been proven superior; both slices are resized per leaf.
	supMark   []bool
	supOffset []int
}

// nodeScratch is the per-worker working set of buildNodeMatrix: the Dijkstra
// buffers over the level graph and the door-membership set of the node's
// matrix doors.
type nodeScratch struct {
	search  graph.SearchScratch
	inNode  epochStamps
	targets []int
}

// levelScratch carries the level-graph vertex numbering across levels
// (vertex[d] is door d's vertex in the current level graph, valid when door
// d is in the stamped set), so rebuilding G_l for every level reuses one
// dense door-indexed table instead of growing a fresh map each time.
type levelScratch struct {
	vertex     []int32
	seen       epochStamps
	vertexDoor []model.DoorID
}

// reset invalidates the numbering for a venue with n doors.
func (ls *levelScratch) reset(n int) {
	if len(ls.vertex) < n {
		ls.vertex = make([]int32, n)
	}
	ls.seen.reset(n)
	ls.vertexDoor = ls.vertexDoor[:0]
}

// vertexOf returns door d's vertex in the current level graph, assigning the
// next dense vertex ID on first sight.
func (ls *levelScratch) vertexOf(d model.DoorID) int {
	if ls.seen.has(int(d)) {
		return int(ls.vertex[d])
	}
	v := len(ls.vertexDoor)
	ls.vertex[d] = int32(v)
	ls.seen.mark(int(d))
	ls.vertexDoor = append(ls.vertexDoor, d)
	return v
}

// lookup returns door d's vertex without assigning one.
func (ls *levelScratch) lookup(d model.DoorID) (int, bool) {
	if ls.seen.has(int(d)) {
		return int(ls.vertex[d]), true
	}
	return 0, false
}

// vipScratchBuild is the per-worker working set of VIP materialisation: the
// dense distance/via table over doors and the node-visited marks of the climb.
type vipScratchBuild struct {
	tab doorTable
	// nodeSeen marks the tree nodes already on the climb order.
	nodeSeen epochStamps
	climb    []NodeID
	order    []NodeID
	// propDoors/propRows pair each child access door of the node being
	// propagated with its row position in the node's matrix.
	propDoors []model.DoorID
	propRows  []int32
}

func (sc *vipScratchBuild) reset(numDoors, numNodes int) {
	sc.tab.reset(numDoors)
	sc.nodeSeen.reset(numNodes)
	sc.climb = sc.climb[:0]
	sc.order = sc.order[:0]
}
