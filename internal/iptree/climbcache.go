package iptree

import (
	"sync"
	"sync/atomic"

	"viptree/internal/index"
	"viptree/internal/model"
)

// This file implements the tree-lifetime climb cache consulted by the
// batched kNN/range path (objbatch.go). A climb block is the output of one
// Algorithm-2 leaf-to-root climb: the distances from a source location to
// the access doors of every ancestor of its leaf, laid out chain-order
// (leaf first, root last, each node's slice aligned with its AccessDoors).
// Blocks depend only on the source location and the static tree topology —
// never on the embedded objects — so they stay valid across object updates
// and epoch publications, which is what makes caching them across batches
// safe and invalidation trivial. Skewed workloads (hot lobbies, rush-hour
// entrances) issue many queries from literally the same location; a warm
// hit hands the finished block back and the batch performs zero
// leaf-to-root matrix sweeps for that source.
//
// The cache is bounded (a fixed number of entries), keyed by the exact
// source location, and evicted with a clock (second-chance) hand: a lookup
// sets the slot's reference bit, the hand clears bits until it finds a
// cold slot and reuses it. Entries are epoch-stamped: invalidate bumps the
// cache epoch in O(1), making every resident entry stale without touching
// it (stale slots are preferred victims). Blocks handed out are immutable —
// eviction drops the cache's reference, never the reader's — so lookups
// are a short critical section and readers touch the block lock-free.

// defaultClimbCacheEntries bounds the cache when the capacity was never
// configured. At a few hundred bytes per block this keeps the default
// footprint in the low megabytes on paper-scale trees.
const defaultClimbCacheEntries = 1024

// climbSlot is one clock slot of the cache.
type climbSlot struct {
	loc   model.Location
	block []float64
	epoch uint32
	ref   bool
	used  bool
}

// climbCache is the bounded location-keyed block cache. The zero value is
// ready to use with the default capacity.
type climbCache struct {
	mu     sync.Mutex
	slots  []climbSlot
	byLoc  map[model.Location]int
	hand   int
	epoch  uint32
	capSet bool
	cap    int

	hits, misses, evictions uint64
	bytes                   int64
	// sweeps counts leaf-to-root matrix sweep levels executed by batched
	// climb fills (one per propagated level); it is written outside the
	// mutex by the fill path, hence atomic.
	sweeps atomic.Uint64
}

// capacity returns the configured entry bound (the default when never set;
// zero means the cache is disabled).
func (c *climbCache) capacity() int {
	if !c.capSet {
		return defaultClimbCacheEntries
	}
	return c.cap
}

// setCapacity bounds the cache to at most n entries; n == 0 disables it and
// n < 0 restores the default bound. Resident entries are dropped (the
// counters are kept), so callers can use it to reset the cache between
// measurement runs.
func (c *climbCache) setCapacity(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.capSet = n >= 0
	c.cap = max(n, 0)
	c.slots = nil
	c.byLoc = nil
	c.hand = 0
	c.bytes = 0
}

// invalidate stamps every resident entry stale in O(1). The tree topology
// is immutable after construction, so nothing calls this on the query
// paths; it exists for completeness (and the tests) should a future tree
// mutation need it.
func (c *climbCache) invalidate() {
	c.mu.Lock()
	c.epoch++
	c.bytes = 0
	c.mu.Unlock()
}

// lookup returns the cached block for the location, or nil. The returned
// slice is immutable; callers may read it after the call without holding
// any lock.
func (c *climbCache) lookup(loc model.Location) []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.capacity() == 0 {
		return nil
	}
	if i, ok := c.byLoc[loc]; ok && c.slots[i].epoch == c.epoch {
		c.slots[i].ref = true
		c.hits++
		return c.slots[i].block
	}
	c.misses++
	return nil
}

// insert copies the block into a cache-owned slice and admits it under the
// location, evicting with the clock hand when full. A concurrent insert of
// the same location wins harmlessly: blocks for one location are
// bit-identical by construction.
func (c *climbCache) insert(loc model.Location, block []float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	capEntries := c.capacity()
	if capEntries == 0 {
		return
	}
	if i, ok := c.byLoc[loc]; ok && c.slots[i].epoch == c.epoch {
		return
	}
	if c.byLoc == nil {
		c.byLoc = make(map[model.Location]int)
	}
	var i int
	if len(c.slots) < capEntries {
		i = len(c.slots)
		c.slots = append(c.slots, climbSlot{})
	} else {
		// Clock sweep: stale entries (old epoch) are immediate victims;
		// fresh ones get a second chance through their reference bit.
		for {
			s := &c.slots[c.hand]
			if !s.used || s.epoch != c.epoch || !s.ref {
				break
			}
			s.ref = false
			c.hand = (c.hand + 1) % len(c.slots)
		}
		i = c.hand
		c.hand = (c.hand + 1) % len(c.slots)
		if c.slots[i].used {
			delete(c.byLoc, c.slots[i].loc)
			if c.slots[i].epoch == c.epoch {
				c.evictions++
				c.bytes -= int64(len(c.slots[i].block)) * 8
			}
		}
	}
	owned := make([]float64, len(block))
	copy(owned, block)
	c.slots[i] = climbSlot{loc: loc, block: owned, epoch: c.epoch, ref: true, used: true}
	c.byLoc[loc] = i
	c.bytes += int64(len(owned)) * 8
}

// stats snapshots the cache counters.
func (c *climbCache) stats() index.ClimbCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	entries := 0
	for i := range c.slots {
		if c.slots[i].used && c.slots[i].epoch == c.epoch {
			entries++
		}
	}
	return index.ClimbCacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   entries,
		Bytes:     c.bytes,
		Sweeps:    c.sweeps.Load(),
	}
}

// ClimbCacheStats snapshots the counters of the tree's climb cache: the
// tree-lifetime cache of Algorithm-2 climb blocks consulted by the batched
// kNN/range path (KNNBatch/RangeBatch).
func (t *Tree) ClimbCacheStats() index.ClimbCacheStats { return t.climb.stats() }

// SetClimbCacheCapacity bounds the climb cache to at most n entries; n == 0
// disables caching entirely and n < 0 restores the default bound. Resident
// entries are dropped, so calling it also resets the cache (the counters are
// kept). Safe to call concurrently with queries.
func (t *Tree) SetClimbCacheCapacity(n int) { t.climb.setCapacity(n) }

// ClimbCacheStats forwards the counters of the underlying tree's climb
// cache, implementing index.ClimbCacheReporter on the object index — the
// handle the engine and queryrunner hold.
func (oi *ObjectIndex) ClimbCacheStats() index.ClimbCacheStats { return oi.tree.ClimbCacheStats() }
