package iptree

import (
	"bytes"
	"math/rand"
	"reflect"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"testing"

	"viptree/internal/index"
	"viptree/internal/model"
	"viptree/internal/updatelog"
	"viptree/internal/venuegen"
)

// This file tests the epoch-published read path: queries pin an immutable
// epoch with one atomic load and must observe exactly the state of some
// published log prefix — never a torn update, never a lock operation.

// epochSample is one query result recorded by a reader during the update
// storm, together with the sequence number of the epoch it ran against.
type epochSample struct {
	seq    uint64
	q      model.Location
	k      int     // kNN parameter; 0 for range queries
	radius float64 // range parameter
	res    []index.ObjectResult
}

// TestEpochReadersNeverSeeTornUpdates is the central consistency property
// of the update-log design: under a concurrent update storm, every query
// result is exactly the state of some published epoch — a prefix of the
// update log — verified by serially replaying that prefix into a fresh
// build and comparing bit-identical results. In particular a cross-leaf
// Move is atomic from a reader's view (the pre-epoch sharded-lock design
// documented weaker semantics: a reader overlapping a cross-leaf move
// could see the object at both locations or neither).
func TestEpochReadersNeverSeeTornUpdates(t *testing.T) {
	venues := map[string]*model.Venue{
		"paper-example": venuegen.PaperExample(),
		"men-tiny":      venuegen.Menzies(venuegen.ScaleTiny),
		"campus-tiny":   venuegen.Clayton(venuegen.ScaleTiny),
		"random-7":      randomVenue(7),
		"random-23":     randomVenue(23),
	}
	for name, v := range venues {
		t.Run(name, func(t *testing.T) {
			tree := MustBuildIPTree(v, Options{})
			initial := randomObjects(v, 12, 55)
			oi := tree.IndexObjects(initial)

			const updaters = 3
			const minOpsPerUpdater = 120
			const maxOpsPerUpdater = 100_000 // runaway backstop
			const readers = 3
			const samplesPerReader = 20

			// Updaters own disjoint ID sets (initial IDs striped by
			// updater, plus their own inserts), so every submitted update
			// is valid and consumes a sequence number. They churn at least
			// minOpsPerUpdater ops and then keep going until every reader
			// has its sample quota, so the readers genuinely race the
			// writer across many published epochs.
			var applied atomic.Uint64
			var wg sync.WaitGroup
			readersDone := make(chan struct{})
			stormDone := make(chan struct{})
			for u := 0; u < updaters; u++ {
				wg.Add(1)
				go func(u int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(300 + u)))
					var owned []ObjectID
					for id := range initial {
						if id%updaters == u {
							owned = append(owned, id)
						}
					}
					for op := 0; op < maxOpsPerUpdater; op++ {
						if op >= minOpsPerUpdater {
							select {
							case <-readersDone:
								return
							default:
							}
						}
						// Insert/delete balanced so the population stays
						// near its initial size however long the storm runs.
						switch r := rng.Float64(); {
						case r < 0.25 || len(owned) == 0:
							id, err := oi.Insert(v.RandomLocation(rng))
							if err != nil {
								t.Errorf("updater %d: Insert: %v", u, err)
								return
							}
							owned = append(owned, id)
						case r < 0.50 && len(owned) > 1:
							i := rng.Intn(len(owned))
							if err := oi.Delete(owned[i]); err != nil {
								t.Errorf("updater %d: Delete(%d): %v", u, owned[i], err)
								return
							}
							owned = append(owned[:i], owned[i+1:]...)
						default:
							id := owned[rng.Intn(len(owned))]
							if err := oi.Move(id, v.RandomLocation(rng)); err != nil {
								t.Errorf("updater %d: Move(%d): %v", u, id, err)
								return
							}
						}
						applied.Add(1)
					}
				}(u)
			}
			go func() {
				wg.Wait()
				close(stormDone)
			}()

			// Readers pin epochs and record (seq, query, result) samples
			// while the storm runs, retaining at most one sample per
			// distinct epoch so the retained set spans the churn instead
			// of clustering on the final state.
			sampleCh := make(chan []epochSample, readers)
			var rwg sync.WaitGroup
			for rd := 0; rd < readers; rd++ {
				rwg.Add(1)
				go func(rd int) {
					defer rwg.Done()
					rng := rand.New(rand.NewSource(int64(900 + rd)))
					var samples []epochSample
					lastSeq := ^uint64(0)
					for len(samples) < samplesPerReader {
						select {
						case <-stormDone:
							// Updaters hit the backstop; keep what we have.
							sampleCh <- samples
							return
						default:
						}
						ep := oi.currentEpoch()
						q := v.RandomLocation(rng)
						var s epochSample
						if rng.Intn(2) == 0 {
							k := 1 + rng.Intn(8)
							s = epochSample{seq: ep.seq, q: q, k: k, res: oi.knnAt(ep, q, k)}
						} else {
							r := []float64{30, 150, 1e12}[rng.Intn(3)]
							s = epochSample{seq: ep.seq, q: q, radius: r, res: oi.rangeAt(ep, q, r)}
						}
						if ep.seq != lastSeq {
							samples = append(samples, s)
							lastSeq = ep.seq
						} else {
							// Same epoch as the last retained sample: donate
							// the rest of the timeslice to the updaters so a
							// new epoch gets published (essential on a
							// single-CPU machine, where a reader otherwise
							// sees one epoch per scheduler quantum).
							runtime.Gosched()
						}
					}
					sampleCh <- samples
				}(rd)
			}
			rwg.Wait()
			close(readersDone)
			wg.Wait()

			head := oi.ChangeLog().HeadSeq()
			if want := applied.Load(); head != want {
				t.Fatalf("log head = %d, want %d (every update must consume a seq)", head, want)
			}

			// Drain the change feed and verify it is gap-free from seq 1.
			sub, err := oi.ChangeLog().Subscribe(0, 16)
			if err != nil {
				t.Fatalf("Subscribe: %v", err)
			}
			defer sub.Close()
			recs := make([]updatelog.Record, 0, head)
			for r := range sub.Events() {
				recs = append(recs, r)
				if uint64(len(recs)) == head {
					break
				}
			}
			for i, r := range recs {
				if r.Seq != uint64(i+1) {
					t.Fatalf("feed record %d has seq %d: gap in the change feed", i, r.Seq)
				}
			}

			// Collect the samples, group them by epoch seq, and verify each
			// against a fresh build over the serial replay of the log
			// prefix [1..seq].
			var samples []epochSample
			for rd := 0; rd < readers; rd++ {
				samples = append(samples, <-sampleCh...)
			}
			bySeq := map[uint64][]epochSample{}
			seqs := []uint64{}
			for _, s := range samples {
				if _, ok := bySeq[s.seq]; !ok {
					seqs = append(seqs, s.seq)
				}
				bySeq[s.seq] = append(bySeq[s.seq], s)
			}
			sortUint64s(seqs)

			shadow := shadowObjects{}
			for id, loc := range initial {
				shadow[id] = loc
			}
			cursor := 0
			verified := 0
			for _, seq := range seqs {
				for cursor < len(recs) && recs[cursor].Seq <= seq {
					r := recs[cursor]
					switch r.Op {
					case updatelog.OpInsert, updatelog.OpMove:
						shadow[r.ID] = r.Loc
					case updatelog.OpDelete:
						delete(shadow, r.ID)
					}
					cursor++
				}
				rank, locs := shadow.compactRank()
				fresh := tree.IndexObjects(locs)
				for _, s := range bySeq[seq] {
					var got, want []index.ObjectResult
					if s.k > 0 {
						got, want = mapIDs(t, s.res, rank), fresh.KNN(s.q, s.k)
					} else {
						got, want = mapIDs(t, s.res, rank), fresh.Range(s.q, s.radius)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("epoch %d: query %+v observed %v, serial replay of log prefix gives %v (torn update)",
							seq, s.q, got, want)
					}
					verified++
				}
			}
			if verified == 0 {
				t.Fatal("no samples verified")
			}
			if len(seqs) < 3 {
				t.Fatalf("samples cover only %d distinct epochs; readers did not race the writer", len(seqs))
			}
			t.Logf("verified %d samples across %d distinct epochs (head %d)", verified, len(seqs), head)
		})
	}
}

func sortUint64s(s []uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// TestCrossLeafMoveAtomicFromReaders pins the strengthened cross-leaf Move
// semantics directly: while objects ping-pong between partitions in
// different leaves, every pinned-epoch range query over the whole venue
// sees every object exactly once — never zero, never twice. (The pre-epoch
// design documented exactly this violation: a reader overlapping a
// cross-leaf move could observe the object in both leaves or neither.)
func TestCrossLeafMoveAtomicFromReaders(t *testing.T) {
	v := venuegen.Menzies(venuegen.ScaleTiny)
	tree := MustBuildIPTree(v, Options{})
	rng := rand.New(rand.NewSource(61))

	// Pick two partitions in different leaves.
	pa := model.PartitionID(0)
	pb := model.PartitionID(-1)
	for p := 1; p < v.NumPartitions(); p++ {
		if tree.Leaf(model.PartitionID(p)) != tree.Leaf(pa) {
			pb = model.PartitionID(p)
			break
		}
	}
	if pb < 0 {
		t.Skip("venue has a single leaf")
	}
	locA := model.Location{Partition: pa, Point: v.Partition(pa).Bounds.Center()}
	locB := model.Location{Partition: pb, Point: v.Partition(pb).Bounds.Center()}

	const numObjects = 8
	objs := make([]model.Location, numObjects)
	for i := range objs {
		objs[i] = locA
	}
	oi := tree.IndexObjects(objs)

	stop := make(chan struct{})
	var moverWG sync.WaitGroup
	moverWG.Add(1)
	go func() {
		defer moverWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := i % numObjects
			to := locB
			if i%2 == 1 {
				to = locA
			}
			if err := oi.Move(id, to); err != nil {
				t.Errorf("Move: %v", err)
				return
			}
		}
	}()

	q := v.RandomLocation(rng)
	for i := 0; i < 2000; i++ {
		ep := oi.currentEpoch()
		res := oi.rangeAt(ep, q, 1e12)
		if len(res) != numObjects {
			t.Fatalf("epoch %d: range query saw %d objects, want %d (cross-leaf move not atomic)",
				ep.seq, len(res), numObjects)
		}
		seen := map[int]bool{}
		for _, r := range res {
			if seen[r.ObjectID] {
				t.Fatalf("epoch %d: object %d reported twice", ep.seq, r.ObjectID)
			}
			seen[r.ObjectID] = true
		}
	}
	close(stop)
	moverWG.Wait()
}

// TestReadPathZeroLockOps pins the lock-free read path with the
// instrumented table mutex: the only mutex left in ObjectIndex counts its
// Lock calls, and a storm of warm kNN/Range queries must not advance the
// count at all. (Together with the data-race freedom of the epoch design
// under -race, this is the "0 mutex/RWMutex operations on the read path"
// acceptance criterion; the sharded per-leaf RWMutexes of the previous
// design are gone entirely.)
func TestReadPathZeroLockOps(t *testing.T) {
	v := venuegen.Menzies(venuegen.ScaleTiny)
	tree := MustBuildIPTree(v, Options{})
	rng := rand.New(rand.NewSource(17))
	oi := tree.IndexObjects(randomObjects(v, 24, 9))

	// Warm the scratch pools so the storm measures the steady state.
	for i := 0; i < 8; i++ {
		q := v.RandomLocation(rng)
		oi.KNN(q, 5)
		oi.Range(q, 100)
	}

	queries := make([]model.Location, 64)
	for i := range queries {
		queries[i] = v.RandomLocation(rng)
	}
	before := oi.tableMu.Ops()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				q := queries[(w*500+i)%len(queries)]
				oi.KNN(q, 5)
				oi.Range(q, 100)
			}
		}(w)
	}
	wg.Wait()
	if delta := oi.tableMu.Ops() - before; delta != 0 {
		t.Fatalf("read path performed %d table-lock operations across 4000 queries, want 0", delta)
	}
}

// TestReadPathNoMutexContentionUnderChurn runs the mutex profiler across a
// saturating update storm mixed with a query storm and asserts no read-path
// frame (branchAndBound, scanLeaf, KNN, Range, childMinDist) appears in the
// contention profile: whatever lock contention the storm produces belongs
// entirely to the writer and its accessors.
func TestReadPathNoMutexContentionUnderChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling storm in -short mode")
	}
	prev := runtime.SetMutexProfileFraction(1)
	defer runtime.SetMutexProfileFraction(prev)

	v := venuegen.Menzies(venuegen.ScaleTiny)
	tree := MustBuildIPTree(v, Options{})
	oi := tree.IndexObjects(randomObjects(v, 24, 13))

	var stop atomic.Bool
	var wg sync.WaitGroup
	for u := 0; u < 2; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(70 + u)))
			for !stop.Load() {
				id := u*12 + rng.Intn(12)
				if err := oi.Move(id, v.RandomLocation(rng)); err != nil {
					t.Errorf("Move: %v", err)
					return
				}
			}
		}(u)
	}
	var qwg sync.WaitGroup
	for r := 0; r < 4; r++ {
		qwg.Add(1)
		go func(r int) {
			defer qwg.Done()
			rng := rand.New(rand.NewSource(int64(80 + r)))
			for i := 0; i < 2000; i++ {
				q := v.RandomLocation(rng)
				oi.KNN(q, 5)
				oi.Range(q, 120)
			}
		}(r)
	}
	qwg.Wait()
	stop.Store(true)
	wg.Wait()

	var buf bytes.Buffer
	if err := pprof.Lookup("mutex").WriteTo(&buf, 1); err != nil {
		t.Fatalf("mutex profile: %v", err)
	}
	profile := buf.String()
	for _, frame := range []string{"branchAndBound", "scanLeaf", "childMinDist", "ObjectIndex).KNN", "ObjectIndex).Range", "knnAt", "rangeAt"} {
		if bytes.Contains([]byte(profile), []byte(frame)) {
			t.Errorf("read-path frame %q appears in the mutex contention profile:\n%s", frame, firstLines(profile, 40))
		}
	}
}

func firstLines(s string, n int) string {
	out := ""
	for i, line := range bytes.Split([]byte(s), []byte("\n")) {
		if i >= n {
			break
		}
		out += string(line) + "\n"
	}
	return out
}

// TestAppliedEpochLagConverges checks the lag accounting: under load the
// published seq may trail the head transiently (that is the batching win),
// but at quiescence they must be equal and the published epoch must carry
// the head seq.
func TestAppliedEpochLagConverges(t *testing.T) {
	v := venuegen.Menzies(venuegen.ScaleTiny)
	tree := MustBuildIPTree(v, Options{})
	oi := tree.IndexObjects(randomObjects(v, 8, 19))
	var wg sync.WaitGroup
	for u := 0; u < 4; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(u)))
			for i := 0; i < 100; i++ {
				if err := oi.Move(u*2+rng.Intn(2), v.RandomLocation(rng)); err != nil {
					t.Errorf("Move: %v", err)
					return
				}
			}
		}(u)
	}
	wg.Wait()
	log := oi.ChangeLog()
	if log.HeadSeq() != 400 {
		t.Fatalf("head = %d, want 400", log.HeadSeq())
	}
	if log.PublishedSeq() != log.HeadSeq() {
		t.Fatalf("published %d != head %d at quiescence", log.PublishedSeq(), log.HeadSeq())
	}
	if got := oi.Epoch(); got != 400 {
		t.Fatalf("Epoch() = %d, want 400", got)
	}
}
