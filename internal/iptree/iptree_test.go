package iptree

import (
	"math"
	"math/rand"
	"testing"

	"viptree/internal/model"
	"viptree/internal/venuegen"
)

// testVenues returns the venues used across the correctness tests.
func testVenues(t *testing.T) map[string]*model.Venue {
	t.Helper()
	return map[string]*model.Venue{
		"paper-example": venuegen.PaperExample(),
		"mc-tiny":       venuegen.MelbourneCentral(venuegen.ScaleTiny),
		"men-tiny":      venuegen.Menzies(venuegen.ScaleTiny),
		"campus-tiny":   venuegen.Clayton(venuegen.ScaleTiny),
		"office-dd": venuegen.MustBuilding(venuegen.BuildingConfig{
			Name: "office-dd", Floors: 3, HallwaysPerFloor: 2, RoomsPerHallway: 12,
			DoubleDoorFraction: 0.4, Staircases: 1, Lifts: 1, Seed: 99,
		}),
	}
}

func approxEqual(a, b float64) bool {
	if a == Infinite || b == Infinite {
		return a == b
	}
	diff := math.Abs(a - b)
	return diff <= 1e-6 || diff <= 1e-6*math.Max(math.Abs(a), math.Abs(b))
}

func TestTreeStructuralInvariants(t *testing.T) {
	for name, v := range testVenues(t) {
		t.Run(name, func(t *testing.T) {
			tree := MustBuildIPTree(v, Options{})
			// Every partition maps to exactly one leaf, and that leaf lists it.
			for p := 0; p < v.NumPartitions(); p++ {
				leaf := tree.Leaf(model.PartitionID(p))
				node := tree.Node(leaf)
				if !node.IsLeaf() {
					t.Fatalf("partition %d maps to non-leaf node %d", p, leaf)
				}
				found := false
				for _, q := range node.Partitions {
					if q == model.PartitionID(p) {
						found = true
					}
				}
				if !found {
					t.Fatalf("leaf %d does not list partition %d", leaf, p)
				}
			}
			// Rule ii: no leaf contains two hallway partitions.
			for i := 0; i < tree.NumNodes(); i++ {
				n := tree.Node(NodeID(i))
				if !n.IsLeaf() {
					continue
				}
				hallways := 0
				for _, p := range n.Partitions {
					if v.Kind(p) == model.KindHallway {
						hallways++
					}
				}
				if hallways > 1 {
					t.Errorf("leaf %d contains %d hallways", i, hallways)
				}
			}
			// Parent/child consistency and level monotonicity.
			root := tree.Root()
			if tree.Node(root).Parent != invalidNode {
				t.Error("root must have no parent")
			}
			for i := 0; i < tree.NumNodes(); i++ {
				n := tree.Node(NodeID(i))
				for _, c := range n.Children {
					if tree.Node(c).Parent != n.ID {
						t.Errorf("child %d of node %d has parent %d", c, n.ID, tree.Node(c).Parent)
					}
					if tree.Node(c).Level >= n.Level {
						t.Errorf("child %d level %d >= parent %d level %d", c, tree.Node(c).Level, n.ID, n.Level)
					}
				}
				if n.ID != root && !tree.IsAncestor(root, n.ID) {
					t.Errorf("node %d is not reachable from the root", n.ID)
				}
			}
			// Access doors of a parent are access doors of at least one child.
			for i := 0; i < tree.NumNodes(); i++ {
				n := tree.Node(NodeID(i))
				if n.IsLeaf() {
					continue
				}
				childAccess := map[model.DoorID]bool{}
				for _, c := range n.Children {
					for _, d := range tree.Node(c).AccessDoors {
						childAccess[d] = true
					}
				}
				for _, d := range n.AccessDoors {
					if !childAccess[d] {
						t.Errorf("access door %d of node %d is not an access door of any child", d, n.ID)
					}
				}
			}
			// Minimum degree: every non-root internal node has >= 2 children.
			for i := 0; i < tree.NumNodes(); i++ {
				n := tree.Node(NodeID(i))
				if !n.IsLeaf() && n.ID != root && len(n.Children) < 2 {
					t.Errorf("internal node %d has %d children", n.ID, len(n.Children))
				}
			}
			// Stats are sane.
			s := tree.TreeStats()
			if s.Leaves == 0 || s.Nodes < s.Leaves || s.Height < 1 {
				t.Errorf("implausible stats: %+v", s)
			}
			if tree.MemoryBytes() <= 0 {
				t.Error("MemoryBytes should be positive")
			}
		})
	}
}

func TestLeafMatrixAgainstDijkstra(t *testing.T) {
	for name, v := range testVenues(t) {
		t.Run(name, func(t *testing.T) {
			tree := MustBuildIPTree(v, Options{})
			d2d := v.D2D()
			for i := 0; i < tree.NumNodes(); i++ {
				n := tree.Node(NodeID(i))
				if !n.IsLeaf() {
					continue
				}
				for _, d := range tree.DoorsOfLeaf(n.ID) {
					for _, a := range n.AccessDoors {
						got := n.Matrix.Dist(d, a)
						want := d2d.Dist(d, a)
						if !approxEqual(got, want) {
							t.Fatalf("leaf %d matrix dist(%d,%d) = %v, Dijkstra = %v", n.ID, d, a, got, want)
						}
					}
				}
			}
		})
	}
}

func TestNonLeafMatrixAgainstDijkstra(t *testing.T) {
	for name, v := range testVenues(t) {
		t.Run(name, func(t *testing.T) {
			tree := MustBuildIPTree(v, Options{})
			d2d := v.D2D()
			for i := 0; i < tree.NumNodes(); i++ {
				n := tree.Node(NodeID(i))
				if n.IsLeaf() || n.Matrix == nil {
					continue
				}
				rows := n.Matrix.Rows()
				for _, a := range rows {
					for _, b := range rows {
						got := n.Matrix.Dist(a, b)
						want := d2d.Dist(a, b)
						if !approxEqual(got, want) {
							t.Fatalf("node %d matrix dist(%d,%d) = %v, Dijkstra = %v", n.ID, a, b, got, want)
						}
					}
				}
			}
		})
	}
}

func TestSuperiorDoorsSubset(t *testing.T) {
	v := venuegen.PaperExample()
	tree := MustBuildIPTree(v, Options{})
	for p := 0; p < v.NumPartitions(); p++ {
		sup := tree.SuperiorDoors(model.PartitionID(p))
		if len(sup) == 0 {
			t.Errorf("partition %d has no superior doors", p)
		}
		doors := map[model.DoorID]bool{}
		for _, d := range v.Partition(model.PartitionID(p)).Doors {
			doors[d] = true
		}
		for _, d := range sup {
			if !doors[d] {
				t.Errorf("superior door %d is not a door of partition %d", d, p)
			}
		}
	}
}

func TestIPTreeDistanceMatchesGroundTruth(t *testing.T) {
	for name, v := range testVenues(t) {
		t.Run(name, func(t *testing.T) {
			tree := MustBuildIPTree(v, Options{})
			d2d := v.D2D()
			rng := rand.New(rand.NewSource(123))
			for i := 0; i < 150; i++ {
				s := v.RandomLocation(rng)
				d := v.RandomLocation(rng)
				got := tree.Distance(s, d)
				want := d2d.LocationDist(s, d)
				if !approxEqual(got, want) {
					t.Fatalf("query %d: Distance(%v,%v) = %v, ground truth = %v", i, s, d, got, want)
				}
			}
		})
	}
}

func TestVIPTreeDistanceMatchesGroundTruth(t *testing.T) {
	for name, v := range testVenues(t) {
		t.Run(name, func(t *testing.T) {
			vt := MustBuildVIPTree(v, Options{})
			d2d := v.D2D()
			rng := rand.New(rand.NewSource(321))
			for i := 0; i < 150; i++ {
				s := v.RandomLocation(rng)
				d := v.RandomLocation(rng)
				got := vt.Distance(s, d)
				want := d2d.LocationDist(s, d)
				if !approxEqual(got, want) {
					t.Fatalf("query %d: VIP Distance(%v,%v) = %v, ground truth = %v", i, s, d, got, want)
				}
			}
		})
	}
}

// verifyPath checks that a reported path is a walkable door sequence whose
// total length (plus entry/exit legs) equals the reported distance.
func verifyPath(t *testing.T, v *model.Venue, s, d model.Location, dist float64, doors []model.DoorID) {
	t.Helper()
	want := v.D2D().LocationDist(s, d)
	if !approxEqual(dist, want) {
		t.Fatalf("path distance %v != ground truth %v (s=%v d=%v)", dist, want, s, d)
	}
	if s.Partition == d.Partition {
		return
	}
	if len(doors) == 0 {
		t.Fatalf("expected a non-empty door sequence for %v -> %v", s, d)
	}
	// First and last door must belong to the source/target partitions.
	if !v.Door(doors[0]).ConnectsPartition(s.Partition) {
		t.Fatalf("path must start at a door of the source partition; got door %d", doors[0])
	}
	if !v.Door(doors[len(doors)-1]).ConnectsPartition(d.Partition) {
		t.Fatalf("path must end at a door of the target partition; got door %d", doors[len(doors)-1])
	}
	// Sum the leg lengths: consecutive doors must be connected in the D2D
	// graph (a final edge), and the total must match the distance.
	g := v.D2D().Graph
	total := v.DistToDoor(s, doors[0])
	for i := 1; i < len(doors); i++ {
		w, ok := g.EdgeWeight(int(doors[i-1]), int(doors[i]))
		if !ok {
			t.Fatalf("path contains non-adjacent doors %d -> %d", doors[i-1], doors[i])
		}
		total += w
	}
	total += v.DistToDoor(d, doors[len(doors)-1])
	if !approxEqual(total, dist) {
		t.Fatalf("path legs sum to %v, reported distance %v (doors %v)", total, dist, doors)
	}
}

func TestIPTreePathMatchesGroundTruth(t *testing.T) {
	for name, v := range testVenues(t) {
		t.Run(name, func(t *testing.T) {
			tree := MustBuildIPTree(v, Options{})
			rng := rand.New(rand.NewSource(555))
			for i := 0; i < 80; i++ {
				s := v.RandomLocation(rng)
				d := v.RandomLocation(rng)
				dist, doors := tree.Path(s, d)
				verifyPath(t, v, s, d, dist, doors)
			}
		})
	}
}

func TestVIPTreePathMatchesGroundTruth(t *testing.T) {
	for name, v := range testVenues(t) {
		t.Run(name, func(t *testing.T) {
			vt := MustBuildVIPTree(v, Options{})
			rng := rand.New(rand.NewSource(777))
			for i := 0; i < 80; i++ {
				s := v.RandomLocation(rng)
				d := v.RandomLocation(rng)
				dist, doors := vt.Path(s, d)
				verifyPath(t, v, s, d, dist, doors)
			}
		})
	}
}

func TestDistanceSymmetryProperty(t *testing.T) {
	v := venuegen.Menzies(venuegen.ScaleTiny)
	vt := MustBuildVIPTree(v, Options{})
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		s := v.RandomLocation(rng)
		d := v.RandomLocation(rng)
		a := vt.Distance(s, d)
		b := vt.Distance(d, s)
		if !approxEqual(a, b) {
			t.Fatalf("asymmetric VIP distance: %v vs %v", a, b)
		}
	}
}

func TestDistanceTriangleInequalityProperty(t *testing.T) {
	v := venuegen.MelbourneCentral(venuegen.ScaleTiny)
	vt := MustBuildVIPTree(v, Options{})
	rng := rand.New(rand.NewSource(4242))
	for i := 0; i < 60; i++ {
		a := v.RandomLocation(rng)
		b := v.RandomLocation(rng)
		c := v.RandomLocation(rng)
		ab := vt.Distance(a, b)
		bc := vt.Distance(b, c)
		ac := vt.Distance(a, c)
		if ac > ab+bc+1e-6 {
			t.Fatalf("triangle inequality violated: d(a,c)=%v > d(a,b)+d(b,c)=%v", ac, ab+bc)
		}
	}
}

func TestSamePartitionAndSameLeafQueries(t *testing.T) {
	v := venuegen.PaperExample()
	tree := MustBuildIPTree(v, Options{})
	vt := NewVIPTree(tree)
	// Same partition.
	s := v.Centroid(0)
	d := model.Location{Partition: 0, Point: s.Point}
	d.Point.X += 2
	want := s.Point.PlanarDist(d.Point)
	if got := tree.Distance(s, d); !approxEqual(got, want) {
		t.Errorf("same-partition IP distance = %v, want %v", got, want)
	}
	if got := vt.Distance(s, d); !approxEqual(got, want) {
		t.Errorf("same-partition VIP distance = %v, want %v", got, want)
	}
	if _, doors := tree.Path(s, d); len(doors) != 0 {
		t.Errorf("same-partition path should have no doors, got %v", doors)
	}
	// Same leaf, different partitions: partitions 0 (hallway P1) and 1 (P2)
	// are in the same leaf by construction.
	if tree.Leaf(0) == tree.Leaf(1) {
		a := v.Centroid(0)
		b := v.Centroid(1)
		want := v.D2D().LocationDist(a, b)
		if got := tree.Distance(a, b); !approxEqual(got, want) {
			t.Errorf("same-leaf IP distance = %v, want %v", got, want)
		}
		if got := vt.Distance(a, b); !approxEqual(got, want) {
			t.Errorf("same-leaf VIP distance = %v, want %v", got, want)
		}
	}
}

func TestMinDegreeOptionAffectsTreeShape(t *testing.T) {
	v := venuegen.Menzies(venuegen.ScaleSmall)
	t2 := MustBuildIPTree(v, Options{MinDegree: 2})
	t4 := MustBuildIPTree(v, Options{MinDegree: 4})
	if t4.Height() > t2.Height() {
		t.Errorf("larger min degree should not increase height: t=2 height %d, t=4 height %d", t2.Height(), t4.Height())
	}
	// Both trees still answer correctly.
	d2d := v.D2D()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 40; i++ {
		s := v.RandomLocation(rng)
		d := v.RandomLocation(rng)
		want := d2d.LocationDist(s, d)
		if got := t2.Distance(s, d); !approxEqual(got, want) {
			t.Fatalf("t=2 distance mismatch: %v vs %v", got, want)
		}
		if got := t4.Distance(s, d); !approxEqual(got, want) {
			t.Fatalf("t=4 distance mismatch: %v vs %v", got, want)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := BuildIPTree(nil, Options{}); err == nil {
		t.Error("BuildIPTree(nil) should fail")
	}
	if _, err := BuildVIPTree(nil, Options{}); err == nil {
		t.Error("BuildVIPTree(nil) should fail")
	}
}

func TestNames(t *testing.T) {
	v := venuegen.PaperExample()
	tree := MustBuildIPTree(v, Options{})
	if tree.Name() != "IP-Tree" {
		t.Errorf("IP tree name = %q", tree.Name())
	}
	vt := NewVIPTree(tree)
	if vt.Name() != "VIP-Tree" {
		t.Errorf("VIP tree name = %q", vt.Name())
	}
	if vt.MemoryBytes() <= tree.MemoryBytes() {
		t.Error("VIP-Tree should use more memory than IP-Tree")
	}
	if tree.Venue() != v {
		t.Error("Venue() should return the underlying venue")
	}
}
