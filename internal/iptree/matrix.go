package iptree

import (
	"math"
	"sort"

	"viptree/internal/model"
)

// NoDoor marks the absence of a next-hop door in a distance matrix entry
// (the NULL of Section 2.1.1): the corresponding edge is final, i.e. the
// shortest path between the two doors contains no other door.
const NoDoor model.DoorID = -1

// Infinite is the distance stored for unreachable door pairs.
const Infinite = math.MaxFloat64

// noNextOrd is the encoded form of NoDoor in the next-hop array.
const noNextOrd int32 = -1

// doorIndex maps door IDs to their position in an ordered door slice without
// a hash map: lookups binary-search a sorted view of the doors. The door sets
// of a matrix are small (ρ doors for non-leaf nodes, the doors of one leaf
// otherwise), so the search is a handful of cache-resident comparisons —
// much cheaper than hashing on both the build and query hot paths.
type doorIndex struct {
	// sorted is the door set in ascending order. The builder produces sorted
	// door sets, so this usually aliases the original slice.
	sorted []model.DoorID
	// pos maps positions in sorted back to positions in the original slice;
	// nil when the original slice was already sorted (the identity mapping).
	pos []int32
}

// newDoorIndex builds the lookup structure over doors. The slice is aliased,
// not copied, when it is already in ascending order.
func newDoorIndex(doors []model.DoorID) doorIndex {
	for i := 1; i < len(doors); i++ {
		if doors[i] <= doors[i-1] {
			return permutedDoorIndex(doors)
		}
	}
	return doorIndex{sorted: doors}
}

// permutedDoorIndex handles door sets that are not ascending (possible only
// in hand-crafted snapshot payloads): it sorts a copy and remembers the
// permutation back to the original positions.
func permutedDoorIndex(doors []model.DoorID) doorIndex {
	idx := doorIndex{
		sorted: append([]model.DoorID(nil), doors...),
		pos:    make([]int32, len(doors)),
	}
	for i := range idx.pos {
		idx.pos[i] = int32(i)
	}
	sort.Sort(&idx)
	return idx
}

// sort.Interface over (sorted, pos) in lockstep.
func (ix *doorIndex) Len() int           { return len(ix.sorted) }
func (ix *doorIndex) Less(i, j int) bool { return ix.sorted[i] < ix.sorted[j] }
func (ix *doorIndex) Swap(i, j int) {
	ix.sorted[i], ix.sorted[j] = ix.sorted[j], ix.sorted[i]
	ix.pos[i], ix.pos[j] = ix.pos[j], ix.pos[i]
}

// find returns the position of door d in the original slice.
func (ix *doorIndex) find(d model.DoorID) (int, bool) {
	lo, hi := 0, len(ix.sorted)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ix.sorted[mid] < d {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(ix.sorted) || ix.sorted[lo] != d {
		return 0, false
	}
	if ix.pos != nil {
		return int(ix.pos[lo]), true
	}
	return lo, true
}

// memoryBytes estimates the memory used by the lookup structure, excluding a
// sorted slice that aliases the door set it indexes.
func (ix *doorIndex) memoryBytes() int64 {
	if ix.pos == nil {
		return sizeofSliceHeader
	}
	return int64(len(ix.sorted))*sizeofDoorID + int64(len(ix.pos))*4 + 2*sizeofSliceHeader
}

// Matrix is a distance matrix of an IP-Tree node. For leaf nodes the rows
// are every door of the node and the columns its access doors; for non-leaf
// nodes rows and columns are both the union of the children's access doors.
// Each entry stores the shortest distance and the next-hop door on that
// shortest path, oriented from the row door towards the column door.
//
// Next hops are stored positionally, not as global door IDs: an entry holds
// the ordinal of the next-hop door within the matrix's own row door set (4
// bytes instead of 8), and the global ID is recovered by indexing the door
// set — no search. The rare next hop outside the matrix's door set (a leaf
// path that leaves the leaf, a level-graph fallback hop) is escape-encoded
// as -2-id; NoDoor is -1.
//
// After construction the per-matrix dist/next arrays are repacked into
// per-tree contiguous arenas (see pack in arena.go); the slices here then
// become views into those arenas, so the struct is effectively an
// (offset, rows, cols) descriptor over the tree's slabs.
type Matrix struct {
	rows   []model.DoorID
	cols   []model.DoorID
	rowIdx doorIndex
	colIdx doorIndex
	dist   []float64
	next   []int32
}

// newMatrix allocates a matrix with the given row and column door sets. All
// entries start as unreachable with no next hop.
func newMatrix(rows, cols []model.DoorID) *Matrix {
	m := &Matrix{
		rows:   rows,
		cols:   cols,
		rowIdx: newDoorIndex(rows),
		colIdx: newDoorIndex(cols),
		dist:   make([]float64, len(rows)*len(cols)),
		next:   make([]int32, len(rows)*len(cols)),
	}
	for i := range m.dist {
		m.dist[i] = Infinite
		m.next[i] = noNextOrd
	}
	return m
}

// encodeNext turns a global next-hop door ID into its stored positional
// form: the door's ordinal among the matrix rows when it is one, or the
// escape encoding -2-id when it is not (NoDoor stays -1).
func (m *Matrix) encodeNext(d model.DoorID) int32 {
	if d == NoDoor {
		return noNextOrd
	}
	if i, ok := m.rowIdx.find(d); ok {
		return int32(i)
	}
	return int32(-2 - d)
}

// decodeNext recovers the global door ID from a stored next-hop entry by
// direct indexing into the row door set.
func (m *Matrix) decodeNext(v int32) model.DoorID {
	if v >= 0 {
		return m.rows[v]
	}
	if v == noNextOrd {
		return NoDoor
	}
	return model.DoorID(-2 - v)
}

// Rows returns the row door IDs.
func (m *Matrix) Rows() []model.DoorID { return m.rows }

// Cols returns the column door IDs.
func (m *Matrix) Cols() []model.DoorID { return m.cols }

// HasRow reports whether door d is a row of the matrix.
func (m *Matrix) HasRow(d model.DoorID) bool { _, ok := m.rowIdx.find(d); return ok }

// HasCol reports whether door d is a column of the matrix.
func (m *Matrix) HasCol(d model.DoorID) bool { _, ok := m.colIdx.find(d); return ok }

// Has reports whether the matrix stores an entry from row door a to column
// door b.
func (m *Matrix) Has(a, b model.DoorID) bool { return m.HasRow(a) && m.HasCol(b) }

func (m *Matrix) index(row, col model.DoorID) (int, bool) {
	i, ok := m.rowIdx.find(row)
	if !ok {
		return 0, false
	}
	j, ok := m.colIdx.find(col)
	if !ok {
		return 0, false
	}
	return i*len(m.cols) + j, true
}

// setAt records the entry for the row/col positions directly (both aligned
// with Rows()/Cols()); build loops iterate positionally, so the matrix has
// no door-ID-keyed mutator. The next-hop door is given as a global ID and
// encoded positionally.
func (m *Matrix) setAt(row, col int, dist float64, next model.DoorID) {
	idx := row*len(m.cols) + col
	m.dist[idx] = dist
	m.next[idx] = m.encodeNext(next)
}

// Dist returns the stored distance from row door a to column door b, or
// Infinite if the entry does not exist.
func (m *Matrix) Dist(a, b model.DoorID) float64 {
	idx, ok := m.index(a, b)
	if !ok {
		return Infinite
	}
	return m.dist[idx]
}

// Next returns the next-hop door on the shortest path from row door a to
// column door b, or NoDoor if the edge is final or the entry does not exist.
func (m *Matrix) Next(a, b model.DoorID) model.DoorID {
	idx, ok := m.index(a, b)
	if !ok {
		return NoDoor
	}
	return m.decodeNext(m.next[idx])
}

// rowIndexOf returns the position of door d among the rows.
func (m *Matrix) rowIndexOf(d model.DoorID) (int, bool) { return m.rowIdx.find(d) }

// colIndexOf returns the position of door d among the columns.
func (m *Matrix) colIndexOf(d model.DoorID) (int, bool) { return m.colIdx.find(d) }

// distAt reads the distance at a (row, col) position pair obtained from
// rowIndexOf/colIndexOf, skipping the door lookups on loops that resolve
// positions once and then sweep many entries.
func (m *Matrix) distAt(row, col int) float64 { return m.dist[row*len(m.cols)+col] }

// nextAt reads the next-hop door at a (row, col) position pair.
func (m *Matrix) nextAt(row, col int) model.DoorID {
	return m.decodeNext(m.next[row*len(m.cols)+col])
}

// locate returns the position of the entry relating doors a and b, trying
// the (a, b) orientation first and falling back to (b, a) — the orientation
// rule of decompositionNode (leaf matrices are rectangular, so an entry may
// exist only with the doors swapped).
func (m *Matrix) locate(a, b model.DoorID) (row, col int, ok bool) {
	if ra, okR := m.rowIdx.find(a); okR {
		if cb, okC := m.colIdx.find(b); okC {
			return ra, cb, true
		}
	}
	if rb, okR := m.rowIdx.find(b); okR {
		if ca, okC := m.colIdx.find(a); okC {
			return rb, ca, true
		}
	}
	return 0, 0, false
}

// memoryBytes estimates the memory used by an unpacked matrix (one whose
// dist/next arrays are still per-matrix allocations). Packed trees account
// for their matrices arena-wide instead; see Tree.MemoryBytes.
func (m *Matrix) memoryBytes() int64 {
	cells := int64(len(m.dist))
	return cells*(8+4) + int64(len(m.rows)+len(m.cols))*sizeofDoorID +
		m.rowIdx.memoryBytes() + m.colIdx.memoryBytes() + sizeofMatrixStruct
}
