package iptree

import (
	"math"

	"viptree/internal/model"
)

// NoDoor marks the absence of a next-hop door in a distance matrix entry
// (the NULL of Section 2.1.1): the corresponding edge is final, i.e. the
// shortest path between the two doors contains no other door.
const NoDoor model.DoorID = -1

// Infinite is the distance stored for unreachable door pairs.
const Infinite = math.MaxFloat64

// Matrix is a distance matrix of an IP-Tree node. For leaf nodes the rows
// are every door of the node and the columns its access doors; for non-leaf
// nodes rows and columns are both the union of the children's access doors.
// Each entry stores the shortest distance and the next-hop door on that
// shortest path, oriented from the row door towards the column door.
type Matrix struct {
	rows   []model.DoorID
	cols   []model.DoorID
	rowIdx map[model.DoorID]int
	colIdx map[model.DoorID]int
	dist   []float64
	next   []model.DoorID
}

// newMatrix allocates a matrix with the given row and column door sets. All
// entries start as unreachable with no next hop.
func newMatrix(rows, cols []model.DoorID) *Matrix {
	m := &Matrix{
		rows:   rows,
		cols:   cols,
		rowIdx: make(map[model.DoorID]int, len(rows)),
		colIdx: make(map[model.DoorID]int, len(cols)),
		dist:   make([]float64, len(rows)*len(cols)),
		next:   make([]model.DoorID, len(rows)*len(cols)),
	}
	for i, d := range rows {
		m.rowIdx[d] = i
	}
	for i, d := range cols {
		m.colIdx[d] = i
	}
	for i := range m.dist {
		m.dist[i] = Infinite
		m.next[i] = NoDoor
	}
	return m
}

// Rows returns the row door IDs.
func (m *Matrix) Rows() []model.DoorID { return m.rows }

// Cols returns the column door IDs.
func (m *Matrix) Cols() []model.DoorID { return m.cols }

// HasRow reports whether door d is a row of the matrix.
func (m *Matrix) HasRow(d model.DoorID) bool { _, ok := m.rowIdx[d]; return ok }

// HasCol reports whether door d is a column of the matrix.
func (m *Matrix) HasCol(d model.DoorID) bool { _, ok := m.colIdx[d]; return ok }

// Has reports whether the matrix stores an entry from row door a to column
// door b.
func (m *Matrix) Has(a, b model.DoorID) bool { return m.HasRow(a) && m.HasCol(b) }

func (m *Matrix) index(row, col model.DoorID) (int, bool) {
	i, ok := m.rowIdx[row]
	if !ok {
		return 0, false
	}
	j, ok := m.colIdx[col]
	if !ok {
		return 0, false
	}
	return i*len(m.cols) + j, true
}

// set records the distance and next-hop door for the entry (row, col).
func (m *Matrix) set(row, col model.DoorID, dist float64, next model.DoorID) {
	idx, ok := m.index(row, col)
	if !ok {
		return
	}
	m.dist[idx] = dist
	m.next[idx] = next
}

// Dist returns the stored distance from row door a to column door b, or
// Infinite if the entry does not exist.
func (m *Matrix) Dist(a, b model.DoorID) float64 {
	idx, ok := m.index(a, b)
	if !ok {
		return Infinite
	}
	return m.dist[idx]
}

// Next returns the next-hop door on the shortest path from row door a to
// column door b, or NoDoor if the edge is final or the entry does not exist.
func (m *Matrix) Next(a, b model.DoorID) model.DoorID {
	idx, ok := m.index(a, b)
	if !ok {
		return NoDoor
	}
	return m.next[idx]
}

// memoryBytes estimates the memory used by the matrix.
func (m *Matrix) memoryBytes() int64 {
	cells := int64(len(m.dist))
	return cells*16 + int64(len(m.rows)+len(m.cols))*24 + 96
}
