package iptree

import (
	"unsafe"

	"viptree/internal/model"
)

// unsafe.Sizeof-derived per-element constants used by every MemoryBytes
// estimator in the package, so reported sizes stay consistent with the types
// they describe instead of hand-written magic numbers drifting out of date.
const (
	sizeofDoorID       = int64(unsafe.Sizeof(model.DoorID(0)))
	sizeofNodeID       = int64(unsafe.Sizeof(NodeID(0)))
	sizeofLocation     = int64(unsafe.Sizeof(model.Location{}))
	sizeofObjEntry     = int64(unsafe.Sizeof(objEntry{}))
	sizeofInt          = int64(unsafe.Sizeof(int(0)))
	sizeofSliceHeader  = int64(unsafe.Sizeof([]model.DoorID(nil)))
	sizeofMatrixStruct = int64(unsafe.Sizeof(Matrix{}))
	sizeofNodeStruct   = int64(unsafe.Sizeof(Node{}))
)
