package iptree

import (
	"sort"

	"viptree/internal/index"
	"viptree/internal/model"
)

// This file implements the batched kNN/range entry points (index.KNNBatcher
// and index.RangeBatcher). A sequential kNN/Range query spends most of its
// time in the Algorithm-2 leaf-to-root climb that seeds the branch-and-bound
// of Algorithm 5; the climb depends only on the query's source location, so
// a batch shares it:
//
//  1. Plan: dedup the batch's source locations with the same
//     partition-chained endpoint set the batched distance path uses
//     (batch.go), and group the queries by distinct source — queries from
//     one source (and therefore one source leaf) run back to back.
//  2. Climb: for every distinct source, produce its climb block — the
//     distances from the source to the access doors of every ancestor of
//     its leaf, chain-ordered leaf→root — either from the tree's climb
//     cache (climbcache.go) or by running the sequential climb
//     (distancesToNode) once and caching the result. Distinct sources fan
//     out over the workers.
//  3. Search: each distinct source seeds one per-node distance table from
//     its block and answers its whole query group with shared pruning
//     state — ONE best-first run (bestFirst in objects.go) at the group's
//     weakest bound (largest k, respectively largest radius). Groups fan
//     out over the workers with item-owned writes.
//
// Bit-identity: the climb block holds exactly the values the sequential
// path reads out of its own distancesToNode run — same arithmetic, same
// first-wins tie-breaks — so seeding from the block (cached or fresh) and
// then running the identical best-first loop reproduces the sequential
// results bit for bit, including (dist, ObjectID) tie-breaks. Sharing one
// search across a group is equally exact: a group's queries all have the
// SAME source location (grouping is by exact location), an object's
// distance is a deterministic function of the query point alone (never of
// k, the radius or the traversal order), and the collector retains the k
// smallest results under the total (dist, ObjectID) order. A k-query's
// answer is therefore the length-k prefix of the group's k_max answer, and
// an r-query's answer is the prefix of the r_max answer with dist <= r —
// the very slices the sequential runs produce, element for element.
// Workers only change which goroutine computes a block or answers a group,
// never the values, so results are worker-count independent.
//
// Consistency: the whole batch answers from one pinned epoch (a single
// atomic load), so a batch racing concurrent movers observes one published
// object state — never a mix of two.

// Compile-time capability checks.
var (
	_ index.KNNBatcher         = (*ObjectIndex)(nil)
	_ index.RangeBatcher       = (*ObjectIndex)(nil)
	_ index.ClimbCacheReporter = (*ObjectIndex)(nil)
)

// objBatchState is the pooled plan state of one KNNBatch/RangeBatch call.
type objBatchState struct {
	// srcOf[i] is the distinct-source ordinal of query i; order lists the
	// query indices grouped by that ordinal (starts/cursor are the counting
	// sort workspace).
	srcOf  []int32
	order  []int32
	starts []int32
	cursor []int32
	// locs lists the distinct source locations in first-appearance order;
	// leafOf their leaves; blockOf their climb blocks (into arena for fresh
	// climbs, into the cache's memory for hits, laid out by blockOff).
	locs     []model.Location
	leafOf   []NodeID
	blockOf  [][]float64
	blockOff []int32
	arena    []float64
	// head/next chain distinct sources per partition for O(1)-amortised
	// dedup; headStamp validates head entries per batch (same scheme as
	// endpointSide in batch.go).
	head      []int32
	headStamp epochStamps
	next      []int32
}

func (bs *objBatchState) reset(numPartitions int) {
	bs.srcOf = bs.srcOf[:0]
	bs.locs = bs.locs[:0]
	bs.next = bs.next[:0]
	if len(bs.head) < numPartitions {
		bs.head = make([]int32, numPartitions)
	}
	bs.headStamp.reset(numPartitions)
}

// endpoint returns the distinct-source ordinal of loc, registering it on
// first sight.
func (bs *objBatchState) endpoint(loc model.Location) int32 {
	p := int(loc.Partition)
	if bs.headStamp.has(p) {
		for e := bs.head[p]; e >= 0; e = bs.next[e] {
			if bs.locs[e] == loc {
				return e
			}
		}
	} else {
		bs.headStamp.mark(p)
		bs.head[p] = -1
	}
	e := int32(len(bs.locs))
	bs.locs = append(bs.locs, loc)
	bs.next = append(bs.next, bs.head[p])
	bs.head[p] = e
	return e
}

func (oi *ObjectIndex) getObjBatchState() *objBatchState {
	bs, _ := oi.obPool.Get().(*objBatchState)
	if bs == nil {
		bs = &objBatchState{}
	}
	return bs
}

func (oi *ObjectIndex) putObjBatchState(bs *objBatchState) { oi.obPool.Put(bs) }

// growI32 returns buf resized to n entries, reallocating only on growth.
func growI32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

// KNNBatch answers many kNN queries as one batch, writing each query's
// result into the matching slot of out (which must be at least len(queries)
// long). Results are bit-identical to per-query KNN calls — the whole batch
// answers from one pinned epoch — and do not depend on workers (<= 1
// executes on the calling goroutine). It implements index.KNNBatcher.
func (oi *ObjectIndex) KNNBatch(queries []index.KNNQuery, out [][]index.ObjectResult, workers int) {
	if len(queries) == 0 {
		return
	}
	ep := oi.currentEpoch()
	t := oi.tree
	if t.pk == nil {
		// Unpacked intermediate trees have no batch plan; answer per query
		// against the pinned epoch.
		runParallel(len(queries), workers, func(_, i int) {
			out[i] = oi.knnAt(ep, queries[i].Q, queries[i].K)
		})
		return
	}
	oi.objectBatch(len(queries), workers,
		func(i int) model.Location { return queries[i].Q },
		func(group []int32, qLeaf NodeID, oc *objScratch) {
			// One search at the group's largest k serves the whole group:
			// every smaller k's answer is a prefix of the shared result
			// (see the bit-identity argument in the file comment).
			kmax := 0
			for _, i := range group {
				kmax = max(kmax, queries[i].K)
			}
			if kmax <= 0 || ep.subtreeCount[t.root] == 0 {
				for _, i := range group {
					out[i] = nil
				}
				return
			}
			res := oi.bestFirst(ep, queries[group[0]].Q, qLeaf, kmax, Infinite, oc)
			shared := false
			for _, i := range group {
				k := queries[i].K
				cut := min(k, len(res))
				switch {
				case k <= 0 || cut == 0:
					out[i] = nil
				case cut == len(res) && !shared:
					// Hand the search's own slice to one query; everyone
					// else gets a fresh copy, so outputs never alias.
					out[i] = res
					shared = true
				default:
					out[i] = append([]index.ObjectResult(nil), res[:cut]...)
				}
			}
		})
}

// RangeBatch answers many range queries as one batch into out (at least
// len(queries) long), with the same bit-identity, single-epoch and
// worker-independence guarantees as KNNBatch. It implements
// index.RangeBatcher.
func (oi *ObjectIndex) RangeBatch(queries []index.RangeQuery, out [][]index.ObjectResult, workers int) {
	if len(queries) == 0 {
		return
	}
	ep := oi.currentEpoch()
	t := oi.tree
	if t.pk == nil {
		runParallel(len(queries), workers, func(_, i int) {
			out[i] = oi.rangeAt(ep, queries[i].Q, queries[i].R)
		})
		return
	}
	oi.objectBatch(len(queries), workers,
		func(i int) model.Location { return queries[i].Q },
		func(group []int32, qLeaf NodeID, oc *objScratch) {
			if ep.subtreeCount[t.root] == 0 {
				for _, i := range group {
					out[i] = nil
				}
				return
			}
			// One search at the group's largest radius serves the whole
			// group: each query's answer is the ascending-sorted prefix
			// with dist <= its own radius. A NaN radius breaks the max
			// ordering, so such groups fall back to per-query searches.
			q := queries[group[0]].Q
			rmax := queries[group[0]].R
			for _, i := range group[1:] {
				rmax = max(rmax, queries[i].R)
			}
			if rmax != rmax {
				for _, i := range group {
					out[i] = oi.bestFirst(ep, q, qLeaf, 0, queries[i].R, oc)
				}
				return
			}
			res := oi.bestFirst(ep, q, qLeaf, 0, rmax, oc)
			shared := false
			for _, i := range group {
				r := queries[i].R
				cut := sort.Search(len(res), func(x int) bool { return res[x].Dist > r })
				switch {
				case cut == 0:
					out[i] = nil
				case cut == len(res) && !shared:
					out[i] = res
					shared = true
				default:
					out[i] = append([]index.ObjectResult(nil), res[:cut]...)
				}
			}
		})
}

// objectBatch is the shared three-phase driver: plan (dedup + group), climb
// (one block per distinct source, through the cache), search (run once per
// distinct source with the group's query indices and a scratch seeded from
// the source's block). run must write only query-owned state.
func (oi *ObjectIndex) objectBatch(n, workers int, locOf func(int) model.Location, run func(group []int32, qLeaf NodeID, oc *objScratch)) {
	t := oi.tree
	bs := oi.getObjBatchState()
	defer oi.putObjBatchState(bs)
	bs.reset(t.venue.NumPartitions())

	// Plan: dedup sources and group query indices by distinct source.
	for i := 0; i < n; i++ {
		bs.srcOf = append(bs.srcOf, bs.endpoint(locOf(i)))
	}
	nSrc := len(bs.locs)
	bs.leafOf = append(bs.leafOf[:0], make([]NodeID, nSrc)...)
	bs.blockOff = growI32(bs.blockOff, nSrc+1)
	bs.blockOff[0] = 0
	total := 0
	for e := 0; e < nSrc; e++ {
		leaf := t.Leaf(bs.locs[e].Partition)
		bs.leafOf[e] = leaf
		for nd := leaf; ; nd = t.nodes[nd].Parent {
			total += len(t.nodes[nd].AccessDoors)
			if nd == t.root {
				break
			}
		}
		bs.blockOff[e+1] = int32(total)
	}
	bs.arena = resizeF64(bs.arena, total)
	if cap(bs.blockOf) < nSrc {
		bs.blockOf = make([][]float64, nSrc)
	}
	bs.blockOf = bs.blockOf[:nSrc]
	bs.starts = growI32(bs.starts, nSrc+1)
	for k := range bs.starts {
		bs.starts[k] = 0
	}
	for _, e := range bs.srcOf {
		bs.starts[e+1]++
	}
	for k := 1; k <= nSrc; k++ {
		bs.starts[k] += bs.starts[k-1]
	}
	bs.order = growI32(bs.order, n)
	bs.cursor = append(bs.cursor[:0], bs.starts[:nSrc]...)
	for i, e := range bs.srcOf {
		bs.order[bs.cursor[e]] = int32(i)
		bs.cursor[e]++
	}

	maxW := workers
	if maxW < 1 {
		maxW = 1
	}
	if maxW > n {
		maxW = n
	}

	// Climb: one block per distinct source, via the cache when warm.
	scs := make([]*distScratch, min(maxW, nSrc))
	runParallel(nSrc, maxW, func(w, e int) {
		loc := bs.locs[e]
		if blk := t.climb.lookup(loc); blk != nil {
			bs.blockOf[e] = blk
			return
		}
		sc := scs[w]
		if sc == nil {
			sc = t.getDistScratch()
			scs[w] = sc
		}
		blk := bs.arena[bs.blockOff[e]:bs.blockOff[e+1]]
		oi.fillClimbBlock(loc, sc, blk)
		bs.blockOf[e] = blk
		t.climb.insert(loc, blk)
	})
	for _, sc := range scs {
		if sc != nil {
			t.putDistScratch(sc)
		}
	}

	// Search: the groups fan out over the workers; each seeds one per-node
	// distance table from its source's block and answers all of its queries
	// from that shared state.
	ocs := make([]*objScratch, min(maxW, nSrc))
	runParallel(nSrc, maxW, func(w, e int) {
		oc := ocs[w]
		if oc == nil {
			oc = oi.getObjScratch()
			ocs[w] = oc
		}
		leaf := bs.leafOf[e]
		blk := bs.blockOf[e]
		nd := &oc.nodes
		nd.reset(len(t.nodes))
		off := 0
		for node := leaf; ; node = t.nodes[node].Parent {
			ads := len(t.nodes[node].AccessDoors)
			copy(nd.put(node, ads), blk[off:off+ads])
			off += ads
			if node == t.root {
				break
			}
		}
		run(bs.order[bs.starts[e]:bs.starts[e+1]], leaf, oc)
	})
	for _, oc := range ocs {
		if oc != nil {
			oi.putObjScratch(oc)
		}
	}
}

// fillClimbBlock runs the sequential Algorithm-2 climb for loc — the exact
// arithmetic of the single-query path — and scatters the per-node access
// door tables into blk in leaf→root chain order. The sweep counter feeds
// the instrumented no-sweep-on-warm-hit tests.
func (oi *ObjectIndex) fillClimbBlock(loc model.Location, sc *distScratch, blk []float64) {
	t := oi.tree
	sd := &sc.src
	sd.reset(t.venue.NumDoors())
	t.distancesToNode(loc, t.root, sd)
	off := 0
	for _, n := range sd.nodeOrder {
		for _, a := range t.nodes[n].AccessDoors {
			blk[off], _ = sd.tab.get(a)
			off++
		}
	}
	t.climb.sweeps.Add(uint64(len(sd.nodeOrder) - 1))
}
