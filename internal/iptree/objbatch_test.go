package iptree

import (
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"viptree/internal/index"
	"viptree/internal/model"
	"viptree/internal/venuegen"
)

// knnPoints draws a mixed set of query points exercising every batch
// classification: clustered sources (shared climbs and cache hits), exact
// duplicates and uniform points.
func knnPoints(v *model.Venue, n int, seed int64) []model.Location {
	rng := rand.New(rand.NewSource(seed))
	clusters := make([]model.Location, 1+rng.Intn(4))
	for i := range clusters {
		clusters[i] = v.RandomLocation(rng)
	}
	out := make([]model.Location, n)
	for i := range out {
		switch rng.Intn(4) {
		case 0: // clustered source
			out[i] = clusters[rng.Intn(len(clusters))]
		case 1: // duplicate of an earlier point
			if i > 0 {
				out[i] = out[rng.Intn(i)]
				continue
			}
			fallthrough
		default: // uniform
			out[i] = v.RandomLocation(rng)
		}
	}
	return out
}

// objectSet draws a random object set for the venue.
func objectSet(v *model.Venue, n int, seed int64) []model.Location {
	rng := rand.New(rand.NewSource(seed))
	out := make([]model.Location, n)
	for i := range out {
		out[i] = v.RandomLocation(rng)
	}
	return out
}

// checkKNNBatchMatches runs KNNBatch at several worker counts with the
// climb cache both cold/warm and disabled, and requires every result to be
// element-wise identical (reflect.DeepEqual) to the sequential KNN call.
func checkKNNBatchMatches(t *testing.T, oi *ObjectIndex, points []model.Location, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	queries := make([]index.KNNQuery, len(points))
	for i, p := range points {
		// Include the degenerate counts: k <= 0 must yield nil like KNN.
		queries[i] = index.KNNQuery{Q: p, K: rng.Intn(10) - 1}
	}
	want := make([][]index.ObjectResult, len(queries))
	for i, q := range queries {
		want[i] = oi.KNN(q.Q, q.K)
	}
	for _, capacity := range []int{defaultClimbCacheEntries, 0} {
		oi.Tree().SetClimbCacheCapacity(capacity)
		for _, workers := range []int{1, 3, 16} {
			got := make([][]index.ObjectResult, len(queries))
			oi.KNNBatch(queries, got, workers)
			for i := range want {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Fatalf("%s: KNNBatch(workers=%d, cache=%d)[%d] = %v, want %v (q=%v k=%d)",
						oi.Name(), workers, capacity, i, got[i], want[i], queries[i].Q, queries[i].K)
				}
			}
		}
	}
	oi.Tree().SetClimbCacheCapacity(defaultClimbCacheEntries)
}

// checkRangeBatchMatches is the range counterpart of checkKNNBatchMatches.
func checkRangeBatchMatches(t *testing.T, oi *ObjectIndex, points []model.Location, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	queries := make([]index.RangeQuery, len(points))
	for i, p := range points {
		// Radii from negative (always empty) to venue-spanning.
		queries[i] = index.RangeQuery{Q: p, R: float64(rng.Intn(30))*10 - 10}
	}
	want := make([][]index.ObjectResult, len(queries))
	for i, q := range queries {
		want[i] = oi.Range(q.Q, q.R)
	}
	for _, capacity := range []int{defaultClimbCacheEntries, 0} {
		oi.Tree().SetClimbCacheCapacity(capacity)
		for _, workers := range []int{1, 3, 16} {
			got := make([][]index.ObjectResult, len(queries))
			oi.RangeBatch(queries, got, workers)
			for i := range want {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Fatalf("%s: RangeBatch(workers=%d, cache=%d)[%d] = %v, want %v (q=%v r=%v)",
						oi.Name(), workers, capacity, i, got[i], want[i], queries[i].Q, queries[i].R)
				}
			}
		}
	}
	oi.Tree().SetClimbCacheCapacity(defaultClimbCacheEntries)
}

// TestKNNBatchMatchesSequential is the central property of the batched kNN
// path: over random venues, object sets and mixed batches, KNNBatch is
// element-wise identical to sequential KNN at any worker count, with the
// climb cache cold, warm or disabled, for both trees.
func TestKNNBatchMatchesSequential(t *testing.T) {
	f := func(seed uint64, qseed uint16) bool {
		v := randomVenue(seed % 1000)
		tree := MustBuildIPTree(v, Options{})
		vt := NewVIPTree(tree)
		points := knnPoints(v, 30, int64(qseed))
		for _, oi := range []*ObjectIndex{
			tree.IndexObjects(objectSet(v, 25, int64(qseed)+1)),
			vt.IndexObjects(objectSet(v, 25, int64(qseed)+2)),
		} {
			queries := make([]index.KNNQuery, len(points))
			rng := rand.New(rand.NewSource(int64(qseed)))
			for i, p := range points {
				queries[i] = index.KNNQuery{Q: p, K: rng.Intn(8)}
			}
			want := make([][]index.ObjectResult, len(queries))
			for i, q := range queries {
				want[i] = oi.KNN(q.Q, q.K)
			}
			for _, workers := range []int{1, 3} {
				got := make([][]index.ObjectResult, len(queries))
				oi.KNNBatch(queries, got, workers)
				for i := range want {
					if !reflect.DeepEqual(got[i], want[i]) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestRangeBatchMatchesSequential is the range counterpart of
// TestKNNBatchMatchesSequential.
func TestRangeBatchMatchesSequential(t *testing.T) {
	f := func(seed uint64, qseed uint16) bool {
		v := randomVenue(seed % 1000)
		tree := MustBuildIPTree(v, Options{})
		points := knnPoints(v, 30, int64(qseed))
		oi := tree.IndexObjects(objectSet(v, 25, int64(qseed)+1))
		queries := make([]index.RangeQuery, len(points))
		rng := rand.New(rand.NewSource(int64(qseed)))
		for i, p := range points {
			queries[i] = index.RangeQuery{Q: p, R: float64(rng.Intn(25)) * 10}
		}
		want := make([][]index.ObjectResult, len(queries))
		for i, q := range queries {
			want[i] = oi.Range(q.Q, q.R)
		}
		for _, workers := range []int{1, 3} {
			got := make([][]index.ObjectResult, len(queries))
			oi.RangeBatch(queries, got, workers)
			for i := range want {
				if !reflect.DeepEqual(got[i], want[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestObjectBatchCampus pins both batch kinds on a multi-building campus
// venue (distinct leaves per building, deep climbs) across worker counts
// and cache states, for both trees.
func TestObjectBatchCampus(t *testing.T) {
	v := venuegen.MustCampus(venuegen.CampusConfig{Name: "objbatch-campus", Buildings: 4, Seed: 17})
	tree := MustBuildIPTree(v, Options{})
	vt := NewVIPTree(tree)
	points := knnPoints(v, 200, 23)
	for _, oi := range []*ObjectIndex{
		tree.IndexObjects(objectSet(v, 60, 5)),
		vt.IndexObjects(objectSet(v, 60, 6)),
	} {
		checkKNNBatchMatches(t, oi, points, 31)
		checkRangeBatchMatches(t, oi, points, 37)
	}
}

// TestObjectBatchUnpacked pins the per-query fallback on the unpacked
// intermediate state (no positional tables): still identical to sequential.
func TestObjectBatchUnpacked(t *testing.T) {
	v := randomVenue(47)
	tree, err := buildIPTreeUnpacked(v, Options{})
	if err != nil {
		t.Fatal(err)
	}
	oi := tree.IndexObjects(objectSet(v, 20, 3))
	points := knnPoints(v, 40, 9)
	checkKNNBatchMatches(t, oi, points, 41)
	checkRangeBatchMatches(t, oi, points, 43)
}

// TestObjectBatchUnderMovers drives batches concurrently with movers and
// checks the epoch pin: every query of one batch must answer from the same
// published epoch. The batch repeats one identical query many times while a
// mover oscillates the nearest object between two distant locations — if
// two queries of a batch observed different epochs, their results would
// differ.
func TestObjectBatchUnderMovers(t *testing.T) {
	v := venuegen.MustBuilding(venuegen.BuildingConfig{
		Name: "objbatch-movers", Floors: 3, RoomsPerHallway: 10, Seed: 51,
	})
	tree := MustBuildIPTree(v, Options{})
	oi := tree.IndexObjects(objectSet(v, 16, 8))
	rng := rand.New(rand.NewSource(13))
	locA := v.RandomLocation(rng)
	locB := v.RandomLocation(rng)
	q := v.RandomLocation(rng)

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			loc := locA
			if i%2 == 1 {
				loc = locB
			}
			if err := oi.Move(0, loc); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	const batchSize = 64
	knns := make([]index.KNNQuery, batchSize)
	for i := range knns {
		knns[i] = index.KNNQuery{Q: q, K: 3}
	}
	ranges := make([]index.RangeQuery, batchSize)
	for i := range ranges {
		ranges[i] = index.RangeQuery{Q: q, R: 150}
	}
	for round := 0; round < 50; round++ {
		out := make([][]index.ObjectResult, batchSize)
		oi.KNNBatch(knns, out, 4)
		for i := 1; i < batchSize; i++ {
			if !reflect.DeepEqual(out[i], out[0]) {
				t.Fatalf("round %d: KNNBatch answers differ within one batch: [%d]=%v, [0]=%v",
					round, i, out[i], out[0])
			}
		}
		rout := make([][]index.ObjectResult, batchSize)
		oi.RangeBatch(ranges, rout, 4)
		for i := 1; i < batchSize; i++ {
			if !reflect.DeepEqual(rout[i], rout[0]) {
				t.Fatalf("round %d: RangeBatch answers differ within one batch: [%d]=%v, [0]=%v",
					round, i, rout[i], rout[0])
			}
		}
	}
	stop.Store(true)
	wg.Wait()

	// Quiescent: the batch must agree with sequential queries again.
	checkKNNBatchMatches(t, oi, knnPoints(v, 50, 61), 67)
}

// TestKNNBatchWarmCacheNoSweeps is the instrumented acceptance check of the
// climb cache: re-running a batch over already-cached sources must perform
// zero leaf-to-root matrix sweeps — every climb block comes from the cache.
func TestKNNBatchWarmCacheNoSweeps(t *testing.T) {
	v := venuegen.MustBuilding(venuegen.BuildingConfig{
		Name: "objbatch-sweeps", Floors: 3, RoomsPerHallway: 12, Seed: 71,
	})
	tree := MustBuildIPTree(v, Options{})
	oi := tree.IndexObjects(objectSet(v, 30, 2))
	points := knnPoints(v, 100, 77)
	queries := make([]index.KNNQuery, len(points))
	for i, p := range points {
		queries[i] = index.KNNQuery{Q: p, K: 4}
	}
	out := make([][]index.ObjectResult, len(queries))

	tree.SetClimbCacheCapacity(defaultClimbCacheEntries) // reset to a known state
	oi.KNNBatch(queries, out, 3)
	cold := oi.ClimbCacheStats()
	if cold.Sweeps == 0 {
		t.Fatal("cold batch executed no climb sweeps — instrumentation broken")
	}
	if cold.Misses == 0 || cold.Entries == 0 || cold.Bytes <= 0 {
		t.Fatalf("cold batch populated nothing: %+v", cold)
	}

	oi.KNNBatch(queries, out, 3)
	warm := oi.ClimbCacheStats()
	if got := warm.Sweeps - cold.Sweeps; got != 0 {
		t.Fatalf("warm batch executed %d climb sweeps, want 0 (stats %+v)", got, warm)
	}
	if warm.Hits <= cold.Hits {
		t.Fatalf("warm batch recorded no cache hits: cold %+v, warm %+v", cold, warm)
	}

	// RangeBatch shares the cache: still zero sweeps over the same sources.
	ranges := make([]index.RangeQuery, len(points))
	for i, p := range points {
		ranges[i] = index.RangeQuery{Q: p, R: 80}
	}
	rout := make([][]index.ObjectResult, len(ranges))
	oi.RangeBatch(ranges, rout, 3)
	after := oi.ClimbCacheStats()
	if got := after.Sweeps - warm.Sweeps; got != 0 {
		t.Fatalf("warm RangeBatch executed %d climb sweeps, want 0", got)
	}
}

// TestClimbCacheEviction bounds the cache and checks the clock hand: more
// distinct sources than slots must evict, residency must respect the bound,
// and results must stay correct throughout.
func TestClimbCacheEviction(t *testing.T) {
	v := venuegen.MustBuilding(venuegen.BuildingConfig{
		Name: "objbatch-evict", Floors: 2, RoomsPerHallway: 10, Seed: 81,
	})
	tree := MustBuildIPTree(v, Options{})
	oi := tree.IndexObjects(objectSet(v, 20, 4))
	tree.SetClimbCacheCapacity(4)
	defer tree.SetClimbCacheCapacity(defaultClimbCacheEntries)

	rng := rand.New(rand.NewSource(5))
	points := make([]model.Location, 32) // far more distinct sources than slots
	for i := range points {
		points[i] = v.RandomLocation(rng)
	}
	queries := make([]index.KNNQuery, len(points))
	for i, p := range points {
		queries[i] = index.KNNQuery{Q: p, K: 3}
	}
	out := make([][]index.ObjectResult, len(queries))
	oi.KNNBatch(queries, out, 1)
	st := oi.ClimbCacheStats()
	if st.Entries > 4 {
		t.Fatalf("cache holds %d entries, bound is 4", st.Entries)
	}
	if st.Evictions == 0 {
		t.Fatalf("no evictions after %d distinct sources through 4 slots: %+v", len(points), st)
	}
	for i, q := range queries {
		if want := oi.KNN(q.Q, q.K); !reflect.DeepEqual(out[i], want) {
			t.Fatalf("result %d diverged under eviction pressure: %v, want %v", i, out[i], want)
		}
	}
}
