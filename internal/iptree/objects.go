package iptree

import (
	"cmp"
	"errors"
	"fmt"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"viptree/internal/index"
	"viptree/internal/model"
)

// This file implements indexing of indoor objects and the k-nearest-
// neighbour and range queries of Section 3.4 (Algorithm 5 with the mindist
// optimisations of Lemmas 8 and 9), plus the object-update operations
// (Insert, Delete, Move) that make the index suitable for moving indoor
// objects — the paper's central advantage over G-tree-style indexes, whose
// object updates touch large parts of the structure. Here an update touches
// only the leaf (or, for a cross-leaf move, the two leaves) containing the
// object.

// ObjectID identifies an object in an ObjectIndex. IDs handed out by
// IndexObjects are the positions in the object slice; IDs handed out by
// Insert reuse deleted slots before growing the set. It aliases int so that
// index.ObjectResult.ObjectID carries the same values.
type ObjectID = int

// Errors reported by the object-update operations.
var (
	// ErrNoSuchObject reports an update addressing an object ID that was
	// never allocated or has been deleted.
	ErrNoSuchObject = errors.New("iptree: no such object")
)

// objEntry is an object together with its distance from a specific access
// door of the leaf containing it.
type objEntry struct {
	objectID ObjectID
	dist     float64
}

// cmpObjEntry orders access-list entries by ascending distance, breaking
// ties on the object ID so that list order — and therefore the order in
// which equidistant objects reach the result collector — is deterministic
// and independent of insertion history.
func cmpObjEntry(a, b objEntry) int {
	if a.dist != b.dist {
		return cmp.Compare(a.dist, b.dist)
	}
	return cmp.Compare(a.objectID, b.objectID)
}

// leafObjects is the embedded-object state of one leaf, guarded by the
// leaf's shard lock: updates mutate it in place (holding the write lock),
// leaf scans read it under the read lock. In-place mutation keeps an object
// update down to a couple of in-array shifts — no per-update reallocation
// of the leaf's lists — which is what makes Move two orders of magnitude
// cheaper than a rebuild even on trees with few, large leaves.
type leafObjects struct {
	// ids lists the leaf's objects in ascending ObjectID order.
	ids []ObjectID
	// locs[i] is the location of ids[i] (kept here so query threads never
	// touch the writer-owned object table).
	locs []model.Location
	// lists[ai] lists the leaf's objects sorted by (distance from the
	// leaf's ai-th access door, ObjectID), aligned with Node.AccessDoors.
	lists [][]objEntry
	// maxID is an exclusive upper bound on the IDs ever present in ids,
	// sizing the per-query dense object scratch. It never shrinks.
	maxID int
}

// objShards is the number of writer locks the leaves are sharded over; a
// power of two so the shard of a leaf is a mask away.
const objShards = 64

// ObjectIndex embeds a set of objects into an IP-Tree (or VIP-Tree): each
// object records the leaf that contains it, and every access door of a leaf
// keeps the list of the leaf's objects sorted by distance from that door.
//
// The index is mutable and safe for concurrent use: Insert, Delete and Move
// update only the leaf (or two leaves) containing the object, in place,
// under that leaf's shard of the reader/writer lock array; kNN and Range
// queries take the read side only around the scan of each populated leaf
// they reach (branch pruning reads the atomic subtree counts and never
// locks). Updates on different shards proceed in parallel; updates on the
// same leaf serialise.
//
// Consistency model: every query observes each leaf atomically (the leaf's
// lock covers the scan), so per-leaf state is never torn. A cross-leaf Move
// is not atomic with respect to concurrent queries: a query overlapping the
// move may see the object at its old location, its new location, or — in a
// narrow window — at both (deduplicated to the nearer one) or neither.
// Objects not being mutated are always reported exactly. Quiescent queries
// (no concurrent updates) are exact.
type ObjectIndex struct {
	tree *Tree
	name string

	// shards is the sharded per-leaf reader/writer lock array: an update
	// write-locks the shard(s) of the leaf (or leaves) it touches, a query
	// read-locks a leaf's shard only while scanning that leaf.
	shards [objShards]sync.RWMutex
	// leafData[n] is the object state of leaf n, guarded by the leaf's
	// shard; nil until the leaf first receives an object (and always nil
	// for non-leaf nodes).
	leafData []*leafObjects
	// subtreeCount[n] counts the objects in the subtree rooted at n, letting
	// Algorithm 5 skip empty branches without locking; counts (rather than
	// booleans) let deletes un-mark branches that become empty.
	subtreeCount []atomic.Int64
	// leafColPos[leaf][ai] is the column position of the leaf's ai-th access
	// door in the leaf's matrix (-1 when absent), precomputed once so object
	// updates sweep the matrix positionally instead of binary-searching
	// per entry. Immutable after construction.
	leafColPos [][]int32
	// epoch increments on every completed update; it versions the object
	// set for stats, tests and cache invalidation by callers.
	epoch atomic.Uint64
	// tableMu guards the object table below (id allocation, the free list,
	// and the authoritative object locations and leaf assignments).
	tableMu sync.Mutex
	// objects[id] is the location of object id; stale for deleted slots.
	objects []model.Location
	// objLeaf[id] is the leaf containing object id, or invalidNode when the
	// slot is free.
	objLeaf []NodeID
	// free lists deleted slots available for reuse (popped from the end).
	free []ObjectID
	// alive is the number of live objects.
	alive int

	// scratchPool recycles per-query traversal scratch (objScratch), keeping
	// warm kNN/Range queries down to the result-slice allocation and safe
	// for concurrent callers.
	scratchPool sync.Pool
}

// newObjectIndex returns an empty object index over the tree.
func newObjectIndex(t *Tree, name string) *ObjectIndex {
	oi := &ObjectIndex{
		tree:         t,
		name:         name,
		leafData:     make([]*leafObjects, len(t.nodes)),
		subtreeCount: make([]atomic.Int64, len(t.nodes)),
		leafColPos:   make([][]int32, len(t.nodes)),
	}
	for i := range t.nodes {
		n := &t.nodes[i]
		if !n.IsLeaf() || n.Matrix == nil {
			continue
		}
		if t.pk != nil {
			// The packed tree already holds exactly this table (a leaf's
			// adPosInOwn positions are its matrix column positions); share
			// the view instead of recomputing it.
			oi.leafColPos[i] = t.pk.adPosInOwn[i]
			continue
		}
		pos := make([]int32, len(n.AccessDoors))
		for ai, a := range n.AccessDoors {
			if p, ok := n.Matrix.colIndexOf(a); ok {
				pos[ai] = int32(p)
			} else {
				pos[ai] = -1
			}
		}
		oi.leafColPos[i] = pos
	}
	return oi
}

// IndexObjects embeds the object set into the tree and returns the object
// index used by KNN and Range queries. Object IDs are the slice positions.
// The returned index accepts further Insert/Delete/Move updates.
func (t *Tree) IndexObjects(objects []model.Location) *ObjectIndex {
	oi := newObjectIndex(t, t.Name())
	oi.objects = append(oi.objects, objects...)
	oi.objLeaf = make([]NodeID, len(objects))
	oi.alive = len(objects)
	// Group object IDs by leaf; iterating in ID order keeps every per-leaf
	// ID list ascending by construction.
	perLeaf := make([][]ObjectID, len(t.nodes))
	for id, o := range objects {
		leaf := t.Leaf(o.Partition)
		oi.objLeaf[id] = leaf
		perLeaf[leaf] = append(perLeaf[leaf], id)
	}
	for leaf, ids := range perLeaf {
		if len(ids) == 0 {
			continue
		}
		oi.leafData[leaf] = oi.buildLeaf(NodeID(leaf), ids)
		oi.addCountPath(NodeID(leaf), int64(len(ids)))
	}
	return oi
}

// IndexObjects embeds the object set into the VIP-Tree; the object machinery
// is shared with the IP-Tree, the returned index merely reports the VIP-Tree
// name in benchmark output.
func (vt *VIPTree) IndexObjects(objects []model.Location) *ObjectIndex {
	oi := vt.Tree.IndexObjects(objects)
	oi.name = vt.Name()
	return oi
}

// buildLeaf constructs the immutable snapshot of one leaf from scratch: ids
// must be ascending, and locations are read from the object table (callers
// hold the table exclusively or are single-threaded).
func (oi *ObjectIndex) buildLeaf(leaf NodeID, ids []ObjectID) *leafObjects {
	node := &oi.tree.nodes[leaf]
	lo := &leafObjects{
		ids:   ids,
		locs:  make([]model.Location, len(ids)),
		lists: make([][]objEntry, len(node.AccessDoors)),
		maxID: ids[len(ids)-1] + 1,
	}
	for i, id := range ids {
		lo.locs[i] = oi.objects[id]
	}
	dists := make([]float64, len(node.AccessDoors))
	flat := make([]objEntry, len(node.AccessDoors)*len(ids))
	for ai := range node.AccessDoors {
		lo.lists[ai] = flat[ai*len(ids) : (ai+1)*len(ids) : (ai+1)*len(ids)]
	}
	for i, id := range ids {
		oi.accessDists(leaf, lo.locs[i], dists)
		for ai := range lo.lists {
			lo.lists[ai][i] = objEntry{objectID: id, dist: dists[ai]}
		}
	}
	for ai := range lo.lists {
		slices.SortFunc(lo.lists[ai], cmpObjEntry)
	}
	return lo
}

// accessDists computes the distance from an object location inside the leaf
// to every access door of the leaf, into dists (length: the access-door
// count): per door the best combination of walking to one of the
// partition's doors and the leaf matrix from there (Section 3.4). Row and
// column positions are resolved once and the flat matrix swept positionally,
// which keeps an object update a few microseconds.
func (oi *ObjectIndex) accessDists(leaf NodeID, o model.Location, dists []float64) {
	t := oi.tree
	mat := t.nodes[leaf].Matrix
	cols := oi.leafColPos[leaf]
	for ai := range dists {
		dists[ai] = Infinite
	}
	for _, dp := range t.venue.Partition(o.Partition).Doors {
		row, ok := mat.rowIndexOf(dp)
		if !ok {
			continue
		}
		walk := t.venue.DistToDoor(o, dp)
		for ai, col := range cols {
			if col < 0 {
				continue
			}
			md := mat.distAt(row, int(col))
			if md == Infinite {
				continue
			}
			if d := walk + md; d < dists[ai] {
				dists[ai] = d
			}
		}
	}
}

// shard returns the reader/writer lock guarding the leaf.
func (oi *ObjectIndex) shard(leaf NodeID) *sync.RWMutex {
	return &oi.shards[int(leaf)&(objShards-1)]
}

// addCountPath adds delta to the object count of every node from the leaf up
// to the root.
func (oi *ObjectIndex) addCountPath(leaf NodeID, delta int64) {
	for n := leaf; n != invalidNode; n = oi.tree.nodes[n].Parent {
		oi.subtreeCount[n].Add(delta)
	}
}

// leafFor validates the location and returns the leaf containing it.
func (oi *ObjectIndex) leafFor(loc model.Location) (NodeID, error) {
	if int(loc.Partition) < 0 || int(loc.Partition) >= oi.tree.venue.NumPartitions() {
		return invalidNode, fmt.Errorf("iptree: object partition %d out of range [0,%d)",
			loc.Partition, oi.tree.venue.NumPartitions())
	}
	return oi.tree.Leaf(loc.Partition), nil
}

// Insert adds an object at the location and returns its ID, reusing the slot
// of a previously deleted object when one is free. Cost is bounded by the
// size of the leaf containing the location.
func (oi *ObjectIndex) Insert(loc model.Location) (ObjectID, error) {
	leaf, err := oi.leafFor(loc)
	if err != nil {
		return 0, err
	}
	s := oi.shard(leaf)
	s.Lock()
	defer s.Unlock()
	oi.tableMu.Lock()
	var id ObjectID
	if n := len(oi.free); n > 0 {
		id = oi.free[n-1]
		oi.free = oi.free[:n-1]
		oi.objects[id] = loc
	} else {
		id = len(oi.objects)
		oi.objects = append(oi.objects, loc)
		oi.objLeaf = append(oi.objLeaf, invalidNode)
	}
	oi.objLeaf[id] = leaf
	oi.alive++
	oi.tableMu.Unlock()
	oi.insertIntoLeaf(leaf, id, loc)
	oi.addCountPath(leaf, 1)
	oi.epoch.Add(1)
	return id, nil
}

// Delete removes the object. Cost is bounded by the size of the leaf
// containing it.
func (oi *ObjectIndex) Delete(id ObjectID) error {
	for {
		leaf, err := oi.currentLeaf(id)
		if err != nil {
			return err
		}
		s := oi.shard(leaf)
		s.Lock()
		oi.tableMu.Lock()
		if oi.objLeaf[id] != leaf {
			// The object moved between the leaf read and the lock; retry
			// with the lock of its current leaf.
			oi.tableMu.Unlock()
			s.Unlock()
			continue
		}
		oi.objLeaf[id] = invalidNode
		oi.free = append(oi.free, id)
		oi.alive--
		oi.tableMu.Unlock()
		oi.removeFromLeaf(leaf, id)
		oi.addCountPath(leaf, -1)
		oi.epoch.Add(1)
		s.Unlock()
		return nil
	}
}

// Move relocates the object to the new location. Cost is bounded by the
// sizes of the source and target leaves: only their access lists are
// touched, every other leaf of the tree is unaffected — the update locality
// that makes the index suitable for moving indoor objects.
func (oi *ObjectIndex) Move(id ObjectID, loc model.Location) error {
	dst, err := oi.leafFor(loc)
	if err != nil {
		return err
	}
	for {
		src, err := oi.currentLeaf(id)
		if err != nil {
			return err
		}
		// Lock the shards of both leaves in index order (once when shared)
		// so concurrent cross-leaf moves cannot deadlock.
		sa, sb := oi.shard(src), oi.shard(dst)
		if sa == sb {
			sa.Lock()
		} else if int(src)&(objShards-1) < int(dst)&(objShards-1) {
			sa.Lock()
			sb.Lock()
		} else {
			sb.Lock()
			sa.Lock()
		}
		unlock := func() {
			sa.Unlock()
			if sb != sa {
				sb.Unlock()
			}
		}
		oi.tableMu.Lock()
		if oi.objLeaf[id] != src {
			oi.tableMu.Unlock()
			unlock()
			continue
		}
		oi.objects[id] = loc
		oi.objLeaf[id] = dst
		oi.tableMu.Unlock()
		if src == dst {
			oi.removeFromLeaf(src, id)
			oi.insertIntoLeaf(src, id, loc)
		} else {
			// Apply the arrival before the departure (and bump counts in the
			// same order) so concurrent queries over-approximate: while both
			// leaves are locked no reader can observe either, and readers of
			// other branches transiently see ancestor counts at or above the
			// true value — branches never un-mark while an object is in
			// flight.
			oi.insertIntoLeaf(dst, id, loc)
			oi.addCountPath(dst, 1)
			oi.removeFromLeaf(src, id)
			oi.addCountPath(src, -1)
		}
		oi.epoch.Add(1)
		unlock()
		return nil
	}
}

// currentLeaf returns the leaf currently containing the object, or
// ErrNoSuchObject for unallocated or deleted IDs.
func (oi *ObjectIndex) currentLeaf(id ObjectID) (NodeID, error) {
	oi.tableMu.Lock()
	defer oi.tableMu.Unlock()
	if id < 0 || id >= len(oi.objLeaf) || oi.objLeaf[id] == invalidNode {
		return invalidNode, fmt.Errorf("%w: id %d", ErrNoSuchObject, id)
	}
	return oi.objLeaf[id], nil
}

// insertIntoLeaf adds the object to the leaf's state in place (the caller
// holds the leaf's shard write lock): the ID and location lists gain one
// entry at their sorted position, and each access list gains the object at
// the position given by its distance from that access door (ties broken on
// ObjectID). Cost is a couple of in-array shifts per access list — no list
// is rebuilt, and allocation happens only when a backing array must grow.
func (oi *ObjectIndex) insertIntoLeaf(leaf NodeID, id ObjectID, loc model.Location) {
	lo := oi.leafData[leaf]
	if lo == nil {
		lo = &leafObjects{lists: make([][]objEntry, len(oi.tree.nodes[leaf].AccessDoors))}
		oi.leafData[leaf] = lo
	}
	pos := sort.SearchInts(lo.ids, id)
	lo.ids = slices.Insert(lo.ids, pos, id)
	lo.locs = slices.Insert(lo.locs, pos, loc)
	lo.maxID = max(lo.maxID, id+1)
	var distBuf [16]float64
	dists := distBuf[:]
	if len(lo.lists) > len(distBuf) {
		dists = make([]float64, len(lo.lists))
	}
	dists = dists[:len(lo.lists)]
	oi.accessDists(leaf, loc, dists)
	for ai := range lo.lists {
		e := objEntry{objectID: id, dist: dists[ai]}
		list := lo.lists[ai]
		i := sort.Search(len(list), func(j int) bool { return cmpObjEntry(list[j], e) > 0 })
		lo.lists[ai] = slices.Insert(list, i, e)
	}
}

// removeFromLeaf deletes the object from the leaf's state in place (the
// caller holds the leaf's shard write lock), shifting each access list over
// the removed entry. The leafObjects value and its backing arrays are kept
// for reuse even when the leaf empties.
func (oi *ObjectIndex) removeFromLeaf(leaf NodeID, id ObjectID) {
	lo := oi.leafData[leaf]
	if lo == nil {
		return
	}
	pos := sort.SearchInts(lo.ids, id)
	if pos >= len(lo.ids) || lo.ids[pos] != id {
		return
	}
	lo.ids = slices.Delete(lo.ids, pos, pos+1)
	lo.locs = slices.Delete(lo.locs, pos, pos+1)
	for ai, list := range lo.lists {
		if i := slices.IndexFunc(list, func(e objEntry) bool { return e.objectID == id }); i >= 0 {
			lo.lists[ai] = slices.Delete(list, i, i+1)
		}
	}
}

// Name implements index.ObjectQuerier.
func (oi *ObjectIndex) Name() string { return oi.name }

// Objects returns a copy of the object table. Slots of deleted objects hold
// their last location; use Location to distinguish live objects.
func (oi *ObjectIndex) Objects() []model.Location {
	oi.tableMu.Lock()
	defer oi.tableMu.Unlock()
	out := make([]model.Location, len(oi.objects))
	copy(out, oi.objects)
	return out
}

// Location returns the current location of the object and whether it is
// alive.
func (oi *ObjectIndex) Location(id ObjectID) (model.Location, bool) {
	oi.tableMu.Lock()
	defer oi.tableMu.Unlock()
	if id < 0 || id >= len(oi.objLeaf) || oi.objLeaf[id] == invalidNode {
		return model.Location{}, false
	}
	return oi.objects[id], true
}

// NumObjects returns the number of live objects.
func (oi *ObjectIndex) NumObjects() int {
	oi.tableMu.Lock()
	defer oi.tableMu.Unlock()
	return oi.alive
}

// Epoch returns the update epoch: it increments on every completed Insert,
// Delete or Move, versioning the object set for caches and tests.
func (oi *ObjectIndex) Epoch() uint64 { return oi.epoch.Load() }

// Tree returns the tree the objects are embedded in.
func (oi *ObjectIndex) Tree() *Tree { return oi.tree }

// MemoryBytes estimates the memory used by the object lists and the object
// table, using unsafe.Sizeof-derived per-element sizes (memsize.go) so the
// estimate tracks the actual types.
func (oi *ObjectIndex) MemoryBytes() int64 {
	var total int64
	for i := range oi.leafData {
		sh := oi.shard(NodeID(i))
		sh.RLock()
		lo := oi.leafData[i]
		if lo == nil {
			sh.RUnlock()
			continue
		}
		total += int64(len(lo.ids))*(sizeofInt+sizeofLocation) + 3*sizeofSliceHeader + sizeofInt
		for _, es := range lo.lists {
			total += int64(len(es))*sizeofObjEntry + sizeofSliceHeader
		}
		sh.RUnlock()
	}
	oi.tableMu.Lock()
	total += int64(len(oi.objects))*sizeofLocation + int64(len(oi.objLeaf))*sizeofNodeID + int64(len(oi.free))*sizeofInt
	oi.tableMu.Unlock()
	total += int64(len(oi.leafData)) * 8     // *leafObjects pointers
	total += int64(len(oi.subtreeCount)) * 8 // atomic.Int64
	total += int64(len(oi.leafColPos)) * sizeofSliceHeader
	if oi.tree.pk == nil {
		// On packed trees the position data is shared with (and counted by)
		// the tree's pos slab; only unpacked trees own a private copy.
		for _, pos := range oi.leafColPos {
			total += int64(len(pos)) * 4
		}
	}
	return total
}

// KNN returns the k objects nearest to q, sorted by ascending distance with
// ties broken on ascending ObjectID (Algorithm 5). Fewer than k results are
// returned if the object set is smaller than k or parts of it are
// unreachable.
func (oi *ObjectIndex) KNN(q model.Location, k int) []index.ObjectResult {
	if k <= 0 || oi.subtreeCount[oi.tree.root].Load() == 0 {
		return nil
	}
	return oi.branchAndBound(q, k, Infinite)
}

// Range returns every object within distance r of q, sorted by ascending
// distance with ties broken on ascending ObjectID (Section 3.4).
func (oi *ObjectIndex) Range(q model.Location, r float64) []index.ObjectResult {
	if oi.subtreeCount[oi.tree.root].Load() == 0 {
		return nil
	}
	return oi.branchAndBound(q, 0, r)
}

// queuedNode is an entry of the best-first priority queue of Algorithm 5.
type queuedNode struct {
	node    NodeID
	mindist float64
}

// pushQueued adds an entry to the binary min-heap (ordered by mindist).
func pushQueued(h []queuedNode, it queuedNode) []queuedNode {
	h = append(h, it)
	for i := len(h) - 1; i > 0; {
		p := (i - 1) / 2
		if h[p].mindist <= h[i].mindist {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	return h
}

// popQueued removes and returns the entry with the smallest mindist.
func popQueued(h []queuedNode) ([]queuedNode, queuedNode) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	for i := 0; ; {
		l := 2*i + 1
		if l >= len(h) {
			break
		}
		small := l
		if r := l + 1; r < len(h) && h[r].mindist < h[l].mindist {
			small = r
		}
		if h[i].mindist <= h[small].mindist {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return h, top
}

// branchAndBound is the shared best-first traversal: with k > 0 it behaves as
// a kNN search (radius ignored unless smaller); with k == 0 it collects every
// object within the radius. All working state lives in pooled scratch, so the
// warm path allocates only the returned result slice and the method is safe
// for concurrent callers — including callers concurrent with updates:
// branch pruning reads the atomic subtree counts without locking, and each
// leaf scan holds that leaf's shard read lock only for the duration of the
// scan.
func (oi *ObjectIndex) branchAndBound(q model.Location, k int, radius float64) []index.ObjectResult {
	t := oi.tree
	// Step 1 (line 2 of Algorithm 5): distances from q to the access doors
	// of every ancestor of Leaf(q), computed with pooled dense scratch.
	qLeaf := t.Leaf(q.Partition)
	sc := t.getDistScratch()
	defer t.putDistScratch(sc)
	oc := oi.getObjScratch()
	defer oi.putObjScratch(oc)
	sd := &sc.src
	sd.reset(t.venue.NumDoors())
	t.distancesToNode(q, t.root, sd)
	// oc.nodes caches dist(q, a) for the access doors of the nodes the
	// traversal touches, aligned with each node's AccessDoors (Infinite when
	// unreachable). Ancestors of Leaf(q) come from the Algorithm 2 run.
	nd := &oc.nodes
	nd.reset(len(t.nodes))
	for _, n := range sd.nodeOrder {
		ads := t.nodes[n].AccessDoors
		ds := nd.put(n, len(ads))
		for i, a := range ads {
			ds[i], _ = sd.tab.get(a)
		}
	}

	results := resultCollector{k: k, radius: radius, results: oc.results[:0]}
	heap := oc.heap[:0]
	if oi.subtreeCount[t.root].Load() > 0 {
		heap = pushQueued(heap, queuedNode{node: t.root, mindist: 0})
	}
	for len(heap) > 0 {
		var cur queuedNode
		heap, cur = popQueued(heap)
		if cur.mindist > results.bound() {
			break
		}
		node := &t.nodes[cur.node]
		if node.IsLeaf() {
			oi.scanLeaf(q, qLeaf, cur.node, nd, oc, &results)
			continue
		}
		for _, c := range node.Children {
			if oi.subtreeCount[c].Load() == 0 {
				continue
			}
			md := oi.childMinDist(q, qLeaf, cur.node, c, oc)
			if md <= results.bound() {
				heap = pushQueued(heap, queuedNode{node: c, mindist: md})
			}
		}
	}
	// Hand the grown backing arrays back to the scratch before pooling it.
	oc.heap = heap[:0]
	out := results.finish()
	oc.results = results.results[:0]
	return out
}

// childMinDist computes mindist(q, child) and caches the access-door
// distances of the child for use further down the tree (Lemmas 8 and 9).
func (oi *ObjectIndex) childMinDist(q model.Location, qLeaf NodeID, parent, child NodeID, oc *objScratch) float64 {
	t := oi.tree
	nd := &oc.nodes
	if t.IsAncestor(child, qLeaf) {
		return 0
	}
	if d, ok := nd.get(child); ok {
		return minOf(d)
	}
	mat := t.nodes[parent].Matrix
	var baseNode NodeID
	if t.IsAncestor(parent, qLeaf) {
		// Lemma 8: q lies in a sibling of child; combine the sibling's
		// access-door distances with the parent matrix.
		baseNode = t.ChildToward(parent, qLeaf)
	} else {
		// Lemma 9: q lies outside the parent; combine the parent's
		// access-door distances with the parent matrix.
		baseNode = parent
	}
	baseDists, _ := nd.get(baseNode)
	baseDoors := t.nodes[baseNode].AccessDoors
	childAD := t.nodes[child].AccessDoors
	dists := nd.put(child, len(childAD))
	if t.pk != nil {
		// Packed: the base node's and the child's access-door positions in
		// the parent matrix are precomputed (own-matrix positions when the
		// base is the parent itself, parent-matrix positions when it is a
		// sibling). The reachable base doors are gathered into compact
		// (distance, row) pairs once — instead of being re-filtered for
		// every child door — and each child door's minimum is then a tight
		// sweep whose only data-dependent branch is the min update; an
		// unreachable matrix cell yields a candidate of Infinite, which
		// cannot win the strict <.
		baseRows := t.pk.adPosInParent[baseNode]
		if baseNode == parent {
			baseRows = t.pk.adPosInOwn[parent]
		}
		childCols := t.pk.adPosInParent[child]
		cmBase, cmRows := oc.cmBase[:0], oc.cmRows[:0]
		if baseDists != nil {
			for j := range baseDoors {
				if baseDists[j] != Infinite && baseRows[j] >= 0 {
					cmBase = append(cmBase, baseDists[j])
					cmRows = append(cmRows, baseRows[j])
				}
			}
		}
		oc.cmBase, oc.cmRows = cmBase, cmRows
		stride := len(mat.cols)
		slab := mat.dist
		for i := range childAD {
			best := Infinite
			ci := childCols[i]
			if ci >= 0 {
				for k, b := range cmBase {
					if c := b + slab[int(cmRows[k])*stride+int(ci)]; c < best {
						best = c
					}
				}
			}
			// A missing column or an unreached base node (disconnected
			// venue) leaves the child unreachable.
			dists[i] = best
		}
		return minOf(dists)
	}
	for i, di := range childAD {
		best := Infinite
		if baseDists == nil {
			// The base node was never reached (disconnected venue); leave
			// the child unreachable.
			dists[i] = best
			continue
		}
		for j, dj := range baseDoors {
			base := baseDists[j]
			if base == Infinite {
				continue
			}
			md := mat.Dist(dj, di)
			if md == Infinite {
				continue
			}
			if base+md < best {
				best = base + md
			}
		}
		dists[i] = best
	}
	return minOf(dists)
}

func minOf(ds []float64) float64 {
	best := Infinite
	for _, v := range ds {
		if v < best {
			best = v
		}
	}
	return best
}

// scanLeaf evaluates every object in the leaf and updates the result set.
// The scan holds the leaf's shard read lock, so it observes the leaf before
// or after any given update, never mid-update; the lock covers one leaf
// scan only, never the whole traversal, so updates interleave freely with
// the rest of the query.
func (oi *ObjectIndex) scanLeaf(q model.Location, qLeaf, leaf NodeID, nd *nodeDistTable, oc *objScratch, results *resultCollector) {
	t := oi.tree
	sh := oi.shard(leaf)
	sh.RLock()
	defer sh.RUnlock()
	lo := oi.leafData[leaf]
	if lo == nil {
		return
	}
	if leaf == qLeaf {
		// Objects co-located with the query in the same leaf: compute the
		// exact local distance on the D2D graph (cheap: the doors involved
		// are close together).
		for i, id := range lo.ids {
			o := lo.locs[i]
			var d float64
			if o.Partition == q.Partition {
				d = directIntraPartition(t.venue, q, o)
			} else {
				d = t.venue.D2D().LocationDist(q, o)
			}
			results.add(id, d)
		}
		return
	}
	accessDist, _ := nd.get(leaf)
	// Per-object best distances live in the scratch's dense stamped table;
	// one marking generation per scanned leaf.
	oc.bumpObjEpoch(lo.maxID)
	for ai := range t.nodes[leaf].AccessDoors {
		qd := accessDist[ai]
		if qd == Infinite {
			continue
		}
		for _, e := range lo.lists[ai] {
			total := qd + e.dist
			if !oc.objSeen.has(e.objectID) || total < oc.objDist[e.objectID] {
				oc.objSeen.mark(e.objectID)
				oc.objDist[e.objectID] = total
			}
		}
	}
	// Add in ascending object-ID order so that ties at the kNN boundary
	// resolve deterministically.
	for _, id := range lo.ids {
		if oc.objSeen.has(id) {
			results.add(id, oc.objDist[id])
		}
	}
}

// resultCollector accumulates query results for kNN (bounded size) or range
// (bounded radius) queries. The results slice is scratch-backed; finish
// copies the final set into a caller-owned slice.
type resultCollector struct {
	k       int
	radius  float64
	results []index.ObjectResult
}

// bound returns the pruning distance: the current k-th best distance for kNN
// queries, or the radius for range queries.
func (rc *resultCollector) bound() float64 {
	if rc.k <= 0 {
		return rc.radius
	}
	if len(rc.results) < rc.k {
		return rc.radius
	}
	worst := 0.0
	for _, r := range rc.results {
		if r.Dist > worst {
			worst = r.Dist
		}
	}
	return worst
}

func (rc *resultCollector) add(objectID ObjectID, dist float64) {
	if dist > rc.radius {
		return
	}
	// Replace an existing entry for the same object if this one is closer.
	for i := range rc.results {
		if rc.results[i].ObjectID == objectID {
			if dist < rc.results[i].Dist {
				rc.results[i].Dist = dist
			}
			return
		}
	}
	rc.results = append(rc.results, index.ObjectResult{ObjectID: objectID, Dist: dist})
	if rc.k > 0 && len(rc.results) > rc.k {
		// Drop the current worst; among equal distances, drop the largest
		// object ID so the retained set is deterministic.
		worstIdx := 0
		for i := 1; i < len(rc.results); i++ {
			w, r := rc.results[worstIdx], rc.results[i]
			if r.Dist > w.Dist || (r.Dist == w.Dist && r.ObjectID > w.ObjectID) {
				worstIdx = i
			}
		}
		rc.results = append(rc.results[:worstIdx], rc.results[worstIdx+1:]...)
	}
}

// finish sorts the accumulated results in place (ascending distance, ties by
// object ID) and copies them into a fresh slice — the only allocation of a
// warm query.
func (rc *resultCollector) finish() []index.ObjectResult {
	slices.SortFunc(rc.results, func(a, b index.ObjectResult) int {
		if a.Dist != b.Dist {
			return cmp.Compare(a.Dist, b.Dist)
		}
		return cmp.Compare(a.ObjectID, b.ObjectID)
	})
	if len(rc.results) == 0 {
		return nil
	}
	out := make([]index.ObjectResult, len(rc.results))
	copy(out, rc.results)
	return out
}
