package iptree

import (
	"cmp"
	"slices"
	"sort"
	"sync"

	"viptree/internal/index"
	"viptree/internal/model"
)

// This file implements indexing of indoor objects and the k-nearest-
// neighbour and range queries of Section 3.4 (Algorithm 5 with the mindist
// optimisations of Lemmas 8 and 9).

// objEntry is an object together with its distance from a specific access
// door of the leaf containing it.
type objEntry struct {
	objectID int
	dist     float64
}

// ObjectIndex embeds a set of objects into an IP-Tree (or VIP-Tree): each
// object records the leaf that contains it, and every access door of a leaf
// keeps the list of the leaf's objects sorted by distance from that door.
// An ObjectIndex is immutable after construction and safe for concurrent
// queries.
type ObjectIndex struct {
	tree    *Tree
	name    string
	objects []model.Location
	// objectsInLeaf lists object IDs per leaf node.
	objectsInLeaf map[NodeID][]int
	// accessLists[leaf][i] lists the leaf's objects sorted by distance from
	// the leaf's i-th access door (aligned with Node.AccessDoors).
	accessLists map[NodeID][][]objEntry
	// subtreeHasObjects marks nodes whose subtree contains at least one
	// object, letting Algorithm 5 skip empty branches.
	subtreeHasObjects map[NodeID]bool
	// scratchPool recycles per-query traversal scratch (objScratch), keeping
	// warm kNN/Range queries down to the result-slice allocation and safe
	// for concurrent callers.
	scratchPool sync.Pool
}

// IndexObjects embeds the object set into the tree and returns the object
// index used by KNN and Range queries. Object IDs are the slice positions.
func (t *Tree) IndexObjects(objects []model.Location) *ObjectIndex {
	oi := &ObjectIndex{
		tree:              t,
		name:              t.Name(),
		objects:           objects,
		objectsInLeaf:     make(map[NodeID][]int),
		accessLists:       make(map[NodeID][][]objEntry),
		subtreeHasObjects: make(map[NodeID]bool),
	}
	v := t.venue
	for id, o := range objects {
		leaf := t.Leaf(o.Partition)
		oi.objectsInLeaf[leaf] = append(oi.objectsInLeaf[leaf], id)
		for n := leaf; n != invalidNode; n = t.nodes[n].Parent {
			oi.subtreeHasObjects[n] = true
		}
	}
	for leaf, ids := range oi.objectsInLeaf {
		node := &t.nodes[leaf]
		lists := make([][]objEntry, len(node.AccessDoors))
		for ai, a := range node.AccessDoors {
			entries := make([]objEntry, 0, len(ids))
			for _, id := range ids {
				o := objects[id]
				best := Infinite
				for _, dp := range v.Partition(o.Partition).Doors {
					md := node.Matrix.Dist(dp, a)
					if md == Infinite {
						continue
					}
					if d := v.DistToDoor(o, dp) + md; d < best {
						best = d
					}
				}
				entries = append(entries, objEntry{objectID: id, dist: best})
			}
			sort.Slice(entries, func(i, j int) bool { return entries[i].dist < entries[j].dist })
			lists[ai] = entries
		}
		oi.accessLists[leaf] = lists
	}
	return oi
}

// IndexObjects embeds the object set into the VIP-Tree; the object machinery
// is shared with the IP-Tree, the returned index merely reports the VIP-Tree
// name in benchmark output.
func (vt *VIPTree) IndexObjects(objects []model.Location) *ObjectIndex {
	oi := vt.Tree.IndexObjects(objects)
	oi.name = vt.Name()
	return oi
}

// Name implements index.ObjectQuerier.
func (oi *ObjectIndex) Name() string { return oi.name }

// Objects returns the indexed object set.
func (oi *ObjectIndex) Objects() []model.Location { return oi.objects }

// Tree returns the tree the objects are embedded in.
func (oi *ObjectIndex) Tree() *Tree { return oi.tree }

// MemoryBytes estimates the memory used by the object lists.
func (oi *ObjectIndex) MemoryBytes() int64 {
	var total int64
	for _, lists := range oi.accessLists {
		for _, es := range lists {
			total += int64(len(es))*16 + 48
		}
	}
	for _, ids := range oi.objectsInLeaf {
		total += int64(len(ids)) * 8
	}
	return total
}

// KNN returns the k objects nearest to q, sorted by ascending distance
// (Algorithm 5). Fewer than k results are returned if the object set is
// smaller than k or parts of it are unreachable.
func (oi *ObjectIndex) KNN(q model.Location, k int) []index.ObjectResult {
	if k <= 0 || len(oi.objects) == 0 {
		return nil
	}
	return oi.branchAndBound(q, k, Infinite)
}

// Range returns every object within distance r of q, sorted by ascending
// distance (Section 3.4).
func (oi *ObjectIndex) Range(q model.Location, r float64) []index.ObjectResult {
	if len(oi.objects) == 0 {
		return nil
	}
	return oi.branchAndBound(q, 0, r)
}

// queuedNode is an entry of the best-first priority queue of Algorithm 5.
type queuedNode struct {
	node    NodeID
	mindist float64
}

// pushQueued adds an entry to the binary min-heap (ordered by mindist).
func pushQueued(h []queuedNode, it queuedNode) []queuedNode {
	h = append(h, it)
	for i := len(h) - 1; i > 0; {
		p := (i - 1) / 2
		if h[p].mindist <= h[i].mindist {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	return h
}

// popQueued removes and returns the entry with the smallest mindist.
func popQueued(h []queuedNode) ([]queuedNode, queuedNode) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	for i := 0; ; {
		l := 2*i + 1
		if l >= len(h) {
			break
		}
		small := l
		if r := l + 1; r < len(h) && h[r].mindist < h[l].mindist {
			small = r
		}
		if h[i].mindist <= h[small].mindist {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return h, top
}

// branchAndBound is the shared best-first traversal: with k > 0 it behaves as
// a kNN search (radius ignored unless smaller); with k == 0 it collects every
// object within the radius. All working state lives in pooled scratch, so the
// warm path allocates only the returned result slice and the method is safe
// for concurrent callers.
func (oi *ObjectIndex) branchAndBound(q model.Location, k int, radius float64) []index.ObjectResult {
	t := oi.tree
	// Step 1 (line 2 of Algorithm 5): distances from q to the access doors
	// of every ancestor of Leaf(q), computed with pooled dense scratch.
	qLeaf := t.Leaf(q.Partition)
	sc := t.getDistScratch()
	defer t.putDistScratch(sc)
	oc := oi.getObjScratch()
	defer oi.putObjScratch(oc)
	sd := &sc.src
	sd.reset(t.venue.NumDoors())
	t.distancesToNode(q, t.root, sd)
	// oc.nodes caches dist(q, a) for the access doors of the nodes the
	// traversal touches, aligned with each node's AccessDoors (Infinite when
	// unreachable). Ancestors of Leaf(q) come from the Algorithm 2 run.
	nd := &oc.nodes
	nd.reset(len(t.nodes))
	for _, n := range sd.nodeOrder {
		ads := t.nodes[n].AccessDoors
		ds := nd.put(n, len(ads))
		for i, a := range ads {
			ds[i], _ = sd.tab.get(a)
		}
	}

	results := resultCollector{k: k, radius: radius, results: oc.results[:0]}
	heap := oc.heap[:0]
	if oi.subtreeHasObjects[t.root] {
		heap = pushQueued(heap, queuedNode{node: t.root, mindist: 0})
	}
	for len(heap) > 0 {
		var cur queuedNode
		heap, cur = popQueued(heap)
		if cur.mindist > results.bound() {
			break
		}
		node := &t.nodes[cur.node]
		if node.IsLeaf() {
			oi.scanLeaf(q, qLeaf, cur.node, nd, oc, &results)
			continue
		}
		for _, c := range node.Children {
			if !oi.subtreeHasObjects[c] {
				continue
			}
			md := oi.childMinDist(q, qLeaf, cur.node, c, nd)
			if md <= results.bound() {
				heap = pushQueued(heap, queuedNode{node: c, mindist: md})
			}
		}
	}
	// Hand the grown backing arrays back to the scratch before pooling it.
	oc.heap = heap[:0]
	out := results.finish()
	oc.results = results.results[:0]
	return out
}

// childMinDist computes mindist(q, child) and caches the access-door
// distances of the child for use further down the tree (Lemmas 8 and 9).
func (oi *ObjectIndex) childMinDist(q model.Location, qLeaf NodeID, parent, child NodeID, nd *nodeDistTable) float64 {
	t := oi.tree
	if t.IsAncestor(child, qLeaf) {
		return 0
	}
	if d, ok := nd.get(child); ok {
		return minOf(d)
	}
	mat := t.nodes[parent].Matrix
	var baseNode NodeID
	if t.IsAncestor(parent, qLeaf) {
		// Lemma 8: q lies in a sibling of child; combine the sibling's
		// access-door distances with the parent matrix.
		baseNode = t.ChildToward(parent, qLeaf)
	} else {
		// Lemma 9: q lies outside the parent; combine the parent's
		// access-door distances with the parent matrix.
		baseNode = parent
	}
	baseDists, _ := nd.get(baseNode)
	baseDoors := t.nodes[baseNode].AccessDoors
	childAD := t.nodes[child].AccessDoors
	dists := nd.put(child, len(childAD))
	for i, di := range childAD {
		best := Infinite
		if baseDists == nil {
			// The base node was never reached (disconnected venue); leave
			// the child unreachable.
			dists[i] = best
			continue
		}
		for j, dj := range baseDoors {
			base := baseDists[j]
			if base == Infinite {
				continue
			}
			md := mat.Dist(dj, di)
			if md == Infinite {
				continue
			}
			if base+md < best {
				best = base + md
			}
		}
		dists[i] = best
	}
	return minOf(dists)
}

func minOf(ds []float64) float64 {
	best := Infinite
	for _, v := range ds {
		if v < best {
			best = v
		}
	}
	return best
}

// scanLeaf evaluates every object in the leaf and updates the result set.
func (oi *ObjectIndex) scanLeaf(q model.Location, qLeaf, leaf NodeID, nd *nodeDistTable, oc *objScratch, results *resultCollector) {
	t := oi.tree
	if leaf == qLeaf {
		// Objects co-located with the query in the same leaf: compute the
		// exact local distance on the D2D graph (cheap: the doors involved
		// are close together).
		for _, id := range oi.objectsInLeaf[leaf] {
			o := oi.objects[id]
			var d float64
			if o.Partition == q.Partition {
				d = directIntraPartition(t.venue, q, o)
			} else {
				d = t.venue.D2D().LocationDist(q, o)
			}
			results.add(id, d)
		}
		return
	}
	accessDist, _ := nd.get(leaf)
	lists := oi.accessLists[leaf]
	// Per-object best distances live in the scratch's dense stamped table;
	// one marking generation per scanned leaf.
	oc.bumpObjEpoch(len(oi.objects))
	for ai := range t.nodes[leaf].AccessDoors {
		qd := accessDist[ai]
		if qd == Infinite {
			continue
		}
		for _, e := range lists[ai] {
			total := qd + e.dist
			if !oc.objSeen.has(e.objectID) || total < oc.objDist[e.objectID] {
				oc.objSeen.mark(e.objectID)
				oc.objDist[e.objectID] = total
			}
		}
	}
	// Add in ascending object-ID order so that ties at the kNN boundary
	// resolve deterministically.
	for _, id := range oi.objectsInLeaf[leaf] {
		if oc.objSeen.has(id) {
			results.add(id, oc.objDist[id])
		}
	}
}

// resultCollector accumulates query results for kNN (bounded size) or range
// (bounded radius) queries. The results slice is scratch-backed; finish
// copies the final set into a caller-owned slice.
type resultCollector struct {
	k       int
	radius  float64
	results []index.ObjectResult
}

// bound returns the pruning distance: the current k-th best distance for kNN
// queries, or the radius for range queries.
func (rc *resultCollector) bound() float64 {
	if rc.k <= 0 {
		return rc.radius
	}
	if len(rc.results) < rc.k {
		return rc.radius
	}
	worst := 0.0
	for _, r := range rc.results {
		if r.Dist > worst {
			worst = r.Dist
		}
	}
	return worst
}

func (rc *resultCollector) add(objectID int, dist float64) {
	if dist > rc.radius {
		return
	}
	// Replace an existing entry for the same object if this one is closer.
	for i := range rc.results {
		if rc.results[i].ObjectID == objectID {
			if dist < rc.results[i].Dist {
				rc.results[i].Dist = dist
			}
			return
		}
	}
	rc.results = append(rc.results, index.ObjectResult{ObjectID: objectID, Dist: dist})
	if rc.k > 0 && len(rc.results) > rc.k {
		// Drop the current worst; among equal distances, drop the largest
		// object ID so the retained set is deterministic.
		worstIdx := 0
		for i := 1; i < len(rc.results); i++ {
			w, r := rc.results[worstIdx], rc.results[i]
			if r.Dist > w.Dist || (r.Dist == w.Dist && r.ObjectID > w.ObjectID) {
				worstIdx = i
			}
		}
		rc.results = append(rc.results[:worstIdx], rc.results[worstIdx+1:]...)
	}
}

// finish sorts the accumulated results in place (ascending distance, ties by
// object ID) and copies them into a fresh slice — the only allocation of a
// warm query.
func (rc *resultCollector) finish() []index.ObjectResult {
	slices.SortFunc(rc.results, func(a, b index.ObjectResult) int {
		if a.Dist != b.Dist {
			return cmp.Compare(a.Dist, b.Dist)
		}
		return cmp.Compare(a.ObjectID, b.ObjectID)
	})
	if len(rc.results) == 0 {
		return nil
	}
	out := make([]index.ObjectResult, len(rc.results))
	copy(out, rc.results)
	return out
}
