package iptree

import (
	"sort"

	"viptree/internal/index"
	"viptree/internal/model"
)

// This file implements indexing of indoor objects and the k-nearest-
// neighbour and range queries of Section 3.4 (Algorithm 5 with the mindist
// optimisations of Lemmas 8 and 9).

// objEntry is an object together with its distance from a specific access
// door of the leaf containing it.
type objEntry struct {
	objectID int
	dist     float64
}

// ObjectIndex embeds a set of objects into an IP-Tree (or VIP-Tree): each
// object records the leaf that contains it, and every access door of a leaf
// keeps the list of the leaf's objects sorted by distance from that door.
type ObjectIndex struct {
	tree    *Tree
	objects []model.Location
	// objectsInLeaf lists object IDs per leaf node.
	objectsInLeaf map[NodeID][]int
	// accessLists[leaf][door] lists the leaf's objects sorted by distance
	// from the access door.
	accessLists map[NodeID]map[model.DoorID][]objEntry
	// subtreeHasObjects marks nodes whose subtree contains at least one
	// object, letting Algorithm 5 skip empty branches.
	subtreeHasObjects map[NodeID]bool
}

// IndexObjects embeds the object set into the tree and returns the object
// index used by KNN and Range queries. Object IDs are the slice positions.
func (t *Tree) IndexObjects(objects []model.Location) *ObjectIndex {
	oi := &ObjectIndex{
		tree:              t,
		objects:           objects,
		objectsInLeaf:     make(map[NodeID][]int),
		accessLists:       make(map[NodeID]map[model.DoorID][]objEntry),
		subtreeHasObjects: make(map[NodeID]bool),
	}
	v := t.venue
	for id, o := range objects {
		leaf := t.Leaf(o.Partition)
		oi.objectsInLeaf[leaf] = append(oi.objectsInLeaf[leaf], id)
		for n := leaf; n != invalidNode; n = t.nodes[n].Parent {
			oi.subtreeHasObjects[n] = true
		}
	}
	for leaf, ids := range oi.objectsInLeaf {
		node := &t.nodes[leaf]
		lists := make(map[model.DoorID][]objEntry, len(node.AccessDoors))
		for _, a := range node.AccessDoors {
			entries := make([]objEntry, 0, len(ids))
			for _, id := range ids {
				o := objects[id]
				best := Infinite
				for _, dp := range v.Partition(o.Partition).Doors {
					md := node.Matrix.Dist(dp, a)
					if md == Infinite {
						continue
					}
					if d := v.DistToDoor(o, dp) + md; d < best {
						best = d
					}
				}
				entries = append(entries, objEntry{objectID: id, dist: best})
			}
			sort.Slice(entries, func(i, j int) bool { return entries[i].dist < entries[j].dist })
			lists[a] = entries
		}
		oi.accessLists[leaf] = lists
	}
	return oi
}

// Objects returns the indexed object set.
func (oi *ObjectIndex) Objects() []model.Location { return oi.objects }

// Tree returns the tree the objects are embedded in.
func (oi *ObjectIndex) Tree() *Tree { return oi.tree }

// MemoryBytes estimates the memory used by the object lists.
func (oi *ObjectIndex) MemoryBytes() int64 {
	var total int64
	for _, lists := range oi.accessLists {
		for _, es := range lists {
			total += int64(len(es))*16 + 48
		}
	}
	for _, ids := range oi.objectsInLeaf {
		total += int64(len(ids)) * 8
	}
	return total
}

// KNN returns the k objects nearest to q, sorted by ascending distance
// (Algorithm 5). Fewer than k results are returned if the object set is
// smaller than k or parts of it are unreachable.
func (oi *ObjectIndex) KNN(q model.Location, k int) []index.ObjectResult {
	if k <= 0 || len(oi.objects) == 0 {
		return nil
	}
	return oi.branchAndBound(q, k, Infinite)
}

// Range returns every object within distance r of q, sorted by ascending
// distance (Section 3.4).
func (oi *ObjectIndex) Range(q model.Location, r float64) []index.ObjectResult {
	if len(oi.objects) == 0 {
		return nil
	}
	return oi.branchAndBound(q, 0, r)
}

// branchAndBound is the shared best-first traversal: with k > 0 it behaves as
// a kNN search (radius ignored unless smaller); with k == 0 it collects every
// object within the radius.
func (oi *ObjectIndex) branchAndBound(q model.Location, k int, radius float64) []index.ObjectResult {
	t := oi.tree
	// Step 1 (line 2 of Algorithm 5): distances from q to the access doors
	// of every ancestor of Leaf(q).
	qLeaf := t.Leaf(q.Partition)
	sd := t.distancesToNode(q, t.root)
	// nodeDists caches dist(q, a) for the access doors of the nodes the
	// traversal touches. Ancestors of Leaf(q) come from the Algorithm 2 run.
	nodeDists := make(map[NodeID]map[model.DoorID]float64)
	for _, n := range sd.nodeOrder {
		m := make(map[model.DoorID]float64, len(t.nodes[n].AccessDoors))
		for _, a := range t.nodes[n].AccessDoors {
			if dv, ok := sd.dist[a]; ok {
				m[a] = dv
			}
		}
		nodeDists[n] = m
	}

	results := newResultCollector(k, radius)
	// Priority queue over (node, mindist).
	type queued struct {
		node    NodeID
		mindist float64
	}
	heap := []queued{}
	push := func(it queued) {
		heap = append(heap, it)
		for i := len(heap) - 1; i > 0; {
			p := (i - 1) / 2
			if heap[p].mindist <= heap[i].mindist {
				break
			}
			heap[p], heap[i] = heap[i], heap[p]
			i = p
		}
	}
	pop := func() queued {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		for i := 0; ; {
			l := 2*i + 1
			if l >= len(heap) {
				break
			}
			small := l
			if r := l + 1; r < len(heap) && heap[r].mindist < heap[l].mindist {
				small = r
			}
			if heap[i].mindist <= heap[small].mindist {
				break
			}
			heap[i], heap[small] = heap[small], heap[i]
			i = small
		}
		return top
	}

	if oi.subtreeHasObjects[t.root] {
		push(queued{node: t.root, mindist: 0})
	}
	for len(heap) > 0 {
		cur := pop()
		if cur.mindist > results.bound() {
			break
		}
		node := &t.nodes[cur.node]
		if node.IsLeaf() {
			oi.scanLeaf(q, qLeaf, cur.node, nodeDists, results)
			continue
		}
		for _, c := range node.Children {
			if !oi.subtreeHasObjects[c] {
				continue
			}
			md := oi.childMinDist(q, qLeaf, cur.node, c, nodeDists)
			if md <= results.bound() {
				push(queued{node: c, mindist: md})
			}
		}
	}
	return results.sorted()
}

// childMinDist computes mindist(q, child) and caches the access-door
// distances of the child for use further down the tree (Lemmas 8 and 9).
func (oi *ObjectIndex) childMinDist(q model.Location, qLeaf NodeID, parent, child NodeID, nodeDists map[NodeID]map[model.DoorID]float64) float64 {
	t := oi.tree
	if t.IsAncestor(child, qLeaf) {
		return 0
	}
	if d, ok := nodeDists[child]; ok {
		return minOf(d)
	}
	mat := t.nodes[parent].Matrix
	var baseDists map[model.DoorID]float64
	if t.IsAncestor(parent, qLeaf) {
		// Lemma 8: q lies in a sibling of child; combine the sibling's
		// access-door distances with the parent matrix.
		sibling := t.ChildToward(parent, qLeaf)
		baseDists = nodeDists[sibling]
	} else {
		// Lemma 9: q lies outside the parent; combine the parent's
		// access-door distances with the parent matrix.
		baseDists = nodeDists[parent]
	}
	dists := make(map[model.DoorID]float64, len(t.nodes[child].AccessDoors))
	for _, di := range t.nodes[child].AccessDoors {
		best := Infinite
		for dj, base := range baseDists {
			md := mat.Dist(dj, di)
			if md == Infinite {
				continue
			}
			if base+md < best {
				best = base + md
			}
		}
		if best < Infinite {
			dists[di] = best
		}
	}
	nodeDists[child] = dists
	return minOf(dists)
}

func minOf(m map[model.DoorID]float64) float64 {
	best := Infinite
	for _, v := range m {
		if v < best {
			best = v
		}
	}
	return best
}

// scanLeaf evaluates every object in the leaf and updates the result set.
func (oi *ObjectIndex) scanLeaf(q model.Location, qLeaf, leaf NodeID, nodeDists map[NodeID]map[model.DoorID]float64, results *resultCollector) {
	t := oi.tree
	if leaf == qLeaf {
		// Objects co-located with the query in the same leaf: compute the
		// exact local distance on the D2D graph (cheap: the doors involved
		// are close together).
		for _, id := range oi.objectsInLeaf[leaf] {
			o := oi.objects[id]
			var d float64
			if o.Partition == q.Partition {
				d = directIntraPartition(t.venue, q, o)
			} else {
				d = t.venue.D2D().LocationDist(q, o)
			}
			results.add(id, d)
		}
		return
	}
	accessDist := nodeDists[leaf]
	lists := oi.accessLists[leaf]
	best := make(map[int]float64)
	for a, qd := range accessDist {
		for _, e := range lists[a] {
			total := qd + e.dist
			if cur, ok := best[e.objectID]; !ok || total < cur {
				best[e.objectID] = total
			}
		}
	}
	for id, d := range best {
		results.add(id, d)
	}
}

// resultCollector accumulates query results for kNN (bounded size) or range
// (bounded radius) queries.
type resultCollector struct {
	k       int
	radius  float64
	results []index.ObjectResult
}

func newResultCollector(k int, radius float64) *resultCollector {
	return &resultCollector{k: k, radius: radius}
}

// bound returns the pruning distance: the current k-th best distance for kNN
// queries, or the radius for range queries.
func (rc *resultCollector) bound() float64 {
	if rc.k <= 0 {
		return rc.radius
	}
	if len(rc.results) < rc.k {
		return rc.radius
	}
	worst := 0.0
	for _, r := range rc.results {
		if r.Dist > worst {
			worst = r.Dist
		}
	}
	return worst
}

func (rc *resultCollector) add(objectID int, dist float64) {
	if dist > rc.radius {
		return
	}
	// Replace an existing entry for the same object if this one is closer.
	for i := range rc.results {
		if rc.results[i].ObjectID == objectID {
			if dist < rc.results[i].Dist {
				rc.results[i].Dist = dist
			}
			return
		}
	}
	rc.results = append(rc.results, index.ObjectResult{ObjectID: objectID, Dist: dist})
	if rc.k > 0 && len(rc.results) > rc.k {
		// Drop the current worst.
		worstIdx := 0
		for i := range rc.results {
			if rc.results[i].Dist > rc.results[worstIdx].Dist {
				worstIdx = i
			}
		}
		rc.results = append(rc.results[:worstIdx], rc.results[worstIdx+1:]...)
	}
}

func (rc *resultCollector) sorted() []index.ObjectResult {
	sort.Slice(rc.results, func(i, j int) bool {
		if rc.results[i].Dist != rc.results[j].Dist {
			return rc.results[i].Dist < rc.results[j].Dist
		}
		return rc.results[i].ObjectID < rc.results[j].ObjectID
	})
	return rc.results
}
