package iptree

import (
	"cmp"
	"errors"
	"fmt"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"viptree/internal/index"
	"viptree/internal/model"
	"viptree/internal/updatelog"
)

// This file implements indexing of indoor objects and the k-nearest-
// neighbour and range queries of Section 3.4 (Algorithm 5 with the mindist
// optimisations of Lemmas 8 and 9), plus the object-update operations
// (Insert, Delete, Move) that make the index suitable for moving indoor
// objects — the paper's central advantage over G-tree-style indexes, whose
// object updates touch large parts of the structure. Here an update touches
// only the leaf (or, for a cross-leaf move, the two leaves) containing the
// object.

// ObjectID identifies an object in an ObjectIndex. IDs handed out by
// IndexObjects are the positions in the object slice; IDs handed out by
// Insert reuse deleted slots before growing the set. It aliases int so that
// index.ObjectResult.ObjectID carries the same values.
type ObjectID = int

// Errors reported by the object-update operations.
var (
	// ErrNoSuchObject reports an update addressing an object ID that was
	// never allocated or has been deleted.
	ErrNoSuchObject = errors.New("iptree: no such object")
)

// objEntry is an object together with its distance from a specific access
// door of the leaf containing it.
type objEntry struct {
	objectID ObjectID
	dist     float64
}

// cmpObjEntry orders access-list entries by ascending distance, breaking
// ties on the object ID so that list order — and therefore the order in
// which equidistant objects reach the result collector — is deterministic
// and independent of insertion history.
func cmpObjEntry(a, b objEntry) int {
	if a.dist != b.dist {
		return cmp.Compare(a.dist, b.dist)
	}
	return cmp.Compare(a.objectID, b.objectID)
}

// leafObjects is the embedded-object state of one leaf. Once a leaf is
// referenced by a published epoch it is immutable: the writer clones a leaf
// before its first mutation in each publish generation (copy-on-write at
// leaf granularity) and mutates only the private copy. In-place mutation of
// the private copy keeps an object update down to a couple of in-array
// shifts, which is what makes Move two orders of magnitude cheaper than a
// rebuild even on trees with few, large leaves.
type leafObjects struct {
	// ids lists the leaf's objects in ascending ObjectID order.
	ids []ObjectID
	// locs[i] is the location of ids[i] (kept here so query threads never
	// touch the writer-owned object table).
	locs []model.Location
	// lists[ai] lists the leaf's objects sorted by (distance from the
	// leaf's ai-th access door, ObjectID), aligned with Node.AccessDoors.
	lists [][]objEntry
	// maxID is an exclusive upper bound on the IDs ever present in ids,
	// sizing the per-query dense object scratch. It never shrinks.
	maxID int
}

// clone deep-copies the leaf state so the copy can be mutated in place
// without disturbing epochs that still reference the original.
func (lo *leafObjects) clone() *leafObjects {
	c := &leafObjects{
		ids:   slices.Clone(lo.ids),
		locs:  slices.Clone(lo.locs),
		lists: make([][]objEntry, len(lo.lists)),
		maxID: lo.maxID,
	}
	for ai, l := range lo.lists {
		c.lists[ai] = slices.Clone(l)
	}
	return c
}

// objEpoch is one immutable published version of the object set. Readers
// pin an epoch with a single atomic pointer load and then traverse it with
// no further synchronisation: nothing reachable from an epoch is ever
// mutated. Retired epochs are reclaimed by the garbage collector once the
// last reader drops its pin — the Go runtime provides the grace period an
// explicit RCU scheme would have to track by hand.
type objEpoch struct {
	// seq is the update-log sequence number this epoch reflects: every
	// update with Seq <= seq is visible, none after.
	seq uint64
	// leafData[n] is the object state of leaf n (nil when empty, and
	// always nil for non-leaf nodes).
	leafData []*leafObjects
	// subtreeCount[n] counts the objects in the subtree rooted at n,
	// letting Algorithm 5 skip empty branches.
	subtreeCount []int64
}

// countedMutex is a mutex that counts Lock operations. The object table is
// guarded by one; the read path (KNN/Range) never takes it, and the
// lock-free tests pin that by asserting the count stays flat across a
// query storm.
type countedMutex struct {
	mu  sync.Mutex
	ops atomic.Uint64
}

func (m *countedMutex) Lock() {
	m.ops.Add(1)
	m.mu.Lock()
}

func (m *countedMutex) Unlock() { m.mu.Unlock() }

// Ops returns the number of Lock calls so far.
func (m *countedMutex) Ops() uint64 { return m.ops.Load() }

// ObjectIndex embeds a set of objects into an IP-Tree (or VIP-Tree): each
// object records the leaf that contains it, and every access door of a leaf
// keeps the list of the leaf's objects sorted by distance from that door.
//
// The index is mutable and safe for concurrent use, with reads and writes
// physically separated (an HTAP-style split). All mutations are funneled
// through a single-writer update log (internal/updatelog): Insert, Delete
// and Move submit to the log, whose combining writer applies batches to a
// writer-private shadow copy of the leaf state (copy-on-write at leaf
// granularity) and atomically publishes an immutable objEpoch via one
// pointer swap. kNN and Range queries pin the current epoch with a single
// atomic load and run entirely lock-free — zero mutex or RWMutex
// operations on the read path, no matter how fast concurrent updaters
// churn.
//
// Consistency model: every query observes exactly the state of one
// published epoch — a prefix of the update log. Updates, including
// cross-leaf Moves, are atomic from a reader's view: a query sees a moved
// object at its old location or its new one, never at both or neither
// (this strengthens the pre-epoch design, whose cross-leaf moves were
// documented as non-atomic). When Insert/Delete/Move returns, the update
// is visible to all subsequent queries. ChangeLog exposes the ordered,
// gap-free feed of applied updates.
type ObjectIndex struct {
	tree *Tree
	name string

	// cur is the currently published epoch; never nil. The only
	// read-path synchronisation is the atomic load of this pointer.
	cur atomic.Pointer[objEpoch]
	// log is the single-writer update log all mutations go through.
	log *updatelog.Log

	// Writer-private shadow state; owned by the log's combining writer
	// (updatelog guarantees single-threaded access).
	//
	// shadowLeaf mirrors the next epoch's leafData. leafStamp[n] == gen
	// marks a leaf already cloned (privately mutable) in the current
	// publish generation; publishing bumps gen, so the first mutation of
	// a leaf after a publish clones it and later ones mutate in place.
	shadowLeaf  []*leafObjects
	shadowCount []int64
	leafStamp   []uint64
	gen         uint64
	// countsDirty records whether shadowCount diverged from the published
	// epoch's subtreeCount. Same-leaf moves — the common churn — leave the
	// counts untouched, letting publishEpoch share the previous epoch's
	// array instead of recloning the O(nodes) spine on every publish.
	countsDirty bool

	// leafColPos[leaf][ai] is the column position of the leaf's ai-th access
	// door in the leaf's matrix (-1 when absent), precomputed once so object
	// updates sweep the matrix positionally instead of binary-searching
	// per entry. Immutable after construction.
	leafColPos [][]int32

	// tableMu guards the object table below (id allocation, the free list,
	// and the authoritative object locations and leaf assignments). The
	// table is writer- and accessor-side state only: queries never touch
	// it, which the instrumented count verifies.
	tableMu countedMutex
	// objects[id] is the location of object id; stale for deleted slots.
	objects []model.Location
	// objLeaf[id] is the leaf containing object id, or invalidNode when the
	// slot is free.
	objLeaf []NodeID
	// free lists deleted slots available for reuse (popped from the end).
	free []ObjectID
	// alive is the number of live objects.
	alive int

	// scratchPool recycles per-query traversal scratch (objScratch), keeping
	// warm kNN/Range queries down to the result-slice allocation and safe
	// for concurrent callers.
	scratchPool sync.Pool

	// obPool recycles the per-batch plan state of KNNBatch/RangeBatch
	// (objbatch.go): the source dedup set, grouping arrays and the climb
	// block arena.
	obPool sync.Pool
}

// objApplier adapts ObjectIndex to updatelog.Applier without exporting the
// apply hooks on the public type.
type objApplier struct{ oi *ObjectIndex }

func (a objApplier) ApplyUpdate(r *updatelog.Record) error { return a.oi.applyUpdate(r) }
func (a objApplier) PublishEpoch(seq uint64)               { a.oi.publishEpoch(seq) }

// newObjectIndex returns an empty object index over the tree. startSeq is
// the update-log sequence number already reflected in the initial state (0
// for a fresh index, the stamped snapshot seq for a restored one): the
// first applied update gets startSeq+1, which is what lets WAL replay
// resume exactly where the snapshot left off.
func newObjectIndex(t *Tree, name string, startSeq uint64) *ObjectIndex {
	oi := &ObjectIndex{
		tree:        t,
		name:        name,
		shadowLeaf:  make([]*leafObjects, len(t.nodes)),
		shadowCount: make([]int64, len(t.nodes)),
		leafStamp:   make([]uint64, len(t.nodes)),
		gen:         1,
		leafColPos:  make([][]int32, len(t.nodes)),
	}
	oi.cur.Store(&objEpoch{
		leafData:     make([]*leafObjects, len(t.nodes)),
		subtreeCount: make([]int64, len(t.nodes)),
	})
	oi.log = updatelog.New(objApplier{oi}, startSeq)
	for i := range t.nodes {
		n := &t.nodes[i]
		if !n.IsLeaf() || n.Matrix == nil {
			continue
		}
		if t.pk != nil {
			// The packed tree already holds exactly this table (a leaf's
			// adPosInOwn positions are its matrix column positions); share
			// the view instead of recomputing it.
			oi.leafColPos[i] = t.pk.adPosInOwn[i]
			continue
		}
		pos := make([]int32, len(n.AccessDoors))
		for ai, a := range n.AccessDoors {
			if p, ok := n.Matrix.colIndexOf(a); ok {
				pos[ai] = int32(p)
			} else {
				pos[ai] = -1
			}
		}
		oi.leafColPos[i] = pos
	}
	return oi
}

// IndexObjects embeds the object set into the tree and returns the object
// index used by KNN and Range queries. Object IDs are the slice positions.
// The returned index accepts further Insert/Delete/Move updates.
func (t *Tree) IndexObjects(objects []model.Location) *ObjectIndex {
	oi := newObjectIndex(t, t.Name(), 0)
	oi.objects = append(oi.objects, objects...)
	oi.objLeaf = make([]NodeID, len(objects))
	oi.alive = len(objects)
	// Group object IDs by leaf; iterating in ID order keeps every per-leaf
	// ID list ascending by construction.
	perLeaf := make([][]ObjectID, len(t.nodes))
	for id, o := range objects {
		leaf := t.Leaf(o.Partition)
		oi.objLeaf[id] = leaf
		perLeaf[leaf] = append(perLeaf[leaf], id)
	}
	for leaf, ids := range perLeaf {
		if len(ids) == 0 {
			continue
		}
		oi.shadowLeaf[leaf] = oi.buildLeaf(NodeID(leaf), ids)
		oi.addCountPath(NodeID(leaf), int64(len(ids)))
	}
	oi.publishEpoch(0)
	return oi
}

// IndexObjects embeds the object set into the VIP-Tree; the object machinery
// is shared with the IP-Tree, the returned index merely reports the VIP-Tree
// name in benchmark output.
func (vt *VIPTree) IndexObjects(objects []model.Location) *ObjectIndex {
	oi := vt.Tree.IndexObjects(objects)
	oi.name = vt.Name()
	return oi
}

// buildLeaf constructs the state of one leaf from scratch: ids must be
// ascending, and locations are read from the object table (callers hold the
// writer role or are single-threaded).
func (oi *ObjectIndex) buildLeaf(leaf NodeID, ids []ObjectID) *leafObjects {
	node := &oi.tree.nodes[leaf]
	lo := &leafObjects{
		ids:   ids,
		locs:  make([]model.Location, len(ids)),
		lists: make([][]objEntry, len(node.AccessDoors)),
		maxID: ids[len(ids)-1] + 1,
	}
	for i, id := range ids {
		lo.locs[i] = oi.objects[id]
	}
	dists := make([]float64, len(node.AccessDoors))
	flat := make([]objEntry, len(node.AccessDoors)*len(ids))
	for ai := range node.AccessDoors {
		lo.lists[ai] = flat[ai*len(ids) : (ai+1)*len(ids) : (ai+1)*len(ids)]
	}
	for i, id := range ids {
		oi.accessDists(leaf, lo.locs[i], dists)
		for ai := range lo.lists {
			lo.lists[ai][i] = objEntry{objectID: id, dist: dists[ai]}
		}
	}
	for ai := range lo.lists {
		slices.SortFunc(lo.lists[ai], cmpObjEntry)
	}
	return lo
}

// accessDists computes the distance from an object location inside the leaf
// to every access door of the leaf, into dists (length: the access-door
// count): per door the best combination of walking to one of the
// partition's doors and the leaf matrix from there (Section 3.4). Row and
// column positions are resolved once and the flat matrix swept positionally,
// which keeps an object update a few microseconds.
func (oi *ObjectIndex) accessDists(leaf NodeID, o model.Location, dists []float64) {
	t := oi.tree
	mat := t.nodes[leaf].Matrix
	cols := oi.leafColPos[leaf]
	for ai := range dists {
		dists[ai] = Infinite
	}
	for _, dp := range t.venue.Partition(o.Partition).Doors {
		row, ok := mat.rowIndexOf(dp)
		if !ok {
			continue
		}
		walk := t.venue.DistToDoor(o, dp)
		for ai, col := range cols {
			if col < 0 {
				continue
			}
			md := mat.distAt(row, int(col))
			if md == Infinite {
				continue
			}
			if d := walk + md; d < dists[ai] {
				dists[ai] = d
			}
		}
	}
}

// addCountPath adds delta to the shadow object count of every node from the
// leaf up to the root. Writer-only.
func (oi *ObjectIndex) addCountPath(leaf NodeID, delta int64) {
	oi.countsDirty = true
	for n := leaf; n != invalidNode; n = oi.tree.nodes[n].Parent {
		oi.shadowCount[n] += delta
	}
}

// shadowLeafFor returns the writer-private (mutable) state of the leaf,
// cloning the epoch-shared version on the first touch of each publish
// generation. Writer-only.
func (oi *ObjectIndex) shadowLeafFor(leaf NodeID) *leafObjects {
	if oi.leafStamp[leaf] == oi.gen {
		return oi.shadowLeaf[leaf]
	}
	lo := oi.shadowLeaf[leaf]
	if lo == nil {
		lo = &leafObjects{lists: make([][]objEntry, len(oi.tree.nodes[leaf].AccessDoors))}
	} else {
		lo = lo.clone()
	}
	oi.shadowLeaf[leaf] = lo
	oi.leafStamp[leaf] = oi.gen
	return lo
}

// publishEpoch atomically publishes the shadow state as the epoch covering
// log prefix [1..seq]. Writer-only (updatelog.Applier hook); also called
// once at build/restore time with seq 0. O(nodes): the per-leaf states are
// shared by pointer, only the two spine arrays are copied.
func (oi *ObjectIndex) publishEpoch(seq uint64) {
	counts := oi.cur.Load().subtreeCount
	if oi.countsDirty || counts == nil {
		counts = slices.Clone(oi.shadowCount)
		oi.countsDirty = false
	}
	oi.cur.Store(&objEpoch{
		seq:          seq,
		leafData:     slices.Clone(oi.shadowLeaf),
		subtreeCount: counts,
	})
	// Epoch-shared leaves must no longer be mutated in place; bumping the
	// generation invalidates every leafStamp at once.
	oi.gen++
}

// leafFor validates the location and returns the leaf containing it.
func (oi *ObjectIndex) leafFor(loc model.Location) (NodeID, error) {
	if int(loc.Partition) < 0 || int(loc.Partition) >= oi.tree.venue.NumPartitions() {
		return invalidNode, fmt.Errorf("iptree: object partition %d out of range [0,%d)",
			loc.Partition, oi.tree.venue.NumPartitions())
	}
	return oi.tree.Leaf(loc.Partition), nil
}

// applyUpdate applies one log record to the shadow state (updatelog.Applier
// hook; single-threaded by the log). A validation failure leaves the shadow
// untouched and the record unsequenced.
func (oi *ObjectIndex) applyUpdate(r *updatelog.Record) error {
	switch r.Op {
	case updatelog.OpInsert:
		leaf, err := oi.leafFor(r.Loc)
		if err != nil {
			return err
		}
		oi.tableMu.Lock()
		var id ObjectID
		if n := len(oi.free); n > 0 {
			id = oi.free[n-1]
			oi.free = oi.free[:n-1]
			oi.objects[id] = r.Loc
		} else {
			id = len(oi.objects)
			oi.objects = append(oi.objects, r.Loc)
			oi.objLeaf = append(oi.objLeaf, invalidNode)
		}
		oi.objLeaf[id] = leaf
		oi.alive++
		oi.tableMu.Unlock()
		oi.insertIntoLeaf(oi.shadowLeafFor(leaf), leaf, id, r.Loc)
		oi.addCountPath(leaf, 1)
		r.ID = id
		return nil

	case updatelog.OpDelete:
		oi.tableMu.Lock()
		if r.ID < 0 || r.ID >= len(oi.objLeaf) || oi.objLeaf[r.ID] == invalidNode {
			oi.tableMu.Unlock()
			return fmt.Errorf("%w: id %d", ErrNoSuchObject, r.ID)
		}
		leaf := oi.objLeaf[r.ID]
		oi.objLeaf[r.ID] = invalidNode
		oi.free = append(oi.free, r.ID)
		oi.alive--
		oi.tableMu.Unlock()
		oi.removeFromLeaf(oi.shadowLeafFor(leaf), r.ID)
		oi.addCountPath(leaf, -1)
		return nil

	case updatelog.OpMove:
		dst, err := oi.leafFor(r.Loc)
		if err != nil {
			return err
		}
		oi.tableMu.Lock()
		if r.ID < 0 || r.ID >= len(oi.objLeaf) || oi.objLeaf[r.ID] == invalidNode {
			oi.tableMu.Unlock()
			return fmt.Errorf("%w: id %d", ErrNoSuchObject, r.ID)
		}
		src := oi.objLeaf[r.ID]
		oi.objects[r.ID] = r.Loc
		oi.objLeaf[r.ID] = dst
		oi.tableMu.Unlock()
		if src == dst {
			lo := oi.shadowLeafFor(src)
			oi.removeFromLeaf(lo, r.ID)
			oi.insertIntoLeaf(lo, src, r.ID, r.Loc)
		} else {
			// Both leaf edits land in the same epoch, so readers see the
			// move atomically — at the old location or the new one, never
			// both or neither.
			oi.removeFromLeaf(oi.shadowLeafFor(src), r.ID)
			oi.addCountPath(src, -1)
			oi.insertIntoLeaf(oi.shadowLeafFor(dst), dst, r.ID, r.Loc)
			oi.addCountPath(dst, 1)
		}
		return nil
	}
	return fmt.Errorf("iptree: unknown update op %v", r.Op)
}

// Insert adds an object at the location and returns its ID, reusing the slot
// of a previously deleted object when one is free. The update is routed
// through the update log; on return it is applied and visible in the
// published epoch.
func (oi *ObjectIndex) Insert(loc model.Location) (ObjectID, error) {
	id, _, err := oi.log.Submit(updatelog.OpInsert, 0, loc)
	return id, err
}

// Delete removes the object. The update is routed through the update log;
// on return it is applied and visible in the published epoch.
func (oi *ObjectIndex) Delete(id ObjectID) error {
	_, _, err := oi.log.Submit(updatelog.OpDelete, id, model.Location{})
	return err
}

// Move relocates the object to the new location. Cost is bounded by the
// sizes of the source and target leaves: only their access lists are
// touched, every other leaf of the tree is unaffected — the update locality
// that makes the index suitable for moving indoor objects. The update is
// routed through the update log; on return it is applied and visible in the
// published epoch, and the move is atomic from every reader's view even
// when it crosses leaves.
func (oi *ObjectIndex) Move(id ObjectID, loc model.Location) error {
	_, _, err := oi.log.Submit(updatelog.OpMove, id, loc)
	return err
}

// insertIntoLeaf adds the object to the writer-private leaf state in place:
// the ID and location lists gain one entry at their sorted position, and
// each access list gains the object at the position given by its distance
// from that access door (ties broken on ObjectID). Cost is a couple of
// in-array shifts per access list — no list is rebuilt, and allocation
// happens only when a backing array must grow.
func (oi *ObjectIndex) insertIntoLeaf(lo *leafObjects, leaf NodeID, id ObjectID, loc model.Location) {
	pos := sort.SearchInts(lo.ids, id)
	lo.ids = slices.Insert(lo.ids, pos, id)
	lo.locs = slices.Insert(lo.locs, pos, loc)
	lo.maxID = max(lo.maxID, id+1)
	var distBuf [16]float64
	dists := distBuf[:]
	if len(lo.lists) > len(distBuf) {
		dists = make([]float64, len(lo.lists))
	}
	dists = dists[:len(lo.lists)]
	oi.accessDists(leaf, loc, dists)
	for ai := range lo.lists {
		e := objEntry{objectID: id, dist: dists[ai]}
		list := lo.lists[ai]
		i := sort.Search(len(list), func(j int) bool { return cmpObjEntry(list[j], e) > 0 })
		lo.lists[ai] = slices.Insert(list, i, e)
	}
}

// removeFromLeaf deletes the object from the writer-private leaf state in
// place, shifting each access list over the removed entry. The leafObjects
// value and its backing arrays are kept for reuse even when the leaf
// empties.
func (oi *ObjectIndex) removeFromLeaf(lo *leafObjects, id ObjectID) {
	pos := sort.SearchInts(lo.ids, id)
	if pos >= len(lo.ids) || lo.ids[pos] != id {
		return
	}
	lo.ids = slices.Delete(lo.ids, pos, pos+1)
	lo.locs = slices.Delete(lo.locs, pos, pos+1)
	for ai, list := range lo.lists {
		if i := slices.IndexFunc(list, func(e objEntry) bool { return e.objectID == id }); i >= 0 {
			lo.lists[ai] = slices.Delete(list, i, i+1)
		}
	}
}

// Name implements index.ObjectQuerier.
func (oi *ObjectIndex) Name() string { return oi.name }

// Objects returns a copy of the object table. Slots of deleted objects hold
// their last location; use Location to distinguish live objects.
func (oi *ObjectIndex) Objects() []model.Location {
	oi.tableMu.Lock()
	defer oi.tableMu.Unlock()
	out := make([]model.Location, len(oi.objects))
	copy(out, oi.objects)
	return out
}

// Location returns the current location of the object and whether it is
// alive, read from the writer's table (it may be ahead of the published
// epoch by the updates of a batch still being applied).
func (oi *ObjectIndex) Location(id ObjectID) (model.Location, bool) {
	oi.tableMu.Lock()
	defer oi.tableMu.Unlock()
	if id < 0 || id >= len(oi.objLeaf) || oi.objLeaf[id] == invalidNode {
		return model.Location{}, false
	}
	return oi.objects[id], true
}

// NumObjects returns the number of live objects.
func (oi *ObjectIndex) NumObjects() int {
	oi.tableMu.Lock()
	defer oi.tableMu.Unlock()
	return oi.alive
}

// Epoch returns the sequence number of the published epoch: 0 for a fresh
// index, the stamped snapshot seq for a restored one, advancing by one per
// applied update. Queries never advance it.
func (oi *ObjectIndex) Epoch() uint64 { return oi.cur.Load().seq }

// ChangeLog returns the update log behind the index: the ordered, gap-free
// record of every applied update. Subscribe on it to tail the change feed;
// HeadSeq/PublishedSeq report the applied-epoch lag. The log's history
// grows by one record per applied update until reclaimed: long-running
// indexes under sustained churn should periodically call
// Truncate(PublishedSeq()) on it — unconsumed subscriber positions are
// always retained, so truncation never breaks the feed contract.
func (oi *ObjectIndex) ChangeLog() *updatelog.Log { return oi.log }

// currentEpoch pins the published epoch: one atomic load, no locks. The
// epoch is immutable and remains valid (and consistent) for as long as the
// caller holds the pointer.
func (oi *ObjectIndex) currentEpoch() *objEpoch { return oi.cur.Load() }

// Tree returns the tree the objects are embedded in.
func (oi *ObjectIndex) Tree() *Tree { return oi.tree }

// MemoryBytes estimates the memory used by the object lists and the object
// table, using unsafe.Sizeof-derived per-element sizes (memsize.go) so the
// estimate tracks the actual types. The leaf states are measured through
// the published epoch (the shadow shares them outside of update bursts).
func (oi *ObjectIndex) MemoryBytes() int64 {
	ep := oi.currentEpoch()
	var total int64
	for _, lo := range ep.leafData {
		if lo == nil {
			continue
		}
		total += int64(len(lo.ids))*(sizeofInt+sizeofLocation) + 3*sizeofSliceHeader + sizeofInt
		for _, es := range lo.lists {
			total += int64(len(es))*sizeofObjEntry + sizeofSliceHeader
		}
	}
	oi.tableMu.Lock()
	total += int64(len(oi.objects))*sizeofLocation + int64(len(oi.objLeaf))*sizeofNodeID + int64(len(oi.free))*sizeofInt
	oi.tableMu.Unlock()
	total += int64(len(ep.leafData)) * 8 * 2     // epoch + shadow *leafObjects pointers
	total += int64(len(ep.subtreeCount)) * 8 * 2 // epoch + shadow counts
	total += int64(len(oi.leafStamp)) * 8
	total += int64(len(oi.leafColPos)) * sizeofSliceHeader
	if oi.tree.pk == nil {
		// On packed trees the position data is shared with (and counted by)
		// the tree's pos slab; only unpacked trees own a private copy.
		for _, pos := range oi.leafColPos {
			total += int64(len(pos)) * 4
		}
	}
	return total
}

// KNN returns the k objects nearest to q, sorted by ascending distance with
// ties broken on ascending ObjectID (Algorithm 5). Fewer than k results are
// returned if the object set is smaller than k or parts of it are
// unreachable. The query runs against the current epoch: one atomic load,
// then zero lock operations.
func (oi *ObjectIndex) KNN(q model.Location, k int) []index.ObjectResult {
	return oi.knnAt(oi.currentEpoch(), q, k)
}

// knnAt runs a kNN query against a pinned epoch.
func (oi *ObjectIndex) knnAt(ep *objEpoch, q model.Location, k int) []index.ObjectResult {
	if k <= 0 || ep.subtreeCount[oi.tree.root] == 0 {
		return nil
	}
	return oi.branchAndBound(ep, q, k, Infinite)
}

// Range returns every object within distance r of q, sorted by ascending
// distance with ties broken on ascending ObjectID (Section 3.4). Like KNN
// it runs lock-free against the current epoch.
func (oi *ObjectIndex) Range(q model.Location, r float64) []index.ObjectResult {
	return oi.rangeAt(oi.currentEpoch(), q, r)
}

// rangeAt runs a range query against a pinned epoch.
func (oi *ObjectIndex) rangeAt(ep *objEpoch, q model.Location, r float64) []index.ObjectResult {
	if ep.subtreeCount[oi.tree.root] == 0 {
		return nil
	}
	return oi.branchAndBound(ep, q, 0, r)
}

// queuedNode is an entry of the best-first priority queue of Algorithm 5.
type queuedNode struct {
	node    NodeID
	mindist float64
}

// pushQueued adds an entry to the binary min-heap (ordered by mindist).
func pushQueued(h []queuedNode, it queuedNode) []queuedNode {
	h = append(h, it)
	for i := len(h) - 1; i > 0; {
		p := (i - 1) / 2
		if h[p].mindist <= h[i].mindist {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	return h
}

// popQueued removes and returns the entry with the smallest mindist.
func popQueued(h []queuedNode) ([]queuedNode, queuedNode) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	for i := 0; ; {
		l := 2*i + 1
		if l >= len(h) {
			break
		}
		small := l
		if r := l + 1; r < len(h) && h[r].mindist < h[l].mindist {
			small = r
		}
		if h[i].mindist <= h[small].mindist {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return h, top
}

// branchAndBound is the shared best-first traversal: with k > 0 it behaves as
// a kNN search (radius ignored unless smaller); with k == 0 it collects every
// object within the radius. All working state lives in pooled scratch, so the
// warm path allocates only the returned result slice and the method is safe
// for concurrent callers — including callers concurrent with updates: the
// whole traversal reads the pinned epoch, which no update ever mutates.
func (oi *ObjectIndex) branchAndBound(ep *objEpoch, q model.Location, k int, radius float64) []index.ObjectResult {
	t := oi.tree
	// Step 1 (line 2 of Algorithm 5): distances from q to the access doors
	// of every ancestor of Leaf(q), computed with pooled dense scratch.
	qLeaf := t.Leaf(q.Partition)
	sc := t.getDistScratch()
	defer t.putDistScratch(sc)
	oc := oi.getObjScratch()
	defer oi.putObjScratch(oc)
	sd := &sc.src
	sd.reset(t.venue.NumDoors())
	t.distancesToNode(q, t.root, sd)
	// oc.nodes caches dist(q, a) for the access doors of the nodes the
	// traversal touches, aligned with each node's AccessDoors (Infinite when
	// unreachable). Ancestors of Leaf(q) come from the Algorithm 2 run.
	nd := &oc.nodes
	nd.reset(len(t.nodes))
	for _, n := range sd.nodeOrder {
		ads := t.nodes[n].AccessDoors
		ds := nd.put(n, len(ads))
		for i, a := range ads {
			ds[i], _ = sd.tab.get(a)
		}
	}
	return oi.bestFirst(ep, q, qLeaf, k, radius, oc)
}

// bestFirst runs the best-first traversal of Algorithm 5 against a
// pre-seeded scratch: oc.nodes must already hold dist(q, ·) for the access
// doors of every ancestor of qLeaf (the Algorithm 2 output). branchAndBound
// seeds it from a fresh climb; the batched path (objbatch.go) seeds it from
// a shared climb block carrying the very same values, which is what keeps
// batched answers bit-identical to sequential ones.
func (oi *ObjectIndex) bestFirst(ep *objEpoch, q model.Location, qLeaf NodeID, k int, radius float64, oc *objScratch) []index.ObjectResult {
	t := oi.tree
	nd := &oc.nodes
	results := resultCollector{k: k, radius: radius, results: oc.results[:0]}
	heap := oc.heap[:0]
	if ep.subtreeCount[t.root] > 0 {
		heap = pushQueued(heap, queuedNode{node: t.root, mindist: 0})
	}
	for len(heap) > 0 {
		var cur queuedNode
		heap, cur = popQueued(heap)
		if cur.mindist > results.bound() {
			break
		}
		node := &t.nodes[cur.node]
		if node.IsLeaf() {
			oi.scanLeaf(ep, q, qLeaf, cur.node, nd, oc, &results)
			continue
		}
		for _, c := range node.Children {
			if ep.subtreeCount[c] == 0 {
				continue
			}
			md := oi.childMinDist(q, qLeaf, cur.node, c, oc)
			if md <= results.bound() {
				heap = pushQueued(heap, queuedNode{node: c, mindist: md})
			}
		}
	}
	// Hand the grown backing arrays back to the scratch before pooling it.
	oc.heap = heap[:0]
	out := results.finish()
	oc.results = results.results[:0]
	return out
}

// childMinDist computes mindist(q, child) and caches the access-door
// distances of the child for use further down the tree (Lemmas 8 and 9).
func (oi *ObjectIndex) childMinDist(q model.Location, qLeaf NodeID, parent, child NodeID, oc *objScratch) float64 {
	t := oi.tree
	nd := &oc.nodes
	if t.IsAncestor(child, qLeaf) {
		return 0
	}
	if d, ok := nd.get(child); ok {
		return minOf(d)
	}
	mat := t.nodes[parent].Matrix
	var baseNode NodeID
	if t.IsAncestor(parent, qLeaf) {
		// Lemma 8: q lies in a sibling of child; combine the sibling's
		// access-door distances with the parent matrix.
		baseNode = t.ChildToward(parent, qLeaf)
	} else {
		// Lemma 9: q lies outside the parent; combine the parent's
		// access-door distances with the parent matrix.
		baseNode = parent
	}
	baseDists, _ := nd.get(baseNode)
	baseDoors := t.nodes[baseNode].AccessDoors
	childAD := t.nodes[child].AccessDoors
	dists := nd.put(child, len(childAD))
	if t.pk != nil {
		// Packed: the base node's and the child's access-door positions in
		// the parent matrix are precomputed (own-matrix positions when the
		// base is the parent itself, parent-matrix positions when it is a
		// sibling). The reachable base doors are gathered into compact
		// (distance, row) pairs once — instead of being re-filtered for
		// every child door — and each child door's minimum is then a tight
		// sweep whose only data-dependent branch is the min update; an
		// unreachable matrix cell yields a candidate of Infinite, which
		// cannot win the strict <.
		baseRows := t.pk.adPosInParent[baseNode]
		if baseNode == parent {
			baseRows = t.pk.adPosInOwn[parent]
		}
		childCols := t.pk.adPosInParent[child]
		cmBase, cmRows := oc.cmBase[:0], oc.cmRows[:0]
		if baseDists != nil {
			for j := range baseDoors {
				if baseDists[j] != Infinite && baseRows[j] >= 0 {
					cmBase = append(cmBase, baseDists[j])
					cmRows = append(cmRows, baseRows[j])
				}
			}
		}
		oc.cmBase, oc.cmRows = cmBase, cmRows
		stride := len(mat.cols)
		slab := mat.dist
		for i := range childAD {
			best := Infinite
			ci := childCols[i]
			if ci >= 0 {
				for k, b := range cmBase {
					if c := b + slab[int(cmRows[k])*stride+int(ci)]; c < best {
						best = c
					}
				}
			}
			// A missing column or an unreached base node (disconnected
			// venue) leaves the child unreachable.
			dists[i] = best
		}
		return minOf(dists)
	}
	for i, di := range childAD {
		best := Infinite
		if baseDists == nil {
			// The base node was never reached (disconnected venue); leave
			// the child unreachable.
			dists[i] = best
			continue
		}
		for j, dj := range baseDoors {
			base := baseDists[j]
			if base == Infinite {
				continue
			}
			md := mat.Dist(dj, di)
			if md == Infinite {
				continue
			}
			if base+md < best {
				best = base + md
			}
		}
		dists[i] = best
	}
	return minOf(dists)
}

func minOf(ds []float64) float64 {
	best := Infinite
	for _, v := range ds {
		if v < best {
			best = v
		}
	}
	return best
}

// scanLeaf evaluates every object in the leaf and updates the result set.
// The leaf state comes from the pinned epoch, so the scan is lock-free and
// can never observe a leaf mid-update.
func (oi *ObjectIndex) scanLeaf(ep *objEpoch, q model.Location, qLeaf, leaf NodeID, nd *nodeDistTable, oc *objScratch, results *resultCollector) {
	t := oi.tree
	lo := ep.leafData[leaf]
	if lo == nil {
		return
	}
	if leaf == qLeaf {
		// Objects co-located with the query in the same leaf: compute the
		// exact local distance on the D2D graph (cheap: the doors involved
		// are close together).
		for i, id := range lo.ids {
			o := lo.locs[i]
			var d float64
			if o.Partition == q.Partition {
				d = directIntraPartition(t.venue, q, o)
			} else {
				d = t.venue.D2D().LocationDist(q, o)
			}
			results.add(id, d)
		}
		return
	}
	accessDist, _ := nd.get(leaf)
	// Per-object best distances live in the scratch's dense stamped table;
	// one marking generation per scanned leaf.
	oc.bumpObjEpoch(lo.maxID)
	for ai := range t.nodes[leaf].AccessDoors {
		qd := accessDist[ai]
		if qd == Infinite {
			continue
		}
		for _, e := range lo.lists[ai] {
			total := qd + e.dist
			if !oc.objSeen.has(e.objectID) || total < oc.objDist[e.objectID] {
				oc.objSeen.mark(e.objectID)
				oc.objDist[e.objectID] = total
			}
		}
	}
	// Add in ascending object-ID order so that ties at the kNN boundary
	// resolve deterministically.
	for _, id := range lo.ids {
		if oc.objSeen.has(id) {
			results.add(id, oc.objDist[id])
		}
	}
}

// resultCollector accumulates query results for kNN (bounded size) or range
// (bounded radius) queries. The results slice is scratch-backed; finish
// copies the final set into a caller-owned slice.
type resultCollector struct {
	k       int
	radius  float64
	results []index.ObjectResult
}

// bound returns the pruning distance: the current k-th best distance for kNN
// queries, or the radius for range queries.
func (rc *resultCollector) bound() float64 {
	if rc.k <= 0 {
		return rc.radius
	}
	if len(rc.results) < rc.k {
		return rc.radius
	}
	worst := 0.0
	for _, r := range rc.results {
		if r.Dist > worst {
			worst = r.Dist
		}
	}
	return worst
}

func (rc *resultCollector) add(objectID ObjectID, dist float64) {
	if dist > rc.radius {
		return
	}
	// Replace an existing entry for the same object if this one is closer.
	for i := range rc.results {
		if rc.results[i].ObjectID == objectID {
			if dist < rc.results[i].Dist {
				rc.results[i].Dist = dist
			}
			return
		}
	}
	rc.results = append(rc.results, index.ObjectResult{ObjectID: objectID, Dist: dist})
	if rc.k > 0 && len(rc.results) > rc.k {
		// Drop the current worst; among equal distances, drop the largest
		// object ID so the retained set is deterministic.
		worstIdx := 0
		for i := 1; i < len(rc.results); i++ {
			w, r := rc.results[worstIdx], rc.results[i]
			if r.Dist > w.Dist || (r.Dist == w.Dist && r.ObjectID > w.ObjectID) {
				worstIdx = i
			}
		}
		rc.results = append(rc.results[:worstIdx], rc.results[worstIdx+1:]...)
	}
}

// finish sorts the accumulated results in place (ascending distance, ties by
// object ID) and copies them into a fresh slice — the only allocation of a
// warm query.
func (rc *resultCollector) finish() []index.ObjectResult {
	slices.SortFunc(rc.results, func(a, b index.ObjectResult) int {
		if a.Dist != b.Dist {
			return cmp.Compare(a.Dist, b.Dist)
		}
		return cmp.Compare(a.ObjectID, b.ObjectID)
	})
	if len(rc.results) == 0 {
		return nil
	}
	out := make([]index.ObjectResult, len(rc.results))
	copy(out, rc.results)
	return out
}
