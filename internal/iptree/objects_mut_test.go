package iptree

import (
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"viptree/internal/index"
	"viptree/internal/model"
	"viptree/internal/venuegen"
)

// This file tests the mutable object layer: Insert/Delete/Move against a
// fresh bulk build (the mutated index must be indistinguishable from one
// built directly over the final object set), the deterministic ObjectID
// tie-break for equidistant objects, and query/update concurrency.

// shadowObjects mirrors the live object set of an index under test: the
// ground truth a fresh bulk build is constructed from.
type shadowObjects map[ObjectID]model.Location

// compactRank maps the (possibly sparse) live IDs of a mutated index to the
// dense 0..n-1 IDs a fresh IndexObjects build assigns, preserving order so
// ObjectID tie-breaks agree between the two.
func (s shadowObjects) compactRank() (map[ObjectID]int, []model.Location) {
	ids := make([]ObjectID, 0, len(s))
	for id := range s {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	rank := make(map[ObjectID]int, len(ids))
	locs := make([]model.Location, len(ids))
	for i, id := range ids {
		rank[id] = i
		locs[i] = s[id]
	}
	return rank, locs
}

// mapIDs rewrites the object IDs of a result set through the rank mapping.
func mapIDs(t *testing.T, rs []index.ObjectResult, rank map[ObjectID]int) []index.ObjectResult {
	t.Helper()
	if rs == nil {
		return nil
	}
	out := make([]index.ObjectResult, len(rs))
	for i, r := range rs {
		cid, ok := rank[r.ObjectID]
		if !ok {
			t.Fatalf("result references dead object %d", r.ObjectID)
		}
		out[i] = index.ObjectResult{ObjectID: cid, Dist: r.Dist}
	}
	return out
}

// TestMutatedIndexMatchesFreshBuild is the central property test of the
// mutable object layer: after an arbitrary sequence of Insert/Delete/Move,
// kNN and Range answers must be DeepEqual to those of a fresh IndexObjects
// build over the final object set.
func TestMutatedIndexMatchesFreshBuild(t *testing.T) {
	venues := map[string]*model.Venue{
		"paper-example": venuegen.PaperExample(),
		"men-tiny":      venuegen.Menzies(venuegen.ScaleTiny),
		"campus-tiny":   venuegen.Clayton(venuegen.ScaleTiny),
	}
	for name, v := range venues {
		t.Run(name, func(t *testing.T) {
			tree := MustBuildIPTree(v, Options{})
			rng := rand.New(rand.NewSource(101))
			initial := randomObjects(v, 15, 77)
			oi := tree.IndexObjects(initial)
			shadow := shadowObjects{}
			for id, loc := range initial {
				shadow[id] = loc
			}
			for op := 0; op < 400; op++ {
				switch r := rng.Float64(); {
				case r < 0.30 || len(shadow) == 0:
					loc := v.RandomLocation(rng)
					id, err := oi.Insert(loc)
					if err != nil {
						t.Fatalf("op %d: Insert: %v", op, err)
					}
					if _, dup := shadow[id]; dup {
						t.Fatalf("op %d: Insert reused live id %d", op, id)
					}
					shadow[id] = loc
				case r < 0.55:
					id := randomLiveID(rng, shadow)
					if err := oi.Delete(id); err != nil {
						t.Fatalf("op %d: Delete(%d): %v", op, id, err)
					}
					delete(shadow, id)
				default:
					id := randomLiveID(rng, shadow)
					loc := v.RandomLocation(rng)
					if err := oi.Move(id, loc); err != nil {
						t.Fatalf("op %d: Move(%d): %v", op, id, err)
					}
					shadow[id] = loc
				}
			}
			if got := oi.NumObjects(); got != len(shadow) {
				t.Fatalf("NumObjects() = %d, want %d", got, len(shadow))
			}
			rank, locs := shadow.compactRank()
			fresh := tree.IndexObjects(locs)
			for i := 0; i < 40; i++ {
				q := v.RandomLocation(rng)
				for _, k := range []int{1, 3, 8} {
					got := mapIDs(t, oi.KNN(q, k), rank)
					want := fresh.KNN(q, k)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("KNN(%v, %d) after mutations = %v, fresh build %v", q, k, got, want)
					}
				}
				for _, r := range []float64{25, 120, 600} {
					got := mapIDs(t, oi.Range(q, r), rank)
					want := fresh.Range(q, r)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("Range(%v, %v) after mutations = %v, fresh build %v", q, r, got, want)
					}
				}
			}
		})
	}
}

func randomLiveID(rng *rand.Rand, shadow shadowObjects) ObjectID {
	ids := make([]ObjectID, 0, len(shadow))
	for id := range shadow {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids[rng.Intn(len(ids))]
}

// TestObjectUpdateErrors pins down the error behaviour of the update
// operations.
func TestObjectUpdateErrors(t *testing.T) {
	v := venuegen.PaperExample()
	tree := MustBuildIPTree(v, Options{})
	rng := rand.New(rand.NewSource(9))
	oi := tree.IndexObjects(randomObjects(v, 3, 5))

	if err := oi.Delete(99); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("Delete(unallocated) = %v, want ErrNoSuchObject", err)
	}
	if err := oi.Move(-1, v.RandomLocation(rng)); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("Move(-1) = %v, want ErrNoSuchObject", err)
	}
	if err := oi.Delete(1); err != nil {
		t.Fatalf("Delete(1): %v", err)
	}
	if err := oi.Delete(1); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("double Delete = %v, want ErrNoSuchObject", err)
	}
	if err := oi.Move(1, v.RandomLocation(rng)); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("Move(deleted) = %v, want ErrNoSuchObject", err)
	}
	bad := model.Location{Partition: model.PartitionID(v.NumPartitions() + 3)}
	if _, err := oi.Insert(bad); err == nil {
		t.Error("Insert with out-of-range partition succeeded")
	}
	if err := oi.Move(0, bad); err == nil {
		t.Error("Move to out-of-range partition succeeded")
	}
	if _, alive := oi.Location(1); alive {
		t.Error("Location(deleted) reports alive")
	}
	if loc, alive := oi.Location(0); !alive || loc.Partition != oi.Objects()[0].Partition {
		t.Error("Location(live) mismatch")
	}
}

// TestInsertReusesDeletedSlots verifies that deleted IDs are recycled before
// the object table grows.
func TestInsertReusesDeletedSlots(t *testing.T) {
	v := venuegen.PaperExample()
	tree := MustBuildIPTree(v, Options{})
	rng := rand.New(rand.NewSource(13))
	oi := tree.IndexObjects(randomObjects(v, 4, 21))
	if err := oi.Delete(2); err != nil {
		t.Fatal(err)
	}
	id, err := oi.Insert(v.RandomLocation(rng))
	if err != nil {
		t.Fatal(err)
	}
	if id != 2 {
		t.Errorf("Insert after Delete(2) allocated id %d, want the freed slot 2", id)
	}
	if n := oi.NumObjects(); n != 4 {
		t.Errorf("NumObjects() = %d, want 4", n)
	}
}

// TestEpochAdvancesPerUpdate verifies the update epoch increments on every
// completed mutation and not on queries.
func TestEpochAdvancesPerUpdate(t *testing.T) {
	v := venuegen.PaperExample()
	tree := MustBuildIPTree(v, Options{})
	rng := rand.New(rand.NewSource(15))
	oi := tree.IndexObjects(randomObjects(v, 2, 31))
	if oi.Epoch() != 0 {
		t.Fatalf("fresh build epoch = %d, want 0", oi.Epoch())
	}
	oi.KNN(v.RandomLocation(rng), 1)
	if oi.Epoch() != 0 {
		t.Error("query advanced the epoch")
	}
	id, _ := oi.Insert(v.RandomLocation(rng))
	if err := oi.Move(id, v.RandomLocation(rng)); err != nil {
		t.Fatal(err)
	}
	if err := oi.Delete(id); err != nil {
		t.Fatal(err)
	}
	if oi.Epoch() != 3 {
		t.Errorf("epoch after insert+move+delete = %d, want 3", oi.Epoch())
	}
}

// TestDeleteAllEmptiesEveryBranch deletes every object and verifies queries
// find nothing — the per-subtree counts must un-mark emptied branches all
// the way to the root.
func TestDeleteAllEmptiesEveryBranch(t *testing.T) {
	v := venuegen.Menzies(venuegen.ScaleTiny)
	tree := MustBuildIPTree(v, Options{})
	rng := rand.New(rand.NewSource(33))
	objs := randomObjects(v, 12, 3)
	oi := tree.IndexObjects(objs)
	for id := range objs {
		if err := oi.Delete(id); err != nil {
			t.Fatalf("Delete(%d): %v", id, err)
		}
	}
	ep := oi.currentEpoch()
	for n := 0; n < len(tree.nodes); n++ {
		if c := ep.subtreeCount[n]; c != 0 {
			t.Fatalf("node %d count = %d after deleting everything", n, c)
		}
	}
	q := v.RandomLocation(rng)
	if got := oi.KNN(q, 5); len(got) != 0 {
		t.Errorf("KNN over emptied index = %v", got)
	}
	if got := oi.Range(q, 1e9); len(got) != 0 {
		t.Errorf("Range over emptied index = %v", got)
	}
	// The emptied index accepts new objects again.
	if _, err := oi.Insert(v.RandomLocation(rng)); err != nil {
		t.Fatal(err)
	}
	if got := oi.KNN(q, 5); len(got) != 1 {
		t.Errorf("KNN after refill = %v, want one result", got)
	}
}

// TestEquidistantTieBreakOnObjectID is the regression test for the explicit
// ObjectID tie-break: equidistant objects must always be ranked by ascending
// ID — including after moves reorder the access lists — so result order is
// deterministic rather than an accident of insertion order.
func TestEquidistantTieBreakOnObjectID(t *testing.T) {
	v := venuegen.PaperExample()
	tree := MustBuildIPTree(v, Options{})
	rng := rand.New(rand.NewSource(55))
	spot := v.RandomLocation(rng)
	q := v.RandomLocation(rng)
	// Three objects at the same location are equidistant from any query.
	oi := tree.IndexObjects([]model.Location{spot, spot, spot})

	assertAscendingIDs := func(what string, rs []index.ObjectResult, wantIDs ...ObjectID) {
		t.Helper()
		if len(rs) != len(wantIDs) {
			t.Fatalf("%s returned %d results (%v), want %d", what, len(rs), rs, len(wantIDs))
		}
		for i, want := range wantIDs {
			if rs[i].ObjectID != want {
				t.Fatalf("%s result IDs = %v, want %v", what, rs, wantIDs)
			}
		}
	}
	assertAscendingIDs("KNN(q,2)", oi.KNN(q, 2), 0, 1)
	assertAscendingIDs("Range", oi.Range(q, 1e9), 0, 1, 2)

	// Moving the lowest ID away and back re-inserts it into every access
	// list; the tie-break must still rank it first.
	elsewhere := v.RandomLocation(rng)
	if err := oi.Move(0, elsewhere); err != nil {
		t.Fatal(err)
	}
	if err := oi.Move(0, spot); err != nil {
		t.Fatal(err)
	}
	assertAscendingIDs("KNN(q,2) after move", oi.KNN(q, 2), 0, 1)
	assertAscendingIDs("Range after move", oi.Range(q, 1e9), 0, 1, 2)
}

// TestConcurrentUpdatesAndQueries exercises the concurrency contract under
// the race detector: updater goroutines insert/delete/move their own objects
// while query goroutines run kNN and Range. Queries must never panic, never
// return torn state (unsorted results, duplicate IDs, dead IDs) and must
// always report the untouched static objects exactly.
func TestConcurrentUpdatesAndQueries(t *testing.T) {
	v := venuegen.Menzies(venuegen.ScaleTiny)
	tree := MustBuildIPTree(v, Options{})
	rng := rand.New(rand.NewSource(71))

	const (
		numStatic   = 12
		numUpdaters = 4
		perUpdater  = 6
		numQueriers = 4
		opsPer      = 250
	)
	static := randomObjects(v, numStatic, 81)
	all := append(append([]model.Location{}, static...), randomObjects(v, numUpdaters*perUpdater, 83)...)
	oi := tree.IndexObjects(all)

	// Baseline: the exact distances of the static objects from a fixed
	// query point, taken before any mutation. Static objects are never
	// touched, so every concurrent query must reproduce them bit-identically.
	q := v.RandomLocation(rng)
	baseline := map[ObjectID]float64{}
	for _, r := range oi.Range(q, 1e15) {
		if r.ObjectID < numStatic {
			baseline[r.ObjectID] = r.Dist
		}
	}
	if len(baseline) != numStatic {
		t.Fatalf("baseline found %d of %d static objects", len(baseline), numStatic)
	}

	var updaters, queriers sync.WaitGroup
	done := make(chan struct{})
	errs := make(chan error, numUpdaters+numQueriers)
	for u := 0; u < numUpdaters; u++ {
		updaters.Add(1)
		go func(u int) {
			defer updaters.Done()
			rng := rand.New(rand.NewSource(int64(1000 + u)))
			// Each updater owns a disjoint ID range, so its operations
			// never conflict logically with another updater's.
			owned := make([]ObjectID, perUpdater)
			for i := range owned {
				owned[i] = numStatic + u*perUpdater + i
			}
			for op := 0; op < opsPer; op++ {
				i := rng.Intn(len(owned))
				switch rng.Intn(3) {
				case 0:
					if err := oi.Move(owned[i], v.RandomLocation(rng)); err != nil {
						errs <- err
						return
					}
				case 1:
					if err := oi.Delete(owned[i]); err != nil {
						errs <- err
						return
					}
					id, err := oi.Insert(v.RandomLocation(rng))
					if err != nil {
						errs <- err
						return
					}
					owned[i] = id
				default:
					id, err := oi.Insert(v.RandomLocation(rng))
					if err != nil {
						errs <- err
						return
					}
					if err := oi.Delete(id); err != nil {
						errs <- err
						return
					}
				}
			}
		}(u)
	}
	for w := 0; w < numQueriers; w++ {
		queriers.Add(1)
		go func(w int) {
			defer queriers.Done()
			rng := rand.New(rand.NewSource(int64(2000 + w)))
			for {
				select {
				case <-done:
					return
				default:
				}
				var rs []index.ObjectResult
				if rng.Intn(2) == 0 {
					rs = oi.KNN(q, numStatic+numUpdaters*perUpdater+8)
				} else {
					rs = oi.Range(q, 1e15)
				}
				seen := map[ObjectID]bool{}
				staticSeen := 0
				for i, r := range rs {
					if i > 0 && rs[i].Dist < rs[i-1].Dist {
						t.Errorf("results not ascending: %v then %v", rs[i-1], rs[i])
						return
					}
					if seen[r.ObjectID] {
						t.Errorf("duplicate object %d in results", r.ObjectID)
						return
					}
					seen[r.ObjectID] = true
					if want, isStatic := baseline[r.ObjectID]; isStatic {
						staticSeen++
						if r.Dist != want {
							t.Errorf("static object %d at distance %v, want %v", r.ObjectID, r.Dist, want)
							return
						}
					}
				}
				if staticSeen != numStatic {
					t.Errorf("query saw %d of %d static objects", staticSeen, numStatic)
					return
				}
			}
		}(w)
	}
	// Updaters run a fixed op count; once they all finish, release the
	// queriers (which loop until told to stop) and collect any errors.
	updaters.Wait()
	close(done)
	queriers.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("updater error: %v", err)
	}
}
