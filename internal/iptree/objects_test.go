package iptree

import (
	"math/rand"
	"sort"
	"testing"

	"viptree/internal/index"
	"viptree/internal/model"
	"viptree/internal/venuegen"
)

// bruteForceKNN computes the exact k nearest objects with plain Dijkstra
// expansions; it is the ground truth for the Algorithm 5 tests.
func bruteForceKNN(v *model.Venue, objects []model.Location, q model.Location, k int) []index.ObjectResult {
	all := bruteForceAll(v, objects, q)
	if k < len(all) {
		all = all[:k]
	}
	return all
}

func bruteForceRange(v *model.Venue, objects []model.Location, q model.Location, r float64) []index.ObjectResult {
	all := bruteForceAll(v, objects, q)
	var out []index.ObjectResult
	for _, a := range all {
		if a.Dist <= r {
			out = append(out, a)
		}
	}
	return out
}

func bruteForceAll(v *model.Venue, objects []model.Location, q model.Location) []index.ObjectResult {
	d2d := v.D2D()
	out := make([]index.ObjectResult, 0, len(objects))
	for id, o := range objects {
		out = append(out, index.ObjectResult{ObjectID: id, Dist: d2d.LocationDist(q, o)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ObjectID < out[j].ObjectID
	})
	return out
}

func randomObjects(v *model.Venue, n int, seed int64) []model.Location {
	rng := rand.New(rand.NewSource(seed))
	objs := make([]model.Location, n)
	for i := range objs {
		objs[i] = v.RandomLocation(rng)
	}
	return objs
}

// sameResultSet compares results by distance (ties may be resolved in any
// order, so exact object IDs are only compared when distances are unique).
func sameResultSet(t *testing.T, got, want []index.ObjectResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("result count = %d, want %d (got %v, want %v)", len(got), len(want), got, want)
	}
	for i := range got {
		if !approxEqual(got[i].Dist, want[i].Dist) {
			t.Fatalf("result %d distance = %v, want %v (got %v want %v)", i, got[i].Dist, want[i].Dist, got, want)
		}
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	venues := map[string]*model.Venue{
		"paper-example": venuegen.PaperExample(),
		"men-tiny":      venuegen.Menzies(venuegen.ScaleTiny),
		"campus-tiny":   venuegen.Clayton(venuegen.ScaleTiny),
	}
	for name, v := range venues {
		t.Run(name, func(t *testing.T) {
			tree := MustBuildIPTree(v, Options{})
			objs := randomObjects(v, 12, 7)
			oi := tree.IndexObjects(objs)
			rng := rand.New(rand.NewSource(17))
			for i := 0; i < 40; i++ {
				q := v.RandomLocation(rng)
				for _, k := range []int{1, 3, 5} {
					got := oi.KNN(q, k)
					want := bruteForceKNN(v, objs, q, k)
					sameResultSet(t, got, want)
				}
			}
		})
	}
}

func TestRangeMatchesBruteForce(t *testing.T) {
	v := venuegen.Menzies(venuegen.ScaleTiny)
	tree := MustBuildIPTree(v, Options{})
	objs := randomObjects(v, 15, 11)
	oi := tree.IndexObjects(objs)
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 40; i++ {
		q := v.RandomLocation(rng)
		for _, r := range []float64{10, 40, 120, 500} {
			got := oi.Range(q, r)
			want := bruteForceRange(v, objs, q, r)
			sameResultSet(t, got, want)
			for _, res := range got {
				if res.Dist > r {
					t.Fatalf("range result %v exceeds radius %v", res, r)
				}
			}
		}
	}
}

func TestKNNOnVIPTree(t *testing.T) {
	// kNN runs identically on a VIP-Tree because the object index works on
	// the shared IP-Tree structure (Section 3.4).
	v := venuegen.PaperExample()
	vt := MustBuildVIPTree(v, Options{})
	objs := randomObjects(v, 8, 3)
	oi := vt.IndexObjects(objs)
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 30; i++ {
		q := v.RandomLocation(rng)
		got := oi.KNN(q, 3)
		want := bruteForceKNN(v, objs, q, 3)
		sameResultSet(t, got, want)
	}
}

func TestKNNEdgeCases(t *testing.T) {
	v := venuegen.PaperExample()
	tree := MustBuildIPTree(v, Options{})
	rng := rand.New(rand.NewSource(5))
	q := v.RandomLocation(rng)

	t.Run("empty object set", func(t *testing.T) {
		oi := tree.IndexObjects(nil)
		if got := oi.KNN(q, 3); len(got) != 0 {
			t.Errorf("KNN over empty set = %v", got)
		}
		if got := oi.Range(q, 100); len(got) != 0 {
			t.Errorf("Range over empty set = %v", got)
		}
	})
	t.Run("k larger than object count", func(t *testing.T) {
		objs := randomObjects(v, 3, 31)
		oi := tree.IndexObjects(objs)
		got := oi.KNN(q, 10)
		if len(got) != 3 {
			t.Errorf("KNN with k>n returned %d results, want 3", len(got))
		}
	})
	t.Run("k zero", func(t *testing.T) {
		objs := randomObjects(v, 3, 37)
		oi := tree.IndexObjects(objs)
		if got := oi.KNN(q, 0); len(got) != 0 {
			t.Errorf("KNN with k=0 = %v", got)
		}
	})
	t.Run("object colocated with query", func(t *testing.T) {
		objs := []model.Location{q}
		oi := tree.IndexObjects(objs)
		got := oi.KNN(q, 1)
		if len(got) != 1 || !approxEqual(got[0].Dist, 0) {
			t.Errorf("KNN for colocated object = %v", got)
		}
	})
	t.Run("zero radius range", func(t *testing.T) {
		objs := []model.Location{q}
		oi := tree.IndexObjects(objs)
		got := oi.Range(q, 0)
		if len(got) != 1 {
			t.Errorf("Range(0) for colocated object = %v", got)
		}
	})
	t.Run("results sorted ascending", func(t *testing.T) {
		objs := randomObjects(v, 20, 41)
		oi := tree.IndexObjects(objs)
		got := oi.KNN(q, 10)
		for i := 1; i < len(got); i++ {
			if got[i].Dist < got[i-1].Dist {
				t.Fatalf("results not sorted: %v", got)
			}
		}
	})
	t.Run("accessors", func(t *testing.T) {
		objs := randomObjects(v, 4, 43)
		oi := tree.IndexObjects(objs)
		if len(oi.Objects()) != 4 {
			t.Error("Objects() length mismatch")
		}
		if oi.Tree() != tree {
			t.Error("Tree() mismatch")
		}
		if oi.MemoryBytes() <= 0 {
			t.Error("MemoryBytes should be positive")
		}
	})
}

func TestKNNManyObjectsClustered(t *testing.T) {
	// Cluster all objects in a single partition far from the query: the
	// best-first search must still return exact results.
	v := venuegen.Menzies(venuegen.ScaleTiny)
	tree := MustBuildIPTree(v, Options{})
	rng := rand.New(rand.NewSource(61))
	far := model.PartitionID(v.NumPartitions() - 1)
	objs := make([]model.Location, 10)
	for i := range objs {
		objs[i] = v.RandomLocationIn(far, rng)
	}
	oi := tree.IndexObjects(objs)
	q := v.Centroid(0)
	got := oi.KNN(q, 5)
	want := bruteForceKNN(v, objs, q, 5)
	sameResultSet(t, got, want)
}
