package iptree

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"reflect"
	"testing"

	"viptree/internal/model"
	"viptree/internal/venuegen"
)

// These tests pin the two contracts of the arena-packed serving layout
// (arena.go): packing never changes query answers, and the snapshot payload
// of a packed tree is byte-identical to the one the pre-pack state exports —
// i.e. the on-disk format is untouched by the in-memory layout change.

// packVenues returns the venues the packing properties are checked on:
// random office buildings (many distinct topologies) plus a multi-building
// campus (outdoor edges, promoted nodes).
func packVenues(t *testing.T) []*model.Venue {
	t.Helper()
	venues := make([]*model.Venue, 0, 7)
	for seed := uint64(1); seed <= 6; seed++ {
		venues = append(venues, randomVenue(seed*37))
	}
	venues = append(venues, venuegen.Clayton(venuegen.ScaleTiny))
	return venues
}

// buildBoth constructs the packed and the pre-pack (unpacked) VIP-Tree over
// the same venue. Construction is deterministic, so the two builds hold
// identical state up to the layout change.
func buildBoth(t *testing.T, v *model.Venue) (packed, unpacked *VIPTree) {
	t.Helper()
	packed = MustBuildVIPTree(v, Options{})
	ut, err := buildIPTreeUnpacked(v, Options{})
	if err != nil {
		t.Fatal(err)
	}
	unpacked = newVIPTreeUnpacked(ut)
	if packed.pk == nil || packed.vpk == nil {
		t.Fatal("public constructor did not pack the tree")
	}
	if unpacked.pk != nil || unpacked.vpk != nil {
		t.Fatal("unpacked helper produced a packed tree")
	}
	return packed, unpacked
}

// TestPackedMatchesUnpacked: a packed tree answers Distance, Path, KNN and
// Range queries identically (DeepEqual) to the pre-pack state across random
// venues and a campus — packing is a pure layout change.
func TestPackedMatchesUnpacked(t *testing.T) {
	for vi, v := range packVenues(t) {
		pk, un := buildBoth(t, v)
		rng := rand.New(rand.NewSource(int64(100 + vi)))
		objs := make([]model.Location, 25)
		for i := range objs {
			objs[i] = v.RandomLocation(rng)
		}
		pkOI := pk.IndexObjects(objs)
		unOI := un.IndexObjects(objs)
		for q := 0; q < 60; q++ {
			s, d := v.RandomLocation(rng), v.RandomLocation(rng)
			if got, want := pk.Distance(s, d), un.Distance(s, d); got != want {
				t.Fatalf("venue %d: packed VIP Distance(%v,%v)=%v, unpacked %v", vi, s, d, got, want)
			}
			if got, want := pk.Tree.Distance(s, d), un.Tree.Distance(s, d); got != want {
				t.Fatalf("venue %d: packed IP Distance(%v,%v)=%v, unpacked %v", vi, s, d, got, want)
			}
			gd, gp := pk.Path(s, d)
			wd, wp := un.Path(s, d)
			if gd != wd || !reflect.DeepEqual(gp, wp) {
				t.Fatalf("venue %d: packed VIP Path(%v,%v)=(%v,%v), unpacked (%v,%v)", vi, s, d, gd, gp, wd, wp)
			}
			gd, gp = pk.Tree.Path(s, d)
			wd, wp = un.Tree.Path(s, d)
			if gd != wd || !reflect.DeepEqual(gp, wp) {
				t.Fatalf("venue %d: packed IP Path(%v,%v)=(%v,%v), unpacked (%v,%v)", vi, s, d, gd, gp, wd, wp)
			}
			if got, want := pkOI.KNN(s, 4), unOI.KNN(s, 4); !reflect.DeepEqual(got, want) {
				t.Fatalf("venue %d: packed KNN(%v)=%v, unpacked %v", vi, s, got, want)
			}
			if got, want := pkOI.Range(s, 120), unOI.Range(s, 120); !reflect.DeepEqual(got, want) {
				t.Fatalf("venue %d: packed Range(%v)=%v, unpacked %v", vi, s, got, want)
			}
		}
	}
}

// encodeState gob-encodes a snapshot state with a fresh encoder, so byte
// comparisons are meaningful.
func encodeState(t *testing.T, st any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestPackSnapshotByteIdentical: build → pack → export encodes byte-identically
// to the pre-pack export, and the full build → pack → snapshot → restore →
// re-export round trip reproduces the same bytes — the snapshot format is
// unchanged by the packed layout.
func TestPackSnapshotByteIdentical(t *testing.T) {
	for vi, v := range packVenues(t) {
		pk, un := buildBoth(t, v)
		packedBytes := encodeState(t, pk.ExportState())
		unpackedBytes := encodeState(t, un.ExportState())
		if !bytes.Equal(packedBytes, unpackedBytes) {
			t.Fatalf("venue %d: packed VIP export differs from pre-pack export (%d vs %d bytes)",
				vi, len(packedBytes), len(unpackedBytes))
		}
		// Restore from the packed payload and re-export: still identical.
		var st VIPState
		if err := gob.NewDecoder(bytes.NewReader(packedBytes)).Decode(&st); err != nil {
			t.Fatal(err)
		}
		restored, err := RestoreVIPTree(v, &st)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encodeState(t, restored.ExportState()), packedBytes) {
			t.Fatalf("venue %d: restore → re-export changed the payload", vi)
		}
		// The plain IP-Tree payload as well.
		ipPacked := encodeState(t, pk.Tree.ExportState())
		ipUnpacked := encodeState(t, un.Tree.ExportState())
		if !bytes.Equal(ipPacked, ipUnpacked) {
			t.Fatalf("venue %d: packed IP export differs from pre-pack export", vi)
		}
		restoredIP, err := RestoreTree(v, decodeTreeState(t, ipPacked))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encodeState(t, restoredIP.ExportState()), ipPacked) {
			t.Fatalf("venue %d: IP restore → re-export changed the payload", vi)
		}
	}
}

func decodeTreeState(t *testing.T, payload []byte) *TreeState {
	t.Helper()
	var st TreeState
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return &st
}

// TestPackedAccounting sanity-checks the arena-exact memory accounting: a
// packed tree must report strictly less memory than the same tree's
// per-allocation estimate, and the slabs must dominate the report.
func TestPackedAccounting(t *testing.T) {
	v := venuegen.MustBuilding(venuegen.BuildingConfig{
		Name: "pack-mem", Floors: 4, RoomsPerHallway: 16, Seed: 3,
	})
	pk, un := buildBoth(t, v)
	pb, ub := pk.MemoryBytes(), un.MemoryBytes()
	if pb <= 0 || ub <= 0 {
		t.Fatalf("non-positive memory report: packed %d, unpacked %d", pb, ub)
	}
	if pb >= ub {
		t.Errorf("packed tree reports %d bytes, not below the unpacked estimate %d", pb, ub)
	}
	slabs := pk.Tree.pk.arenaBytes() + pk.vpk.arenaBytes()
	if slabs >= pb {
		t.Errorf("slabs (%d bytes) exceed the total report (%d bytes)", slabs, pb)
	}
}
