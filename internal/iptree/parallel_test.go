package iptree

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"viptree/internal/model"
	"viptree/internal/venuegen"
)

// This file property-tests the parallel construction pipeline: a build with
// Parallelism: N must be bit-identical to a build with Parallelism: 1 —
// identical exported state, identical Distance/Path/KNN/Range answers, and
// snapshots written from either build must load interchangeably. Workers
// only write item-owned state (a node's matrix, a door's VIP entries), so
// this holds by construction; the test pins it against regressions. Run
// under -race (as CI does) it also proves the worker pool is data-race free.

// determinismVenues returns the venue mix used by the determinism tests:
// multi-floor buildings of varying shapes and a multi-building campus
// (exercising outdoor edges in the level graphs).
func determinismVenues(t *testing.T) map[string]*model.Venue {
	t.Helper()
	venues := map[string]*model.Venue{}
	for seed := int64(1); seed <= 3; seed++ {
		cfg := venuegen.BuildingConfig{
			Name:            fmt.Sprintf("par-b%d", seed),
			Floors:          2 + int(seed),
			RoomsPerHallway: 8 + 4*int(seed),
			Seed:            seed,
		}
		venues[cfg.Name] = venuegen.MustBuilding(cfg)
	}
	venues["par-campus"] = venuegen.MustCampus(venuegen.CampusConfig{
		Name:      "par-campus",
		Buildings: 3,
		Building:  venuegen.BuildingConfig{Floors: 2, RoomsPerHallway: 8},
		Jitter:    true,
		Seed:      7,
	})
	return venues
}

// TestParallelBuildDeterminism asserts that parallel and sequential builds
// produce DeepEqual trees (via their exported state — the tree topology,
// every matrix entry, superior doors and VIP entries) and identical query
// answers over random workloads.
func TestParallelBuildDeterminism(t *testing.T) {
	for name, v := range determinismVenues(t) {
		t.Run(name, func(t *testing.T) {
			seq := MustBuildVIPTree(v, Options{Parallelism: 1})
			par := MustBuildVIPTree(v, Options{Parallelism: 4})
			if !reflect.DeepEqual(seq.ExportState(), par.ExportState()) {
				t.Fatal("parallel VIP-Tree state differs from sequential build")
			}
			assertSameAnswers(t, v, seq, par)
		})
	}
}

// assertSameAnswers compares Distance, Path, KNN and Range answers of two
// VIP-Trees over the same venue on a random workload, requiring exact (==)
// distances and identical door/object sequences.
func assertSameAnswers(t *testing.T, v *model.Venue, a, b *VIPTree) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	objs := make([]model.Location, 40)
	for i := range objs {
		objs[i] = v.RandomLocation(rng)
	}
	oiA, oiB := a.IndexObjects(objs), b.IndexObjects(objs)
	for i := 0; i < 200; i++ {
		s, d := v.RandomLocation(rng), v.RandomLocation(rng)
		if da, db := a.Distance(s, d), b.Distance(s, d); da != db {
			t.Fatalf("Distance(%v, %v): %v vs %v", s, d, da, db)
		}
		pda, doorsA := a.Path(s, d)
		pdb, doorsB := b.Path(s, d)
		if pda != pdb || !reflect.DeepEqual(doorsA, doorsB) {
			t.Fatalf("Path(%v, %v): (%v, %v) vs (%v, %v)", s, d, pda, doorsA, pdb, doorsB)
		}
		if i%4 == 0 {
			q := v.RandomLocation(rng)
			if ka, kb := oiA.KNN(q, 5), oiB.KNN(q, 5); !reflect.DeepEqual(ka, kb) {
				t.Fatalf("KNN(%v, 5): %v vs %v", q, ka, kb)
			}
			if ra, rb := oiA.Range(q, 150), oiB.Range(q, 150); !reflect.DeepEqual(ra, rb) {
				t.Fatalf("Range(%v, 150): %v vs %v", q, ra, rb)
			}
		}
	}
}

// TestParallelBuildSnapshotInterchange asserts that snapshot payloads written
// from a parallel build and a sequential build are interchangeable: each
// decodes into a tree whose state equals the other build. No format change is
// involved — matrix lookup tables are derived state rebuilt on load.
func TestParallelBuildSnapshotInterchange(t *testing.T) {
	v := venuegen.MustBuilding(venuegen.BuildingConfig{
		Name: "par-snap", Floors: 3, RoomsPerHallway: 12, Seed: 5,
	})
	seq := MustBuildVIPTree(v, Options{Parallelism: 1})
	par := MustBuildVIPTree(v, Options{Parallelism: 4})

	var bufSeq, bufPar bytes.Buffer
	if err := seq.EncodeSnapshot(&bufSeq); err != nil {
		t.Fatal(err)
	}
	if err := par.EncodeSnapshot(&bufPar); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufSeq.Bytes(), bufPar.Bytes()) {
		t.Fatal("snapshot payloads of sequential and parallel builds differ")
	}
	fromPar, err := DecodeVIPSnapshot(bytes.NewReader(bufPar.Bytes()), v)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.ExportState(), fromPar.ExportState()) {
		t.Fatal("tree loaded from parallel-build snapshot differs from sequential build")
	}
	assertSameAnswers(t, v, seq, fromPar)
}

// TestParallelismOptionResolution pins the worker-count resolution rule:
// explicit parallelism is respected, zero selects GOMAXPROCS.
func TestParallelismOptionResolution(t *testing.T) {
	if got := (Options{Parallelism: 3}).workers(); got != 3 {
		t.Errorf("workers() = %d, want 3", got)
	}
	if got := (Options{}).workers(); got < 1 {
		t.Errorf("workers() = %d, want >= 1", got)
	}
}

// TestRunParallelCoversAllItems checks the worker pool visits every index
// exactly once at several worker counts.
func TestRunParallelCoversAllItems(t *testing.T) {
	for _, workers := range []int{1, 2, 5, 16} {
		const n = 103
		counts := make([]int32, n)
		runParallel(n, workers, func(w, i int) { counts[i]++ })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: item %d executed %d times", workers, i, c)
			}
		}
	}
}
