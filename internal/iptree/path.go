package iptree

import (
	"viptree/internal/model"
)

// This file implements shortest-path recovery (Section 3.2): the partial
// shortest path is assembled from the via-doors recorded by Algorithm 2/3,
// and each partial edge is decomposed into final edges with Algorithm 4
// using the next-hop doors stored in the distance matrices.

// maxDecompose bounds the recursion of edge decomposition; it is far larger
// than any real path and only guards against pathological matrices.
const maxDecompose = 1 << 14

// Path returns the shortest distance between s and d together with the
// sequence of doors on the shortest path. The sequence is empty when both
// locations are in the same partition, and starts (ends) with the first
// (last) door crossed.
func (t *Tree) Path(s, d model.Location) (float64, []model.DoorID) {
	sc := t.getDistScratch()
	dist, sdS, sdD, pair := t.distanceInternal(s, d, sc)
	if dist == Infinite {
		t.putDistScratch(sc)
		return dist, nil
	}
	if sdS == nil {
		t.putDistScratch(sc)
		// Same partition (no doors) or same leaf (recover via the D2D
		// graph, exactly like the distance computation).
		if s.Partition == d.Partition {
			return dist, nil
		}
		pd, doors := t.venue.D2D().LocationPath(s, d)
		return pd, doors
	}
	partial := t.partialPath(sdS, sdD, pair)
	t.putDistScratch(sc)
	return dist, t.expandPartial(partial)
}

// partialPath unwinds the via chains of the two Algorithm-2 runs into the
// partial shortest path: superior door of the source partition, access doors
// climbing up to the LCA child on the source side, then down the target
// side, ending at the superior door of the target partition.
func (t *Tree) partialPath(sdS, sdD *sourceDists, pair [2]model.DoorID) []model.DoorID {
	up := unwindVia(sdS, pair[0])
	down := unwindVia(sdD, pair[1])
	// up is ordered from the source outwards; down is ordered from the
	// target outwards and must be reversed.
	doors := make([]model.DoorID, 0, len(up)+len(down))
	doors = append(doors, up...)
	for i := len(down) - 1; i >= 0; i-- {
		doors = append(doors, down[i])
	}
	return dedupConsecutive(doors)
}

// unwindVia returns the chain of doors from the source's partition to door
// end, ordered source-first.
func unwindVia(sd *sourceDists, end model.DoorID) []model.DoorID {
	var rev []model.DoorID
	cur := end
	for cur != NoDoor {
		rev = append(rev, cur)
		if !sd.tab.has(cur) {
			break
		}
		cur = sd.tab.viaOf(cur)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

func dedupConsecutive(doors []model.DoorID) []model.DoorID {
	if len(doors) == 0 {
		return doors
	}
	out := doors[:1]
	for _, d := range doors[1:] {
		if d != out[len(out)-1] {
			out = append(out, d)
		}
	}
	return out
}

// expandPartial decomposes every edge of the partial path into final edges
// and concatenates the results.
func (t *Tree) expandPartial(partial []model.DoorID) []model.DoorID {
	if len(partial) == 0 {
		return nil
	}
	out := []model.DoorID{partial[0]}
	for i := 1; i < len(partial); i++ {
		seg := t.expandEdge(partial[i-1], partial[i])
		out = append(out, seg[1:]...)
	}
	return out
}

// expandEdge returns the complete door sequence of the shortest path from a
// to b (inclusive of both endpoints), implementing Algorithm 4 recursively.
func (t *Tree) expandEdge(a, b model.DoorID) []model.DoorID {
	budget := maxDecompose
	seq, ok := t.decompose(a, b, &budget)
	if !ok {
		return t.fallbackPath(a, b)
	}
	return seq
}

// decompose is the recursive core of Algorithm 4. It reports failure when the
// matrices cannot decompose the edge (a rare situation handled by a plain
// graph search in the caller).
func (t *Tree) decompose(a, b model.DoorID, budget *int) ([]model.DoorID, bool) {
	if *budget <= 0 {
		return nil, false
	}
	*budget--
	if a == b {
		return []model.DoorID{a}, true
	}
	aAccess := len(t.accessNodesOfDoor[a]) > 0
	bAccess := len(t.accessNodesOfDoor[b]) > 0
	// Lemmas 4 and 6: an edge between two non-access doors is final.
	if !aAccess && !bAccess {
		return []model.DoorID{a, b}, true
	}
	mat, row, col, ok := t.decompositionEntry(a, b)
	if !ok {
		return nil, false
	}
	next := mat.nextAt(row, col)
	// Lemma 3: a NULL next hop means the edge is final.
	if next == NoDoor {
		return []model.DoorID{a, b}, true
	}
	if next == a || next == b {
		return nil, false
	}
	left, ok := t.decompose(a, next, budget)
	if !ok {
		return nil, false
	}
	right, ok := t.decompose(next, b, budget)
	if !ok {
		return nil, false
	}
	return append(left, right[1:]...), true
}

// decompositionEntry finds the lowest node whose distance matrix stores an
// entry relating doors a and b and returns that matrix together with the
// oriented (row, col) position of the entry. Leaf matrices are rectangular
// (rows are all doors, columns only the access doors), so the entry may only
// exist in the (b, a) orientation; the position returned by locate already
// accounts for that, and the next-hop door read from it still lies on the
// shortest path between a and b, so the decomposition remains valid in
// either orientation.
func (t *Tree) decompositionEntry(a, b model.DoorID) (*Matrix, int, int, bool) {
	var bestMat *Matrix
	bestRow, bestCol := 0, 0
	bestLevel := int(^uint(0) >> 1)
	// The candidate nodes whose matrix can mention door d are the leaves
	// containing d (their matrices' rows are all of their doors) and the
	// parents of every node for which d is an access door (their matrices'
	// rows are the children's access doors). The four loops below visit them
	// in that order for both doors, without materialising the candidate list
	// — this routine runs once per edge of every decomposed path, and during
	// VIP materialisation once per matrix next-hop entry. Candidates at or
	// above the best level so far are skipped before any door lookup (they
	// can never win), which short-circuits everything after the first
	// leaf-level hit.
	visit := func(n NodeID) {
		lvl := t.nodes[n].Level
		if lvl >= bestLevel {
			return
		}
		mat := t.nodes[n].Matrix
		if mat == nil {
			return
		}
		if row, col, ok := mat.locate(a, b); ok {
			bestMat, bestRow, bestCol, bestLevel = mat, row, col, lvl
		}
	}
	for _, n := range t.leavesOfDoor[a] {
		visit(n)
	}
	for _, n := range t.accessNodesOfDoor[a] {
		if p := t.nodes[n].Parent; p != invalidNode {
			visit(p)
		}
	}
	for _, n := range t.leavesOfDoor[b] {
		visit(n)
	}
	for _, n := range t.accessNodesOfDoor[b] {
		if p := t.nodes[n].Parent; p != invalidNode {
			visit(p)
		}
	}
	if bestMat == nil {
		return nil, 0, 0, false
	}
	return bestMat, bestRow, bestCol, true
}

// fallbackPath recovers the door sequence between two doors with a plain
// Dijkstra search on the D2D graph. It is used only for edges the matrices
// cannot decompose (e.g. shortest paths that leave and re-enter a node),
// guaranteeing a correct result at a small cost for those rare cases.
func (t *Tree) fallbackPath(a, b model.DoorID) []model.DoorID {
	_, doors := t.venue.D2D().Path(a, b)
	if len(doors) == 0 {
		return []model.DoorID{a, b}
	}
	return doors
}
