package iptree

import (
	"viptree/internal/model"
)

// This file implements shortest-path recovery (Section 3.2): the partial
// shortest path is assembled from the via-doors recorded by Algorithm 2/3,
// and each partial edge is decomposed into final edges with Algorithm 4
// using the next-hop doors stored in the distance matrices.
//
// The whole expansion runs on pooled scratch buffers (pathScratch) with an
// explicit work stack instead of recursion, so a warm Path query allocates
// only the returned result slice — the same discipline the Distance and
// kNN/Range hot paths follow.

// maxDecompose bounds the steps of edge decomposition; it is far larger
// than any real path and only guards against pathological matrices.
const maxDecompose = 1 << 14

// doorPair is one pending segment of the decomposition work stack.
type doorPair struct{ a, b model.DoorID }

// Path returns the shortest distance between s and d together with the
// sequence of doors on the shortest path. The sequence is empty when both
// locations are in the same partition, and starts (ends) with the first
// (last) door crossed.
func (t *Tree) Path(s, d model.Location) (float64, []model.DoorID) {
	sc := t.getDistScratch()
	dist, sdS, sdD, pair := t.distanceInternal(s, d, sc)
	if dist == Infinite {
		t.putDistScratch(sc)
		return dist, nil
	}
	if sdS == nil {
		t.putDistScratch(sc)
		// Same partition (no doors) or same leaf (recover via the D2D
		// graph, exactly like the distance computation).
		if s.Partition == d.Partition {
			return dist, nil
		}
		pd, doors := t.venue.D2D().LocationPath(s, d)
		return pd, doors
	}
	ps := &sc.path
	ps.partial = t.partialPathInto(sdS, sdD, pair, ps.partial[:0])
	out := t.expandPartialInto(ps.partial, ps)
	result := make([]model.DoorID, len(out))
	copy(result, out)
	t.putDistScratch(sc)
	return dist, result
}

// partialPathInto assembles the partial shortest path from the via chains of
// the two Algorithm-2 runs into buf: superior door of the source partition,
// access doors climbing up to the LCA child on the source side, then down
// the target side, ending at the superior door of the target partition.
func (t *Tree) partialPathInto(sdS, sdD *sourceDists, pair [2]model.DoorID, buf []model.DoorID) []model.DoorID {
	// The source-side chain unwinds end→source; reverse it in place to get
	// source-first order.
	buf = appendViaChain(buf, sdS, pair[0])
	reverseDoors(buf)
	// The target-side chain unwinds end→target, which is exactly the order
	// the partial path continues in (LCA crossing first, target's superior
	// door last).
	buf = appendViaChain(buf, sdD, pair[1])
	return dedupConsecutive(buf)
}

// appendViaChain appends the chain of doors from `end` back towards the
// source of sd, in unwind (end-first) order.
func appendViaChain(buf []model.DoorID, sd *sourceDists, end model.DoorID) []model.DoorID {
	cur := end
	for cur != NoDoor {
		buf = append(buf, cur)
		if !sd.tab.has(cur) {
			break
		}
		cur = sd.tab.viaOf(cur)
	}
	return buf
}

func reverseDoors(doors []model.DoorID) {
	for i, j := 0, len(doors)-1; i < j; i, j = i+1, j-1 {
		doors[i], doors[j] = doors[j], doors[i]
	}
}

// dedupConsecutive removes consecutive duplicate doors in place.
func dedupConsecutive(doors []model.DoorID) []model.DoorID {
	if len(doors) == 0 {
		return doors
	}
	out := doors[:1]
	for _, d := range doors[1:] {
		if d != out[len(out)-1] {
			out = append(out, d)
		}
	}
	return out
}

// expandPartialInto decomposes every edge of the partial path into final
// edges, concatenating the results into the scratch's out buffer.
func (t *Tree) expandPartialInto(partial []model.DoorID, ps *pathScratch) []model.DoorID {
	if len(partial) == 0 {
		return nil
	}
	out := append(ps.out[:0], partial[0])
	for i := 1; i < len(partial); i++ {
		out = t.expandEdgeInto(partial[i-1], partial[i], out, ps)
	}
	ps.out = out
	return out
}

// expandEdgeInto appends the complete door sequence of the shortest path
// from a to b — excluding a itself, which the caller has already emitted —
// to out, implementing Algorithm 4 iteratively: the segment currently being
// decomposed walks leftmost-first while the right halves of each split wait
// on an explicit stack, reproducing the recursion's emission order without
// its allocations. When the matrices cannot decompose a segment (a rare
// situation, e.g. shortest paths that leave and re-enter a node), the whole
// a→b edge is recovered with a plain graph search instead, guaranteeing a
// correct result at a small cost for those cases.
func (t *Tree) expandEdgeInto(a, b model.DoorID, out []model.DoorID, ps *pathScratch) []model.DoorID {
	mark := len(out)
	budget := maxDecompose
	stack := ps.stack[:0]
	curA, curB := a, b
	fail := false
	for {
		if budget <= 0 {
			fail = true
			break
		}
		budget--
		if curA != curB { // an empty segment contributes nothing
			final, next, ok := t.decomposeStep(curA, curB)
			if !ok {
				fail = true
				break
			}
			if !final {
				// Split at the next-hop door: continue with the left half,
				// park the right half.
				stack = append(stack, doorPair{next, curB})
				curB = next
				continue
			}
			out = append(out, curB)
		}
		if len(stack) == 0 {
			break
		}
		top := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		curA, curB = top.a, top.b
	}
	ps.stack = stack[:0]
	if fail {
		out = out[:mark]
		out = t.appendFallbackPath(a, b, out)
	}
	return out
}

// decomposeStep is one step of Algorithm 4 on the segment (a, b): it reports
// whether the edge is final, or the next-hop door to split at, or that the
// matrices cannot decompose the segment.
func (t *Tree) decomposeStep(a, b model.DoorID) (final bool, next model.DoorID, ok bool) {
	// Lemmas 4 and 6: an edge between two non-access doors is final.
	if !t.doorIsAccess(a) && !t.doorIsAccess(b) {
		return true, NoDoor, true
	}
	mat, row, col, found := t.decompositionEntry(a, b)
	if !found {
		return false, NoDoor, false
	}
	n := mat.nextAt(row, col)
	// Lemma 3: a NULL next hop means the edge is final.
	if n == NoDoor {
		return true, NoDoor, true
	}
	if n == a || n == b {
		return false, NoDoor, false
	}
	return false, n, true
}

// decompositionEntry finds the lowest node whose distance matrix stores an
// entry relating doors a and b and returns that matrix together with the
// oriented (row, col) position of the entry. Leaf matrices are rectangular
// (rows are all doors, columns only the access doors), so the entry may only
// exist in the (b, a) orientation; the position returned by locate already
// accounts for that, and the next-hop door read from it still lies on the
// shortest path between a and b, so the decomposition remains valid in
// either orientation.
func (t *Tree) decompositionEntry(a, b model.DoorID) (*Matrix, int, int, bool) {
	var bestMat *Matrix
	bestRow, bestCol := 0, 0
	bestLevel := int(^uint(0) >> 1)
	// The candidate nodes whose matrix can mention door d are the leaves
	// containing d (their matrices' rows are all of their doors) and the
	// parents of every node for which d is an access door (their matrices'
	// rows are the children's access doors). The four loops below visit them
	// in that order for both doors, without materialising the candidate list
	// — this routine runs once per edge of every decomposed path, and during
	// VIP materialisation once per matrix next-hop entry. Candidates at or
	// above the best level so far are skipped before any door lookup (they
	// can never win), which short-circuits everything after the first
	// leaf-level hit.
	visit := func(n NodeID) {
		lvl := t.nodes[n].Level
		if lvl >= bestLevel {
			return
		}
		mat := t.nodes[n].Matrix
		if mat == nil {
			return
		}
		if row, col, ok := mat.locate(a, b); ok {
			bestMat, bestRow, bestCol, bestLevel = mat, row, col, lvl
		}
	}
	if pk := t.pk; pk != nil {
		// Packed: the candidate lists live in the two compressed per-door
		// slabs.
		for _, n := range pk.leavesOfDoor.of(a) {
			visit(NodeID(n))
		}
		for _, n := range pk.accessNodesOfDoor.of(a) {
			if p := t.nodes[n].Parent; p != invalidNode {
				visit(p)
			}
		}
		for _, n := range pk.leavesOfDoor.of(b) {
			visit(NodeID(n))
		}
		for _, n := range pk.accessNodesOfDoor.of(b) {
			if p := t.nodes[n].Parent; p != invalidNode {
				visit(p)
			}
		}
	} else {
		for _, n := range t.leavesOfDoor[a] {
			visit(n)
		}
		for _, n := range t.accessNodesOfDoor[a] {
			if p := t.nodes[n].Parent; p != invalidNode {
				visit(p)
			}
		}
		for _, n := range t.leavesOfDoor[b] {
			visit(n)
		}
		for _, n := range t.accessNodesOfDoor[b] {
			if p := t.nodes[n].Parent; p != invalidNode {
				visit(p)
			}
		}
	}
	if bestMat == nil {
		return nil, 0, 0, false
	}
	return bestMat, bestRow, bestCol, true
}

// appendFallbackPath appends the door sequence between a and b (excluding
// a) recovered with a plain Dijkstra search on the D2D graph. It is used
// only for edges the matrices cannot decompose.
func (t *Tree) appendFallbackPath(a, b model.DoorID, out []model.DoorID) []model.DoorID {
	_, doors := t.venue.D2D().Path(a, b)
	if len(doors) == 0 {
		return append(out, b)
	}
	return append(out, doors[1:]...)
}
