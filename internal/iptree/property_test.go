package iptree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"viptree/internal/model"
	"viptree/internal/venuegen"
)

// randomVenue generates a small random office building from a seed, so that
// the property tests below exercise many distinct topologies.
func randomVenue(seed uint64) *model.Venue {
	rng := rand.New(rand.NewSource(int64(seed)))
	cfg := venuegen.BuildingConfig{
		Name:               "prop",
		Floors:             1 + rng.Intn(4),
		HallwaysPerFloor:   1 + rng.Intn(2),
		RoomsPerHallway:    4 + rng.Intn(12),
		DoubleDoorFraction: rng.Float64() * 0.5,
		Staircases:         1 + rng.Intn(2),
		Lifts:              rng.Intn(2),
		Entrances:          1 + rng.Intn(2),
		Seed:               int64(seed),
	}
	return venuegen.MustBuilding(cfg)
}

// TestQuickVIPDistanceEqualsDijkstra is the central property of the whole
// index: for random venues and random location pairs, the VIP-Tree distance
// equals the exact Dijkstra distance on the D2D graph.
func TestQuickVIPDistanceEqualsDijkstra(t *testing.T) {
	f := func(seed uint64, q1, q2 uint16) bool {
		v := randomVenue(seed % 1000)
		vt := MustBuildVIPTree(v, Options{})
		rng := rand.New(rand.NewSource(int64(q1)<<16 | int64(q2)))
		s := v.RandomLocation(rng)
		d := v.RandomLocation(rng)
		got := vt.Distance(s, d)
		want := v.D2D().LocationDist(s, d)
		return math.Abs(got-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickIPPathIsWalkable: for random venues, the path returned by the
// IP-Tree is a sequence of adjacent doors whose total length matches the
// distance.
func TestQuickIPPathIsWalkable(t *testing.T) {
	f := func(seed uint64, q uint16) bool {
		v := randomVenue(seed % 1000)
		tree := MustBuildIPTree(v, Options{})
		rng := rand.New(rand.NewSource(int64(q)))
		s := v.RandomLocation(rng)
		d := v.RandomLocation(rng)
		dist, doors := tree.Path(s, d)
		if s.Partition == d.Partition {
			return len(doors) == 0
		}
		if len(doors) == 0 {
			return false
		}
		g := v.D2D().Graph
		total := v.DistToDoor(s, doors[0])
		for i := 1; i < len(doors); i++ {
			w, ok := g.EdgeWeight(int(doors[i-1]), int(doors[i]))
			if !ok {
				return false
			}
			total += w
		}
		total += v.DistToDoor(d, doors[len(doors)-1])
		return math.Abs(total-dist) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestQuickKNNIsSortedAndConsistentWithRange: kNN results are sorted and the
// k-th distance bounds a range query that must return at least k objects.
func TestQuickKNNIsSortedAndConsistentWithRange(t *testing.T) {
	f := func(seed uint64, q uint16, kRaw uint8) bool {
		v := randomVenue(seed % 500)
		tree := MustBuildIPTree(v, Options{})
		rng := rand.New(rand.NewSource(int64(q) + 7))
		objs := make([]model.Location, 10)
		for i := range objs {
			objs[i] = v.RandomLocation(rng)
		}
		oi := tree.IndexObjects(objs)
		query := v.RandomLocation(rng)
		k := 1 + int(kRaw)%5
		res := oi.KNN(query, k)
		if len(res) != k {
			return false
		}
		for i := 1; i < len(res); i++ {
			if res[i].Dist < res[i-1].Dist {
				return false
			}
		}
		within := oi.Range(query, res[len(res)-1].Dist+1e-9)
		return len(within) >= k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
