package iptree

import (
	"viptree/internal/model"
)

// This file implements the shortest-distance machinery of Section 3.1:
// Algorithm 2 (distances from a location to all access doors of an ancestor
// node) and Algorithm 3 (shortest distance between two arbitrary locations).

// sourceDists holds the result of Algorithm 2 for one query location: the
// distance from the location to every access door encountered while climbing
// from its leaf towards an ancestor node, plus the door through which each
// distance was achieved (used to recover shortest paths). Distances live in
// a dense per-door table recycled across queries, so a warm run allocates
// nothing.
type sourceDists struct {
	// tab records, per door, the shortest distance from the source and the
	// previous door on that shortest path: an access door of the child
	// level, or the superior door of the source partition, or NoDoor when
	// the source reaches the door without passing another recorded door.
	tab doorTable
	// nodeOrder lists the nodes climbed, from the leaf to the target.
	nodeOrder []NodeID
}

// reset invalidates the recorded distances for a venue with n doors.
func (s *sourceDists) reset(n int) {
	s.tab.reset(n)
	s.nodeOrder = s.nodeOrder[:0]
}

// distancesToNode implements Algorithm 2: it computes dist(src, d) for every
// access door d of the ancestor node target of Leaf(src), filling in the
// distances to the access doors of every node on the way. The result is
// written into sd, which must have been reset for this venue.
func (t *Tree) distancesToNode(src model.Location, target NodeID, sd *sourceDists) {
	leaf := t.Leaf(src.Partition)
	t.seedLeafDistances(src, leaf, sd)
	sd.nodeOrder = append(sd.nodeOrder, leaf)
	child := leaf
	for child != target {
		parent := t.nodes[child].Parent
		if parent == invalidNode {
			break
		}
		t.propagateToParent(child, parent, sd)
		sd.nodeOrder = append(sd.nodeOrder, parent)
		child = parent
	}
}

// seedLeafDistances computes dist(src, d) for every access door d of the
// leaf containing src using the superior doors of the source partition
// (Section 3.1.1, Eq. 1 restricted to superior doors). On a packed tree the
// superior doors' row positions and the access doors' column positions in
// the leaf matrix are precomputed, so the double loop sweeps the matrix
// slab positionally — no binary searches.
func (t *Tree) seedLeafDistances(src model.Location, leaf NodeID, sd *sourceDists) {
	v := t.venue
	mat := t.nodes[leaf].Matrix
	if t.pk != nil {
		sup := t.pk.superiorDoorsOf(src.Partition)
		supRows := t.pk.supRowsOf(src.Partition)
		cols := t.pk.adPosInOwn[leaf]
		ads := t.nodes[leaf].AccessDoors
		// Superior door outer, access door inner: the walk distance to each
		// superior door is computed once, and the per-door first-wins
		// strict-< update visits candidates for each access door in the
		// same superior-door order the unpacked loop uses, so winners (and
		// their via doors) are identical. The batched seed shares the same
		// candidate order through seedLeafCompact; at single-query scale the
		// in-place update beats gathering (the compact arrays only pay for
		// themselves when one gather serves a whole batch group).
		for si, s := range sup {
			ri := supRows[si]
			if ri < 0 {
				continue
			}
			d := v.DistToDoor(src, s)
			for ai, a := range ads {
				ci := cols[ai]
				if ci < 0 {
					continue
				}
				md := mat.distAt(int(ri), int(ci))
				if md == Infinite {
					continue
				}
				total := d + md
				if cur, ok := sd.tab.get(a); !ok || total < cur {
					if s == a {
						sd.tab.set(a, total, NoDoor)
					} else {
						sd.tab.set(a, total, s)
					}
				}
			}
		}
		return
	}
	sup := t.superiorDoors[src.Partition]
	for _, a := range t.nodes[leaf].AccessDoors {
		best := Infinite
		bestVia := NoDoor
		for _, s := range sup {
			d := v.DistToDoor(src, s)
			md := mat.Dist(s, a)
			if md == Infinite {
				continue
			}
			if d+md < best {
				best = d + md
				if s == a {
					bestVia = NoDoor
				} else {
					bestVia = s
				}
			}
		}
		if best < Infinite {
			sd.tab.set(a, best, bestVia)
		}
	}
}

// seedLeafCompact is the shared core of the packed seed: it gathers the
// compact (column, door) destinations of leaf's access doors and the compact
// (walk distance, row, door) sources of src's superior doors, and sweeps the
// leaf matrix slab into cb.best/cb.via. Candidates are offered in the same
// superior-door order as the loop it replaces, so winners and via doors are
// identical. Both the single-query seed (which scatters into the dense door
// table) and the batched seed (which scatters into an access-door-aligned
// row) consume it.
func (t *Tree) seedLeafCompact(src model.Location, leaf NodeID, cb *combineScratch) {
	v := t.venue
	mat := t.nodes[leaf].Matrix
	sup := t.pk.superiorDoorsOf(src.Partition)
	supRows := t.pk.supRowsOf(src.Partition)
	adCols := t.pk.adPosInOwn[leaf]
	cols, dsts, dstIdx := cb.cols[:0], cb.dsts[:0], cb.dstIdx[:0]
	for ai, a := range t.nodes[leaf].AccessDoors {
		if ci := adCols[ai]; ci >= 0 {
			cols = append(cols, ci)
			dsts = append(dsts, a)
			dstIdx = append(dstIdx, int32(ai))
		}
	}
	cb.cols, cb.dsts, cb.dstIdx = cols, dsts, dstIdx
	cb.prepareBest()
	if len(cols) == 0 {
		return
	}
	base, rows, doors := cb.base[:0], cb.rows[:0], cb.doors[:0]
	for si, s := range sup {
		if ri := supRows[si]; ri >= 0 {
			base = append(base, v.DistToDoor(src, s))
			rows = append(rows, ri)
			doors = append(doors, s)
		}
	}
	cb.base, cb.rows, cb.doors = base, rows, doors
	cb.sweep(mat)
}

// propagateToParent extends the distances from the access doors of child to
// the access doors of parent using the parent's distance matrix (Lemma 1 and
// Eq. 2). Doors whose distance is already known are not recomputed. On a
// packed tree the child access doors' row positions and the parent access
// doors' positions in the parent's own matrix are precomputed, so the climb
// is fully positional.
func (t *Tree) propagateToParent(child, parent NodeID, sd *sourceDists) {
	mat := t.nodes[parent].Matrix
	childAD := t.nodes[child].AccessDoors
	if t.pk != nil {
		childRows := t.pk.adPosInParent[child]
		parentPos := t.pk.adPosInOwn[parent]
		for pi, d := range t.nodes[parent].AccessDoors {
			if sd.tab.has(d) {
				continue
			}
			ci := parentPos[pi]
			if ci < 0 {
				continue
			}
			best := Infinite
			bestVia := NoDoor
			for ki, di := range childAD {
				ri := childRows[ki]
				if ri < 0 {
					continue
				}
				base, ok := sd.tab.get(di)
				if !ok {
					continue
				}
				md := mat.distAt(int(ri), int(ci))
				if md == Infinite {
					continue
				}
				if base+md < best {
					best = base + md
					bestVia = di
				}
			}
			if best < Infinite {
				sd.tab.set(d, best, bestVia)
			}
		}
		return
	}
	for _, d := range t.nodes[parent].AccessDoors {
		if sd.tab.has(d) {
			continue
		}
		best := Infinite
		bestVia := NoDoor
		for _, di := range childAD {
			base, ok := sd.tab.get(di)
			if !ok {
				continue
			}
			md := mat.Dist(di, d)
			if md == Infinite {
				continue
			}
			if base+md < best {
				best = base + md
				bestVia = di
			}
		}
		if best < Infinite {
			sd.tab.set(d, best, bestVia)
		}
	}
}

// Distance implements Algorithm 3: the shortest indoor distance between two
// arbitrary locations. The warm path is allocation-free: query scratch is
// recycled through a pool, so concurrent callers are safe and do not contend.
func (t *Tree) Distance(s, d model.Location) float64 {
	sc := t.getDistScratch()
	dist, _, _, _ := t.distanceInternal(s, d, sc)
	t.putDistScratch(sc)
	return dist
}

// distanceInternal computes the shortest distance between s and d and, when
// the two locations are in different leaves, returns the source-side and
// target-side Algorithm-2 results (pointing into sc) plus the pair of access
// doors of the LCA's children realising the minimum (used by Path).
func (t *Tree) distanceInternal(s, d model.Location, sc *distScratch) (float64, *sourceDists, *sourceDists, [2]model.DoorID) {
	none := [2]model.DoorID{NoDoor, NoDoor}
	if s.Partition == d.Partition {
		return directIntraPartition(t.venue, s, d), nil, nil, none
	}
	leafS := t.Leaf(s.Partition)
	leafD := t.Leaf(d.Partition)
	if leafS == leafD {
		// Both locations are in the same leaf: the paper falls back to a
		// Dijkstra-style expansion on the D2D graph, which is cheap because
		// the doors involved are close together.
		return t.venue.D2D().LocationDist(s, d), nil, nil, none
	}
	lca := t.LCA(leafS, leafD)
	ns := t.ChildToward(lca, leafS)
	nt := t.ChildToward(lca, leafD)
	sdS, sdD := &sc.src, &sc.dst
	numDoors := t.venue.NumDoors()
	sdS.reset(numDoors)
	sdD.reset(numDoors)
	t.distancesToNode(s, ns, sdS)
	t.distancesToNode(d, nt, sdD)
	mat := t.nodes[lca].Matrix
	best := Infinite
	bestPair := none
	if t.pk != nil {
		// Packed: both children's access-door positions among the LCA matrix
		// rows/columns are precomputed — the pairing loop is positional.
		rowS := t.pk.adPosInParent[ns]
		colD := t.pk.adPosInParent[nt]
		for i, di := range t.nodes[ns].AccessDoors {
			if rowS[i] < 0 {
				continue
			}
			ds, ok := sdS.tab.get(di)
			if !ok {
				continue
			}
			for j, dj := range t.nodes[nt].AccessDoors {
				if colD[j] < 0 {
					continue
				}
				dd, ok := sdD.tab.get(dj)
				if !ok {
					continue
				}
				md := mat.distAt(int(rowS[i]), int(colD[j]))
				if md == Infinite {
					continue
				}
				if total := ds + md + dd; total < best {
					best = total
					bestPair = [2]model.DoorID{di, dj}
				}
			}
		}
		return best, sdS, sdD, bestPair
	}
	for _, di := range t.nodes[ns].AccessDoors {
		ds, ok := sdS.tab.get(di)
		if !ok {
			continue
		}
		for _, dj := range t.nodes[nt].AccessDoors {
			dd, ok := sdD.tab.get(dj)
			if !ok {
				continue
			}
			md := mat.Dist(di, dj)
			if md == Infinite {
				continue
			}
			if total := ds + md + dd; total < best {
				best = total
				bestPair = [2]model.DoorID{di, dj}
			}
		}
	}
	return best, sdS, sdD, bestPair
}

// directIntraPartition is the walking distance between two locations in the
// same partition.
func directIntraPartition(v *model.Venue, s, d model.Location) float64 {
	p := v.Partition(s.Partition)
	if p.TraversalCost > 0 {
		return p.TraversalCost
	}
	return s.Point.PlanarDist(d.Point)
}
