package iptree

import (
	"viptree/internal/model"
)

// This file implements the shortest-distance machinery of Section 3.1:
// Algorithm 2 (distances from a location to all access doors of an ancestor
// node) and Algorithm 3 (shortest distance between two arbitrary locations).

// sourceDists holds the result of Algorithm 2 for one query location: the
// distance from the location to every access door encountered while climbing
// from its leaf towards an ancestor node, plus the door through which each
// distance was achieved (used to recover shortest paths).
type sourceDists struct {
	// dist maps a door to its shortest distance from the source.
	dist map[model.DoorID]float64
	// via maps a door d to the previous door on the shortest path from the
	// source to d: an access door of the child level, or the superior door
	// of the source partition, or NoDoor when the source reaches d without
	// passing another recorded door.
	via map[model.DoorID]model.DoorID
	// nodeOrder lists the nodes climbed, from the leaf to the target.
	nodeOrder []NodeID
}

// distTo returns the recorded distance to door d, or Infinite.
func (s *sourceDists) distTo(d model.DoorID) float64 {
	if v, ok := s.dist[d]; ok {
		return v
	}
	return Infinite
}

// distancesToNode implements Algorithm 2: it computes dist(src, d) for every
// access door d of the ancestor node target of Leaf(src), filling in the
// distances to the access doors of every node on the way.
func (t *Tree) distancesToNode(src model.Location, target NodeID) *sourceDists {
	sd := &sourceDists{
		dist: make(map[model.DoorID]float64),
		via:  make(map[model.DoorID]model.DoorID),
	}
	leaf := t.Leaf(src.Partition)
	t.seedLeafDistances(src, leaf, sd)
	sd.nodeOrder = append(sd.nodeOrder, leaf)
	child := leaf
	for child != target {
		parent := t.nodes[child].Parent
		if parent == invalidNode {
			break
		}
		t.propagateToParent(child, parent, sd)
		sd.nodeOrder = append(sd.nodeOrder, parent)
		child = parent
	}
	return sd
}

// seedLeafDistances computes dist(src, d) for every access door d of the
// leaf containing src using the superior doors of the source partition
// (Section 3.1.1, Eq. 1 restricted to superior doors).
func (t *Tree) seedLeafDistances(src model.Location, leaf NodeID, sd *sourceDists) {
	v := t.venue
	mat := t.nodes[leaf].Matrix
	sup := t.superiorDoors[src.Partition]
	for _, a := range t.nodes[leaf].AccessDoors {
		best := Infinite
		bestVia := NoDoor
		for _, s := range sup {
			d := v.DistToDoor(src, s)
			md := mat.Dist(s, a)
			if md == Infinite {
				continue
			}
			if d+md < best {
				best = d + md
				if s == a {
					bestVia = NoDoor
				} else {
					bestVia = s
				}
			}
		}
		if best < Infinite {
			sd.dist[a] = best
			sd.via[a] = bestVia
		}
	}
}

// propagateToParent extends the distances from the access doors of child to
// the access doors of parent using the parent's distance matrix (Lemma 1 and
// Eq. 2). Doors whose distance is already known are not recomputed.
func (t *Tree) propagateToParent(child, parent NodeID, sd *sourceDists) {
	mat := t.nodes[parent].Matrix
	childAD := t.nodes[child].AccessDoors
	for _, d := range t.nodes[parent].AccessDoors {
		if _, done := sd.dist[d]; done {
			continue
		}
		best := Infinite
		bestVia := NoDoor
		for _, di := range childAD {
			base, ok := sd.dist[di]
			if !ok {
				continue
			}
			md := mat.Dist(di, d)
			if md == Infinite {
				continue
			}
			if base+md < best {
				best = base + md
				bestVia = di
			}
		}
		if best < Infinite {
			sd.dist[d] = best
			sd.via[d] = bestVia
		}
	}
}

// Distance implements Algorithm 3: the shortest indoor distance between two
// arbitrary locations.
func (t *Tree) Distance(s, d model.Location) float64 {
	dist, _, _, _ := t.distanceInternal(s, d)
	return dist
}

// distanceInternal computes the shortest distance between s and d and, when
// the two locations are in different leaves, returns the source-side and
// target-side Algorithm-2 results plus the pair of access doors of the LCA's
// children realising the minimum (used by Path).
func (t *Tree) distanceInternal(s, d model.Location) (float64, *sourceDists, *sourceDists, [2]model.DoorID) {
	none := [2]model.DoorID{NoDoor, NoDoor}
	if s.Partition == d.Partition {
		return directIntraPartition(t.venue, s, d), nil, nil, none
	}
	leafS := t.Leaf(s.Partition)
	leafD := t.Leaf(d.Partition)
	if leafS == leafD {
		// Both locations are in the same leaf: the paper falls back to a
		// Dijkstra-style expansion on the D2D graph, which is cheap because
		// the doors involved are close together.
		return t.venue.D2D().LocationDist(s, d), nil, nil, none
	}
	lca := t.LCA(leafS, leafD)
	ns := t.ChildToward(lca, leafS)
	nt := t.ChildToward(lca, leafD)
	sdS := t.distancesToNode(s, ns)
	sdD := t.distancesToNode(d, nt)
	mat := t.nodes[lca].Matrix
	best := Infinite
	bestPair := none
	for _, di := range t.nodes[ns].AccessDoors {
		ds, ok := sdS.dist[di]
		if !ok {
			continue
		}
		for _, dj := range t.nodes[nt].AccessDoors {
			dd, ok := sdD.dist[dj]
			if !ok {
				continue
			}
			md := mat.Dist(di, dj)
			if md == Infinite {
				continue
			}
			if total := ds + md + dd; total < best {
				best = total
				bestPair = [2]model.DoorID{di, dj}
			}
		}
	}
	return best, sdS, sdD, bestPair
}

// directIntraPartition is the walking distance between two locations in the
// same partition.
func directIntraPartition(v *model.Venue, s, d model.Location) float64 {
	p := v.Partition(s.Partition)
	if p.TraversalCost > 0 {
		return p.TraversalCost
	}
	return s.Point.PlanarDist(d.Point)
}
