//go:build !race

package iptree

const raceEnabled = false
