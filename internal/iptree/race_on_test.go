//go:build race

package iptree

// raceEnabled reports that the race detector is active; sync.Pool
// deliberately drops items under the race detector, so allocation-count
// assertions are skipped.
const raceEnabled = true
