package iptree

import (
	"viptree/internal/model"
)

// This file implements the allocation-free scratch state used by the query
// hot paths. Door IDs are dense ordinals assigned at build time (model.DoorID
// is a contiguous index into Venue.Doors), so per-query distance tables are
// plain slices indexed by door ID instead of map[model.DoorID] scratch maps.
// Tables are reset in O(1) with an epoch counter and recycled across queries
// through sync.Pool, making the warm VIP-Tree Distance path allocation-free
// and safe for concurrent callers.

// doorTable is a dense map from door ID to (distance, via-door), reset in
// O(1) by bumping the epoch: an entry is present only when its stamp equals
// the current epoch.
type doorTable struct {
	dist  []float64
	via   []model.DoorID
	stamp []uint32
	epoch uint32
}

// reset prepares the table for a venue with n doors, invalidating all
// entries. It allocates only on first use (or if the venue grew).
func (dt *doorTable) reset(n int) {
	if len(dt.stamp) < n {
		dt.dist = make([]float64, n)
		dt.via = make([]model.DoorID, n)
		dt.stamp = make([]uint32, n)
		dt.epoch = 1
		return
	}
	dt.epoch++
	if dt.epoch == 0 { // epoch wrapped: clear the stamps and restart
		for i := range dt.stamp {
			dt.stamp[i] = 0
		}
		dt.epoch = 1
	}
}

// has reports whether door d has an entry in the current epoch.
func (dt *doorTable) has(d model.DoorID) bool { return dt.stamp[d] == dt.epoch }

// get returns the recorded distance to door d and whether one exists.
func (dt *doorTable) get(d model.DoorID) (float64, bool) {
	if dt.stamp[d] != dt.epoch {
		return Infinite, false
	}
	return dt.dist[d], true
}

// set records the distance and via-door for door d in the current epoch.
func (dt *doorTable) set(d model.DoorID, dist float64, via model.DoorID) {
	dt.dist[d] = dist
	dt.via[d] = via
	dt.stamp[d] = dt.epoch
}

// viaOf returns the recorded via-door of d, or NoDoor when d has no entry.
func (dt *doorTable) viaOf(d model.DoorID) model.DoorID {
	if dt.stamp[d] != dt.epoch {
		return NoDoor
	}
	return dt.via[d]
}

// distScratch is the reusable state of one IP-Tree distance/path query: the
// two Algorithm-2 runs (source side and target side).
type distScratch struct {
	src, dst sourceDists
}

// getDistScratch fetches a scratch from the tree's pool (allocating one only
// when the pool is empty).
func (t *Tree) getDistScratch() *distScratch {
	sc, _ := t.distPool.Get().(*distScratch)
	if sc == nil {
		sc = &distScratch{}
	}
	return sc
}

// putDistScratch returns the scratch to the pool for reuse.
func (t *Tree) putDistScratch(sc *distScratch) { t.distPool.Put(sc) }

// vipSide holds the per-side result of a VIP distance query, aligned with
// the access doors of the LCA child on that side: dist[i] is the distance
// from the query location to AccessDoors[i] (Infinite when unreachable) and
// via[i] the superior door of the location's partition achieving it.
type vipSide struct {
	node  NodeID
	doors []model.DoorID // the node's access doors (shared, not copied)
	dist  []float64
	via   []model.DoorID
}

// resize prepares the side for a node with n access doors, reusing the
// backing arrays whenever they are large enough.
func (s *vipSide) resize(n int) {
	if cap(s.dist) < n {
		s.dist = make([]float64, n)
		s.via = make([]model.DoorID, n)
	}
	s.dist = s.dist[:n]
	s.via = s.via[:n]
}

// vipScratch is the reusable state of one VIP-Tree distance/path query.
type vipScratch struct {
	s, d vipSide
}

func (vt *VIPTree) getVIPScratch() *vipScratch {
	sc, _ := vt.vipPool.Get().(*vipScratch)
	if sc == nil {
		sc = &vipScratch{}
	}
	return sc
}

func (vt *VIPTree) putVIPScratch(sc *vipScratch) { vt.vipPool.Put(sc) }
