package iptree

import (
	"viptree/internal/index"
	"viptree/internal/model"
)

// This file implements the allocation-free scratch state used by the query
// hot paths. Door IDs are dense ordinals assigned at build time (model.DoorID
// is a contiguous index into Venue.Doors), so per-query distance tables are
// plain slices indexed by door ID instead of map[model.DoorID] scratch maps.
// Tables are reset in O(1) with an epoch counter and recycled across queries
// through sync.Pool, making the warm VIP-Tree Distance path allocation-free
// and safe for concurrent callers.

// doorTable is a dense map from door ID to (distance, via-door), reset in
// O(1) through an epoch-stamped membership set (see epochStamps in
// buildscratch.go): an entry is present only when its door is stamped.
type doorTable struct {
	dist []float64
	via  []model.DoorID
	seen epochStamps
}

// reset prepares the table for a venue with n doors, invalidating all
// entries. It allocates only on first use (or if the venue grew).
func (dt *doorTable) reset(n int) {
	if len(dt.dist) < n {
		dt.dist = make([]float64, n)
		dt.via = make([]model.DoorID, n)
	}
	dt.seen.reset(n)
}

// has reports whether door d has an entry in the current epoch.
func (dt *doorTable) has(d model.DoorID) bool { return dt.seen.has(int(d)) }

// get returns the recorded distance to door d and whether one exists.
func (dt *doorTable) get(d model.DoorID) (float64, bool) {
	if !dt.seen.has(int(d)) {
		return Infinite, false
	}
	return dt.dist[d], true
}

// set records the distance and via-door for door d in the current epoch.
func (dt *doorTable) set(d model.DoorID, dist float64, via model.DoorID) {
	dt.dist[d] = dist
	dt.via[d] = via
	dt.seen.mark(int(d))
}

// viaOf returns the recorded via-door of d, or NoDoor when d has no entry.
func (dt *doorTable) viaOf(d model.DoorID) model.DoorID {
	if !dt.seen.has(int(d)) {
		return NoDoor
	}
	return dt.via[d]
}

// combineScratch holds the compact gather buffers of the branch-light
// combine sweeps used by the batched distance path (batch.go). Each sweep
// first gathers its valid (distance, matrix position, door) triples —
// dropping missing positions, absent table entries and unreachable bases
// once, up front — and then runs a tight row-major min-reduction over the
// compacted arrays whose only data-dependent branch is the min update
// itself. Unreachable matrix cells need no test inside the sweep: Infinite
// is math.MaxFloat64, so a candidate through one can never win a strict <
// against a best that starts at Infinite. The gather only pays for itself
// when shared — a batch group reuses one gather across every query (and, in
// the multi-source climb, across every source); the single-query loops keep
// their in-place skipping form, which measures faster at the paper's small
// access-door counts.
type combineScratch struct {
	// Gathered sources: finite base distances, their matrix row positions
	// and their door IDs (the via door a win is recorded under).
	base  []float64
	rows  []int32
	doors []model.DoorID
	// Gathered destinations: matrix column positions, door IDs and the
	// ordinal of each destination in the node's access-door list.
	cols   []int32
	dsts   []model.DoorID
	dstIdx []int32
	// Per-destination running minima and winning via doors.
	best []float64
	via  []model.DoorID
}

// prepareBest sizes best/via for the gathered destinations, initialising
// every running minimum to unreachable. via needs no initialisation: it is
// only consulted for destinations whose best is finite, and the sweep writes
// the via door on every best update. Callers gather cols/dsts/dstIdx and
// base/rows/doors with plain appends on local slice headers (which the
// compiler keeps in registers) rather than through helper methods.
func (cb *combineScratch) prepareBest() {
	n := len(cb.cols)
	if cap(cb.best) < n {
		cb.best = make([]float64, n)
		cb.via = make([]model.DoorID, n)
	}
	cb.best = cb.best[:n]
	cb.via = cb.via[:n]
	for j := range cb.best {
		cb.best[j] = Infinite
	}
}

// sweep runs the min-reduction: for every gathered source k and destination
// j it offers base[k] + mat[rows[k]][cols[j]] with via doors[k], walking the
// matrix slab row-major. Sources are offered in gather order, so with the
// strict < update the first minimal source wins — the same winner the
// skipping loops it replaces selected.
func (cb *combineScratch) sweep(mat *Matrix) {
	stride := len(mat.cols)
	slab := mat.dist
	cols, best, via := cb.cols, cb.best, cb.via
	for k := range cb.base {
		row := slab[int(cb.rows[k])*stride:]
		b := cb.base[k]
		d := cb.doors[k]
		for j, cj := range cols {
			if c := b + row[cj]; c < best[j] {
				best[j] = c
				via[j] = d
			}
		}
	}
}

// pathScratch holds the reusable buffers of one shortest-path expansion:
// the partial via-door skeleton, the expanded door sequence, the
// target-side segment of the VIP expansion, and the explicit work stack of
// the iterative Algorithm 4. All four are grown once and recycled, so a
// warm Path query allocates only its returned result slice.
type pathScratch struct {
	partial []model.DoorID
	out     []model.DoorID
	tmp     []model.DoorID
	stack   []doorPair
}

// distScratch is the reusable state of one IP-Tree distance/path query: the
// two Algorithm-2 runs (source side and target side) plus the path buffers.
type distScratch struct {
	src, dst sourceDists
	path     pathScratch
}

// getDistScratch fetches a scratch from the tree's pool (allocating one only
// when the pool is empty).
func (t *Tree) getDistScratch() *distScratch {
	sc, _ := t.distPool.Get().(*distScratch)
	if sc == nil {
		sc = &distScratch{}
	}
	return sc
}

// putDistScratch returns the scratch to the pool for reuse.
func (t *Tree) putDistScratch(sc *distScratch) { t.distPool.Put(sc) }

// vipSide holds the per-side result of a VIP distance query, aligned with
// the access doors of the LCA child on that side: dist[i] is the distance
// from the query location to AccessDoors[i] (Infinite when unreachable) and
// via[i] the superior door of the location's partition achieving it.
type vipSide struct {
	node  NodeID
	doors []model.DoorID // the node's access doors (shared, not copied)
	dist  []float64
	via   []model.DoorID
}

// resize prepares the side for a node with n access doors, reusing the
// backing arrays whenever they are large enough.
func (s *vipSide) resize(n int) {
	if cap(s.dist) < n {
		s.dist = make([]float64, n)
		s.via = make([]model.DoorID, n)
	}
	s.dist = s.dist[:n]
	s.via = s.via[:n]
}

// vipScratch is the reusable state of one VIP-Tree distance/path query.
type vipScratch struct {
	s, d vipSide
	path pathScratch
}

func (vt *VIPTree) getVIPScratch() *vipScratch {
	sc, _ := vt.vipPool.Get().(*vipScratch)
	if sc == nil {
		sc = &vipScratch{}
	}
	return sc
}

func (vt *VIPTree) putVIPScratch(sc *vipScratch) { vt.vipPool.Put(sc) }

// nodeDistTable caches, per tree node, the distances from the query location
// to the node's access doors (aligned with Node.AccessDoors) — the nodeDists
// working set of Algorithm 5. The per-node slices are reset by epoch and
// their backing arrays recycled across queries, so a warm kNN/Range query
// never reallocates them.
type nodeDistTable struct {
	vals [][]float64
	seen epochStamps
}

// reset prepares the table for a tree with n nodes, invalidating all entries.
func (nt *nodeDistTable) reset(n int) {
	if len(nt.vals) < n {
		nt.vals = make([][]float64, n)
	}
	nt.seen.reset(n)
}

// get returns the cached access-door distances of node n, if present.
func (nt *nodeDistTable) get(n NodeID) ([]float64, bool) {
	if !nt.seen.has(int(n)) {
		return nil, false
	}
	return nt.vals[n], true
}

// put stamps node n and returns its distance slice resized to size, reusing
// the backing array from earlier queries whenever it is large enough.
func (nt *nodeDistTable) put(n NodeID, size int) []float64 {
	s := nt.vals[n]
	if cap(s) < size {
		s = make([]float64, size)
	}
	s = s[:size]
	nt.vals[n] = s
	nt.seen.mark(int(n))
	return s
}

// objScratch is the reusable state of one kNN/Range traversal (Algorithm 5):
// the per-node access-door distance cache, the best-first priority queue, the
// per-object best distances of leaf scans and the result accumulator. It is
// recycled through the object index's pool, keeping the warm query path down
// to a single allocation (the returned result slice).
type objScratch struct {
	nodes nodeDistTable
	heap  []queuedNode
	// objDist[id] records the best distance to object id seen by the current
	// leaf scan; entries are valid when id is in the objSeen stamped set.
	objDist []float64
	objSeen epochStamps
	results []index.ObjectResult
	// cmBase/cmRows are the compact (finite base distance, matrix row) pairs
	// gathered once per childMinDist call, replacing the per-door refilter
	// of the combination loop.
	cmBase []float64
	cmRows []int32
}

// bumpObjEpoch starts a fresh per-object marking generation for a set of n
// objects (one generation per scanned leaf).
func (sc *objScratch) bumpObjEpoch(n int) {
	if len(sc.objDist) < n {
		sc.objDist = make([]float64, n)
	}
	sc.objSeen.reset(n)
}

func (oi *ObjectIndex) getObjScratch() *objScratch {
	sc, _ := oi.scratchPool.Get().(*objScratch)
	if sc == nil {
		sc = &objScratch{}
	}
	return sc
}

func (oi *ObjectIndex) putObjScratch(sc *objScratch) { oi.scratchPool.Put(sc) }
