package iptree

import (
	"encoding/gob"
	"fmt"
	"io"
	"slices"
	"sort"

	"viptree/internal/model"
)

// This file implements the snapshot export/import hooks consumed by
// viptree/internal/snapshot: the fully built state of an IP-Tree or VIP-Tree
// (tree topology, distance matrices, superior doors, materialised VIP
// entries, embedded object lists) is exported into plain gob-encodable
// structs and restored later without re-running construction. Only the
// expensive state is serialised; cheap derived lookup tables (leaf-of-
// partition, doors-of-leaf, access-door bookkeeping) are rebuilt on import
// with O(doors) scans, never with graph searches.
//
// Restoring a state produced by ExportState yields a tree that answers
// bit-identical Distance/Path/KNN/Range queries: every float64 survives the
// round trip exactly and the derived tables are reconstructed in the same
// deterministic order the builder uses.

// Snapshot payload kinds recorded in the container header. The suffix is the
// payload schema version: an incompatible change to TreeState or VIPState
// must introduce a new kind string.
const (
	// SnapshotKindIPTree identifies a serialised TreeState payload.
	SnapshotKindIPTree = "iptree/v1"
	// SnapshotKindVIPTree identifies a serialised VIPState payload.
	SnapshotKindVIPTree = "viptree/v1"
)

// MatrixState is the serialisable form of a node's distance matrix: the row
// and column door sets plus the dense distance and next-hop arrays in
// row-major order. The row/column lookup tables are rebuilt on restore.
type MatrixState struct {
	Rows []model.DoorID
	Cols []model.DoorID
	Dist []float64
	Next []model.DoorID
}

// NodeState is the serialisable form of one tree node. Node IDs are implied
// by position (nodes are stored densely).
type NodeState struct {
	Parent      NodeID
	Children    []NodeID
	Level       int
	Partitions  []model.PartitionID
	AccessDoors []model.DoorID
	Matrix      *MatrixState
}

// TreeState is the serialisable state of a fully built IP-Tree: the
// construction options, the node array with distance matrices, and the
// superior doors of every partition (the only per-partition state that
// required Dijkstra searches to compute).
type TreeState struct {
	MinDegree            int
	DisableSuperiorDoors bool
	NaiveMerge           bool
	Root                 NodeID
	Nodes                []NodeState
	SuperiorDoors        [][]model.DoorID
}

// VIPEntry is the serialisable form of one materialised (door, ancestor
// access door) entry: shortest distance plus the first door on that path.
type VIPEntry struct {
	Dist float64
	Next model.DoorID
}

// DoorVIPState holds the materialised ancestor entries of a single door:
// Entries[i] is aligned with the access doors of Nodes[i].
type DoorVIPState struct {
	Nodes   []NodeID
	Entries [][]VIPEntry
}

// VIPState is the serialisable state of a VIP-Tree: the underlying IP-Tree
// state plus the per-door materialised ancestor entries.
type VIPState struct {
	Tree  *TreeState
	Doors []DoorVIPState
}

// ObjectEntryState is one (object, distance-from-access-door) pair of an
// object index access list.
type ObjectEntryState struct {
	ObjectID int
	Dist     float64
}

// LeafObjectsState holds the object lists of one leaf: the object IDs in the
// leaf and, per access door of the leaf, the objects sorted by distance from
// that door.
type LeafObjectsState struct {
	Leaf        NodeID
	ObjectIDs   []int
	AccessLists [][]ObjectEntryState
}

// ObjectIndexState is the serialisable state of an ObjectIndex: the object
// locations plus the precomputed per-leaf access lists.
type ObjectIndexState struct {
	Name    string
	Objects []model.Location
	Leaves  []LeafObjectsState
	// Seq is the update-log sequence number the exported epoch covers: WAL
	// replay after restoring this state must start at Seq+1. Old snapshots
	// without the field decode as 0 (gob leaves missing fields zero), which
	// restores the pre-stamp behaviour of starting a fresh log.
	Seq uint64
}

// ExportState exports the built state of the IP-Tree. To keep exporting
// large trees cheap, the returned state aliases the tree's internal arrays
// (matrices, door lists) where the on-disk form matches the in-memory one:
// treat it as read-only and encode it immediately. Next-hop arrays are the
// exception — in memory they are positional int32 ordinals into the matrix
// door sets (matrix.go), so export expands them back into the global door
// IDs the snapshot format has always recorded, keeping payloads
// byte-identical across the packed-layout change.
func (t *Tree) ExportState() *TreeState {
	sup := t.superiorDoors
	if t.pk != nil {
		// Packed trees hold the superior doors in the doors slab; the
		// payload's per-partition lists are views into it.
		sup = make([][]model.DoorID, t.numSuperiorDoorSets())
		for p := range sup {
			sup[p] = t.pk.superiorDoorsOf(model.PartitionID(p))
		}
	}
	st := &TreeState{
		MinDegree:            t.opts.MinDegree,
		DisableSuperiorDoors: t.opts.DisableSuperiorDoors,
		NaiveMerge:           t.opts.NaiveMerge,
		Root:                 t.root,
		Nodes:                make([]NodeState, len(t.nodes)),
		SuperiorDoors:        sup,
	}
	for i := range t.nodes {
		n := &t.nodes[i]
		ns := NodeState{
			Parent:      n.Parent,
			Children:    n.Children,
			Level:       n.Level,
			Partitions:  n.Partitions,
			AccessDoors: n.AccessDoors,
		}
		if n.Matrix != nil {
			next := make([]model.DoorID, len(n.Matrix.next))
			for j, v := range n.Matrix.next {
				next[j] = n.Matrix.decodeNext(v)
			}
			ns.Matrix = &MatrixState{
				Rows: n.Matrix.rows,
				Cols: n.Matrix.cols,
				Dist: n.Matrix.dist,
				Next: next,
			}
		}
		st.Nodes[i] = ns
	}
	return st
}

// ExportState exports the built state of the VIP-Tree, including the
// underlying IP-Tree. Like Tree.ExportState, the result partially aliases
// the live index and must be treated as read-only. The per-door entries are
// expanded from the VIP arena back into the per-door payload structs the
// snapshot format has always recorded, byte-identical to what an unpacked
// tree exports.
func (vt *VIPTree) ExportState() *VIPState {
	if vt.vpk == nil {
		return vt.exportStateUnpacked()
	}
	pk := vt.vpk
	numDoors := len(pk.nodesOff) - 1
	st := &VIPState{
		Tree:  vt.Tree.ExportState(),
		Doors: make([]DoorVIPState, numDoors),
	}
	for d := 0; d < numDoors; d++ {
		nodes := pk.nodes[pk.nodesOff[d]:pk.nodesOff[d+1]]
		ds := DoorVIPState{
			Nodes:   make([]NodeID, len(nodes)),
			Entries: make([][]VIPEntry, len(nodes)),
		}
		off := int(pk.entryOff[d])
		for i, id := range nodes {
			ds.Nodes[i] = NodeID(id)
			ads := len(vt.nodes[id].AccessDoors)
			out := make([]VIPEntry, ads)
			for j := 0; j < ads; j++ {
				out[j] = VIPEntry{Dist: pk.dist[off+j], Next: model.DoorID(pk.next[off+j])}
			}
			off += ads
			ds.Entries[i] = out
		}
		st.Doors[d] = ds
	}
	return st
}

// exportStateUnpacked exports a VIP-Tree still in the transient per-door
// form (pack_test.go only).
func (vt *VIPTree) exportStateUnpacked() *VIPState {
	st := &VIPState{
		Tree:  vt.Tree.ExportState(),
		Doors: make([]DoorVIPState, len(vt.entries)),
	}
	for d := range vt.entries {
		de := &vt.entries[d]
		ds := DoorVIPState{
			Nodes:   de.nodes,
			Entries: make([][]VIPEntry, len(de.perNode)),
		}
		for i, es := range de.perNode {
			out := make([]VIPEntry, len(es))
			for j, e := range es {
				out[j] = VIPEntry{Dist: e.dist, Next: e.next}
			}
			ds.Entries[i] = out
		}
		st.Doors[d] = ds
	}
	return st
}

// ExportState exports the built state of the object index. Leaves are
// exported in ascending node-ID order (with ascending object IDs inside each
// leaf) so the encoding is deterministic. The export cuts a consistent
// epoch: it pins the currently published objEpoch with one atomic load and
// walks only immutable state — no shard locks, no coordination with
// concurrent updates, and never a torn view (the epoch is a prefix of the
// update log by construction). The object table of the payload is
// reconstructed from the epoch's leaves so it matches them exactly even
// while the writer is mid-batch; slots of deleted objects are zeroed.
func (oi *ObjectIndex) ExportState() *ObjectIndexState {
	ep := oi.currentEpoch()
	maxID := 0
	for _, lo := range ep.leafData {
		if lo != nil && len(lo.ids) > 0 {
			maxID = max(maxID, lo.ids[len(lo.ids)-1]+1)
		}
	}
	st := &ObjectIndexState{Name: oi.name, Objects: make([]model.Location, maxID), Seq: ep.seq}
	for leaf, lo := range ep.leafData {
		if lo == nil || len(lo.ids) == 0 {
			continue
		}
		ls := LeafObjectsState{
			Leaf:        NodeID(leaf),
			ObjectIDs:   append([]int(nil), lo.ids...),
			AccessLists: make([][]ObjectEntryState, len(lo.lists)),
		}
		for i, id := range lo.ids {
			st.Objects[id] = lo.locs[i]
		}
		for ai, es := range lo.lists {
			out := make([]ObjectEntryState, len(es))
			for j, e := range es {
				out[j] = ObjectEntryState{ObjectID: e.objectID, Dist: e.dist}
			}
			ls.AccessLists[ai] = out
		}
		st.Leaves = append(st.Leaves, ls)
	}
	return st
}

// RestoreTree reconstructs an IP-Tree over venue v from an exported state,
// without re-running construction. The state is validated against the venue
// (node, partition and door references must be in range and the partition
// cover complete); a mismatch indicates a corrupted or foreign snapshot.
func RestoreTree(v *model.Venue, st *TreeState) (*Tree, error) {
	if v == nil || v.NumPartitions() == 0 {
		return nil, fmt.Errorf("iptree: restore: venue is empty")
	}
	if st == nil || len(st.Nodes) == 0 {
		return nil, fmt.Errorf("iptree: restore: state has no nodes")
	}
	numNodes := len(st.Nodes)
	numDoors := v.NumDoors()
	numParts := v.NumPartitions()
	if int(st.Root) < 0 || int(st.Root) >= numNodes {
		return nil, fmt.Errorf("iptree: restore: root %d out of range [0,%d)", st.Root, numNodes)
	}
	if len(st.SuperiorDoors) != numParts {
		return nil, fmt.Errorf("iptree: restore: %d superior-door sets for %d partitions", len(st.SuperiorDoors), numParts)
	}
	t := &Tree{
		venue: v,
		opts: Options{
			MinDegree:            st.MinDegree,
			DisableSuperiorDoors: st.DisableSuperiorDoors,
			NaiveMerge:           st.NaiveMerge,
		},
		root:          st.Root,
		nodes:         make([]Node, numNodes),
		superiorDoors: st.SuperiorDoors,
	}
	for i := range st.Nodes {
		ns := &st.Nodes[i]
		if ns.Parent != invalidNode && (int(ns.Parent) < 0 || int(ns.Parent) >= numNodes) {
			return nil, fmt.Errorf("iptree: restore: node %d parent %d out of range", i, ns.Parent)
		}
		if ns.Level < 1 {
			return nil, fmt.Errorf("iptree: restore: node %d has level %d", i, ns.Level)
		}
		for _, c := range ns.Children {
			if int(c) < 0 || int(c) >= numNodes {
				return nil, fmt.Errorf("iptree: restore: node %d child %d out of range", i, c)
			}
		}
		for _, p := range ns.Partitions {
			if int(p) < 0 || int(p) >= numParts {
				return nil, fmt.Errorf("iptree: restore: node %d partition %d out of range", i, p)
			}
		}
		if err := checkDoorIDs(ns.AccessDoors, numDoors, fmt.Sprintf("node %d access doors", i)); err != nil {
			return nil, err
		}
		mat, err := restoreMatrix(ns.Matrix, numDoors, i)
		if err != nil {
			return nil, err
		}
		// Non-leaf matrices are square with identical row and column door
		// sets — every exporter writes them that way, and the packed
		// positional tables (arena.go) index columns by row position. A
		// crafted payload with permuted columns would silently answer
		// wrong distances, so reject it here.
		if len(ns.Children) > 0 && !slices.Equal(mat.rows, mat.cols) {
			return nil, fmt.Errorf("iptree: restore: node %d non-leaf matrix columns differ from rows", i)
		}
		t.nodes[i] = Node{
			ID:          NodeID(i),
			Parent:      ns.Parent,
			Children:    ns.Children,
			Level:       ns.Level,
			Partitions:  ns.Partitions,
			AccessDoors: ns.AccessDoors,
			Matrix:      mat,
		}
	}
	// The parent pointers must form a single hierarchy rooted at Root with
	// levels strictly increasing towards the root — the invariant every
	// climb loop (LCA, ancestor walks, object-index restore) relies on for
	// termination. Checking it here turns parent cycles and detached
	// subtrees in crafted or corrupted states into errors instead of hangs.
	if st.Nodes[st.Root].Parent != invalidNode {
		return nil, fmt.Errorf("iptree: restore: root %d has a parent", st.Root)
	}
	for i := range st.Nodes {
		if p := st.Nodes[i].Parent; p != invalidNode && st.Nodes[i].Level >= st.Nodes[p].Level {
			return nil, fmt.Errorf("iptree: restore: node %d level %d is not below parent %d level %d",
				i, st.Nodes[i].Level, p, st.Nodes[p].Level)
		}
	}
	for i := range st.Nodes {
		cur := NodeID(i)
		for st.Nodes[cur].Parent != invalidNode {
			cur = st.Nodes[cur].Parent // terminates: levels strictly increase
		}
		if cur != st.Root {
			return nil, fmt.Errorf("iptree: restore: node %d does not reach the root", i)
		}
	}
	for p, sup := range st.SuperiorDoors {
		if err := checkDoorIDs(sup, numDoors, fmt.Sprintf("partition %d superior doors", p)); err != nil {
			return nil, err
		}
	}
	if err := t.restoreDerived(); err != nil {
		return nil, err
	}
	t.pack()
	return t, nil
}

// RestoreVIPTree reconstructs a VIP-Tree over venue v from an exported state.
func RestoreVIPTree(v *model.Venue, st *VIPState) (*VIPTree, error) {
	if st == nil {
		return nil, fmt.Errorf("iptree: restore: nil VIP state")
	}
	t, err := RestoreTree(v, st.Tree)
	if err != nil {
		return nil, err
	}
	if len(st.Doors) != v.NumDoors() {
		return nil, fmt.Errorf("iptree: restore: %d VIP door entries for %d doors", len(st.Doors), v.NumDoors())
	}
	entries := make([]doorEntries, len(st.Doors))
	for d := range st.Doors {
		ds := &st.Doors[d]
		if len(ds.Entries) != len(ds.Nodes) {
			return nil, fmt.Errorf("iptree: restore: door %d has %d entry sets for %d nodes", d, len(ds.Entries), len(ds.Nodes))
		}
		de := doorEntries{nodes: ds.Nodes, perNode: make([][]vipEntry, len(ds.Nodes))}
		for i, n := range ds.Nodes {
			if int(n) < 0 || int(n) >= len(t.nodes) {
				return nil, fmt.Errorf("iptree: restore: door %d VIP node %d out of range", d, n)
			}
			if len(ds.Entries[i]) != len(t.nodes[n].AccessDoors) {
				return nil, fmt.Errorf("iptree: restore: door %d node %d has %d VIP entries for %d access doors",
					d, n, len(ds.Entries[i]), len(t.nodes[n].AccessDoors))
			}
			es := make([]vipEntry, len(ds.Entries[i]))
			for j, e := range ds.Entries[i] {
				if e.Next != NoDoor && (int(e.Next) < 0 || int(e.Next) >= v.NumDoors()) {
					return nil, fmt.Errorf("iptree: restore: door %d node %d VIP entry %d next door %d out of range",
						d, n, j, e.Next)
				}
				es[j] = vipEntry{dist: e.Dist, next: e.Next}
			}
			de.perNode[i] = es
		}
		entries[d] = de
	}
	vt := &VIPTree{Tree: t}
	vt.packVIP(entries)
	return vt, nil
}

// RestoreObjectIndex reconstructs an object index over a restored tree from
// an exported state. Derived state — leaf assignments, subtree object
// counts, the free list of deleted slots — is rebuilt from the per-leaf
// object lists; object IDs and access lists are normalised to the
// deterministic ascending / (distance, ID) orders, so states written by
// older builds (which recorded insertion order) restore into the same
// layout a fresh build produces.
func RestoreObjectIndex(t *Tree, st *ObjectIndexState) (*ObjectIndex, error) {
	if t == nil || st == nil {
		return nil, fmt.Errorf("iptree: restore: nil tree or object state")
	}
	for i, o := range st.Objects {
		if int(o.Partition) < 0 || int(o.Partition) >= t.venue.NumPartitions() {
			return nil, fmt.Errorf("iptree: restore: object %d partition %d out of range", i, o.Partition)
		}
	}
	oi := newObjectIndex(t, st.Name, st.Seq)
	oi.objects = append(oi.objects, st.Objects...)
	oi.objLeaf = make([]NodeID, len(st.Objects))
	for i := range oi.objLeaf {
		oi.objLeaf[i] = invalidNode
	}
	for _, ls := range st.Leaves {
		if int(ls.Leaf) < 0 || int(ls.Leaf) >= len(t.nodes) || !t.nodes[ls.Leaf].IsLeaf() {
			return nil, fmt.Errorf("iptree: restore: object leaf %d is not a leaf node", ls.Leaf)
		}
		if oi.shadowLeaf[ls.Leaf] != nil {
			return nil, fmt.Errorf("iptree: restore: duplicate object leaf %d", ls.Leaf)
		}
		if len(ls.ObjectIDs) == 0 {
			continue
		}
		if len(ls.AccessLists) != len(t.nodes[ls.Leaf].AccessDoors) {
			return nil, fmt.Errorf("iptree: restore: leaf %d has %d access lists for %d access doors",
				ls.Leaf, len(ls.AccessLists), len(t.nodes[ls.Leaf].AccessDoors))
		}
		ids := make([]ObjectID, len(ls.ObjectIDs))
		copy(ids, ls.ObjectIDs)
		sort.Ints(ids)
		for i, id := range ids {
			if id < 0 || id >= len(st.Objects) {
				return nil, fmt.Errorf("iptree: restore: leaf %d references object %d out of range", ls.Leaf, id)
			}
			if i > 0 && ids[i-1] == id {
				return nil, fmt.Errorf("iptree: restore: leaf %d lists object %d twice", ls.Leaf, id)
			}
			if oi.objLeaf[id] != invalidNode {
				return nil, fmt.Errorf("iptree: restore: object %d appears in leaves %d and %d", id, oi.objLeaf[id], ls.Leaf)
			}
			if home := t.Leaf(st.Objects[id].Partition); home != ls.Leaf {
				return nil, fmt.Errorf("iptree: restore: object %d recorded in leaf %d but located in leaf %d", id, ls.Leaf, home)
			}
			oi.objLeaf[id] = ls.Leaf
		}
		lo := &leafObjects{
			ids:   ids,
			locs:  make([]model.Location, len(ids)),
			lists: make([][]objEntry, len(ls.AccessLists)),
			maxID: ids[len(ids)-1] + 1,
		}
		for i, id := range ids {
			lo.locs[i] = st.Objects[id]
		}
		for ai, es := range ls.AccessLists {
			if len(es) != len(ids) {
				return nil, fmt.Errorf("iptree: restore: leaf %d access list %d has %d entries for %d objects",
					ls.Leaf, ai, len(es), len(ids))
			}
			out := make([]objEntry, len(es))
			for j, e := range es {
				if e.ObjectID < 0 || e.ObjectID >= len(oi.objLeaf) {
					return nil, fmt.Errorf("iptree: restore: leaf %d access list references object %d out of range", ls.Leaf, e.ObjectID)
				}
				if oi.objLeaf[e.ObjectID] != ls.Leaf {
					return nil, fmt.Errorf("iptree: restore: leaf %d access list references object %d not in the leaf", ls.Leaf, e.ObjectID)
				}
				out[j] = objEntry{objectID: e.ObjectID, dist: e.Dist}
			}
			slices.SortFunc(out, cmpObjEntry)
			lo.lists[ai] = out
		}
		oi.shadowLeaf[ls.Leaf] = lo
		oi.addCountPath(ls.Leaf, int64(len(ids)))
		oi.alive += len(ids)
	}
	// Slots referenced by no leaf are free for reuse; pushing them in
	// descending order makes Insert hand out the smallest free ID first.
	for id := len(oi.objLeaf) - 1; id >= 0; id-- {
		if oi.objLeaf[id] == invalidNode {
			oi.free = append(oi.free, ObjectID(id))
		}
	}
	// Publish the restored state at the stamped sequence: the update log
	// continues from st.Seq (fresh exports carry 0, stamped snapshots the
	// seq they were cut at), with queries serving from this epoch
	// immediately and WAL replay resuming at st.Seq+1.
	oi.publishEpoch(st.Seq)
	return oi, nil
}

// restoreMatrix rebuilds a distance matrix from its serialised form: the
// row/column lookup indexes are reconstructed and the global next-hop door
// IDs of the payload are re-encoded into the positional int32 form the
// serving layout uses (matrix.go). The encoding is lossless, so a
// re-exported matrix reproduces the payload byte for byte.
func restoreMatrix(ms *MatrixState, numDoors, nodeID int) (*Matrix, error) {
	if ms == nil {
		return nil, fmt.Errorf("iptree: restore: node %d has no distance matrix", nodeID)
	}
	if err := checkDoorIDs(ms.Rows, numDoors, fmt.Sprintf("node %d matrix rows", nodeID)); err != nil {
		return nil, err
	}
	if err := checkDoorIDs(ms.Cols, numDoors, fmt.Sprintf("node %d matrix cols", nodeID)); err != nil {
		return nil, err
	}
	if err := checkDoorIDs(ms.Next, numDoors, fmt.Sprintf("node %d matrix next hops", nodeID)); err != nil {
		return nil, err
	}
	cells := len(ms.Rows) * len(ms.Cols)
	if len(ms.Dist) != cells || len(ms.Next) != cells {
		return nil, fmt.Errorf("iptree: restore: node %d matrix has %d dist / %d next entries for %dx%d doors",
			nodeID, len(ms.Dist), len(ms.Next), len(ms.Rows), len(ms.Cols))
	}
	m := &Matrix{
		rows:   ms.Rows,
		cols:   ms.Cols,
		rowIdx: newDoorIndex(ms.Rows),
		colIdx: newDoorIndex(ms.Cols),
		dist:   ms.Dist,
		next:   make([]int32, cells),
	}
	for i, d := range ms.Next {
		m.next[i] = m.encodeNext(d)
	}
	return m, nil
}

// checkDoorIDs validates that every door ID is a valid dense index, with
// NoDoor permitted (it marks absent next hops).
func checkDoorIDs(doors []model.DoorID, numDoors int, what string) error {
	for _, d := range doors {
		if d == NoDoor {
			continue
		}
		if int(d) < 0 || int(d) >= numDoors {
			return fmt.Errorf("iptree: restore: %s: door %d out of range [0,%d)", what, d, numDoors)
		}
	}
	return nil
}

// restoreDerived rebuilds the cheap lookup tables the builder derives from
// the node array: leaf-of-partition, doors-of-leaf, leaves-of-door and the
// per-door access bookkeeping. These are O(doors) scans — no graph searches —
// and reproduce exactly the deterministic order the builder uses.
func (t *Tree) restoreDerived() error {
	v := t.venue
	numParts := v.NumPartitions()
	t.leafOfPartition = make([]NodeID, numParts)
	for p := range t.leafOfPartition {
		t.leafOfPartition[p] = invalidNode
	}
	numLeaves := 0
	for i := range t.nodes {
		if t.nodes[i].IsLeaf() && i >= numLeaves {
			numLeaves = i + 1
		}
	}
	t.doorsOfLeaf = make([][]model.DoorID, numLeaves)
	for i := range t.nodes {
		n := &t.nodes[i]
		if !n.IsLeaf() {
			continue
		}
		doorSet := make(map[model.DoorID]bool)
		for _, pid := range n.Partitions {
			if t.leafOfPartition[pid] != invalidNode {
				return fmt.Errorf("iptree: restore: partition %d covered by leaves %d and %d", pid, t.leafOfPartition[pid], n.ID)
			}
			t.leafOfPartition[pid] = n.ID
			for _, d := range v.Partition(pid).Doors {
				doorSet[d] = true
			}
		}
		doors := make([]model.DoorID, 0, len(doorSet))
		for d := range doorSet {
			doors = append(doors, d)
		}
		sort.Slice(doors, func(i, j int) bool { return doors[i] < doors[j] })
		t.doorsOfLeaf[n.ID] = doors
	}
	for p, leaf := range t.leafOfPartition {
		if leaf == invalidNode {
			return fmt.Errorf("iptree: restore: partition %d is covered by no leaf", p)
		}
	}
	// Leaves are visited in ascending ID order, so the per-door lists are
	// born sorted, matching the builder's order.
	t.leavesOfDoor = make([][]NodeID, v.NumDoors())
	for leaf, doors := range t.doorsOfLeaf {
		for _, d := range doors {
			t.leavesOfDoor[d] = append(t.leavesOfDoor[d], NodeID(leaf))
		}
	}
	t.isLeafAccessDoor = make([]bool, v.NumDoors())
	t.accessNodesOfDoor = make([][]NodeID, v.NumDoors())
	for i := range t.nodes {
		n := &t.nodes[i]
		for _, d := range n.AccessDoors {
			if n.IsLeaf() {
				t.isLeafAccessDoor[d] = true
			}
			t.accessNodesOfDoor[d] = append(t.accessNodesOfDoor[d], n.ID)
		}
	}
	return nil
}

// SnapshotKind implements index.Snapshotter.
func (t *Tree) SnapshotKind() string { return SnapshotKindIPTree }

// EncodeSnapshot implements index.Snapshotter: it writes the gob-encoded
// TreeState payload (the container framing — header, checksum — is added by
// viptree/internal/snapshot).
func (t *Tree) EncodeSnapshot(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(t.ExportState()); err != nil {
		return fmt.Errorf("iptree: encoding tree snapshot: %w", err)
	}
	return nil
}

// SnapshotKind implements index.Snapshotter.
func (vt *VIPTree) SnapshotKind() string { return SnapshotKindVIPTree }

// EncodeSnapshot implements index.Snapshotter for the VIP-Tree.
func (vt *VIPTree) EncodeSnapshot(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(vt.ExportState()); err != nil {
		return fmt.Errorf("iptree: encoding VIP snapshot: %w", err)
	}
	return nil
}

// DecodeTreeSnapshot decodes a payload written by Tree.EncodeSnapshot and
// restores the IP-Tree over venue v.
func DecodeTreeSnapshot(r io.Reader, v *model.Venue) (*Tree, error) {
	var st TreeState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("iptree: decoding tree snapshot: %w", err)
	}
	return RestoreTree(v, &st)
}

// DecodeVIPSnapshot decodes a payload written by VIPTree.EncodeSnapshot and
// restores the VIP-Tree over venue v.
func DecodeVIPSnapshot(r io.Reader, v *model.Venue) (*VIPTree, error) {
	var st VIPState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("iptree: decoding VIP snapshot: %w", err)
	}
	return RestoreVIPTree(v, &st)
}
