package iptree

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"viptree/internal/model"
	"viptree/internal/venuegen"
)

// gobClone deep-copies a state struct through a gob round trip: exported
// states alias the live index's internal arrays, so corruption tests must
// mutate a private copy.
func gobClone[T any](t *testing.T, in *T) *T {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		t.Fatalf("clone encode: %v", err)
	}
	out := new(T)
	if err := gob.NewDecoder(&buf).Decode(out); err != nil {
		t.Fatalf("clone decode: %v", err)
	}
	return out
}

func snapshotTestVenue(t *testing.T) *model.Venue {
	t.Helper()
	return venuegen.MustBuilding(venuegen.BuildingConfig{
		Name: "snapshot", Floors: 2, RoomsPerHallway: 12, Seed: 17,
	})
}

// TestExportRestoreTree checks the low-level hook round trip: RestoreTree
// over an exported state reproduces the derived lookup tables exactly and
// answers identical queries.
func TestExportRestoreTree(t *testing.T) {
	v := snapshotTestVenue(t)
	built := MustBuildIPTree(v, Options{})
	restored, err := RestoreTree(v, built.ExportState())
	if err != nil {
		t.Fatalf("RestoreTree: %v", err)
	}
	if restored.NumNodes() != built.NumNodes() || restored.Root() != built.Root() {
		t.Fatalf("tree shape changed: %d nodes root %d, want %d nodes root %d",
			restored.NumNodes(), restored.Root(), built.NumNodes(), built.Root())
	}
	// Derived tables must be rebuilt identically, not approximately: the
	// query algorithms iterate them in order.
	if !reflect.DeepEqual(restored.leafOfPartition, built.leafOfPartition) {
		t.Fatal("leafOfPartition differs after restore")
	}
	if !reflect.DeepEqual(restored.doorsOfLeaf, built.doorsOfLeaf) {
		t.Fatal("doorsOfLeaf differs after restore")
	}
	if !reflect.DeepEqual(restored.pk.leavesOfDoor, built.pk.leavesOfDoor) {
		t.Fatal("leavesOfDoor differs after restore")
	}
	if !reflect.DeepEqual(restored.isLeafAccessDoor, built.isLeafAccessDoor) {
		t.Fatal("isLeafAccessDoor differs after restore")
	}
	if !reflect.DeepEqual(restored.pk.accessNodesOfDoor, built.pk.accessNodesOfDoor) {
		t.Fatal("accessNodesOfDoor differs after restore")
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a, b := v.RandomLocation(rng), v.RandomLocation(rng)
		if got, want := restored.Distance(a, b), built.Distance(a, b); got != want {
			t.Fatalf("Distance(%v, %v) = %v, want %v", a, b, got, want)
		}
	}
}

// TestEncodeDecodeVIP checks the Snapshotter payload round trip for the
// VIP-Tree, including the materialised entries.
func TestEncodeDecodeVIP(t *testing.T) {
	v := snapshotTestVenue(t)
	built := NewVIPTree(MustBuildIPTree(v, Options{}))
	var buf bytes.Buffer
	if err := built.EncodeSnapshot(&buf); err != nil {
		t.Fatalf("EncodeSnapshot: %v", err)
	}
	restored, err := DecodeVIPSnapshot(&buf, v)
	if err != nil {
		t.Fatalf("DecodeVIPSnapshot: %v", err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		a, b := v.RandomLocation(rng), v.RandomLocation(rng)
		if got, want := restored.Distance(a, b), built.Distance(a, b); got != want {
			t.Fatalf("Distance(%v, %v) = %v, want %v", a, b, got, want)
		}
		gd, gp := restored.Path(a, b)
		wd, wp := built.Path(a, b)
		if gd != wd || !reflect.DeepEqual(gp, wp) {
			t.Fatalf("Path(%v, %v) = (%v, %v), want (%v, %v)", a, b, gd, gp, wd, wp)
		}
	}
}

// TestSnapshotKinds pins the payload kind strings: changing one silently
// would orphan every existing snapshot file.
func TestSnapshotKinds(t *testing.T) {
	v := snapshotTestVenue(t)
	ip := MustBuildIPTree(v, Options{})
	vip := NewVIPTree(MustBuildIPTree(v, Options{}))
	if got := ip.SnapshotKind(); got != "iptree/v1" {
		t.Errorf("IP-Tree SnapshotKind() = %q, want iptree/v1", got)
	}
	if got := vip.SnapshotKind(); got != "viptree/v1" {
		t.Errorf("VIP-Tree SnapshotKind() = %q, want viptree/v1", got)
	}
}

// TestRestoreRejectsCorruptState drives RestoreTree/RestoreVIPTree with
// states mutated in targeted ways; every mutation must be rejected with a
// descriptive error, never a panic or a silently wrong tree.
func TestRestoreRejectsCorruptState(t *testing.T) {
	v := snapshotTestVenue(t)
	base := MustBuildIPTree(v, Options{}).ExportState()

	cases := []struct {
		name    string
		mutate  func(st *TreeState)
		errPart string
	}{
		{"no nodes", func(st *TreeState) { st.Nodes = nil }, "no nodes"},
		{"root out of range", func(st *TreeState) { st.Root = NodeID(len(st.Nodes)) }, "root"},
		{"negative root", func(st *TreeState) { st.Root = -1 }, "root"},
		{"parent out of range", func(st *TreeState) { st.Nodes[0].Parent = NodeID(len(st.Nodes) + 5) }, "parent"},
		{"child out of range", func(st *TreeState) {
			st.Nodes[len(st.Nodes)-1].Children = append(st.Nodes[len(st.Nodes)-1].Children, NodeID(len(st.Nodes)))
		}, "child"},
		{"bad level", func(st *TreeState) { st.Nodes[0].Level = 0 }, "level"},
		{"root with parent", func(st *TreeState) { st.Nodes[st.Root].Parent = 0 }, "root"},
		{"parent cycle", func(st *TreeState) {
			// A self-parent is the tightest cycle: every climb through the
			// node would loop forever without the level validation.
			st.Nodes[0].Parent = 0
		}, "level"},
		{"detached subtree", func(st *TreeState) {
			// Orphan a non-root leaf: its climb no longer reaches the root.
			for i := range st.Nodes {
				if NodeID(i) != st.Root && len(st.Nodes[i].Children) == 0 {
					st.Nodes[i].Parent = -1
					return
				}
			}
		}, "reach the root"},
		{"partition out of range", func(st *TreeState) {
			for i := range st.Nodes {
				if len(st.Nodes[i].Partitions) > 0 {
					st.Nodes[i].Partitions[0] = model.PartitionID(v.NumPartitions())
					return
				}
			}
		}, "partition"},
		{"access door out of range", func(st *TreeState) { st.Nodes[0].AccessDoors[0] = model.DoorID(v.NumDoors()) }, "door"},
		{"missing matrix", func(st *TreeState) { st.Nodes[0].Matrix = nil }, "matrix"},
		{"matrix shape mismatch", func(st *TreeState) { st.Nodes[0].Matrix.Dist = st.Nodes[0].Matrix.Dist[:1] }, "matrix"},
		{"matrix next hop out of range", func(st *TreeState) {
			st.Nodes[0].Matrix.Next = append([]model.DoorID(nil), st.Nodes[0].Matrix.Next...)
			st.Nodes[0].Matrix.Next[0] = model.DoorID(v.NumDoors())
		}, "next"},
		{"non-leaf matrix columns permuted", func(st *TreeState) {
			// The packed positional tables index non-leaf matrix columns by
			// row position, so a payload whose columns are not the row door
			// set must be rejected, not silently mis-answered.
			for i := range st.Nodes {
				n := &st.Nodes[i]
				if len(n.Children) == 0 || n.Matrix == nil || len(n.Matrix.Cols) < 2 {
					continue
				}
				cols := append([]model.DoorID(nil), n.Matrix.Cols...)
				cols[0], cols[1] = cols[1], cols[0]
				n.Matrix.Cols = cols
				return
			}
			t.Skip("venue produced no suitable non-leaf matrix")
		}, "columns differ from rows"},
		{"superior door count mismatch", func(st *TreeState) { st.SuperiorDoors = st.SuperiorDoors[:1] }, "superior"},
		{"partition covered twice", func(st *TreeState) {
			// Duplicate the first leaf's partition into another leaf.
			var leaves []int
			for i := range st.Nodes {
				if len(st.Nodes[i].Children) == 0 {
					leaves = append(leaves, i)
				}
			}
			if len(leaves) < 2 {
				t.Skip("venue produced a single-leaf tree")
			}
			st.Nodes[leaves[1]].Partitions = append(st.Nodes[leaves[1]].Partitions, st.Nodes[leaves[0]].Partitions[0])
		}, "covered"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := gobClone(t, base) // mutations must not leak across cases
			tc.mutate(st)
			if _, err := RestoreTree(v, st); err == nil {
				t.Fatal("RestoreTree accepted a corrupt state")
			} else if !strings.Contains(strings.ToLower(err.Error()), tc.errPart) {
				t.Fatalf("RestoreTree error %q does not mention %q", err, tc.errPart)
			}
		})
	}
}

// TestRestoreVIPRejectsCorruptState checks the VIP-specific validation.
func TestRestoreVIPRejectsCorruptState(t *testing.T) {
	v := snapshotTestVenue(t)
	built := NewVIPTree(MustBuildIPTree(v, Options{}))
	base := built.ExportState()

	st := gobClone(t, base)
	st.Doors = st.Doors[:len(st.Doors)-1]
	if _, err := RestoreVIPTree(v, st); err == nil {
		t.Fatal("RestoreVIPTree accepted a door-count mismatch")
	}

	st = gobClone(t, base)
	st.Doors[0].Nodes = append(st.Doors[0].Nodes, NodeID(built.NumNodes()))
	st.Doors[0].Entries = append(st.Doors[0].Entries, nil)
	if _, err := RestoreVIPTree(v, st); err == nil {
		t.Fatal("RestoreVIPTree accepted an out-of-range VIP node")
	}

	st = gobClone(t, base)
	if len(st.Doors[0].Entries) > 0 && len(st.Doors[0].Entries[0]) > 0 {
		st.Doors[0].Entries[0] = st.Doors[0].Entries[0][:len(st.Doors[0].Entries[0])-1]
		if _, err := RestoreVIPTree(v, st); err == nil {
			t.Fatal("RestoreVIPTree accepted a misaligned entry set")
		}
	}
}

// TestRestoreObjectIndexRejectsCorruptState checks the object-index
// validation: bad leaves, out-of-range object IDs and misaligned lists.
func TestRestoreObjectIndexRejectsCorruptState(t *testing.T) {
	v := snapshotTestVenue(t)
	tree := MustBuildIPTree(v, Options{})
	rng := rand.New(rand.NewSource(3))
	objects := make([]model.Location, 10)
	for i := range objects {
		objects[i] = v.RandomLocation(rng)
	}
	oi := tree.IndexObjects(objects)
	base := oi.ExportState()

	st := gobClone(t, base)
	st.Leaves[0].Leaf = NodeID(tree.NumNodes())
	if _, err := RestoreObjectIndex(tree, st); err == nil {
		t.Fatal("RestoreObjectIndex accepted an out-of-range leaf")
	}

	st = gobClone(t, base)
	st.Leaves[0].Leaf = tree.Root()
	if tree.Node(tree.Root()).IsLeaf() {
		t.Skip("single-node tree")
	}
	if _, err := RestoreObjectIndex(tree, st); err == nil {
		t.Fatal("RestoreObjectIndex accepted a non-leaf node")
	}

	st = gobClone(t, base)
	st.Leaves[0].ObjectIDs[0] = len(objects)
	if _, err := RestoreObjectIndex(tree, st); err == nil {
		t.Fatal("RestoreObjectIndex accepted an out-of-range object ID")
	}

	st = gobClone(t, base)
	st.Leaves[0].AccessLists = st.Leaves[0].AccessLists[:len(st.Leaves[0].AccessLists)-1]
	if _, err := RestoreObjectIndex(tree, st); err == nil {
		t.Fatal("RestoreObjectIndex accepted misaligned access lists")
	}

	st = gobClone(t, base)
	st.Leaves[0].AccessLists[0][0].ObjectID = len(objects) + 3
	if _, err := RestoreObjectIndex(tree, st); err == nil {
		t.Fatal("RestoreObjectIndex accepted an out-of-range access-list object ID")
	}

	st = gobClone(t, base)
	st.Leaves[0].AccessLists[0][0].ObjectID = -1
	if _, err := RestoreObjectIndex(tree, st); err == nil {
		t.Fatal("RestoreObjectIndex accepted a negative access-list object ID")
	}
}

// TestMutatedObjectIndexRoundTrip exports an object index after a sequence
// of Insert/Delete/Move updates and verifies the restored copy answers
// bit-identical queries — including ID stability across deleted slots — and
// that a second export of the restored index reproduces the state exactly.
func TestMutatedObjectIndexRoundTrip(t *testing.T) {
	v := snapshotTestVenue(t)
	tree := MustBuildIPTree(v, Options{})
	rng := rand.New(rand.NewSource(29))
	objects := make([]model.Location, 14)
	for i := range objects {
		objects[i] = v.RandomLocation(rng)
	}
	oi := tree.IndexObjects(objects)
	for op := 0; op < 120; op++ {
		switch rng.Intn(3) {
		case 0:
			if _, err := oi.Insert(v.RandomLocation(rng)); err != nil {
				t.Fatal(err)
			}
		case 1:
			// Deleting an already-deleted slot is fine to skip.
			if err := oi.Delete(rng.Intn(len(oi.Objects()))); err != nil && !strings.Contains(err.Error(), "no such object") {
				t.Fatal(err)
			}
		default:
			if err := oi.Move(rng.Intn(len(oi.Objects())), v.RandomLocation(rng)); err != nil && !strings.Contains(err.Error(), "no such object") {
				t.Fatal(err)
			}
		}
	}
	st := gobClone(t, oi.ExportState())
	restored, err := RestoreObjectIndex(tree, st)
	if err != nil {
		t.Fatalf("RestoreObjectIndex: %v", err)
	}
	if restored.NumObjects() != oi.NumObjects() {
		t.Fatalf("restored NumObjects = %d, want %d", restored.NumObjects(), oi.NumObjects())
	}
	for i := 0; i < 40; i++ {
		q := v.RandomLocation(rng)
		if got, want := restored.KNN(q, 6), oi.KNN(q, 6); !reflect.DeepEqual(got, want) {
			t.Fatalf("restored KNN(%v) = %v, want %v", q, got, want)
		}
		if got, want := restored.Range(q, 150), oi.Range(q, 150); !reflect.DeepEqual(got, want) {
			t.Fatalf("restored Range(%v) = %v, want %v", q, got, want)
		}
	}
	if again := restored.ExportState(); !reflect.DeepEqual(gobClone(t, again), st) {
		t.Fatal("re-exported state differs from the original export")
	}
	// The restored index keeps accepting updates, reusing freed slots.
	id, err := restored.Insert(v.RandomLocation(rng))
	if err != nil {
		t.Fatal(err)
	}
	if _, alive := restored.Location(id); !alive {
		t.Fatal("object inserted into restored index is not alive")
	}
}

// TestSnapshotSeqStamp checks the update-log sequence stamp: exports carry
// the seq of the pinned epoch, restores resume the log exactly there, and
// old snapshots (no stamp → gob zero) keep restoring at seq 0.
func TestSnapshotSeqStamp(t *testing.T) {
	v := snapshotTestVenue(t)
	tree := MustBuildIPTree(v, Options{})
	rng := rand.New(rand.NewSource(7))
	objs := make([]model.Location, 40)
	for i := range objs {
		objs[i] = v.RandomLocation(rng)
	}
	oi := tree.IndexObjects(objs)

	// A fresh build has applied no updates: the stamp is 0, exactly what
	// pre-stamp snapshots decode as.
	if got := oi.ExportState().Seq; got != 0 {
		t.Fatalf("fresh export stamped seq %d, want 0", got)
	}

	for i := 0; i < 25; i++ {
		if _, err := oi.Insert(v.RandomLocation(rng)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	st := gobClone(t, oi.ExportState())
	if st.Seq != 25 {
		t.Fatalf("export after 25 updates stamped seq %d, want 25", st.Seq)
	}

	restored, err := RestoreObjectIndex(tree, st)
	if err != nil {
		t.Fatalf("RestoreObjectIndex: %v", err)
	}
	if got := restored.Epoch(); got != 25 {
		t.Fatalf("restored epoch %d, want the stamp 25", got)
	}
	if got := restored.ChangeLog().HeadSeq(); got != 25 {
		t.Fatalf("restored log head %d, want 25", got)
	}
	// The next update continues the sequence rather than restarting it —
	// the property WAL replay relies on.
	if _, err := restored.Insert(v.RandomLocation(rng)); err != nil {
		t.Fatalf("insert after restore: %v", err)
	}
	if got := restored.ChangeLog().HeadSeq(); got != 26 {
		t.Fatalf("post-restore update got seq %d, want 26", got)
	}

	// Old snapshot compatibility: a state with the zero stamp restores at
	// seq 0, the pre-stamp behaviour.
	st.Seq = 0
	legacy, err := RestoreObjectIndex(tree, st)
	if err != nil {
		t.Fatalf("RestoreObjectIndex (legacy): %v", err)
	}
	if legacy.Epoch() != 0 || legacy.ChangeLog().HeadSeq() != 0 {
		t.Fatalf("legacy restore at epoch %d / head %d, want 0/0", legacy.Epoch(), legacy.ChangeLog().HeadSeq())
	}
}
