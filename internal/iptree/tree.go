// Package iptree implements the paper's primary contribution: the Indoor
// Partitioning Tree (IP-Tree) and the Vivid IP-Tree (VIP-Tree), together
// with the query algorithms of Section 3 — shortest distance (Algorithms 2
// and 3), shortest path (Algorithm 4), k nearest neighbours (Algorithm 5)
// and range queries.
//
// An IP-Tree groups adjacent indoor partitions into leaf nodes (keeping each
// hallway in its own leaf), then merges nodes bottom-up while minimising the
// number of access doors per node. Every node stores a small distance matrix
// over its access doors, so shortest distances between far-apart locations
// are assembled from O(height) matrix lookups instead of a graph expansion.
// A VIP-Tree additionally materialises, for every door, the distances to the
// access doors of all of its ancestors, reducing the distance query cost to
// O(ρ²) where ρ is the (small) average number of access doors per node.
//
// Construction is the expensive half of the paper's trade-off: it runs
// Dijkstra searches for every leaf matrix and materialises per-door ancestor
// entries. Both trees therefore implement the index.Snapshotter capability
// (snapshot.go): the fully built state — topology, distance matrices,
// superior doors, VIP entries — exports into gob-encodable structs and
// restores without re-running construction, answering bit-identical queries.
// The framed on-disk container lives in viptree/internal/snapshot.
package iptree

import (
	"fmt"
	"sync"
	"time"

	"viptree/internal/index"
	"viptree/internal/model"
)

// Compile-time conformance: both trees and their object index implement the
// full capability interfaces of viptree/internal/index.
var (
	_ index.Index         = (*Tree)(nil)
	_ index.Index         = (*VIPTree)(nil)
	_ index.ObjectIndexer = (*Tree)(nil)
	_ index.ObjectIndexer = (*VIPTree)(nil)
	_ index.ObjectQuerier = (*ObjectIndex)(nil)
)

// NodeID identifies a node of the tree. Nodes are stored densely; leaves are
// created first, so leaf IDs are 0..M-1.
type NodeID int

// invalidNode marks the absence of a node (e.g. the root's parent).
const invalidNode NodeID = -1

// Node is a node of the IP-Tree. Leaf nodes cover a set of indoor
// partitions; non-leaf nodes cover the union of their children.
type Node struct {
	ID       NodeID
	Parent   NodeID
	Children []NodeID
	// Level is 1 for leaves and increases towards the root.
	Level int
	// Partitions is the set of indoor partitions covered by a leaf node;
	// empty for non-leaf nodes.
	Partitions []model.PartitionID
	// AccessDoors is AD(N): the doors connecting the inside of the node to
	// the outside (Definition 1).
	AccessDoors []model.DoorID
	// Matrix is the node's distance matrix. For a leaf node the rows are
	// all doors of the node and the columns its access doors; for a
	// non-leaf node it is a square matrix over the access doors of its
	// children (Section 2.1.1).
	Matrix *Matrix
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Options configures tree construction.
type Options struct {
	// MinDegree is the minimum number of children of each non-root node
	// (the parameter t of Algorithm 1). The paper finds t=2 performs best;
	// zero selects that default.
	MinDegree int
	// DisableSuperiorDoors is an ablation switch: when set, Eq. (1) uses
	// every door of the source partition instead of only its superior doors
	// (Definition 2), which the paper's design avoids.
	DisableSuperiorDoors bool
	// NaiveMerge is an ablation switch: when set, Algorithm 1 merges each
	// node with an arbitrary neighbour instead of the one maximising the
	// number of shared access doors.
	NaiveMerge bool
	// Parallelism bounds the number of worker goroutines used by the
	// construction phases that fan out per node or per door (leaf matrices,
	// non-leaf matrices, VIP materialisation). Zero selects GOMAXPROCS.
	// The built tree is bit-identical at every parallelism, because workers
	// only write state owned by their item (a node's matrix, a door's VIP
	// entries); Parallelism is therefore not recorded in snapshots.
	Parallelism int
}

func (o Options) minDegree() int {
	if o.MinDegree < 2 {
		return 2
	}
	return o.MinDegree
}

// Tree is an IP-Tree over a venue.
type Tree struct {
	venue *model.Venue
	opts  Options

	nodes []Node
	root  NodeID

	// leafOfPartition maps each partition to the leaf that contains it.
	leafOfPartition []NodeID
	// leavesOfDoor maps each door to the leaves containing it (one or two);
	// nil once packed (pk.leavesOfDoor is the compressed form).
	leavesOfDoor [][]NodeID
	// doorsOfLeaf caches the set of doors of each leaf node, indexed by
	// NodeID (empty for non-leaf nodes).
	doorsOfLeaf [][]model.DoorID
	// isLeafAccessDoor marks doors that are access doors of at least one
	// leaf node; Algorithm 4 relies on this set when decomposing edges.
	isLeafAccessDoor []bool
	// accessNodesOfDoor lists, for each door d, the nodes N with d ∈ AD(N);
	// nil once packed (pk.accessNodesOfDoor is the compressed form).
	accessNodesOfDoor [][]NodeID
	// superiorDoors maps each partition to its superior doors
	// (Definition 2); the remaining doors of the partition are inferior.
	superiorDoors [][]model.DoorID

	// pk is the arena-packed serving layout (arena.go): contiguous slabs
	// holding every matrix and door set plus the positional lookup tables
	// the query hot paths index instead of binary-searching. It is built by
	// pack() at the end of construction and restore; nil only for the
	// unpacked intermediate state (exercised directly by pack_test.go).
	pk *packed

	// distPool recycles per-query scratch (dense door tables), keeping the
	// warm Distance/Path/KNN paths allocation-free and safe for concurrent
	// callers.
	distPool sync.Pool

	// batchPool recycles the per-batch plan state of the batched distance
	// path (batch.go): grouping arrays, endpoint sets, leaf climb chains
	// and the table arenas. scratchPoolB recycles the per-worker scratch
	// (combine buffers and pairing-position gathers).
	batchPool    sync.Pool
	scratchPoolB sync.Pool

	// climb is the tree-lifetime cache of Algorithm-2 climb blocks consulted
	// by the batched kNN/range path (climbcache.go). Climb blocks depend
	// only on the static tree topology, so the cache lives on the tree and
	// is shared by every object index embedded into it.
	climb climbCache

	// timings records the wall-clock cost of each construction phase; zero
	// for trees restored from a snapshot.
	timings BuildTimings
}

// BuildTimings is the wall-clock duration of every construction phase, the
// breakdown behind the paper's one-off construction cost. Snapshot-restored
// trees report zero timings (they skipped construction entirely).
type BuildTimings struct {
	// Leaves is step 1: grouping partitions into leaf nodes.
	Leaves time.Duration
	// Hierarchy is step 2 (Algorithm 1): merging nodes level by level.
	Hierarchy time.Duration
	// LeafMatrices is step 3: Dijkstra searches populating leaf matrices
	// and superior doors. Parallelised per leaf.
	LeafMatrices time.Duration
	// NonLeafMatrices is step 4: level graphs and non-leaf matrices.
	// Parallelised per node within each level.
	NonLeafMatrices time.Duration
	// VIPMaterialise is the per-door ancestor materialisation of Section
	// 2.2; zero for plain IP-Trees. Parallelised per door.
	VIPMaterialise time.Duration
}

// BuildTimings returns the recorded construction-phase durations.
func (t *Tree) BuildTimings() BuildTimings { return t.timings }

// BuildIPTree constructs an IP-Tree over the venue. The built tree is
// arena-packed (arena.go): its matrices and door sets live in per-tree
// contiguous slabs, frozen for serving.
func BuildIPTree(v *model.Venue, opts Options) (*Tree, error) {
	t, err := buildIPTreeUnpacked(v, opts)
	if err != nil {
		return nil, err
	}
	t.pack()
	return t, nil
}

// buildIPTreeUnpacked runs the four construction phases without the final
// pack() step. It exists so the packing property tests can hold on to the
// pre-pack state; every public constructor packs.
func buildIPTreeUnpacked(v *model.Venue, opts Options) (*Tree, error) {
	if v == nil || v.NumPartitions() == 0 {
		return nil, fmt.Errorf("iptree: venue is empty")
	}
	t := &Tree{venue: v, opts: opts}
	phase := time.Now()
	t.buildLeaves()
	t.timings.Leaves = time.Since(phase)
	phase = time.Now()
	t.buildHierarchy()
	t.timings.Hierarchy = time.Since(phase)
	phase = time.Now()
	t.buildLeafMatrices()
	t.timings.LeafMatrices = time.Since(phase)
	phase = time.Now()
	t.buildNonLeafMatrices()
	t.timings.NonLeafMatrices = time.Since(phase)
	return t, nil
}

// MustBuildIPTree is BuildIPTree but panics on error.
func MustBuildIPTree(v *model.Venue, opts Options) *Tree {
	t, err := BuildIPTree(v, opts)
	if err != nil {
		panic(err)
	}
	return t
}

// Name implements index.DistanceQuerier.
func (t *Tree) Name() string { return "IP-Tree" }

// Venue returns the venue the tree indexes.
func (t *Tree) Venue() *model.Venue { return t.venue }

// Root returns the root node ID.
func (t *Tree) Root() NodeID { return t.root }

// Node returns the node with the given ID.
func (t *Tree) Node(id NodeID) *Node { return &t.nodes[id] }

// NumNodes returns the total number of nodes in the tree.
func (t *Tree) NumNodes() int { return len(t.nodes) }

// NumLeaves returns the number of leaf nodes (M in the paper's analysis).
func (t *Tree) NumLeaves() int {
	n := 0
	for i := range t.nodes {
		if t.nodes[i].IsLeaf() {
			n++
		}
	}
	return n
}

// Height returns the number of levels of the tree.
func (t *Tree) Height() int { return t.nodes[t.root].Level }

// Leaf returns the leaf node containing partition p.
func (t *Tree) Leaf(p model.PartitionID) NodeID { return t.leafOfPartition[p] }

// LeafOfLocation returns the leaf node containing the location's partition.
func (t *Tree) LeafOfLocation(l model.Location) NodeID { return t.Leaf(l.Partition) }

// LeavesOfDoor returns the leaves whose partitions include door d (one or
// two leaves, since a door connects at most two partitions). On a packed
// tree the list is materialised from the compressed per-door table; hot
// paths iterate the table directly instead.
func (t *Tree) LeavesOfDoor(d model.DoorID) []NodeID {
	if t.pk != nil {
		vs := t.pk.leavesOfDoor.of(d)
		out := make([]NodeID, len(vs))
		for i, v := range vs {
			out[i] = NodeID(v)
		}
		return out
	}
	return t.leavesOfDoor[d]
}

// doorIsAccess reports whether door d is an access door of at least one node.
func (t *Tree) doorIsAccess(d model.DoorID) bool {
	if t.pk != nil {
		return !t.pk.accessNodesOfDoor.empty(d)
	}
	return len(t.accessNodesOfDoor[d]) > 0
}

// DoorsOfLeaf returns all doors belonging to the partitions of leaf n, or
// nil for non-leaf nodes.
func (t *Tree) DoorsOfLeaf(n NodeID) []model.DoorID {
	if n < 0 || int(n) >= len(t.doorsOfLeaf) {
		return nil
	}
	return t.doorsOfLeaf[n]
}

// SuperiorDoors returns the superior doors of partition p (Definition 2).
// On a packed tree the list is a view of the doors slab.
func (t *Tree) SuperiorDoors(p model.PartitionID) []model.DoorID {
	if t.pk != nil {
		return t.pk.superiorDoorsOf(p)
	}
	return t.superiorDoors[p]
}

// numSuperiorDoorSets returns the number of per-partition superior-door
// lists, independent of packing.
func (t *Tree) numSuperiorDoorSets() int {
	if t.pk != nil {
		return len(t.pk.supDoorOff) - 1
	}
	return len(t.superiorDoors)
}

// IsAncestor reports whether a is an ancestor of (or equal to) n.
func (t *Tree) IsAncestor(a, n NodeID) bool {
	for cur := n; cur != invalidNode; cur = t.nodes[cur].Parent {
		if cur == a {
			return true
		}
	}
	return false
}

// LCA returns the lowest common ancestor of nodes a and b.
func (t *Tree) LCA(a, b NodeID) NodeID {
	// Walk both nodes up to the same level, then in lockstep.
	for t.nodes[a].Level < t.nodes[b].Level {
		a = t.nodes[a].Parent
	}
	for t.nodes[b].Level < t.nodes[a].Level {
		b = t.nodes[b].Parent
	}
	for a != b {
		a = t.nodes[a].Parent
		b = t.nodes[b].Parent
	}
	return a
}

// ChildToward returns the child of ancestor anc on the path towards the
// descendant node n. It panics if anc is not a proper ancestor of n.
func (t *Tree) ChildToward(anc, n NodeID) NodeID {
	cur := n
	for {
		parent := t.nodes[cur].Parent
		if parent == anc {
			return cur
		}
		if parent == invalidNode {
			panic(fmt.Sprintf("iptree: node %d is not a proper ancestor of %d", anc, n))
		}
		cur = parent
	}
}

// Stats summarises the structural properties that drive the paper's
// complexity analysis (Table 1): ρ (average access doors per node), f
// (average children per non-leaf node), M (leaf count), plus height and an
// estimate of the memory used by the distance matrices.
type Stats struct {
	Nodes            int
	Leaves           int
	Height           int
	AvgAccessDoors   float64 // ρ
	MaxAccessDoors   int
	AvgFanout        float64 // f
	AvgSuperiorDoors float64 // α
	MaxSuperiorDoors int
	MatrixBytes      int64
}

// TreeStats computes the tree statistics.
func (t *Tree) TreeStats() Stats {
	s := Stats{Nodes: len(t.nodes), Leaves: t.NumLeaves(), Height: t.Height()}
	totalAD, nonLeaf, totalChildren := 0, 0, 0
	for i := range t.nodes {
		n := &t.nodes[i]
		totalAD += len(n.AccessDoors)
		if len(n.AccessDoors) > s.MaxAccessDoors {
			s.MaxAccessDoors = len(n.AccessDoors)
		}
		if !n.IsLeaf() {
			nonLeaf++
			totalChildren += len(n.Children)
		}
		if n.Matrix != nil {
			if t.pk != nil {
				s.MatrixBytes += sizeofMatrixStruct
			} else {
				s.MatrixBytes += n.Matrix.memoryBytes()
			}
		}
	}
	if t.pk != nil {
		// The cells of every matrix live in the shared arenas.
		s.MatrixBytes += int64(len(t.pk.dist))*8 + int64(len(t.pk.next))*4
	}
	if len(t.nodes) > 0 {
		s.AvgAccessDoors = float64(totalAD) / float64(len(t.nodes))
	}
	if nonLeaf > 0 {
		s.AvgFanout = float64(totalChildren) / float64(nonLeaf)
	}
	totalSup := 0
	numSets := t.numSuperiorDoorSets()
	for p := 0; p < numSets; p++ {
		n := len(t.SuperiorDoors(model.PartitionID(p)))
		totalSup += n
		if n > s.MaxSuperiorDoors {
			s.MaxSuperiorDoors = n
		}
	}
	if numSets > 0 {
		s.AvgSuperiorDoors = float64(totalSup) / float64(numSets)
	}
	return s
}

// MemoryBytes reports the memory consumed by the tree's structures. For a
// packed tree (the only state public constructors produce) the number is
// arena-exact: the four slabs are measured by length, and everything that
// views them — matrices, access-door lists, leaf door sets, superior doors —
// contributes only its slice headers. The D2D graph is shared with the venue
// and not counted.
func (t *Tree) MemoryBytes() int64 {
	var total int64
	if t.pk != nil {
		total += t.pk.arenaBytes()
	}
	for i := range t.nodes {
		n := &t.nodes[i]
		total += int64(len(n.Children))*sizeofNodeID + int64(len(n.Partitions))*sizeofInt + sizeofNodeStruct
		if n.Matrix != nil {
			if t.pk != nil {
				// Cells, door sets and sorted-alias indexes live in the slabs;
				// only the struct (views + index headers) is per-node.
				total += sizeofMatrixStruct
			} else {
				total += n.Matrix.memoryBytes()
			}
		}
	}
	if t.pk == nil {
		for i := range t.nodes {
			total += int64(len(t.nodes[i].AccessDoors)) * sizeofDoorID
		}
		for _, ds := range t.doorsOfLeaf {
			total += int64(len(ds)) * sizeofDoorID
		}
		for p := range t.superiorDoors {
			total += int64(len(t.superiorDoors[p])) * sizeofDoorID
		}
	}
	total += int64(len(t.doorsOfLeaf)+len(t.superiorDoors)) * sizeofSliceHeader
	total += int64(len(t.leafOfPartition)) * sizeofNodeID
	if t.pk == nil {
		// Packed trees hold these as CSR slabs, counted in arenaBytes.
		total += int64(len(t.leavesOfDoor)+len(t.accessNodesOfDoor)) * sizeofSliceHeader
		for d := range t.leavesOfDoor {
			total += int64(len(t.leavesOfDoor[d])) * sizeofNodeID
		}
		for d := range t.accessNodesOfDoor {
			total += int64(len(t.accessNodesOfDoor[d])) * sizeofNodeID
		}
	}
	total += int64(len(t.isLeafAccessDoor))
	return total
}

// Stats implements index.Index: the uniform construction metadata shared by
// every index in the repository. The structural details of TreeStats are
// exposed under stable keys.
func (t *Tree) Stats() index.Stats {
	return t.indexStats(t.Name(), t.MemoryBytes())
}

func (t *Tree) indexStats(name string, memory int64) index.Stats {
	s := t.TreeStats()
	cc := t.climb.stats()
	return index.Stats{
		Name:        name,
		MemoryBytes: memory,
		Details: map[string]float64{
			"nodes":               float64(s.Nodes),
			"leaves":              float64(s.Leaves),
			"height":              float64(s.Height),
			"avg_access_doors":    s.AvgAccessDoors,
			"max_access_doors":    float64(s.MaxAccessDoors),
			"avg_fanout":          s.AvgFanout,
			"avg_superior_doors":  s.AvgSuperiorDoors,
			"matrix_bytes":        float64(s.MatrixBytes),
			"climb_cache_hits":    float64(cc.Hits),
			"climb_cache_misses":  float64(cc.Misses),
			"climb_cache_entries": float64(cc.Entries),
			"climb_cache_bytes":   float64(cc.Bytes),
		},
	}
}

// Stats implements index.Index for the VIP-Tree, including the materialised
// entries in the reported memory footprint.
func (vt *VIPTree) Stats() index.Stats {
	return vt.indexStats(vt.Name(), vt.MemoryBytes())
}

// NewObjectQuerier implements index.ObjectIndexer.
func (t *Tree) NewObjectQuerier(objects []model.Location) index.ObjectQuerier {
	return t.IndexObjects(objects)
}

// NewObjectQuerier implements index.ObjectIndexer.
func (vt *VIPTree) NewObjectQuerier(objects []model.Location) index.ObjectQuerier {
	return vt.IndexObjects(objects)
}
