package iptree

import (
	"viptree/internal/model"
)

// This file implements the Vivid IP-Tree (Section 2.2 and Sections 3.1.2 and
// 3.3): an IP-Tree that additionally materialises, for every door, the
// distance and next-hop door to every access door of every ancestor of the
// leaves containing that door. Shortest-distance queries then cost O(ρ²)
// because the upward climb of Algorithm 2 is replaced by direct lookups.

// vipEntry is the materialised information for one (door, ancestor access
// door) pair: the shortest distance and the first door on that shortest path
// (NoDoor if the path contains no other door).
type vipEntry struct {
	dist float64
	next model.DoorID
}

// VIPTree is a VIP-Tree: an IP-Tree plus the per-door materialised distances.
type VIPTree struct {
	*Tree
	// entries[d][node] holds one vipEntry per access door of `node`, aligned
	// with Node.AccessDoors, for every node that is an ancestor of a leaf
	// containing door d.
	entries []map[NodeID][]vipEntry
}

// BuildVIPTree constructs a VIP-Tree over the venue.
func BuildVIPTree(v *model.Venue, opts Options) (*VIPTree, error) {
	t, err := BuildIPTree(v, opts)
	if err != nil {
		return nil, err
	}
	return NewVIPTree(t), nil
}

// MustBuildVIPTree is BuildVIPTree but panics on error.
func MustBuildVIPTree(v *model.Venue, opts Options) *VIPTree {
	vt, err := BuildVIPTree(v, opts)
	if err != nil {
		panic(err)
	}
	return vt
}

// NewVIPTree materialises the per-door ancestor distances on top of an
// existing IP-Tree. The IP-Tree is shared, not copied.
func NewVIPTree(t *Tree) *VIPTree {
	vt := &VIPTree{Tree: t, entries: make([]map[NodeID][]vipEntry, t.venue.NumDoors())}
	for d := 0; d < t.venue.NumDoors(); d++ {
		vt.materialiseDoor(model.DoorID(d))
	}
	return vt
}

// Name implements index.DistanceQuerier.
func (vt *VIPTree) Name() string { return "VIP-Tree" }

// materialiseDoor computes the VIP entries of a single door by climbing the
// tree from every leaf containing it, exactly like Algorithm 2 but with the
// door itself as the source.
func (vt *VIPTree) materialiseDoor(d model.DoorID) {
	t := vt.Tree
	vt.entries[d] = make(map[NodeID][]vipEntry)
	dist := make(map[model.DoorID]float64)
	via := make(map[model.DoorID]model.DoorID)

	var climb []NodeID
	for _, leaf := range t.leavesOfDoor[d] {
		// Seed with the leaf matrix distances from d to the leaf's access
		// doors (d is a row of every matrix of a leaf containing it).
		mat := t.nodes[leaf].Matrix
		for _, a := range t.nodes[leaf].AccessDoors {
			md := mat.Dist(d, a)
			if md == Infinite {
				continue
			}
			if cur, ok := dist[a]; !ok || md < cur {
				dist[a] = md
				if a == d {
					via[a] = NoDoor
				} else {
					via[a] = d
				}
			}
		}
		for cur := leaf; cur != invalidNode; cur = t.nodes[cur].Parent {
			climb = append(climb, cur)
		}
	}
	// Propagate upwards along every climb path (deduplicating nodes).
	seen := make(map[NodeID]bool)
	var order []NodeID
	for _, n := range climb {
		if !seen[n] {
			seen[n] = true
			order = append(order, n)
		}
	}
	// Process in increasing level so children are handled before parents.
	sortNodesByLevel(t, order)
	for _, n := range order {
		node := &t.nodes[n]
		if node.IsLeaf() {
			continue
		}
		// Propagate from whichever children already have distances.
		for _, dAccess := range node.AccessDoors {
			best, bestVia := Infinite, NoDoor
			if cur, ok := dist[dAccess]; ok {
				best = cur
				bestVia = via[dAccess]
			}
			for _, c := range node.Children {
				for _, di := range t.nodes[c].AccessDoors {
					base, ok := dist[di]
					if !ok {
						continue
					}
					md := node.Matrix.Dist(di, dAccess)
					if md == Infinite {
						continue
					}
					if base+md < best {
						best = base + md
						if di == dAccess {
							bestVia = via[di]
						} else {
							bestVia = di
						}
					}
				}
			}
			if best < Infinite {
				dist[dAccess] = best
				via[dAccess] = bestVia
			}
		}
	}
	// Record entries for every ancestor node: distance plus the literal
	// first door on the path (computed by decomposing the first hop of the
	// via chain).
	for _, n := range order {
		node := &t.nodes[n]
		es := make([]vipEntry, len(node.AccessDoors))
		for i, a := range node.AccessDoors {
			dv, ok := dist[a]
			if !ok {
				es[i] = vipEntry{dist: Infinite, next: NoDoor}
				continue
			}
			es[i] = vipEntry{dist: dv, next: vt.firstDoorOnPath(d, a, via)}
		}
		vt.entries[d][n] = es
	}
}

// sortNodesByLevel orders node IDs by increasing level (stable by ID).
func sortNodesByLevel(t *Tree, nodes []NodeID) {
	for i := 1; i < len(nodes); i++ {
		for j := i; j > 0; j-- {
			a, b := nodes[j-1], nodes[j]
			if t.nodes[a].Level > t.nodes[b].Level ||
				(t.nodes[a].Level == t.nodes[b].Level && a > b) {
				nodes[j-1], nodes[j] = nodes[j], nodes[j-1]
			} else {
				break
			}
		}
	}
}

// firstDoorOnPath returns the first door after src on the shortest path from
// src to target, following the via chain recorded during materialisation and
// decomposing the first partial edge with the distance matrices.
func (vt *VIPTree) firstDoorOnPath(src, target model.DoorID, via map[model.DoorID]model.DoorID) model.DoorID {
	if src == target {
		return NoDoor
	}
	// Unwind the via chain from target back towards src; the element closest
	// to src on the chain is the first partial hop.
	first := target
	for cur := target; cur != NoDoor; {
		prev, ok := via[cur]
		if !ok || prev == NoDoor || prev == src {
			first = cur
			break
		}
		first = cur
		cur = prev
	}
	return vt.firstDoorOfEdge(src, first, maxDecompose)
}

// firstDoorOfEdge returns the first door after a on the shortest path from a
// to b by repeatedly consulting the matrices' next-hop entries.
func (vt *VIPTree) firstDoorOfEdge(a, b model.DoorID, budget int) model.DoorID {
	t := vt.Tree
	for budget > 0 {
		budget--
		if a == b {
			return NoDoor
		}
		aAccess := len(t.accessNodesOfDoor[a]) > 0
		bAccess := len(t.accessNodesOfDoor[b]) > 0
		if !aAccess && !bAccess {
			return b
		}
		node, swap, ok := t.decompositionNode(a, b)
		if !ok {
			break
		}
		var next model.DoorID
		if swap {
			next = t.nodes[node].Matrix.Next(b, a)
		} else {
			next = t.nodes[node].Matrix.Next(a, b)
		}
		if next == NoDoor {
			return b
		}
		if next == a || next == b {
			break
		}
		b = next
	}
	// Fallback: resolve with a plain graph search (rare).
	_, doors := t.venue.D2D().Path(a, b)
	if len(doors) >= 2 {
		return doors[1]
	}
	return b
}

// entryFor returns the materialised entry for door d towards access door
// `target` of `node`, if present.
func (vt *VIPTree) entryFor(d model.DoorID, node NodeID, target model.DoorID) (vipEntry, bool) {
	byNode, ok := vt.entries[d][node]
	if !ok {
		return vipEntry{}, false
	}
	for i, a := range vt.nodes[node].AccessDoors {
		if a == target {
			return byNode[i], true
		}
	}
	return vipEntry{}, false
}

// Distance implements the VIP-Tree shortest-distance query (Section 3.1.2):
// O(ρ²) lookups via the superior doors of the two partitions and the
// materialised distances to the LCA children's access doors.
func (vt *VIPTree) Distance(s, d model.Location) float64 {
	dist, _, _ := vt.distanceInternalVIP(s, d)
	return dist
}

// vipSide holds the per-side result of a VIP distance query: for each access
// door of the LCA child on that side, the distance from the location and the
// superior door through which it is achieved.
type vipSide struct {
	node NodeID
	dist map[model.DoorID]float64
	via  map[model.DoorID]model.DoorID
}

func (vt *VIPTree) distanceInternalVIP(s, d model.Location) (float64, *vipSide, *vipSide) {
	t := vt.Tree
	if s.Partition == d.Partition {
		return directIntraPartition(t.venue, s, d), nil, nil
	}
	leafS := t.Leaf(s.Partition)
	leafD := t.Leaf(d.Partition)
	if leafS == leafD {
		return t.venue.D2D().LocationDist(s, d), nil, nil
	}
	lca := t.LCA(leafS, leafD)
	ns := t.ChildToward(lca, leafS)
	nt := t.ChildToward(lca, leafD)
	sideS := vt.sideDistances(s, ns)
	sideD := vt.sideDistances(d, nt)
	mat := t.nodes[lca].Matrix
	best := Infinite
	for di, ds := range sideS.dist {
		for dj, dd := range sideD.dist {
			md := mat.Dist(di, dj)
			if md == Infinite {
				continue
			}
			if total := ds + md + dd; total < best {
				best = total
			}
		}
	}
	return best, sideS, sideD
}

// sideDistances computes dist(loc, a) for every access door a of `node` (an
// ancestor of the location's leaf) using only the superior doors of the
// location's partition and the materialised per-door distances — the
// modified Algorithm 2 of Section 3.1.2.
func (vt *VIPTree) sideDistances(loc model.Location, node NodeID) *vipSide {
	t := vt.Tree
	v := t.venue
	side := &vipSide{
		node: node,
		dist: make(map[model.DoorID]float64),
		via:  make(map[model.DoorID]model.DoorID),
	}
	sup := t.superiorDoors[loc.Partition]
	for _, a := range t.nodes[node].AccessDoors {
		best := Infinite
		bestVia := NoDoor
		for _, sdoor := range sup {
			base := v.DistToDoor(loc, sdoor)
			var md float64
			if sdoor == a {
				md = 0
			} else if e, ok := vt.entryFor(sdoor, node, a); ok {
				md = e.dist
			} else {
				md = Infinite
			}
			if md == Infinite {
				continue
			}
			if base+md < best {
				best = base + md
				bestVia = sdoor
			}
		}
		if best < Infinite {
			side.dist[a] = best
			side.via[a] = bestVia
		}
	}
	return side
}

// Path implements the VIP-Tree shortest-path query (Section 3.3): the
// distance computation identifies the superior doors and LCA access doors on
// the optimal path, the materialised next-hop doors expand the segments
// between a door and an ancestor access door, and Algorithm 4 expands the
// segment across the LCA.
func (vt *VIPTree) Path(s, d model.Location) (float64, []model.DoorID) {
	t := vt.Tree
	dist, sideS, sideD, pair := vt.pathSkeleton(s, d)
	if dist == Infinite {
		return dist, nil
	}
	if sideS == nil {
		if s.Partition == d.Partition {
			return dist, nil
		}
		pd, doors := t.venue.D2D().LocationPath(s, d)
		return pd, doors
	}
	supS := sideS.via[pair[0]]
	supD := sideD.via[pair[1]]
	var doors []model.DoorID
	doors = append(doors, vt.expandToAncestorDoor(supS, sideS.node, pair[0])...)
	mid := t.expandEdge(pair[0], pair[1])
	doors = append(doors, mid[1:]...)
	back := vt.expandToAncestorDoor(supD, sideD.node, pair[1])
	for i := len(back) - 2; i >= 0; i-- {
		doors = append(doors, back[i])
	}
	return dist, dedupConsecutive(doors)
}

// pathSkeleton runs the VIP distance query and additionally returns the pair
// of LCA-children access doors realising the minimum.
func (vt *VIPTree) pathSkeleton(s, d model.Location) (float64, *vipSide, *vipSide, [2]model.DoorID) {
	none := [2]model.DoorID{NoDoor, NoDoor}
	dist, sideS, sideD := vt.distanceInternalVIP(s, d)
	if sideS == nil || dist == Infinite {
		return dist, sideS, sideD, none
	}
	t := vt.Tree
	lca := t.LCA(t.Leaf(s.Partition), t.Leaf(d.Partition))
	mat := t.nodes[lca].Matrix
	best := Infinite
	pair := none
	for di, ds := range sideS.dist {
		for dj, dd := range sideD.dist {
			md := mat.Dist(di, dj)
			if md == Infinite {
				continue
			}
			if total := ds + md + dd; total < best {
				best = total
				pair = [2]model.DoorID{di, dj}
			}
		}
	}
	return best, sideS, sideD, pair
}

// expandToAncestorDoor returns the full door sequence from door `from` to
// access door `target` of ancestor node `node`, by repeatedly following the
// materialised next-hop doors. Missing entries fall back to Algorithm 4.
func (vt *VIPTree) expandToAncestorDoor(from model.DoorID, node NodeID, target model.DoorID) []model.DoorID {
	t := vt.Tree
	doors := []model.DoorID{from}
	cur := from
	for step := 0; cur != target && step < maxDecompose; step++ {
		e, ok := vt.entryFor(cur, node, target)
		if !ok {
			// The current door has no materialised entry for this ancestor
			// (the path strayed outside the node); finish with Algorithm 4.
			rest := t.expandEdge(cur, target)
			doors = append(doors, rest[1:]...)
			return doors
		}
		next := e.next
		if next == NoDoor {
			next = target
		}
		if next == cur {
			break
		}
		doors = append(doors, next)
		cur = next
	}
	if cur != target {
		rest := t.expandEdge(cur, target)
		doors = append(doors, rest[1:]...)
	}
	return dedupConsecutive(doors)
}

// MemoryBytes estimates the memory of the VIP-Tree: the underlying IP-Tree
// plus the materialised per-door entries.
func (vt *VIPTree) MemoryBytes() int64 {
	total := vt.Tree.MemoryBytes()
	for _, byNode := range vt.entries {
		for _, es := range byNode {
			total += int64(len(es))*16 + 48
		}
	}
	return total
}
