package iptree

import (
	"sync"
	"time"

	"viptree/internal/model"
)

// This file implements the Vivid IP-Tree (Section 2.2 and Sections 3.1.2 and
// 3.3): an IP-Tree that additionally materialises, for every door, the
// distance and next-hop door to every access door of every ancestor of the
// leaves containing that door. Shortest-distance queries then cost O(ρ²)
// because the upward climb of Algorithm 2 is replaced by direct lookups.

// vipEntry is the materialised information for one (door, ancestor access
// door) pair: the shortest distance and the first door on that shortest path
// (NoDoor if the path contains no other door).
type vipEntry struct {
	dist float64
	next model.DoorID
}

// doorEntries holds the materialised ancestor information of a single door:
// for each ancestor node (of a leaf containing the door), one vipEntry per
// access door of that node, aligned with Node.AccessDoors. The node list is
// short (O(height)), so lookups scan it linearly without allocating.
type doorEntries struct {
	nodes   []NodeID
	perNode [][]vipEntry
}

// forNode returns the entries for the given ancestor node, or nil.
func (de *doorEntries) forNode(n NodeID) []vipEntry {
	for i, id := range de.nodes {
		if id == n {
			return de.perNode[i]
		}
	}
	return nil
}

// VIPTree is a VIP-Tree: an IP-Tree plus the per-door materialised distances.
type VIPTree struct {
	*Tree
	// vpk is the arena form of the per-door materialised entries (arena.go):
	// one int32 slab of ancestor node lists, one float64 slab of distances
	// and one int32 slab of first-door IDs, indexed by per-door offsets. It
	// is the only representation public constructors leave behind.
	vpk *vipPacked
	// entries[d] holds the materialised ancestor entries of door d in the
	// transient per-door form; non-nil only on the unpacked intermediate
	// state (exercised directly by pack_test.go).
	entries []doorEntries
	// vipPool recycles per-query scratch, keeping the warm Distance path
	// allocation-free and safe for concurrent callers.
	vipPool sync.Pool
}

// BuildVIPTree constructs a VIP-Tree over the venue.
func BuildVIPTree(v *model.Venue, opts Options) (*VIPTree, error) {
	t, err := BuildIPTree(v, opts)
	if err != nil {
		return nil, err
	}
	return NewVIPTree(t), nil
}

// MustBuildVIPTree is BuildVIPTree but panics on error.
func MustBuildVIPTree(v *model.Venue, opts Options) *VIPTree {
	vt, err := BuildVIPTree(v, opts)
	if err != nil {
		panic(err)
	}
	return vt
}

// NewVIPTree materialises the per-door ancestor distances on top of an
// existing IP-Tree. The IP-Tree is shared, not copied. Every door's entries
// depend only on the (read-only) tree, so the per-door loop fans out over a
// worker pool (Options.Parallelism) with bit-identical results at any
// parallelism. The materialised tables are frozen into the VIP arena
// (arena.go) before the tree is returned.
func NewVIPTree(t *Tree) *VIPTree {
	vt := newVIPTreeUnpacked(t)
	vt.packVIP(vt.entries)
	vt.entries = nil
	return vt
}

// newVIPTreeUnpacked materialises the per-door tables without the final
// packVIP step; it exists for the packing property tests.
func newVIPTreeUnpacked(t *Tree) *VIPTree {
	start := time.Now()
	numDoors := t.venue.NumDoors()
	vt := &VIPTree{Tree: t, entries: make([]doorEntries, numDoors)}
	workers := min(t.opts.workers(), numDoors)
	scratches := make([]vipScratchBuild, max(workers, 1))
	runParallel(numDoors, workers, func(w, i int) {
		vt.materialiseDoor(model.DoorID(i), &scratches[w])
	})
	t.timings.VIPMaterialise = time.Since(start)
	return vt
}

// Name implements index.DistanceQuerier.
func (vt *VIPTree) Name() string { return "VIP-Tree" }

// materialiseDoor computes the VIP entries of a single door by climbing the
// tree from every leaf containing it, exactly like Algorithm 2 but with the
// door itself as the source. The distance/via working set is the worker's
// dense epoch-stamped door table (no per-door maps); only the flattened
// per-door entry slices consumed by the query hot path are allocated.
func (vt *VIPTree) materialiseDoor(d model.DoorID, sc *vipScratchBuild) {
	t := vt.Tree
	sc.reset(t.venue.NumDoors(), len(t.nodes))
	tab := &sc.tab

	seedLeaf := func(leaf NodeID) {
		// Seed with the leaf matrix distances from d to the leaf's access
		// doors (d is a row of every matrix of a leaf containing it, so its
		// row position is resolved once and the columns swept positionally).
		mat := t.nodes[leaf].Matrix
		if ri, ok := mat.rowIndexOf(d); ok {
			for _, a := range t.nodes[leaf].AccessDoors {
				ci, ok := mat.colIndexOf(a)
				if !ok {
					continue
				}
				md := mat.distAt(ri, ci)
				if md == Infinite {
					continue
				}
				if cur, ok := tab.get(a); !ok || md < cur {
					if a == d {
						tab.set(a, md, NoDoor)
					} else {
						tab.set(a, md, d)
					}
				}
			}
		}
		for cur := leaf; cur != invalidNode; cur = t.nodes[cur].Parent {
			sc.climb = append(sc.climb, cur)
		}
	}
	if t.pk != nil {
		for _, leaf := range t.pk.leavesOfDoor.of(d) {
			seedLeaf(NodeID(leaf))
		}
	} else {
		for _, leaf := range t.leavesOfDoor[d] {
			seedLeaf(leaf)
		}
	}
	// Propagate upwards along every climb path (deduplicating nodes).
	for _, n := range sc.climb {
		if !sc.nodeSeen.has(int(n)) {
			sc.nodeSeen.mark(int(n))
			sc.order = append(sc.order, n)
		}
	}
	// Process in increasing level so children are handled before parents.
	sortNodesByLevel(t, sc.order)
	for _, n := range sc.order {
		node := &t.nodes[n]
		if node.IsLeaf() {
			continue
		}
		// Resolve the matrix row of every child access door once per node;
		// the propagation loop below then reads entries positionally. Doors
		// without a row would contribute only Infinite entries and are
		// dropped up front.
		sc.propDoors = sc.propDoors[:0]
		sc.propRows = sc.propRows[:0]
		for _, c := range node.Children {
			for _, di := range t.nodes[c].AccessDoors {
				if ri, ok := node.Matrix.rowIndexOf(di); ok {
					sc.propDoors = append(sc.propDoors, di)
					sc.propRows = append(sc.propRows, int32(ri))
				}
			}
		}
		// Propagate from whichever children already have distances.
		for _, dAccess := range node.AccessDoors {
			best, bestVia := Infinite, NoDoor
			if cur, ok := tab.get(dAccess); ok {
				best = cur
				bestVia = tab.viaOf(dAccess)
			}
			if ci, ok := node.Matrix.colIndexOf(dAccess); ok {
				for k, di := range sc.propDoors {
					base, ok := tab.get(di)
					if !ok {
						continue
					}
					md := node.Matrix.distAt(int(sc.propRows[k]), ci)
					if md == Infinite {
						continue
					}
					if base+md < best {
						best = base + md
						if di == dAccess {
							bestVia = tab.viaOf(di)
						} else {
							bestVia = di
						}
					}
				}
			}
			if best < Infinite {
				tab.set(dAccess, best, bestVia)
			}
		}
	}
	// Record entries for every ancestor node: distance plus the literal
	// first door on the path (computed by decomposing the first hop of the
	// via chain).
	de := doorEntries{
		nodes:   make([]NodeID, 0, len(sc.order)),
		perNode: make([][]vipEntry, 0, len(sc.order)),
	}
	for _, n := range sc.order {
		node := &t.nodes[n]
		es := make([]vipEntry, len(node.AccessDoors))
		for i, a := range node.AccessDoors {
			dv, ok := tab.get(a)
			if !ok {
				es[i] = vipEntry{dist: Infinite, next: NoDoor}
				continue
			}
			es[i] = vipEntry{dist: dv, next: vt.firstDoorOnPath(d, a, tab)}
		}
		de.nodes = append(de.nodes, n)
		de.perNode = append(de.perNode, es)
	}
	vt.entries[d] = de
}

// sortNodesByLevel orders node IDs by increasing level (stable by ID).
func sortNodesByLevel(t *Tree, nodes []NodeID) {
	for i := 1; i < len(nodes); i++ {
		for j := i; j > 0; j-- {
			a, b := nodes[j-1], nodes[j]
			if t.nodes[a].Level > t.nodes[b].Level ||
				(t.nodes[a].Level == t.nodes[b].Level && a > b) {
				nodes[j-1], nodes[j] = nodes[j], nodes[j-1]
			} else {
				break
			}
		}
	}
}

// firstDoorOnPath returns the first door after src on the shortest path from
// src to target, following the via chain recorded during materialisation and
// decomposing the first partial edge with the distance matrices.
func (vt *VIPTree) firstDoorOnPath(src, target model.DoorID, tab *doorTable) model.DoorID {
	if src == target {
		return NoDoor
	}
	// Unwind the via chain from target back towards src; the element closest
	// to src on the chain is the first partial hop.
	first := target
	for cur := target; cur != NoDoor; {
		if !tab.has(cur) {
			first = cur
			break
		}
		prev := tab.viaOf(cur)
		if prev == NoDoor || prev == src {
			first = cur
			break
		}
		first = cur
		cur = prev
	}
	return vt.firstDoorOfEdge(src, first, maxDecompose)
}

// firstDoorOfEdge returns the first door after a on the shortest path from a
// to b by repeatedly consulting the matrices' next-hop entries.
func (vt *VIPTree) firstDoorOfEdge(a, b model.DoorID, budget int) model.DoorID {
	t := vt.Tree
	for budget > 0 {
		budget--
		if a == b {
			return NoDoor
		}
		if !t.doorIsAccess(a) && !t.doorIsAccess(b) {
			return b
		}
		mat, row, col, ok := t.decompositionEntry(a, b)
		if !ok {
			break
		}
		next := mat.nextAt(row, col)
		if next == NoDoor {
			return b
		}
		if next == a || next == b {
			break
		}
		b = next
	}
	// Fallback: resolve with a plain graph search (rare).
	_, doors := t.venue.D2D().Path(a, b)
	if len(doors) >= 2 {
		return doors[1]
	}
	return b
}

// entriesFor returns the materialised entries of door d towards the access
// doors of `node` (aligned with Node.AccessDoors), or nil when the node is
// not an ancestor of a leaf containing d. Unpacked trees only; the packed
// hot paths use entriesOffset.
func (vt *VIPTree) entriesFor(d model.DoorID, node NodeID) []vipEntry {
	return vt.entries[d].forNode(node)
}

// entriesOffset returns the slab offset of the materialised entries of door
// d towards the access doors of `node` (the block vpk.dist[off:off+|AD|],
// aligned with Node.AccessDoors), walking the door's short ancestor list.
func (vt *VIPTree) entriesOffset(d model.DoorID, node NodeID) (int, bool) {
	pk := vt.vpk
	off := int(pk.entryOff[d])
	for _, id := range pk.nodes[pk.nodesOff[d]:pk.nodesOff[d+1]] {
		if NodeID(id) == node {
			return off, true
		}
		off += len(vt.nodes[id].AccessDoors)
	}
	return 0, false
}

// entryFor returns the materialised entry for door d towards the access door
// at position ti of `node`'s access doors, if present.
func (vt *VIPTree) entryFor(d model.DoorID, node NodeID, ti int) (vipEntry, bool) {
	if vt.vpk != nil {
		off, ok := vt.entriesOffset(d, node)
		if !ok {
			return vipEntry{}, false
		}
		return vipEntry{dist: vt.vpk.dist[off+ti], next: model.DoorID(vt.vpk.next[off+ti])}, true
	}
	es := vt.entriesFor(d, node)
	if es == nil {
		return vipEntry{}, false
	}
	return es[ti], true
}

// Distance implements the VIP-Tree shortest-distance query (Section 3.1.2):
// O(ρ²) lookups via the superior doors of the two partitions and the
// materialised distances to the LCA children's access doors. The warm path
// performs no allocations; scratch is recycled through a pool, so the method
// is safe for concurrent callers.
func (vt *VIPTree) Distance(s, d model.Location) float64 {
	sc := vt.getVIPScratch()
	res := vt.vipQuery(s, d, sc)
	vt.putVIPScratch(sc)
	return res.dist
}

// vipResult is the outcome of one VIP distance computation. When cross is
// true the query crossed leaves and the pair/sup/node fields identify the
// optimal skeleton used by Path; the side data lives in the query scratch.
type vipResult struct {
	dist  float64
	cross bool
	// pair is the pair of LCA-children access doors realising the minimum.
	pair [2]model.DoorID
	// supS, supD are the superior doors of the source and target partitions
	// through which the optimal pair is reached.
	supS, supD model.DoorID
	// nodeS, nodeD are the LCA children on the source and target sides.
	nodeS, nodeD NodeID
}

// vipQuery computes the shortest distance between s and d using the
// materialised entries, writing per-side scratch into sc and tracking the
// optimal path skeleton.
func (vt *VIPTree) vipQuery(s, d model.Location, sc *vipScratch) vipResult {
	t := vt.Tree
	if s.Partition == d.Partition {
		return vipResult{dist: directIntraPartition(t.venue, s, d)}
	}
	leafS := t.Leaf(s.Partition)
	leafD := t.Leaf(d.Partition)
	if leafS == leafD {
		return vipResult{dist: t.venue.D2D().LocationDist(s, d)}
	}
	lca := t.LCA(leafS, leafD)
	ns := t.ChildToward(lca, leafS)
	nt := t.ChildToward(lca, leafD)
	vt.sideDistances(s, ns, &sc.s)
	vt.sideDistances(d, nt, &sc.d)
	mat := t.nodes[lca].Matrix
	res := vipResult{dist: Infinite, cross: true, nodeS: ns, nodeD: nt,
		pair: [2]model.DoorID{NoDoor, NoDoor}, supS: NoDoor, supD: NoDoor}
	if t.pk != nil {
		// Packed: the positions of both children's access doors among the
		// LCA matrix rows/columns are precomputed, so the double loop sweeps
		// the matrix slab positionally — no door lookups.
		rowS := t.pk.adPosInParent[ns]
		colD := t.pk.adPosInParent[nt]
		for i, di := range sc.s.doors {
			ds := sc.s.dist[i]
			if ds == Infinite || rowS[i] < 0 {
				continue
			}
			for j, dj := range sc.d.doors {
				dd := sc.d.dist[j]
				if dd == Infinite || colD[j] < 0 {
					continue
				}
				md := mat.distAt(int(rowS[i]), int(colD[j]))
				if md == Infinite {
					continue
				}
				if total := ds + md + dd; total < res.dist {
					res.dist = total
					res.pair = [2]model.DoorID{di, dj}
					res.supS = sc.s.via[i]
					res.supD = sc.d.via[j]
				}
			}
		}
		return res
	}
	for i, di := range sc.s.doors {
		ds := sc.s.dist[i]
		if ds == Infinite {
			continue
		}
		for j, dj := range sc.d.doors {
			dd := sc.d.dist[j]
			if dd == Infinite {
				continue
			}
			md := mat.Dist(di, dj)
			if md == Infinite {
				continue
			}
			if total := ds + md + dd; total < res.dist {
				res.dist = total
				res.pair = [2]model.DoorID{di, dj}
				res.supS = sc.s.via[i]
				res.supD = sc.d.via[j]
			}
		}
	}
	return res
}

// sideDistances computes dist(loc, a) for every access door a of `node` (an
// ancestor of the location's leaf) using only the superior doors of the
// location's partition and the materialised per-door distances — the
// modified Algorithm 2 of Section 3.1.2. Results are written into side,
// aligned with the node's access doors.
func (vt *VIPTree) sideDistances(loc model.Location, node NodeID, side *vipSide) {
	t := vt.Tree
	v := t.venue
	ads := t.nodes[node].AccessDoors
	side.node = node
	side.doors = ads
	side.resize(len(ads))
	for i := range side.dist {
		side.dist[i] = Infinite
		side.via[i] = NoDoor
	}
	sup := t.SuperiorDoors(loc.Partition)
	if vt.vpk != nil {
		// Packed: each superior door's entry block for this node is one
		// contiguous stretch of the distance slab, scanned sequentially.
		dists := vt.vpk.dist
		for _, sdoor := range sup {
			base := v.DistToDoor(loc, sdoor)
			off, hasEntries := vt.entriesOffset(sdoor, node)
			for i, a := range ads {
				var md float64
				switch {
				case sdoor == a:
					md = 0
				case hasEntries:
					md = dists[off+i]
				default:
					md = Infinite
				}
				if md == Infinite {
					continue
				}
				if base+md < side.dist[i] {
					side.dist[i] = base + md
					side.via[i] = sdoor
				}
			}
		}
		return
	}
	for _, sdoor := range sup {
		base := v.DistToDoor(loc, sdoor)
		es := vt.entriesFor(sdoor, node)
		for i, a := range ads {
			var md float64
			switch {
			case sdoor == a:
				md = 0
			case es != nil:
				md = es[i].dist
			default:
				md = Infinite
			}
			if md == Infinite {
				continue
			}
			if base+md < side.dist[i] {
				side.dist[i] = base + md
				side.via[i] = sdoor
			}
		}
	}
}

// sideDistsOnly is the distance-only form of sideDistances used by the
// batched Distance path, where one side is computed once per distinct
// endpoint and shared by every query in its group, and via doors are not
// needed (batched queries return distances, not paths). dist must be
// len(AccessDoors(node)) long.
func (vt *VIPTree) sideDistsOnly(loc model.Location, node NodeID, dist []float64) {
	t := vt.Tree
	v := t.venue
	ads := t.nodes[node].AccessDoors
	for i := range dist {
		dist[i] = Infinite
	}
	sup := t.SuperiorDoors(loc.Partition)
	if vt.vpk != nil {
		dists := vt.vpk.dist
		for _, sdoor := range sup {
			base := v.DistToDoor(loc, sdoor)
			off, hasEntries := vt.entriesOffset(sdoor, node)
			for i, a := range ads {
				var md float64
				switch {
				case sdoor == a:
					md = 0
				case hasEntries:
					md = dists[off+i]
				default:
					md = Infinite
				}
				if md == Infinite {
					continue
				}
				if base+md < dist[i] {
					dist[i] = base + md
				}
			}
		}
		return
	}
	for _, sdoor := range sup {
		base := v.DistToDoor(loc, sdoor)
		es := vt.entriesFor(sdoor, node)
		for i, a := range ads {
			var md float64
			switch {
			case sdoor == a:
				md = 0
			case es != nil:
				md = es[i].dist
			default:
				md = Infinite
			}
			if md == Infinite {
				continue
			}
			if base+md < dist[i] {
				dist[i] = base + md
			}
		}
	}
}

// Path implements the VIP-Tree shortest-path query (Section 3.3): the
// distance computation identifies the superior doors and LCA access doors on
// the optimal path, the materialised next-hop doors expand the segments
// between a door and an ancestor access door, and Algorithm 4 expands the
// segment across the LCA. Like the IP-Tree Path, the expansion runs on
// pooled scratch and allocates only the returned slice.
func (vt *VIPTree) Path(s, d model.Location) (float64, []model.DoorID) {
	t := vt.Tree
	sc := vt.getVIPScratch()
	res := vt.vipQuery(s, d, sc)
	if res.dist == Infinite {
		vt.putVIPScratch(sc)
		return res.dist, nil
	}
	if !res.cross {
		vt.putVIPScratch(sc)
		if s.Partition == d.Partition {
			return res.dist, nil
		}
		pd, doors := t.venue.D2D().LocationPath(s, d)
		return pd, doors
	}
	ps := &sc.path
	out := vt.expandToAncestorDoorInto(res.supS, res.nodeS, res.pair[0], ps.out[:0], ps)
	out = t.expandEdgeInto(res.pair[0], res.pair[1], out, ps)
	back := vt.expandToAncestorDoorInto(res.supD, res.nodeD, res.pair[1], ps.tmp[:0], ps)
	ps.tmp = back
	for i := len(back) - 2; i >= 0; i-- {
		out = append(out, back[i])
	}
	out = dedupConsecutive(out)
	ps.out = out
	result := make([]model.DoorID, len(out))
	copy(result, out)
	vt.putVIPScratch(sc)
	return res.dist, result
}

// expandToAncestorDoorInto appends the full door sequence from door `from`
// to access door `target` of ancestor node `node` (inclusive of both ends)
// to buf, by repeatedly following the materialised next-hop doors. The
// target's position among the node's access doors is resolved once up
// front, so on a packed tree every hop is a direct read of the door's entry
// block — no per-step scan of the access-door list. Missing entries fall
// back to Algorithm 4.
func (vt *VIPTree) expandToAncestorDoorInto(from model.DoorID, node NodeID, target model.DoorID, buf []model.DoorID, ps *pathScratch) []model.DoorID {
	t := vt.Tree
	ti := -1
	for i, a := range t.nodes[node].AccessDoors {
		if a == target {
			ti = i
			break
		}
	}
	buf = append(buf, from)
	cur := from
	for step := 0; cur != target && step < maxDecompose; step++ {
		var e vipEntry
		ok := ti >= 0
		if ok {
			e, ok = vt.entryFor(cur, node, ti)
		}
		if !ok {
			// The current door has no materialised entry for this ancestor
			// (the path strayed outside the node); finish with Algorithm 4.
			return t.expandEdgeInto(cur, target, buf, ps)
		}
		next := e.next
		if next == NoDoor {
			next = target
		}
		if next == cur {
			break
		}
		buf = append(buf, next)
		cur = next
	}
	if cur != target {
		buf = t.expandEdgeInto(cur, target, buf, ps)
	}
	return buf
}

// MemoryBytes reports the memory of the VIP-Tree: the underlying IP-Tree
// plus the materialised per-door tables — arena-exact slab sizes when
// packed, the per-door struct estimate otherwise.
func (vt *VIPTree) MemoryBytes() int64 {
	total := vt.Tree.MemoryBytes()
	if vt.vpk != nil {
		return total + vt.vpk.arenaBytes()
	}
	for d := range vt.entries {
		de := &vt.entries[d]
		total += int64(len(de.nodes))*sizeofNodeID + 2*sizeofSliceHeader
		for _, es := range de.perNode {
			total += int64(len(es))*int64(8+sizeofDoorID) + sizeofSliceHeader
		}
	}
	return total
}
