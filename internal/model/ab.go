package model

import "viptree/internal/graph"

// ABGraph is the accessibility base graph of a venue (Section 1.2.2): each
// indoor partition is a vertex and each door that connects two partitions is
// an edge between them labelled with the door. Parallel edges (two doors
// connecting the same pair of partitions) are preserved.
//
// The AB graph captures connectivity (which partitions can be reached from
// which) but not indoor distances; the weight of every edge is 1 so that
// graph-level reachability and hop counts are available.
type ABGraph struct {
	Graph *graph.Graph
	// EdgeDoors records, for each pair of directed arcs added for a door,
	// the door that induced it. Indexed identically to the arcs returned by
	// Graph.Neighbors.
	venue *Venue
}

// AB builds and returns the accessibility base graph of the venue.
func (v *Venue) AB() *ABGraph {
	g := graph.New(len(v.Partitions))
	for i := range v.Doors {
		d := &v.Doors[i]
		if len(d.Partitions) == 2 {
			g.AddEdge(int(d.Partitions[0]), int(d.Partitions[1]), 1)
		}
	}
	return &ABGraph{Graph: g, venue: v}
}

// ReachablePartitions returns all partitions reachable from p in the AB
// graph, including p itself.
func (a *ABGraph) ReachablePartitions(p PartitionID) []PartitionID {
	dist, _ := a.Graph.FromSource(int(p))
	var out []PartitionID
	for v, d := range dist {
		if d != graph.Infinity {
			out = append(out, PartitionID(v))
		}
	}
	return out
}

// HopCount returns the minimum number of doors to pass through to travel from
// partition a to partition b, or -1 if b is unreachable.
func (a *ABGraph) HopCount(from, to PartitionID) int {
	d := a.Graph.ShortestDist(int(from), int(to))
	if d == graph.Infinity {
		return -1
	}
	return int(d)
}
