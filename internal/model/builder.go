package model

import (
	"fmt"

	"viptree/internal/geom"
)

// Builder assembles a Venue incrementally. The typical sequence is:
//
//	b := model.NewBuilder("My Building")
//	room := b.AddPartition("room 1", model.ClassRoom, bounds, 0)
//	hall := b.AddPartition("hallway", model.ClassHallway, hallBounds, 0)
//	b.AddDoor("d1", doorLoc, room, hall)
//	v, err := b.Build()
//
// Build validates the topology (every partition has at least one door, door
// partition references are valid, the D2D graph is connected unless
// AllowDisconnected is set) and materialises the D2D graph.
type Builder struct {
	name              string
	hallwayThreshold  int
	doors             []Door
	partitions        []Partition
	outdoor           []OutdoorEdge
	allowDisconnected bool
}

// NewBuilder returns a Builder for a venue with the given name and the
// default hallway threshold β.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, hallwayThreshold: DefaultHallwayThreshold}
}

// SetHallwayThreshold overrides the paper's β parameter (default 4).
func (b *Builder) SetHallwayThreshold(beta int) *Builder {
	b.hallwayThreshold = beta
	return b
}

// AllowDisconnected disables the connectivity check in Build. It is useful
// for tests that deliberately construct partial venues.
func (b *Builder) AllowDisconnected() *Builder {
	b.allowDisconnected = true
	return b
}

// AddPartition appends a partition and returns its ID. traversalCost may be
// zero for ordinary partitions; a positive value overrides intra-partition
// door-to-door distances (used for stairs, lifts, escalators).
func (b *Builder) AddPartition(name string, class Class, bounds geom.Rect, traversalCost float64) PartitionID {
	id := PartitionID(len(b.partitions))
	b.partitions = append(b.partitions, Partition{
		ID:            id,
		Name:          name,
		Class:         class,
		Bounds:        bounds,
		TraversalCost: traversalCost,
	})
	return id
}

// AddDoor appends a door connecting partitions p1 and p2 and returns its ID.
// Pass NoPartition for p2 to create an exterior door (e.g. a building
// entrance).
func (b *Builder) AddDoor(name string, loc geom.Point, p1, p2 PartitionID) DoorID {
	id := DoorID(len(b.doors))
	parts := []PartitionID{p1}
	if p2 != NoPartition {
		parts = append(parts, p2)
	}
	b.doors = append(b.doors, Door{ID: id, Name: name, Loc: loc, Partitions: parts})
	return id
}

// AddOutdoorEdge adds an explicit D2D edge between two doors with the given
// weight, e.g. the outdoor footpath between two building entrances.
func (b *Builder) AddOutdoorEdge(from, to DoorID, weight float64) {
	b.outdoor = append(b.outdoor, OutdoorEdge{From: from, To: to, Weight: weight})
}

// NumDoors returns the number of doors added so far.
func (b *Builder) NumDoors() int { return len(b.doors) }

// NumPartitions returns the number of partitions added so far.
func (b *Builder) NumPartitions() int { return len(b.partitions) }

// Build validates the venue and materialises its D2D graph.
func (b *Builder) Build() (*Venue, error) {
	v := &Venue{
		Name:             b.name,
		HallwayThreshold: b.hallwayThreshold,
		Doors:            b.doors,
		Partitions:       b.partitions,
		OutdoorEdges:     b.outdoor,
	}
	// Populate partition door lists from the doors.
	for i := range v.Doors {
		d := &v.Doors[i]
		if len(d.Partitions) == 0 {
			return nil, fmt.Errorf("model: door %d (%s) connects no partition", d.ID, d.Name)
		}
		seen := make(map[PartitionID]bool, 2)
		for _, pid := range d.Partitions {
			if pid < 0 || int(pid) >= len(v.Partitions) {
				return nil, fmt.Errorf("model: door %d (%s) references unknown partition %d", d.ID, d.Name, pid)
			}
			if seen[pid] {
				return nil, fmt.Errorf("model: door %d (%s) references partition %d twice", d.ID, d.Name, pid)
			}
			seen[pid] = true
			v.Partitions[pid].Doors = append(v.Partitions[pid].Doors, d.ID)
		}
	}
	for i := range v.Partitions {
		if len(v.Partitions[i].Doors) == 0 {
			return nil, fmt.Errorf("model: partition %d (%s) has no doors", i, v.Partitions[i].Name)
		}
	}
	for _, e := range v.OutdoorEdges {
		if int(e.From) >= len(v.Doors) || int(e.To) >= len(v.Doors) || e.From < 0 || e.To < 0 {
			return nil, fmt.Errorf("model: outdoor edge references unknown door (%d-%d)", e.From, e.To)
		}
		if e.Weight < 0 {
			return nil, fmt.Errorf("model: outdoor edge %d-%d has negative weight %v", e.From, e.To, e.Weight)
		}
	}
	v.d2d = buildD2D(v)
	if !b.allowDisconnected && len(v.Doors) > 1 && !v.d2d.Graph.Connected() {
		return nil, fmt.Errorf("model: venue %q has a disconnected door-to-door graph", v.Name)
	}
	return v, nil
}

// MustBuild is like Build but panics on error. It is intended for tests and
// hard-coded example venues.
func (b *Builder) MustBuild() *Venue {
	v, err := b.Build()
	if err != nil {
		panic(err)
	}
	return v
}
