package model

import (
	"sync"

	"viptree/internal/graph"
)

// D2DGraph is the door-to-door graph of a venue (Section 1.2.2): each door is
// a vertex, and a weighted edge connects two doors if they belong to the same
// indoor partition, with the weight being the indoor distance between them.
// Outdoor edges (e.g. between building entrances) are added verbatim.
//
// The vertex identifier of door d is int(d). The graph is immutable after
// construction; expansion scratch is pooled, so queries are allocation-free
// on the warm path and safe for concurrent callers.
type D2DGraph struct {
	Graph *graph.Graph
	venue *Venue

	// searchPool recycles the dense Dijkstra scratch of LocationDist.
	searchPool sync.Pool
}

// buildD2D materialises the D2D graph for v.
func buildD2D(v *Venue) *D2DGraph {
	g := graph.New(len(v.Doors))
	for pi := range v.Partitions {
		p := &v.Partitions[pi]
		for i := 0; i < len(p.Doors); i++ {
			for j := i + 1; j < len(p.Doors); j++ {
				a, b := p.Doors[i], p.Doors[j]
				w := v.IntraPartitionDist(p.ID, a, b)
				g.AddEdge(int(a), int(b), w)
			}
		}
	}
	for _, e := range v.OutdoorEdges {
		g.AddEdge(int(e.From), int(e.To), e.Weight)
	}
	return &D2DGraph{Graph: g, venue: v}
}

// D2D returns the door-to-door graph of the venue. The graph is built once by
// the Builder and shared by all indexes.
func (v *Venue) D2D() *D2DGraph { return v.d2d }

// Dist returns the shortest door-to-door distance between doors a and b using
// Dijkstra's algorithm on the D2D graph. It is the ground-truth distance used
// in tests and by the expansion-based DistAw baseline.
func (d *D2DGraph) Dist(a, b DoorID) float64 {
	return d.Graph.ShortestDist(int(a), int(b))
}

// Path returns the shortest door-to-door path between doors a and b (as door
// IDs) and its length. It returns a nil path if b is unreachable from a.
func (d *D2DGraph) Path(a, b DoorID) (float64, []DoorID) {
	dist, p := d.Graph.ShortestPath(int(a), int(b))
	if p == nil {
		return dist, nil
	}
	doors := make([]DoorID, len(p))
	for i, v := range p {
		doors[i] = DoorID(v)
	}
	return dist, doors
}

// LocationDist computes the exact shortest indoor distance between two
// arbitrary locations by Dijkstra expansion over the D2D graph. It is the
// ground truth against which all indexes are verified, and also the engine
// of the DistAw baseline.
//
// If s and t are in the same partition the distance is the direct
// intra-partition distance (possibly beaten by a path leaving and re-entering
// through doors, which cannot happen with convex partitions, so the direct
// distance is used).
func (d *D2DGraph) LocationDist(s, t Location) float64 {
	v := d.venue
	if s.Partition == t.Partition {
		return directIntraDist(v, s, t)
	}
	// Temporary virtual vertices would complicate the graph; instead run a
	// multi-source expansion seeded with the distances from s to the doors
	// of its partition (a single Dijkstra from a virtual source), and finish
	// once the doors of t's partition are settled.
	sp := v.Partition(s.Partition)
	tp := v.Partition(t.Partition)
	sc := d.getSearch()
	sc.reset(len(v.Doors))
	for _, did := range sp.Doors {
		sc.relax(did, v.DistToDoor(s, did))
	}
	pending := 0
	for _, did := range tp.Doors {
		if sc.markTarget(did) {
			pending++
		}
	}
	for len(sc.heap) > 0 && pending > 0 {
		it := sc.pop()
		if sc.isSettled(it.door) {
			continue
		}
		sc.settle(it.door)
		if sc.isTarget(it.door) {
			pending--
		}
		for _, e := range d.Graph.Neighbors(int(it.door)) {
			sc.relax(DoorID(e.To), it.dist+e.Weight)
		}
	}
	best := graph.Infinity
	for _, did := range tp.Doors {
		if dv, ok := sc.settledDist(did); ok {
			total := dv + v.DistToDoor(t, did)
			if total < best {
				best = total
			}
		}
	}
	d.putSearch(sc)
	return best
}

// LocationPath computes the exact shortest path between two locations as the
// sequence of doors traversed, along with its total length.
func (d *D2DGraph) LocationPath(s, t Location) (float64, []DoorID) {
	v := d.venue
	if s.Partition == t.Partition {
		return directIntraDist(v, s, t), nil
	}
	sp := v.Partition(s.Partition)
	tp := v.Partition(t.Partition)
	best := graph.Infinity
	var bestPath []DoorID
	for _, sd := range sp.Doors {
		dists, prev := d.Graph.ToTargets(int(sd), doorsToInts(tp.Doors))
		for _, td := range tp.Doors {
			dv := dists[int(td)]
			if dv == graph.Infinity {
				continue
			}
			total := v.DistToDoor(s, sd) + dv + v.DistToDoor(t, td)
			if total < best {
				best = total
				p := graph.PathOnPrev(prev, int(sd), int(td))
				bestPath = intsToDoors(p)
			}
		}
	}
	return best, bestPath
}

// d2dSearch is the reusable dense scratch of one LocationDist expansion: a
// multi-source Dijkstra over door IDs (which are contiguous ordinals into
// Venue.Doors). Presence is tracked with epoch stamps so reset is O(1), and
// the binary heap's backing array is kept across queries, making a warm
// expansion allocation-free.
type d2dSearch struct {
	dist []float64
	// reachedAt/settledAt/targetAt mark per-door state for the current
	// epoch: a door is reached/settled/a-target only if its stamp equals
	// the current epoch.
	reachedAt []uint32
	settledAt []uint32
	targetAt  []uint32
	epoch     uint32
	heap      []d2dQItem
}

type d2dQItem struct {
	door DoorID
	dist float64
}

func (sc *d2dSearch) reset(n int) {
	if len(sc.dist) < n {
		sc.dist = make([]float64, n)
		sc.reachedAt = make([]uint32, n)
		sc.settledAt = make([]uint32, n)
		sc.targetAt = make([]uint32, n)
		sc.epoch = 1
	} else {
		sc.epoch++
		if sc.epoch == 0 { // epoch wrapped: clear the stamps and restart
			for i := range sc.reachedAt {
				sc.reachedAt[i] = 0
				sc.settledAt[i] = 0
				sc.targetAt[i] = 0
			}
			sc.epoch = 1
		}
	}
	sc.heap = sc.heap[:0]
}

// relax records a candidate distance to door d, pushing it on the heap when
// it improves the best known distance.
func (sc *d2dSearch) relax(d DoorID, dist float64) {
	if sc.settledAt[d] == sc.epoch {
		return
	}
	if sc.reachedAt[d] == sc.epoch && sc.dist[d] <= dist {
		return
	}
	sc.reachedAt[d] = sc.epoch
	sc.dist[d] = dist
	sc.push(d2dQItem{door: d, dist: dist})
}

func (sc *d2dSearch) settle(d DoorID)         { sc.settledAt[d] = sc.epoch }
func (sc *d2dSearch) isSettled(d DoorID) bool { return sc.settledAt[d] == sc.epoch }
func (sc *d2dSearch) isTarget(d DoorID) bool  { return sc.targetAt[d] == sc.epoch }

// markTarget marks d as a pending target, reporting whether it was new.
func (sc *d2dSearch) markTarget(d DoorID) bool {
	if sc.targetAt[d] == sc.epoch {
		return false
	}
	sc.targetAt[d] = sc.epoch
	return true
}

// settledDist returns the settled distance of door d, if the expansion
// reached it.
func (sc *d2dSearch) settledDist(d DoorID) (float64, bool) {
	if sc.settledAt[d] != sc.epoch {
		return graph.Infinity, false
	}
	return sc.dist[d], true
}

func (sc *d2dSearch) push(it d2dQItem) {
	sc.heap = append(sc.heap, it)
	h := sc.heap
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p].dist <= h[i].dist {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func (sc *d2dSearch) pop() d2dQItem {
	h := sc.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	sc.heap = h[:last]
	h = sc.heap
	for i := 0; ; {
		l := 2*i + 1
		if l >= len(h) {
			break
		}
		small := l
		if r := l + 1; r < len(h) && h[r].dist < h[l].dist {
			small = r
		}
		if h[i].dist <= h[small].dist {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return top
}

func (d *D2DGraph) getSearch() *d2dSearch {
	sc, _ := d.searchPool.Get().(*d2dSearch)
	if sc == nil {
		sc = &d2dSearch{}
	}
	return sc
}

func (d *D2DGraph) putSearch(sc *d2dSearch) { d.searchPool.Put(sc) }

// directIntraDist is the walking distance between two locations in the same
// partition.
func directIntraDist(v *Venue, s, t Location) float64 {
	p := v.Partition(s.Partition)
	if p.TraversalCost > 0 {
		return p.TraversalCost
	}
	return s.Point.PlanarDist(t.Point)
}

func doorsToInts(ds []DoorID) []int {
	out := make([]int, len(ds))
	for i, d := range ds {
		out[i] = int(d)
	}
	return out
}

func intsToDoors(vs []int) []DoorID {
	out := make([]DoorID, len(vs))
	for i, v := range vs {
		out[i] = DoorID(v)
	}
	return out
}
