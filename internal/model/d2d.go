package model

import (
	"viptree/internal/graph"
)

// D2DGraph is the door-to-door graph of a venue (Section 1.2.2): each door is
// a vertex, and a weighted edge connects two doors if they belong to the same
// indoor partition, with the weight being the indoor distance between them.
// Outdoor edges (e.g. between building entrances) are added verbatim.
//
// The vertex identifier of door d is int(d).
type D2DGraph struct {
	Graph *graph.Graph
	venue *Venue
}

// buildD2D materialises the D2D graph for v.
func buildD2D(v *Venue) *D2DGraph {
	g := graph.New(len(v.Doors))
	for pi := range v.Partitions {
		p := &v.Partitions[pi]
		for i := 0; i < len(p.Doors); i++ {
			for j := i + 1; j < len(p.Doors); j++ {
				a, b := p.Doors[i], p.Doors[j]
				w := v.IntraPartitionDist(p.ID, a, b)
				g.AddEdge(int(a), int(b), w)
			}
		}
	}
	for _, e := range v.OutdoorEdges {
		g.AddEdge(int(e.From), int(e.To), e.Weight)
	}
	return &D2DGraph{Graph: g, venue: v}
}

// D2D returns the door-to-door graph of the venue. The graph is built once by
// the Builder and shared by all indexes.
func (v *Venue) D2D() *D2DGraph { return v.d2d }

// Dist returns the shortest door-to-door distance between doors a and b using
// Dijkstra's algorithm on the D2D graph. It is the ground-truth distance used
// in tests and by the expansion-based DistAw baseline.
func (d *D2DGraph) Dist(a, b DoorID) float64 {
	return d.Graph.ShortestDist(int(a), int(b))
}

// Path returns the shortest door-to-door path between doors a and b (as door
// IDs) and its length. It returns a nil path if b is unreachable from a.
func (d *D2DGraph) Path(a, b DoorID) (float64, []DoorID) {
	dist, p := d.Graph.ShortestPath(int(a), int(b))
	if p == nil {
		return dist, nil
	}
	doors := make([]DoorID, len(p))
	for i, v := range p {
		doors[i] = DoorID(v)
	}
	return dist, doors
}

// LocationDist computes the exact shortest indoor distance between two
// arbitrary locations by Dijkstra expansion over the D2D graph. It is the
// ground truth against which all indexes are verified, and also the engine
// of the DistAw baseline.
//
// If s and t are in the same partition the distance is the direct
// intra-partition distance (possibly beaten by a path leaving and re-entering
// through doors, which cannot happen with convex partitions, so the direct
// distance is used).
func (d *D2DGraph) LocationDist(s, t Location) float64 {
	v := d.venue
	if s.Partition == t.Partition {
		return directIntraDist(v, s, t)
	}
	// Temporary virtual vertices would complicate the graph; instead run a
	// multi-source expansion seeded with the distances from s to the doors
	// of its partition, and finish at the doors of t's partition.
	sp := v.Partition(s.Partition)
	tp := v.Partition(t.Partition)
	best := graph.Infinity
	// dist from s to each door of Partition(s)
	seed := make(map[DoorID]float64, len(sp.Doors))
	for _, did := range sp.Doors {
		seed[did] = v.DistToDoor(s, did)
	}
	// single Dijkstra from a virtual source: implement by running Dijkstra
	// on the D2D graph with multiple seeded sources.
	dist := d.multiSourceToTargets(seed, tp.Doors)
	for _, did := range tp.Doors {
		if dv, ok := dist[did]; ok {
			total := dv + v.DistToDoor(t, did)
			if total < best {
				best = total
			}
		}
	}
	return best
}

// LocationPath computes the exact shortest path between two locations as the
// sequence of doors traversed, along with its total length.
func (d *D2DGraph) LocationPath(s, t Location) (float64, []DoorID) {
	v := d.venue
	if s.Partition == t.Partition {
		return directIntraDist(v, s, t), nil
	}
	sp := v.Partition(s.Partition)
	tp := v.Partition(t.Partition)
	best := graph.Infinity
	var bestPath []DoorID
	for _, sd := range sp.Doors {
		dists, prev := d.Graph.ToTargets(int(sd), doorsToInts(tp.Doors))
		for _, td := range tp.Doors {
			dv := dists[int(td)]
			if dv == graph.Infinity {
				continue
			}
			total := v.DistToDoor(s, sd) + dv + v.DistToDoor(t, td)
			if total < best {
				best = total
				p := graph.PathOnPrev(prev, int(sd), int(td))
				bestPath = intsToDoors(p)
			}
		}
	}
	return best, bestPath
}

// multiSourceToTargets runs a Dijkstra expansion seeded with several source
// doors at given initial distances, stopping when all targets are settled.
func (d *D2DGraph) multiSourceToTargets(seeds map[DoorID]float64, targets []DoorID) map[DoorID]float64 {
	type qitem struct {
		door DoorID
		dist float64
	}
	// Simple lazy-deletion heap reusing the graph package would need an
	// exported multi-source API; a local slice-based heap keeps the model
	// package self-contained.
	settled := make(map[DoorID]float64)
	pendingTargets := make(map[DoorID]bool, len(targets))
	for _, t := range targets {
		pendingTargets[t] = true
	}
	bestKnown := make(map[DoorID]float64, len(seeds))
	heap := make([]qitem, 0, len(seeds))
	push := func(it qitem) {
		heap = append(heap, it)
		i := len(heap) - 1
		for i > 0 {
			p := (i - 1) / 2
			if heap[p].dist <= heap[i].dist {
				break
			}
			heap[p], heap[i] = heap[i], heap[p]
			i = p
		}
	}
	pop := func() qitem {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		i := 0
		for {
			l := 2*i + 1
			if l >= len(heap) {
				break
			}
			small := l
			if r := l + 1; r < len(heap) && heap[r].dist < heap[l].dist {
				small = r
			}
			if heap[i].dist <= heap[small].dist {
				break
			}
			heap[i], heap[small] = heap[small], heap[i]
			i = small
		}
		return top
	}
	for door, dist := range seeds {
		bestKnown[door] = dist
		push(qitem{door: door, dist: dist})
	}
	for len(heap) > 0 && len(pendingTargets) > 0 {
		it := pop()
		if _, done := settled[it.door]; done {
			continue
		}
		settled[it.door] = it.dist
		delete(pendingTargets, it.door)
		for _, e := range d.Graph.Neighbors(int(it.door)) {
			nd := it.dist + e.Weight
			to := DoorID(e.To)
			if old, ok := bestKnown[to]; !ok || nd < old {
				bestKnown[to] = nd
				push(qitem{door: to, dist: nd})
			}
		}
	}
	return settled
}

// directIntraDist is the walking distance between two locations in the same
// partition.
func directIntraDist(v *Venue, s, t Location) float64 {
	p := v.Partition(s.Partition)
	if p.TraversalCost > 0 {
		return p.TraversalCost
	}
	return s.Point.PlanarDist(t.Point)
}

func doorsToInts(ds []DoorID) []int {
	out := make([]int, len(ds))
	for i, d := range ds {
		out[i] = int(d)
	}
	return out
}

func intsToDoors(vs []int) []DoorID {
	out := make([]DoorID, len(vs))
	for i, v := range vs {
		out[i] = DoorID(v)
	}
	return out
}
