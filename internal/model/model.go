// Package model implements the indoor data model used throughout the
// repository: doors, indoor partitions (rooms, hallways, staircases, lifts),
// venues, and the two graphs derived from them — the door-to-door (D2D)
// graph and the accessibility base (AB) graph described in Section 1.2.2 of
// the paper.
//
// A venue is built with a Builder, which validates the topology and
// materialises the D2D graph. All indexes in this repository (IP-Tree,
// VIP-Tree, the distance matrix, DistAw, G-tree, ROAD) consume a *Venue.
package model

import (
	"fmt"

	"viptree/internal/geom"
)

// DoorID identifies a door within a venue. Door IDs are dense indices into
// Venue.Doors and double as vertex identifiers in the D2D graph.
type DoorID int

// PartitionID identifies an indoor partition within a venue. Partition IDs
// are dense indices into Venue.Partitions and double as vertex identifiers
// in the AB graph.
type PartitionID int

// NoPartition marks the absence of a partition, e.g. the outdoor side of a
// building entrance door.
const NoPartition PartitionID = -1

// DefaultHallwayThreshold is the paper's β parameter: a partition with more
// than β doors is a hallway partition. The paper uses β = 4.
const DefaultHallwayThreshold = 4

// Class describes the real-world role of a partition. The role is
// informational (it drives synthetic venue generation, object placement and
// traversal costs); the paper's no-through / general / hallway
// classification is computed from the door count and β, see Partition.Kind.
type Class int

// Partition classes.
const (
	ClassRoom Class = iota
	ClassHallway
	ClassStaircase
	ClassLift
	ClassEscalator
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassRoom:
		return "room"
	case ClassHallway:
		return "hallway"
	case ClassStaircase:
		return "staircase"
	case ClassLift:
		return "lift"
	case ClassEscalator:
		return "escalator"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Kind is the paper's partition classification (Section 2): a no-through
// partition has exactly one door, a hallway partition has more than β doors,
// and every other partition is a general partition.
type Kind int

// Partition kinds following Section 2 of the paper.
const (
	KindNoThrough Kind = iota
	KindGeneral
	KindHallway
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindNoThrough:
		return "no-through"
	case KindGeneral:
		return "general"
	case KindHallway:
		return "hallway"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Door is a connection point between at most two indoor partitions, or
// between a partition and the outside of the venue.
type Door struct {
	ID   DoorID
	Name string
	// Loc is the position of the door. Doors of staircases and lifts have
	// the floor of the partition side they open onto.
	Loc geom.Point
	// Partitions lists the partitions this door belongs to: one entry for an
	// exterior door, two for an interior door.
	Partitions []PartitionID
}

// ConnectsPartition reports whether the door belongs to partition p.
func (d *Door) ConnectsPartition(p PartitionID) bool {
	for _, q := range d.Partitions {
		if q == p {
			return true
		}
	}
	return false
}

// OtherPartition returns the partition on the other side of the door from p,
// or NoPartition if the door is exterior or does not belong to p.
func (d *Door) OtherPartition(p PartitionID) PartitionID {
	if len(d.Partitions) != 2 {
		return NoPartition
	}
	switch p {
	case d.Partitions[0]:
		return d.Partitions[1]
	case d.Partitions[1]:
		return d.Partitions[0]
	default:
		return NoPartition
	}
}

// Partition is an indoor partition: a room, hallway, staircase, lift or
// escalator segment. A staircase or escalator connecting two floors is a
// single partition with one door on each floor; a lift spanning n floors is
// modelled as n-1 partitions, each connecting two consecutive floors
// (Section 2).
type Partition struct {
	ID     PartitionID
	Name   string
	Class  Class
	Bounds geom.Rect
	// Doors lists the doors on the boundary of this partition.
	Doors []DoorID
	// TraversalCost, when positive, overrides the intra-partition distance
	// between every pair of the partition's doors. It models the walking
	// cost (or travel time) of stairs, lifts and escalators, whose geometry
	// does not reflect the effort of moving between floors.
	TraversalCost float64
}

// HasDoor reports whether door d lies on the boundary of the partition.
func (p *Partition) HasDoor(d DoorID) bool {
	for _, q := range p.Doors {
		if q == d {
			return true
		}
	}
	return false
}

// Venue is a complete indoor space: a set of partitions connected by doors,
// optionally augmented with outdoor edges between building entrances (used
// by campus data sets, Section 4.1). Venues are immutable once built.
type Venue struct {
	Name string
	// HallwayThreshold is the paper's β parameter used to classify hallway
	// partitions. The default is DefaultHallwayThreshold.
	HallwayThreshold int

	Doors      []Door
	Partitions []Partition

	// OutdoorEdges are explicit door-to-door edges outside any partition,
	// e.g. footpaths between the entrance doors of different buildings.
	OutdoorEdges []OutdoorEdge

	d2d *D2DGraph
}

// OutdoorEdge is an explicit edge of the D2D graph between two doors that is
// not induced by a shared partition (e.g. the outdoor path between the
// entrances of two campus buildings).
type OutdoorEdge struct {
	From, To DoorID
	Weight   float64
}

// NumDoors returns the number of doors in the venue.
func (v *Venue) NumDoors() int { return len(v.Doors) }

// NumPartitions returns the number of indoor partitions in the venue.
func (v *Venue) NumPartitions() int { return len(v.Partitions) }

// Door returns the door with the given ID. It panics if the ID is out of
// range, which always indicates a programming error.
func (v *Venue) Door(id DoorID) *Door { return &v.Doors[id] }

// Partition returns the partition with the given ID. It panics if the ID is
// out of range.
func (v *Venue) Partition(id PartitionID) *Partition { return &v.Partitions[id] }

// Kind returns the paper's classification of partition p: no-through,
// general or hallway (Section 2).
func (v *Venue) Kind(p PartitionID) Kind {
	part := v.Partition(p)
	beta := v.HallwayThreshold
	if beta <= 0 {
		beta = DefaultHallwayThreshold
	}
	switch {
	case len(part.Doors) <= 1:
		return KindNoThrough
	case len(part.Doors) > beta:
		return KindHallway
	default:
		return KindGeneral
	}
}

// AdjacentPartitions returns the partitions sharing at least one door with p,
// excluding p itself, in ascending order without duplicates.
func (v *Venue) AdjacentPartitions(p PartitionID) []PartitionID {
	seen := make(map[PartitionID]bool)
	var out []PartitionID
	for _, did := range v.Partition(p).Doors {
		other := v.Door(did).OtherPartition(p)
		if other != NoPartition && !seen[other] {
			seen[other] = true
			out = append(out, other)
		}
	}
	sortPartitionIDs(out)
	return out
}

// CommonDoors returns the doors shared by partitions a and b.
func (v *Venue) CommonDoors(a, b PartitionID) []DoorID {
	var out []DoorID
	for _, did := range v.Partition(a).Doors {
		if v.Door(did).ConnectsPartition(b) {
			out = append(out, did)
		}
	}
	return out
}

// UsefulDoors returns the doors of partition p worth considering as the exit
// (or entry) doors of a query between p and partition other: doors that only
// lead into a no-through partition are skipped, unless that partition is the
// other query endpoint itself. This is the optimisation of Section 4.3.1,
// shared by the baselines that enumerate door pairs.
func (v *Venue) UsefulDoors(p, other PartitionID) []DoorID {
	doors := v.Partition(p).Doors
	useful := make([]DoorID, 0, len(doors))
	for _, d := range doors {
		op := v.Door(d).OtherPartition(p)
		if op != NoPartition && op != other && v.Kind(op) == KindNoThrough {
			continue
		}
		useful = append(useful, d)
	}
	if len(useful) == 0 {
		return doors
	}
	return useful
}

// IntraPartitionDist returns the indoor walking distance between two doors of
// the same partition p. For staircases, lifts and escalators the partition's
// TraversalCost is used; otherwise the planar Euclidean distance between the
// door locations.
func (v *Venue) IntraPartitionDist(p PartitionID, a, b DoorID) float64 {
	part := v.Partition(p)
	if part.TraversalCost > 0 {
		return part.TraversalCost
	}
	return v.Door(a).Loc.PlanarDist(v.Door(b).Loc)
}

// DistToDoor returns the walking distance from a location inside partition p
// to one of p's doors. For partitions with a traversal cost the cost is used
// (a point "inside" a staircase is treated as one landing away from either
// door); otherwise the planar Euclidean distance.
func (v *Venue) DistToDoor(loc Location, d DoorID) float64 {
	part := v.Partition(loc.Partition)
	if part.TraversalCost > 0 {
		return part.TraversalCost / 2
	}
	return loc.Point.PlanarDist(v.Door(d).Loc)
}

// Floors returns the number of distinct floors spanned by the venue's
// partitions.
func (v *Venue) Floors() int {
	floors := make(map[int]bool)
	for i := range v.Partitions {
		floors[v.Partitions[i].Bounds.Floor] = true
	}
	return len(floors)
}

func sortPartitionIDs(ids []PartitionID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// Location is a point inside a specific partition of a venue. Query sources,
// targets and indexed objects are all Locations.
type Location struct {
	Partition PartitionID
	Point     geom.Point
}

// String implements fmt.Stringer.
func (l Location) String() string {
	return fmt.Sprintf("P%d@%s", l.Partition, l.Point)
}
