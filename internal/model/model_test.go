package model

import (
	"math"
	"math/rand"
	"testing"

	"viptree/internal/geom"
)

// buildOfficeFloor constructs a small single-floor office: a hallway with
// six rooms attached plus one exterior entrance door.
//
//	+----+----+----+
//	| R1 | R2 | R3 |
//	+-d1-+-d2-+-d3-+
//	|   hallway    |--d0 (exterior)
//	+-d4-+-d5-+-d6-+
//	| R4 | R5 | R6 |
//	+----+----+----+
func buildOfficeFloor(t *testing.T) (*Venue, map[string]PartitionID, map[string]DoorID) {
	t.Helper()
	b := NewBuilder("office-floor")
	parts := map[string]PartitionID{}
	doors := map[string]DoorID{}
	hall := b.AddPartition("hallway", ClassHallway, geom.NewRect(0, 10, 30, 14, 0), 0)
	parts["hall"] = hall
	roomCoords := []struct {
		name string
		rect geom.Rect
		door geom.Point
	}{
		{"R1", geom.NewRect(0, 14, 10, 20, 0), geom.Point{X: 5, Y: 14, Floor: 0}},
		{"R2", geom.NewRect(10, 14, 20, 20, 0), geom.Point{X: 15, Y: 14, Floor: 0}},
		{"R3", geom.NewRect(20, 14, 30, 20, 0), geom.Point{X: 25, Y: 14, Floor: 0}},
		{"R4", geom.NewRect(0, 4, 10, 10, 0), geom.Point{X: 5, Y: 10, Floor: 0}},
		{"R5", geom.NewRect(10, 4, 20, 10, 0), geom.Point{X: 15, Y: 10, Floor: 0}},
		{"R6", geom.NewRect(20, 4, 30, 10, 0), geom.Point{X: 25, Y: 10, Floor: 0}},
	}
	for _, rc := range roomCoords {
		pid := b.AddPartition(rc.name, ClassRoom, rc.rect, 0)
		parts[rc.name] = pid
		did := b.AddDoor("door-"+rc.name, rc.door, pid, hall)
		doors[rc.name] = did
	}
	doors["entrance"] = b.AddDoor("entrance", geom.Point{X: 30, Y: 12, Floor: 0}, hall, NoPartition)
	v, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return v, parts, doors
}

func TestBuilderBasicTopology(t *testing.T) {
	v, parts, doors := buildOfficeFloor(t)
	if v.NumPartitions() != 7 {
		t.Errorf("NumPartitions = %d, want 7", v.NumPartitions())
	}
	if v.NumDoors() != 7 {
		t.Errorf("NumDoors = %d, want 7", v.NumDoors())
	}
	hall := v.Partition(parts["hall"])
	if len(hall.Doors) != 7 {
		t.Errorf("hallway has %d doors, want 7", len(hall.Doors))
	}
	// Kinds: hallway has 7 doors (> β=4) => hallway; rooms have 1 door =>
	// no-through.
	if k := v.Kind(parts["hall"]); k != KindHallway {
		t.Errorf("hallway kind = %v, want hallway", k)
	}
	if k := v.Kind(parts["R1"]); k != KindNoThrough {
		t.Errorf("R1 kind = %v, want no-through", k)
	}
	// The entrance door is exterior: only one partition.
	ent := v.Door(doors["entrance"])
	if len(ent.Partitions) != 1 {
		t.Errorf("entrance door partitions = %v, want 1 entry", ent.Partitions)
	}
	if ent.OtherPartition(parts["hall"]) != NoPartition {
		t.Error("entrance door should have no other partition")
	}
	// Door-partition navigation.
	d1 := v.Door(doors["R1"])
	if !d1.ConnectsPartition(parts["R1"]) || !d1.ConnectsPartition(parts["hall"]) {
		t.Error("door-R1 should connect R1 and hallway")
	}
	if d1.OtherPartition(parts["R1"]) != parts["hall"] {
		t.Error("OtherPartition(R1) should be hallway")
	}
	if d1.OtherPartition(parts["R2"]) != NoPartition {
		t.Error("OtherPartition of unrelated partition should be NoPartition")
	}
}

func TestKindClassification(t *testing.T) {
	b := NewBuilder("kinds").AllowDisconnected()
	// Partition with 2 doors: general. With 5 doors (β=4): hallway.
	p2 := b.AddPartition("two-door", ClassRoom, geom.NewRect(0, 0, 5, 5, 0), 0)
	p5 := b.AddPartition("five-door", ClassHallway, geom.NewRect(10, 0, 30, 5, 0), 0)
	other := b.AddPartition("other", ClassRoom, geom.NewRect(0, 10, 30, 15, 0), 0)
	b.AddDoor("a", geom.Point{X: 1, Y: 5, Floor: 0}, p2, other)
	b.AddDoor("b", geom.Point{X: 4, Y: 5, Floor: 0}, p2, other)
	for i := 0; i < 5; i++ {
		b.AddDoor("h", geom.Point{X: 11 + float64(i)*2, Y: 5, Floor: 0}, p5, other)
	}
	v, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if k := v.Kind(p2); k != KindGeneral {
		t.Errorf("two-door kind = %v, want general", k)
	}
	if k := v.Kind(p5); k != KindHallway {
		t.Errorf("five-door kind = %v, want hallway", k)
	}
	if k := v.Kind(other); k != KindHallway {
		t.Errorf("other (7 doors) kind = %v, want hallway", k)
	}
}

func TestHallwayThresholdOverride(t *testing.T) {
	b := NewBuilder("beta").SetHallwayThreshold(10).AllowDisconnected()
	p := b.AddPartition("p", ClassHallway, geom.NewRect(0, 0, 10, 10, 0), 0)
	q := b.AddPartition("q", ClassRoom, geom.NewRect(0, 10, 10, 20, 0), 0)
	for i := 0; i < 6; i++ {
		b.AddDoor("d", geom.Point{X: float64(i), Y: 10, Floor: 0}, p, q)
	}
	v := b.MustBuild()
	if k := v.Kind(p); k != KindGeneral {
		t.Errorf("with β=10, a 6-door partition should be general, got %v", k)
	}
}

func TestBuilderValidation(t *testing.T) {
	t.Run("door references unknown partition", func(t *testing.T) {
		b := NewBuilder("bad")
		b.AddDoor("d", geom.Point{}, PartitionID(3), NoPartition)
		if _, err := b.Build(); err == nil {
			t.Error("expected error for unknown partition reference")
		}
	})
	t.Run("partition with no doors", func(t *testing.T) {
		b := NewBuilder("bad")
		b.AddPartition("lonely", ClassRoom, geom.NewRect(0, 0, 1, 1, 0), 0)
		if _, err := b.Build(); err == nil {
			t.Error("expected error for partition with no doors")
		}
	})
	t.Run("door referencing same partition twice", func(t *testing.T) {
		b := NewBuilder("bad")
		p := b.AddPartition("p", ClassRoom, geom.NewRect(0, 0, 1, 1, 0), 0)
		b.AddDoor("d", geom.Point{}, p, p)
		if _, err := b.Build(); err == nil {
			t.Error("expected error for duplicate partition reference")
		}
	})
	t.Run("outdoor edge to unknown door", func(t *testing.T) {
		b := NewBuilder("bad")
		p := b.AddPartition("p", ClassRoom, geom.NewRect(0, 0, 1, 1, 0), 0)
		d := b.AddDoor("d", geom.Point{}, p, NoPartition)
		b.AddOutdoorEdge(d, DoorID(99), 5)
		if _, err := b.Build(); err == nil {
			t.Error("expected error for outdoor edge to unknown door")
		}
	})
	t.Run("disconnected venue rejected", func(t *testing.T) {
		b := NewBuilder("bad")
		p := b.AddPartition("p", ClassRoom, geom.NewRect(0, 0, 1, 1, 0), 0)
		q := b.AddPartition("q", ClassRoom, geom.NewRect(5, 5, 6, 6, 0), 0)
		b.AddDoor("dp", geom.Point{}, p, NoPartition)
		b.AddDoor("dq", geom.Point{X: 5}, q, NoPartition)
		if _, err := b.Build(); err == nil {
			t.Error("expected error for disconnected D2D graph")
		}
	})
	t.Run("disconnected allowed when requested", func(t *testing.T) {
		b := NewBuilder("ok").AllowDisconnected()
		p := b.AddPartition("p", ClassRoom, geom.NewRect(0, 0, 1, 1, 0), 0)
		q := b.AddPartition("q", ClassRoom, geom.NewRect(5, 5, 6, 6, 0), 0)
		b.AddDoor("dp", geom.Point{}, p, NoPartition)
		b.AddDoor("dq", geom.Point{X: 5}, q, NoPartition)
		if _, err := b.Build(); err != nil {
			t.Errorf("unexpected error: %v", err)
		}
	})
}

func TestD2DGraphStructure(t *testing.T) {
	v, _, doors := buildOfficeFloor(t)
	g := v.D2D().Graph
	// The hallway has 7 doors, fully connected: 21 edges. Rooms contribute
	// no extra edges (single door each).
	if got := g.NumEdges(); got != 21 {
		t.Errorf("D2D edges = %d, want 21", got)
	}
	// Direct edge weight between adjacent hallway doors equals the planar
	// distance between the door locations.
	w, ok := g.EdgeWeight(int(doors["R1"]), int(doors["R2"]))
	if !ok {
		t.Fatal("expected edge R1-R2 doors")
	}
	wantW := v.Door(doors["R1"]).Loc.PlanarDist(v.Door(doors["R2"]).Loc)
	if math.Abs(w-wantW) > 1e-9 {
		t.Errorf("edge weight = %v, want %v", w, wantW)
	}
}

func TestAdjacentPartitionsAndCommonDoors(t *testing.T) {
	v, parts, _ := buildOfficeFloor(t)
	adj := v.AdjacentPartitions(parts["hall"])
	if len(adj) != 6 {
		t.Errorf("hallway adjacency = %v, want 6 rooms", adj)
	}
	adjR1 := v.AdjacentPartitions(parts["R1"])
	if len(adjR1) != 1 || adjR1[0] != parts["hall"] {
		t.Errorf("R1 adjacency = %v, want [hall]", adjR1)
	}
	common := v.CommonDoors(parts["R1"], parts["hall"])
	if len(common) != 1 {
		t.Errorf("common doors R1-hall = %v, want 1", common)
	}
	if len(v.CommonDoors(parts["R1"], parts["R2"])) != 0 {
		t.Error("R1 and R2 should share no door")
	}
}

func TestTraversalCostOverridesDistance(t *testing.T) {
	b := NewBuilder("stairs")
	f0 := b.AddPartition("hall-0", ClassHallway, geom.NewRect(0, 0, 20, 4, 0), 0)
	f1 := b.AddPartition("hall-1", ClassHallway, geom.NewRect(0, 0, 20, 4, 1), 0)
	stairs := b.AddPartition("stairs", ClassStaircase, geom.NewRect(20, 0, 24, 4, 0), 7.5)
	d0 := b.AddDoor("s0", geom.Point{X: 20, Y: 2, Floor: 0}, f0, stairs)
	d1 := b.AddDoor("s1", geom.Point{X: 20, Y: 2, Floor: 1}, f1, stairs)
	b.AddDoor("r0", geom.Point{X: 0, Y: 2, Floor: 0}, f0, NoPartition)
	b.AddDoor("r1", geom.Point{X: 0, Y: 2, Floor: 1}, f1, NoPartition)
	v := b.MustBuild()
	if got := v.IntraPartitionDist(stairs, d0, d1); got != 7.5 {
		t.Errorf("stairs traversal = %v, want 7.5", got)
	}
	// D2D distance between the two far doors crosses the stairs.
	got := v.D2D().Dist(DoorID(2), DoorID(3))
	want := 20.0 + 7.5 + 20.0
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("cross-floor distance = %v, want %v", got, want)
	}
}

func TestLocationDistSamePartition(t *testing.T) {
	v, parts, _ := buildOfficeFloor(t)
	s := Location{Partition: parts["R1"], Point: geom.Point{X: 1, Y: 15, Floor: 0}}
	u := Location{Partition: parts["R1"], Point: geom.Point{X: 4, Y: 19, Floor: 0}}
	got := v.D2D().LocationDist(s, u)
	want := s.Point.PlanarDist(u.Point)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("same-partition dist = %v, want %v", got, want)
	}
}

func TestLocationDistAcrossPartitions(t *testing.T) {
	v, parts, doors := buildOfficeFloor(t)
	s := Location{Partition: parts["R1"], Point: geom.Point{X: 5, Y: 16, Floor: 0}}
	u := Location{Partition: parts["R6"], Point: geom.Point{X: 25, Y: 8, Floor: 0}}
	got := v.D2D().LocationDist(s, u)
	// Path must pass R1's door then R6's door.
	d1 := v.Door(doors["R1"]).Loc
	d6 := v.Door(doors["R6"]).Loc
	want := s.Point.PlanarDist(d1) + d1.PlanarDist(d6) + d6.PlanarDist(u.Point)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("cross-partition dist = %v, want %v", got, want)
	}
	// Path variant agrees and starts/ends at the right doors.
	pd, path := v.D2D().LocationPath(s, u)
	if math.Abs(pd-got) > 1e-9 {
		t.Errorf("LocationPath dist = %v, want %v", pd, got)
	}
	if len(path) != 2 || path[0] != doors["R1"] || path[1] != doors["R6"] {
		t.Errorf("path = %v, want [door-R1 door-R6]", path)
	}
}

func TestABGraph(t *testing.T) {
	v, parts, _ := buildOfficeFloor(t)
	ab := v.AB()
	if ab.Graph.NumVertices() != v.NumPartitions() {
		t.Errorf("AB vertices = %d, want %d", ab.Graph.NumVertices(), v.NumPartitions())
	}
	// 6 interior doors => 6 AB edges (entrance door is exterior).
	if ab.Graph.NumEdges() != 6 {
		t.Errorf("AB edges = %d, want 6", ab.Graph.NumEdges())
	}
	if hops := ab.HopCount(parts["R1"], parts["R6"]); hops != 2 {
		t.Errorf("HopCount(R1,R6) = %d, want 2", hops)
	}
	if hops := ab.HopCount(parts["R1"], parts["hall"]); hops != 1 {
		t.Errorf("HopCount(R1,hall) = %d, want 1", hops)
	}
	reach := ab.ReachablePartitions(parts["R1"])
	if len(reach) != v.NumPartitions() {
		t.Errorf("ReachablePartitions = %d, want all %d", len(reach), v.NumPartitions())
	}
}

func TestComputeStats(t *testing.T) {
	v, _, _ := buildOfficeFloor(t)
	s := v.ComputeStats()
	if s.Doors != 7 || s.Partitions != 7 || s.D2DEdges != 21 {
		t.Errorf("stats = %+v", s)
	}
	if s.Floors != 1 {
		t.Errorf("Floors = %d, want 1", s.Floors)
	}
	if s.Hallways != 1 || s.NoThrough != 6 {
		t.Errorf("hallways = %d no-through = %d", s.Hallways, s.NoThrough)
	}
	if s.MaxOutDegree != 6 {
		t.Errorf("MaxOutDegree = %d, want 6", s.MaxOutDegree)
	}
	if s.String() == "" {
		t.Error("Stats.String should not be empty")
	}
}

func TestRandomLocation(t *testing.T) {
	v, _, _ := buildOfficeFloor(t)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		loc := v.RandomLocation(rng)
		p := v.Partition(loc.Partition)
		if !p.Bounds.Contains(loc.Point) {
			t.Fatalf("random location %v outside partition bounds %v", loc, p.Bounds)
		}
	}
}

func TestCentroid(t *testing.T) {
	v, parts, _ := buildOfficeFloor(t)
	c := v.Centroid(parts["R1"])
	if c.Partition != parts["R1"] {
		t.Error("centroid partition mismatch")
	}
	if !v.Partition(parts["R1"]).Bounds.Contains(c.Point) {
		t.Error("centroid should be inside the partition")
	}
}

func TestDistToDoorWithTraversalCost(t *testing.T) {
	b := NewBuilder("lift")
	h0 := b.AddPartition("h0", ClassHallway, geom.NewRect(0, 0, 10, 4, 0), 0)
	h1 := b.AddPartition("h1", ClassHallway, geom.NewRect(0, 0, 10, 4, 1), 0)
	lift := b.AddPartition("lift", ClassLift, geom.NewRect(10, 0, 12, 4, 0), 10)
	l0 := b.AddDoor("l0", geom.Point{X: 10, Y: 2, Floor: 0}, h0, lift)
	b.AddDoor("l1", geom.Point{X: 10, Y: 2, Floor: 1}, h1, lift)
	v := b.MustBuild()
	loc := Location{Partition: lift, Point: v.Partition(lift).Bounds.Center()}
	if got := v.DistToDoor(loc, l0); got != 5 {
		t.Errorf("DistToDoor inside lift = %v, want TraversalCost/2 = 5", got)
	}
}

func TestClassString(t *testing.T) {
	for _, c := range []Class{ClassRoom, ClassHallway, ClassStaircase, ClassLift, ClassEscalator, Class(99)} {
		if c.String() == "" {
			t.Errorf("Class(%d).String is empty", int(c))
		}
	}
	for _, k := range []Kind{KindNoThrough, KindGeneral, KindHallway, Kind(99)} {
		if k.String() == "" {
			t.Errorf("Kind(%d).String is empty", int(k))
		}
	}
	if (Location{}).String() == "" {
		t.Error("Location.String is empty")
	}
}
