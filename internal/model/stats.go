package model

import (
	"fmt"
	"math/rand"
)

// Stats summarises a venue in the terms of Table 2 of the paper: number of
// doors, rooms (partitions) and D2D edges, plus a few derived figures that
// explain index behaviour (floors, maximum and average out-degree of the D2D
// graph).
type Stats struct {
	Name          string
	Doors         int
	Partitions    int
	D2DEdges      int
	Floors        int
	MaxOutDegree  int
	AvgOutDegree  float64
	Hallways      int
	NoThrough     int
	General       int
	OutdoorEdges  int
	StairOrLifts  int
	HallwayDoors  int // doors attached to at least one hallway partition
	LargestDegree int // doors of the largest hallway
}

// ComputeStats returns the statistics of the venue.
func (v *Venue) ComputeStats() Stats {
	s := Stats{
		Name:         v.Name,
		Doors:        len(v.Doors),
		Partitions:   len(v.Partitions),
		D2DEdges:     v.d2d.Graph.NumEdges(),
		Floors:       v.Floors(),
		MaxOutDegree: v.d2d.Graph.MaxOutDegree(),
		AvgOutDegree: v.d2d.Graph.AvgOutDegree(),
		OutdoorEdges: len(v.OutdoorEdges),
	}
	hallwayDoorSeen := make(map[DoorID]bool)
	for i := range v.Partitions {
		p := &v.Partitions[i]
		switch v.Kind(p.ID) {
		case KindHallway:
			s.Hallways++
			if len(p.Doors) > s.LargestDegree {
				s.LargestDegree = len(p.Doors)
			}
			for _, d := range p.Doors {
				hallwayDoorSeen[d] = true
			}
		case KindNoThrough:
			s.NoThrough++
		default:
			s.General++
		}
		if p.Class == ClassStaircase || p.Class == ClassLift || p.Class == ClassEscalator {
			s.StairOrLifts++
		}
	}
	s.HallwayDoors = len(hallwayDoorSeen)
	return s
}

// String renders the statistics as a single Table-2-style row.
func (s Stats) String() string {
	return fmt.Sprintf("%-14s doors=%-7d rooms=%-7d edges=%-9d floors=%-3d maxdeg=%-4d avgdeg=%.1f",
		s.Name, s.Doors, s.Partitions, s.D2DEdges, s.Floors, s.MaxOutDegree, s.AvgOutDegree)
}

// RandomLocation returns a uniformly random location in the venue: a random
// partition and a random point inside its bounds. Staircase/lift partitions
// use their bounds centre because arbitrary points inside them are not
// meaningful walking positions.
func (v *Venue) RandomLocation(rng *rand.Rand) Location {
	pid := PartitionID(rng.Intn(len(v.Partitions)))
	return v.RandomLocationIn(pid, rng)
}

// RandomLocationIn returns a random location inside the given partition.
func (v *Venue) RandomLocationIn(pid PartitionID, rng *rand.Rand) Location {
	p := v.Partition(pid)
	if p.TraversalCost > 0 || p.Bounds.Area() == 0 {
		return Location{Partition: pid, Point: p.Bounds.Center()}
	}
	pt := p.Bounds.Center()
	pt.X = p.Bounds.MinX + rng.Float64()*p.Bounds.Width()
	pt.Y = p.Bounds.MinY + rng.Float64()*p.Bounds.Height()
	return Location{Partition: pid, Point: pt}
}

// Centroid returns the location at the centre of partition pid.
func (v *Venue) Centroid(pid PartitionID) Location {
	return Location{Partition: pid, Point: v.Partition(pid).Bounds.Center()}
}
