// Package serial persists venues to disk and loads them back, so that large
// synthetic venues (or venues digitised from real floor plans) can be
// generated once and reused across experiment runs. The format is
// encoding/gob over a stable, versioned data-transfer structure; the
// derived structures (the D2D graph) are rebuilt on load through the normal
// Builder validation path.
//
// This package persists the raw venue only — not built indexes. To persist
// a fully built IP-Tree or VIP-Tree together with its venue (the
// build-once / serve-many pipeline), use viptree/internal/snapshot, which
// embeds this package's encoding as the venue section of its container.
package serial

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"viptree/internal/geom"
	"viptree/internal/model"
)

// formatVersion guards against loading files written by an incompatible
// release.
const formatVersion = 1

// venueDTO is the on-disk representation of a venue.
type venueDTO struct {
	Version          int
	Name             string
	HallwayThreshold int
	Partitions       []partitionDTO
	Doors            []doorDTO
	OutdoorEdges     []outdoorEdgeDTO
}

type partitionDTO struct {
	Name          string
	Class         int
	Bounds        geom.Rect
	TraversalCost float64
}

type doorDTO struct {
	Name       string
	Loc        geom.Point
	Partitions []int
}

type outdoorEdgeDTO struct {
	From, To int
	Weight   float64
}

// Write encodes the venue to w.
func Write(w io.Writer, v *model.Venue) error {
	dto := venueDTO{
		Version:          formatVersion,
		Name:             v.Name,
		HallwayThreshold: v.HallwayThreshold,
	}
	for i := range v.Partitions {
		p := &v.Partitions[i]
		dto.Partitions = append(dto.Partitions, partitionDTO{
			Name:          p.Name,
			Class:         int(p.Class),
			Bounds:        p.Bounds,
			TraversalCost: p.TraversalCost,
		})
	}
	for i := range v.Doors {
		d := &v.Doors[i]
		parts := make([]int, len(d.Partitions))
		for j, pid := range d.Partitions {
			parts[j] = int(pid)
		}
		dto.Doors = append(dto.Doors, doorDTO{Name: d.Name, Loc: d.Loc, Partitions: parts})
	}
	for _, e := range v.OutdoorEdges {
		dto.OutdoorEdges = append(dto.OutdoorEdges, outdoorEdgeDTO{From: int(e.From), To: int(e.To), Weight: e.Weight})
	}
	return gob.NewEncoder(w).Encode(&dto)
}

// Read decodes a venue from r and rebuilds it through the Builder (re-running
// validation and re-deriving the D2D graph).
func Read(r io.Reader) (*model.Venue, error) {
	var dto venueDTO
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("serial: decoding venue: %w", err)
	}
	if dto.Version != formatVersion {
		return nil, fmt.Errorf("serial: unsupported format version %d (want %d)", dto.Version, formatVersion)
	}
	b := model.NewBuilder(dto.Name)
	if dto.HallwayThreshold > 0 {
		b.SetHallwayThreshold(dto.HallwayThreshold)
	}
	for _, p := range dto.Partitions {
		b.AddPartition(p.Name, model.Class(p.Class), p.Bounds, p.TraversalCost)
	}
	for _, d := range dto.Doors {
		if len(d.Partitions) == 0 {
			return nil, fmt.Errorf("serial: door %q connects no partition", d.Name)
		}
		p1 := model.PartitionID(d.Partitions[0])
		p2 := model.NoPartition
		if len(d.Partitions) > 1 {
			p2 = model.PartitionID(d.Partitions[1])
		}
		b.AddDoor(d.Name, d.Loc, p1, p2)
	}
	for _, e := range dto.OutdoorEdges {
		b.AddOutdoorEdge(model.DoorID(e.From), model.DoorID(e.To), e.Weight)
	}
	return b.Build()
}

// Save writes the venue to a file, creating or truncating it.
func Save(path string, v *model.Venue) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("serial: creating %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("serial: closing %s: %w", path, cerr)
		}
	}()
	return Write(f, v)
}

// Load reads a venue from a file.
func Load(path string) (*model.Venue, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("serial: opening %s: %w", path, err)
	}
	defer f.Close()
	return Read(f)
}
