package serial

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"viptree/internal/iptree"
	"viptree/internal/model"
	"viptree/internal/venuegen"
)

func buildVenueFor(name string) *model.Venue {
	switch name {
	case "paper":
		return venuegen.PaperExample()
	case "building":
		return venuegen.MustBuilding(venuegen.BuildingConfig{Name: "serial-b", Floors: 2, RoomsPerHallway: 8, Staircases: 1, Seed: 1})
	default:
		return venuegen.MustCampus(venuegen.CampusConfig{Name: "serial-c", Buildings: 2, Building: venuegen.BuildingConfig{Floors: 1, RoomsPerHallway: 5}, Seed: 2})
	}
}

func TestRoundTripPreservesVenue(t *testing.T) {
	for _, name := range []string{"paper", "building", "campus"} {
		t.Run(name, func(t *testing.T) {
			orig := buildVenueFor(name)
			var buf bytes.Buffer
			if err := Write(&buf, orig); err != nil {
				t.Fatalf("Write: %v", err)
			}
			got, err := Read(&buf)
			if err != nil {
				t.Fatalf("Read: %v", err)
			}
			if got.NumDoors() != orig.NumDoors() || got.NumPartitions() != orig.NumPartitions() {
				t.Fatalf("size mismatch: %d/%d vs %d/%d",
					got.NumDoors(), got.NumPartitions(), orig.NumDoors(), orig.NumPartitions())
			}
			if got.Name != orig.Name || got.HallwayThreshold != orig.HallwayThreshold {
				t.Errorf("metadata mismatch: %q/%d vs %q/%d",
					got.Name, got.HallwayThreshold, orig.Name, orig.HallwayThreshold)
			}
			if got.D2D().Graph.NumEdges() != orig.D2D().Graph.NumEdges() {
				t.Errorf("D2D edges differ: %d vs %d",
					got.D2D().Graph.NumEdges(), orig.D2D().Graph.NumEdges())
			}
			// Distances computed on the reloaded venue agree with the
			// original (the index is rebuilt from the reloaded topology).
			rng := rand.New(rand.NewSource(5))
			origTree := iptree.MustBuildVIPTree(orig, iptree.Options{})
			gotTree := iptree.MustBuildVIPTree(got, iptree.Options{})
			for i := 0; i < 30; i++ {
				s := orig.RandomLocation(rng)
				d := orig.RandomLocation(rng)
				a := origTree.Distance(s, d)
				b := gotTree.Distance(s, d)
				if diff := a - b; diff > 1e-6 || diff < -1e-6 {
					t.Fatalf("distance mismatch after round trip: %v vs %v", a, b)
				}
			}
		})
	}
}

func TestSaveAndLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "venue.gob")
	orig := venuegen.PaperExample()
	if err := Save(path, orig); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.NumDoors() != orig.NumDoors() {
		t.Errorf("door count mismatch after file round trip")
	}
	if _, err := Load(filepath.Join(dir, "missing.gob")); err == nil {
		t.Error("loading a missing file should fail")
	}
}

func TestReadRejectsGarbageAndTruncatedInput(t *testing.T) {
	if _, err := Read(strings.NewReader("not a gob stream")); err == nil {
		t.Error("expected an error for a non-gob stream")
	}
	var buf bytes.Buffer
	if err := Write(&buf, venuegen.PaperExample()); err != nil {
		t.Fatalf("Write: %v", err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Error("expected an error for truncated input")
	}
}
