package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"viptree/internal/engine"
	"viptree/internal/geom"
	"viptree/internal/model"
)

// This file is the node's HTTP surface:
//
//	POST /query/{venue}   execute a batch of queries (JSON in, JSON out)
//	GET  /healthz         process liveness (200 while the process serves)
//	GET  /healthz/{venue} one venue's health (200 serving/degraded, 503 else)
//	GET  /readyz          readiness: 200 when every venue serves and the
//	                      node is not draining
//	GET  /statsz          per-venue counters + node totals
//
// The query wire format mirrors engine.Query field by field; kinds are the
// lowercase names ("distance", "path", "knn", "range", "insert", "delete",
// "move"). Responses echo the venue's swap epoch, which is how a client
// observes a hot swap.

// WireLocation is a model.Location on the wire.
type WireLocation struct {
	Partition int     `json:"partition"`
	X         float64 `json:"x"`
	Y         float64 `json:"y"`
	Floor     int     `json:"floor,omitempty"`
}

func (w WireLocation) location() model.Location {
	return model.Location{
		Partition: model.PartitionID(w.Partition),
		Point:     geom.Point{X: w.X, Y: w.Y, Floor: w.Floor},
	}
}

// WireQuery is one query of a request batch.
type WireQuery struct {
	Kind     string       `json:"kind"`
	S        WireLocation `json:"s"`
	T        WireLocation `json:"t,omitempty"`
	K        int          `json:"k,omitempty"`
	Radius   float64      `json:"radius,omitempty"`
	ObjectID int          `json:"object_id,omitempty"`
}

var wireKinds = map[string]engine.Kind{
	"distance": engine.KindDistance,
	"path":     engine.KindPath,
	"knn":      engine.KindKNN,
	"range":    engine.KindRange,
	"insert":   engine.KindInsert,
	"delete":   engine.KindDelete,
	"move":     engine.KindMove,
}

// WireObject is one kNN/range result object.
type WireObject struct {
	ID   int     `json:"id"`
	Dist float64 `json:"dist"`
}

// WireResult is one query's outcome.
type WireResult struct {
	Dist     float64      `json:"dist,omitempty"`
	Doors    []int        `json:"doors,omitempty"`
	Objects  []WireObject `json:"objects,omitempty"`
	ObjectID int          `json:"object_id,omitempty"`
	// Err and ErrKind report a failed query: ErrKind is one of "canceled",
	// "panic", "rejected" (typed engine refusals, e.g. updates while the
	// WAL is degraded).
	Err     string `json:"err,omitempty"`
	ErrKind string `json:"err_kind,omitempty"`
}

// QueryRequest is the POST /query/{venue} body.
type QueryRequest struct {
	Queries []WireQuery `json:"queries"`
	// TimeoutMS overrides the node's default request deadline when positive
	// (still capped by the default — a client cannot extend it).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// QueryResponse is the POST /query/{venue} body on success (HTTP 200) and
// on per-query failure (HTTP 500 with Results populated).
type QueryResponse struct {
	Venue   string       `json:"venue"`
	Epoch   uint64       `json:"epoch"`
	Results []WireResult `json:"results"`
}

// errorBody is the JSON error envelope of non-200 responses.
type errorBody struct {
	Error string `json:"error"`
}

// Handler returns the node's HTTP handler.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query/{venue}", n.handleQuery)
	mux.HandleFunc("GET /healthz", n.handleHealthz)
	mux.HandleFunc("GET /healthz/{venue}", n.handleVenueHealthz)
	mux.HandleFunc("GET /readyz", n.handleReadyz)
	mux.HandleFunc("GET /statsz", n.handleStatsz)
	return recoverMiddleware(mux)
}

// recoverMiddleware is the last-resort panic barrier: a handler bug becomes
// a 500, not a dead process. (Query panics never reach it — the engine
// isolates those per query.)
func recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				writeJSON(w, http.StatusInternalServerError, errorBody{Error: fmt.Sprintf("internal error: %v", v)})
			}
		}()
		next.ServeHTTP(w, r)
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (n *Node) handleQuery(w http.ResponseWriter, r *http.Request) {
	v, ok := n.Venue(r.PathValue("venue"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown venue"})
		return
	}
	if !n.admit() {
		v.shed.Add(1)
		n.shedTotal.Add(1)
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: "node at capacity, retry with backoff"})
		return
	}
	defer n.release()

	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "decoding request: " + err.Error()})
		return
	}
	queries := make([]engine.Query, len(req.Queries))
	for i, wq := range req.Queries {
		kind, ok := wireKinds[wq.Kind]
		if !ok {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("query %d: unknown kind %q", i, wq.Kind)})
			return
		}
		queries[i] = engine.Query{
			Kind: kind, S: wq.S.location(), T: wq.T.location(),
			K: wq.K, Radius: wq.Radius, ObjectID: wq.ObjectID,
		}
	}

	timeout := n.opts.RequestTimeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	results, epoch, err := v.execute(ctx, queries)
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	}

	resp := QueryResponse{Venue: v.Name(), Epoch: epoch, Results: make([]WireResult, len(results))}
	status := http.StatusOK
	for i, res := range results {
		wr := &resp.Results[i]
		wr.Dist = res.Dist
		wr.ObjectID = res.ObjectID
		for _, d := range res.Doors {
			wr.Doors = append(wr.Doors, int(d))
		}
		for _, o := range res.Objects {
			wr.Objects = append(wr.Objects, WireObject{ID: o.ObjectID, Dist: o.Dist})
		}
		if res.Err == nil {
			continue
		}
		wr.Err = res.Err.Error()
		var perr *engine.PanicError
		switch {
		case errors.As(res.Err, &perr):
			wr.ErrKind = "panic"
			status = http.StatusInternalServerError
		case errors.Is(res.Err, engine.ErrCanceled):
			wr.ErrKind = "canceled"
		default:
			wr.ErrKind = "rejected"
		}
	}
	writeJSON(w, status, resp)
}

func (n *Node) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "draining": n.Draining()})
}

func (n *Node) handleVenueHealthz(w http.ResponseWriter, r *http.Request) {
	v, ok := n.Venue(r.PathValue("venue"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown venue"})
		return
	}
	h := v.Health()
	status := http.StatusOK
	if !h.Healthy {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

func (n *Node) handleReadyz(w http.ResponseWriter, r *http.Request) {
	type venueReady struct {
		Venue string `json:"venue"`
		Health
	}
	venues := n.venueList()
	ready := !n.Draining() && len(venues) > 0
	detail := make([]venueReady, 0, len(venues))
	for _, v := range venues {
		h := v.Health()
		if !h.Healthy {
			ready = false
		}
		detail = append(detail, venueReady{Venue: v.Name(), Health: h})
	}
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{"ready": ready, "draining": n.Draining(), "venues": detail})
}

func (n *Node) handleStatsz(w http.ResponseWriter, r *http.Request) {
	venues := n.venueList()
	stats := make(map[string]Stats, len(venues))
	for _, v := range venues {
		stats[v.Name()] = v.Stats()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_ms":    n.Uptime().Milliseconds(),
		"max_inflight": n.opts.MaxInflight,
		"shed_total":   n.shedTotal.Load(),
		"draining":     n.Draining(),
		"venues":       stats,
	})
}
