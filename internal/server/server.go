// Package server turns the query engine into a multi-venue serving node: a
// long-running process that hosts one engine per venue from a directory of
// snapshot files, hot-swaps a venue's engine when a newer snapshot lands,
// and keeps answering queries through bad snapshots, disk faults, overload
// and shutdown.
//
// # Layout and lifecycle
//
// The snapshot directory is flat: a file named <venue>@<label>.snap serves
// venue <venue> at version <label>. Labels order lexically — the highest
// label is the newest version — so a build box publishes a new version by
// copying in a new file; nothing is ever modified in place. A watcher
// goroutine polls the directory, creates venues on first sight and drives
// each through the lifecycle
//
//	loading → serving ⇄ swapping
//	             ↓ (health)      ↘ (every candidate failed)
//	          degraded            quarantined
//
// Swaps are atomic: queries resolve the venue's engine through one pointer
// (venue.cur), in-flight batches hold a reference and drain on the old
// engine before it is closed, and the pointer only ever points at a
// snapshot that passed checksum, decode and Verify — a failed candidate is
// quarantined with a typed reason (snapshot.Classify) and retried with
// bounded exponential backoff while the previous engine keeps serving.
//
// # Durability
//
// With Options.WALRoot set, each venue's object updates are logged to a
// write-ahead log under WALRoot/<venue>/<label> — one log lineage per
// snapshot version, so a hot swap starts a fresh lineage and recovery
// always replays a log onto the exact snapshot it was recorded against.
//
// # Robustness
//
// Admission control bounds the number of in-flight query requests
// (Options.MaxInflight); excess requests are shed with 429 before they
// touch an engine. Every request runs under a deadline
// (Options.RequestTimeout) threaded into engine.ExecuteBatchContext, which
// also isolates per-query panics — a crashing query becomes a 500 and a
// counter, not a dead process. Snapshot reads go through the wal.FS seam,
// so tests inject torn files, corrupt payloads and slow disks without a
// real filesystem.
package server

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"viptree/internal/wal"
)

// Options configures a Node.
type Options struct {
	// SnapshotDir is the directory watched for <venue>@<label>.snap files.
	SnapshotDir string
	// WALRoot enables durable object updates: per-venue, per-snapshot WAL
	// directories are created under it. Empty serves non-durably.
	WALRoot string
	// FS is the filesystem snapshots are read from (and, through
	// WALOptions.FS when unset, the WAL's too). Defaults to wal.OSFS{}.
	FS wal.FS
	// PollInterval is the snapshot watcher's poll period. Default 500ms.
	PollInterval time.Duration
	// MaxInflight bounds concurrently admitted query requests; excess
	// requests get 429. Default 256.
	MaxInflight int
	// RequestTimeout is the per-request deadline threaded into the engine.
	// Default 5s.
	RequestTimeout time.Duration
	// RetryBase and RetryMax bound the quarantine retry backoff: attempt n
	// waits RetryBase<<(n-1), capped at RetryMax. Defaults 1s and 1min.
	RetryBase, RetryMax time.Duration
	// Workers is the per-engine batch parallelism (engine.Options.Workers).
	Workers int
	// WALOptions tunes the write-ahead logs (Dir is ignored; the node sets
	// it per lineage). WALOptions.FS defaults to Options.FS.
	WALOptions wal.Options
	// Logf receives one line per lifecycle event (swap, quarantine, drain).
	// Nil discards them.
	Logf func(format string, args ...any)
}

func (o *Options) withDefaults() {
	if o.FS == nil {
		o.FS = wal.OSFS{}
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 500 * time.Millisecond
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 256
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 5 * time.Second
	}
	if o.RetryBase <= 0 {
		o.RetryBase = time.Second
	}
	if o.RetryMax <= 0 {
		o.RetryMax = time.Minute
	}
	if o.WALOptions.FS == nil {
		o.WALOptions.FS = o.FS
	}
}

// Node is a multi-venue serving node. Create with New, serve its Handler,
// stop with Close. All methods are safe for concurrent use.
type Node struct {
	opts  Options
	start time.Time

	mu     sync.Mutex
	venues map[string]*venue

	sem       chan struct{} // admission semaphore, cap MaxInflight
	shedTotal atomic.Int64

	draining  chan struct{} // closed by BeginDrain
	drainOnce sync.Once
	stop      chan struct{} // closed by Close: stops the watcher
	watcherWG sync.WaitGroup
	retireWG  sync.WaitGroup // outstanding async engine retirements
	closeOnce sync.Once
	closeErr  error
}

// New builds a node over the snapshot directory and runs one synchronous
// scan before returning, so venues already on disk are serving (or
// quarantined) by the time the caller binds a listener. The watcher then
// keeps polling in the background until Close.
func New(opts Options) (*Node, error) {
	opts.withDefaults()
	if opts.SnapshotDir == "" {
		return nil, fmt.Errorf("server: Options.SnapshotDir is required")
	}
	n := &Node{
		opts:     opts,
		start:    time.Now(),
		venues:   make(map[string]*venue),
		sem:      make(chan struct{}, opts.MaxInflight),
		draining: make(chan struct{}),
		stop:     make(chan struct{}),
	}
	if _, err := n.opts.FS.ReadDir(opts.SnapshotDir); err != nil {
		return nil, fmt.Errorf("server: snapshot dir %s: %w", opts.SnapshotDir, err)
	}
	n.scan()
	n.watcherWG.Add(1)
	go n.watch()
	return n, nil
}

func (n *Node) logf(format string, args ...any) {
	if n.opts.Logf != nil {
		n.opts.Logf(format, args...)
	}
}

// watch is the snapshot watcher goroutine: one scan per poll interval.
func (n *Node) watch() {
	defer n.watcherWG.Done()
	t := time.NewTicker(n.opts.PollInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			n.scan()
		}
	}
}

// snapFile is one parsed snapshot directory entry.
type snapFile struct {
	name  string // file name within SnapshotDir
	venue string
	label string
}

// parseSnapName splits "<venue>@<label>.snap"; ok is false for anything else.
func parseSnapName(name string) (sf snapFile, ok bool) {
	base, found := strings.CutSuffix(name, ".snap")
	if !found {
		return sf, false
	}
	venueName, label, found := strings.Cut(base, "@")
	if !found || venueName == "" || label == "" {
		return sf, false
	}
	return snapFile{name: name, venue: venueName, label: label}, true
}

// scan lists the snapshot directory once and offers each venue its
// candidate files, newest first. Load, verify and swap happen inside the
// venue; the node only routes.
func (n *Node) scan() {
	select {
	case <-n.draining:
		return // a draining node swaps nothing in
	default:
	}
	names, err := n.opts.FS.ReadDir(n.opts.SnapshotDir)
	if err != nil {
		n.logf("server: scanning %s: %v", n.opts.SnapshotDir, err)
		return
	}
	byVenue := make(map[string][]snapFile)
	for _, name := range names {
		if sf, ok := parseSnapName(name); ok {
			byVenue[sf.venue] = append(byVenue[sf.venue], sf)
		}
	}
	for name, files := range byVenue {
		// Newest (highest label) first.
		sort.Slice(files, func(i, j int) bool { return files[i].label > files[j].label })
		n.venueFor(name).consider(files)
	}
}

// venueFor returns the named venue, creating it in the loading state on
// first sight.
func (n *Node) venueFor(name string) *venue {
	n.mu.Lock()
	defer n.mu.Unlock()
	v, ok := n.venues[name]
	if !ok {
		v = newVenue(n, name)
		n.venues[name] = v
	}
	return v
}

// Venue returns the named venue's public view, or false.
func (n *Node) Venue(name string) (*venue, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	v, ok := n.venues[name]
	return v, ok
}

// venueList returns the venues sorted by name.
func (n *Node) venueList() []*venue {
	n.mu.Lock()
	vs := make([]*venue, 0, len(n.venues))
	for _, v := range n.venues {
		vs = append(vs, v)
	}
	n.mu.Unlock()
	sort.Slice(vs, func(i, j int) bool { return vs[i].name < vs[j].name })
	return vs
}

// admit reserves an admission slot, reporting false when the node is at
// MaxInflight or draining. Callers must release() every successful admit.
func (n *Node) admit() bool {
	select {
	case <-n.draining:
		return false
	default:
	}
	select {
	case n.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

func (n *Node) release() { <-n.sem }

// Draining reports whether BeginDrain has been called.
func (n *Node) Draining() bool {
	select {
	case <-n.draining:
		return true
	default:
		return false
	}
}

// BeginDrain flips the node out of readiness: /readyz turns 503, new query
// requests are shed, and the watcher stops swapping — while requests
// already admitted keep running. The HTTP server's own Shutdown then
// finishes the in-flight requests; Close releases the engines.
func (n *Node) BeginDrain() {
	n.drainOnce.Do(func() { close(n.draining) })
}

// Close drains and shuts the node down: stops the watcher, retires every
// venue's engine (waiting for in-flight batches to finish) and flushes the
// write-ahead logs. The first error (a WAL that could not flush) is
// returned; closing twice returns the first result.
func (n *Node) Close() error {
	n.closeOnce.Do(func() {
		n.BeginDrain()
		close(n.stop)
		n.watcherWG.Wait()
		for _, v := range n.venueList() {
			if err := v.shutdown(); err != nil && n.closeErr == nil {
				n.closeErr = err
			}
		}
		n.retireWG.Wait()
	})
	return n.closeErr
}

// Uptime is the time since New.
func (n *Node) Uptime() time.Duration { return time.Since(n.start) }

// Summary returns the one-line drain-time summary: per-venue counters plus
// node totals, the line servenode prints on clean exit.
func (n *Node) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "served %s", n.Uptime().Round(time.Millisecond))
	for _, v := range n.venueList() {
		s := v.Stats()
		fmt.Fprintf(&b, " | %s: state=%s epoch=%d queries=%d swaps=%d quarantined=%d panics=%d shed=%d",
			v.name, s.State, s.Epoch, s.Queries, s.Swaps, s.Quarantines, s.Panics, s.Shed)
	}
	fmt.Fprintf(&b, " | shed_total=%d", n.shedTotal.Load())
	return b.String()
}

// readAll drains r, closing it either way.
func readAll(r io.ReadCloser) ([]byte, error) {
	defer r.Close()
	return io.ReadAll(r)
}
