package server

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"viptree/internal/engine"
	"viptree/internal/iptree"
	"viptree/internal/model"
	"viptree/internal/snapshot"
	"viptree/internal/venuegen"
	"viptree/internal/wal"
)

// testFixture is the shared, build-once material of the server tests: a
// venue, its VIP-Tree, and snapshot bytes at several versions. Versions
// differ in object count, so a kNN with k > max objects reveals which
// version answered — the observability hook of the swap and storm tests.
type testFixture struct {
	venue *model.Venue
	tree  *iptree.Tree
	// versions[label] = snapshot bytes; objectCount[label] = embedded count.
	versions    map[string][]byte
	objectCount map[string]int
	labels      []string // ascending
}

var (
	fixOnce sync.Once
	fix     *testFixture
)

// fixture builds the shared test material once per test binary.
func fixture(t *testing.T) *testFixture {
	t.Helper()
	fixOnce.Do(func() {
		v := venuegen.MustBuilding(venuegen.BuildingConfig{
			Name: "server-test", Floors: 2, RoomsPerHallway: 10, Seed: 11,
		})
		tree := iptree.MustBuildIPTree(v, iptree.Options{})
		vip := iptree.NewVIPTree(tree)
		f := &testFixture{
			venue:       v,
			tree:        tree,
			versions:    make(map[string][]byte),
			objectCount: make(map[string]int),
		}
		rng := rand.New(rand.NewSource(13))
		for i, label := range []string{"0001", "0002", "0003", "0004", "0005"} {
			count := 3 + 2*i // distinct per version
			objs := make([]model.Location, count)
			for j := range objs {
				objs[j] = v.RandomLocation(rng)
			}
			var buf bytes.Buffer
			if err := snapshot.Write(&buf, v, vip, tree.IndexObjects(objs)); err != nil {
				panic(err)
			}
			f.versions[label] = buf.Bytes()
			f.objectCount[label] = count
			f.labels = append(f.labels, label)
		}
		fix = f
	})
	return fix
}

// testNode starts a node over a FaultFS seeded with the given venue files
// (map venue name -> label). Fast poll and backoff timings for tests.
func testNode(t *testing.T, files map[string]string, tweak func(*Options)) (*Node, *wal.FaultFS) {
	t.Helper()
	f := fixture(t)
	fs := wal.NewFaultFS()
	fs.WriteFile("snaps/.keep", nil)
	for venueName, label := range files {
		fs.WriteFile("snaps/"+venueName+"@"+label+".snap", f.versions[label])
	}
	opts := Options{
		SnapshotDir:    "snaps",
		WALRoot:        "wal",
		FS:             fs,
		PollInterval:   2 * time.Millisecond,
		RequestTimeout: 2 * time.Second,
		RetryBase:      5 * time.Millisecond,
		RetryMax:       20 * time.Millisecond,
		Workers:        2,
		WALOptions:     fastWALOptions(),
		Logf:           t.Logf,
	}
	if tweak != nil {
		tweak(&opts)
	}
	n, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n, fs
}

func fastWALOptions() wal.Options {
	return wal.Options{
		Sync:          wal.SyncAlways(),
		MaxRetries:    2,
		RetryBackoff:  200 * time.Microsecond,
		ProbeInterval: 500 * time.Microsecond,
	}
}

// doJSON posts a QueryRequest and decodes the response envelope.
func doJSON(t *testing.T, h http.Handler, method, path string, body any) (int, map[string]json.RawMessage) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var out map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("%s %s: non-JSON response %q", method, path, rec.Body.String())
	}
	return rec.Code, out
}

// queryBatch posts queries to a venue and decodes the typed response.
func queryBatch(t *testing.T, h http.Handler, venueName string, queries []WireQuery) (int, QueryResponse) {
	t.Helper()
	b, err := json.Marshal(QueryRequest{Queries: queries})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/query/"+venueName, bytes.NewReader(b))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var resp QueryResponse
	if rec.Code == http.StatusOK || rec.Code == http.StatusInternalServerError {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("decoding response %q: %v", rec.Body.String(), err)
		}
	}
	return rec.Code, resp
}

func wireLoc(l model.Location) WireLocation {
	return WireLocation{Partition: int(l.Partition), X: l.Point.X, Y: l.Point.Y, Floor: l.Point.Floor}
}

// distanceProbe builds distance queries with their exact expected answers.
func distanceProbe(f *testFixture, n int, seed int64) ([]WireQuery, []float64) {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]WireQuery, n)
	want := make([]float64, n)
	for i := range qs {
		s, u := f.venue.RandomLocation(rng), f.venue.RandomLocation(rng)
		qs[i] = WireQuery{Kind: "distance", S: wireLoc(s), T: wireLoc(u)}
		want[i] = f.venue.D2D().LocationDist(s, u)
	}
	return qs, want
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestServeTwoVenues: the node hosts two venues from one directory and
// answers exact distance queries on both.
func TestServeTwoVenues(t *testing.T) {
	f := fixture(t)
	n, _ := testNode(t, map[string]string{"alpha": "0001", "beta": "0002"}, nil)
	h := n.Handler()

	for _, venueName := range []string{"alpha", "beta"} {
		qs, want := distanceProbe(f, 20, 29)
		code, resp := queryBatch(t, h, venueName, qs)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d", venueName, code)
		}
		if resp.Epoch != 1 {
			t.Fatalf("%s: epoch %d, want 1", venueName, resp.Epoch)
		}
		for i, r := range resp.Results {
			if r.Err != "" || abs(r.Dist-want[i]) > 1e-6 {
				t.Fatalf("%s query %d: got %+v, want dist %v", venueName, i, r, want[i])
			}
		}
	}

	// kNN sees each venue's own object count.
	for venueName, label := range map[string]string{"alpha": "0001", "beta": "0002"} {
		code, resp := queryBatch(t, h, venueName, []WireQuery{
			{Kind: "knn", S: wireLoc(f.venue.RandomLocation(rand.New(rand.NewSource(1)))), K: 100},
		})
		if code != http.StatusOK {
			t.Fatalf("%s: status %d", venueName, code)
		}
		if got := len(resp.Results[0].Objects); got != f.objectCount[label] {
			t.Fatalf("%s: kNN saw %d objects, want %d", venueName, got, f.objectCount[label])
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestHTTPErrors pins the error surface: unknown venue 404, bad kind 400,
// malformed body 400.
func TestHTTPErrors(t *testing.T) {
	n, _ := testNode(t, map[string]string{"alpha": "0001"}, nil)
	h := n.Handler()

	if code, _ := doJSON(t, h, "POST", "/query/nosuch", QueryRequest{}); code != http.StatusNotFound {
		t.Fatalf("unknown venue: %d", code)
	}
	if code, _ := doJSON(t, h, "POST", "/query/alpha", QueryRequest{Queries: []WireQuery{{Kind: "teleport"}}}); code != http.StatusBadRequest {
		t.Fatalf("unknown kind: %d", code)
	}
	req := httptest.NewRequest("POST", "/query/alpha", strings.NewReader("{"))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed body: %d", rec.Code)
	}
}

// TestAdmissionControl: with the semaphore full, requests are shed with 429
// and counted; with a slot free they are admitted again.
func TestAdmissionControl(t *testing.T) {
	n, _ := testNode(t, map[string]string{"alpha": "0001"}, func(o *Options) { o.MaxInflight = 2 })
	h := n.Handler()
	f := fixture(t)
	qs, _ := distanceProbe(f, 1, 31)

	n.sem <- struct{}{}
	n.sem <- struct{}{} // node now "full"
	code, _ := queryBatch(t, h, "alpha", qs)
	if code != http.StatusTooManyRequests {
		t.Fatalf("full node: status %d, want 429", code)
	}
	v, _ := n.Venue("alpha")
	if v.shed.Load() != 1 || n.shedTotal.Load() != 1 {
		t.Fatalf("shed counters: venue=%d node=%d, want 1/1", v.shed.Load(), n.shedTotal.Load())
	}
	<-n.sem
	if code, _ := queryBatch(t, h, "alpha", qs); code != http.StatusOK {
		t.Fatalf("after freeing a slot: status %d", code)
	}
	<-n.sem
}

// TestHealthEndpoints: healthz always 200; readyz 200 while serving, 503
// when draining; per-venue healthz reflects the venue.
func TestHealthEndpoints(t *testing.T) {
	n, _ := testNode(t, map[string]string{"alpha": "0001"}, nil)
	h := n.Handler()

	if code, _ := doJSON(t, h, "GET", "/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if code, _ := doJSON(t, h, "GET", "/healthz/alpha", nil); code != http.StatusOK {
		t.Fatalf("healthz/alpha: %d", code)
	}
	if code, _ := doJSON(t, h, "GET", "/healthz/nosuch", nil); code != http.StatusNotFound {
		t.Fatalf("healthz/nosuch: %d", code)
	}
	code, body := doJSON(t, h, "GET", "/readyz", nil)
	if code != http.StatusOK {
		t.Fatalf("readyz while serving: %d (%s)", code, body)
	}

	n.BeginDrain()
	if code, _ := doJSON(t, h, "GET", "/readyz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d, want 503", code)
	}
	// Draining sheds new queries too.
	f := fixture(t)
	qs, _ := distanceProbe(f, 1, 37)
	if code, _ := queryBatch(t, h, "alpha", qs); code != http.StatusTooManyRequests {
		t.Fatalf("query while draining: %d, want 429", code)
	}
}

// TestStatsz: the stats endpoint surfaces per-venue counters and node
// totals in the documented shape.
func TestStatsz(t *testing.T) {
	n, _ := testNode(t, map[string]string{"alpha": "0001"}, nil)
	h := n.Handler()
	f := fixture(t)
	qs, _ := distanceProbe(f, 5, 41)
	if code, _ := queryBatch(t, h, "alpha", qs); code != http.StatusOK {
		t.Fatal("probe batch failed")
	}

	code, body := doJSON(t, h, "GET", "/statsz", nil)
	if code != http.StatusOK {
		t.Fatalf("statsz: %d", code)
	}
	var venues map[string]Stats
	if err := json.Unmarshal(body["venues"], &venues); err != nil {
		t.Fatal(err)
	}
	s, ok := venues["alpha"]
	if !ok {
		t.Fatalf("statsz has no venue alpha: %s", body["venues"])
	}
	if s.State != StateServing || s.Epoch != 1 || s.Queries != 5 || s.Swaps != 1 {
		t.Fatalf("unexpected stats: %+v", s)
	}
	if s.Snapshot != "alpha@0001.snap" {
		t.Fatalf("snapshot file: %q", s.Snapshot)
	}
}

// TestPanicCounter: a query that panics inside the engine surfaces as a 500
// with err_kind "panic", bumps the venue counter, and the node survives.
func TestPanicCounter(t *testing.T) {
	n, _ := testNode(t, map[string]string{"alpha": "0001"}, nil)
	h := n.Handler()

	// An out-of-range floor panics partition lookup inside the index — a
	// genuine query-triggered engine panic, not a handler-level one.
	code, resp := queryBatch(t, h, "alpha", []WireQuery{
		{Kind: "distance", S: WireLocation{Partition: 1 << 30, X: 0, Y: 0}, T: WireLocation{Partition: 0}},
	})
	if code != http.StatusInternalServerError {
		t.Fatalf("panicking query: status %d, want 500", code)
	}
	if resp.Results[0].ErrKind != "panic" {
		t.Fatalf("err_kind %q, want panic", resp.Results[0].ErrKind)
	}
	v, _ := n.Venue("alpha")
	if v.panics.Load() != 1 {
		t.Fatalf("panic counter %d, want 1", v.panics.Load())
	}
	// The venue keeps serving.
	f := fixture(t)
	qs, _ := distanceProbe(f, 3, 43)
	if code, _ := queryBatch(t, h, "alpha", qs); code != http.StatusOK {
		t.Fatalf("venue dead after panic: %d", code)
	}
}

// TestDurableUpdatesAcrossLineage: updates flow to the WAL lineage of the
// served snapshot version, and Close flushes them.
func TestDurableUpdatesAcrossLineage(t *testing.T) {
	f := fixture(t)
	n, fs := testNode(t, map[string]string{"alpha": "0001"}, nil)
	h := n.Handler()

	rng := rand.New(rand.NewSource(47))
	loc := f.venue.RandomLocation(rng)
	code, resp := queryBatch(t, h, "alpha", []WireQuery{{Kind: "insert", S: wireLoc(loc)}})
	if code != http.StatusOK || resp.Results[0].Err != "" {
		t.Fatalf("insert: %d %+v", code, resp.Results)
	}
	if err := n.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The WAL lineage dir of version 0001 holds the record.
	names, err := fs.ReadDir("wal/alpha/0001")
	if err != nil || len(names) == 0 {
		t.Fatalf("no WAL segments in lineage dir: %v %v", names, err)
	}
}

// TestCloseWaitsForInflight: Close must not yank an engine from under an
// in-flight batch — the batch finishes first (zero dropped queries).
func TestCloseWaitsForInflight(t *testing.T) {
	f := fixture(t)
	n, _ := testNode(t, map[string]string{"alpha": "0001"}, nil)
	v, _ := n.Venue("alpha")

	le := v.acquire()
	if le == nil {
		t.Fatal("no live engine")
	}
	done := make(chan error, 1)
	go func() { done <- n.Close() }()
	select {
	case <-done:
		t.Fatal("Close returned while a reference was held")
	case <-time.After(20 * time.Millisecond):
	}
	// The engine still answers while referenced, even mid-shutdown.
	rng := rand.New(rand.NewSource(53))
	s, u := f.venue.RandomLocation(rng), f.venue.RandomLocation(rng)
	got := le.eng.Execute(engine.Query{Kind: engine.KindDistance, S: s, T: u})
	if abs(got.Dist-f.venue.D2D().LocationDist(s, u)) > 1e-6 {
		t.Fatalf("query during drain: %v", got)
	}
	le.release()
	if err := <-done; err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestNewVenueAppearsLater: a venue whose first snapshot lands after the
// node started is picked up by the watcher.
func TestNewVenueAppearsLater(t *testing.T) {
	f := fixture(t)
	n, fs := testNode(t, map[string]string{"alpha": "0001"}, nil)

	if _, ok := n.Venue("beta"); ok {
		t.Fatal("venue beta exists before its snapshot")
	}
	fs.WriteFile("snaps/beta@0001.snap", f.versions["0001"])
	waitFor(t, 2*time.Second, "venue beta to serve", func() bool {
		v, ok := n.Venue("beta")
		return ok && v.Epoch() == 1
	})
	qs, want := distanceProbe(f, 5, 59)
	code, resp := queryBatch(t, n.Handler(), "beta", qs)
	if code != http.StatusOK {
		t.Fatalf("beta: %d", code)
	}
	for i, r := range resp.Results {
		if r.Err != "" || abs(r.Dist-want[i]) > 1e-6 {
			t.Fatalf("beta query %d: %+v", i, r)
		}
	}
}
