package server

import (
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCrashStormProperty is the fault-injection property test of the
// serving node: under a randomized storm of snapshot drops — valid, bit-
// flipped, torn, garbage — interleaved with slow-disk phases and continuous
// query and update load on two venues, the node must
//
//  1. never serve a failed-verification index: every successful distance
//     answer is exact against the D2D ground truth, every kNN answer's
//     object count matches a version that was actually dropped valid, and
//     the served snapshot file is always one of the valid drops;
//  2. never drop an in-flight query: load stays below the admission cap,
//     so a non-200 or a wrong answer is a property violation (updates may
//     be typed-rejected while a WAL lineage closes — that is the documented
//     degraded mode, not a drop);
//  3. observe epochs monotonically (a swap never goes backwards);
//  4. converge to the newest valid snapshot once the storm quiesces;
//  5. drain cleanly: Close returns nil with all WAL lineages flushed.
//
// Venue "alpha" takes distance reads plus durable inserts; venue "beta"
// takes the kNN version-fingerprint checks (its object counts stay exactly
// the embedded ones because nothing writes to it).
func TestCrashStormProperty(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { crashStorm(t, seed) })
	}
}

func crashStorm(t *testing.T, seed int64) {
	f := fixture(t)
	n, fs := testNode(t, map[string]string{"alpha": "0001", "beta": "0001"}, nil)
	h := n.Handler()
	alpha, _ := n.Venue("alpha")
	beta, _ := n.Venue("beta")

	// Ground truth the clients check against.
	qs, want := distanceProbe(f, 6, seed)

	// validCounts fingerprints the versions dropped valid on beta; a kNN
	// answer with any other count means a broken index served. validFiles
	// is the set the served-snapshot invariant checks against.
	var mu sync.Mutex
	validCounts := map[int]bool{f.objectCount["0001"]: true}
	validFiles := map[string]bool{"alpha@0001.snap": true, "beta@0001.snap": true}
	newestValidLabel := "0001"

	var violations atomic.Int64
	var lastErr atomic.Value
	fail := func(format string, args ...any) {
		violations.Add(1)
		lastErr.Store(fmt.Sprintf(format, args...))
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed*100 + int64(c)))
			var lastEpoch uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch rng.Intn(4) {
				case 0: // kNN on beta: the count reveals which version answered
					code, resp := queryBatch(t, h, "beta", []WireQuery{{Kind: "knn", S: qs[0].S, K: 100}})
					if code != http.StatusOK {
						fail("client %d: knn status %d", c, code)
						continue
					}
					mu.Lock()
					ok := validCounts[len(resp.Results[0].Objects)]
					mu.Unlock()
					if !ok {
						fail("client %d: knn saw %d objects — not a valid version", c, len(resp.Results[0].Objects))
					}
					if resp.Epoch < lastEpoch {
						fail("client %d: epoch went backwards %d -> %d", c, lastEpoch, resp.Epoch)
					}
					lastEpoch = resp.Epoch
				case 1: // insert on alpha: exercises the WAL under the storm
					code, resp := queryBatch(t, h, "alpha", []WireQuery{{Kind: "insert", S: qs[0].S}})
					if code != http.StatusOK {
						fail("client %d: insert status %d", c, code)
					} else if e := resp.Results[0].Err; e != "" && resp.Results[0].ErrKind != "rejected" {
						fail("client %d: insert error %q kind %q", c, e, resp.Results[0].ErrKind)
					}
				default: // exact distance checks on alpha
					code, resp := queryBatch(t, h, "alpha", qs)
					if code != http.StatusOK {
						fail("client %d: distance status %d", c, code)
						continue
					}
					for i, r := range resp.Results {
						if r.Err != "" || abs(r.Dist-want[i]) > 1e-6 {
							fail("client %d: wrong distance %d: %+v want %v", c, i, r, want[i])
						}
					}
				}
			}
		}(c)
	}

	// A monitor pins the served-file invariant: whatever is serving must be
	// a valid drop at every instant.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, v := range []*venue{alpha, beta} {
				if snap := v.Stats().Snapshot; snap != "" {
					mu.Lock()
					ok := validFiles[snap]
					mu.Unlock()
					if !ok {
						fail("venue %s serving %q — not a valid drop", v.Name(), snap)
					}
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// The storm: randomized drops on both venues, labels strictly
	// increasing. headerSize keeps bit flips in the payload (checksum path)
	// rather than always the magic — both are handled either way.
	const headerSize = 28
	rng := rand.New(rand.NewSource(seed))
	label := 1000
	for round := 0; round < 25; round++ {
		label++
		src := f.labels[rng.Intn(len(f.labels))]
		data := f.versions[src]
		valid := false
		var payload []byte
		switch rng.Intn(5) {
		case 0: // valid drop
			payload, valid = data, true
		case 1: // bit flip: fails the checksum
			bad := append([]byte(nil), data...)
			bad[rng.Intn(len(bad)-headerSize)+headerSize] ^= 1 << uint(rng.Intn(8))
			payload = bad
		case 2: // torn copy
			payload = data[:rng.Intn(len(data))]
		case 3: // garbage
			payload = make([]byte, rng.Intn(512))
			rng.Read(payload)
		case 4: // slow disk phase while a valid file lands
			fs.SlowOpen(2 * time.Millisecond)
			payload, valid = data, true
		}
		for _, venueName := range []string{"alpha", "beta"} {
			name := fmt.Sprintf("%s@%04d.snap", venueName, label)
			fs.WriteFile("snaps/"+name, payload)
			if valid {
				mu.Lock()
				validFiles[name] = true
				mu.Unlock()
			}
		}
		if valid {
			mu.Lock()
			validCounts[f.objectCount[src]] = true
			newestValidLabel = fmt.Sprintf("%04d", label)
			mu.Unlock()
		}
		time.Sleep(time.Duration(rng.Intn(4)) * time.Millisecond)
		if rng.Intn(3) == 0 {
			fs.SlowOpen(0)
		}
	}

	// Quiesce: clear faults and drop one final valid version everywhere.
	fs.SlowOpen(0)
	label++
	final := fmt.Sprintf("%04d", label)
	mu.Lock()
	for _, venueName := range []string{"alpha", "beta"} {
		name := fmt.Sprintf("%s@%s.snap", venueName, final)
		fs.WriteFile("snaps/"+name, f.versions["0005"])
		validFiles[name] = true
	}
	validCounts[f.objectCount["0005"]] = true
	newestValidLabel = final
	mu.Unlock()

	// Convergence: both venues must end up serving the newest valid drop.
	waitFor(t, 5*time.Second, "convergence to newest valid snapshot", func() bool {
		return alpha.Stats().Snapshot == "alpha@"+newestValidLabel+".snap" &&
			beta.Stats().Snapshot == "beta@"+newestValidLabel+".snap"
	})
	close(stop)
	wg.Wait()

	if violations.Load() != 0 {
		t.Fatalf("%d property violations; last: %v", violations.Load(), lastErr.Load())
	}
	for _, v := range []*venue{alpha, beta} {
		s := v.Stats()
		if s.Queries == 0 || s.Swaps < 2 {
			t.Fatalf("storm exercised nothing on %s: %+v", v.Name(), s)
		}
	}
	// Clean drain with flushed WALs.
	if err := n.Close(); err != nil {
		t.Fatalf("Close after storm: %v", err)
	}
}
