package server

import (
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"viptree/internal/snapshot"
	"viptree/internal/wal"
)

// TestHotSwapZeroFailures drops a newer snapshot while query traffic runs:
// the epoch must advance, every request in flight across the swap must
// succeed with exact answers, and afterwards kNN must see the new version's
// object set.
func TestHotSwapZeroFailures(t *testing.T) {
	f := fixture(t)
	n, fs := testNode(t, map[string]string{"alpha": "0001"}, nil)
	h := n.Handler()

	qs, want := distanceProbe(f, 8, 61)
	var failures atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				code, resp := queryBatch(t, h, "alpha", qs)
				if code != http.StatusOK {
					failures.Add(1)
					continue
				}
				for i, r := range resp.Results {
					if r.Err != "" || abs(r.Dist-want[i]) > 1e-6 {
						failures.Add(1)
					}
				}
			}
		}()
	}

	// Let traffic flow, then drop the new version mid-stream.
	time.Sleep(5 * time.Millisecond)
	fs.WriteFile("snaps/alpha@0002.snap", f.versions["0002"])
	v, _ := n.Venue("alpha")
	waitFor(t, 2*time.Second, "epoch 2", func() bool { return v.Epoch() == 2 })
	time.Sleep(5 * time.Millisecond) // traffic on the new engine too
	close(stop)
	wg.Wait()

	if failures.Load() != 0 {
		t.Fatalf("%d failed or wrong answers across the swap", failures.Load())
	}
	code, resp := queryBatch(t, h, "alpha", []WireQuery{
		{Kind: "knn", S: qs[0].S, K: 100},
	})
	if code != http.StatusOK || len(resp.Results[0].Objects) != f.objectCount["0002"] {
		t.Fatalf("after swap: code %d, %d objects, want %d",
			code, len(resp.Results[0].Objects), f.objectCount["0002"])
	}
	if s := v.Stats(); s.Swaps != 2 || s.Snapshot != "alpha@0002.snap" {
		t.Fatalf("stats after swap: %+v", s)
	}
}

// TestCorruptSnapshotQuarantined drops a corrupt newer snapshot: the venue
// must quarantine it with the right typed reason and keep serving the old
// version; a later valid snapshot must still swap in.
func TestCorruptSnapshotQuarantined(t *testing.T) {
	f := fixture(t)
	n, fs := testNode(t, map[string]string{"alpha": "0001"}, nil)
	h := n.Handler()
	v, _ := n.Venue("alpha")

	corrupt := append([]byte(nil), f.versions["0002"]...)
	corrupt[len(corrupt)-1] ^= 0xFF
	fs.WriteFile("snaps/alpha@0002.snap", corrupt)

	waitFor(t, 2*time.Second, "quarantine", func() bool { return v.quarantines.Load() >= 1 })
	s := v.Stats()
	if len(s.Quarantined) != 1 || s.Quarantined[0].Reason != snapshot.FailChecksum {
		t.Fatalf("quarantine ledger: %+v", s.Quarantined)
	}
	if s.Epoch != 1 || s.Snapshot != "alpha@0001.snap" {
		t.Fatalf("corrupt snapshot changed serving state: %+v", s)
	}
	// Still serving exact answers from the old version.
	qs, want := distanceProbe(f, 5, 67)
	code, resp := queryBatch(t, h, "alpha", qs)
	if code != http.StatusOK {
		t.Fatalf("query while quarantining: %d", code)
	}
	for i, r := range resp.Results {
		if r.Err != "" || abs(r.Dist-want[i]) > 1e-6 {
			t.Fatalf("query %d wrong under quarantine: %+v", i, r)
		}
	}

	// Backoff: the corrupt file is retried, attempts grow.
	waitFor(t, 2*time.Second, "retry", func() bool {
		st := v.Stats()
		return len(st.Quarantined) == 1 && st.Quarantined[0].Attempts >= 2
	})

	// A valid 0003 still swaps in past the quarantined 0002.
	fs.WriteFile("snaps/alpha@0003.snap", f.versions["0003"])
	waitFor(t, 2*time.Second, "swap to 0003", func() bool { return v.Epoch() == 2 })
	if st := v.Stats(); st.Snapshot != "alpha@0003.snap" {
		t.Fatalf("serving %q, want 0003", st.Snapshot)
	}
}

// TestTornSnapshotQuarantined: a truncated copy (torn mid-write) is typed
// FailTruncated; fixing the file in place swaps it in on retry.
func TestTornSnapshotQuarantined(t *testing.T) {
	f := fixture(t)
	n, fs := testNode(t, map[string]string{"alpha": "0001"}, nil)
	v, _ := n.Venue("alpha")

	fs.WriteFile("snaps/alpha@0002.snap", f.versions["0002"][:len(f.versions["0002"])/3])
	waitFor(t, 2*time.Second, "quarantine", func() bool { return v.quarantines.Load() >= 1 })
	if s := v.Stats(); len(s.Quarantined) != 1 || s.Quarantined[0].Reason != snapshot.FailTruncated {
		t.Fatalf("quarantine ledger: %+v", s.Quarantined)
	}

	// The slow copy completes: the same file is valid now, and the retry
	// path must pick it up (the quarantine entry clears).
	fs.WriteFile("snaps/alpha@0002.snap", f.versions["0002"])
	waitFor(t, 2*time.Second, "swap to completed 0002", func() bool { return v.Epoch() == 2 })
	if s := v.Stats(); len(s.Quarantined) != 0 || s.Snapshot != "alpha@0002.snap" {
		t.Fatalf("after recovery: %+v", s)
	}
}

// TestInitialLoadAllBad: a venue whose only snapshots are broken is
// quarantined (503 on query, unready), and recovers as soon as a valid
// snapshot lands.
func TestInitialLoadAllBad(t *testing.T) {
	f := fixture(t)
	fs := wal.NewFaultFS()
	fs.WriteFile("snaps/alpha@0001.snap", []byte("not a snapshot at all"))
	n, err := New(Options{
		SnapshotDir:  "snaps",
		FS:           fs,
		PollInterval: 2 * time.Millisecond,
		RetryBase:    5 * time.Millisecond,
		RetryMax:     20 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	h := n.Handler()

	v, ok := n.Venue("alpha")
	if !ok {
		t.Fatal("venue not created")
	}
	if got := v.Health(); got.State != StateQuarantined || got.Healthy {
		t.Fatalf("health: %+v, want quarantined", got)
	}
	qs, _ := distanceProbe(f, 1, 71)
	if code, _ := queryBatch(t, h, "alpha", qs); code != http.StatusServiceUnavailable {
		t.Fatalf("query against quarantined venue: %d, want 503", code)
	}
	if code, _ := doJSON(t, h, "GET", "/readyz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with quarantined venue: %d, want 503", code)
	}

	fs.WriteFile("snaps/alpha@0002.snap", f.versions["0001"])
	waitFor(t, 2*time.Second, "recovery", func() bool { return v.Epoch() == 1 })
	if code, _ := queryBatch(t, h, "alpha", qs); code != http.StatusOK {
		t.Fatalf("query after recovery: %d", code)
	}
}

// TestOldSnapshotIgnored: a file older than the served label must never be
// swapped in (no downgrade), and its presence must not churn the epoch.
func TestOldSnapshotIgnored(t *testing.T) {
	f := fixture(t)
	n, fs := testNode(t, map[string]string{"alpha": "0003"}, nil)
	v, _ := n.Venue("alpha")

	fs.WriteFile("snaps/alpha@0001.snap", f.versions["0001"])
	time.Sleep(20 * time.Millisecond) // several poll cycles
	if s := v.Stats(); s.Epoch != 1 || s.Snapshot != "alpha@0003.snap" {
		t.Fatalf("old snapshot caused churn: %+v", s)
	}
}
