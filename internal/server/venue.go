package server

import (
	"bytes"
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"viptree/internal/engine"
	"viptree/internal/snapshot"
)

// State is a venue's lifecycle state as surfaced by /statsz and /healthz.
type State string

// The venue lifecycle states.
const (
	// StateLoading: no engine yet, first snapshot still loading.
	StateLoading State = "loading"
	// StateServing: a verified engine is live and healthy.
	StateServing State = "serving"
	// StateSwapping: serving, with a newer snapshot loading in the
	// background.
	StateSwapping State = "swapping"
	// StateDegraded: serving reads, but the engine's WAL is degraded —
	// updates are rejected until the disk recovers.
	StateDegraded State = "degraded"
	// StateQuarantined: no live engine and every candidate snapshot failed;
	// queries get 503 while the candidates back off and retry.
	StateQuarantined State = "quarantined"
	// StateStopped: the venue was shut down (node drain); terminal.
	StateStopped State = "stopped"
)

// liveEngine is one venue engine generation: the engine, its provenance and
// a reference count that lets a swap retire it only after every in-flight
// batch has drained. The pointer-recheck in acquire keeps the invariant
// that a reference obtained while the engine is current is always safe to
// use until released.
type liveEngine struct {
	eng   *engine.Engine
	file  string // snapshot file this engine was loaded from
	label string
	epoch uint64 // venue swap epoch this engine became live at

	inflight  atomic.Int64
	retired   atomic.Bool
	drained   chan struct{}
	drainOnce sync.Once
}

func (le *liveEngine) release() {
	if le.inflight.Add(-1) == 0 && le.retired.Load() {
		le.drainOnce.Do(func() { close(le.drained) })
	}
}

// quarEntry is the quarantine record of one failed snapshot file.
type quarEntry struct {
	Reason   snapshot.FailureKind
	Err      string
	Attempts int
	// NextRetry is when the file may be tried again (exponential backoff,
	// capped at Options.RetryMax).
	NextRetry time.Time
}

// venue supervises one venue: the live engine pointer queries resolve
// through, the quarantine ledger, and the per-venue counters.
type venue struct {
	name string
	node *Node

	cur atomic.Pointer[liveEngine]

	mu         sync.Mutex            // guards swap/quarantine bookkeeping, not the query path
	phase      State                 // loading/serving/swapping/quarantined (degraded is derived)
	served     string                // label currently served ("" before first swap)
	quarantine map[string]*quarEntry // snapshot file -> failure record

	epoch       atomic.Uint64
	queries     atomic.Int64 // queries executed (not requests)
	swaps       atomic.Int64 // successful engine swaps (first load included)
	quarantines atomic.Int64 // quarantine events (re-failures included)
	panics      atomic.Int64 // queries answered with a recovered panic
	shed        atomic.Int64 // requests shed by admission control
	canceled    atomic.Int64 // queries cut off by a request deadline
}

func newVenue(n *Node, name string) *venue {
	return &venue{
		name:       name,
		node:       n,
		phase:      StateLoading,
		quarantine: make(map[string]*quarEntry),
	}
}

// Name returns the venue name.
func (v *venue) Name() string { return v.name }

// Epoch returns the venue's swap epoch: 0 before the first engine, then
// incremented by every successful swap. Query responses echo it, which is
// how clients (and the CI hot-swap check) observe a swap.
func (v *venue) Epoch() uint64 { return v.epoch.Load() }

// acquire returns a referenced live engine, or nil when the venue has none
// (still loading, quarantined, or shut down). The loop re-checks the
// pointer after taking the reference: if the engine was retired in between,
// the reference is dropped and the new pointer tried instead — so a
// returned engine is never one whose drain has been signalled.
func (v *venue) acquire() *liveEngine {
	for {
		le := v.cur.Load()
		if le == nil {
			return nil
		}
		le.inflight.Add(1)
		if v.cur.Load() == le && !le.retired.Load() {
			return le
		}
		le.release()
		if v.cur.Load() == le {
			return nil // retired in place: the venue is shutting down
		}
	}
}

// consider is called by the watcher with the venue's snapshot files, newest
// first. It loads the newest eligible candidate that is newer than what is
// being served; on failure the candidate is quarantined and the next one is
// tried, so the venue converges to the newest snapshot that actually
// verifies.
func (v *venue) consider(files []snapFile) {
	v.mu.Lock()
	served := v.served
	now := time.Now()
	var candidates []snapFile
	for _, sf := range files {
		if sf.label <= served && served != "" {
			break // files are newest-first; the rest are older than served
		}
		if q := v.quarantine[sf.name]; q != nil && now.Before(q.NextRetry) {
			continue // backing off
		}
		candidates = append(candidates, sf)
	}
	if len(candidates) == 0 {
		v.mu.Unlock()
		return
	}
	if v.phase == StateServing {
		v.phase = StateSwapping
	}
	v.mu.Unlock()

	swapped := false
	for _, sf := range candidates {
		if v.tryLoad(sf) {
			swapped = true
			break
		}
	}

	v.mu.Lock()
	switch {
	case swapped:
		v.phase = StateServing
	case v.cur.Load() != nil:
		v.phase = StateServing // every candidate failed; the old engine serves on
	default:
		v.phase = StateQuarantined
	}
	v.mu.Unlock()
}

// tryLoad loads, verifies and swaps in one snapshot file. On any failure
// the file is quarantined with its typed reason and the venue is left
// exactly as it was.
func (v *venue) tryLoad(sf snapFile) bool {
	eng, err := v.buildEngine(sf)
	if err != nil {
		v.quarantineFile(sf, err)
		return false
	}

	le := &liveEngine{
		eng:     eng,
		file:    sf.name,
		label:   sf.label,
		epoch:   v.epoch.Load() + 1,
		drained: make(chan struct{}),
	}
	v.mu.Lock()
	old := v.cur.Swap(le)
	v.served = sf.label
	delete(v.quarantine, sf.name)
	v.epoch.Add(1)
	v.swaps.Add(1)
	v.mu.Unlock()
	v.node.logf("server: venue %s: serving %s (epoch %d)", v.name, sf.name, le.epoch)

	if old != nil {
		// Retire asynchronously: in-flight batches drain on the old engine,
		// then its WAL flushes. The node's Close waits for all retirements.
		v.node.retireWG.Add(1)
		go func() {
			defer v.node.retireWG.Done()
			if err := retire(old); err != nil {
				v.node.logf("server: venue %s: closing old engine %s: %v", v.name, old.file, err)
			}
		}()
	}
	return true
}

// retire drains and closes a dereferenced engine generation: no new
// references can form (the pointer moved on, or was swapped to nil), so
// inflight only falls.
func retire(le *liveEngine) error {
	le.retired.Store(true)
	if le.inflight.Load() == 0 {
		le.drainOnce.Do(func() { close(le.drained) })
	}
	<-le.drained
	return le.eng.Close()
}

// buildEngine reads, verifies and wires up one snapshot file: the full
// verify-before-swap path. Every error is classifiable by
// snapshot.Classify.
func (v *venue) buildEngine(sf snapFile) (*engine.Engine, error) {
	path := v.node.opts.SnapshotDir + "/" + sf.name
	f, err := v.node.opts.FS.Open(path)
	if err != nil {
		return nil, err
	}
	data, err := readAll(f)
	if err != nil {
		return nil, err
	}
	snap, err := snapshot.Read(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	if err := snap.Verify(); err != nil {
		return nil, err
	}

	eopts := engine.Options{Workers: v.node.opts.Workers}
	if snap.Objects != nil {
		eopts.Objects = snap.Objects
	}
	if v.node.opts.WALRoot != "" && snap.Objects != nil {
		eopts.WALDir = v.node.opts.WALRoot + "/" + v.name + "/" + sf.label
		eopts.WALOptions = v.node.opts.WALOptions
		eng, rec, err := engine.Open(snap.Index(), eopts)
		if err != nil {
			return nil, err
		}
		if rec.Replayed > 0 {
			v.node.logf("server: venue %s: replayed %d WAL records onto %s", v.name, rec.Replayed, sf.name)
		}
		return eng, nil
	}
	return engine.New(snap.Index(), eopts), nil
}

// quarantineFile records one load failure and schedules the retry.
func (v *venue) quarantineFile(sf snapFile, err error) {
	kind := snapshot.Classify(err)
	v.mu.Lock()
	q := v.quarantine[sf.name]
	if q == nil {
		q = &quarEntry{}
		v.quarantine[sf.name] = q
	}
	q.Reason = kind
	q.Err = err.Error()
	q.Attempts++
	backoff := v.node.opts.RetryBase << (q.Attempts - 1)
	if backoff > v.node.opts.RetryMax || backoff <= 0 {
		backoff = v.node.opts.RetryMax
	}
	q.NextRetry = time.Now().Add(backoff)
	v.quarantines.Add(1)
	v.mu.Unlock()
	v.node.logf("server: venue %s: quarantined %s (%s, attempt %d, retry in %s): %v",
		v.name, sf.name, kind, q.Attempts, backoff, err)
}

// shutdown retires the venue's engine for good: the pointer is swapped to
// nil so acquire returns nil, in-flight batches drain, and the WAL flushes.
func (v *venue) shutdown() error {
	v.mu.Lock()
	v.phase = StateStopped
	v.mu.Unlock()
	le := v.cur.Swap(nil)
	if le == nil {
		return nil
	}
	return retire(le)
}

// execute runs one admitted batch against the venue's live engine under the
// request context, maintaining the per-venue counters. It returns the
// engine's results and the serving epoch, or an error when the venue has no
// live engine.
func (v *venue) execute(ctx context.Context, queries []engine.Query) ([]engine.Result, uint64, error) {
	le := v.acquire()
	if le == nil {
		return nil, 0, errNoEngine
	}
	defer le.release()
	results := le.eng.ExecuteBatchContext(ctx, queries)
	var panics, cancels int64
	for i := range results {
		var perr *engine.PanicError
		switch {
		case errors.As(results[i].Err, &perr):
			panics++
		case errors.Is(results[i].Err, engine.ErrCanceled):
			cancels++
		}
	}
	v.queries.Add(int64(len(queries)))
	if panics > 0 {
		v.panics.Add(panics)
	}
	if cancels > 0 {
		v.canceled.Add(cancels)
	}
	return results, le.epoch, nil
}

// errNoEngine reports a query against a venue with no live engine.
var errNoEngine = errors.New("server: venue has no live engine")

// Health is a venue's point-in-time health.
type Health struct {
	State State `json:"state"`
	// Healthy means queries are being served (reads at least).
	Healthy bool `json:"healthy"`
	// Durable and WALState mirror engine.Health for durable venues.
	Durable  bool   `json:"durable,omitempty"`
	WALState string `json:"wal_state,omitempty"`
}

// Health derives the venue's current health: the stored lifecycle phase,
// with StateDegraded overriding StateServing while the engine's WAL is
// unhealthy.
func (v *venue) Health() Health {
	v.mu.Lock()
	phase := v.phase
	v.mu.Unlock()
	le := v.acquire()
	if le == nil {
		if phase != StateQuarantined && phase != StateStopped {
			phase = StateLoading
		}
		return Health{State: phase, Healthy: false}
	}
	defer le.release()
	h := le.eng.Health()
	out := Health{State: phase, Healthy: true, Durable: h.Durable}
	if h.Durable {
		out.WALState = h.WAL.State.String()
		if !h.Healthy() && (phase == StateServing || phase == StateSwapping) {
			out.State = StateDegraded
		}
	}
	return out
}

// QuarantineInfo is one quarantined snapshot file in Stats.
type QuarantineInfo struct {
	File      string               `json:"file"`
	Reason    snapshot.FailureKind `json:"reason"`
	Error     string               `json:"error"`
	Attempts  int                  `json:"attempts"`
	NextRetry time.Time            `json:"next_retry"`
}

// Stats is a venue's counter snapshot, the /statsz payload.
type Stats struct {
	State       State            `json:"state"`
	Epoch       uint64           `json:"epoch"`
	Snapshot    string           `json:"snapshot,omitempty"` // file currently served
	Queries     int64            `json:"queries"`
	Swaps       int64            `json:"swaps"`
	Quarantines int64            `json:"quarantines"`
	Panics      int64            `json:"panics"`
	Shed        int64            `json:"shed"`
	Canceled    int64            `json:"canceled"`
	Quarantined []QuarantineInfo `json:"quarantined,omitempty"`
}

// Stats snapshots the venue's counters and quarantine ledger.
func (v *venue) Stats() Stats {
	s := Stats{
		State:       v.Health().State,
		Epoch:       v.epoch.Load(),
		Queries:     v.queries.Load(),
		Swaps:       v.swaps.Load(),
		Quarantines: v.quarantines.Load(),
		Panics:      v.panics.Load(),
		Shed:        v.shed.Load(),
		Canceled:    v.canceled.Load(),
	}
	if le := v.acquire(); le != nil {
		s.Snapshot = le.file
		le.release()
	}
	v.mu.Lock()
	for file, q := range v.quarantine {
		s.Quarantined = append(s.Quarantined, QuarantineInfo{
			File: file, Reason: q.Reason, Error: q.Err,
			Attempts: q.Attempts, NextRetry: q.NextRetry,
		})
	}
	v.mu.Unlock()
	sort.Slice(s.Quarantined, func(i, j int) bool { return s.Quarantined[i].File < s.Quarantined[j].File })
	return s
}
