package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc64"
	"math/rand"
	"testing"

	"viptree/internal/iptree"
	"viptree/internal/model"
	"viptree/internal/venuegen"
)

// The fuzz targets pin the promise the package doc makes: truncation and
// corruption surface as typed errors, never as panics or garbage indexes.
// FuzzReadSnapshot throws arbitrary bytes at the container framing;
// FuzzSnapshotPayload wraps arbitrary bytes in a VALID frame (magic,
// version, length, recomputed CRC) so the fuzzer reaches the gob decoder,
// the venue restore and the index/object-index validation paths that the
// checksum would otherwise shield.

// fuzzSeedSnapshot builds one real snapshot to seed the corpus: an IP-Tree
// with an embedded, mutated object index over the paper's running example
// (small enough to keep fuzz iterations fast, rich enough to exercise every
// section of the payload).
func fuzzSeedSnapshot(f *testing.F) []byte {
	f.Helper()
	v := venuegen.PaperExample()
	tree := iptree.MustBuildIPTree(v, iptree.Options{})
	rng := rand.New(rand.NewSource(3))
	objects := make([]model.Location, 10)
	for i := range objects {
		objects[i] = v.RandomLocation(rng)
	}
	oi := tree.IndexObjects(objects)
	if err := oi.Delete(4); err != nil {
		f.Fatalf("Delete: %v", err)
	}
	if _, err := oi.Insert(v.RandomLocation(rng)); err != nil {
		f.Fatalf("Insert: %v", err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, v, tree, oi); err != nil {
		f.Fatalf("Write: %v", err)
	}
	return buf.Bytes()
}

// FuzzReadSnapshot feeds arbitrary bytes to Read. Any outcome but a clean
// error or a successful load is a bug; a real snapshot from the corpus that
// stops round-tripping is one too.
func FuzzReadSnapshot(f *testing.F) {
	snap := fuzzSeedSnapshot(f)
	f.Add(snap)
	f.Add([]byte{})
	f.Add([]byte("VIPTSNAP"))               // header cut short
	f.Add(snap[:headerSize])                // payload missing entirely
	f.Add(snap[:headerSize+7])              // payload truncated mid-gob
	f.Add(append([]byte(nil), snap[1:]...)) // magic shifted off

	corrupted := append([]byte(nil), snap...)
	corrupted[headerSize+3] ^= 0xFF // flip a payload byte under the checksum
	f.Add(corrupted)

	badVersion := append([]byte(nil), snap...)
	binary.BigEndian.PutUint32(badVersion[8:], 999)
	f.Add(badVersion)

	hugeLen := append([]byte(nil), snap[:headerSize]...)
	binary.BigEndian.PutUint64(hugeLen[12:], 1<<40) // over maxPayload
	f.Add(hugeLen)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Read(bytes.NewReader(data))
		if err != nil {
			if s != nil {
				t.Fatalf("Read returned both a snapshot and error %v", err)
			}
			return
		}
		// A successful load must hand back a usable index: these calls must
		// not panic and the venue must be present.
		if s.Venue == nil || s.Tree == nil {
			t.Fatalf("Read succeeded but returned incomplete snapshot %+v", s)
		}
		q := model.Location{Partition: 0, Point: s.Venue.Partition(0).Bounds.Center()}
		s.Index().Distance(q, q)
		if s.Objects != nil {
			s.Objects.KNN(q, 1)
		}
	})
}

// FuzzSnapshotPayload frames the fuzzer's bytes as a checksum-valid payload
// before calling Read, so mutations reach the decoding layers behind the
// CRC: the gob body, the serial venue restore, the tree snapshot decoder
// and the object-index validation. The corpus seeds the three payload
// flavours (with objects, without, VIP) so the fuzzer mutates from valid
// gob streams instead of random noise.
func FuzzSnapshotPayload(f *testing.F) {
	snap := fuzzSeedSnapshot(f)
	f.Add(snap[headerSize:])

	v := venuegen.PaperExample()
	var noObj bytes.Buffer
	if err := Write(&noObj, v, iptree.MustBuildIPTree(v, iptree.Options{}), nil); err != nil {
		f.Fatalf("Write: %v", err)
	}
	f.Add(noObj.Bytes()[headerSize:])

	var vip bytes.Buffer
	if err := Write(&vip, v, iptree.NewVIPTree(iptree.MustBuildIPTree(v, iptree.Options{})), nil); err != nil {
		f.Fatalf("Write: %v", err)
	}
	f.Add(vip.Bytes()[headerSize:])

	f.Fuzz(func(t *testing.T, payload []byte) {
		if len(payload) > maxPayload {
			t.Skip("over the container's payload bound")
		}
		frame := make([]byte, headerSize+len(payload))
		copy(frame, magic)
		binary.BigEndian.PutUint32(frame[8:], FormatVersion)
		binary.BigEndian.PutUint64(frame[12:], uint64(len(payload)))
		binary.BigEndian.PutUint64(frame[20:], crc64.Checksum(payload, crcTable))
		copy(frame[headerSize:], payload)

		s, err := Read(bytes.NewReader(frame))
		if err != nil {
			// The frame is valid by construction, so framing errors must
			// not surface here — anything wrong lives in the payload.
			if errors.Is(err, ErrNotSnapshot) || errors.Is(err, ErrTruncated) || errors.Is(err, ErrChecksum) {
				t.Fatalf("checksum-valid frame reported a framing error: %v", err)
			}
			return
		}
		if s.Venue == nil || s.Tree == nil {
			t.Fatalf("Read succeeded but returned incomplete snapshot %+v", s)
		}
	})
}
