// Package snapshot persists fully built indexes to disk and loads them back,
// so that the heavy preprocessing the paper trades for near-constant query
// time (leaf and non-leaf distance matrices, per-door VIP materialisation)
// is paid once at build time instead of on every process start. A serving
// process loads a snapshot in milliseconds and answers bit-identical
// Distance/Path/KNN/Range queries to a freshly built index.
//
// # File format (version 1)
//
//	offset  size  field
//	0       8     magic "VIPTSNAP"
//	8       4     container format version (big-endian uint32)
//	12      8     payload length in bytes (big-endian uint64)
//	20      8     CRC-64/ECMA checksum of the payload (big-endian uint64)
//	28      —     payload
//
// The payload is a gob-encoded body holding three sections: the venue
// (encoded by viptree/internal/serial), the index state (encoded by the
// index's EncodeSnapshot method, dispatched on its SnapshotKind string) and
// an optional embedded object index. Every read validates the magic, the
// container version, the payload length and the checksum before decoding a
// single section, so truncation and corruption surface as typed errors
// (ErrNotSnapshot, ErrTruncated, ErrChecksum, *VersionError) rather than as
// garbage indexes.
//
// # Versioning rules
//
// The container version guards the framing above and only changes when the
// header layout changes. Payload schemas are versioned independently through
// the kind string ("iptree/v1", "viptree/v1"): an incompatible change to an
// index's exported state introduces a new kind, and loaders reject kinds
// they do not understand with an UnknownKindError.
package snapshot

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"os"

	"viptree/internal/index"
	"viptree/internal/iptree"
	"viptree/internal/model"
	"viptree/internal/serial"
)

// magic identifies a snapshot file; it is the first eight bytes on disk.
const magic = "VIPTSNAP"

// FormatVersion is the container format version written to the header.
const FormatVersion uint32 = 1

// headerSize is the fixed size of the on-disk header.
const headerSize = len(magic) + 4 + 8 + 8

// maxPayload bounds the payload length accepted by Read, guarding against
// allocating huge buffers for a corrupted length field (1 GiB is far larger
// than any real snapshot; the full-scale CL-2 venue serialises to tens of
// megabytes).
const maxPayload = 1 << 30

// crcTable is the CRC-64/ECMA table used for the payload checksum.
var crcTable = crc64.MakeTable(crc64.ECMA)

// Errors reported by Read and Load. Corruption is always detected before any
// section is decoded.
var (
	// ErrNotSnapshot reports a file that does not start with the snapshot
	// magic bytes (e.g. a raw venue file from internal/serial).
	ErrNotSnapshot = errors.New("snapshot: bad magic (not a snapshot file)")
	// ErrTruncated reports a file shorter than its header or declared
	// payload length.
	ErrTruncated = errors.New("snapshot: file truncated")
	// ErrChecksum reports a payload whose CRC-64 does not match the header.
	ErrChecksum = errors.New("snapshot: payload checksum mismatch (file corrupted)")
)

// VersionError reports a container format version this build cannot read.
type VersionError struct {
	Got, Want uint32
}

// Error implements error.
func (e *VersionError) Error() string {
	return fmt.Sprintf("snapshot: unsupported format version %d (this build reads version %d)", e.Got, e.Want)
}

// UnknownKindError reports an index payload kind this build cannot restore.
type UnknownKindError struct {
	Kind string
}

// Error implements error.
func (e *UnknownKindError) Error() string {
	return fmt.Sprintf("snapshot: unknown index kind %q", e.Kind)
}

// body is the gob-encoded payload: the three sections of a snapshot.
type body struct {
	// Kind is the index payload schema (the index's SnapshotKind).
	Kind string
	// Venue is the serial-encoded venue the index was built over.
	Venue []byte
	// Index is the payload written by the index's EncodeSnapshot.
	Index []byte
	// Objects is an optional gob-encoded iptree.ObjectIndexState; nil when
	// the snapshot embeds no object index.
	Objects []byte
}

// Snapshot is a loaded (or about-to-be-written) snapshot: the venue, the
// restored index and an optional embedded object index.
type Snapshot struct {
	// Venue is the venue the index was built over, reconstructed through the
	// normal Builder validation path.
	Venue *model.Venue
	// Tree is the restored IP-Tree. It is always set: for VIP-Tree snapshots
	// it is the tree underlying VIP.
	Tree *iptree.Tree
	// VIP is the restored VIP-Tree; nil for IP-Tree snapshots.
	VIP *iptree.VIPTree
	// Objects is the embedded object index, or nil.
	Objects *iptree.ObjectIndex
}

// Index returns the snapshot's index under the uniform capability interface:
// the VIP-Tree when one is present, the IP-Tree otherwise.
func (s *Snapshot) Index() index.ObjectIndexer {
	if s.VIP != nil {
		return s.VIP
	}
	return s.Tree
}

// Kind returns the payload kind of the snapshot's index.
func (s *Snapshot) Kind() string {
	if s.VIP != nil {
		return iptree.SnapshotKindVIPTree
	}
	return iptree.SnapshotKindIPTree
}

// Write serialises the venue, the index and an optional object index
// (pass nil to omit it) to w in the versioned container format. The index
// must have been built over v; the mismatch is detected when the index
// exposes its venue.
//
// Write buffers the payload in memory before emitting it: the header
// carries the payload length and checksum, and w need not be seekable
// (Read/Write round-trip through plain byte buffers in tests and
// benchmarks). For the largest venues this costs a transient multiple of
// the snapshot size at build time — a deliberate trade-off, since writing
// happens once on the build box while the serve path only ever reads.
func Write(w io.Writer, v *model.Venue, ix index.Snapshotter, objects *iptree.ObjectIndex) error {
	if v == nil {
		return fmt.Errorf("snapshot: nil venue")
	}
	if ix == nil {
		return fmt.Errorf("snapshot: nil index")
	}
	if owner, ok := ix.(interface{ Venue() *model.Venue }); ok && owner.Venue() != v {
		return fmt.Errorf("snapshot: index was built over a different venue than the one being written")
	}
	b := body{Kind: ix.SnapshotKind()}

	var venueBuf bytes.Buffer
	if err := serial.Write(&venueBuf, v); err != nil {
		return fmt.Errorf("snapshot: encoding venue: %w", err)
	}
	b.Venue = venueBuf.Bytes()

	var indexBuf bytes.Buffer
	if err := ix.EncodeSnapshot(&indexBuf); err != nil {
		return fmt.Errorf("snapshot: encoding index: %w", err)
	}
	b.Index = indexBuf.Bytes()

	if objects != nil {
		var objBuf bytes.Buffer
		if err := gob.NewEncoder(&objBuf).Encode(objects.ExportState()); err != nil {
			return fmt.Errorf("snapshot: encoding object index: %w", err)
		}
		b.Objects = objBuf.Bytes()
	}

	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&b); err != nil {
		return fmt.Errorf("snapshot: encoding payload: %w", err)
	}

	header := make([]byte, headerSize)
	copy(header, magic)
	binary.BigEndian.PutUint32(header[8:], FormatVersion)
	binary.BigEndian.PutUint64(header[12:], uint64(payload.Len()))
	binary.BigEndian.PutUint64(header[20:], crc64.Checksum(payload.Bytes(), crcTable))
	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("snapshot: writing header: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("snapshot: writing payload: %w", err)
	}
	return nil
}

// Read loads a snapshot from r: it validates the header (magic, version,
// length, checksum), reconstructs the venue and restores the index — and the
// embedded object index, when present — without re-running construction.
func Read(r io.Reader) (*Snapshot, error) {
	header := make([]byte, headerSize)
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, fmt.Errorf("%w: reading header: %v", ErrTruncated, err)
	}
	if string(header[:len(magic)]) != magic {
		return nil, ErrNotSnapshot
	}
	if version := binary.BigEndian.Uint32(header[8:]); version != FormatVersion {
		return nil, &VersionError{Got: version, Want: FormatVersion}
	}
	length := binary.BigEndian.Uint64(header[12:])
	if length > maxPayload {
		return nil, fmt.Errorf("%w: declared payload length %d exceeds limit", ErrChecksum, length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: reading %d-byte payload: %v", ErrTruncated, length, err)
	}
	if sum := crc64.Checksum(payload, crcTable); sum != binary.BigEndian.Uint64(header[20:]) {
		return nil, ErrChecksum
	}

	var b body
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&b); err != nil {
		return nil, fmt.Errorf("snapshot: decoding payload: %w", err)
	}
	venue, err := serial.Read(bytes.NewReader(b.Venue))
	if err != nil {
		return nil, fmt.Errorf("snapshot: restoring venue: %w", err)
	}

	s := &Snapshot{Venue: venue}
	switch b.Kind {
	case iptree.SnapshotKindIPTree:
		t, err := iptree.DecodeTreeSnapshot(bytes.NewReader(b.Index), venue)
		if err != nil {
			return nil, fmt.Errorf("snapshot: restoring index: %w", err)
		}
		s.Tree = t
	case iptree.SnapshotKindVIPTree:
		vt, err := iptree.DecodeVIPSnapshot(bytes.NewReader(b.Index), venue)
		if err != nil {
			return nil, fmt.Errorf("snapshot: restoring index: %w", err)
		}
		s.Tree = vt.Tree
		s.VIP = vt
	default:
		return nil, &UnknownKindError{Kind: b.Kind}
	}

	if b.Objects != nil {
		var st iptree.ObjectIndexState
		if err := gob.NewDecoder(bytes.NewReader(b.Objects)).Decode(&st); err != nil {
			return nil, fmt.Errorf("snapshot: decoding object index: %w", err)
		}
		oi, err := iptree.RestoreObjectIndex(s.Tree, &st)
		if err != nil {
			return nil, fmt.Errorf("snapshot: restoring object index: %w", err)
		}
		s.Objects = oi
	}
	return s, nil
}

// Save writes a snapshot to a file, creating or truncating it.
func Save(path string, v *model.Venue, ix index.Snapshotter, objects *iptree.ObjectIndex) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("snapshot: creating %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("snapshot: closing %s: %w", path, cerr)
		}
	}()
	return Write(f, v, ix, objects)
}

// Load reads a snapshot from a file.
func Load(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: opening %s: %w", path, err)
	}
	defer f.Close()
	return Read(f)
}
