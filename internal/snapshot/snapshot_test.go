package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"viptree/internal/index"
	"viptree/internal/iptree"
	"viptree/internal/model"
	"viptree/internal/venuegen"
)

// testVenues generates a spread of random venues: multi-floor buildings of
// varying shapes plus a multi-building campus, so the round-trip property is
// exercised over tree shapes with different heights, fanouts and outdoor
// edges.
func testVenues(t *testing.T) map[string]*model.Venue {
	t.Helper()
	venues := map[string]*model.Venue{}
	for i, cfg := range []venuegen.BuildingConfig{
		{Name: "b1", Floors: 1, RoomsPerHallway: 8, Seed: 11},
		{Name: "b2", Floors: 3, RoomsPerHallway: 12, Seed: 22},
		{Name: "b3", Floors: 2, RoomsPerHallway: 20, HallwaysPerFloor: 2, Seed: 33},
	} {
		v, err := venuegen.Building(cfg)
		if err != nil {
			t.Fatalf("building %d: %v", i, err)
		}
		venues[cfg.Name] = v
	}
	campus, err := venuegen.Campus(venuegen.CampusConfig{
		Name:      "campus",
		Buildings: 3,
		Building:  venuegen.BuildingConfig{Floors: 2, RoomsPerHallway: 8},
		Jitter:    true,
		Seed:      44,
	})
	if err != nil {
		t.Fatalf("campus: %v", err)
	}
	venues["campus"] = campus
	return venues
}

// roundTrip writes the index (and optional object index) to an in-memory
// snapshot and reads it back.
func roundTrip(t *testing.T, v *model.Venue, ix index.Snapshotter, oi *iptree.ObjectIndex) *Snapshot {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, v, ix, oi); err != nil {
		t.Fatalf("Write: %v", err)
	}
	s, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	return s
}

// TestRoundTripIdenticalAnswers is the acceptance property: a loaded index
// must answer bit-identical Distance, Path, KNN and Range queries to the
// freshly built one, over random venues and random workloads. Distances are
// compared with ==, paths and result lists with deep equality — no epsilon.
func TestRoundTripIdenticalAnswers(t *testing.T) {
	for name, v := range testVenues(t) {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			objects := make([]model.Location, 25)
			for i := range objects {
				objects[i] = v.RandomLocation(rng)
			}

			ip := iptree.MustBuildIPTree(v, iptree.Options{})
			vip := iptree.NewVIPTree(iptree.MustBuildIPTree(v, iptree.Options{}))

			for _, tc := range []struct {
				kind  string
				built index.ObjectIndexer
				snap  index.Snapshotter
			}{
				{"ip", ip, ip},
				{"vip", vip, vip},
			} {
				t.Run(tc.kind, func(t *testing.T) {
					builtOI := tc.built.NewObjectQuerier(objects)
					s := roundTrip(t, v, tc.snap, nil)
					if s.Venue.NumDoors() != v.NumDoors() || s.Venue.NumPartitions() != v.NumPartitions() {
						t.Fatalf("venue shape changed: %d/%d doors, %d/%d partitions",
							s.Venue.NumDoors(), v.NumDoors(), s.Venue.NumPartitions(), v.NumPartitions())
					}
					loaded := s.Index()
					if loaded.Name() != tc.built.Name() {
						t.Fatalf("Name() = %q, want %q", loaded.Name(), tc.built.Name())
					}
					// Query locations must reference the loaded venue's
					// partitions; partition IDs and geometry are identical,
					// so locations transfer verbatim.
					loadedOI := loaded.NewObjectQuerier(objects)
					for i := 0; i < 200; i++ {
						s1 := v.RandomLocation(rng)
						s2 := v.RandomLocation(rng)
						if got, want := loaded.Distance(s1, s2), tc.built.Distance(s1, s2); got != want {
							t.Fatalf("Distance(%v, %v) = %v, built index says %v", s1, s2, got, want)
						}
						gd, gp := loaded.Path(s1, s2)
						wd, wp := tc.built.Path(s1, s2)
						if gd != wd || !reflect.DeepEqual(gp, wp) {
							t.Fatalf("Path(%v, %v) = (%v, %v), built index says (%v, %v)", s1, s2, gd, gp, wd, wp)
						}
					}
					for i := 0; i < 50; i++ {
						q := v.RandomLocation(rng)
						if got, want := loadedOI.KNN(q, 5), builtOI.KNN(q, 5); !reflect.DeepEqual(got, want) {
							t.Fatalf("KNN(%v, 5) = %v, built index says %v", q, got, want)
						}
						if got, want := loadedOI.Range(q, 80), builtOI.Range(q, 80); !reflect.DeepEqual(got, want) {
							t.Fatalf("Range(%v, 80) = %v, built index says %v", q, got, want)
						}
					}
				})
			}
		})
	}
}

// TestRoundTripEmbeddedObjects checks that an object index embedded in the
// snapshot survives the round trip and answers identical object queries.
func TestRoundTripEmbeddedObjects(t *testing.T) {
	v := venuegen.MustBuilding(venuegen.BuildingConfig{
		Name: "objects", Floors: 2, RoomsPerHallway: 12, Seed: 5,
	})
	rng := rand.New(rand.NewSource(9))
	objects := make([]model.Location, 30)
	for i := range objects {
		objects[i] = v.RandomLocation(rng)
	}
	vip := iptree.NewVIPTree(iptree.MustBuildIPTree(v, iptree.Options{}))
	oi := vip.IndexObjects(objects)

	s := roundTrip(t, v, vip, oi)
	if s.Objects == nil {
		t.Fatal("snapshot lost the embedded object index")
	}
	if s.Objects.Name() != oi.Name() {
		t.Fatalf("object index name %q, want %q", s.Objects.Name(), oi.Name())
	}
	if !reflect.DeepEqual(s.Objects.Objects(), objects) {
		t.Fatal("embedded object locations changed in the round trip")
	}
	for i := 0; i < 100; i++ {
		q := v.RandomLocation(rng)
		if got, want := s.Objects.KNN(q, 7), oi.KNN(q, 7); !reflect.DeepEqual(got, want) {
			t.Fatalf("KNN(%v, 7) = %v, built index says %v", q, got, want)
		}
		if got, want := s.Objects.Range(q, 120), oi.Range(q, 120); !reflect.DeepEqual(got, want) {
			t.Fatalf("Range(%v, 120) = %v, built index says %v", q, got, want)
		}
	}
}

// TestRoundTripPreservesOptions checks that non-default construction options
// survive the round trip (they change query behaviour, so dropping them
// would silently produce a different index).
func TestRoundTripPreservesOptions(t *testing.T) {
	v := venuegen.MustBuilding(venuegen.BuildingConfig{
		Name: "opts", Floors: 2, RoomsPerHallway: 10, Seed: 6,
	})
	built := iptree.MustBuildIPTree(v, iptree.Options{MinDegree: 4, DisableSuperiorDoors: true})
	s := roundTrip(t, v, built, nil)
	st := s.Tree.ExportState()
	if st.MinDegree != 4 || !st.DisableSuperiorDoors || st.NaiveMerge {
		t.Fatalf("options not preserved: %+v", st)
	}
}

// writeValid returns a valid in-memory snapshot used by the corruption tests.
func writeValid(t *testing.T) []byte {
	t.Helper()
	v := venuegen.MustBuilding(venuegen.BuildingConfig{
		Name: "corrupt", Floors: 1, RoomsPerHallway: 8, Seed: 2,
	})
	vip := iptree.NewVIPTree(iptree.MustBuildIPTree(v, iptree.Options{}))
	var buf bytes.Buffer
	if err := Write(&buf, v, vip, nil); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return buf.Bytes()
}

// TestTruncatedFile checks that every prefix-truncation of a snapshot is
// rejected with a typed error instead of yielding a broken index.
func TestTruncatedFile(t *testing.T) {
	data := writeValid(t)
	for _, cut := range []int{0, 4, len(magic), headerSize - 1, headerSize, headerSize + 1, len(data) / 2, len(data) - 1} {
		_, err := Read(bytes.NewReader(data[:cut]))
		if !errors.Is(err, ErrTruncated) {
			t.Errorf("Read(truncated at %d) = %v, want ErrTruncated", cut, err)
		}
	}
}

// TestBadMagic checks that non-snapshot files are rejected up front.
func TestBadMagic(t *testing.T) {
	data := writeValid(t)
	data[0] ^= 0xFF
	if _, err := Read(bytes.NewReader(data)); !errors.Is(err, ErrNotSnapshot) {
		t.Fatalf("Read(bad magic) = %v, want ErrNotSnapshot", err)
	}
}

// TestWrongVersion checks that a future container version is rejected with a
// VersionError carrying both versions.
func TestWrongVersion(t *testing.T) {
	data := writeValid(t)
	binary.BigEndian.PutUint32(data[8:], FormatVersion+1)
	_, err := Read(bytes.NewReader(data))
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("Read(wrong version) = %v, want *VersionError", err)
	}
	if ve.Got != FormatVersion+1 || ve.Want != FormatVersion {
		t.Fatalf("VersionError = %+v, want Got=%d Want=%d", ve, FormatVersion+1, FormatVersion)
	}
}

// TestCorruptPayload flips single bytes across the payload and checks that
// the checksum rejects every one of them before any decoding happens.
func TestCorruptPayload(t *testing.T) {
	data := writeValid(t)
	for _, off := range []int{headerSize, headerSize + 10, (headerSize + len(data)) / 2, len(data) - 1} {
		mutated := append([]byte(nil), data...)
		mutated[off] ^= 0x01
		if _, err := Read(bytes.NewReader(mutated)); !errors.Is(err, ErrChecksum) {
			t.Errorf("Read(corrupt byte at %d) = %v, want ErrChecksum", off, err)
		}
	}
}

// TestCorruptLengthField checks that an absurd declared payload length is
// rejected without attempting the allocation.
func TestCorruptLengthField(t *testing.T) {
	data := writeValid(t)
	binary.BigEndian.PutUint64(data[12:], maxPayload+1)
	if _, err := Read(bytes.NewReader(data)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("Read(huge length) = %v, want ErrChecksum", err)
	}
}

// TestUnknownKind checks that a payload with an unrecognised index kind is
// rejected with an UnknownKindError (this is how schema evolution surfaces
// to old binaries).
func TestUnknownKind(t *testing.T) {
	v := venuegen.MustBuilding(venuegen.BuildingConfig{
		Name: "kind", Floors: 1, RoomsPerHallway: 8, Seed: 3,
	})
	vip := iptree.NewVIPTree(iptree.MustBuildIPTree(v, iptree.Options{}))
	var buf bytes.Buffer
	if err := Write(&buf, v, kindOverride{vip, "viptree/v999"}, nil); err != nil {
		t.Fatalf("Write: %v", err)
	}
	_, err := Read(bytes.NewReader(buf.Bytes()))
	var ke *UnknownKindError
	if !errors.As(err, &ke) {
		t.Fatalf("Read(unknown kind) = %v, want *UnknownKindError", err)
	}
	if ke.Kind != "viptree/v999" {
		t.Fatalf("UnknownKindError.Kind = %q", ke.Kind)
	}
}

// kindOverride wraps a Snapshotter, overriding its kind string.
type kindOverride struct {
	index.Snapshotter
	kind string
}

func (k kindOverride) SnapshotKind() string { return k.kind }

// TestVenueMismatch checks that writing an index with a venue it was not
// built over is rejected.
func TestVenueMismatch(t *testing.T) {
	v1 := venuegen.MustBuilding(venuegen.BuildingConfig{Name: "v1", Floors: 1, RoomsPerHallway: 8, Seed: 1})
	v2 := venuegen.MustBuilding(venuegen.BuildingConfig{Name: "v2", Floors: 1, RoomsPerHallway: 8, Seed: 1})
	tree := iptree.MustBuildIPTree(v1, iptree.Options{})
	var buf bytes.Buffer
	if err := Write(&buf, v2, tree, nil); err == nil {
		t.Fatal("Write accepted an index built over a different venue")
	}
}

// TestSaveLoadFile exercises the file-based helpers end to end.
func TestSaveLoadFile(t *testing.T) {
	v := venuegen.MustBuilding(venuegen.BuildingConfig{
		Name: "file", Floors: 2, RoomsPerHallway: 10, Seed: 8,
	})
	vip := iptree.NewVIPTree(iptree.MustBuildIPTree(v, iptree.Options{}))
	path := t.TempDir() + "/venue.snap"
	if err := Save(path, v, vip, nil); err != nil {
		t.Fatalf("Save: %v", err)
	}
	s, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if s.VIP == nil {
		t.Fatal("loaded snapshot has no VIP-Tree")
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		a, b := v.RandomLocation(rng), v.RandomLocation(rng)
		if got, want := s.VIP.Distance(a, b), vip.Distance(a, b); got != want {
			t.Fatalf("Distance(%v, %v) = %v, want %v", a, b, got, want)
		}
	}
}
