package snapshot

import (
	"errors"
	"fmt"
	"io/fs"
	"math"
	"math/rand"
)

// This file is the verify-before-swap hook of the serving node. A snapshot
// that passed the container checks (magic, version, length, checksum) and
// decoded cleanly can still be wrong — a build-box bug, a schema change that
// gob happens to tolerate, an index encoded against a different venue.
// Verify answers distance queries on the restored index and cross-checks
// them against the exact door-to-door ground truth the venue itself carries,
// so a serving node can refuse to swap in an index that would serve wrong
// answers. Classify folds the whole failure surface (missing file, torn
// file, checksum, version, decode, verify) into one small enum the node's
// quarantine bookkeeping and operators key on.

// FailureKind is the typed reason a snapshot was rejected, the quarantine
// vocabulary of the serving node.
type FailureKind string

// The failure kinds Classify distinguishes.
const (
	// FailMissing: the file does not exist (yet) — e.g. a watcher racing a
	// slow copy into the snapshot directory.
	FailMissing FailureKind = "missing"
	// FailNotSnapshot: the magic bytes are wrong; not a snapshot file.
	FailNotSnapshot FailureKind = "not-snapshot"
	// FailTruncated: the file is shorter than its header or declared
	// payload — the signature of a torn copy.
	FailTruncated FailureKind = "truncated"
	// FailChecksum: the payload does not match its CRC-64 — bit rot or a
	// torn-then-padded write.
	FailChecksum FailureKind = "checksum"
	// FailVersion: a container version this build cannot read.
	FailVersion FailureKind = "version"
	// FailUnknownKind: an index payload kind this build cannot restore.
	FailUnknownKind FailureKind = "unknown-kind"
	// FailVerify: the decoded index answered queries inconsistent with the
	// venue's ground truth (Verify failed).
	FailVerify FailureKind = "verify"
	// FailIO: any other read/decode error (I/O failure, gob decode error).
	FailIO FailureKind = "io"
)

// errVerify tags every Verify failure so Classify can recognise it.
var errVerify = errors.New("snapshot: verification failed")

// Classify maps an error from Load/Read/Verify to its FailureKind. It
// unwraps through any decoration, so callers can classify errors that
// crossed several layers. A nil error has no kind; Classify returns FailIO
// for errors it does not recognise (the conservative bucket: retryable,
// never trusted).
func Classify(err error) FailureKind {
	var verr *VersionError
	var kerr *UnknownKindError
	switch {
	case errors.Is(err, fs.ErrNotExist):
		return FailMissing
	case errors.Is(err, ErrNotSnapshot):
		return FailNotSnapshot
	case errors.Is(err, ErrTruncated):
		return FailTruncated
	case errors.Is(err, ErrChecksum):
		return FailChecksum
	case errors.As(err, &verr):
		return FailVersion
	case errors.As(err, &kerr):
		return FailUnknownKind
	case errors.Is(err, errVerify):
		return FailVerify
	default:
		return FailIO
	}
}

// verifySamples is the number of random distance queries Verify cross-checks
// against the exact ground truth. Each sample costs one Dijkstra expansion
// on the venue's door-to-door graph plus one index query — enough to catch
// a structurally broken index, cheap enough to run on every swap.
const verifySamples = 32

// verifyEps is the acceptable absolute error against the exact distance.
// The tree indexes are exact, so this only absorbs floating-point
// accumulation differences along equal-length paths.
const verifyEps = 1e-6

// Verify cross-checks the restored index against the venue's exact
// door-to-door ground truth: a fixed-seed sample of random location pairs
// must agree on distance within verifyEps, infinite/finite disagreements
// included, and a panicking index is itself a verification failure (the
// panic is recovered and reported, never propagated). The returned error
// matches FailVerify under Classify. Verification is deterministic: the
// same snapshot bytes always produce the same verdict.
func (s *Snapshot) Verify() (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("%w: index panicked during verification: %v", errVerify, v)
		}
	}()
	if s.Venue == nil {
		return fmt.Errorf("%w: snapshot has no venue", errVerify)
	}
	ix := s.Index()
	if ix == nil {
		return fmt.Errorf("%w: snapshot has no index", errVerify)
	}
	rng := rand.New(rand.NewSource(1))
	d2d := s.Venue.D2D()
	for i := 0; i < verifySamples; i++ {
		a, b := s.Venue.RandomLocation(rng), s.Venue.RandomLocation(rng)
		got := ix.Distance(a, b)
		want := d2d.LocationDist(a, b)
		if math.IsInf(want, 1) != math.IsInf(got, 1) || (!math.IsInf(want, 1) && math.Abs(got-want) > verifyEps) {
			return fmt.Errorf("%w: sample %d: index distance %v != exact %v (%v → %v)",
				errVerify, i, got, want, a, b)
		}
	}
	if s.Objects != nil {
		// The embedded object index answers from the same tree; one kNN
		// probe catches a corrupted object table (wrong IDs panic or return
		// unsorted results).
		q := s.Venue.RandomLocation(rng)
		res := s.Objects.KNN(q, 3)
		for i := 1; i < len(res); i++ {
			if res[i].Dist < res[i-1].Dist {
				return fmt.Errorf("%w: kNN results out of order at %d", errVerify, i)
			}
		}
	}
	return nil
}
