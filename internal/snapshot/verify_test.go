package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io/fs"
	"math/rand"
	"testing"

	"viptree/internal/iptree"
	"viptree/internal/model"
	"viptree/internal/venuegen"
)

// TestVerifyAcceptsValidSnapshot: a clean round-trip must verify, with and
// without an embedded object index.
func TestVerifyAcceptsValidSnapshot(t *testing.T) {
	v := venuegen.MustBuilding(venuegen.BuildingConfig{
		Name: "verify", Floors: 2, RoomsPerHallway: 8, Seed: 3,
	})
	tree := iptree.MustBuildIPTree(v, iptree.Options{})
	vip := iptree.NewVIPTree(tree)
	rng := rand.New(rand.NewSource(9))
	oi := tree.IndexObjects([]model.Location{v.RandomLocation(rng), v.RandomLocation(rng)})
	for name, objects := range map[string]*iptree.ObjectIndex{"bare": nil, "objects": oi} {
		s := roundTrip(t, v, vip, objects)
		if err := s.Verify(); err != nil {
			t.Errorf("%s: Verify() = %v, want nil", name, err)
		}
	}
}

// brokenIndex stands in for a decoded-but-wrong index: structurally valid
// gob, wrong answers. We can't easily corrupt a real tree past the checksum,
// so the test swaps the snapshot's venue instead — the index then answers
// for a different building than the ground truth, which is exactly the
// build-box mixup Verify exists to catch.
func TestVerifyRejectsMismatchedIndex(t *testing.T) {
	v1 := venuegen.MustBuilding(venuegen.BuildingConfig{Name: "a", Floors: 2, RoomsPerHallway: 8, Seed: 4})
	v2 := venuegen.MustBuilding(venuegen.BuildingConfig{Name: "b", Floors: 3, RoomsPerHallway: 10, Seed: 5})
	s := roundTrip(t, v1, iptree.NewVIPTree(iptree.MustBuildIPTree(v1, iptree.Options{})), nil)
	s.Venue = v2
	err := s.Verify()
	if err == nil {
		t.Fatal("Verify accepted an index answering for a different venue")
	}
	if Classify(err) != FailVerify {
		t.Fatalf("Classify(%v) = %v, want FailVerify", err, Classify(err))
	}
}

// TestVerifyRecoversPanics: a snapshot whose index panics on query must fail
// verification, not kill the process.
func TestVerifyRecoversPanics(t *testing.T) {
	v := venuegen.MustBuilding(venuegen.BuildingConfig{Name: "p", Floors: 1, RoomsPerHallway: 8, Seed: 6})
	s := &Snapshot{Venue: v} // Tree nil: Index() returns a typed-nil wrapper that panics on use
	err := s.Verify()
	if err == nil {
		t.Fatal("Verify accepted a snapshot with no index")
	}
	if Classify(err) != FailVerify {
		t.Fatalf("Classify(%v) = %v, want FailVerify", err, Classify(err))
	}
}

// TestClassify pins the full error-to-kind mapping across the container
// checks, decode failures and the filesystem.
func TestClassify(t *testing.T) {
	data := writeValid(t)
	read := func(mutate func([]byte) []byte) error {
		_, err := Read(bytes.NewReader(mutate(append([]byte(nil), data...))))
		return err
	}

	cases := []struct {
		name string
		err  error
		want FailureKind
	}{
		{"missing", errors.Join(errors.New("open"), fs.ErrNotExist), FailMissing},
		{"magic", read(func(b []byte) []byte { b[0] ^= 0xFF; return b }), FailNotSnapshot},
		{"truncated", read(func(b []byte) []byte { return b[:len(b)/2] }), FailTruncated},
		{"checksum", read(func(b []byte) []byte { b[len(b)-1] ^= 1; return b }), FailChecksum},
		{"version", read(func(b []byte) []byte {
			binary.BigEndian.PutUint32(b[8:], FormatVersion+9)
			return b
		}), FailVersion},
		{"verify", errVerify, FailVerify},
		{"other", errors.New("disk on fire"), FailIO},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Fatalf("%s: expected an error from Read", c.name)
		}
		if got := Classify(c.err); got != c.want {
			t.Errorf("%s: Classify(%v) = %v, want %v", c.name, c.err, got, c.want)
		}
	}

	// UnknownKindError comes from the decode path; build it directly.
	if got := Classify(&UnknownKindError{Kind: "x"}); got != FailUnknownKind {
		t.Errorf("Classify(UnknownKindError) = %v, want FailUnknownKind", got)
	}
}

// TestVerifyDeterministic: the same snapshot must always produce the same
// verdict (the serving node's quarantine logic relies on it).
func TestVerifyDeterministic(t *testing.T) {
	v := venuegen.MustBuilding(venuegen.BuildingConfig{Name: "det", Floors: 1, RoomsPerHallway: 8, Seed: 7})
	s := roundTrip(t, v, iptree.NewVIPTree(iptree.MustBuildIPTree(v, iptree.Options{})), nil)
	for i := 0; i < 3; i++ {
		if err := s.Verify(); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
}
