package updatelog

import (
	"fmt"
	"sync"
)

// Subscription is one change-feed tail. Events delivers every applied
// record with Seq >= the subscribed position, exactly once, in sequence
// order, with no gaps. A subscription never misses an update: the
// history it replays from is retained for the lifetime of the Log.
//
// Backpressure is per-subscription: a slow consumer blocks only its own
// delivery goroutine, never the writer and never other subscribers.
type Subscription struct {
	log    *Log
	events chan Record
	stop   chan struct{}
	from   uint64
	closed bool // guarded by log.histMu
	once   sync.Once
}

// Subscribe attaches a change-feed subscriber starting at sequence
// number from (0 means "from the beginning of the log"). Subscribing at
// head+1 tails only new updates; any position back to the log's start
// replays history first, so a consumer that reconnects resumes exactly
// where it left off. from beyond head+1 is an error (it would create a
// gap). buffer sets the Events channel capacity (minimum 1).
func (l *Log) Subscribe(from uint64, buffer int) (*Subscription, error) {
	if from == 0 {
		from = l.start + 1
	}
	if from <= l.start {
		return nil, fmt.Errorf("updatelog: subscribe from seq %d predates log start %d", from, l.start+1)
	}
	if head := l.head.Load(); from > head+1 {
		return nil, fmt.Errorf("updatelog: subscribe from seq %d beyond head %d", from, head)
	}
	if buffer < 1 {
		buffer = 1
	}
	s := &Subscription{
		log:    l,
		events: make(chan Record, buffer),
		stop:   make(chan struct{}),
		from:   from,
	}
	go s.pump()
	return s, nil
}

// Events returns the ordered stream of applied records. The channel is
// closed after Close.
func (s *Subscription) Events() <-chan Record { return s.events }

// Close detaches the subscription and closes its Events channel. Safe
// to call multiple times and concurrently with delivery.
func (s *Subscription) Close() {
	s.once.Do(func() {
		s.log.histMu.Lock()
		s.closed = true
		s.log.histMu.Unlock()
		s.log.cond.Broadcast()
		close(s.stop)
	})
}

// pump copies history to the subscriber. It holds histMu only while
// slicing the append-only history, never while sending: hist is never
// truncated or mutated in place, so a sub-slice taken under the lock
// stays valid and immutable after release.
func (s *Subscription) pump() {
	defer close(s.events)
	cursor := s.from
	for {
		s.log.histMu.Lock()
		for cursor > s.log.start+uint64(len(s.log.hist)) && !s.closed {
			s.log.cond.Wait()
		}
		if s.closed {
			s.log.histMu.Unlock()
			return
		}
		batch := s.log.hist[cursor-s.log.start-1 : len(s.log.hist)]
		s.log.histMu.Unlock()
		for i := range batch {
			select {
			case s.events <- batch[i]:
			case <-s.stop:
				return
			}
		}
		cursor += uint64(len(batch))
	}
}
