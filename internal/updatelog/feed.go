package updatelog

import (
	"fmt"
	"sync"
)

// Subscription is one change-feed tail. Events delivers every applied
// record with Seq >= the subscribed position, exactly once, in sequence
// order, with no gaps. A subscription never misses an update: history a
// subscriber has not yet consumed is exempt from Truncate, so the replay
// range it was granted at Subscribe time stays available until delivered.
//
// Backpressure is per-subscription: a slow consumer blocks only its own
// delivery goroutine, never the writer and never other subscribers. Note
// the flip side: a stalled subscription also pins its unconsumed history
// in memory — Close subscriptions you no longer drain.
type Subscription struct {
	log    *Log
	events chan Record
	stop   chan struct{}
	cursor uint64 // next seq to deliver; guarded by log.histMu
	closed bool   // guarded by log.histMu
	once   sync.Once
}

// Subscribe attaches a change-feed subscriber starting at sequence
// number from (0 means "from the start of the retained history").
// Subscribing at head+1 tails only new updates; any retained position
// replays history first, so a consumer that reconnects resumes exactly
// where it left off. from beyond head+1, or at a sequence already
// dropped by Truncate, is an error (it would create a gap). buffer sets
// the Events channel capacity (minimum 1).
func (l *Log) Subscribe(from uint64, buffer int) (*Subscription, error) {
	l.histMu.Lock()
	defer l.histMu.Unlock()
	if from == 0 {
		from = l.base + 1
	}
	if from <= l.base {
		return nil, fmt.Errorf("updatelog: subscribe from seq %d predates retained history (starts at %d)", from, l.base+1)
	}
	if head := l.head.Load(); from > head+1 {
		return nil, fmt.Errorf("updatelog: subscribe from seq %d beyond head %d", from, head)
	}
	if buffer < 1 {
		buffer = 1
	}
	s := &Subscription{
		log:    l,
		events: make(chan Record, buffer),
		stop:   make(chan struct{}),
		cursor: from,
	}
	l.subs[s] = struct{}{}
	go s.pump()
	return s, nil
}

// Events returns the ordered stream of applied records. The channel is
// closed after Close.
func (s *Subscription) Events() <-chan Record { return s.events }

// Close detaches the subscription and closes its Events channel. Safe
// to call multiple times and concurrently with delivery. After Close
// the subscription no longer holds back Truncate.
func (s *Subscription) Close() {
	s.once.Do(func() {
		s.log.histMu.Lock()
		s.closed = true
		delete(s.log.subs, s)
		s.log.histMu.Unlock()
		s.log.cond.Broadcast()
		close(s.stop)
	})
}

// pump copies history to the subscriber. It holds histMu only while
// slicing the retained history, never while sending: records are never
// mutated in place (Truncate abandons a prefix by copying the tail to a
// fresh slice), so a sub-slice taken under the lock stays valid and
// immutable after release. The cursor advances under histMu only after
// delivery, which is what lets Truncate treat it as the floor of what
// this subscriber still needs.
func (s *Subscription) pump() {
	defer close(s.events)
	for {
		s.log.histMu.Lock()
		for s.cursor > s.log.base+uint64(len(s.log.hist)) && !s.closed {
			s.log.cond.Wait()
		}
		if s.closed {
			s.log.histMu.Unlock()
			return
		}
		batch := s.log.hist[s.cursor-s.log.base-1 : len(s.log.hist)]
		s.log.histMu.Unlock()
		for i := range batch {
			select {
			case s.events <- batch[i]:
			case <-s.stop:
				return
			}
			s.log.histMu.Lock()
			s.cursor++
			s.log.histMu.Unlock()
		}
	}
}
