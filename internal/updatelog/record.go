// Package updatelog provides the single-writer update log behind the
// mutable object layer. All Insert/Delete/Move mutations are funneled
// through one Log; a combining writer assigns monotonic sequence numbers,
// applies batches to a shadow copy of the index through the Applier
// interface, and publishes immutable epoch versions that readers access
// without locks. Every applied update is retained in an ordered history
// that change-feed subscribers replay exactly once, gap-free.
//
// The design follows the central-writer + changelog architecture: writers
// never contend with readers, readers never block writers, and external
// systems can tail the feed to mirror the object layer elsewhere.
package updatelog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"viptree/internal/model"
)

// Op identifies the kind of mutation a Record carries.
type Op uint8

const (
	// OpInsert adds a new object; Record.Loc holds its location and
	// Record.ID the identifier the applier assigned to it.
	OpInsert Op = 1
	// OpDelete removes the object identified by Record.ID.
	OpDelete Op = 2
	// OpMove relocates Record.ID to Record.Loc.
	OpMove Op = 3
)

// String implements fmt.Stringer.
func (op Op) String() string {
	switch op {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpMove:
		return "move"
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// Record is one applied update. Seq numbers are assigned by the Log,
// start at 1, and are gap-free over applied updates: an operation that
// fails validation (e.g. deleting an unknown object) consumes no
// sequence number and never appears in the history or the change feed.
type Record struct {
	Seq uint64
	Op  Op
	ID  int
	Loc model.Location
}

// Wire format (big-endian), used by AppendRecord/DecodeRecord:
//
//	op      uint8
//	seq     uint64
//	id      int64
//	loc     (insert/move only)
//	  partition int64
//	  floor     int32
//	  x, y      float64 (IEEE 754 bits)
//
// Delete records stop after id. The format is self-delimiting so
// records can be streamed back-to-back.
const (
	headerLen = 1 + 8 + 8
	locLen    = 8 + 4 + 8 + 8
)

// Typed decode errors. DecodeRecord never panics on malformed input.
var (
	// ErrShortRecord means the buffer ends before the record does.
	ErrShortRecord = errors.New("updatelog: short record")
	// ErrUnknownOp means the op byte is not a known Op.
	ErrUnknownOp = errors.New("updatelog: unknown op")
	// ErrCorruptRecord means a field holds an impossible value
	// (negative id, non-finite coordinate).
	ErrCorruptRecord = errors.New("updatelog: corrupt record")
)

// AppendRecord appends the wire encoding of r to buf and returns the
// extended slice.
func AppendRecord(buf []byte, r *Record) []byte {
	buf = append(buf, byte(r.Op))
	buf = binary.BigEndian.AppendUint64(buf, r.Seq)
	buf = binary.BigEndian.AppendUint64(buf, uint64(int64(r.ID)))
	if r.Op == OpInsert || r.Op == OpMove {
		buf = binary.BigEndian.AppendUint64(buf, uint64(int64(r.Loc.Partition)))
		buf = binary.BigEndian.AppendUint32(buf, uint32(int32(r.Loc.Point.Floor)))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(r.Loc.Point.X))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(r.Loc.Point.Y))
	}
	return buf
}

// DecodeRecord decodes one record from the front of buf, returning the
// record and the number of bytes consumed. Malformed input yields a
// typed error (ErrShortRecord, ErrUnknownOp, ErrCorruptRecord) and
// never panics.
func DecodeRecord(buf []byte) (Record, int, error) {
	if len(buf) < headerLen {
		return Record{}, 0, ErrShortRecord
	}
	op := Op(buf[0])
	switch op {
	case OpInsert, OpDelete, OpMove:
	default:
		return Record{}, 0, fmt.Errorf("%w: %d", ErrUnknownOp, buf[0])
	}
	r := Record{Op: op}
	r.Seq = binary.BigEndian.Uint64(buf[1:9])
	id := int64(binary.BigEndian.Uint64(buf[9:17]))
	if id < 0 {
		return Record{}, 0, fmt.Errorf("%w: negative id %d", ErrCorruptRecord, id)
	}
	r.ID = int(id)
	n := headerLen
	if op == OpInsert || op == OpMove {
		if len(buf) < headerLen+locLen {
			return Record{}, 0, ErrShortRecord
		}
		part := int64(binary.BigEndian.Uint64(buf[17:25]))
		if part < 0 {
			return Record{}, 0, fmt.Errorf("%w: negative partition %d", ErrCorruptRecord, part)
		}
		r.Loc.Partition = model.PartitionID(part)
		r.Loc.Point.Floor = int(int32(binary.BigEndian.Uint32(buf[25:29])))
		r.Loc.Point.X = math.Float64frombits(binary.BigEndian.Uint64(buf[29:37]))
		r.Loc.Point.Y = math.Float64frombits(binary.BigEndian.Uint64(buf[37:45]))
		if math.IsNaN(r.Loc.Point.X) || math.IsInf(r.Loc.Point.X, 0) ||
			math.IsNaN(r.Loc.Point.Y) || math.IsInf(r.Loc.Point.Y, 0) {
			return Record{}, 0, fmt.Errorf("%w: non-finite coordinate", ErrCorruptRecord)
		}
		n += locLen
	}
	return r, n, nil
}
