package updatelog

import (
	"fmt"
	"sync"
	"sync/atomic"

	"viptree/internal/model"
)

// Applier is the single-writer view of the structure the log maintains.
// The log guarantees ApplyUpdate and PublishEpoch are never called
// concurrently: all calls happen on one goroutine at a time (the current
// combining leader), so implementations need no internal locking against
// the log itself.
type Applier interface {
	// ApplyUpdate applies one mutation to the shadow (writer-private)
	// state. For OpInsert, r.ID is ignored on entry and MUST be set to
	// the identifier assigned to the new object before returning nil.
	// An error means the update was rejected: it consumes no sequence
	// number and must leave the shadow state unchanged.
	ApplyUpdate(r *Record) error
	// PublishEpoch atomically publishes the shadow state as the new
	// immutable epoch covering all updates up to and including seq.
	// It is called once per applied batch, never per update.
	PublishEpoch(seq uint64)
}

// request is one pending mutation waiting for the combining leader.
type request struct {
	rec  Record
	err  error
	done chan struct{}
}

var requestPool = sync.Pool{
	New: func() any { return &request{done: make(chan struct{}, 1)} },
}

// Log is a single-writer combining update log. Any goroutine may call
// Submit; internally one submitter at a time becomes the leader, drains
// the queue of pending requests, applies them in arrival order through
// the Applier, publishes one epoch for the whole batch, and wakes the
// waiters. This batches epoch publication under contention (many updates
// per pointer swap) while keeping Submit synchronous: when Submit
// returns, the update is applied AND visible in the published epoch.
//
// Sequence numbers start at 1 and are assigned only to successfully
// applied updates, so the history is gap-free by construction.
type Log struct {
	applier Applier

	mu      sync.Mutex // guards queue, writing
	queue   []*request
	writing bool

	start   uint64        // seq already reflected at construction
	seq     uint64        // last assigned seq; owned by the leader
	head    atomic.Uint64 // last applied seq
	pub     atomic.Uint64 // last published seq (epoch visible to readers)
	durable atomic.Uint64 // last seq persisted by a durability layer

	histMu sync.Mutex
	base   uint64                     // seq preceding hist[0]; start until truncated
	hist   []Record                   // retained records, hist[i].Seq == base+i+1
	subs   map[*Subscription]struct{} // active subscriptions, for Truncate's floor
	cond   *sync.Cond
}

// New returns a Log driving the given applier. startSeq is the sequence
// number already reflected in the applier's published state (0 for a
// fresh index); the first applied update gets startSeq+1. History
// replay via Records/Subscribe is available from startSeq+1 onward,
// and grows without bound until Truncate reclaims consumed prefixes.
func New(applier Applier, startSeq uint64) *Log {
	l := &Log{
		applier: applier,
		start:   startSeq,
		seq:     startSeq,
		base:    startSeq,
		subs:    make(map[*Subscription]struct{}),
	}
	l.head.Store(startSeq)
	l.pub.Store(startSeq)
	l.durable.Store(startSeq)
	l.cond = sync.NewCond(&l.histMu)
	return l
}

// Submit funnels one mutation through the writer. For OpInsert, id is
// ignored and the assigned object identifier is returned. The returned
// seq is the update's position in the log (0 if err != nil). Submit is
// safe for concurrent use; updates are applied in arrival order.
func (l *Log) Submit(op Op, id int, loc model.Location) (int, uint64, error) {
	req := requestPool.Get().(*request)
	req.rec = Record{Op: op, ID: id, Loc: loc}
	req.err = nil

	l.mu.Lock()
	l.queue = append(l.queue, req)
	if l.writing {
		// A leader is draining; it will pick this request up before it
		// steps down (it re-checks the queue under mu).
		l.mu.Unlock()
	} else {
		l.writing = true
		l.lead()
	}

	<-req.done
	id, seq, err := req.rec.ID, req.rec.Seq, req.err
	requestPool.Put(req)
	return id, seq, err
}

// lead runs the combining loop. Called with l.mu held; returns with it
// released. Exactly one goroutine runs lead at a time (guarded by
// l.writing), which is what makes the Applier single-writer.
func (l *Log) lead() {
	// batch and applied are leader-owned buffers reused across rounds.
	// applied must NOT alias batch (e.g. batch[:0]): a rejected update
	// followed by an applied one would overwrite batch's slots, leaving
	// the rejected request never woken and another woken twice.
	var batch, applied []*request
	for {
		batch = append(batch[:0], l.queue...)
		l.queue = l.queue[:0]
		l.mu.Unlock()

		applied = applied[:0]
		for _, req := range batch {
			req.rec.Seq = l.seq + 1
			if err := l.applier.ApplyUpdate(&req.rec); err != nil {
				req.rec.Seq = 0
				req.err = err
				continue
			}
			l.seq++
			l.head.Store(l.seq)
			applied = append(applied, req)
		}
		if len(applied) > 0 {
			// Publish before waking waiters: a caller returning from
			// Submit must observe its own update in the current epoch.
			l.applier.PublishEpoch(l.seq)
			l.pub.Store(l.seq)

			l.histMu.Lock()
			for _, req := range applied {
				l.hist = append(l.hist, req.rec)
			}
			l.histMu.Unlock()
			l.cond.Broadcast()
		}
		for _, req := range batch {
			req.done <- struct{}{}
		}

		l.mu.Lock()
		if len(l.queue) == 0 {
			l.writing = false
			l.mu.Unlock()
			return
		}
	}
}

// HeadSeq returns the sequence number of the last applied update.
func (l *Log) HeadSeq() uint64 { return l.head.Load() }

// PublishedSeq returns the sequence number covered by the epoch readers
// currently see. It trails HeadSeq only transiently, inside a batch
// application; the gap is the applied-epoch lag.
func (l *Log) PublishedSeq() uint64 { return l.pub.Load() }

// Records returns a copy of the applied records with from <= Seq <= to
// (to = 0 means "through head"). Sequence numbers below the retained
// history — the log's start, or the last Truncate cut — are not
// available and yield an error.
func (l *Log) Records(from, to uint64) ([]Record, error) {
	l.histMu.Lock()
	defer l.histMu.Unlock()
	if from == 0 {
		from = l.base + 1
	}
	if from <= l.base {
		return nil, fmt.Errorf("updatelog: seq %d predates retained history (starts at %d)", from, l.base+1)
	}
	avail := l.base + uint64(len(l.hist))
	if to == 0 || to > avail {
		to = avail
	}
	if from > to {
		return nil, nil
	}
	out := make([]Record, to-from+1)
	copy(out, l.hist[from-l.base-1:to-l.base])
	return out, nil
}

// AdvanceDurable records that every update with Seq <= seq has been made
// durable by a persistence layer (the WAL calls this after each successful
// fsync) and reclaims the covered in-memory history automatically, subject
// to Truncate's subscriber floor. The watermark is monotonic: stale calls
// are ignored.
func (l *Log) AdvanceDurable(seq uint64) {
	for {
		cur := l.durable.Load()
		if seq <= cur {
			return
		}
		if l.durable.CompareAndSwap(cur, seq) {
			break
		}
	}
	l.Truncate(seq)
}

// DurableSeq returns the durable watermark: the last sequence number a
// persistence layer has reported as surviving a crash. It starts at the
// construction startSeq (snapshot-restored state is durable by definition)
// and only moves when a durability layer reports progress.
func (l *Log) DurableSeq() uint64 { return l.durable.Load() }

// Truncate drops applied records with Seq <= upToSeq from the retained
// history, bounding the log's memory under sustained churn. Records an
// active subscription has not yet consumed are always kept: the
// effective cut is min(upToSeq, oldest unconsumed seq - 1), so no
// subscriber ever observes a gap. Truncated sequences are no longer
// available to Records or Subscribe. Returns the last seq actually
// dropped (0 if nothing could be dropped).
func (l *Log) Truncate(upToSeq uint64) uint64 {
	l.histMu.Lock()
	defer l.histMu.Unlock()
	cut := upToSeq
	for s := range l.subs {
		if s.cursor <= cut {
			cut = s.cursor - 1
		}
	}
	if avail := l.base + uint64(len(l.hist)); cut > avail {
		cut = avail
	}
	if cut <= l.base {
		return 0
	}
	// Copy the tail into a fresh slice so the dropped prefix's backing
	// array becomes collectible. In-flight pump batches sliced from the
	// old array stay valid: it is never mutated, only abandoned.
	rest := make([]Record, uint64(len(l.hist))-(cut-l.base))
	copy(rest, l.hist[cut-l.base:])
	l.hist = rest
	l.base = cut
	return cut
}
